// Command gossipnet demonstrates the live (non-simulated) runtime: it
// starts an organization of gossip peers over real localhost TCP
// connections, disseminates blocks with the enhanced protocol, and reports
// per-block dissemination latency. The identical protocol code runs under
// the discrete-event engine in the experiments.
//
// Usage:
//
//	gossipnet -peers 20 -blocks 10 -fout 4
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/obs"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

func main() {
	nPeers := flag.Int("peers", 20, "number of peers")
	nBlocks := flag.Int("blocks", 10, "number of blocks to disseminate")
	fout := flag.Int("fout", 4, "enhanced push fan-out")
	interval := flag.Duration("interval", 300*time.Millisecond, "block injection interval")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text exposition on this address at /metrics (e.g. 127.0.0.1:9464)")
	flag.Parse()
	if err := run(*nPeers, *nBlocks, *fout, *interval, *metricsAddr); err != nil {
		fmt.Fprintf(os.Stderr, "gossipnet: %v\n", err)
		os.Exit(1)
	}
}

// serveMetrics exposes reg in Prometheus text format at /metrics. The
// registry is concurrent (mutex-backed instruments), so scrapes race
// safely with the endpoints' send/receive paths.
func serveMetrics(addr string, reg *obs.Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("serving /metrics on http://%s/metrics\n", ln.Addr())
	return ln, nil
}

func run(nPeers, nBlocks, fout int, interval time.Duration, metricsAddr string) error {
	cfg, err := enhanced.ConfigFor(nPeers, fout, 1e-6, 2)
	if err != nil {
		return err
	}
	fmt.Printf("starting %d TCP peers: fout=%d TTL=%d TTLdirect=%d\n",
		nPeers, cfg.Fout, cfg.TTL, cfg.TTLDirect)

	book := transport.StaticAddressBook{}
	traffic := netmodel.NewTraffic(time.Second)
	sched := sim.NewRealScheduler()
	defer sched.Close()

	// The live runtime shares one concurrent registry across all endpoint
	// goroutines; the simulator uses shard-local registries instead.
	var wobs *transport.WireObs
	if metricsAddr != "" {
		reg := obs.NewConcurrentRegistry()
		wobs = transport.NewWireObs(reg, nil)
		ln, err := serveMetrics(metricsAddr, reg)
		if err != nil {
			return err
		}
		defer ln.Close()
	}

	// Bring up endpoints first so the address book is complete before any
	// gossip starts.
	endpoints := make([]*transport.TCPEndpoint, nPeers)
	for i := 0; i < nPeers; i++ {
		ep, err := transport.ListenTCP(wire.NodeID(i), "127.0.0.1:0", book, traffic)
		if err != nil {
			return err
		}
		defer ep.Close()
		endpoints[i] = ep
		if wobs != nil {
			ep.SetObs(wobs)
		}
		book[wire.NodeID(i)] = ep.Addr()
	}

	peerIDs := make([]wire.NodeID, nPeers)
	for i := range peerIDs {
		peerIDs[i] = wire.NodeID(i)
	}

	var mu sync.Mutex
	firstSeen := make([]map[uint64]time.Duration, nPeers)
	cores := make([]*gossip.Core, nPeers)
	for i := 0; i < nPeers; i++ {
		gcfg := gossip.DefaultConfig(peerIDs[i], peerIDs)
		core := gossip.New(gcfg, endpoints[i], sched, sim.NewRand(int64(i)+1), enhanced.New(cfg))
		idx := i
		firstSeen[idx] = make(map[uint64]time.Duration)
		core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
			mu.Lock()
			firstSeen[idx][b.Num] = at
			mu.Unlock()
		})
		cores[i] = core
		core.Start()
	}
	defer func() {
		for _, c := range cores {
			c.Stop()
		}
	}()

	// An extra endpoint plays the ordering service.
	orderer, err := transport.ListenTCP(wire.NodeID(nPeers), "127.0.0.1:0", book, traffic)
	if err != nil {
		return err
	}
	defer orderer.Close()
	book[wire.NodeID(nPeers)] = orderer.Addr()

	blocks := harness.BuildChain(nBlocks, 10, 1024, 7)
	for _, b := range blocks {
		if err := orderer.Send(0, &wire.DeliverBlock{Block: b}); err != nil {
			return err
		}
		time.Sleep(interval)
	}

	// Wait until every peer holds every block (push phase is sub-second;
	// this is just a safety deadline).
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		mu.Lock()
		for i := 0; i < nPeers && done; i++ {
			done = len(firstSeen[i]) == nBlocks
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dissemination incomplete after deadline")
		}
		time.Sleep(20 * time.Millisecond)
	}

	rec := metrics.NewLatencyRecorder()
	mu.Lock()
	for _, b := range blocks {
		start := firstSeen[0][b.Num]
		for i := 1; i < nPeers; i++ {
			rec.Record(b.Num, wire.NodeID(i), firstSeen[i][b.Num]-start)
		}
	}
	mu.Unlock()
	fmt.Printf("disseminated %d blocks to %d peers over TCP\n", nBlocks, nPeers)
	fmt.Printf("latency: %v\n", metrics.Summarize(rec.All()))
	fmt.Printf("full-block transmissions: %d (n-1 per block would be %d)\n",
		traffic.CountOf(wire.TypeData), (nPeers-1)*nBlocks)
	return nil
}
