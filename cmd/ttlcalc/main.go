// Command ttlcalc computes the enhanced push phase's TTL parameters from
// the appendix analysis: the TTL needed to reach a target probability of
// imperfect dissemination, the carrying capacity, and the lookup table
// peers can ship (paper §IV).
//
// Usage:
//
//	ttlcalc -n 100 -fout 4 -pe 1e-6
//	ttlcalc -table -fout 4 -pe 1e-6
package main

import (
	"flag"
	"fmt"
	"os"

	"fabricgossip/internal/analysis"
)

func main() {
	n := flag.Int("n", 100, "number of peers in the organization")
	fout := flag.Int("fout", 4, "push fan-out")
	pe := flag.Float64("pe", 1e-6, "target probability of imperfect dissemination")
	table := flag.Bool("table", false, "print a lookup table over standard network sizes")
	flag.Parse()

	if *table {
		sizes := []int{25, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
		rows, err := analysis.TTLTable(sizes, *fout, *pe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ttlcalc: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("TTL lookup table: fout=%d, pe<=%g\n", *fout, *pe)
		fmt.Printf("%8s %5s %12s\n", "n <=", "TTL", "achieved pe")
		for _, r := range rows {
			fmt.Printf("%8d %5d %12.2e\n", r.N, r.TTL, r.Pe)
		}
		return
	}

	gamma, err := analysis.CarryingCapacity(*n, *fout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ttlcalc: %v\n", err)
		os.Exit(1)
	}
	ttl, err := analysis.TTLFor(*n, *fout, *pe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ttlcalc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("n=%d fout=%d pe-target=%g\n", *n, *fout, *pe)
	fmt.Printf("carrying capacity γ   = %.2f peers (%.2f%% of n)\n", gamma, 100*gamma/float64(*n))
	fmt.Printf("TTL (bound)           = %d\n", ttl)
	fmt.Printf("achieved pe (bound)   = %.3e\n", analysis.ImperfectProb(*n, *fout, ttl))
	if exact, err := analysis.ExactTTLFor(*n, *fout, *pe); err == nil {
		fmt.Printf("TTL (exact chain)     = %d\n", exact)
	}
	fmt.Printf("expected push digests = %.0f per block\n", analysis.ExpectedDigests(*n, *fout, ttl))
	fmt.Printf("infect-and-die reach  = %.1f%% of peers (for comparison)\n", 100*analysis.FixpointReach(*fout))
}
