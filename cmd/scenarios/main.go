// Command scenarios runs the built-in catalog of fault/churn scenarios
// (internal/scenario) against either gossip protocol at any topology —
// single organizations up to thousands of peers, or multi-organization
// networks (the paper's Fig. 1 shape) — printing a deterministic report
// per run.
//
// Usage:
//
//	scenarios -list                                   # show the catalog
//	scenarios -scenario crash-restart -peers 100      # one scenario
//	scenarios -scenario all -peers 1000 -variant both # full sweep at scale
//	scenarios -scenario org-cold-join -peers 1000 -orgs 4   # 4 orgs x 250 peers
//	scenarios -scenario org-partition-heal,org-cold-join -orgs 4 -check
//	scenarios -scenario churn -check                  # run twice, verify determinism
//	scenarios -scenario partition-heal -trace         # include the event trace
//	scenarios -scenario txload-hotkey-contention -peers 1000 -orgs 4 -check
//	                          # full execute-order-validate pipeline under load
//	scenarios -scenario crash-restart -stats          # registry-backed runtime stats
//	scenarios -scenario churn -trace-jsonl churn.jsonl -metrics-out churn.json
//	                          # structured event trace + metrics snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/obs"
	"fabricgossip/internal/scenario"
)

func main() {
	name := flag.String("scenario", "all", "scenario name, comma-separated list, or 'all'")
	peers := flag.Int("peers", 100, "total network size across all orgs (up to thousands)")
	orgs := flag.Int("orgs", 1, "organization count (peers must divide evenly)")
	orgSizes := flag.String("org-sizes", "", "explicit per-org peer counts, e.g. 50,30,20 (overrides -peers/-orgs; asymmetric consortiums)")
	variant := flag.String("variant", "enhanced", "protocol: original, enhanced or both")
	seed := flag.Int64("seed", 1, "root random seed")
	consenters := flag.Int("consenters", 0, "ordering-cluster size override: run the scenario with this many Raft consenters (0 keeps the scenario's own setting)")
	shards := flag.String("shards", "auto", "sharded engine: auto (scenario decides), on, or off")
	tail := flag.Duration("tail", 0, "override the scenario's post-injection tail (0 keeps its own; shortening it changes the fingerprint lineage — reduced-duration determinism smokes only)")
	check := flag.Bool("check", false, "run each scenario twice and verify identical fingerprints")
	trace := flag.Bool("trace", false, "print the run's event trace")
	stats := flag.Bool("stats", false, "print runtime statistics (engine, barriers, wire traffic) from the metrics registry; never part of the fingerprint")
	traceJSONL := flag.String("trace-jsonl", "", "collect the structured event trace and write it as JSONL to this file ('-' for stdout); fingerprint-neutral")
	metricsOut := flag.String("metrics-out", "", "write the metrics-registry snapshot as JSON to this file ('-' for stdout)")
	timeseries := flag.Duration("timeseries", 0, "sample every registry instrument at this simulated period (written as JSON to <metrics-out>.series.json, or stdout); extends the event lineage like -tail")
	flightRing := flag.Int("flight", 0, "arm the crash flight recorder with a ring of this many recent events per context")
	flightDir := flag.String("flight-dir", "", "flight-recorder dump directory (default OS temp)")
	list := flag.Bool("list", false, "list scenario names and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *list {
		for _, d := range scenario.Catalog() {
			req := ""
			if d.MinOrgs > 1 {
				req = fmt.Sprintf(" [needs >= %d orgs]", d.MinOrgs)
			}
			fmt.Printf("%-20s %s%s\n", d.Name, d.Description, req)
		}
		return
	}

	var names []string
	if *name == "all" {
		// Entries needing more organizations than requested are skipped
		// (RunNamed would silently bump the org count, which is surprising
		// in a sweep over an explicit topology).
		for _, d := range scenario.Catalog() {
			if d.MinOrgs > max(*orgs, 1) {
				fmt.Printf("skipping %s: needs >= %d orgs (run with -orgs %d)\n\n",
					d.Name, d.MinOrgs, d.MinOrgs)
				continue
			}
			names = append(names, d.Name)
		}
	} else {
		for _, n := range strings.Split(*name, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	variants, err := parseVariants(*variant)
	if err != nil {
		fatal(err)
	}
	sizes, err := parseOrgSizes(*orgSizes)
	if err != nil {
		fatal(err)
	}
	sharding, err := parseShards(*shards)
	if err != nil {
		fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	for _, n := range names {
		for _, v := range variants {
			opt := scenario.Options{
				Peers: *peers, Orgs: *orgs, OrgSizes: sizes, Variant: v, Seed: *seed,
				Consenters: *consenters, Sharding: sharding, Tail: *tail,
				Trace: *traceJSONL != "", FlightRing: *flightRing, FlightDir: *flightDir,
				TimeSeries: *timeseries,
			}
			start := time.Now()
			rep, err := scenario.RunNamed(n, opt)
			if err != nil {
				fatal(err)
			}
			wall := time.Since(start).Round(time.Millisecond)
			fmt.Println(rep)
			if *stats {
				printStats(rep)
			}
			fmt.Printf("  fingerprint: %s (wall %v)\n", rep.Fingerprint()[:16], wall)
			if err := writeArtifacts(rep, *traceJSONL, *metricsOut, *timeseries); err != nil {
				fatal(err)
			}
			if *check {
				rep2, err := scenario.RunNamed(n, opt)
				if err != nil {
					fatal(err)
				}
				if rep.Fingerprint() != rep2.Fingerprint() {
					fatal(fmt.Errorf("scenario %s (%s): repeated run diverged", n, v))
				}
				fmt.Println("  determinism: OK (second run identical)")
			}
			if *trace {
				for _, line := range rep.Trace {
					fmt.Println("  " + line)
				}
			}
			fmt.Println()
		}
	}
}

// printStats renders the runtime-statistics block from the report's
// metrics-registry snapshot. Everything here is wall-side diagnostics —
// none of it contributes to the fingerprint.
func printStats(rep *scenario.Report) {
	stat := func(name string, labels ...string) float64 {
		v, _ := rep.Obs.Get(name, labels...)
		return v
	}
	mode := "sequential"
	if rep.Sharded {
		mode = "sharded"
	}
	fmt.Printf("  engine: %s, %.0f events, peak pending %.0f, heap high-water %.1f MB\n",
		mode, stat("engine_events_total"), stat("peak_pending_events"),
		stat("heap_high_water_bytes")/1e6)
	if rep.Sharded {
		fmt.Printf("  barriers: %.0f full, %.0f elided (adaptive lookahead)\n",
			stat("barriers_total", "kind", "full"), stat("barriers_total", "kind", "elided"))
	}
	// Wire-level instruments exist only when the run attached the
	// observability plane (-trace-jsonl, -flight or -timeseries).
	if out, ok := rep.Obs.Get("wire_msgs_total", "dir", "out"); ok {
		in, _ := rep.Obs.Get("wire_msgs_total", "dir", "in")
		outB, _ := rep.Obs.Get("wire_bytes_total", "dir", "out")
		fmt.Printf("  wire: %.0f msgs out (%.2f MB), %.0f msgs handled\n", out, outB/1e6, in)
	}
	fmt.Printf("  sync: %.2f MB in %.0f msgs; pool outstanding at end: %.0f data, %.0f push-digest\n",
		stat("state_sync_bytes_total")/1e6, stat("state_sync_msgs_total"),
		stat("pool_outstanding", "pool", "data"), stat("pool_outstanding", "pool", "push_digest"))
	if ev := stat("trace_events_total"); ev > 0 {
		fmt.Printf("  trace: %.0f structured events\n", ev)
	}
}

// writeArtifacts persists the run's observability outputs: the structured
// event trace as JSONL, the metrics snapshot as JSON, and the time-series
// (next to the metrics file, or on stdout).
func writeArtifacts(rep *scenario.Report, traceJSONL, metricsOut string, timeseries time.Duration) error {
	emit := func(path string, write func(w io.Writer) error) error {
		if path == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceJSONL != "" {
		if err := emit(traceJSONL, func(w io.Writer) error {
			return obs.WriteJSONL(w, rep.Events)
		}); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		if err := emit(metricsOut, rep.Obs.WriteJSON); err != nil {
			return err
		}
	}
	if timeseries > 0 && rep.Series != nil {
		path := "-"
		if metricsOut != "" && metricsOut != "-" {
			path = metricsOut + ".series.json"
		}
		if err := emit(path, rep.Series.WriteJSON); err != nil {
			return err
		}
	}
	if rep.FlightDump != "" {
		fmt.Printf("  flight dump: %s\n", rep.FlightDump)
	}
	return nil
}

func parseOrgSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("scenarios: bad -org-sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

func parseShards(s string) (scenario.ShardMode, error) {
	switch s {
	case "auto":
		return scenario.ShardAuto, nil
	case "on":
		return scenario.ShardOn, nil
	case "off":
		return scenario.ShardOff, nil
	}
	return scenario.ShardAuto, fmt.Errorf("scenarios: unknown -shards %q (want auto, on or off)", s)
}

func parseVariants(s string) ([]harness.Variant, error) {
	switch s {
	case "original":
		return []harness.Variant{harness.VariantOriginal}, nil
	case "enhanced":
		return []harness.Variant{harness.VariantEnhanced}, nil
	case "both":
		return []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced}, nil
	}
	return nil, fmt.Errorf("scenarios: unknown variant %q (want original, enhanced or both)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenarios:", err)
	os.Exit(1)
}
