// Command benchdiff compares two BENCH_*.json artifacts (the flat
// "<benchmark>/<unit>" -> value maps the root benchmark suite exports via
// BENCH_BASELINE) and exits non-zero when a gated metric regressed beyond
// the threshold.
//
//	benchdiff [-threshold 0.10] OLD.json NEW.json
//
// Gated units — deterministic outputs of the seeded simulation, identical
// on any machine:
//
//	tail_ms      dissemination tail latency (increase = regression)
//	peer_MBps    per-peer bandwidth overhead (increase = regression)
//	allocs_op    hot-path heap allocations per message (increase = regression)
//	sync_tail_ms recovery-plane catch-up tail latency (increase = regression)
//	sim_events   discrete events per run (drift in EITHER direction fails:
//	             these are behavioral fingerprints, not costs — fewer events
//	             can mean messages silently vanished)
//	sync_bytes   state-sync (StateRequest/StateResponse) traffic volume
//	             (either direction fails: it is a behavioral fingerprint of
//	             the recovery plane, and shrinkage can mean transfers
//	             silently stopped)
//	conflicts_*  invalidated transactions, Table II (either direction fails)
//	conflict_rate  workload-plane validation conflict fraction (either
//	               direction fails: it is a behavioral fingerprint of the
//	               MVCC path under contention — a drop can mean conflicts
//	               stopped being detected, not that the protocol improved)
//	commit_tail_ms workload-plane p99.9 submit-to-commit latency
//	               (increase = regression)
//	view_completeness      steady-state membership view density at 1x1000
//	                       (either direction fails: a drop means views went
//	                       sparse, a rise means the baseline was stale)
//	leader_convergence_ms  time for every peer's leader belief to settle
//	                       (increase = regression)
//	bytes_per_peer         heap high-water divided by peer count on the 10k
//	                       and 100k scale tiers (either direction fails:
//	                       growth means per-peer state regressed toward the
//	                       old map-based layout, a large drop means the
//	                       baseline went stale and must be re-recorded)
//	obs_overhead           per-message allocations with the metrics registry
//	                       attached and tracing off (increase = regression:
//	                       the observability plane's hot path must stay
//	                       allocation-free when idle)
//
// Wall-clock-dependent units (events_per_s and anything else) vary with the
// host, so they are printed for the trajectory but never gated. A gated
// metric present in OLD but missing from NEW fails the gate too: renaming a
// benchmark must come with a deliberate baseline update, not a silent hole
// in coverage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// gatedUnits maps a metric unit to its gating mode. Every entry is
// deterministic under the simulation's seeding. Cost metrics fail only on
// increases; behavioral fingerprints (event and conflict counts) fail on
// drift in either direction.
var gatedUnits = map[string]gateMode{
	"tail_ms":               gateIncrease,
	"peer_MBps":             gateIncrease,
	"allocs_op":             gateIncrease,
	"sync_tail_ms":          gateIncrease,
	"leader_convergence_ms": gateIncrease,
	"sim_events":            gateEither,
	"sync_bytes":            gateEither,
	"view_completeness":     gateEither,
	"conflicts_orig":        gateEither,
	"conflicts_enh":         gateEither,
	"conflict_rate":         gateEither,
	"commit_tail_ms":        gateIncrease,
	"election_ms":           gateIncrease,
	"deliver_gap_ms":        gateIncrease,
	"bytes_per_peer":        gateEither,
	"obs_overhead":          gateIncrease,
}

type gateMode int

const (
	gateNone     gateMode = iota // wall-clock or unknown: report only
	gateIncrease                 // cost metric: only growth regresses
	gateEither                   // behavioral fingerprint: any drift regresses
)

func gateOf(key string) gateMode {
	i := strings.LastIndexByte(key, '/')
	if i < 0 {
		return gateNone
	}
	return gatedUnits[key[i+1:]]
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10,
		"relative increase in a gated metric that counts as a regression")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold 0.10] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newM, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	keys := make([]string, 0, len(oldM)+len(newM))
	seen := make(map[string]bool)
	for k := range oldM {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newM {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	regressions := 0
	for _, k := range keys {
		ov, haveOld := oldM[k]
		nv, haveNew := newM[k]
		mode := gateOf(k)
		switch {
		case !haveNew:
			if mode != gateNone {
				fmt.Printf("MISSING  %-55s old=%.4g (gated metric dropped from the new run)\n", k, ov)
				regressions++
			} else {
				fmt.Printf("dropped  %-55s old=%.4g\n", k, ov)
			}
		case !haveOld:
			fmt.Printf("new      %-55s new=%.4g\n", k, nv)
		default:
			delta := nv - ov
			var rel float64
			switch {
			case ov != 0:
				rel = delta / ov
			case nv != 0:
				// From zero to nonzero: infinite relative growth. For gated
				// metrics (e.g. allocs_op leaving 0) that is always a
				// regression.
				rel = 1
			}
			bad := (mode == gateIncrease && rel > *threshold) ||
				(mode == gateEither && (rel > *threshold || rel < -*threshold))
			mark := "ok      "
			if bad {
				mark = "REGRESS "
				regressions++
			} else if mode == gateNone {
				mark = "info    "
			}
			fmt.Printf("%s %-55s old=%-12.4g new=%-12.4g %+.1f%%\n", mark, k, ov, nv, 100*rel)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated metric(s) regressed beyond %.0f%%\n",
			regressions, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no gated regressions (threshold %.0f%%)\n", 100**threshold)
}
