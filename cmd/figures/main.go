// Command figures regenerates the paper's evaluation artifacts: every
// figure (4-14) and Table II, plus the §IV analytic claims.
//
// Usage:
//
//	figures -exp fig7            # one experiment, full scale
//	figures -exp all -quick      # everything, reduced scale
//	figures -list                # show available experiment ids
//
// Full-scale dissemination figures take a few seconds each; the full
// Table II sweep (2 variants x 4 block periods x 5 seeds of 10,000
// transactions through the whole EOV pipeline) takes several minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fabricgossip/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig4..fig14, table2, analytics) or 'all'")
	seed := flag.Int64("seed", 1, "root random seed")
	quick := flag.Bool("quick", false, "reduced scale for smoke runs")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(harness.ExperimentIDs(), "\n"))
		return
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.ExperimentIDs()
	}
	for _, id := range ids {
		rep, err := harness.RunExperiment(id, *seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep)
	}
}
