// Package fabricgossip reproduces "Fair and Efficient Gossip in Hyperledger
// Fabric" (Berendea, Mercier, Onica, Rivière — IEEE ICDCS 2020): the stock
// Fabric gossip layer, the paper's enhanced infect-upon-contagion protocol,
// and the full execute-order-validate substrate needed to regenerate every
// figure and table of the paper's evaluation.
//
// The implementation lives under internal/:
//
//   - internal/gossip (+ original, enhanced) — the dissemination protocols;
//   - internal/analysis — the appendix mathematics (Lambert-W, TTL tables);
//   - internal/sim, netmodel, transport, wire — the deterministic
//     discrete-event network substrate and a live TCP runtime;
//   - internal/ledger, chaincode, endorse, order, raft, peer, client — the
//     Fabric EOV pipeline;
//   - internal/harness — the experiment runners behind cmd/figures.
//
// Beyond the paper, internal/scenario scripts deterministic fault and churn
// experiments — crashes, restarts with catch-up, partitions, leader
// failover, slow links, staggered joins — against both protocols at up to
// thousands of peers (cmd/scenarios runs the built-in catalog).
//
// Entry points: cmd/figures regenerates the paper's artifacts, cmd/ttlcalc
// computes protocol parameters, cmd/gossipnet runs a live TCP demo,
// cmd/scenarios runs the fault-scenario catalog, and examples/ holds four
// runnable walkthroughs. bench_test.go benchmarks one workload per
// figure/table plus the scenario engine. See README.md for the full paper
// mapping and usage guide.
package fabricgossip
