package fabricgossip

// One benchmark per evaluation artifact (Figures 4-14, Table II, §IV
// analytics), each running a reduced-scale instance of the same workload
// the cmd/figures tool regenerates at full scale, plus micro-benchmarks of
// the hot paths (codec, engine, gossip step, Raft ordering).
//
// Benchmarks report domain metrics via b.ReportMetric:
//
//	tail_ms      p99.9 dissemination latency (latency figures)
//	peer_MBps    regular-peer bandwidth (bandwidth figures)
//	conflicts    invalidated transactions (Table II)
//	conflict_rate  workload-plane validation conflict fraction
//	commit_tail_ms workload-plane p99.9 submit-to-commit latency
//	sim_events   discrete events per scenario run (deterministic)
//	events_per_s engine throughput (wall-clock; trajectory only, not gated)
//	allocs_op    heap allocations per delivered message (hot-path contract)
//
// cmd/benchdiff compares two exported BENCH_*.json artifacts and gates CI
// on the deterministic units.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"fabricgossip/internal/analysis"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/membership"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/obs"
	"fabricgossip/internal/order"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/scenario"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

const (
	benchPeers  = 50
	benchBlocks = 40
)

// baseline collects every domain metric the benchmarks report so one
// `-bench` pass can be exported as a machine-readable artifact: set
// BENCH_BASELINE=<path> and TestMain writes a JSON map keyed
// "<benchmark>/<unit>" after the run. CI uploads it per commit, so the
// perf trajectory (tail_ms, peer_MBps, sim_events, ...) accumulates.
var baseline = struct {
	mu      sync.Mutex
	metrics map[string]float64
}{metrics: map[string]float64{}}

// reportMetric mirrors b.ReportMetric into the baseline collector.
func reportMetric(b *testing.B, value float64, unit string) {
	b.ReportMetric(value, unit)
	baseline.mu.Lock()
	baseline.metrics[b.Name()+"/"+unit] = value
	baseline.mu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_BASELINE"); path != "" && code == 0 {
		baseline.mu.Lock()
		data, err := json.MarshalIndent(baseline.metrics, "", "  ")
		baseline.mu.Unlock()
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench baseline:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func benchDissemination(b *testing.B, p harness.Params, wantBandwidth bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		res, err := harness.RunDissemination(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // report metrics from the last run
			if wantBandwidth {
				gen := int(time.Duration(p.NumBlocks)*p.BlockInterval/p.Bucket) + 1
				reportMetric(b, res.Traffic.NodeAverage(res.RegularID, gen), "peer_MBps")
			} else {
				all := res.Latencies.All()
				reportMetric(b, float64(all.Quantile(0.999))/1e6, "tail_ms")
			}
		}
	}
}

func quick(v harness.Variant) harness.Params {
	return harness.QuickScale(harness.DefaultParams(v, 1), benchPeers, benchBlocks)
}

// BenchmarkFig4PeerLatencyOriginal regenerates Figure 4's workload: peer
// latency under the stock infect-and-die + pull gossip.
func BenchmarkFig4PeerLatencyOriginal(b *testing.B) {
	benchDissemination(b, quick(harness.VariantOriginal), false)
}

// BenchmarkFig5BlockLatencyOriginal regenerates Figure 5's workload (same
// run, block-level view).
func BenchmarkFig5BlockLatencyOriginal(b *testing.B) {
	benchDissemination(b, quick(harness.VariantOriginal), false)
}

// BenchmarkFig6BandwidthOriginal regenerates Figure 6's workload: per-peer
// bandwidth under the stock gossip.
func BenchmarkFig6BandwidthOriginal(b *testing.B) {
	benchDissemination(b, quick(harness.VariantOriginal), true)
}

// BenchmarkFig7PeerLatencyEnhanced regenerates Figure 7's workload:
// enhanced gossip with fout=4-equivalent parameters.
func BenchmarkFig7PeerLatencyEnhanced(b *testing.B) {
	benchDissemination(b, quick(harness.VariantEnhanced), false)
}

// BenchmarkFig8BlockLatencyEnhanced regenerates Figure 8's workload.
func BenchmarkFig8BlockLatencyEnhanced(b *testing.B) {
	benchDissemination(b, quick(harness.VariantEnhanced), false)
}

// BenchmarkFig9BandwidthEnhanced regenerates Figure 9's workload.
func BenchmarkFig9BandwidthEnhanced(b *testing.B) {
	benchDissemination(b, quick(harness.VariantEnhanced), true)
}

// BenchmarkFig10LeaderFanoutAblation regenerates Figure 10's ablation: the
// leader pushes with fleaderout = fout instead of delegating.
func BenchmarkFig10LeaderFanoutAblation(b *testing.B) {
	p := harness.QuickScale(harness.Fig10Params(1), benchPeers, benchBlocks)
	benchDissemination(b, p, true)
}

// BenchmarkFig11NoDigestAblation regenerates Figure 11's ablation: bodies
// pushed on every hop (digests disabled).
func BenchmarkFig11NoDigestAblation(b *testing.B) {
	p := harness.QuickScale(harness.Fig11Params(1), benchPeers, 10)
	benchDissemination(b, p, true)
}

// BenchmarkFig12PeerLatencyFout2 regenerates Figure 12's workload: the
// conservative fout=2 configuration.
func BenchmarkFig12PeerLatencyFout2(b *testing.B) {
	p := harness.QuickScale(harness.Fig12Params(1), benchPeers, benchBlocks)
	benchDissemination(b, p, false)
}

// BenchmarkFig13BlockLatencyFout2 regenerates Figure 13's workload.
func BenchmarkFig13BlockLatencyFout2(b *testing.B) {
	p := harness.QuickScale(harness.Fig12Params(1), benchPeers, benchBlocks)
	benchDissemination(b, p, false)
}

// BenchmarkFig14BandwidthFout2 regenerates Figure 14's workload.
func BenchmarkFig14BandwidthFout2(b *testing.B) {
	p := harness.QuickScale(harness.Fig12Params(1), benchPeers, benchBlocks)
	benchDissemination(b, p, true)
}

// BenchmarkTable2Conflicts regenerates Table II's workload at reduced
// scale: the counter-increment EOV pipeline, both variants at one block
// period; the conflicts metric is original-minus-enhanced headroom.
func BenchmarkTable2Conflicts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := harness.DefaultConflictParams(harness.VariantOriginal, time.Second, int64(i+1))
		p.NumPeers = 30
		p.Keys = 30
		p.Rounds = 10
		res, err := harness.RunConflictExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		p.Variant = harness.VariantEnhanced
		res2, err := harness.RunConflictExperiment(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportMetric(b, float64(res.Conflicts), "conflicts_orig")
			reportMetric(b, float64(res2.Conflicts), "conflicts_enh")
		}
	}
}

// BenchmarkAnalyticsTTL benchmarks the §IV analytic pipeline: TTL scan and
// pe computation across fan-outs.
func BenchmarkAnalyticsTTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, fout := range []int{2, 3, 4, 5} {
			if _, err := analysis.TTLFor(100, fout, 1e-6); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkInfectAndDieMonteCarlo benchmarks the §IV infect-and-die reach
// simulation (10k trials at n=100, fout=3 is the figure-quality setting).
func BenchmarkInfectAndDieMonteCarlo(b *testing.B) {
	rng := sim.NewRand(1)
	for i := 0; i < b.N; i++ {
		st := analysis.SimulateInfectAndDie(100, 3, 100, rng)
		if st.MeanReached < 80 {
			b.Fatal("implausible reach")
		}
	}
}

// --- fault/churn scenario benchmarks (internal/scenario) ---

func benchScenario(b *testing.B, name string, peers int, v harness.Variant) {
	b.Helper()
	var events uint64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed(name, scenario.Options{
			Peers: peers, Variant: v, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		events += rep.EngineEvents
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioCrashRestart tracks the crash/restart-with-catchup
// scenario at the paper's organization size.
func BenchmarkScenarioCrashRestart(b *testing.B) {
	benchScenario(b, "crash-restart", 100, harness.VariantEnhanced)
}

// BenchmarkScenarioChurn tracks rolling crash/restart waves.
func BenchmarkScenarioChurn(b *testing.B) {
	benchScenario(b, "churn", 100, harness.VariantEnhanced)
}

// BenchmarkScenarioPartitionHeal tracks the split-brain + recovery path.
func BenchmarkScenarioPartitionHeal(b *testing.B) {
	benchScenario(b, "partition-heal", 100, harness.VariantOriginal)
}

// BenchmarkScenarioCrashRestart1000 is the scale benchmark behind the
// engine's hot-path work: a thousand-peer fault scenario must complete in
// seconds of wall time.
func BenchmarkScenarioCrashRestart1000(b *testing.B) {
	benchScenario(b, "crash-restart", 1000, harness.VariantEnhanced)
}

// --- multi-organization benchmarks (harness.Network) ---

func benchScenarioOrgs(b *testing.B, name string, peers, orgs int, v harness.Variant) {
	b.Helper()
	var events uint64
	var tail float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed(name, scenario.Options{
			Peers: peers, Orgs: orgs, Variant: v, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		events += rep.EngineEvents
		tail = float64(rep.Latency.P999) / 1e6
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, tail, "tail_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioOrgPartitionHeal tracks the whole-org partition plus
// orderer-backlog-restream path at 4 organizations.
func BenchmarkScenarioOrgPartitionHeal(b *testing.B) {
	benchScenarioOrgs(b, "org-partition-heal", 100, 4, harness.VariantEnhanced)
}

// BenchmarkScenarioOrgColdJoin tracks the deep whole-org catch-up path.
func BenchmarkScenarioOrgColdJoin(b *testing.B) {
	benchScenarioOrgs(b, "org-cold-join", 100, 4, harness.VariantEnhanced)
}

// BenchmarkScenarioOrgMixedProtocols tracks both protocols sharing one
// channel (alternating per organization).
func BenchmarkScenarioOrgMixedProtocols(b *testing.B) {
	benchScenarioOrgs(b, "org-mixed-protocols", 100, 4, harness.VariantEnhanced)
}

// BenchmarkScenarioOrgOutageOrdererDown tracks the anchor-peer cross-org
// recovery path: a whole organization and then the ordering service crash,
// and the org restarts cold with the orderer still down, recovering through
// remote anchors over WAN links. Beyond the usual event fingerprint it
// exports the recovery plane's own metrics: sync_bytes (StateRequest +
// StateResponse traffic, deterministic per seed) and sync_tail_ms (the
// p99.9 catch-up latency) — both gated by cmd/benchdiff.
func BenchmarkScenarioOrgOutageOrdererDown(b *testing.B) {
	var events uint64
	var syncBytes, syncTail float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed("org-outage-orderer-down", scenario.Options{
			Peers: 100, Orgs: 4, Variant: harness.VariantEnhanced, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		events += rep.EngineEvents
		syncBytes = float64(rep.SyncBytes)
		syncTail = float64(rep.Recoveries.P999) / 1e6
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, syncBytes, "sync_bytes")
	reportMetric(b, syncTail, "sync_tail_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioOrgAsymConsortium tracks the heterogeneous-org-size
// layout (one datacenter org plus two small branches).
func BenchmarkScenarioOrgAsymConsortium(b *testing.B) {
	benchScenarioOrgs(b, "org-asym-consortium", 100, 3, harness.VariantEnhanced)
}

// BenchmarkScenarioViewConvergence1000 is the dense-membership acceptance
// run: a cold thousand-peer organization under the SWIM extensions
// (piggybacked events, probe-based suspicion, view shuffling) must
// converge its views to >= 0.95 steady-state completeness. Beyond the
// usual event fingerprint it exports the membership plane's own metrics:
// view_completeness (either-drift: a drop means views went sparse, a rise
// means the baseline was stale) and leader_convergence_ms (increase =
// regression), both gated by cmd/benchdiff.
func BenchmarkScenarioViewConvergence1000(b *testing.B) {
	var events uint64
	var compl, convMs float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed("org-view-convergence", scenario.Options{
			Peers: 1000, Variant: harness.VariantEnhanced, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		if rep.ViewCompleteness < 0.95 {
			b.Fatalf("view completeness = %.3f at 1x1000, want >= 0.95", rep.ViewCompleteness)
		}
		events += rep.EngineEvents
		compl = rep.ViewCompleteness
		convMs = float64(rep.LeaderConvergence) / 1e6
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, compl, "view_completeness")
	reportMetric(b, convMs, "leader_convergence_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioFlappingMembers tracks the suspicion/refutation path
// under sustained packet loss plus genuine churn (org-flapping-members):
// the view must stay complete while lossy-but-live peers are refuted
// rather than flapped through dead.
func BenchmarkScenarioFlappingMembers(b *testing.B) {
	var events uint64
	var compl float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed("org-flapping-members", scenario.Options{
			Peers: 300, Variant: harness.VariantEnhanced, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		events += rep.EngineEvents
		compl = rep.ViewCompleteness
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, compl, "view_completeness")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioTxloadHotkeyContention tracks the transaction workload
// plane's full execute-order-validate path under Zipf hot-key contention
// (txload-hotkey-contention at 2 orgs x 20 peers). Beyond the usual event
// fingerprint it exports the workload plane's own metrics: conflict_rate
// (either-drift: a drop can mean the MVCC path stopped detecting
// collisions, not that contention improved) and commit_tail_ms (the p99.9
// submit-to-commit latency; increase = regression) — both gated by
// cmd/benchdiff.
func BenchmarkScenarioTxloadHotkeyContention(b *testing.B) {
	var events uint64
	var rate, commitTail float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed("txload-hotkey-contention", scenario.Options{
			Peers: 40, Orgs: 2, Variant: harness.VariantEnhanced, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		w := rep.Workload
		if w == nil || w.Committed == 0 {
			b.Fatalf("no transactions committed: %+v", w)
		}
		if w.Submitted != w.Committed+w.Conflicts {
			b.Fatalf("accounting leak: %d submitted, %d committed + %d conflicts",
				w.Submitted, w.Committed, w.Conflicts)
		}
		events += rep.EngineEvents
		rate = w.ConflictRate()
		commitTail = float64(w.Latency.P999) / 1e6
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, rate, "conflict_rate")
	reportMetric(b, commitTail, "commit_tail_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioConsenterFailover tracks the Raft ordering cluster's
// failover path (consenter-minority-loss at 2 orgs x 20 peers: one of
// three consenters crashes under transaction load). Beyond the usual event
// fingerprint it exports the cluster's health metrics: election_ms (total
// leaderless time — growth means elections got slower or more frequent)
// and deliver_gap_ms (the widest pause any organization saw between
// first-time deliveries — the client-visible cost of a failover) — both
// gated by cmd/benchdiff.
func BenchmarkScenarioConsenterFailover(b *testing.B) {
	var events uint64
	var electionMs, gapMs float64
	for i := 0; i < b.N; i++ {
		rep, err := scenario.RunNamed("consenter-minority-loss", scenario.Options{
			Peers: 40, Orgs: 2, Variant: harness.VariantEnhanced, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		w := rep.Workload
		if w == nil || w.Committed == 0 {
			b.Fatalf("no transactions committed: %+v", w)
		}
		if w.Submitted != w.Committed+w.Conflicts {
			b.Fatalf("accounting leak: %d submitted, %d committed + %d conflicts",
				w.Submitted, w.Committed, w.Conflicts)
		}
		events += rep.EngineEvents
		electionMs = float64(rep.Leaderless) / 1e6
		gapMs = float64(rep.DeliverGap) / 1e6
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, electionMs, "election_ms")
	reportMetric(b, gapMs, "deliver_gap_ms")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// --- 10k-peer benchmark tier (sharded parallel engine) ---

// benchScenario10k runs one of the sharded-* catalog entries at 10
// organizations x 1000 peers, in the requested engine mode. sim_events is
// deterministic per mode (the two modes are distinct fingerprint lineages,
// so their event counts differ slightly and each benchmark gates its own);
// events_per_s is the wall-clock trajectory, reported but never gated. On a
// single-core runner the sharded engine still wins (~1.5x on
// crash-restart) because per-shard event queues stay ~10x shallower than
// the sequential global heap; multi-core runners add genuine parallelism
// on top.
func benchScenario10k(b *testing.B, name string, mode scenario.ShardMode) {
	b.Helper()
	benchScenarioSharded(b, name, 10000, mode)
}

// benchScenarioSharded is the scale-tier body shared by the 10k and 100k
// benchmarks. Beyond the usual event fingerprint it exports bytes_per_peer
// — the run's heap high-water divided by the peer count, the per-peer
// memory-footprint contract of the dense-state layout (either-drift gated:
// growth means per-peer state regressed, a large drop means the baseline
// went stale). Heap readings are wall-side and jitter a little with GC
// timing, so the gate tolerance absorbs run-to-run noise; the structural
// regressions it exists to catch (a reintroduced per-peer map, a leaked
// per-peer buffer) move the number by integer factors.
func benchScenarioSharded(b *testing.B, name string, peers int, mode scenario.ShardMode) {
	b.Helper()
	var events uint64
	var heapHigh uint64
	for i := 0; i < b.N; i++ {
		// Garbage left by earlier benchmarks in the same process inflates
		// the heap high-water until the GC happens to run; collect first so
		// bytes_per_peer measures this run, not the suite's execution order.
		runtime.GC()
		rep, err := scenario.RunNamed(name, scenario.Options{
			Peers: peers, Orgs: 10, Variant: harness.VariantEnhanced,
			Seed: int64(i + 1), Sharding: mode,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.CaughtUp != rep.Survivors {
			b.Fatalf("%d of %d survivors caught up", rep.CaughtUp, rep.Survivors)
		}
		if wantSharded := mode != scenario.ShardOff; rep.Sharded != wantSharded {
			b.Fatalf("sharded=%v, want %v", rep.Sharded, wantSharded)
		}
		events += rep.EngineEvents
		heapHigh = rep.HeapHighWater
	}
	reportMetric(b, float64(events)/float64(b.N), "sim_events")
	reportMetric(b, float64(heapHigh)/float64(peers), "bytes_per_peer")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		reportMetric(b, float64(events)/secs, "events_per_s")
	}
}

// BenchmarkScenarioShardedCrashRestart10k is the sharded engine's headline
// scale run: crash-restart with catch-up across 10 orgs x 1000 peers, one
// event loop per organization plus one for the ordering service.
func BenchmarkScenarioShardedCrashRestart10k(b *testing.B) {
	benchScenario10k(b, "sharded-crash-restart", scenario.ShardAuto)
}

// BenchmarkScenarioSequentialCrashRestart10k is the same workload forced
// onto the sequential engine — the denominator for the sharded speedup.
func BenchmarkScenarioSequentialCrashRestart10k(b *testing.B) {
	benchScenario10k(b, "sharded-crash-restart", scenario.ShardOff)
}

// BenchmarkScenarioShardedMembership10k runs SWIM membership convergence
// (piggybacked dissemination, probe-based suspicion, view shuffling) at
// 10 orgs x 1000 peers on the sharded engine.
func BenchmarkScenarioShardedMembership10k(b *testing.B) {
	benchScenario10k(b, "sharded-view-convergence", scenario.ShardAuto)
}

// BenchmarkScenarioSequentialMembership10k is the sequential denominator
// for the membership convergence scale run.
func BenchmarkScenarioSequentialMembership10k(b *testing.B) {
	benchScenario10k(b, "sharded-view-convergence", scenario.ShardOff)
}

// BenchmarkScenarioShardedCrashRestart100k is the 100k-peer tier: the same
// crash-restart workload at 10 orgs x 10,000 peers. At this scale the run
// is dominated by per-peer state, so the benchmark exists primarily to gate
// bytes_per_peer — the dense index-addressed membership/gossip/statesync
// tables, the shared per-block encoding cache, and the aggregated workload
// pool together hold the footprint near 13 KB/peer where the map-based
// layout needed 40+ KB/peer. Expect a couple of minutes per iteration.
func BenchmarkScenarioShardedCrashRestart100k(b *testing.B) {
	benchScenarioSharded(b, "sharded-crash-restart", 100000, scenario.ShardAuto)
}

// BenchmarkMultiOrgDissemination measures the fault-free Figure 1 shape on
// harness.Network directly: 4 orgs x 25 peers, per-org epidemics over a
// shared LAN, reporting the aggregate p99.9 first-reception latency.
func BenchmarkMultiOrgDissemination(b *testing.B) {
	const (
		orgs        = 4
		peersPerOrg = 25
		blocks      = 20
	)
	var tail float64
	for i := 0; i < b.N; i++ {
		lat := make([]time.Duration, 0, orgs*peersPerOrg*blocks)
		starts := make([]map[uint64]time.Duration, orgs)
		for o := range starts {
			starts[o] = make(map[uint64]time.Duration)
		}
		specs := make([]harness.OrgSpec, orgs)
		for o := range specs {
			specs[o] = harness.OrgSpec{Peers: peersPerOrg}
		}
		net, err := harness.NewNetwork(harness.NetworkParams{Seed: int64(i + 1), Orgs: specs},
			harness.WithNetworkCoreHook(func(global int, core *gossip.Core) {
				org := global / peersPerOrg
				core.OnFirstReception(func(blk *ledger.Block, at time.Duration) {
					if start, ok := starts[org][blk.Num]; ok {
						lat = append(lat, at-start)
					} else {
						starts[org][blk.Num] = at
					}
				})
			}))
		if err != nil {
			b.Fatal(err)
		}
		net.StartAll()
		for j, blk := range harness.BuildChain(blocks, 10, 512, int64(i+1)) {
			blk := blk
			net.Engine.At(time.Duration(j)*300*time.Millisecond, func() { net.Append(blk) })
		}
		net.Engine.RunUntil(time.Duration(blocks)*300*time.Millisecond + 10*time.Second)
		net.StopAll()
		if want := orgs * (peersPerOrg - 1) * blocks; len(lat) != want {
			b.Fatalf("recorded %d latencies, want %d", len(lat), want)
		}
		d := metrics.NewDistribution(lat)
		tail = float64(d.Quantile(0.999)) / 1e6
	}
	reportMetric(b, tail, "tail_ms")
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkHotPathDeliveryAllocs locks the allocation-free per-message
// contract end to end: Send -> Traffic.Record -> pooled AfterMsg -> engine
// dispatch -> handler. The allocs_op metric enters the baseline artifact,
// so cmd/benchdiff fails CI if any future change reintroduces a per-message
// allocation. The model is jitter-light and the traffic bucket spans the
// probe so only the steady-state path runs.
func BenchmarkHotPathDeliveryAllocs(b *testing.B) {
	engine := sim.NewEngine(1)
	model := netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
	traffic := netmodel.NewSimTraffic(time.Hour)
	net := transport.NewSimNetwork(engine, model, traffic)
	src := net.AddNode()
	dst := net.AddNode()
	delivered := 0
	dst.SetHandler(func(wire.NodeID, wire.Message) { delivered++ })
	msg := &wire.StateInfo{Height: 1}
	cycle := func() {
		_ = src.Send(dst.ID(), msg)
		engine.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		cycle() // warm the event pool, queue capacity and traffic slots
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkObsOverheadDelivery locks the observability plane's hot-path
// contract: with a metrics registry attached to the transport (wire
// counters and the size histogram live) but tracing off, the per-message
// delivery path still allocates nothing — the obs_overhead metric is the
// allocation count with instruments armed, gated at zero by cmd/benchdiff.
func BenchmarkObsOverheadDelivery(b *testing.B) {
	engine := sim.NewEngine(1)
	model := netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
	traffic := netmodel.NewSimTraffic(time.Hour)
	net := transport.NewSimNetwork(engine, model, traffic)
	src := net.AddNode()
	dst := net.AddNode()
	reg := obs.NewRegistry()
	net.SetObs([]*transport.WireObs{transport.NewWireObs(reg, nil)})
	delivered := 0
	dst.SetHandler(func(wire.NodeID, wire.Message) { delivered++ })
	msg := &wire.StateInfo{Height: 1}
	cycle := func() {
		_ = src.Send(dst.ID(), msg)
		engine.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		cycle() // warm the event pool, queue capacity and traffic slots
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "obs_overhead")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
	if v, ok := reg.Snapshot().Get("wire_msgs_total", "dir", "out"); !ok || v == 0 {
		b.Fatal("registry saw no sends — the instruments were not armed")
	}
}

// BenchmarkGroupedLatencySummarizeAllocs locks the report-time percentile
// contract: once the grouped recorder's scratch buffer has grown to the
// largest query, re-querying SummarizeAll and SummarizeGroup allocates
// nothing (the old All()+NewDistribution path copied every sample into two
// fresh recorders and a fresh sort slice per query). The allocs_op metric
// is gated by cmd/benchdiff.
func BenchmarkGroupedLatencySummarizeAllocs(b *testing.B) {
	g := metrics.NewGroupedLatency()
	g.EnsureGroups(4)
	rng := sim.NewRand(1)
	for o := 0; o < 4; o++ {
		for i := 0; i < 2500; i++ {
			g.Record(o, uint64(i%40), wire.NodeID(i), time.Duration(rng.Intn(1e9)))
		}
	}
	cycle := func() {
		if g.SummarizeAll().N != 10000 {
			b.Fatal("lost samples")
		}
		if g.SummarizeGroup(2).N != 2500 {
			b.Fatal("lost group samples")
		}
	}
	cycle() // grow the scratch buffer once
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkEnhancedPushEnvelopeAllocs locks the pooled-envelope contract
// of the enhanced push path: a leader push draws its wire.Data envelope
// from the protocol's free list with the reference count preset to the
// fan-out, the transport releases it as deliveries terminate, and at steady
// state the whole push — envelope, send, dispatch, handler — allocates
// nothing. The warmup lets the first epidemic run to TTL exhaustion on both
// peers, so the measured cycles are pure re-pushes of a seen block: no
// epidemic state grows and every envelope comes back to the pool. The
// allocs_op metric is gated by cmd/benchdiff.
func BenchmarkEnhancedPushEnvelopeAllocs(b *testing.B) {
	eng := sim.NewEngine(1)
	model := netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
	net := transport.NewSimNetwork(eng, model, netmodel.NewSimTraffic(time.Hour))
	leaderEP := net.AddNode()
	followerEP := net.AddNode()
	peers := []wire.NodeID{leaderEP.ID(), followerEP.ID()}
	ecfg := enhanced.Config{Fout: 3, TTL: 9, TTLDirect: 2, FLeaderOut: 1,
		UseDigests: true, RequestTimeout: 250 * time.Millisecond}
	quietCore := func(ep *transport.SimEndpoint, proto gossip.Protocol) *gossip.Core {
		cfg := gossip.DefaultConfig(ep.ID(), peers)
		cfg.StateInfoInterval = 0
		cfg.AliveInterval = 0
		cfg.RecoveryInterval = 0
		cfg.SuspectTimeout = time.Hour
		core := gossip.New(cfg, ep, eng, eng.Rand("gossip/"+ep.ID().String()), proto)
		core.Start()
		return core
	}
	leader := enhanced.New(ecfg)
	quietCore(leaderEP, leader)
	quietCore(followerEP, enhanced.New(ecfg))
	blk := harness.BuildChain(1, 10, 512, 1)[0]
	cycle := func() {
		leader.OnOrdererBlock(blk)
		eng.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		cycle() // run the epidemic to TTL exhaustion, warm the free lists
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkRandomPeersReuse locks the per-tick sampling contract: a draw
// through RandomPeersInto with an owned buffer is allocation-free, so the
// periodic state-info/alive/push ticks allocate nothing for peer sampling.
// The allocs_op metric is gated by cmd/benchdiff.
func BenchmarkRandomPeersReuse(b *testing.B) {
	engine := sim.NewEngine(1)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), nil)
	peers := make([]wire.NodeID, 1000)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	ep := net.AddNode()
	core := gossip.New(gossip.DefaultConfig(ep.ID(), peers), ep, engine, engine.Rand("gossip"),
		original.New(original.Config{Fout: 3}))
	var buf []wire.NodeID
	cycle := func() {
		buf = core.RandomPeersInto(4, buf)
		if len(buf) != 4 {
			b.Fatal("short sample")
		}
	}
	cycle() // grow the buffer once
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkMembershipLeader locks the leader-query contract: Leader walks
// the sorted tracked slice and answers from the first live probe — no
// allocation and no per-call sort, even over a thousand-peer view (the old
// implementation allocated and sorted the full live list on every tick).
// The allocs_op metric is gated by cmd/benchdiff.
func BenchmarkMembershipLeader(b *testing.B) {
	v := membership.New(membership.Config{Self: 500, Expiration: time.Hour}, nil)
	for i := 0; i < 1000; i++ {
		if i != 500 {
			v.Observe(wire.NodeID(i), 1, 0)
		}
	}
	now := time.Second
	cycle := func() {
		if v.Leader(now) != 0 {
			b.Fatal("wrong leader")
		}
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkMembershipPiggybackIdle locks the piggyback steady state: with
// the SWIM extensions enabled but no pending rumors — a stable
// organization — every ordinary send through the core costs one queue
// check and allocates nothing beyond the raw delivery path. The allocs_op
// metric is gated by cmd/benchdiff.
func BenchmarkMembershipPiggybackIdle(b *testing.B) {
	engine := sim.NewEngine(1)
	model := netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
	net := transport.NewSimNetwork(engine, model, netmodel.NewSimTraffic(time.Hour))
	src := net.AddNode()
	dst := net.AddNode()
	cfg := gossip.DefaultConfig(src.ID(), []wire.NodeID{src.ID(), dst.ID()})
	cfg.StateInfoInterval = 0
	cfg.AliveInterval = 0
	cfg.RecoveryInterval = 0
	cfg.SuspectTimeout = 10 * time.Second
	cfg.PiggybackMax = 32
	cfg.ShuffleInterval = time.Hour // enabled, but never fires in the probe window
	core := gossip.New(cfg, src, engine, engine.Rand("gossip"), original.New(original.Config{Fout: 1}))
	msg := &wire.StateInfo{Height: 1}
	cycle := func() {
		core.Send(dst.ID(), msg)
		engine.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		cycle() // warm the event pool and drain any bootstrap rumors
	}
	if qs := core.MembershipStats(); qs.Queued != 0 {
		b.Fatalf("rumor queue not drained: %+v", qs)
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

// BenchmarkStateSyncServe locks the zero-copy serve contract end to end: a
// StateRequest for an already-frozen range travels through the simulated
// transport, hits the provider's batch cache and is answered by re-sending
// the cached pre-encoded StateResponse — zero allocations and zero
// re-encoding of the block trees at steady state. The allocs_op metric is
// gated by cmd/benchdiff.
func BenchmarkStateSyncServe(b *testing.B) {
	engine := sim.NewEngine(1)
	model := netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
	traffic := netmodel.NewSimTraffic(time.Hour)
	net := transport.NewSimNetwork(engine, model, traffic)
	serverEP := net.AddNode()
	client := net.AddNode()
	peers := []wire.NodeID{serverEP.ID(), client.ID()}
	core := gossip.New(gossip.DefaultConfig(serverEP.ID(), peers), serverEP, engine,
		engine.Rand("gossip"), original.New(original.Config{Fout: 3}))
	for _, blk := range harness.BuildChain(32, 10, 512, 1) {
		core.AddBlock(blk)
	}
	responses := 0
	client.SetHandler(func(_ wire.NodeID, m wire.Message) {
		if _, ok := m.(*wire.StateResponse); ok {
			responses++
		}
	})
	req := &wire.StateRequest{From: 0, To: 32}
	cycle := func() {
		_ = client.Send(serverEP.ID(), req)
		engine.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 200; i++ {
		cycle() // freeze + cache the batch, warm the event pool
	}
	reportMetric(b, testing.AllocsPerRun(2000, cycle), "allocs_op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	if responses == 0 {
		b.Fatal("no responses served")
	}
	if stats := core.StateSyncStats(); stats.ServedCached == 0 {
		b.Fatal("serve path never hit the frozen-batch cache")
	}
}

// BenchmarkWireMarshalBlock measures encoding one paper-sized block
// (50 tx x ~3.2 KB).
func BenchmarkWireMarshalBlock(b *testing.B) {
	blk := harness.BuildChain(1, 50, 3000, 1)[0]
	msg := &wire.Data{Block: blk, Counter: 3}
	b.SetBytes(int64(msg.EncodedSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(wire.Marshal(msg)) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

// BenchmarkWireUnmarshalBlock measures decoding the same block.
func BenchmarkWireUnmarshalBlock(b *testing.B) {
	blk := harness.BuildChain(1, 50, 3000, 1)[0]
	data := wire.Marshal(&wire.Data{Block: blk, Counter: 3})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEngine measures raw event throughput of the discrete-event
// engine (the floor under every experiment's run time).
func BenchmarkSimEngine(b *testing.B) {
	e := sim.NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.After(time.Microsecond, tick)
	}
	e.After(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	if count == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkLedgerCommit measures validating and committing a 50-tx block.
func BenchmarkLedgerCommit(b *testing.B) {
	blocks := harness.BuildChain(b.N, 50, 256, 1)
	led := ledger.NewLedger(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := led.Commit(blocks[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRaftOrdering measures end-to-end ordered-entry throughput of a
// three-node Raft cluster under the simulated LAN.
func BenchmarkRaftOrdering(b *testing.B) {
	engine := sim.NewEngine(1)
	model := netmodel.Model{PropMin: 200 * time.Microsecond, PropMax: 500 * time.Microsecond}
	net := transport.NewSimNetwork(engine, model, nil)
	ids := []wire.NodeID{0, 1, 2}
	applied := 0
	var leaderNode *raft.Node
	for i := 0; i < 3; i++ {
		ep := net.AddNode()
		n := raft.New(raft.DefaultConfig(ids[i], ids), ep, engine, engine.Rand("raft"))
		if i == 0 {
			n.OnApply(func([]byte) { applied++ })
			leaderNode = n
		} else {
			n.OnApply(func([]byte) {})
		}
		n.Start()
	}
	engine.RunUntil(2 * time.Second)
	_ = leaderNode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := []byte(fmt.Sprintf("entry-%d", i))
		engine.After(0, func() {
			for _, nd := range []*raft.Node{leaderNode} {
				_ = nd.Propose(payload)
			}
		})
		engine.RunFor(2 * time.Millisecond)
	}
	engine.RunFor(time.Second)
	if applied == 0 {
		b.Fatal("nothing applied")
	}
}

// BenchmarkOrderBlockCutter measures the block cutter under a solo
// consenter at the paper's 50-tx cap.
func BenchmarkOrderBlockCutter(b *testing.B) {
	engine := sim.NewEngine(1)
	cut := 0
	svc := order.NewService(order.DefaultConfig(), engine, order.NewSolo(engine, 0), nil,
		func(*ledger.Block) { cut++ })
	txs := harness.BuildChain(1, 50, 256, 1)[0].Txs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Broadcast(txs[i%len(txs)]); err != nil {
			b.Fatal(err)
		}
		engine.RunFor(time.Microsecond)
	}
	engine.RunFor(time.Minute)
	if b.N >= 50 && cut == 0 {
		b.Fatal("no blocks cut")
	}
}
