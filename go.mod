module fabricgossip

go 1.22
