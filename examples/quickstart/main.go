// Quickstart: disseminate blocks through the paper's enhanced gossip in a
// 25-peer simulated organization, in a few lines of API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"fabricgossip/internal/analysis"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

func main() {
	const nPeers = 25

	// 1. Pick protocol parameters analytically: fan-out 3 and the TTL
	//    that makes the probability of imperfect dissemination <= 1e-6.
	cfg, err := enhanced.ConfigFor(nPeers, 3, 1e-6, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enhanced gossip: fout=%d TTL=%d (pe = %.2e)\n",
		cfg.Fout, cfg.TTL, analysis.ImperfectProb(nPeers, cfg.Fout, int(cfg.TTL)))

	// 2. Build a simulated LAN and one gossip core per peer.
	engine := sim.NewEngine(42)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), nil)
	peerIDs := make([]wire.NodeID, nPeers)
	for i := range peerIDs {
		peerIDs[i] = wire.NodeID(i)
	}
	rec := metrics.NewLatencyRecorder()
	start := make(map[uint64]time.Duration)
	for i := 0; i < nPeers; i++ {
		ep := net.AddNode()
		core := gossip.New(gossip.DefaultConfig(ep.ID(), peerIDs), ep, engine,
			engine.Rand("gossip"), enhanced.New(cfg))
		self := ep.ID()
		core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
			if self == 0 {
				start[b.Num] = at // leader reception defines t=0
				return
			}
			rec.Record(b.Num, self, at-start[b.Num])
		})
		core.Start()
	}

	// 3. Inject 20 blocks at the leader peer, one every 100 ms, as the
	//    ordering service would.
	orderer := net.AddNode()
	for i, b := range harness.BuildChain(20, 10, 1000, 42) {
		b := b
		engine.At(time.Duration(i)*100*time.Millisecond, func() {
			_ = orderer.Send(0, &wire.DeliverBlock{Block: b})
		})
	}
	engine.RunUntil(10 * time.Second)

	// 4. Report.
	fmt.Printf("observations: %d blocks x %d peers = %d receptions\n",
		rec.Blocks(), rec.Peers(), rec.Count())
	fmt.Printf("dissemination latency: %v\n", metrics.Summarize(rec.All()))
}
