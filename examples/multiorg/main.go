// Multiorg: the paper's Figure 1 deployment shape — one channel spanning
// three organizations — as a thin client of harness.Network. The ordering
// service streams each new block to one leader peer per organization;
// gossip then disseminates it within each organization only (Fabric does
// not gossip data blocks across organizations, paper §III-A). The per-org
// report shows each epidemic running independently, next to the aggregate
// latency distribution and bandwidth-overhead ratio.
//
//	go run ./examples/multiorg
package main

import (
	"fmt"
	"log"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/wire"
)

const (
	orgs        = 3
	peersPerOrg = 15
	blocks      = 30
)

func main() {
	lat := metrics.NewGroupedLatency()
	starts := make([]map[uint64]time.Duration, orgs)
	for o := range starts {
		starts[o] = make(map[uint64]time.Duration)
	}

	net, err := harness.NewNetwork(harness.NetworkParams{
		Seed:    99,
		Variant: harness.VariantEnhanced,
		Orgs: []harness.OrgSpec{
			{Peers: peersPerOrg}, {Peers: peersPerOrg}, {Peers: peersPerOrg},
		},
	}, harness.WithNetworkCoreHook(func(global int, core *gossip.Core) {
		org := global / peersPerOrg
		core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
			// The first reception inside an org is its leader's copy from
			// the orderer; every other peer measures against it.
			if start, ok := starts[org][b.Num]; ok {
				lat.Record(org, b.Num, wire.NodeID(global), at-start)
			} else {
				starts[org][b.Num] = at
			}
		})
	}))
	if err != nil {
		log.Fatal(err)
	}

	net.StartAll()
	chain := harness.BuildChain(blocks, 20, 1500, 99)
	for i, b := range chain {
		b := b
		net.Engine.At(time.Duration(i)*400*time.Millisecond, func() { net.Append(b) })
	}
	net.Engine.RunUntil(time.Duration(blocks)*400*time.Millisecond + 10*time.Second)
	net.StopAll()

	fmt.Printf("%d organizations x %d peers, %d blocks each:\n", orgs, peersPerOrg, blocks)
	blockBytes := wire.BlockEncodedSize(chain[0])
	for o := 0; o < orgs; o++ {
		rec := lat.Group(o)
		if rec.Blocks() != blocks || rec.Peers() != peersPerOrg-1 {
			log.Fatalf("org %d incomplete: %d blocks x %d peers", o, rec.Blocks(), rec.Peers())
		}
		var inBytes uint64
		for _, id := range net.Orgs[o].Peers {
			in, _ := net.Traffic.NodeTotals(id)
			inBytes += in
		}
		fmt.Printf("  org %c: %v, overhead %.2fx ideal\n", 'A'+o,
			metrics.Summarize(rec.All()),
			metrics.OverheadRatio(inBytes, blockBytes, peersPerOrg, blocks))
	}
	fmt.Printf("  aggregate: %v\n", metrics.Summarize(lat.All().All()))
	fmt.Printf("  total traffic %.2f MB across the shared LAN\n",
		float64(net.Traffic.TotalBytes())/1e6)
	fmt.Println("every organization's epidemic ran independently over the shared LAN")
}
