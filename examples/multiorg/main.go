// Multiorg: the paper's Figure 1 deployment shape — one channel spanning
// three organizations. The ordering service sends each new block to one
// leader peer per organization; gossip then disseminates it within each
// organization only (Fabric does not gossip data blocks across
// organizations, paper §III-A). The per-organization latency report shows
// each epidemic running independently.
//
//	go run ./examples/multiorg
package main

import (
	"fmt"
	"log"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

const (
	orgs        = 3
	peersPerOrg = 15
	blocks      = 30
)

func main() {
	engine := sim.NewEngine(99)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), nil)

	cfg, err := enhanced.ConfigFor(peersPerOrg, 3, 1e-6, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Each organization is an isolated gossip domain: its peers' member
	// lists contain only that organization (ids are global and dense).
	recorders := make([]*metrics.LatencyRecorder, orgs)
	starts := make([]map[uint64]time.Duration, orgs)
	leaders := make([]wire.NodeID, orgs)
	for org := 0; org < orgs; org++ {
		ids := make([]wire.NodeID, peersPerOrg)
		for i := range ids {
			ids[i] = wire.NodeID(org*peersPerOrg + i)
		}
		leaders[org] = ids[0]
		recorders[org] = metrics.NewLatencyRecorder()
		starts[org] = make(map[uint64]time.Duration)
		rec, start, leader := recorders[org], starts[org], leaders[org]
		for _, id := range ids {
			ep := net.AddNode()
			if ep.ID() != id {
				log.Fatalf("id mismatch: %v vs %v", ep.ID(), id)
			}
			core := gossip.New(gossip.DefaultConfig(id, ids), ep, engine,
				engine.Rand("gossip"), enhanced.New(cfg))
			self := id
			core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
				if self == leader {
					start[b.Num] = at
					return
				}
				rec.Record(b.Num, self, at-start[b.Num])
			})
			core.Start()
		}
	}

	// The ordering service sends every block to one leader peer per
	// organization (paper §II-B: "orderers send a new block to one peer
	// in each organization").
	orderer := net.AddNode()
	for i, b := range harness.BuildChain(blocks, 20, 1500, 99) {
		b := b
		engine.At(time.Duration(i)*400*time.Millisecond, func() {
			for _, leader := range leaders {
				_ = orderer.Send(leader, &wire.DeliverBlock{Block: b})
			}
		})
	}
	engine.RunUntil(time.Duration(blocks)*400*time.Millisecond + 10*time.Second)

	fmt.Printf("%d organizations x %d peers, %d blocks each:\n", orgs, peersPerOrg, blocks)
	for org := 0; org < orgs; org++ {
		rec := recorders[org]
		if rec.Blocks() != blocks || rec.Peers() != peersPerOrg-1 {
			log.Fatalf("org %d incomplete: %d blocks x %d peers", org, rec.Blocks(), rec.Peers())
		}
		fmt.Printf("  org %c: %v\n", 'A'+org, metrics.Summarize(rec.All()))
	}
	fmt.Println("every organization's epidemic ran independently over the shared LAN")
}
