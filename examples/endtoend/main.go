// Endtoend: the full execute-order-validate pipeline on one simulated
// network — MSP-certified identities, a client collecting endorsements, a
// three-node Raft ordering cluster cutting and signing blocks, enhanced
// gossip disseminating them to every peer, and MVCC validation committing
// them to each peer's ledger.
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/client"
	"fabricgossip/internal/endorse"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/order"
	"fabricgossip/internal/peer"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

const (
	nPeers    = 20
	nOrderers = 3
)

func main() {
	engine := sim.NewEngine(2024)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), nil)

	// Membership service provider certifies everyone.
	idRng := rand.New(rand.NewSource(1))
	provider, err := msp.NewProvider(idRng)
	if err != nil {
		log.Fatal(err)
	}
	ordererID, ordererSigner, err := provider.Enroll(msp.RoleOrderer, "ordererOrg", "orderer0", idRng)
	if err != nil {
		log.Fatal(err)
	}
	endorserID, endorserSigner, err := provider.Enroll(msp.RolePeer, "orgA", "peer1", idRng)
	if err != nil {
		log.Fatal(err)
	}
	policy := endorse.NewPolicy(1, endorserID)

	// Peers 0..nPeers-1 run enhanced gossip + validation.
	gossipCfg, err := enhanced.ConfigFor(nPeers, 3, 1e-6, 2)
	if err != nil {
		log.Fatal(err)
	}
	peerIDs := make([]wire.NodeID, nPeers)
	for i := range peerIDs {
		peerIDs[i] = wire.NodeID(i)
	}
	peers := make([]*peer.Peer, nPeers)
	for i := 0; i < nPeers; i++ {
		ep := net.AddNode()
		core := gossip.New(gossip.DefaultConfig(ep.ID(), peerIDs), ep, engine,
			engine.Rand("gossip"), enhanced.New(gossipCfg))
		peers[i] = peer.New(core, policy.Checker(), engine, peer.Config{
			ValidationPerTx: 5 * time.Millisecond,
			OrdererKey:      ordererID.Key,
		})
		core.Start()
	}

	// Three-node Raft ordering cluster; its nodes occupy ids
	// nPeers..nPeers+2 on the same network. The lead service delivers
	// cut blocks to the organization's leader peer (peer 0).
	raftIDs := make([]wire.NodeID, nOrderers)
	raftEps := make([]*transport.SimEndpoint, nOrderers)
	for i := range raftIDs {
		raftEps[i] = net.AddNode()
		raftIDs[i] = raftEps[i].ID()
	}
	var lead *order.Service
	deliverEp := net.AddNode() // dedicated delivery endpoint of the lead orderer
	for i := 0; i < nOrderers; i++ {
		node := raft.New(raft.DefaultConfig(raftIDs[i], raftIDs), raftEps[i], engine, engine.Rand("raft"))
		deliver := func(*ledger.Block) {} // followers cut but do not deliver
		if i == 0 {
			deliver = func(b *ledger.Block) { _ = deliverEp.Send(0, &wire.DeliverBlock{Block: b}) }
		}
		svc := order.NewService(order.Config{MaxTxPerBlock: 5, BatchTimeout: 400 * time.Millisecond},
			engine, raft.NewConsenter(node, engine), ordererSigner, deliver)
		if i == 0 {
			lead = svc
		}
		node.Start()
	}

	// The endorsing peer simulates chaincodes against its committed state.
	endorser := endorse.NewEndorser(endorserID, endorserSigner, peers[1].State())
	endorser.Install(chaincode.Counter{})
	endorser.Install(chaincode.HighThroughput{})

	cl, err := client.New("client0", []*endorse.Endorser{endorser}, lead.Broadcast)
	if err != nil {
		log.Fatal(err)
	}

	// Workload: 30 counter increments across 3 keys, one every 150 ms —
	// fast enough that a few same-key increments race and conflict.
	keys := []string{"alpha", "beta", "gamma"}
	for i := 0; i < 30; i++ {
		key := keys[i%len(keys)]
		engine.At(time.Duration(i)*150*time.Millisecond, func() {
			if _, err := cl.Invoke("counter", []string{"incr", key}, nil); err != nil {
				fmt.Printf("  invoke error: %v\n", err)
			}
		})
	}
	engine.RunUntil(30 * time.Second)

	// Report: every peer holds the same chain; counters reflect the valid
	// increments; invalid ones were MVCC conflicts.
	fmt.Printf("ordering service cut %d blocks\n", lead.Height())
	h := peers[0].Ledger().Height()
	same := true
	for _, p := range peers[1:] {
		same = same && p.Ledger().Height() == h
	}
	fmt.Printf("all %d peers at height %d: %v\n", nPeers, h, same)

	state := peers[1].State()
	var sum uint64
	for _, k := range keys {
		vv, _ := state.Get(k)
		v, _ := chaincode.DecodeUint64(vv.Value)
		fmt.Printf("  counter %-5s = %d\n", k, v)
		sum += v
	}
	st := cl.Stats()
	conflicts := peers[1].Conflicts()
	fmt.Printf("submitted %d, committed %d, validation-time conflicts %d\n",
		st.Submitted, sum, conflicts)
	// The Raft consenter is at-least-once: proposals resubmitted across a
	// leader change can appear twice in the ordered stream. Duplicates
	// are harmless — the second copy always fails MVCC validation — but
	// they show up in the conflict count.
	if dup := int(sum) + conflicts - st.Submitted; dup > 0 {
		fmt.Printf("(%d duplicate ordering(s) from at-least-once resubmission, rejected by MVCC)\n", dup)
	}
}
