// Conflicts: a reduced-scale Table II — how the block generation period and
// the gossip protocol affect the number of invalidated (MVCC-conflicted)
// transactions under the paper's counter-increment workload.
//
//	go run ./examples/conflicts
package main

import (
	"fmt"
	"log"
	"time"

	"fabricgossip/internal/harness"
)

func main() {
	periods := []time.Duration{2 * time.Second, time.Second}
	fmt.Println("counter workload: 40 keys x 25 rounds at 5 tx/s, 50 peers, single endorser")
	fmt.Printf("%-8s %10s %10s %12s\n", "period", "original", "enhanced", "difference")
	for _, period := range periods {
		var conflicts [2]int
		for i, v := range []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced} {
			p := harness.DefaultConflictParams(v, period, 3)
			p.NumPeers = 50
			p.Keys = 40
			p.Rounds = 25
			res, err := harness.RunConflictExperiment(p)
			if err != nil {
				log.Fatal(err)
			}
			conflicts[i] = res.Conflicts
			if res.Conflicts != res.PeerReportedConflicts {
				log.Fatalf("accounting mismatch: %d vs %d", res.Conflicts, res.PeerReportedConflicts)
			}
		}
		diff := 0.0
		if conflicts[0] > 0 {
			diff = 100 * float64(conflicts[1]-conflicts[0]) / float64(conflicts[0])
		}
		fmt.Printf("%-8v %10d %10d %11.1f%%\n", period, conflicts[0], conflicts[1], diff)
	}
	fmt.Println("\n(the paper's full Table II: go run ./cmd/figures -exp table2)")
}
