// Compare: run the original and enhanced gossip protocols side by side on
// the same workload and print the paper's headline comparison — tail
// latency and bandwidth (paper §V-C: ">10x faster to reach all peers, >40%
// less bandwidth").
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/metrics"
)

func main() {
	const seed = 7
	// 60 peers x 120 blocks keeps the example under ~10 s of wall time;
	// cmd/figures regenerates the full 100x1000 runs.
	origP := harness.QuickScale(harness.DefaultParams(harness.VariantOriginal, seed), 60, 120)
	enhP := harness.QuickScale(harness.DefaultParams(harness.VariantEnhanced, seed), 60, 120)

	orig, err := harness.RunDissemination(origP)
	if err != nil {
		log.Fatal(err)
	}
	enh, err := harness.RunDissemination(enhP)
	if err != nil {
		log.Fatal(err)
	}

	oAll, eAll := orig.Latencies.All(), enh.Latencies.All()
	fmt.Println("dissemination latency across all peers and blocks:")
	fmt.Printf("  original: %v\n", metrics.Summarize(oAll))
	fmt.Printf("  enhanced: %v\n", metrics.Summarize(eAll))
	o99, e99 := oAll.Quantile(0.999), eAll.Quantile(0.999)
	fmt.Printf("  p99.9 tail: original %v vs enhanced %v (%.1fx faster)\n",
		o99, e99, float64(o99)/float64(e99))
	fmt.Printf("  worst case: original %v vs enhanced %v (%.1fx faster)\n\n",
		oAll.Max(), eAll.Max(), float64(oAll.Max())/float64(eAll.Max()))

	fmt.Println(harness.CompareBandwidth(orig, enh))
}
