package gossip

import (
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// sinkEndpoint records outbound messages and drops them.
type sinkEndpoint struct {
	id   wire.NodeID
	to   []wire.NodeID
	sent []wire.Message
}

func (s *sinkEndpoint) ID() wire.NodeID { return s.id }
func (s *sinkEndpoint) Send(to wire.NodeID, m wire.Message) error {
	s.to = append(s.to, to)
	s.sent = append(s.sent, m)
	return nil
}
func (s *sinkEndpoint) SetHandler(transport.Handler) {}

func newTestCore(t *testing.T, self wire.NodeID, n int, tune func(*Config)) (*Core, *sinkEndpoint, *sim.Engine) {
	t.Helper()
	peers := make([]wire.NodeID, n)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	cfg := DefaultConfig(self, peers)
	if tune != nil {
		tune(&cfg)
	}
	ep := &sinkEndpoint{id: self}
	engine := sim.NewEngine(1)
	return New(cfg, ep, engine, engine.Rand("gossip"), noopProtocol{}), ep, engine
}

type noopProtocol struct{}

func (noopProtocol) Name() string                          { return "noop" }
func (noopProtocol) Start(*Core)                           {}
func (noopProtocol) Stop()                                 {}
func (noopProtocol) OnOrdererBlock(*ledger.Block)          {}
func (noopProtocol) Handle(wire.NodeID, wire.Message) bool { return false }
func (noopProtocol) OnBlockStored(*ledger.Block)           {}

// newGappyCore builds a core over a non-contiguous peer list (every other
// id), forcing the materialized-slice sampling path: contiguous lists take
// the virtual range path and hold no candidate slice at all.
func newGappyCore(t *testing.T, self wire.NodeID, n int) *Core {
	t.Helper()
	peers := make([]wire.NodeID, n)
	for i := range peers {
		peers[i] = wire.NodeID(2 * i)
	}
	cfg := DefaultConfig(self, peers)
	engine := sim.NewEngine(1)
	return New(cfg, &sinkEndpoint{id: self}, engine, engine.Rand("gossip"), noopProtocol{})
}

// RandomPeers samples in place with undo-swaps; after every call the
// candidate slice must be back in canonical order (peers minus self, in
// cfg.Peers order), or the next call's draw — and the whole run's
// determinism — would depend on call history.
func TestRandomPeersRestoresCanonicalOrder(t *testing.T) {
	c := newGappyCore(t, 6, 10)
	if c.rangeMode {
		t.Fatal("gappy peer list must not take the range path")
	}
	canonical := append([]wire.NodeID(nil), c.others...)
	for call := 0; call < 50; call++ {
		k := 1 + call%len(canonical)
		got := c.RandomPeers(k)
		if len(got) != k {
			t.Fatalf("call %d: got %d peers, want %d", call, len(got), k)
		}
		seen := map[wire.NodeID]bool{}
		for _, p := range got {
			if p == c.cfg.Self {
				t.Fatalf("call %d: sampled self", call)
			}
			if seen[p] {
				t.Fatalf("call %d: duplicate peer %v", call, p)
			}
			seen[p] = true
		}
		for i, p := range c.others {
			if p != canonical[i] {
				t.Fatalf("call %d: candidate order not restored at %d: %v vs %v",
					call, i, c.others, canonical)
			}
		}
	}
}

// The undo-swap sampler must consume the random stream and produce results
// exactly like the per-call rebuild it replaced, or every checked-in
// fingerprint would move.
func TestRandomPeersMatchesPerCallRebuildReference(t *testing.T) {
	const n = 17
	c, _, _ := newTestCore(t, 5, n, nil)

	// Reference: the pre-optimization algorithm on an identical stream.
	ref := sim.NewEngine(1).Rand("gossip")
	refDraw := func(k int) []wire.NodeID {
		var cand []wire.NodeID
		for i := 0; i < n; i++ {
			if wire.NodeID(i) != 5 {
				cand = append(cand, wire.NodeID(i))
			}
		}
		if k > len(cand) {
			k = len(cand)
		}
		if k <= 0 {
			return nil
		}
		out := make([]wire.NodeID, k)
		for i := 0; i < k; i++ {
			j := i + ref.Intn(len(cand)-i)
			cand[i], cand[j] = cand[j], cand[i]
			out[i] = cand[i]
		}
		return out
	}

	for call := 0; call < 200; call++ {
		k := call % (n + 2) // exercise k == 0 and k > eligible too
		got := c.RandomPeers(k)
		want := refDraw(k)
		if len(got) != len(want) {
			t.Fatalf("call %d (k=%d): got %v, want %v", call, k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d (k=%d): got %v, want %v", call, k, got, want)
			}
		}
	}
}

// An orderer or observer core lists only remote peers: range mode must
// then draw from the whole range (no self to skip), matching the old
// slice walk on an identical stream.
func TestRandomPeersRangeModeSelfOutsideRange(t *testing.T) {
	const n = 11
	peers := make([]wire.NodeID, n)
	for i := range peers {
		peers[i] = wire.NodeID(10 + i)
	}
	cfg := DefaultConfig(100, peers)
	engine := sim.NewEngine(1)
	c := New(cfg, &sinkEndpoint{id: 100}, engine, engine.Rand("gossip"), noopProtocol{})
	if !c.rangeMode || c.selfInRange || c.nOthers != n {
		t.Fatalf("rangeMode=%v selfInRange=%v nOthers=%d, want true/false/%d",
			c.rangeMode, c.selfInRange, c.nOthers, n)
	}

	ref := sim.NewEngine(1).Rand("gossip")
	refDraw := func(k int) []wire.NodeID {
		cand := append([]wire.NodeID(nil), peers...)
		if k > len(cand) {
			k = len(cand)
		}
		out := make([]wire.NodeID, k)
		for i := 0; i < k; i++ {
			j := i + ref.Intn(len(cand)-i)
			cand[i], cand[j] = cand[j], cand[i]
			out[i] = cand[i]
		}
		return out
	}
	for call := 0; call < 100; call++ {
		k := 1 + call%n
		got := c.RandomPeers(k)
		want := refDraw(k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d (k=%d): got %v, want %v", call, k, got, want)
			}
		}
	}
}

// Recovery must still fire when the peer that advertised the maximum height
// has died and been pruned: the fetcher's stale upper bound triggers a
// scan, the scan tightens it and targets the best live peer. (The bound's
// tightening itself is asserted in internal/statesync's unit tests; here
// the delegation from the core's membership sweep must hold.)
func TestRecoveryAfterMaxAdvertiserPruned(t *testing.T) {
	c, ep, engine := newTestCore(t, 0, 4, nil)

	// Peer 1 advertises height 5 and is observed live, then expires and is
	// pruned exactly as aliveTick does.
	c.handleMessage(1, &wire.StateInfo{Height: 5})
	c.handleMessage(1, &wire.Alive{Seq: 1})
	engine.RunUntil(c.cfg.AliveExpiration + 3*c.cfg.AliveInterval + time.Second)
	c.aliveTick()
	if !c.PeerDead(1) {
		t.Fatal("peer 1 should have expired")
	}
	if _, ok := c.PeerHeights()[1]; ok {
		t.Fatal("expired peer's height not forgotten by the fetcher")
	}

	// Peer 2 is live at a lower height; recovery must target it.
	c.handleMessage(2, &wire.StateInfo{Height: 3})
	c.handleMessage(2, &wire.Alive{Seq: 1})
	ep.to, ep.sent = nil, nil
	c.fetcher.Tick()

	var req *wire.StateRequest
	var reqTo wire.NodeID
	for i, m := range ep.sent {
		if r, ok := m.(*wire.StateRequest); ok {
			req, reqTo = r, ep.to[i]
		}
	}
	if req == nil {
		t.Fatal("recovery tick sent no StateRequest despite a live peer being ahead")
	}
	if reqTo != 2 {
		t.Fatalf("recovery targeted %v, want live peer 2", reqTo)
	}
	if req.From != 0 || req.To != 3 {
		t.Fatalf("requested [%d, %d), want [0, 3)", req.From, req.To)
	}
}

// Caught-up peers — the steady state — must skip recovery without sending
// anything (and without consuming random values: determinism).
func TestRecoveryTickNoopWhenCaughtUp(t *testing.T) {
	c, ep, _ := newTestCore(t, 0, 4, nil)
	c.fetcher.Tick()
	if len(ep.sent) != 0 {
		t.Fatalf("fresh core sent %d messages from recovery tick, want 0", len(ep.sent))
	}
}

// Every aliveTick must reuse the one zero-filled metadata buffer instead of
// allocating AliveMetaSize bytes per heartbeat round.
func TestAliveTickReusesMetaBuffer(t *testing.T) {
	c, ep, _ := newTestCore(t, 0, 4, func(cfg *Config) { cfg.AliveMetaSize = 64 })
	c.aliveTick()
	c.aliveTick()
	var metas [][]byte
	for _, m := range ep.sent {
		if a, ok := m.(*wire.Alive); ok {
			metas = append(metas, a.Meta)
		}
	}
	if len(metas) < 2 {
		t.Fatalf("captured %d Alive messages, want >= 2", len(metas))
	}
	for i, meta := range metas {
		if len(meta) != 64 {
			t.Fatalf("heartbeat %d meta is %d bytes, want 64", i, len(meta))
		}
		if &meta[0] != &metas[0][0] {
			t.Fatalf("heartbeat %d holds a fresh meta buffer; want the shared one", i)
		}
	}
}

// fakeSched captures After calls so a test can fire them by hand with full
// control of the clock.
type fakeSched struct {
	now    time.Duration
	delays []time.Duration
	cbs    []func()
}

func (f *fakeSched) Now() time.Duration { return f.now }
func (f *fakeSched) After(d time.Duration, fn func()) sim.Timer {
	f.delays = append(f.delays, d)
	f.cbs = append(f.cbs, fn)
	return fakeTimer{}
}

type fakeTimer struct{}

func (fakeTimer) Stop() bool { return true }

// The rearming fallback timer must re-arm relative to the previous
// deadline, like sim.Engine.Every: a callback that takes 30ms must shorten
// the next delay by 30ms instead of pushing every subsequent tick later.
func TestRearmingTimerDoesNotAccumulateCallbackDrift(t *testing.T) {
	f := &fakeSched{}
	const interval = time.Second
	everyTimer(f, interval, func() {
		f.now += 30 * time.Millisecond // the callback itself takes 30ms
	})
	if len(f.delays) != 1 || f.delays[0] != interval {
		t.Fatalf("first arm delay %v, want %v", f.delays, interval)
	}

	// Fire tick 1: it runs at its deadline, the callback consumes 30ms.
	f.now = interval
	f.cbs[0]()
	if len(f.delays) != 2 {
		t.Fatalf("tick did not re-arm: %d After calls", len(f.delays))
	}
	if want := interval - 30*time.Millisecond; f.delays[1] != want {
		t.Fatalf("re-arm delay %v, want %v (compensating 30ms of callback time)", f.delays[1], want)
	}

	// Fire tick 2 slightly late on top of callback time: still anchored to
	// the 2*interval grid point.
	f.now = 2*interval + 5*time.Millisecond
	f.cbs[1]()
	if want := interval - 35*time.Millisecond; f.delays[2] != want {
		t.Fatalf("re-arm delay %v, want %v (grid-anchored)", f.delays[2], want)
	}
}

// A schedule that fell multiple intervals behind (process stall, suspend on
// the real-time runtime) must snap to the present and fire one catch-up
// tick, not a burst of every missed one.
func TestRearmingTimerSnapsAfterLongStall(t *testing.T) {
	f := &fakeSched{}
	const interval = time.Second
	everyTimer(f, interval, func() {})

	// The process resumes 10 intervals late.
	f.now = 10 * interval
	f.cbs[0]()
	if len(f.delays) != 2 {
		t.Fatalf("tick did not re-arm: %d After calls", len(f.delays))
	}
	if f.delays[1] != 0 {
		t.Fatalf("post-stall re-arm delay %v, want 0 (snap to now)", f.delays[1])
	}
	// The next tick runs on time; cadence is back to one interval with no
	// further catch-up backlog.
	f.cbs[1]()
	if f.delays[2] != interval {
		t.Fatalf("delay after snap %v, want %v", f.delays[2], interval)
	}
}

// RandomPeersInto with a reused buffer must consume the random stream and
// produce results identically to the allocating RandomPeers — buffer reuse
// is a pure allocation optimization, or every checked-in fingerprint would
// move.
func TestRandomPeersIntoMatchesRandomPeers(t *testing.T) {
	const n = 13
	cInto, _, _ := newTestCore(t, 4, n, nil)
	cRef, _, _ := newTestCore(t, 4, n, nil)
	var buf []wire.NodeID
	for call := 0; call < 200; call++ {
		k := call % (n + 2)
		buf = cInto.RandomPeersInto(k, buf)
		want := cRef.RandomPeers(k)
		if len(buf) != len(want) {
			t.Fatalf("call %d (k=%d): got %v, want %v", call, k, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("call %d (k=%d): got %v, want %v", call, k, buf, want)
			}
		}
	}
}

// BenchmarkRandomPeers measures the sampler at organization scale: k swaps
// plus k undo-swaps, independent of n except for the rng's range.
func BenchmarkRandomPeers(b *testing.B) {
	peers := make([]wire.NodeID, 1000)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	cfg := DefaultConfig(0, peers)
	engine := sim.NewEngine(1)
	c := New(cfg, &sinkEndpoint{}, engine, engine.Rand("gossip"), noopProtocol{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := c.RandomPeers(4); len(got) != 4 {
			b.Fatal("short sample")
		}
	}
}
