package gossip_test

import (
	"testing"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/wire"
)

func uintID(i int) wire.NodeID { return wire.NodeID(i) }

// Failure injection: gossip must deliver through packet loss, which is the
// whole point of epidemic dissemination ("blockchains are expected to work
// under challenging conditions such as churn, packet loss", paper §I).

func TestEnhancedSurvivesPacketLoss(t *testing.T) {
	const n = 40
	cfg, err := enhanced.ConfigFor(n, 4, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := buildOrg(t, 41, n, enhancedFactory(cfg), func(g *gossip.Config) {
		g.RecoveryInterval = 3 * time.Second
		g.StateInfoInterval = time.Second
	})
	o.net.SetDropRate(0.10) // 10% uniform loss
	blocks := testChain(5)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*500*time.Millisecond, func() { o.coresHandleDeliver(b) })
	}
	// The epidemic's redundancy absorbs most loss; recovery mops up any
	// residue well within this horizon.
	o.engine.RunUntil(60 * time.Second)
	for i := 0; i < n; i++ {
		for _, b := range blocks {
			if _, ok := o.received[i][b.Num]; !ok {
				t.Fatalf("peer %d never received block %d under 10%% loss", i, b.Num)
			}
		}
	}
}

func TestOriginalSurvivesPacketLoss(t *testing.T) {
	const n = 30
	o := buildOrg(t, 43, n, originalFactory(original.DefaultConfig()), func(g *gossip.Config) {
		g.RecoveryInterval = 5 * time.Second
		g.StateInfoInterval = time.Second
	})
	o.net.SetDropRate(0.10)
	blocks := testChain(3)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*time.Second, func() { o.coresHandleDeliver(b) })
	}
	o.engine.RunUntil(60 * time.Second)
	for i := 0; i < n; i++ {
		for _, b := range blocks {
			if _, ok := o.received[i][b.Num]; !ok {
				t.Fatalf("peer %d never received block %d under 10%% loss", i, b.Num)
			}
		}
	}
}

func TestEnhancedSurvivesLinkPartitionWithRecovery(t *testing.T) {
	// Cut every inbound link of one peer during dissemination; after the
	// partition heals, recovery brings it up to date.
	const n = 20
	cfg, err := enhanced.ConfigFor(n, 3, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := buildOrg(t, 47, n, enhancedFactory(cfg), func(g *gossip.Config) {
		g.RecoveryInterval = 2 * time.Second
		g.StateInfoInterval = time.Second
	})
	victim := 9
	for i := 0; i < n+1; i++ { // +1 covers the orderer endpoint
		o.net.SetLinkDown(uintID(i), uintID(victim), true)
	}
	blocks := testChain(4)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*300*time.Millisecond, func() { o.coresHandleDeliver(b) })
	}
	o.engine.RunUntil(5 * time.Second)
	if len(o.received[victim]) != 0 {
		t.Fatal("partitioned peer received blocks")
	}
	for i := 0; i < n+1; i++ {
		o.net.SetLinkDown(uintID(i), uintID(victim), false)
	}
	o.engine.RunUntil(30 * time.Second)
	for _, b := range blocks {
		if _, ok := o.received[victim][b.Num]; !ok {
			t.Fatalf("healed peer still missing block %d", b.Num)
		}
	}
	// And its commits arrived in order despite the gap.
	for j, num := range o.committed[victim] {
		if num != uint64(j) {
			t.Fatalf("commit order %v", o.committed[victim])
		}
	}
}
