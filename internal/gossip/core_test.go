package gossip

import (
	"sync"
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// fakeEndpoint is an in-memory transport.Endpoint capturing sends.
type fakeEndpoint struct {
	id wire.NodeID

	mu      sync.Mutex
	handler func(wire.NodeID, wire.Message)
	sent    []sentMsg
}

type sentMsg struct {
	to  wire.NodeID
	msg wire.Message
}

func (f *fakeEndpoint) ID() wire.NodeID { return f.id }

func (f *fakeEndpoint) Send(to wire.NodeID, msg wire.Message) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sent = append(f.sent, sentMsg{to, msg})
	return nil
}

func (f *fakeEndpoint) SetHandler(h transport.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.handler = h
}

func (f *fakeEndpoint) deliver(from wire.NodeID, msg wire.Message) {
	f.mu.Lock()
	h := f.handler
	f.mu.Unlock()
	h(from, msg)
}

func (f *fakeEndpoint) sends() []sentMsg {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]sentMsg, len(f.sent))
	copy(out, f.sent)
	return out
}

// nullProtocol satisfies Protocol without doing anything.
type nullProtocol struct{ stored []uint64 }

func (*nullProtocol) Name() string                          { return "null" }
func (*nullProtocol) Start(*Core)                           {}
func (*nullProtocol) Stop()                                 {}
func (*nullProtocol) OnOrdererBlock(*ledger.Block)          {}
func (*nullProtocol) Handle(wire.NodeID, wire.Message) bool { return false }
func (p *nullProtocol) OnBlockStored(b *ledger.Block)       { p.stored = append(p.stored, b.Num) }

func coreFixture(t *testing.T, cfg func(*Config)) (*Core, *fakeEndpoint, *sim.Engine, *nullProtocol) {
	t.Helper()
	e := sim.NewEngine(1)
	ep := &fakeEndpoint{id: 0}
	peers := []wire.NodeID{0, 1, 2, 3, 4}
	c := DefaultConfig(0, peers)
	if cfg != nil {
		cfg(&c)
	}
	proto := &nullProtocol{}
	core := New(c, ep, e, e.Rand("g"), proto)
	return core, ep, e, proto
}

func blockN(num uint64) *ledger.Block {
	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(num)}}}}
	tx := &ledger.Transaction{
		ID:     ledger.ProposalDigest("c", "cc", rw, []byte{byte(num)}),
		Client: "c", Chaincode: "cc", RWSet: rw,
	}
	b := &ledger.Block{Num: num, Txs: []*ledger.Transaction{tx}}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	return b
}

func TestAddBlockInOrderDelivery(t *testing.T) {
	core, _, _, proto := coreFixture(t, nil)
	var committed []uint64
	core.OnCommit(func(b *ledger.Block) { committed = append(committed, b.Num) })

	// Out of order: 2, 0, 1 — commits must come out 0, 1, 2.
	if !core.AddBlock(blockN(2)) || !core.AddBlock(blockN(0)) {
		t.Fatal("new blocks reported as duplicates")
	}
	if len(committed) != 1 || committed[0] != 0 {
		t.Fatalf("committed = %v after blocks 2,0", committed)
	}
	if core.Height() != 1 {
		t.Fatalf("height = %d", core.Height())
	}
	core.AddBlock(blockN(1))
	if len(committed) != 3 {
		t.Fatalf("committed = %v", committed)
	}
	for i, num := range committed {
		if num != uint64(i) {
			t.Fatalf("commit order %v", committed)
		}
	}
	// Duplicates rejected and not re-stored to the protocol.
	if core.AddBlock(blockN(1)) {
		t.Fatal("duplicate accepted")
	}
	if len(proto.stored) != 3 {
		t.Fatalf("protocol saw %d stored blocks, want 3", len(proto.stored))
	}
}

func TestServeStateRequestRespectsBatchAndGaps(t *testing.T) {
	core, ep, _, _ := coreFixture(t, func(c *Config) { c.RecoveryBatch = 3 })
	for _, n := range []uint64{0, 1, 2, 3, 4, 6} { // gap at 5
		core.AddBlock(blockN(n))
	}
	// Request [0, 100): capped at batch 3.
	ep.deliver(1, &wire.StateRequest{From: 0, To: 100})
	sent := ep.sends()
	if len(sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(sent))
	}
	resp := sent[0].msg.(*wire.StateResponse)
	if len(resp.Blocks()) != 3 || resp.Blocks()[0].Num != 0 {
		t.Fatalf("response blocks = %d", len(resp.Blocks()))
	}
	if !resp.Batch.Frozen() {
		t.Fatal("served batch not frozen (zero-copy serve path)")
	}
	// Request across the gap stops at it.
	ep.deliver(1, &wire.StateRequest{From: 4, To: 7})
	sent = ep.sends()
	resp = sent[1].msg.(*wire.StateResponse)
	if len(resp.Blocks()) != 1 || resp.Blocks()[0].Num != 4 {
		t.Fatalf("gap response = %v", resp.Blocks())
	}
	// Request for blocks we lack entirely: no response at all.
	ep.deliver(1, &wire.StateRequest{From: 10, To: 12})
	if got := len(ep.sends()); got != 2 {
		t.Fatalf("empty-range request answered (%d messages)", got)
	}
}

func TestRecoveryRequestsFromMostAdvancedPeer(t *testing.T) {
	core, ep, e, _ := coreFixture(t, func(c *Config) {
		c.RecoveryInterval = time.Second
		c.StateInfoInterval = 0
		c.AliveInterval = 0
		c.RecoveryBatch = 10
	})
	core.Start()
	defer core.Stop()
	// Peer 3 advertises height 7, peer 2 height 4.
	ep.deliver(3, &wire.StateInfo{Height: 7})
	ep.deliver(2, &wire.StateInfo{Height: 4})
	e.RunUntil(1500 * time.Millisecond)
	var req *wire.StateRequest
	var to wire.NodeID
	for _, s := range ep.sends() {
		if r, ok := s.msg.(*wire.StateRequest); ok {
			req, to = r, s.to
		}
	}
	if req == nil {
		t.Fatal("recovery never fired")
	}
	if to != 3 {
		t.Fatalf("recovery asked peer %v, want the most advanced (3)", to)
	}
	if req.From != 0 || req.To != 7 {
		t.Fatalf("requested [%d, %d), want [0, 7)", req.From, req.To)
	}
}

func TestRecoveryIdleWhenCaughtUp(t *testing.T) {
	core, ep, e, _ := coreFixture(t, func(c *Config) {
		c.RecoveryInterval = time.Second
		c.StateInfoInterval = 0
		c.AliveInterval = 0
	})
	core.Start()
	defer core.Stop()
	core.AddBlock(blockN(0))
	ep.deliver(3, &wire.StateInfo{Height: 1}) // same height
	e.RunUntil(3 * time.Second)
	for _, s := range ep.sends() {
		if _, ok := s.msg.(*wire.StateRequest); ok {
			t.Fatal("recovery fired while caught up")
		}
	}
}

func TestStateInfoAdvertisesInOrderHeight(t *testing.T) {
	core, ep, e, _ := coreFixture(t, func(c *Config) {
		c.StateInfoInterval = time.Second
		c.StateInfoFanout = 2
		c.AliveInterval = 0
		c.RecoveryInterval = 0
	})
	core.Start()
	defer core.Stop()
	core.AddBlock(blockN(0))
	core.AddBlock(blockN(2)) // gap: height stays 1
	e.RunUntil(1100 * time.Millisecond)
	infos := 0
	for _, s := range ep.sends() {
		if si, ok := s.msg.(*wire.StateInfo); ok {
			infos++
			if si.Height != 1 {
				t.Fatalf("advertised height %d, want 1 (gap at 1)", si.Height)
			}
		}
	}
	if infos != 2 {
		t.Fatalf("state info sent to %d peers, want fanout 2", infos)
	}
}

func TestStateResponseFillsGapAndCommits(t *testing.T) {
	core, ep, _, _ := coreFixture(t, nil)
	var committed []uint64
	core.OnCommit(func(b *ledger.Block) { committed = append(committed, b.Num) })
	core.AddBlock(blockN(2))
	ep.deliver(1, &wire.StateResponse{Batch: wire.NewBlockBatch([]*ledger.Block{blockN(0), blockN(1)})})
	if len(committed) != 3 || core.Height() != 3 {
		t.Fatalf("committed %v, height %d", committed, core.Height())
	}
}

func TestRandomPeersNeverIncludesSelfAndClamps(t *testing.T) {
	core, _, _, _ := coreFixture(t, nil)
	for trial := 0; trial < 100; trial++ {
		got := core.RandomPeers(3)
		if len(got) != 3 {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[wire.NodeID]bool{}
		for _, p := range got {
			if p == core.ID() {
				t.Fatal("sampled self")
			}
			if seen[p] {
				t.Fatal("duplicate sample")
			}
			seen[p] = true
		}
	}
	// Asking for more than available clamps to n-1.
	if got := core.RandomPeers(99); len(got) != 4 {
		t.Fatalf("clamped sample = %d, want 4", len(got))
	}
	if got := core.RandomPeers(0); got != nil {
		t.Fatalf("zero sample = %v", got)
	}
}

func TestStoppedCoreIgnoresTraffic(t *testing.T) {
	core, ep, _, _ := coreFixture(t, nil)
	core.Start()
	core.Stop()
	ep.deliver(1, &wire.StateInfo{Height: 9})
	if len(core.PeerHeights()) != 0 {
		t.Fatal("stopped core processed a message")
	}
	if core.AddBlock(blockN(0)) {
		t.Fatal("stopped core stored a block")
	}
}

// TestRealSchedulerPeriodicTimers exercises the live-runtime rearming timer
// path (everyTimer on a non-engine scheduler), which cmd/gossipnet uses.
func TestRealSchedulerPeriodicTimers(t *testing.T) {
	sched := sim.NewRealScheduler()
	defer sched.Close()
	ep := &fakeEndpoint{id: 0}
	cfg := DefaultConfig(0, []wire.NodeID{0, 1, 2})
	cfg.StateInfoInterval = 10 * time.Millisecond
	cfg.StateInfoFanout = 1
	cfg.AliveInterval = 0
	cfg.RecoveryInterval = 0
	core := New(cfg, ep, sched, sim.NewRand(1), &nullProtocol{})
	core.Start()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(ep.sends()) >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	core.Stop()
	if len(ep.sends()) < 3 {
		t.Fatalf("periodic state info fired %d times, want >= 3", len(ep.sends()))
	}
	n := len(ep.sends())
	time.Sleep(50 * time.Millisecond)
	if len(ep.sends()) > n+1 { // one in-flight firing may land post-Stop
		t.Fatal("timers kept firing after Stop")
	}
}
