package gossip

import (
	"sort"
	"time"

	"fabricgossip/internal/wire"
)

// Membership tracks which peers of the organization are believed alive,
// from the periodic Alive heartbeats every peer gossips (paper §III-A:
// "peers use gossip to build and maintain a local view of other peers in
// the network"). A peer that has not been heard from within the expiration
// window is considered dead until a fresh heartbeat arrives.
//
// The view also determines the organization's leader peer: Fabric's static
// leader policy picks a designated peer, while its dynamic leader election
// converges on the lowest-id live peer. Membership implements the dynamic
// rule; the harness uses peer 0 which is also the static choice while it
// stays alive.
type Membership struct {
	self wire.NodeID
	// expiration is how long a peer stays live after its last heartbeat.
	expiration time.Duration
	lastSeen   map[wire.NodeID]time.Duration
	lastSeq    map[wire.NodeID]uint64
	// liveNow is the transition state machine: which peers the view
	// currently considers live, as of the last Observe/Expire. It lags the
	// time-based Alive predicate until Expire is called, which is how
	// dead transitions become observable events for scenario scripting.
	liveNow map[wire.NodeID]bool
}

// NewMembership creates a view for self over the given expiration window.
func NewMembership(self wire.NodeID, expiration time.Duration) *Membership {
	return &Membership{
		self:       self,
		expiration: expiration,
		lastSeen:   make(map[wire.NodeID]time.Duration),
		lastSeq:    make(map[wire.NodeID]uint64),
		liveNow:    make(map[wire.NodeID]bool),
	}
}

// Observe records a heartbeat from peer with the given sequence number at
// the given time, reporting whether it made the peer newly live (a
// dead-to-live transition). Stale (replayed or reordered) heartbeats with
// sequence numbers at or below the freshest seen are ignored, so a dead
// peer cannot be resurrected by an old message floating in the network.
func (m *Membership) Observe(peer wire.NodeID, seq uint64, at time.Duration) bool {
	if peer == m.self {
		return false
	}
	if last, ok := m.lastSeq[peer]; ok && seq <= last {
		return false
	}
	m.lastSeq[peer] = seq
	m.lastSeen[peer] = at
	becameLive := !m.liveNow[peer]
	m.liveNow[peer] = true
	return becameLive
}

// Expire sweeps the view at time now and returns the peers whose heartbeats
// lapsed since the previous sweep (live-to-dead transitions), in ascending
// id order. Call it periodically; Observe reports the opposite transition.
func (m *Membership) Expire(now time.Duration) []wire.NodeID {
	var dead []wire.NodeID
	for p, live := range m.liveNow {
		if live && now-m.lastSeen[p] > m.expiration {
			m.liveNow[p] = false
			dead = append(dead, p)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	return dead
}

// Alive reports whether peer is believed alive at time now. Self is always
// alive.
func (m *Membership) Alive(peer wire.NodeID, now time.Duration) bool {
	if peer == m.self {
		return true
	}
	seen, ok := m.lastSeen[peer]
	if !ok {
		return false
	}
	return now-seen <= m.expiration
}

// Live returns the sorted ids of all peers believed alive at now,
// including self.
func (m *Membership) Live(now time.Duration) []wire.NodeID {
	out := []wire.NodeID{m.self}
	for p, seen := range m.lastSeen {
		if now-seen <= m.expiration {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dead reports whether the view has explicitly marked peer dead: it was
// observed live once and its heartbeats have since lapsed past the
// expiration sweep. Peers never observed are not dead — with a sparse
// heartbeat sample (large organizations, fixed fan-out) most live peers
// have simply never been heard from.
func (m *Membership) Dead(peer wire.NodeID) bool {
	live, tracked := m.liveNow[peer]
	return tracked && !live
}

// Leader returns the dynamic-election leader: the lowest-id live peer
// (self counts). This is the convergence point of Fabric's leader election
// once heartbeats have propagated. The empty-view guard is defensive: Live
// currently always lists self, but Leader must not silently depend on that
// invariant — a view that ever excluded an unregistered self (e.g. in the
// window right after a restart) would have panicked on live[0] here.
func (m *Membership) Leader(now time.Duration) wire.NodeID {
	live := m.Live(now)
	if len(live) == 0 {
		return m.self
	}
	return live[0]
}

// IsLeader reports whether self currently believes it is the leader.
func (m *Membership) IsLeader(now time.Duration) bool {
	return m.Leader(now) == m.self
}
