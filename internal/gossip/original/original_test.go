package original

import (
	"testing"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

type net struct {
	engine  *sim.Engine
	sim     *transport.SimNetwork
	traffic *netmodel.Traffic
	cores   []*gossip.Core
	protos  []*Protocol
	orderer *transport.SimEndpoint
}

func build(t *testing.T, n int, cfg Config, seed int64) *net {
	t.Helper()
	e := sim.NewEngine(seed)
	tr := netmodel.NewTraffic(time.Second)
	w := &net{engine: e, traffic: tr}
	w.sim = transport.NewSimNetwork(e, netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, tr)
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		ep := w.sim.AddNode()
		p := New(cfg)
		gcfg := gossip.DefaultConfig(ep.ID(), ids)
		gcfg.AliveInterval = 0
		gcfg.StateInfoInterval = 0
		gcfg.RecoveryInterval = 0
		c := gossip.New(gcfg, ep, e, e.Rand("g"), p)
		w.cores = append(w.cores, c)
		w.protos = append(w.protos, p)
	}
	w.orderer = w.sim.AddNode()
	for _, c := range w.cores {
		c.Start()
	}
	return w
}

func block(num uint64) *ledger.Block {
	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(num)}}}}
	tx := &ledger.Transaction{
		ID:     ledger.ProposalDigest("c", "cc", rw, []byte{byte(num)}),
		Client: "c", Chaincode: "cc", RWSet: rw, Payload: make([]byte, 512),
	}
	b := &ledger.Block{Num: num, Txs: []*ledger.Transaction{tx}}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	return b
}

func TestDefaultConfigMatchesFabric(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Fout != 3 || cfg.TPush != 10*time.Millisecond || cfg.Fin != 3 || cfg.TPull != 4*time.Second {
		t.Fatalf("defaults = %+v, want Fabric v1.2 values", cfg)
	}
	if New(cfg).Name() != "original" {
		t.Fatal("protocol name wrong")
	}
}

func TestInfectAndDiePushesExactlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TPull = 0 // push only
	w := build(t, 10, cfg, 1)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(2 * time.Second)

	infected := 0
	for _, c := range w.cores {
		if c.HasBlock(0) {
			infected++
		}
	}
	// Infect-and-die invariant: exactly fout Data sends per infected peer
	// (including the leader), regardless of duplicate receptions.
	if got, want := int(w.traffic.CountOf(wire.TypeData)), infected*cfg.Fout; got != want {
		t.Fatalf("sent %d bodies for %d infected peers, want %d", got, infected, want)
	}
}

func TestPushBufferCoalescesSameTargets(t *testing.T) {
	// Two blocks delivered within the 10 ms buffer window travel to the
	// SAME fout peers — the randomness bias the paper calls out.
	cfg := DefaultConfig()
	cfg.TPull = 0
	cfg.Fout = 2
	w := build(t, 12, cfg, 2)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(1)})
	w.engine.RunUntil(9 * time.Millisecond) // both delivered, buffer not yet flushed
	if w.traffic.CountOf(wire.TypeData) != 0 {
		t.Fatal("buffer flushed before tpush")
	}
	w.engine.RunUntil(2 * time.Second)
	// Each infected peer that got both blocks in one buffer sends 2
	// blocks x fout; the overall count is still fout per infection per
	// block, but the first flush (leader) must have gone out as one
	// batch at ~10+ ms, not two.
	if w.traffic.CountOf(wire.TypeData) == 0 {
		t.Fatal("nothing pushed")
	}
}

func TestTPushZeroFlushesImmediately(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TPush = 0
	cfg.TPull = 0
	w := build(t, 8, cfg, 3)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(3 * time.Millisecond) // delivery ~1-2 ms, flush immediate
	if w.traffic.CountOf(wire.TypeData) == 0 {
		t.Fatal("tpush=0 did not flush immediately")
	}
}

func TestPushBufferCapFlushesEarly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TPush = time.Hour // only the cap can flush
	cfg.PushBufferCap = 3
	cfg.TPull = 0
	w := build(t, 8, cfg, 4)
	for i := uint64(0); i < 3; i++ {
		_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(i)})
	}
	w.engine.RunUntil(time.Second)
	if w.traffic.CountOf(wire.TypeData) == 0 {
		t.Fatal("full buffer did not flush")
	}
}

func TestPullFetchesMissedBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fout = 0 // cripple push entirely: only the leader holds blocks
	cfg.TPull = 500 * time.Millisecond
	w := build(t, 6, cfg, 5)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(10 * time.Second)
	for i, c := range w.cores {
		if !c.HasBlock(0) {
			t.Fatalf("peer %d never pulled the block", i)
		}
	}
	if w.traffic.CountOf(wire.TypePullData) == 0 {
		t.Fatal("no pull transfers recorded")
	}
	// Blocks fetched by pull are not re-pushed (infect-and-die only
	// reacts to push-path Data).
	if got := w.traffic.CountOf(wire.TypeData); got != 0 {
		t.Fatalf("pull deliveries triggered %d pushes", got)
	}
}

func TestPullIgnoresUnsolicitedDigest(t *testing.T) {
	cfg := DefaultConfig()
	w := build(t, 4, cfg, 6)
	// Peer 1 sends peer 0 a digest with a nonce peer 0 never issued.
	w.engine.After(0, func() {
		w.protos[0].handlePullDigest(1, &wire.PullDigest{Nonce: 999, Nums: []uint64{5}})
	})
	w.engine.RunUntil(time.Second)
	if w.traffic.CountOf(wire.TypePullRequest) != 0 {
		t.Fatal("unsolicited digest triggered a request")
	}
}

func TestPullDoesNotRequestSameBlockTwiceInARound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fout = 0
	cfg.Fin = 3
	cfg.TPull = time.Second
	w := build(t, 6, cfg, 7)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	// After one pull period every peer has pulled from up to 3 peers; the
	// requested-set must prevent fetching the same body from each.
	w.engine.RunUntil(2500 * time.Millisecond)
	pulls := w.traffic.CountOf(wire.TypePullData)
	// 5 peers fetch the block; allow a small margin for phase overlap
	// but far below 3x.
	if pulls > 8 {
		t.Fatalf("%d pull bodies for 5 missing peers: per-round dedup failed", pulls)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	cfg := DefaultConfig()
	w := build(t, 4, cfg, 8)
	for _, c := range w.cores {
		c.Stop()
	}
	before := w.engine.Now()
	w.engine.RunUntil(before + 20*time.Second)
	if w.traffic.CountOf(wire.TypePullHello) != 0 {
		t.Fatal("pull continued after Stop")
	}
}
