// Package original implements the stock Fabric gossip dissemination the
// paper evaluates as its baseline (§III-A): an infect-and-die push phase
// with a small batching timer, a periodic pull component that fetches
// missed blocks with a Hello → Digest → Request → Response exchange, and
// the shared recovery component (provided by the gossip core).
package original

import (
	"sync"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Config holds the stock protocol's parameters. Defaults mirror Fabric
// v1.2.
type Config struct {
	// Fout is the push fan-out (Fabric PropagatePeerNum, default 3).
	Fout int
	// TPush is the push batching delay: first receptions are buffered and
	// flushed to the same random sample after TPush (Fabric's 10 ms
	// emitter). Zero flushes immediately.
	TPush time.Duration
	// PushBufferCap flushes the buffer early when it holds this many
	// blocks (Fabric's batch size). Zero means no cap.
	PushBufferCap int
	// Fin is the pull fan-out: how many random peers are engaged per pull
	// round (Fabric PullPeerNum, default 3).
	Fin int
	// TPull is the pull period (Fabric PullInterval, default 4 s).
	TPull time.Duration
	// DigestWindow bounds how many recent block numbers a pull digest
	// advertises.
	DigestWindow int
}

// DefaultConfig returns Fabric v1.2 defaults (paper §V-B).
func DefaultConfig() Config {
	return Config{
		Fout:          3,
		TPush:         10 * time.Millisecond,
		PushBufferCap: 10,
		Fin:           3,
		TPull:         4 * time.Second,
		DigestWindow:  100,
	}
}

// Protocol is the infect-and-die + pull disseminator.
type Protocol struct {
	cfg Config

	mu sync.Mutex
	c  *gossip.Core

	// Push state: blocks waiting for the batching timer.
	pushBuf   []*ledger.Block
	pushTimer sim.Timer

	// Pull state.
	pullTimer sim.Timer
	nextNonce uint64
	// pending maps an outstanding nonce to the peer it was sent to.
	pending map[uint64]wire.NodeID
	// requested records when a block body was last requested via pull, to
	// avoid fetching the same body from several responders in one round.
	requested map[uint64]time.Duration

	// pullPeers/pullHellos are pullTick's reusable scratch (a periodic
	// timer never overlaps itself, so the tick owns them exclusively on
	// both runtimes). pushTargets is flushPush's sampling buffer, reused
	// only on the single-threaded simulated runtime — on the TCP runtime
	// concurrent Data handlers can race into flushPush, so it allocates.
	pullPeers   []wire.NodeID
	pullHellos  []hello
	pushTargets []wire.NodeID
	reuse       bool

	stopped bool
}

// hello is one outbound pull opening, staged so sends happen outside mu in
// sampling order.
type hello struct {
	nonce uint64
	to    wire.NodeID
}

// New returns an unstarted protocol instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:       cfg,
		pending:   make(map[uint64]wire.NodeID),
		requested: make(map[uint64]time.Duration),
	}
}

// Name implements gossip.Protocol.
func (p *Protocol) Name() string { return "original" }

// Start implements gossip.Protocol.
func (p *Protocol) Start(c *gossip.Core) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.c = c
	p.reuse = c.SingleThreaded()
	if p.cfg.TPull > 0 {
		p.pullTimer = c.Scheduler().After(p.pullDelay(), p.pullTick)
	}
}

// pullDelay randomizes each peer's pull phase so rounds are not
// synchronized across the network (each peer pulls on its own schedule, as
// in Fabric).
func (p *Protocol) pullDelay() time.Duration {
	return time.Duration(p.c.Rand().Int63n(int64(p.cfg.TPull))) + 1
}

// Stop implements gossip.Protocol.
func (p *Protocol) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.pushTimer != nil {
		p.pushTimer.Stop()
	}
	if p.pullTimer != nil {
		p.pullTimer.Stop()
	}
}

// OnOrdererBlock implements gossip.Protocol: the leader peer stores the
// block and becomes the first infected peer.
func (p *Protocol) OnOrdererBlock(b *ledger.Block) {
	if p.c.AddBlock(b) {
		p.enqueuePush(b)
	}
}

// OnBlockStored implements gossip.Protocol. The stock protocol triggers
// pushes only from the push path itself (infect-and-die), so bodies
// arriving by pull or recovery are not re-pushed.
func (p *Protocol) OnBlockStored(*ledger.Block) {}

// Handle implements gossip.Protocol.
func (p *Protocol) Handle(from wire.NodeID, msg wire.Message) bool {
	switch m := msg.(type) {
	case *wire.Data:
		// Infect-and-die: push once upon first infection, then ignore
		// duplicates.
		if p.c.AddBlock(m.Block) {
			p.enqueuePush(m.Block)
		}
	case *wire.PullHello:
		p.servePullHello(from, m)
	case *wire.PullDigest:
		p.handlePullDigest(from, m)
	case *wire.PullRequest:
		p.servePullRequest(from, m)
	case *wire.PullData:
		p.c.AddBlock(m.Block) // no re-push (paper §III-A)
	default:
		return false
	}
	return true
}

// --- push (infect-and-die) ---

// enqueuePush buffers b and arms the batching timer. When the buffer
// flushes, every buffered block goes to the *same* fout random peers —
// exactly the randomness bias the paper's enhanced protocol removes by
// setting tpush = 0.
func (p *Protocol) enqueuePush(b *ledger.Block) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.pushBuf = append(p.pushBuf, b)
	flushNow := p.cfg.TPush <= 0 || (p.cfg.PushBufferCap > 0 && len(p.pushBuf) >= p.cfg.PushBufferCap)
	if !flushNow && p.pushTimer == nil {
		p.pushTimer = p.c.Scheduler().After(p.cfg.TPush, p.flushPush)
	}
	p.mu.Unlock()
	if flushNow {
		p.flushPush()
	}
}

func (p *Protocol) flushPush() {
	p.mu.Lock()
	buf := p.pushBuf
	p.pushBuf = nil
	if p.pushTimer != nil {
		p.pushTimer.Stop()
		p.pushTimer = nil
	}
	p.mu.Unlock()
	if len(buf) == 0 {
		return
	}
	var targets []wire.NodeID
	if p.reuse {
		p.pushTargets = p.c.RandomPeersInto(p.cfg.Fout, p.pushTargets)
		targets = p.pushTargets
	} else {
		targets = p.c.RandomPeers(p.cfg.Fout)
	}
	for _, b := range buf {
		msg := &wire.Data{Block: b}
		for _, t := range targets {
			p.c.Send(t, msg)
		}
	}
}

// --- pull ---

func (p *Protocol) pullTick() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.pullTimer = p.c.Scheduler().After(p.cfg.TPull, p.pullTick)
	p.pullPeers = p.c.RandomPeersInto(p.cfg.Fin, p.pullPeers)
	// Hellos go out in sampling order (a map here would randomize send
	// order and with it the transport's delay draws, breaking run-to-run
	// determinism).
	hellos := p.pullHellos[:0]
	for _, q := range p.pullPeers {
		p.nextNonce++
		p.pending[p.nextNonce] = q
		hellos = append(hellos, hello{nonce: p.nextNonce, to: q})
	}
	p.pullHellos = hellos
	p.mu.Unlock()
	for _, h := range hellos {
		p.c.Send(h.to, &wire.PullHello{Nonce: h.nonce})
	}
}

// servePullHello answers with the numbers of recent blocks we hold.
func (p *Protocol) servePullHello(from wire.NodeID, m *wire.PullHello) {
	height := p.c.Height()
	var lo uint64
	if w := uint64(p.cfg.DigestWindow); p.cfg.DigestWindow > 0 && height > w {
		lo = height - w
	}
	var nums []uint64
	// Advertise the consecutive prefix we can serve, plus any blocks
	// received out of order above it.
	for num := lo; ; num++ {
		if !p.c.HasBlock(num) {
			// Probe a bounded window above the gap for stray blocks.
			for extra := num + 1; extra < num+64; extra++ {
				if p.c.HasBlock(extra) {
					nums = append(nums, extra)
				}
			}
			break
		}
		nums = append(nums, num)
	}
	p.c.Send(from, &wire.PullDigest{Nonce: m.Nonce, Nums: nums})
}

// handlePullDigest requests the advertised bodies we lack and have not
// requested recently.
func (p *Protocol) handlePullDigest(from wire.NodeID, m *wire.PullDigest) {
	p.mu.Lock()
	if q, ok := p.pending[m.Nonce]; !ok || q != from {
		p.mu.Unlock()
		return // unsolicited or stale digest
	}
	delete(p.pending, m.Nonce)
	now := p.c.Scheduler().Now()
	var want []uint64
	for _, num := range m.Nums {
		if p.c.HasBlock(num) {
			continue
		}
		if last, ok := p.requested[num]; ok && now-last < p.cfg.TPull {
			continue // outstanding request from this round
		}
		p.requested[num] = now
		want = append(want, num)
	}
	p.mu.Unlock()
	if len(want) > 0 {
		p.c.Send(from, &wire.PullRequest{Nonce: m.Nonce, Nums: want})
	}
}

func (p *Protocol) servePullRequest(from wire.NodeID, m *wire.PullRequest) {
	for _, num := range m.Nums {
		if b := p.c.Block(num); b != nil {
			p.c.Send(from, &wire.PullData{Nonce: m.Nonce, Block: b})
		}
	}
}
