// Package gossip implements the shared infrastructure of Fabric's gossip
// layer (paper §III): the per-peer block buffer with in-order delivery, and
// the membership heartbeats and ledger-height metadata (state info) that
// all peers exchange. The recovery (anti-entropy) component that lets peers
// catch up on missing block ranges lives in internal/statesync; the core
// delegates to its Fetcher/Provider pair through the narrow statesync.Host
// interface it implements.
//
// The two dissemination variants plug into this core as Protocol
// implementations:
//
//   - gossip/original: infect-and-die push + periodic pull (stock Fabric);
//   - gossip/enhanced: the paper's infect-upon-contagion push with TTL,
//     digests, randomized initial gossiper, and no pull.
package gossip

import (
	"sync"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/statesync"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Protocol is a pluggable dissemination strategy.
type Protocol interface {
	// Name identifies the protocol in logs and reports.
	Name() string
	// Start is called once, after the core is wired, so the protocol can
	// arm its timers.
	Start(c *Core)
	// Stop cancels the protocol's timers.
	Stop()
	// OnOrdererBlock is invoked on the leader peer when the ordering
	// service delivers a freshly cut block.
	OnOrdererBlock(b *ledger.Block)
	// Handle processes a dissemination message. It reports whether the
	// message type belonged to this protocol.
	Handle(from wire.NodeID, msg wire.Message) bool
	// OnBlockStored is invoked whenever a block body is stored for the
	// first time, regardless of the path it arrived by (push, pull or
	// recovery), so the protocol can serve queued requests.
	OnBlockStored(b *ledger.Block)
}

// Config parameterizes the shared gossip core. Durations follow Fabric's
// defaults where they exist.
type Config struct {
	// Self is this peer's node id; Peers lists every peer of the
	// organization including Self (gossip operates on a complete graph,
	// paper §III-A).
	Self  wire.NodeID
	Peers []wire.NodeID

	// StateInfoInterval is how often the peer gossips its ledger height;
	// StateInfoFanout is to how many random peers.
	StateInfoInterval time.Duration
	StateInfoFanout   int

	// AliveInterval/AliveFanout parameterize membership heartbeats. They
	// carry no protocol state here but reproduce the background traffic
	// floor of the paper's bandwidth figures.
	AliveInterval time.Duration
	AliveFanout   int
	// AliveMetaSize pads heartbeats to a realistic encoded size.
	AliveMetaSize int
	// AliveExpiration is how long a peer stays in the live view after its
	// last heartbeat. Zero defaults to 3x AliveInterval.
	AliveExpiration time.Duration

	// RecoveryInterval is how often the peer checks whether it is behind
	// the highest advertised ledger and fetches a batch of missing
	// blocks. RecoveryBatch caps the range requested at once. Both feed
	// the statesync engine the core delegates recovery to.
	RecoveryInterval time.Duration
	RecoveryBatch    int

	// AnchorPeers lists remote-organization anchor peers this peer's
	// leader may fetch missing blocks from when the ordering service goes
	// silent (cross-org state transfer through the statesync engine).
	// Empty — the default — disables the path entirely.
	AnchorPeers []wire.NodeID
	// AnchorInterval is how often the leader runs an anchor probe round
	// while the orderer is silent. Zero disables probing even with
	// anchors configured.
	AnchorInterval time.Duration
	// OrdererStall is how long without an orderer delivery before the
	// leader considers the orderer unreachable. Zero defaults to 5s.
	OrdererStall time.Duration
}

// DefaultConfig returns the Fabric-default shared parameters for the given
// membership.
func DefaultConfig(self wire.NodeID, peers []wire.NodeID) Config {
	return Config{
		Self:              self,
		Peers:             peers,
		StateInfoInterval: 4 * time.Second,
		StateInfoFanout:   3,
		AliveInterval:     5 * time.Second,
		AliveFanout:       3,
		AliveMetaSize:     256,
		RecoveryInterval:  10 * time.Second,
		RecoveryBatch:     32,
	}
}

// Core is the per-peer gossip state shared by both protocol variants. All
// exported methods are safe for concurrent use (required by the TCP
// runtime; the simulated runtime is single-threaded anyway).
type Core struct {
	cfg   Config
	ep    transport.Endpoint
	sched sim.Scheduler
	rng   *sim.Rand
	proto Protocol

	mu         sync.Mutex
	blocks     map[uint64]*ledger.Block
	height     uint64 // next block needed for in-order delivery
	highest    uint64 // highest block number stored (valid if hasAny)
	hasAny     bool
	membership *Membership
	aliveSeq   uint64
	timers     []sim.Timer
	started    bool
	stopped    bool

	// fetcher/provider form the statesync engine the core delegates the
	// recovery plane to: the fetcher owns the advertised-heights view,
	// request targeting and anchor probing; the provider serves requests
	// from frozen block batches. Both are called only with mu released
	// (they lock internally and call back into the core's accessors).
	fetcher  *statesync.Fetcher
	provider *statesync.Provider

	// others is cfg.Peers minus self, precomputed once: RandomPeers samples
	// in place with k swaps that are undone after the draw, so every call
	// sees the same canonical order (the determinism contract) without
	// rebuilding an O(n) candidate slice per tick. swapIdx records the swap
	// targets to undo; both are guarded by mu.
	others  []wire.NodeID
	swapIdx []int

	// stateInfoPeers/alivePeers are the periodic ticks' reusable sampling
	// buffers: each is owned exclusively by its tick (periodic timers never
	// overlap themselves on either runtime), so the steady-state tick path
	// allocates nothing for peer sampling.
	stateInfoPeers []wire.NodeID
	alivePeers     []wire.NodeID

	// aliveMeta is the zero-filled heartbeat padding, allocated once: Alive
	// messages are read-only on both runtimes (the sim path shares the
	// message value, the TCP path marshals it), so every tick reuses it.
	aliveMeta []byte

	onFirstReception func(b *ledger.Block, at time.Duration)
	onCommit         func(b *ledger.Block)
	onPeerState      func(peer wire.NodeID, alive bool, at time.Duration)
}

// New creates a gossip core. The protocol is attached but not started;
// call Start.
func New(cfg Config, ep transport.Endpoint, sched sim.Scheduler, rng *sim.Rand, proto Protocol) *Core {
	expiration := cfg.AliveExpiration
	if expiration == 0 {
		expiration = 3 * cfg.AliveInterval
	}
	c := &Core{
		cfg:        cfg,
		ep:         ep,
		sched:      sched,
		rng:        rng,
		proto:      proto,
		blocks:     make(map[uint64]*ledger.Block),
		membership: NewMembership(cfg.Self, expiration),
		// Seed the heartbeat sequence from boot time so a restarted
		// peer's fresh core emits sequences above anything its previous
		// incarnation sent — otherwise other peers' anti-replay check
		// would discard the rejoined peer's heartbeats as stale until it
		// out-counted its pre-crash uptime (Fabric ships a boot timestamp
		// in AliveMessage for the same reason).
		aliveSeq:  uint64(sched.Now() / time.Millisecond),
		aliveMeta: make([]byte, cfg.AliveMetaSize),
	}
	// An orderer or observer core lists only remote peers, so self may be
	// absent from cfg.Peers; others then equals cfg.Peers.
	c.others = make([]wire.NodeID, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			c.others = append(c.others, p)
		}
	}
	c.swapIdx = make([]int, 0, len(c.others))
	ssCfg := statesync.Config{
		Batch:        cfg.RecoveryBatch,
		Anchors:      cfg.AnchorPeers,
		OrdererStall: cfg.OrdererStall,
	}
	c.fetcher = statesync.NewFetcher(c, ssCfg)
	c.provider = statesync.NewProvider(c, ssCfg)
	ep.SetHandler(c.handleMessage)
	return c
}

// OnFirstReception installs the hook invoked the first time any block body
// is stored (used by the harness to measure dissemination latency). Must be
// set before Start.
func (c *Core) OnFirstReception(fn func(b *ledger.Block, at time.Duration)) {
	c.onFirstReception = fn
}

// OnCommit installs the in-order delivery hook: blocks are handed to it in
// strictly increasing order with no gaps (the peer package validates and
// commits from here). Must be set before Start.
func (c *Core) OnCommit(fn func(b *ledger.Block)) { c.onCommit = fn }

// OnPeerStateChange installs the membership transition hook: it fires when
// a peer's heartbeat makes it newly live and when the periodic sweep
// (piggybacked on the alive ticker) expires it. Scenario runners use it to
// observe failure-detection and rejoin latency. Must be set before Start.
func (c *Core) OnPeerStateChange(fn func(peer wire.NodeID, alive bool, at time.Duration)) {
	c.onPeerState = fn
}

// ID returns this peer's node id.
func (c *Core) ID() wire.NodeID { return c.cfg.Self }

// Scheduler returns the core's scheduler, for protocols to arm timers.
func (c *Core) Scheduler() sim.Scheduler { return c.sched }

// Rand returns the core's random stream.
func (c *Core) Rand() *sim.Rand { return c.rng }

// Config returns the shared configuration.
func (c *Core) Config() Config { return c.cfg }

// Start arms the periodic state-info, alive and recovery timers and starts
// the protocol.
func (c *Core) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	if c.cfg.StateInfoInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.StateInfoInterval, c.stateInfoTick))
	}
	if c.cfg.AliveInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.AliveInterval, c.aliveTick))
	}
	if c.cfg.RecoveryInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.RecoveryInterval, c.fetcher.Tick))
	}
	if c.cfg.AnchorInterval > 0 && len(c.cfg.AnchorPeers) > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.AnchorInterval, c.fetcher.AnchorTick))
	}
	c.mu.Unlock()
	c.proto.Start(c)
}

// Stop cancels all timers (core and protocol).
func (c *Core) Stop() {
	c.mu.Lock()
	c.stopped = true
	timers := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	c.proto.Stop()
}

// everyTimer emulates sim.Engine.Every on any Scheduler so the core works
// on both runtimes.
func everyTimer(sched sim.Scheduler, interval time.Duration, fn func()) sim.Timer {
	if e, ok := sched.(*sim.Engine); ok {
		return e.Every(interval, fn)
	}
	p := &rearming{sched: sched, interval: interval, fn: fn, deadline: sched.Now()}
	p.arm()
	return p
}

// rearming is a fixed-rate periodic timer for schedulers without a native
// Every. Each tick re-arms relative to the previous deadline — not the
// instant the callback returned — matching sim.Engine.Every's contract: on
// RealScheduler the callback's own run time must not accumulate as drift
// across ticks.
type rearming struct {
	sched    sim.Scheduler
	interval time.Duration
	fn       func()

	mu       sync.Mutex
	cur      sim.Timer
	deadline time.Duration
	stopped  bool
}

func (p *rearming) arm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.deadline += p.interval
	// A callback that overran part of the interval yields a shortened
	// delay, keeping ticks on the original grid. But if the schedule fell
	// more than one whole interval behind (process stall, suspend), snap
	// to now instead of firing a catch-up burst of every missed tick.
	now := p.sched.Now()
	if p.deadline+p.interval < now {
		p.deadline = now
	}
	p.cur = p.sched.After(p.deadline-now, func() {
		p.fn()
		p.arm()
	})
}

func (p *rearming) Stop() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.cur != nil {
		p.cur.Stop()
	}
	return true
}

// Send transmits a message to another peer. Errors are dropped: gossip is
// loss-tolerant by design and a failed send is equivalent to a lost packet.
func (c *Core) Send(to wire.NodeID, msg wire.Message) {
	_ = c.ep.Send(to, msg)
}

// RandomPeers samples k distinct peers uniformly, never including self.
// If fewer than k eligible peers exist, all of them are returned. The
// result is freshly allocated; hot paths use RandomPeersInto with a
// per-call-site buffer instead.
func (c *Core) RandomPeers(k int) []wire.NodeID { return c.RandomPeersInto(k, nil) }

// SingleThreaded reports whether the core runs on the discrete-event
// engine, whose callbacks are serialized by construction. Protocols use it
// to decide whether per-instance scratch buffers are safe to reuse across
// message handlers (on the TCP runtime handlers can run concurrently, so
// they must allocate instead).
func (c *Core) SingleThreaded() bool {
	_, ok := c.sched.(*sim.Engine)
	return ok
}

// RandomPeersInto is RandomPeers sampling into buf's backing array (grown
// if needed), so a periodic tick can reuse one buffer across rounds and
// keep the per-tick path allocation-free. The random draws are identical to
// RandomPeers — buffer reuse never shifts the stream. The caller owns buf
// exclusively: the returned slice aliases it and is valid until the owner's
// next call.
//
// This sits on the push hot path, so the candidate slice (peers minus self)
// is precomputed once at construction: a draw is k partial-Fisher-Yates
// swaps followed by k undo-swaps in reverse, restoring the canonical order
// so the next call — and therefore the whole run — consumes random values
// identically to a per-call rebuild. That replaces the old O(n) rebuild per
// tick with O(k) work.
func (c *Core) RandomPeersInto(k int, buf []wire.NodeID) []wire.NodeID {
	if k > len(c.others) {
		k = len(c.others)
	}
	if k <= 0 {
		return buf[:0] // nil buf stays nil: RandomPeers(0) == nil
	}
	out := buf
	if cap(out) < k {
		out = make([]wire.NodeID, k)
	} else {
		out = out[:k]
	}
	c.mu.Lock()
	cand := c.others
	sw := c.swapIdx[:k]
	for i := 0; i < k; i++ {
		j := i + c.rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out[i] = cand[i]
		sw[i] = j
	}
	// Undo in reverse so cand returns to its canonical order.
	for i := k - 1; i >= 0; i-- {
		j := sw[i]
		cand[i], cand[j] = cand[j], cand[i]
	}
	c.mu.Unlock()
	return out
}

// HasBlock reports whether the body of block num is stored.
func (c *Core) HasBlock(num uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.blocks[num]
	return ok
}

// Block returns the stored body of block num, or nil.
func (c *Core) Block(num uint64) *ledger.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocks[num]
}

// Height returns the in-order ledger height (next needed block number).
func (c *Core) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.height
}

// AddBlock stores a block body. It returns true if the body is new. First
// receptions fire the OnFirstReception hook; completed prefixes are handed
// to OnCommit in order. The protocol's OnBlockStored runs for new bodies.
func (c *Core) AddBlock(b *ledger.Block) bool {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return false
	}
	if _, ok := c.blocks[b.Num]; ok {
		c.mu.Unlock()
		return false
	}
	c.blocks[b.Num] = b
	if !c.hasAny || b.Num > c.highest {
		c.highest = b.Num
		c.hasAny = true
	}
	var commits []*ledger.Block
	for {
		nb, ok := c.blocks[c.height]
		if !ok {
			break
		}
		commits = append(commits, nb)
		c.height++
	}
	first := c.onFirstReception
	commitFn := c.onCommit
	now := c.sched.Now()
	c.mu.Unlock()

	if first != nil {
		first(b, now)
	}
	if commitFn != nil {
		for _, cb := range commits {
			commitFn(cb)
		}
	}
	c.proto.OnBlockStored(b)
	return true
}

// handleMessage dispatches inbound messages: shared types here, everything
// else to the protocol.
func (c *Core) handleMessage(from wire.NodeID, msg wire.Message) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	switch m := msg.(type) {
	case *wire.StateInfo:
		c.fetcher.Observe(from, m.Height)
	case *wire.StateRequest:
		c.provider.Serve(from, m)
	case *wire.StateResponse:
		c.fetcher.HandleResponse(m)
	case *wire.Alive:
		now := c.sched.Now()
		c.mu.Lock()
		becameLive := c.membership.Observe(from, m.Seq, now)
		fn := c.onPeerState
		c.mu.Unlock()
		if becameLive && fn != nil {
			fn(from, true, now)
		}
	case *wire.DeliverBlock:
		// Ordering service -> leader peer. The fetcher notes the delivery
		// so anchor probing stands down while the orderer is healthy.
		c.fetcher.NoteDeliver()
		c.proto.OnOrdererBlock(m.Block)
	default:
		c.proto.Handle(from, msg)
	}
}

// --- periodic components ---

func (c *Core) stateInfoTick() {
	c.mu.Lock()
	h := c.height
	c.mu.Unlock()
	msg := &wire.StateInfo{Height: h}
	c.stateInfoPeers = c.RandomPeersInto(c.cfg.StateInfoFanout, c.stateInfoPeers)
	for _, p := range c.stateInfoPeers {
		c.Send(p, msg)
	}
}

func (c *Core) aliveTick() {
	now := c.sched.Now()
	c.mu.Lock()
	c.aliveSeq++
	seq := c.aliveSeq
	dead := c.membership.Expire(now)
	fn := c.onPeerState
	c.mu.Unlock()
	// Drop dead peers' advertised heights: recovery must not keep targeting
	// a crashed peer (its requests would vanish and catch-up would stall a
	// full RecoveryInterval per round), and a stale maximum would also pin
	// the view if the peer later rejoins with an empty ledger.
	for _, p := range dead {
		c.fetcher.Forget(p)
	}
	if fn != nil {
		for _, p := range dead {
			fn(p, false, now)
		}
	}
	// The heartbeat padding is the shared per-core zero buffer: Alive
	// messages are read-only on every delivery path, so no tick needs a
	// fresh allocation.
	msg := &wire.Alive{Seq: seq, Meta: c.aliveMeta}
	c.alivePeers = c.RandomPeersInto(c.cfg.AliveFanout, c.alivePeers)
	for _, p := range c.alivePeers {
		c.Send(p, msg)
	}
}

// LivePeers returns the ids of peers currently believed alive (including
// self), from the heartbeat view.
func (c *Core) LivePeers() []wire.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.membership.Live(c.sched.Now())
}

// LeaderPeer returns the organization's dynamic-election leader: the
// lowest-id peer currently believed alive.
func (c *Core) LeaderPeer() wire.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.membership.Leader(c.sched.Now())
}

// IsLeader reports whether this peer currently believes it leads the
// organization. It is part of the statesync.Host interface: anchor probing
// is a leader duty.
func (c *Core) IsLeader() bool { return c.LeaderPeer() == c.cfg.Self }

// PeerDead reports whether the membership view has explicitly marked the
// peer dead (statesync.Host: the fetcher's candidate filter).
func (c *Core) PeerDead(p wire.NodeID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.membership.Dead(p)
}

// Now returns the scheduler's current time (statesync.Host).
func (c *Core) Now() time.Duration { return c.sched.Now() }

// PeerHeights returns a copy of the advertised heights view, owned by the
// statesync fetcher.
func (c *Core) PeerHeights() map[wire.NodeID]uint64 { return c.fetcher.Heights() }

// StateSyncStats snapshots the statesync engine's counters (bytes and
// blocks fetched, responses served, cache hits, anchor probes).
func (c *Core) StateSyncStats() statesync.Stats {
	return statesync.CollectStats(c.fetcher, c.provider)
}
