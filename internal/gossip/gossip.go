// Package gossip implements the shared infrastructure of Fabric's gossip
// layer (paper §III): the per-peer block buffer with in-order delivery, and
// the membership heartbeats and ledger-height metadata (state info) that
// all peers exchange. The recovery (anti-entropy) component that lets peers
// catch up on missing block ranges lives in internal/statesync; the core
// delegates to its Fetcher/Provider pair through the narrow statesync.Host
// interface it implements.
//
// The two dissemination variants plug into this core as Protocol
// implementations:
//
//   - gossip/original: infect-and-die push + periodic pull (stock Fabric);
//   - gossip/enhanced: the paper's infect-upon-contagion push with TTL,
//     digests, randomized initial gossiper, and no pull.
package gossip

import (
	"sync"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/membership"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/statesync"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Protocol is a pluggable dissemination strategy.
type Protocol interface {
	// Name identifies the protocol in logs and reports.
	Name() string
	// Start is called once, after the core is wired, so the protocol can
	// arm its timers.
	Start(c *Core)
	// Stop cancels the protocol's timers.
	Stop()
	// OnOrdererBlock is invoked on the leader peer when the ordering
	// service delivers a freshly cut block.
	OnOrdererBlock(b *ledger.Block)
	// Handle processes a dissemination message. It reports whether the
	// message type belonged to this protocol.
	Handle(from wire.NodeID, msg wire.Message) bool
	// OnBlockStored is invoked whenever a block body is stored for the
	// first time, regardless of the path it arrived by (push, pull or
	// recovery), so the protocol can serve queued requests.
	OnBlockStored(b *ledger.Block)
}

// Config parameterizes the shared gossip core. Durations follow Fabric's
// defaults where they exist.
type Config struct {
	// Self is this peer's node id; Peers lists every peer of the
	// organization including Self (gossip operates on a complete graph,
	// paper §III-A).
	Self  wire.NodeID
	Peers []wire.NodeID

	// StateInfoInterval is how often the peer gossips its ledger height;
	// StateInfoFanout is to how many random peers.
	StateInfoInterval time.Duration
	StateInfoFanout   int

	// AliveInterval/AliveFanout parameterize membership heartbeats. They
	// carry no protocol state here but reproduce the background traffic
	// floor of the paper's bandwidth figures.
	AliveInterval time.Duration
	AliveFanout   int
	// AliveMetaSize pads heartbeats to a realistic encoded size.
	AliveMetaSize int
	// AliveExpiration is how long a peer stays in the live view after its
	// last heartbeat. Zero defaults to 3x AliveInterval.
	AliveExpiration time.Duration

	// SuspectTimeout, PiggybackMax, PiggybackBudget, ShuffleInterval and
	// ShuffleSample enable the SWIM-style membership extensions
	// (internal/membership): lapsed peers become refutable suspects
	// instead of dying immediately, membership rumors piggyback on every
	// outgoing gossip message with per-rumor retransmit budgets, and a
	// periodic shuffle exchanges view samples with a random live peer.
	// All zero — the default — reproduces the legacy sparse heartbeat
	// view exactly (no extra messages, no extra random draws).
	SuspectTimeout  time.Duration
	PiggybackMax    int
	PiggybackBudget int
	ShuffleInterval time.Duration
	ShuffleSample   int

	// RecoveryInterval is how often the peer checks whether it is behind
	// the highest advertised ledger and fetches a batch of missing
	// blocks. RecoveryBatch caps the range requested at once. Both feed
	// the statesync engine the core delegates recovery to.
	RecoveryInterval time.Duration
	RecoveryBatch    int

	// AnchorPeers lists remote-organization anchor peers this peer's
	// leader may fetch missing blocks from when the ordering service goes
	// silent (cross-org state transfer through the statesync engine).
	// Empty — the default — disables the path entirely.
	AnchorPeers []wire.NodeID
	// AnchorInterval is how often the leader runs an anchor probe round
	// while the orderer is silent. Zero disables probing even with
	// anchors configured.
	AnchorInterval time.Duration
	// OrdererStall is how long without an orderer delivery before the
	// leader considers the orderer unreachable. Zero defaults to 5s.
	OrdererStall time.Duration
}

// DefaultConfig returns the Fabric-default shared parameters for the given
// membership.
func DefaultConfig(self wire.NodeID, peers []wire.NodeID) Config {
	return Config{
		Self:              self,
		Peers:             peers,
		StateInfoInterval: 4 * time.Second,
		StateInfoFanout:   3,
		AliveInterval:     5 * time.Second,
		AliveFanout:       3,
		AliveMetaSize:     256,
		RecoveryInterval:  10 * time.Second,
		RecoveryBatch:     32,
	}
}

// Core is the per-peer gossip state shared by both protocol variants. All
// exported methods are safe for concurrent use (required by the TCP
// runtime; the simulated runtime is single-threaded anyway).
type Core struct {
	cfg   Config
	ep    transport.Endpoint
	sched sim.Scheduler
	rng   *sim.Rand
	proto Protocol

	mu sync.Mutex
	// blocks is the stored-bodies index, dense by block number (nil =
	// absent): ledger numbers are a contiguous sequence from genesis, so a
	// slice holds the whole store in one pointer per block where a map
	// spent a bucket entry.
	blocks   []*ledger.Block
	height   uint64 // next block needed for in-order delivery
	highest  uint64 // highest block number stored (valid if hasAny)
	hasAny   bool
	aliveSeq uint64
	timers   []sim.Timer
	started  bool
	stopped  bool

	// view is the membership plane (internal/membership): the live/dead
	// state machine behind LivePeers, LeaderPeer and the statesync dead
	// filter, plus — when configured — the SWIM piggyback/suspicion/
	// shuffle machinery. It locks internally and is called with mu
	// released.
	view *membership.View
	// shuffleRng is the membership plane's own random stream, seeded from
	// the core stream once at construction (and only when shuffling is
	// enabled, so legacy configurations consume the shared stream
	// identically). The shuffle timer is its sole user: sharing c.rng
	// would race it against the other periodic ticks on the wall-clock
	// runtime, where timer callbacks run on separate goroutines under
	// different locks.
	shuffleRng *sim.Rand

	// fetcher/provider form the statesync engine the core delegates the
	// recovery plane to: the fetcher owns the advertised-heights view,
	// request targeting and anchor probing; the provider serves requests
	// from frozen block batches. Both are called only with mu released
	// (they lock internally and call back into the core's accessors).
	fetcher  *statesync.Fetcher
	provider *statesync.Provider

	// members is the organization's member set, built only when
	// piggybacking is enabled AND the peer list is not a contiguous id
	// range: membership digests ride exclusively on intra-org traffic.
	// Cross-org sends exist (anchor-recovery statesync probes and their
	// replies), and a digest attached to one would plant this
	// organization's members in the remote organization's view —
	// corrupting its leader election with foreign lower ids.
	members map[wire.NodeID]struct{}

	// rangeMode marks that cfg.Peers is a contiguous ascending id range
	// [rangeLo, rangeHi] (the harness's dense-id contract). The member
	// check is then a pair of comparisons and peer sampling draws against
	// a virtual candidate list, so the core holds no O(org-size) state at
	// all — the term that dominated the heap at 10k-peer organizations
	// (others + swapIdx + members was ~60 KB per core, ~600 MB per such
	// org). Non-contiguous peer lists keep the materialized slices below.
	rangeMode   bool
	rangeLo     wire.NodeID
	rangeHi     wire.NodeID
	selfInRange bool
	nOthers     int
	// ovIdx/ovVal are range mode's sampling overlay: the ≤k positions of
	// the virtual candidate list displaced mid-draw by the partial
	// Fisher-Yates walk (see RandomPeersInto). Cleared after every draw;
	// capacity is retained so steady-state draws allocate nothing. Guarded
	// by mu.
	ovIdx []int
	ovVal []wire.NodeID

	// others is cfg.Peers minus self, precomputed once (non-contiguous
	// peer lists only): RandomPeers samples in place with k swaps that are
	// undone after the draw, so every call sees the same canonical order
	// (the determinism contract) without rebuilding an O(n) candidate
	// slice per tick. swapIdx records the swap targets to undo; both are
	// guarded by mu.
	others  []wire.NodeID
	swapIdx []int

	// stateInfoPeers/alivePeers are the periodic ticks' reusable sampling
	// buffers: each is owned exclusively by its tick (periodic timers never
	// overlap themselves on either runtime), so the steady-state tick path
	// allocates nothing for peer sampling.
	stateInfoPeers []wire.NodeID
	alivePeers     []wire.NodeID

	// aliveMeta is the zero-filled heartbeat padding, aliasing the shared
	// process-wide zero buffer (see sharedZeroMeta): Alive messages are
	// read-only on both runtimes, so every tick of every core reuses it.
	aliveMeta []byte

	onFirstReception func(b *ledger.Block, at time.Duration)
	onCommit         []func(b *ledger.Block)
	onPeerState      func(peer wire.NodeID, alive bool, at time.Duration)
}

// New creates a gossip core. The protocol is attached but not started;
// call Start.
func New(cfg Config, ep transport.Endpoint, sched sim.Scheduler, rng *sim.Rand, proto Protocol) *Core {
	expiration := cfg.AliveExpiration
	if expiration == 0 {
		expiration = 3 * cfg.AliveInterval
	}
	c := &Core{
		cfg:   cfg,
		ep:    ep,
		sched: sched,
		rng:   rng,
		proto: proto,
		// Seed the heartbeat sequence from boot time so a restarted
		// peer's fresh core emits sequences above anything its previous
		// incarnation sent — otherwise other peers' anti-replay check
		// would discard the rejoined peer's heartbeats as stale until it
		// out-counted its pre-crash uptime (Fabric ships a boot timestamp
		// in AliveMessage for the same reason).
		aliveSeq:  uint64(sched.Now() / time.Millisecond),
		aliveMeta: sharedZeroMeta(cfg.AliveMetaSize),
	}
	if cfg.ShuffleInterval > 0 {
		c.shuffleRng = sim.NewRand(rng.Int63())
	}
	c.view = membership.New(membership.Config{
		Self:            cfg.Self,
		Expiration:      expiration,
		SuspectTimeout:  cfg.SuspectTimeout,
		PiggybackMax:    cfg.PiggybackMax,
		PiggybackBudget: cfg.PiggybackBudget,
		ShuffleInterval: cfg.ShuffleInterval,
		ShuffleSample:   cfg.ShuffleSample,
	}, (*memberHost)(c))
	c.view.NoteSelfSeq(c.aliveSeq)
	// Transitions caused by piggybacked or shuffled events feed the same
	// paths as direct heartbeat transitions: deaths drop the peer's
	// advertised height from the recovery plane, and both directions reach
	// the measurement hook.
	c.view.OnTransition(func(p wire.NodeID, alive bool) {
		if !alive {
			c.fetcher.Forget(p)
		}
		if fn := c.onPeerState; fn != nil {
			fn(p, alive, c.sched.Now())
		}
	})
	// Detect the dense-id contract: a contiguous ascending peer list needs
	// no materialized member set or candidate slice (the harness always
	// builds organizations this way; hand-built topologies may not).
	c.rangeMode = len(cfg.Peers) > 0
	for i, p := range cfg.Peers {
		if i > 0 && p != cfg.Peers[i-1]+1 {
			c.rangeMode = false
			break
		}
	}
	if c.rangeMode {
		c.rangeLo = cfg.Peers[0]
		c.rangeHi = cfg.Peers[len(cfg.Peers)-1]
		// An orderer or observer core lists only remote peers, so self may
		// be absent from cfg.Peers; the candidate count then equals the
		// whole range.
		c.selfInRange = cfg.Self >= c.rangeLo && cfg.Self <= c.rangeHi
		c.nOthers = len(cfg.Peers)
		if c.selfInRange {
			c.nOthers--
		}
	} else {
		if cfg.PiggybackMax > 0 {
			c.members = make(map[wire.NodeID]struct{}, len(cfg.Peers))
			for _, p := range cfg.Peers {
				c.members[p] = struct{}{}
			}
		}
		c.others = make([]wire.NodeID, 0, len(cfg.Peers))
		for _, p := range cfg.Peers {
			if p != cfg.Self {
				c.others = append(c.others, p)
			}
		}
		c.swapIdx = make([]int, 0, len(c.others))
	}
	ssCfg := statesync.Config{
		Batch:        cfg.RecoveryBatch,
		Anchors:      cfg.AnchorPeers,
		OrdererStall: cfg.OrdererStall,
	}
	c.fetcher = statesync.NewFetcher(c, ssCfg)
	c.provider = statesync.NewProvider(c, ssCfg)
	ep.SetHandler(c.handleMessage)
	return c
}

// OnFirstReception installs the hook invoked the first time any block body
// is stored (used by the harness to measure dissemination latency). Must be
// set before Start.
func (c *Core) OnFirstReception(fn func(b *ledger.Block, at time.Duration)) {
	c.onFirstReception = fn
}

// OnCommit appends an in-order delivery hook: blocks are handed to each
// registered hook in strictly increasing order with no gaps (the peer
// package validates and commits from here). Hooks run in registration
// order. Must be set before Start.
func (c *Core) OnCommit(fn func(b *ledger.Block)) { c.onCommit = append(c.onCommit, fn) }

// OnPeerStateChange installs the membership transition hook: it fires when
// a peer's heartbeat makes it newly live and when the periodic sweep
// (piggybacked on the alive ticker) expires it. Scenario runners use it to
// observe failure-detection and rejoin latency. Must be set before Start.
func (c *Core) OnPeerStateChange(fn func(peer wire.NodeID, alive bool, at time.Duration)) {
	c.onPeerState = fn
}

// ID returns this peer's node id.
func (c *Core) ID() wire.NodeID { return c.cfg.Self }

// Scheduler returns the core's scheduler, for protocols to arm timers.
func (c *Core) Scheduler() sim.Scheduler { return c.sched }

// Rand returns the core's random stream.
func (c *Core) Rand() *sim.Rand { return c.rng }

// Config returns the shared configuration.
func (c *Core) Config() Config { return c.cfg }

// Proto returns the dissemination protocol instance the core runs, for
// audits that reach through the core (e.g. the scenario runner's pooled-
// envelope leak check).
func (c *Core) Proto() Protocol { return c.proto }

// Start arms the periodic state-info, alive and recovery timers and starts
// the protocol.
func (c *Core) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	if c.cfg.StateInfoInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.StateInfoInterval, c.stateInfoTick))
	}
	if c.cfg.AliveInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.AliveInterval, c.aliveTick))
	}
	if c.cfg.RecoveryInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.RecoveryInterval, c.fetcher.Tick))
	}
	if c.cfg.AnchorInterval > 0 && len(c.cfg.AnchorPeers) > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.AnchorInterval, c.fetcher.AnchorTick))
	}
	if c.cfg.ShuffleInterval > 0 {
		c.timers = append(c.timers, everyTimer(c.sched, c.cfg.ShuffleInterval, c.shuffleTick))
	}
	c.mu.Unlock()
	c.proto.Start(c)
}

// Stop cancels all timers (core and protocol).
func (c *Core) Stop() {
	c.mu.Lock()
	c.stopped = true
	timers := c.timers
	c.timers = nil
	c.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	c.proto.Stop()
}

// everyTimer emulates sim.Engine.Every on any Scheduler so the core works
// on both runtimes.
func everyTimer(sched sim.Scheduler, interval time.Duration, fn func()) sim.Timer {
	if e, ok := sched.(*sim.Engine); ok {
		return e.Every(interval, fn)
	}
	p := &rearming{sched: sched, interval: interval, fn: fn, deadline: sched.Now()}
	p.arm()
	return p
}

// rearming is a fixed-rate periodic timer for schedulers without a native
// Every. Each tick re-arms relative to the previous deadline — not the
// instant the callback returned — matching sim.Engine.Every's contract: on
// RealScheduler the callback's own run time must not accumulate as drift
// across ticks.
type rearming struct {
	sched    sim.Scheduler
	interval time.Duration
	fn       func()

	mu       sync.Mutex
	cur      sim.Timer
	deadline time.Duration
	stopped  bool
}

func (p *rearming) arm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	p.deadline += p.interval
	// A callback that overran part of the interval yields a shortened
	// delay, keeping ticks on the original grid. But if the schedule fell
	// more than one whole interval behind (process stall, suspend), snap
	// to now instead of firing a catch-up burst of every missed tick.
	now := p.sched.Now()
	if p.deadline+p.interval < now {
		p.deadline = now
	}
	p.cur = p.sched.After(p.deadline-now, func() {
		p.fn()
		p.arm()
	})
}

func (p *rearming) Stop() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return false
	}
	p.stopped = true
	if p.cur != nil {
		p.cur.Stop()
	}
	return true
}

// Send transmits a message to another peer. Errors are dropped: gossip is
// loss-tolerant by design and a failed send is equivalent to a lost packet.
// With piggybacked membership dissemination enabled, every ordinary send
// to a member of this organization also carries a bounded digest of queued
// membership rumors to the same destination (a separate MemberEvents
// message on the same link, so the frozen encodings of existing message
// types never change). Cross-org destinations — anchor-recovery statesync
// traffic — never carry digests: membership is per-organization.
func (c *Core) Send(to wire.NodeID, msg wire.Message) {
	_ = c.ep.Send(to, msg)
	if c.cfg.PiggybackMax <= 0 {
		return // piggybacking disabled
	}
	if membership.IsPayload(msg.Type()) {
		return // membership payloads must not piggyback onto themselves
	}
	if c.isMember(to) {
		c.view.PiggybackOnto(to)
	}
}

// isMember reports whether p belongs to this organization's peer list. In
// range mode it is two comparisons; otherwise a set probe.
func (c *Core) isMember(p wire.NodeID) bool {
	if c.rangeMode {
		return p >= c.rangeLo && p <= c.rangeHi
	}
	_, ok := c.members[p]
	return ok
}

// sharedZeroMeta returns a zero-filled buffer of at least n bytes, shared
// across every core: heartbeat padding is read-only on both runtimes (the
// sim path shares the message value, the TCP path marshals it), so there
// is no reason for each of 100k cores to hold its own copy.
var (
	zeroMetaMu sync.Mutex
	zeroMeta   []byte
)

func sharedZeroMeta(n int) []byte {
	zeroMetaMu.Lock()
	defer zeroMetaMu.Unlock()
	if len(zeroMeta) < n {
		zeroMeta = make([]byte, n)
	}
	return zeroMeta[:n]
}

// memberHost adapts Core to membership.Host: membership payloads go
// straight to the endpoint (bypassing the piggybacking Send) and share the
// core's deterministic random stream.
type memberHost Core

func (h *memberHost) Send(to wire.NodeID, msg wire.Message) { _ = h.ep.Send(to, msg) }

func (h *memberHost) Rand() *sim.Rand { return h.shuffleRng }

// RandomPeers samples k distinct peers uniformly, never including self.
// If fewer than k eligible peers exist, all of them are returned. The
// result is freshly allocated; hot paths use RandomPeersInto with a
// per-call-site buffer instead.
func (c *Core) RandomPeers(k int) []wire.NodeID { return c.RandomPeersInto(k, nil) }

// SingleThreaded reports whether the core runs on the discrete-event
// engine, whose callbacks are serialized by construction. Protocols use it
// to decide whether per-instance scratch buffers are safe to reuse across
// message handlers (on the TCP runtime handlers can run concurrently, so
// they must allocate instead).
func (c *Core) SingleThreaded() bool {
	_, ok := c.sched.(*sim.Engine)
	return ok
}

// RandomPeersInto is RandomPeers sampling into buf's backing array (grown
// if needed), so a periodic tick can reuse one buffer across rounds and
// keep the per-tick path allocation-free. The random draws are identical to
// RandomPeers — buffer reuse never shifts the stream. The caller owns buf
// exclusively: the returned slice aliases it and is valid until the owner's
// next call.
//
// This sits on the push hot path, so the candidate slice (peers minus self)
// is precomputed once at construction: a draw is k partial-Fisher-Yates
// swaps followed by k undo-swaps in reverse, restoring the canonical order
// so the next call — and therefore the whole run — consumes random values
// identically to a per-call rebuild. That replaces the old O(n) rebuild per
// tick with O(k) work.
// In range mode the candidate list is never materialized at all: position
// pos of the canonical list maps to id rangeLo+pos (skipping self), and the
// ≤k positions a draw displaces live in a small overlay that is cleared
// afterwards. The Intn argument sequence and the produced ids are
// bit-identical to the slice walk, so switching a topology between modes
// never shifts the random stream.
func (c *Core) RandomPeersInto(k int, buf []wire.NodeID) []wire.NodeID {
	n := len(c.others)
	if c.rangeMode {
		n = c.nOthers
	}
	if k > n {
		k = n
	}
	if k <= 0 {
		return buf[:0] // nil buf stays nil: RandomPeers(0) == nil
	}
	out := buf
	if cap(out) < k {
		out = make([]wire.NodeID, k)
	} else {
		out = out[:k]
	}
	c.mu.Lock()
	if c.rangeMode {
		for i := 0; i < k; i++ {
			j := i + c.rng.Intn(n-i)
			out[i] = c.overlayGet(j)
			if j != i {
				// The swap's only observable half: position j now holds
				// what position i held (position i itself is never read
				// again this draw, and the undo is the overlay reset).
				c.overlaySet(j, c.overlayGet(i))
			}
		}
		c.ovIdx = c.ovIdx[:0]
		c.ovVal = c.ovVal[:0]
		c.mu.Unlock()
		return out
	}
	cand := c.others
	sw := c.swapIdx[:k]
	for i := 0; i < k; i++ {
		j := i + c.rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
		out[i] = cand[i]
		sw[i] = j
	}
	// Undo in reverse so cand returns to its canonical order.
	for i := k - 1; i >= 0; i-- {
		j := sw[i]
		cand[i], cand[j] = cand[j], cand[i]
	}
	c.mu.Unlock()
	return out
}

// overlayGet reads position pos of the virtual candidate list: a displaced
// value from the overlay if the current draw moved one there, else the
// canonical id at that position. The overlay holds at most fanout-many
// entries, so the linear probe beats any map. Caller holds mu.
func (c *Core) overlayGet(pos int) wire.NodeID {
	for i, idx := range c.ovIdx {
		if idx == pos {
			return c.ovVal[i]
		}
	}
	p := c.rangeLo + wire.NodeID(pos)
	if c.selfInRange && p >= c.cfg.Self {
		p++
	}
	return p
}

// overlaySet records that position pos of the virtual candidate list holds
// val for the remainder of the current draw. Caller holds mu.
func (c *Core) overlaySet(pos int, val wire.NodeID) {
	for i, idx := range c.ovIdx {
		if idx == pos {
			c.ovVal[i] = val
			return
		}
	}
	c.ovIdx = append(c.ovIdx, pos)
	c.ovVal = append(c.ovVal, val)
}

// blockLocked returns the stored body of block num, or nil. Caller holds
// mu.
func (c *Core) blockLocked(num uint64) *ledger.Block {
	if num < uint64(len(c.blocks)) {
		return c.blocks[num]
	}
	return nil
}

// HasBlock reports whether the body of block num is stored.
func (c *Core) HasBlock(num uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blockLocked(num) != nil
}

// Block returns the stored body of block num, or nil.
func (c *Core) Block(num uint64) *ledger.Block {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blockLocked(num)
}

// Height returns the in-order ledger height (next needed block number).
func (c *Core) Height() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.height
}

// AddBlock stores a block body. It returns true if the body is new. First
// receptions fire the OnFirstReception hook; completed prefixes are handed
// to OnCommit in order. The protocol's OnBlockStored runs for new bodies.
func (c *Core) AddBlock(b *ledger.Block) bool {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return false
	}
	if c.blockLocked(b.Num) != nil {
		c.mu.Unlock()
		return false
	}
	for uint64(len(c.blocks)) <= b.Num {
		c.blocks = append(c.blocks, nil)
	}
	c.blocks[b.Num] = b
	if !c.hasAny || b.Num > c.highest {
		c.highest = b.Num
		c.hasAny = true
	}
	var commits []*ledger.Block
	for {
		nb := c.blockLocked(c.height)
		if nb == nil {
			break
		}
		commits = append(commits, nb)
		c.height++
	}
	first := c.onFirstReception
	commitFns := c.onCommit
	now := c.sched.Now()
	c.mu.Unlock()

	if first != nil {
		first(b, now)
	}
	for _, cb := range commits {
		for _, fn := range commitFns {
			fn(cb)
		}
	}
	c.proto.OnBlockStored(b)
	return true
}

// handleMessage dispatches inbound messages: shared types here, everything
// else to the protocol.
func (c *Core) handleMessage(from wire.NodeID, msg wire.Message) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	switch m := msg.(type) {
	case *wire.StateInfo:
		c.fetcher.Observe(from, m.Height)
	case *wire.StateRequest:
		c.provider.Serve(from, m)
	case *wire.StateResponse:
		c.fetcher.HandleResponse(m)
	case *wire.Alive:
		now := c.sched.Now()
		becameLive := c.view.Observe(from, m.Seq, now)
		if becameLive {
			if fn := c.onPeerState; fn != nil {
				fn(from, true, now)
			}
		}
	case *wire.DeliverBlock:
		// Ordering service -> leader peer. The fetcher notes the delivery
		// so anchor probing stands down while the orderer is healthy.
		c.fetcher.NoteDeliver()
		c.proto.OnOrdererBlock(m.Block)
	default:
		// The membership plane claims its payload types itself, so the
		// type list lives in exactly one place (View.Handle).
		if c.view.Handle(from, msg, c.sched.Now()) {
			c.refuteIfAccused()
			return
		}
		c.proto.Handle(from, msg)
	}
}

// --- periodic components ---

func (c *Core) stateInfoTick() {
	c.mu.Lock()
	h := c.height
	c.mu.Unlock()
	msg := &wire.StateInfo{Height: h}
	c.stateInfoPeers = c.RandomPeersInto(c.cfg.StateInfoFanout, c.stateInfoPeers)
	for _, p := range c.stateInfoPeers {
		c.Send(p, msg)
	}
}

func (c *Core) aliveTick() {
	now := c.sched.Now()
	c.mu.Lock()
	c.aliveSeq++
	seq := c.aliveSeq
	fn := c.onPeerState
	c.mu.Unlock()
	c.view.NoteSelfSeq(seq)
	dead := c.view.Sweep(now)
	// Drop dead peers' advertised heights: recovery must not keep targeting
	// a crashed peer (its requests would vanish and catch-up would stall a
	// full RecoveryInterval per round), and a stale maximum would also pin
	// the view if the peer later rejoins with an empty ledger.
	for _, p := range dead {
		c.fetcher.Forget(p)
	}
	if fn != nil {
		for _, p := range dead {
			fn(p, false, now)
		}
	}
	// The heartbeat padding is the shared per-core zero buffer: Alive
	// messages are read-only on every delivery path, so no tick needs a
	// fresh allocation.
	msg := &wire.Alive{Seq: seq, Meta: c.aliveMeta}
	c.alivePeers = c.RandomPeersInto(c.cfg.AliveFanout, c.alivePeers)
	for _, p := range c.alivePeers {
		c.Send(p, msg)
	}
}

// shuffleTick runs one membership view-shuffle round (SWIM extensions
// only; the timer is armed only when ShuffleInterval is set).
func (c *Core) shuffleTick() {
	c.view.ShuffleTick(c.sched.Now())
}

// refuteIfAccused answers a suspect/dead claim about this peer: SWIM's
// refutation bumps the heartbeat sequence (the incarnation number), queues
// an alive rumor at the new sequence, and heartbeats immediately so direct
// observers refresh too — without waiting for the next alive tick, which
// could lose the race against everyone's suspicion timeout.
func (c *Core) refuteIfAccused() {
	if !c.view.TakeAccusation() {
		return
	}
	c.mu.Lock()
	c.aliveSeq++
	seq := c.aliveSeq
	c.mu.Unlock()
	c.view.QueueSelfAlive(seq)
	msg := &wire.Alive{Seq: seq, Meta: c.aliveMeta}
	for _, p := range c.RandomPeers(c.cfg.AliveFanout) {
		c.Send(p, msg)
	}
}

// LivePeers returns the ids of peers currently believed alive (including
// self), from the membership view.
func (c *Core) LivePeers() []wire.NodeID {
	return c.view.Live(c.sched.Now())
}

// LivePeersInto is LivePeers appending into buf's backing array, for
// callers sampling the view periodically without per-sample allocations.
func (c *Core) LivePeersInto(buf []wire.NodeID) []wire.NodeID {
	return c.view.LiveInto(buf, c.sched.Now())
}

// LeaderPeer returns the organization's dynamic-election leader: the
// lowest-id peer currently believed alive.
func (c *Core) LeaderPeer() wire.NodeID {
	return c.view.Leader(c.sched.Now())
}

// IsLeader reports whether this peer currently believes it leads the
// organization. It is part of the statesync.Host interface: anchor probing
// is a leader duty.
func (c *Core) IsLeader() bool { return c.view.IsLeader(c.sched.Now()) }

// PeerDead reports whether the membership view considers the peer dead
// (statesync.Host: the fetcher's candidate filter). It answers from the
// same predicate as LivePeers/LeaderPeer — a peer is dead exactly when it
// was observed once and is no longer alive.
func (c *Core) PeerDead(p wire.NodeID) bool {
	return c.view.Dead(p, c.sched.Now())
}

// MembershipStats snapshots the membership view's counters (tracked peers
// by state, rumor-queue depth, piggyback and refutation counts).
func (c *Core) MembershipStats() membership.Stats { return c.view.Stats() }

// Now returns the scheduler's current time (statesync.Host).
func (c *Core) Now() time.Duration { return c.sched.Now() }

// PeerHeights returns a copy of the advertised heights view, owned by the
// statesync fetcher.
func (c *Core) PeerHeights() map[wire.NodeID]uint64 { return c.fetcher.Heights() }

// StateSyncStats snapshots the statesync engine's counters (bytes and
// blocks fetched, responses served, cache hits, anchor probes).
func (c *Core) StateSyncStats() statesync.Stats {
	return statesync.CollectStats(c.fetcher, c.provider)
}
