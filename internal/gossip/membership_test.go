package gossip

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

func TestMembershipObserveAndExpire(t *testing.T) {
	m := NewMembership(0, sec(3))
	if m.Alive(1, sec(0)) {
		t.Fatal("unseen peer reported alive")
	}
	m.Observe(1, 1, sec(0))
	if !m.Alive(1, sec(3)) {
		t.Fatal("peer dead within the window")
	}
	if m.Alive(1, sec(4)) {
		t.Fatal("peer alive past expiration")
	}
	// A fresh heartbeat revives it.
	m.Observe(1, 2, sec(10))
	if !m.Alive(1, sec(12)) {
		t.Fatal("revived peer not alive")
	}
}

func TestMembershipIgnoresStaleHeartbeats(t *testing.T) {
	m := NewMembership(0, sec(3))
	m.Observe(1, 5, sec(0))
	// A replayed older heartbeat arriving later must not extend liveness.
	m.Observe(1, 4, sec(2))
	m.Observe(1, 5, sec(2))
	if m.Alive(1, sec(4)) {
		t.Fatal("stale heartbeat extended liveness")
	}
}

func TestMembershipSelfAlwaysAlive(t *testing.T) {
	m := NewMembership(7, sec(1))
	if !m.Alive(7, sec(100)) {
		t.Fatal("self not alive")
	}
	m.Observe(7, 1, sec(0)) // self-heartbeats are ignored
	live := m.Live(sec(100))
	if len(live) != 1 || live[0] != 7 {
		t.Fatalf("live = %v", live)
	}
}

func TestMembershipLeaderIsLowestLiveID(t *testing.T) {
	m := NewMembership(5, sec(3))
	m.Observe(2, 1, sec(0))
	m.Observe(8, 1, sec(0))
	if got := m.Leader(sec(1)); got != 2 {
		t.Fatalf("leader = %v, want 2", got)
	}
	// Peer 2 expires: self (5) becomes the lowest live id.
	if got := m.Leader(sec(10)); got != 5 {
		t.Fatalf("leader after expiry = %v, want self (5)", got)
	}
	if !m.IsLeader(sec(10)) {
		t.Fatal("IsLeader disagrees with Leader")
	}
}

func TestMembershipObserveReportsTransition(t *testing.T) {
	m := NewMembership(0, sec(3))
	if !m.Observe(1, 1, sec(0)) {
		t.Fatal("first heartbeat not reported as a live transition")
	}
	if m.Observe(1, 2, sec(1)) {
		t.Fatal("refresh heartbeat reported as a transition")
	}
	if m.Observe(1, 2, sec(2)) {
		t.Fatal("stale heartbeat reported as a transition")
	}
	// Expire flips it dead; the next heartbeat is a transition again.
	dead := m.Expire(sec(10))
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Expire = %v, want [1]", dead)
	}
	if got := m.Expire(sec(11)); len(got) != 0 {
		t.Fatalf("second Expire = %v, want none (already dead)", got)
	}
	if !m.Observe(1, 3, sec(12)) {
		t.Fatal("rejoin heartbeat not reported as a transition")
	}
}

func TestMembershipExpireReturnsSortedIDs(t *testing.T) {
	m := NewMembership(0, sec(1))
	for _, id := range []wire.NodeID{9, 3, 7, 1} {
		m.Observe(id, 1, sec(0))
	}
	dead := m.Expire(sec(5))
	want := []wire.NodeID{1, 3, 7, 9}
	if len(dead) != len(want) {
		t.Fatalf("Expire = %v", dead)
	}
	for i := range want {
		if dead[i] != want[i] {
			t.Fatalf("Expire order = %v, want %v", dead, want)
		}
	}
}

func TestCorePeerStateChangeHook(t *testing.T) {
	// Crash a peer and revive it: every survivor's hook must report the
	// dead transition (via the alive-tick sweep) and the rejoin.
	o := buildFailoverOrg(t)
	type transition struct {
		peer  wire.NodeID
		alive bool
	}
	seen := make(map[wire.NodeID][]transition)
	for _, c := range o.cores {
		self := c.ID()
		c.OnPeerStateChange(func(peer wire.NodeID, alive bool, at time.Duration) {
			seen[self] = append(seen[self], transition{peer, alive})
		})
	}
	o.engine.RunUntil(5 * time.Second)
	o.net.SetNodeDown(0, true)
	o.engine.RunUntil(15 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		self := o.cores[i].ID()
		var sawDead bool
		for _, tr := range seen[self] {
			if tr.peer == 0 && !tr.alive {
				sawDead = true
			}
		}
		if !sawDead {
			t.Fatalf("peer %d never observed the leader dying", i)
		}
	}
	o.net.SetNodeDown(0, false)
	o.engine.RunUntil(25 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		self := o.cores[i].ID()
		// The transition log for peer 0 must end dead -> alive.
		var forZero []bool
		for _, tr := range seen[self] {
			if tr.peer == 0 {
				forZero = append(forZero, tr.alive)
			}
		}
		if len(forZero) < 3 || forZero[len(forZero)-1] != true {
			t.Fatalf("peer %d transition log for the leader = %v, want alive/dead/alive", i, forZero)
		}
	}
}

func TestCoreLeaderFailover(t *testing.T) {
	// Five peers heartbeat each other; peer 0 leads. Crash peer 0: within
	// the expiration window every surviving peer elects peer 1.
	o := buildFailoverOrg(t)
	o.engine.RunUntil(5 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 0 {
			t.Fatalf("peer %d leader = %v before crash, want 0", i, got)
		}
	}
	if !o.cores[0].IsLeader() {
		t.Fatal("peer 0 does not believe it leads")
	}

	o.net.SetNodeDown(0, true)
	o.engine.RunUntil(15 * time.Second) // > expiration
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 1 {
			t.Fatalf("peer %d leader = %v after crash, want 1", i, got)
		}
		live := o.cores[i].LivePeers()
		for _, p := range live {
			if p == 0 {
				t.Fatalf("peer %d still lists the dead leader as live", i)
			}
		}
	}
	if !o.cores[1].IsLeader() {
		t.Fatal("peer 1 did not take over leadership")
	}

	// Revive peer 0: heartbeats resume and leadership returns to it.
	o.net.SetNodeDown(0, false)
	o.engine.RunUntil(25 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 0 {
			t.Fatalf("peer %d leader = %v after revival, want 0", i, got)
		}
	}
}

type failoverOrg struct {
	engine *sim.Engine
	net    *transport.SimNetwork
	cores  []*Core
}

func buildFailoverOrg(t *testing.T) *failoverOrg {
	t.Helper()
	e := sim.NewEngine(31)
	o := &failoverOrg{engine: e}
	o.net = transport.NewSimNetwork(e,
		netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, nil)
	const n = 5
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		ep := o.net.AddNode()
		cfg := DefaultConfig(ep.ID(), ids)
		cfg.AliveInterval = time.Second
		cfg.AliveFanout = n - 1 // broadcast heartbeats: fast converging views
		cfg.AliveExpiration = 3 * time.Second
		cfg.StateInfoInterval = 0
		cfg.RecoveryInterval = 0
		core := New(cfg, ep, e, e.Rand("g"), &nullProtocol{})
		core.Start()
		o.cores = append(o.cores, core)
	}
	return o
}
