package gossip

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// The membership state machine's own tests live in internal/membership;
// these cover the core's wiring of it: heartbeat-driven transitions
// reaching the hook and leader failover converging across cores.

func TestCorePeerStateChangeHook(t *testing.T) {
	// Crash a peer and revive it: every survivor's hook must report the
	// dead transition (via the alive-tick sweep) and the rejoin.
	o := buildFailoverOrg(t)
	type transition struct {
		peer  wire.NodeID
		alive bool
	}
	seen := make(map[wire.NodeID][]transition)
	for _, c := range o.cores {
		self := c.ID()
		c.OnPeerStateChange(func(peer wire.NodeID, alive bool, at time.Duration) {
			seen[self] = append(seen[self], transition{peer, alive})
		})
	}
	o.engine.RunUntil(5 * time.Second)
	o.net.SetNodeDown(0, true)
	o.engine.RunUntil(15 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		self := o.cores[i].ID()
		var sawDead bool
		for _, tr := range seen[self] {
			if tr.peer == 0 && !tr.alive {
				sawDead = true
			}
		}
		if !sawDead {
			t.Fatalf("peer %d never observed the leader dying", i)
		}
	}
	o.net.SetNodeDown(0, false)
	o.engine.RunUntil(25 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		self := o.cores[i].ID()
		// The transition log for peer 0 must end dead -> alive.
		var forZero []bool
		for _, tr := range seen[self] {
			if tr.peer == 0 {
				forZero = append(forZero, tr.alive)
			}
		}
		if len(forZero) < 3 || forZero[len(forZero)-1] != true {
			t.Fatalf("peer %d transition log for the leader = %v, want alive/dead/alive", i, forZero)
		}
	}
}

func TestCoreLeaderFailover(t *testing.T) {
	// Five peers heartbeat each other; peer 0 leads. Crash peer 0: within
	// the expiration window every surviving peer elects peer 1.
	o := buildFailoverOrg(t)
	o.engine.RunUntil(5 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 0 {
			t.Fatalf("peer %d leader = %v before crash, want 0", i, got)
		}
	}
	if !o.cores[0].IsLeader() {
		t.Fatal("peer 0 does not believe it leads")
	}

	o.net.SetNodeDown(0, true)
	o.engine.RunUntil(15 * time.Second) // > expiration
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 1 {
			t.Fatalf("peer %d leader = %v after crash, want 1", i, got)
		}
		live := o.cores[i].LivePeers()
		for _, p := range live {
			if p == 0 {
				t.Fatalf("peer %d still lists the dead leader as live", i)
			}
		}
	}
	if !o.cores[1].IsLeader() {
		t.Fatal("peer 1 did not take over leadership")
	}

	// Revive peer 0: heartbeats resume and leadership returns to it.
	o.net.SetNodeDown(0, false)
	o.engine.RunUntil(25 * time.Second)
	for i := 1; i < len(o.cores); i++ {
		if got := o.cores[i].LeaderPeer(); got != 0 {
			t.Fatalf("peer %d leader = %v after revival, want 0", i, got)
		}
	}
}

type failoverOrg struct {
	engine *sim.Engine
	net    *transport.SimNetwork
	cores  []*Core
}

func buildFailoverOrg(t *testing.T) *failoverOrg {
	t.Helper()
	e := sim.NewEngine(31)
	o := &failoverOrg{engine: e}
	o.net = transport.NewSimNetwork(e,
		netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, nil)
	const n = 5
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		ep := o.net.AddNode()
		cfg := DefaultConfig(ep.ID(), ids)
		cfg.AliveInterval = time.Second
		cfg.AliveFanout = n - 1 // broadcast heartbeats: fast converging views
		cfg.AliveExpiration = 3 * time.Second
		cfg.StateInfoInterval = 0
		cfg.RecoveryInterval = 0
		core := New(cfg, ep, e, e.Rand("g"), &nullProtocol{})
		core.Start()
		o.cores = append(o.cores, core)
	}
	return o
}

// TestCoreSwimRefutesSuspicionUnderLoss runs a small org with the SWIM
// extensions on under heavy packet loss: without suspicion the sparse
// heartbeat sample would flap peers dead and alive; with
// suspicion + piggybacked refutations no live peer may ever be declared
// dead, while a genuinely crashed peer still must be.
func TestCoreSwimRefutesSuspicionUnderLoss(t *testing.T) {
	e := sim.NewEngine(7)
	net := transport.NewSimNetwork(e,
		netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, nil)
	net.SetDropRate(0.4)
	const n = 8
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	falseDeaths := 0
	crashDeaths := 0
	var cores []*Core
	for i := 0; i < n; i++ {
		ep := net.AddNode()
		cfg := DefaultConfig(ep.ID(), ids)
		cfg.AliveInterval = time.Second
		cfg.AliveFanout = 2 // sparse on purpose: losses starve the direct view
		cfg.AliveExpiration = 3 * time.Second
		cfg.StateInfoInterval = time.Second // piggyback carrier traffic
		cfg.RecoveryInterval = 0
		// Three shuffle rounds of refutation opportunity: at 40% loss a
		// suspicion's round trip (rumor to the accused, refutation back)
		// regularly loses one leg, so the timeout must cover retries.
		cfg.SuspectTimeout = 6 * time.Second
		cfg.PiggybackMax = 16
		cfg.ShuffleInterval = 2 * time.Second
		self := ep.ID()
		core := New(cfg, ep, e, e.Rand("g"), &nullProtocol{})
		core.OnPeerStateChange(func(peer wire.NodeID, alive bool, at time.Duration) {
			if alive {
				return
			}
			// The crashed node's own core keeps ticking with its endpoint
			// silenced, so it correctly watches everyone else lapse; only
			// the connected cores' verdicts are under test.
			if self == n-1 {
				return
			}
			if peer == n-1 && at > 20*time.Second {
				crashDeaths++
			} else {
				falseDeaths++
			}
		})
		core.Start()
		cores = append(cores, core)
	}
	e.RunUntil(20 * time.Second)
	if falseDeaths > 0 {
		t.Fatalf("%d live peers declared dead under loss despite suspicion", falseDeaths)
	}
	// A real crash must still be detected (suspicion delays, not denies).
	net.SetNodeDown(n-1, true)
	e.RunUntil(45 * time.Second)
	if crashDeaths == 0 {
		t.Fatal("crashed peer never declared dead with suspicion enabled")
	}
	if falseDeaths > 0 {
		t.Fatalf("%d false deaths after the crash window", falseDeaths)
	}
	for _, c := range cores {
		c.Stop()
	}
}

// TestCorePiggybackStaysInOrg locks the organization boundary: membership
// digests ride only on sends to this organization's members. Cross-org
// sends exist (anchor-recovery statesync probes), and a digest attached
// to one would plant this org's members in the remote org's view.
func TestCorePiggybackStaysInOrg(t *testing.T) {
	c, ep, _ := newTestCore(t, 0, 5, func(cfg *Config) {
		cfg.SuspectTimeout = 10 * time.Second
		cfg.PiggybackMax = 8
	})
	// Queue a rumor by observing a member's heartbeat (a join is news).
	c.handleMessage(1, &wire.Alive{Seq: 1})
	if c.MembershipStats().Queued == 0 {
		t.Fatal("no rumor queued")
	}

	const foreign = wire.NodeID(99) // outside the 5-peer member list
	c.Send(foreign, &wire.StateRequest{From: 0, To: 8})
	for i, m := range ep.sent {
		if m.Type() == wire.TypeMemberEvents && ep.to[i] == foreign {
			t.Fatal("membership digest piggybacked onto a cross-org send")
		}
	}

	c.Send(2, &wire.StateInfo{Height: 0})
	found := false
	for i, m := range ep.sent {
		if m.Type() == wire.TypeMemberEvents && ep.to[i] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("intra-org send carried no digest despite queued rumors")
	}
}

// TestCorePiggybackDensifiesView locks the tentpole claim at the core
// level: with fan-out 1 heartbeats on a 24-peer org, the direct view stays
// a sparse sample, and enabling piggyback + shuffle closes it to the full
// organization within the same virtual time.
func TestCorePiggybackDensifiesView(t *testing.T) {
	build := func(swim bool) float64 {
		e := sim.NewEngine(5)
		net := transport.NewSimNetwork(e,
			netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, nil)
		const n = 24
		ids := make([]wire.NodeID, n)
		for i := range ids {
			ids[i] = wire.NodeID(i)
		}
		var cores []*Core
		for i := 0; i < n; i++ {
			ep := net.AddNode()
			cfg := DefaultConfig(ep.ID(), ids)
			cfg.AliveInterval = 2 * time.Second
			cfg.AliveFanout = 1
			cfg.AliveExpiration = 5 * time.Second
			cfg.StateInfoInterval = time.Second
			cfg.RecoveryInterval = 0
			if swim {
				cfg.SuspectTimeout = 10 * time.Second
				cfg.PiggybackMax = 16
				cfg.ShuffleInterval = 2 * time.Second
				cfg.ShuffleSample = 16
			}
			core := New(cfg, ep, e, e.Rand("g"), &nullProtocol{})
			core.Start()
			cores = append(cores, core)
		}
		e.RunUntil(30 * time.Second)
		total := 0
		for _, c := range cores {
			total += len(c.LivePeers())
		}
		for _, c := range cores {
			c.Stop()
		}
		return float64(total) / float64(n*n)
	}
	sparse := build(false)
	dense := build(true)
	if sparse > 0.8 {
		t.Fatalf("baseline view unexpectedly dense (%.2f): the test lost its contrast", sparse)
	}
	if dense < 0.95 {
		t.Fatalf("piggyback+shuffle view completeness = %.2f, want >= 0.95 (sparse baseline %.2f)",
			dense, sparse)
	}
	if dense <= sparse {
		t.Fatalf("piggyback+shuffle did not densify the view: %.2f vs %.2f", dense, sparse)
	}
}
