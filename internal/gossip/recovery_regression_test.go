package gossip

import (
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Regression for the recovery-liveness bug: recoveryTick used to pick the
// highest entry of peerHeights without consulting the membership view, and
// the map was never pruned when a peer died. With the most advanced peer
// crashed, every recovery round targeted it and catch-up stalled forever.
//
// The fixture runs three cores over a simulated LAN with a protocol that
// never pushes, so the recovery component is the only dissemination path.
// Peer 0 is strictly the most advanced, then crashes; peer 2 must still
// converge to peer 1's height.
func TestRecoverySkipsDeadMostAdvancedPeer(t *testing.T) {
	engine := sim.NewEngine(7)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), nil)
	peers := []wire.NodeID{0, 1, 2}
	cores := make([]*Core, len(peers))
	for i := range cores {
		ep := net.AddNode()
		cfg := DefaultConfig(ep.ID(), peers)
		cfg.StateInfoInterval = 500 * time.Millisecond
		cfg.AliveInterval = time.Second
		cfg.AliveExpiration = 2500 * time.Millisecond
		cfg.RecoveryInterval = 2 * time.Second
		cores[i] = New(cfg, ep, engine, engine.Rand("gossip"), &nullProtocol{})
		cores[i].Start()
	}
	engine.RunUntil(3 * time.Second) // membership + initial state info settle

	// Peer 0 holds 10 blocks, peer 1 holds 8, peer 2 none.
	for n := 0; n < 10; n++ {
		cores[0].AddBlock(&ledger.Block{Num: uint64(n)})
	}
	for n := 0; n < 8; n++ {
		cores[1].AddBlock(&ledger.Block{Num: uint64(n)})
	}
	// Heights propagate on the 3.5 s state-info tick; crash the most
	// advanced peer before peer 2's next recovery round (4 s) can fetch
	// from it while it is still alive.
	engine.RunUntil(3750 * time.Millisecond)
	if h := cores[2].PeerHeights()[0]; h != 10 {
		t.Fatalf("peer 2 sees peer 0 at height %d, want 10", h)
	}

	// The strictly most advanced peer crashes. Pre-fix, peer 2's candidate
	// set is {0} on every round and it never fetches anything.
	cores[0].Stop()
	net.SetNodeDown(0, true)

	engine.RunUntil(40 * time.Second)
	if got := cores[2].Height(); got != 8 {
		t.Fatalf("lagging peer stalled at height %d, want 8 (recovery kept "+
			"targeting the crashed most-advanced peer)", got)
	}
	if _, ok := cores[2].PeerHeights()[0]; ok {
		t.Fatal("dead peer's advertised height was never pruned")
	}
}

// A stale StateInfo that arrives after the expiration sweep pruned the dead
// peer's entry must not make recovery target the dead peer again: the
// membership view still marks it dead.
func TestRecoveryIgnoresStaleHeightOfDeadPeer(t *testing.T) {
	engine := sim.NewEngine(3)
	ep := &fakeEndpoint{id: 2}
	cfg := DefaultConfig(2, []wire.NodeID{0, 1, 2})
	cfg.AliveInterval = time.Second
	cfg.AliveExpiration = 2 * time.Second
	cfg.RecoveryInterval = 5 * time.Second
	cfg.StateInfoInterval = 0
	core := New(cfg, ep, engine, engine.Rand("g"), &nullProtocol{})
	core.Start()

	// Observe peer 0 live, then let it expire.
	ep.deliver(0, &wire.Alive{Seq: 1})
	engine.RunUntil(4 * time.Second)
	if _, ok := core.PeerHeights()[0]; ok {
		t.Fatal("expired peer's height survived the sweep")
	}

	// A reordered StateInfo from the dead peer floats in afterwards.
	ep.deliver(0, &wire.StateInfo{Height: 50})
	engine.RunUntil(6 * time.Second) // next recovery tick fires
	for _, s := range ep.sends() {
		if _, ok := s.msg.(*wire.StateRequest); ok && s.to == 0 {
			t.Fatal("recovery targeted a peer the view marks dead")
		}
	}
}

// The empty-live-view window right after a restart must elect self, not
// panic. (The Leader fallback itself is unit-tested in
// internal/membership; this locks the core-level delegation.)
func TestLeaderOnFreshViewFallsBackToSelf(t *testing.T) {
	e := sim.NewEngine(1)
	ep := &fakeEndpoint{id: 4}
	core := New(DefaultConfig(4, []wire.NodeID{0, 1, 2, 3, 4}), ep, e, e.Rand("g"), &nullProtocol{})
	if got := core.LeaderPeer(); got != 4 {
		t.Fatalf("fresh view leader = %v, want self (4)", got)
	}
	if !core.IsLeader() {
		t.Fatal("fresh view does not consider self the leader")
	}
}

// RandomPeers must only subtract self from the eligible count when self is
// actually in cfg.Peers: an observer core listing three remote peers can
// sample all three.
func TestRandomPeersWithoutSelfInMembership(t *testing.T) {
	e := sim.NewEngine(1)
	ep := &fakeEndpoint{id: 9}
	cfg := DefaultConfig(9, []wire.NodeID{0, 1, 2})
	core := New(cfg, ep, e, e.Rand("g"), &nullProtocol{})
	got := core.RandomPeers(3)
	if len(got) != 3 {
		t.Fatalf("sampled %d of 3 remote peers, want all 3 (self is not a member)", len(got))
	}
	seen := map[wire.NodeID]bool{}
	for _, p := range got {
		if p == 9 || seen[p] {
			t.Fatalf("bad sample %v", got)
		}
		seen[p] = true
	}
}
