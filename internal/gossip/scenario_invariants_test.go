package gossip_test

import (
	"strings"
	"testing"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/scenario"
)

// The gossip layer's safety contract under faults: whatever the scenario
// does to the organization — crashes, churn, partitions, slow links, packet
// loss, staggered joins — every peer alive at the end must have committed
// every injected block, in order, with no gaps, with rejoining peers closing
// their holes through the recovery component. Table-driven over the entire
// built-in catalog for both protocol variants.
func TestAllScenariosPreserveCommitInvariants(t *testing.T) {
	const peers = 30
	for _, def := range scenario.Catalog() {
		for _, variant := range []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced} {
			def, variant := def, variant
			t.Run(def.Name+"/"+string(variant), func(t *testing.T) {
				t.Parallel()
				rep, err := scenario.RunNamed(def.Name, scenario.Options{
					Peers:   peers,
					Variant: variant,
					Seed:    23,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.BlocksInjected == 0 {
					t.Fatal("scenario injected no blocks")
				}
				if rep.OrderViolations != 0 {
					t.Fatalf("%d out-of-order or gapped commits\ntrace:\n%s",
						rep.OrderViolations, strings.Join(rep.Trace, "\n"))
				}
				if rep.CaughtUp != rep.Survivors {
					t.Fatalf("only %d of %d survivors committed all %d blocks\ntrace:\n%s",
						rep.CaughtUp, rep.Survivors, rep.BlocksInjected,
						strings.Join(rep.Trace, "\n"))
				}
				if rep.PendingRecoveries != 0 {
					t.Fatalf("%d rejoined peers never caught up\ntrace:\n%s",
						rep.PendingRecoveries, strings.Join(rep.Trace, "\n"))
				}
			})
		}
	}
}
