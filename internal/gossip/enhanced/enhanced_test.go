package enhanced

import (
	"testing"
	"time"

	"fabricgossip/internal/analysis"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

type net struct {
	engine  *sim.Engine
	sim     *transport.SimNetwork
	traffic *netmodel.Traffic
	cores   []*gossip.Core
	protos  []*Protocol
	orderer *transport.SimEndpoint
}

func build(t *testing.T, n int, cfg Config, seed int64) *net {
	t.Helper()
	e := sim.NewEngine(seed)
	tr := netmodel.NewTraffic(time.Second)
	w := &net{engine: e, traffic: tr}
	w.sim = transport.NewSimNetwork(e, netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}, tr)
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		ep := w.sim.AddNode()
		p := New(cfg)
		gcfg := gossip.DefaultConfig(ep.ID(), ids)
		gcfg.AliveInterval = 0
		gcfg.StateInfoInterval = 0
		gcfg.RecoveryInterval = 0
		c := gossip.New(gcfg, ep, e, e.Rand("g"), p)
		w.cores = append(w.cores, c)
		w.protos = append(w.protos, p)
	}
	w.orderer = w.sim.AddNode()
	for _, c := range w.cores {
		c.Start()
	}
	return w
}

func block(num uint64) *ledger.Block {
	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(num)}}}}
	tx := &ledger.Transaction{
		ID:     ledger.ProposalDigest("c", "cc", rw, []byte{byte(num)}),
		Client: "c", Chaincode: "cc", RWSet: rw, Payload: make([]byte, 512),
	}
	b := &ledger.Block{Num: num, Txs: []*ledger.Transaction{tx}}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	return b
}

func TestDefaultConfigDerivesPaperParameters(t *testing.T) {
	cfg, err := DefaultConfig(100)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fout != 4 {
		t.Fatalf("fout = %d, want floor(ln 100) = 4", cfg.Fout)
	}
	if cfg.TTL != 9 {
		t.Fatalf("TTL = %d, want 9", cfg.TTL)
	}
	if cfg.FLeaderOut != 1 || !cfg.UseDigests {
		t.Fatalf("cfg = %+v", cfg)
	}
	// Small networks floor the fan-out at 2.
	small, err := DefaultConfig(5)
	if err != nil {
		t.Fatal(err)
	}
	if small.Fout != 2 {
		t.Fatalf("small fout = %d, want 2", small.Fout)
	}
	if New(cfg).Name() != "enhanced" {
		t.Fatal("protocol name wrong")
	}
}

func TestLeaderDelegatesToSingleInitialGossiper(t *testing.T) {
	cfg, _ := ConfigFor(20, 3, 1e-6, 2)
	w := build(t, 20, cfg, 1)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	// The DeliverBlock is in flight for >= 1 ms (PropMin); sample right
	// after the leader's forward but before the initial gossiper (another
	// >= 1 ms hop) can re-forward: exactly one body has left the leader.
	w.engine.RunUntil(2 * time.Millisecond)
	if got := w.traffic.CountOf(wire.TypeData); got != 1 {
		t.Fatalf("leader sent %d bodies, want exactly fleaderout = 1", got)
	}
	w.engine.RunUntil(5 * time.Second)
	for i, c := range w.cores {
		if !c.HasBlock(0) {
			t.Fatalf("peer %d missed the block", i)
		}
	}
}

func TestCounterPairsDriveForwarding(t *testing.T) {
	cfg, _ := ConfigFor(20, 3, 1e-6, 2)
	w := build(t, 20, cfg, 2)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(5 * time.Second)
	// Infect-upon-contagion: peers see multiple (block, counter) pairs,
	// not just one — each first pair reception re-forwards.
	multi := 0
	for _, p := range w.protos {
		if p.SeenPairs(0) > 1 {
			multi++
		}
	}
	if multi < 5 {
		t.Fatalf("only %d peers saw multiple counter pairs; epidemic not re-forwarding", multi)
	}
}

func TestTTLBoundsCounters(t *testing.T) {
	cfg, _ := ConfigFor(15, 2, 1e-3, 1)
	w := build(t, 15, cfg, 3)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(10 * time.Second)
	for i, p := range w.protos {
		if pairs := p.SeenPairs(0); pairs > int(cfg.TTL)+1 {
			t.Fatalf("peer %d saw %d pairs, exceeds TTL+1 = %d", i, pairs, cfg.TTL+1)
		}
	}
}

func TestBodiesTransmittedNPlusLittleO(t *testing.T) {
	const n = 50
	cfg, _ := ConfigFor(n, 4, 1e-6, 2)
	w := build(t, n, cfg, 4)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(5 * time.Second)
	for i, c := range w.cores {
		if !c.HasBlock(0) {
			t.Fatalf("peer %d missed the block", i)
		}
	}
	bodies := int(w.traffic.CountOf(wire.TypeData))
	// n-1 peers need the body once; direct hops (1 + fout + fout^2 = 21)
	// may duplicate. Digest traffic carries the rest.
	if bodies < n-1 || bodies > n+35 {
		t.Fatalf("bodies = %d, want within [n-1, n+o(n)] for n=%d", bodies, n)
	}
	if w.traffic.CountOf(wire.TypePushDigest) == 0 {
		t.Fatal("no digests sent despite UseDigests")
	}
}

func TestNoDigestAblationSendsBodiesEveryHop(t *testing.T) {
	const n = 30
	cfg, _ := ConfigFor(n, 3, 1e-6, 2)
	cfg.UseDigests = false
	w := build(t, n, cfg, 5)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(5 * time.Second)
	if w.traffic.CountOf(wire.TypePushDigest) != 0 {
		t.Fatal("digests sent despite ablation")
	}
	// Every first pair reception forwards the body: far more than n.
	bodies := int(w.traffic.CountOf(wire.TypeData))
	if bodies < 2*n {
		t.Fatalf("bodies = %d, expected a blow-up well beyond n = %d", bodies, n)
	}
}

func TestDigestBeforeBodyIsServedOnArrival(t *testing.T) {
	// Direct protocol-level exercise of the pending-serve queue: a peer
	// that offered a block it does not hold yet must serve the body as
	// soon as it arrives.
	e := sim.NewEngine(6)
	tr := netmodel.NewTraffic(time.Second)
	simnet := transport.NewSimNetwork(e, netmodel.Model{PropMin: time.Millisecond, PropMax: time.Millisecond}, tr)
	ids := []wire.NodeID{0, 1}
	cfg, _ := ConfigFor(10, 2, 1e-3, 0) // digests from the first hop
	var protos []*Protocol
	var cores []*gossip.Core
	for i := 0; i < 2; i++ {
		ep := simnet.AddNode()
		p := New(cfg)
		gcfg := gossip.DefaultConfig(ep.ID(), ids)
		gcfg.AliveInterval, gcfg.StateInfoInterval, gcfg.RecoveryInterval = 0, 0, 0
		cores = append(cores, gossip.New(gcfg, ep, e, e.Rand("g"), p))
		protos = append(protos, p)
	}
	for _, c := range cores {
		c.Start()
	}
	b := block(0)
	// Peer 0 learns about the block via a digest (no body) and peer 1
	// requests it from peer 0 before peer 0 has the body.
	e.After(0, func() { protos[0].handleDigest(1, &wire.PushDigest{Offers: []wire.BlockOffer{{Num: 0, Counter: 3}}}) })
	e.After(5*time.Millisecond, func() { protos[0].handleRequest(1, &wire.PushRequest{Nums: []uint64{0}}) })
	e.RunUntil(10 * time.Millisecond)
	if cores[1].HasBlock(0) {
		t.Fatal("body served before it existed")
	}
	// The body arrives at peer 0 (e.g. via the requested fetch): the
	// queued request must now be served to peer 1.
	e.After(0, func() { protos[0].handleData(&wire.Data{Block: b, Counter: 3}) })
	e.RunUntil(time.Second)
	if !cores[1].HasBlock(0) {
		t.Fatal("queued body request never served")
	}
}

func TestRequestTimeoutAllowsReRequest(t *testing.T) {
	cfg, _ := ConfigFor(10, 2, 1e-3, 0)
	cfg.RequestTimeout = 50 * time.Millisecond
	e := sim.NewEngine(7)
	tr := netmodel.NewTraffic(time.Second)
	simnet := transport.NewSimNetwork(e, netmodel.Model{PropMin: time.Millisecond, PropMax: time.Millisecond}, tr)
	ids := []wire.NodeID{0, 1, 2}
	var protos []*Protocol
	for i := 0; i < 3; i++ {
		ep := simnet.AddNode()
		p := New(cfg)
		gcfg := gossip.DefaultConfig(ep.ID(), ids)
		gcfg.AliveInterval, gcfg.StateInfoInterval, gcfg.RecoveryInterval = 0, 0, 0
		c := gossip.New(gcfg, ep, e, e.Rand("g"), p)
		c.Start()
		protos = append(protos, p)
	}
	// Peer 0 gets an offer from peer 1 (who will never serve it — it has
	// no body either), then a second offer from peer 2 after the timeout.
	// Offer counters equal TTL so no peer re-forwards and the only
	// PushRequests in the network are peer 0's.
	ttl := cfg.TTL
	e.After(0, func() { protos[0].handleDigest(1, &wire.PushDigest{Offers: []wire.BlockOffer{{Num: 0, Counter: ttl}}}) })
	e.After(30*time.Millisecond, func() { // within timeout: no re-request
		protos[0].handleDigest(2, &wire.PushDigest{Offers: []wire.BlockOffer{{Num: 0, Counter: ttl}}})
	})
	e.After(100*time.Millisecond, func() { // past timeout: re-request
		protos[0].handleDigest(2, &wire.PushDigest{Offers: []wire.BlockOffer{{Num: 0, Counter: ttl}}})
	})
	e.RunUntil(time.Second)
	if got := tr.CountOf(wire.TypePushRequest); got != 2 {
		t.Fatalf("requests = %d, want exactly initial + post-timeout re-request", got)
	}
}

func TestPeMatchesMonteCarloAtSmallScale(t *testing.T) {
	// Cross-validation of the analysis with the implementation: at a
	// deliberately small TTL the push phase should fail to reach everyone
	// at roughly the analytic rate.
	const n, fout, ttl = 30, 2, 4
	pe := analysis.ImperfectProb(n, fout, ttl)
	if pe < 0.05 || pe > 0.95 {
		t.Skipf("pe = %g not in a testable band", pe)
	}
	cfg := Config{Fout: fout, TTL: ttl, TTLDirect: 1, FLeaderOut: 1, UseDigests: true, RequestTimeout: 100 * time.Millisecond}
	failures := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		w := build(t, n, cfg, int64(trial)+100)
		_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
		w.engine.RunUntil(5 * time.Second)
		for _, c := range w.cores {
			if !c.HasBlock(0) {
				failures++
				break
			}
		}
	}
	rate := float64(failures) / trials
	// The analysis is a conservative upper bound; the observed failure
	// rate must not exceed it by much, and should not be wildly lower
	// (within a factor-ish band given 60 trials).
	if rate > pe*2.0+0.15 {
		t.Fatalf("observed failure rate %.2f far above analytic bound %.2f", rate, pe)
	}
}
