// Package enhanced implements the paper's contribution (§IV): an
// infect-upon-contagion push phase with a TTL stopping condition chosen for
// a target probability of imperfect dissemination, digests beyond the first
// TTLdirect hops, a randomized initial gossiper that relieves the leader
// peer, immediate forwarding (tpush = 0), and no pull component.
//
// Epidemic state is the *pair* (block number, hop counter): the first
// reception of a pair — by direct Data or by digest offer — forwards the
// pair with an incremented counter to Fout random peers, until the counter
// reaches TTL. Hops whose outgoing counter is at most TTLdirect carry the
// full body; later hops carry a digest answered by a body request.
package enhanced

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"fabricgossip/internal/analysis"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/wire"
)

// Config holds the enhanced protocol's parameters.
type Config struct {
	// Fout is the push fan-out. The paper evaluates floor(ln n) = 4 and
	// the more conservative 2.
	Fout int
	// TTL is the stopping counter; pick with analysis.TTLFor (or
	// ConfigFor) so the probability of imperfect dissemination meets the
	// target (9 for fout=4, 19 for fout=2 at n=100, pe=1e-6).
	TTL uint32
	// TTLDirect is the number of initial hops pushed with the full body
	// and no digest (collisions are rare early; paper uses 2 for fout=4,
	// 3 for fout=2). Zero sends digests from the first forwarded hop.
	TTLDirect uint32
	// FLeaderOut is the leader peer's fan-out for the initial delegation
	// (1 in the paper; setting it to Fout reproduces the Figure 10
	// ablation where the leader carries fout times the bandwidth).
	FLeaderOut int
	// UseDigests enables digest-based push beyond TTLDirect. Disabling it
	// reproduces the Figure 11 ablation (full bodies on every hop,
	// ~8 MB/s).
	UseDigests bool
	// RequestTimeout is how long a body request may stay outstanding
	// before a new digest offer triggers a re-request.
	RequestTimeout time.Duration
	// TPush re-enables Fabric's push batching timer for data blocks.
	// The paper sets it to 0: pairs buffered together are forwarded to
	// the SAME random sample, which biases the epidemic's randomness and
	// voids the pe guarantee (§IV, "we also remove the tpush=10ms
	// timer... to ensure unbiased randomness"). Non-zero values exist to
	// reproduce that ablation.
	TPush time.Duration
	// Retention bounds per-block epidemic state: tracking for blocks more
	// than Retention below the in-order ledger height is pruned (their
	// epidemics ended long ago; stragglers fall through to recovery).
	// Zero defaults to 256 blocks.
	Retention uint64
}

// DefaultConfig returns the paper's primary configuration for a network of
// n peers: fout = floor(ln n) (minimum 2), TTL from the analytic lookup at
// pe = 1e-6, TTLdirect = 2, fleaderout = 1.
func DefaultConfig(n int) (Config, error) {
	fout := lnFloor(n)
	if fout < 2 {
		fout = 2
	}
	ttl, err := analysis.TTLFor(n, fout, 1e-6)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Fout:           fout,
		TTL:            uint32(ttl),
		TTLDirect:      2,
		FLeaderOut:     1,
		UseDigests:     true,
		RequestTimeout: 500 * time.Millisecond,
	}, nil
}

// ConfigFor returns a configuration with an explicit fan-out and the TTL
// required for the given pe target on n peers.
func ConfigFor(n, fout int, peTarget float64, ttlDirect uint32) (Config, error) {
	ttl, err := analysis.TTLFor(n, fout, peTarget)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Fout:           fout,
		TTL:            uint32(ttl),
		TTLDirect:      ttlDirect,
		FLeaderOut:     1,
		UseDigests:     true,
		RequestTimeout: 500 * time.Millisecond,
	}, nil
}

func lnFloor(n int) int {
	return int(math.Log(float64(n)))
}

// pendingServe is a body request we could not answer yet because we
// ourselves only hold the digest so far.
type pendingServe struct {
	to      wire.NodeID
	counter uint32
}

// blockState is one block's epidemic tracking state, stored dense by block
// number (blocks[i] tracks blockBase+i). Block numbers are small dense
// integers and Retention bounds how many stay live, so a flat 24-byte slot
// replaces what used to be an entry in each of four parallel maps — the
// largest remaining heap term across a 10k-peer organization.
type blockState struct {
	// seen is the bitset of observed counters 0..63. TTL is single-digit
	// for every analytic configuration, so one word covers the whole
	// epidemic; counters >= 64 spill into the seenHigh side map.
	seen uint64
	// requested is when we last asked someone for the body, plus 1ns so
	// zero means "never asked".
	requested time.Duration
	// lastOffered is the counter this peer last offered for the block,
	// plus one so zero means "never offered".
	lastOffered uint32
}

// Protocol is the enhanced disseminator.
type Protocol struct {
	cfg Config

	mu sync.Mutex
	c  *gossip.Core

	// blocks is the dense per-block tracking state: blocks[i] tracks block
	// number blockBase+i. pruneBelow advances blockBase and shifts the
	// slice, keeping at most Retention (plus in-flight) slots live.
	blocks    []blockState
	blockBase uint64
	// seenHigh spills counters >= 64 (configs with TTL >= 64 only); nil
	// until such a counter arrives.
	seenHigh map[uint64][]uint64
	// serves queues body requests that arrived before the body; nil until
	// a request outruns its body.
	serves map[uint64][]pendingServe
	// stale resurrects tracking state for stragglers below blockBase, so
	// a pair arriving after its block was pruned still dedupes exactly as
	// the map-based layout did; nil until one arrives.
	stale map[uint64]*blockState

	// pushBuf holds (num, counter) pairs awaiting the TPush flush (only
	// used in the tpush ablation; the paper's configuration forwards
	// immediately).
	pushBuf   []wire.BlockOffer
	pushTimer simTimer

	// sampleBuf is the spread path's reusable fan-out sample and
	// digestSpreads handleDigest's staged new-pair scratch. Both are
	// reused only on the single-threaded simulated runtime (reuse), where
	// message handlers are serialized by the engine; the TCP runtime's
	// concurrent handlers allocate fresh slices instead. Neither is ever
	// part of an outbound message — in-flight messages must not alias
	// reused memory.
	sampleBuf     []wire.NodeID
	digestSpreads []wire.BlockOffer
	reuse         bool

	// dataPool/digestPool recycle outbound envelopes on the simulated
	// runtime: an envelope is drawn with its reference count preset to the
	// fan-out and returns to the free list when the transport terminates
	// its last delivery (see wire.Releasable). This kills the last per-
	// spread heap churn of the push path. The TCP runtime allocates plain
	// envelopes instead — its transport encodes rather than retains them,
	// so there is no release point.
	dataPool   wire.DataPool
	digestPool wire.PushDigestPool

	stopped bool
}

// simTimer narrows sim.Timer for the one optional timer this protocol owns.
type simTimer interface{ Stop() bool }

// New returns an unstarted protocol instance.
func New(cfg Config) *Protocol {
	return &Protocol{cfg: cfg}
}

// state returns block num's tracking slot, creating it if needed. Callers
// hold mu; the pointer must not outlive the critical section (growing the
// dense slice moves it).
func (p *Protocol) state(num uint64) *blockState {
	if num < p.blockBase {
		st := p.stale[num]
		if st == nil {
			if p.stale == nil {
				p.stale = make(map[uint64]*blockState)
			}
			st = &blockState{}
			p.stale[num] = st
		}
		return st
	}
	i := num - p.blockBase
	for uint64(len(p.blocks)) <= i {
		p.blocks = append(p.blocks, blockState{})
	}
	return &p.blocks[i]
}

// peek returns block num's tracking slot or nil, without creating one.
// Callers hold mu.
func (p *Protocol) peek(num uint64) *blockState {
	if num < p.blockBase {
		return p.stale[num]
	}
	if i := num - p.blockBase; i < uint64(len(p.blocks)) {
		return &p.blocks[i]
	}
	return nil
}

// Name implements gossip.Protocol.
func (p *Protocol) Name() string { return "enhanced" }

// PoolOutstanding reports the instance's pooled envelopes still checked
// out (body, digest). Both must be zero once the engine drains: the
// transport releases every delivery attempt, so a nonzero residue means a
// send was issued without a matching release. The scenario runner asserts
// this after every catalog run.
func (p *Protocol) PoolOutstanding() (data, digest int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dataPool.Outstanding(), p.digestPool.Outstanding()
}

// Start implements gossip.Protocol.
func (p *Protocol) Start(c *gossip.Core) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.c = c
	p.reuse = c.SingleThreaded()
}

// Stop implements gossip.Protocol.
func (p *Protocol) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if p.pushTimer != nil {
		p.pushTimer.Stop()
		p.pushTimer = nil
	}
}

// OnOrdererBlock implements gossip.Protocol: the leader stores the block
// and delegates the epidemic's start to FLeaderOut random peers with
// counter 0. With FLeaderOut = 1 the leader's per-block cost is a single
// body transmission, spreading the origin role uniformly across the
// organization (paper §IV, "randomization of the initial gossiper").
func (p *Protocol) OnOrdererBlock(b *ledger.Block) {
	p.c.AddBlock(b)
	p.mu.Lock()
	p.markSeen(b.Num, 0)
	p.mu.Unlock()
	targets := p.sample(p.cfg.FLeaderOut)
	if len(targets) == 0 {
		return
	}
	msg := p.newData(b, 0, len(targets))
	for _, t := range targets {
		p.c.Send(t, msg)
	}
}

// newData returns an outbound body envelope good for refs deliveries:
// pooled on the simulated runtime, freshly allocated on the TCP runtime.
// refs must be fixed before the first send — the transport may release
// mid-loop when a copy drops.
func (p *Protocol) newData(b *ledger.Block, counter uint32, refs int) *wire.Data {
	if p.reuse {
		return p.dataPool.Get(b, counter, refs)
	}
	return &wire.Data{Block: b, Counter: counter}
}

// newDigest is newData for digest envelopes; the caller appends Offers.
func (p *Protocol) newDigest(refs int) *wire.PushDigest {
	if p.reuse {
		return p.digestPool.Get(refs)
	}
	return &wire.PushDigest{}
}

// Handle implements gossip.Protocol.
func (p *Protocol) Handle(from wire.NodeID, msg wire.Message) bool {
	switch m := msg.(type) {
	case *wire.Data:
		p.handleData(m)
	case *wire.PushDigest:
		p.handleDigest(from, m)
	case *wire.PushRequest:
		p.handleRequest(from, m)
	default:
		return false
	}
	return true
}

// OnBlockStored implements gossip.Protocol: bodies arriving by any path
// satisfy queued body requests, and old epidemic state is pruned against
// the advancing ledger height.
func (p *Protocol) OnBlockStored(b *ledger.Block) {
	p.mu.Lock()
	serves := p.serves[b.Num]
	delete(p.serves, b.Num)
	p.mu.Unlock()
	for _, s := range serves {
		p.c.Send(s.to, p.newData(b, s.counter, 1))
	}
	p.pruneBelow(p.c.Height())
}

// pruneBelow drops per-block tracking state for blocks far below the
// in-order height, keeping memory bounded on long-running peers.
func (p *Protocol) pruneBelow(height uint64) {
	retention := p.cfg.Retention
	if retention == 0 {
		retention = 256
	}
	if height <= retention {
		return
	}
	floor := height - retention
	p.mu.Lock()
	defer p.mu.Unlock()
	// A queued serve is dropped with its block's tracking state; one for a
	// block never seen here (possible after a peer re-requests across our
	// earlier prune) stays queued, exactly as the map layout behaved.
	for num := range p.serves {
		if num < floor && p.trackedLocked(num) {
			delete(p.serves, num)
		}
	}
	if floor > p.blockBase {
		n := floor - p.blockBase
		if n >= uint64(len(p.blocks)) {
			p.blocks = p.blocks[:0]
		} else {
			copy(p.blocks, p.blocks[n:])
			p.blocks = p.blocks[:uint64(len(p.blocks))-n]
		}
		p.blockBase = floor
	}
	for num := range p.seenHigh {
		if num < floor {
			delete(p.seenHigh, num)
		}
	}
	for num := range p.stale {
		if num < floor {
			delete(p.stale, num)
		}
	}
}

// trackedLocked reports whether block num has recorded any (block, counter)
// pair. Callers hold mu.
func (p *Protocol) trackedLocked(num uint64) bool {
	if st := p.peek(num); st != nil && st.seen != 0 {
		return true
	}
	return len(p.seenHigh[num]) > 0
}

// TrackedBlocks reports how many blocks have live epidemic state
// (test/diagnostic hook).
func (p *Protocol) TrackedBlocks() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.blocks {
		if p.blocks[i].seen != 0 {
			n++
		}
	}
	for num, st := range p.stale {
		if st.seen != 0 || len(p.seenHigh[num]) > 0 {
			n++
		}
	}
	// Dense slots whose only pairs are spilled counters still count.
	for num := range p.seenHigh {
		if num >= p.blockBase {
			if st := p.peek(num); st != nil && st.seen == 0 {
				n++
			}
		}
	}
	return n
}

func (p *Protocol) handleData(m *wire.Data) {
	p.c.AddBlock(m.Block)
	p.mu.Lock()
	first := p.markSeen(m.Block.Num, m.Counter)
	p.mu.Unlock()
	if first {
		p.spread(m.Block.Num, m.Counter)
	}
}

func (p *Protocol) handleDigest(from wire.NodeID, m *wire.PushDigest) {
	now := p.c.Scheduler().Now()
	var wantNums []uint64 // becomes the PushRequest payload: never reused
	var spreads []wire.BlockOffer
	p.mu.Lock()
	if p.reuse {
		spreads = p.digestSpreads[:0]
	}
	for _, o := range m.Offers {
		if p.markSeen(o.Num, o.Counter) {
			spreads = append(spreads, o)
		}
		if !p.c.HasBlock(o.Num) {
			st := p.state(o.Num)
			if st.requested == 0 || now-(st.requested-1) >= p.cfg.RequestTimeout {
				st.requested = now + 1
				wantNums = append(wantNums, o.Num)
			}
		}
	}
	if p.reuse {
		p.digestSpreads = spreads
	}
	p.mu.Unlock()
	if len(wantNums) > 0 {
		p.c.Send(from, &wire.PushRequest{Nums: wantNums})
	}
	// Forwarding a digest needs no body: the epidemic spreads at digest
	// speed while bodies follow on demand (the analysis counts digest
	// receptions).
	for _, o := range spreads {
		p.spread(o.Num, o.Counter)
	}
}

func (p *Protocol) handleRequest(from wire.NodeID, m *wire.PushRequest) {
	for _, num := range m.Nums {
		p.mu.Lock()
		counter := p.cfg.TTL // conservative: do not extend the epidemic
		if st := p.peek(num); st != nil && st.lastOffered != 0 {
			counter = st.lastOffered - 1
		}
		b := p.c.Block(num)
		if b == nil {
			// We offered a block whose body has not reached us yet:
			// remember the request and serve it on arrival.
			if p.serves == nil {
				p.serves = make(map[uint64][]pendingServe)
			}
			p.serves[num] = append(p.serves[num], pendingServe{to: from, counter: counter})
			p.mu.Unlock()
			continue
		}
		p.mu.Unlock()
		p.c.Send(from, p.newData(b, counter, 1))
	}
}

// markSeen records the pair and reports whether it was new. Callers hold mu.
func (p *Protocol) markSeen(num uint64, counter uint32) bool {
	if p.stopped {
		return false
	}
	st := p.state(num)
	if counter < 64 {
		bit := uint64(1) << counter
		if st.seen&bit != 0 {
			return false
		}
		st.seen |= bit
		return true
	}
	// Counters beyond the inline word (TTL >= 64 configurations only).
	word, bit := int(counter/64)-1, counter%64
	if p.seenHigh == nil {
		p.seenHigh = make(map[uint64][]uint64)
	}
	set := p.seenHigh[num]
	if word >= len(set) {
		grown := make([]uint64, word+1)
		copy(grown, set)
		set = grown
		p.seenHigh[num] = set
	}
	if set[word]&(1<<bit) != 0 {
		return false
	}
	set[word] |= 1 << bit
	return true
}

// spread forwards pair (num, received counter) to Fout random peers with
// the counter incremented, stopping at TTL. This is the
// infect-upon-contagion step: it runs on *every* first reception of a pair,
// not only the first reception of the block.
//
// In the tpush ablation (TPush > 0) pairs are buffered and flushed
// together to one shared random sample — reproducing the bias the paper
// removes.
func (p *Protocol) spread(num uint64, received uint32) {
	next := received + 1
	if next > p.cfg.TTL {
		return
	}
	if p.cfg.TPush > 0 {
		p.bufferSpread(wire.BlockOffer{Num: num, Counter: next})
		return
	}
	p.forward(wire.BlockOffer{Num: num, Counter: next}, p.sample(p.cfg.Fout))
}

// sample draws the fan-out targets, through the reusable buffer on the
// single-threaded runtime. The result is consumed (sent to) before any
// other sample call, so reuse is safe there; concurrent TCP handlers get a
// fresh slice.
func (p *Protocol) sample(k int) []wire.NodeID {
	if !p.reuse {
		return p.c.RandomPeers(k)
	}
	p.sampleBuf = p.c.RandomPeersInto(k, p.sampleBuf)
	return p.sampleBuf
}

func (p *Protocol) bufferSpread(o wire.BlockOffer) {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.pushBuf = append(p.pushBuf, o)
	if p.pushTimer == nil {
		p.pushTimer = p.c.Scheduler().After(p.cfg.TPush, p.flushSpread)
	}
	p.mu.Unlock()
}

func (p *Protocol) flushSpread() {
	p.mu.Lock()
	buf := p.pushBuf
	p.pushBuf = nil
	p.pushTimer = nil
	p.mu.Unlock()
	if len(buf) == 0 {
		return
	}
	// The bias: one sample for every buffered pair.
	targets := p.sample(p.cfg.Fout)
	for _, o := range buf {
		p.forward(o, targets)
	}
}

// forward ships one pair to the given targets, directly or as a digest.
func (p *Protocol) forward(o wire.BlockOffer, targets []wire.NodeID) {
	if len(targets) == 0 {
		return
	}
	num, next := o.Num, o.Counter
	if p.cfg.UseDigests && next > p.cfg.TTLDirect {
		p.mu.Lock()
		p.state(num).lastOffered = next + 1
		p.mu.Unlock()
		msg := p.newDigest(len(targets))
		msg.Offers = append(msg.Offers, wire.BlockOffer{Num: num, Counter: next})
		for _, t := range targets {
			p.c.Send(t, msg)
		}
		return
	}
	// Direct hop: the body is guaranteed present, because counters at or
	// below TTLdirect only ever travel with the body.
	b := p.c.Block(num)
	if b == nil {
		return
	}
	msg := p.newData(b, next, len(targets))
	for _, t := range targets {
		p.c.Send(t, msg)
	}
}

// SeenPairs returns how many (block, counter) pairs have been observed for
// block num (test/diagnostic hook).
func (p *Protocol) SeenPairs(num uint64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	if st := p.peek(num); st != nil {
		n += bits.OnesCount64(st.seen)
	}
	for _, w := range p.seenHigh[num] {
		n += bits.OnesCount64(w)
	}
	return n
}
