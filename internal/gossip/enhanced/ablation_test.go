package enhanced

import (
	"testing"
	"time"

	"fabricgossip/internal/wire"
)

// TestTPushBatchingSharesTargets reproduces the mechanism behind the
// paper's tpush ablation (§IV): with the batching timer re-enabled, pairs
// buffered in the same window are forwarded to the SAME random sample,
// reducing the number of independent samples — the bias that voids the
// theoretical pe guarantee. With tpush = 0, each pair gets a fresh sample.
func TestTPushBatchingSharesTargets(t *testing.T) {
	cfg, _ := ConfigFor(30, 3, 1e-6, 10) // TTLdirect high: all hops direct
	cfg.TPush = 10 * time.Millisecond
	w := build(t, 30, cfg, 21)
	// Two blocks hit the leader within one buffer window. The leader's
	// delegation is unbuffered (fleaderout), so drive pair receptions at
	// a regular peer directly.
	b0, b1 := block(0), block(1)
	w.engine.After(0, func() {
		w.protos[5].handleData(&wire.Data{Block: b0, Counter: 0})
		w.protos[5].handleData(&wire.Data{Block: b1, Counter: 0})
	})
	// Nothing leaves peer 5 before the buffer flushes.
	w.engine.RunUntil(9 * time.Millisecond)
	if got := w.traffic.CountOf(wire.TypeData); got != 0 {
		t.Fatalf("%d sends before the tpush flush", got)
	}
	w.engine.RunUntil(12 * time.Millisecond)
	// Both blocks flushed to the same fout targets: exactly 2*fout sends.
	if got := w.traffic.CountOf(wire.TypeData); got != uint64(2*cfg.Fout) {
		t.Fatalf("flush sent %d bodies, want %d", got, 2*cfg.Fout)
	}
}

func TestTPushZeroForwardsImmediately(t *testing.T) {
	cfg, _ := ConfigFor(30, 3, 1e-6, 10)
	cfg.TPush = 0
	w := build(t, 30, cfg, 22)
	w.engine.After(0, func() {
		w.protos[5].handleData(&wire.Data{Block: block(0), Counter: 0})
	})
	w.engine.RunUntil(time.Millisecond)
	if got := w.traffic.CountOf(wire.TypeData); got != uint64(cfg.Fout) {
		t.Fatalf("immediate mode sent %d bodies, want %d", got, cfg.Fout)
	}
}

func TestTPushAblationStillDisseminates(t *testing.T) {
	cfg, _ := ConfigFor(40, 4, 1e-6, 2)
	cfg.TPush = 10 * time.Millisecond
	w := build(t, 40, cfg, 23)
	_ = w.orderer.Send(0, &wire.DeliverBlock{Block: block(0)})
	w.engine.RunUntil(10 * time.Second)
	for i, c := range w.cores {
		if !c.HasBlock(0) {
			t.Fatalf("peer %d missed the block under tpush batching", i)
		}
	}
}

// TestStatePruningBoundsMemory drives many blocks through a small network
// with a tiny retention and checks old epidemic state is discarded.
func TestStatePruningBoundsMemory(t *testing.T) {
	cfg, _ := ConfigFor(10, 3, 1e-3, 2)
	cfg.Retention = 8
	w := build(t, 10, cfg, 25)
	const blocks = 40
	for i := uint64(0); i < blocks; i++ {
		b := block(i)
		w.engine.After(0, func() { _ = w.orderer.Send(0, &wire.DeliverBlock{Block: b}) })
		w.engine.RunFor(300 * time.Millisecond)
	}
	w.engine.RunFor(3 * time.Second)
	for i, c := range w.cores {
		if got := c.Height(); got != blocks {
			t.Fatalf("peer %d height = %d, want %d", i, got, blocks)
		}
	}
	for i, p := range w.protos {
		if got := p.TrackedBlocks(); got > int(cfg.Retention)+2 {
			t.Fatalf("peer %d tracks %d blocks, want <= retention %d (+slack)",
				i, got, cfg.Retention)
		}
	}
}

// TestWithholdingAdversaries exercises the paper's §VII future-work
// scenario: adversarial peers that accept blocks but never forward them
// (modelled as Fout = 0). The epidemic's TTL margin must still inform every
// honest peer during the push phase.
func TestWithholdingAdversaries(t *testing.T) {
	const n = 50
	honest, _ := ConfigFor(n, 4, 1e-6, 2)
	adversary := honest
	adversary.Fout = 0 // receives, requests, never forwards

	w := build(t, n, honest, 24)
	// Convert every 10th peer into a withholder (10%), sparing the
	// leader so delivery still enters the network.
	for i := 10; i < n; i += 10 {
		w.protos[i].cfg = adversary
	}
	for blkNum := uint64(0); blkNum < 5; blkNum++ {
		b := block(blkNum)
		w.engine.After(0, func() { _ = w.orderer.Send(0, &wire.DeliverBlock{Block: b}) })
		w.engine.RunFor(2 * time.Second)
	}
	missed := 0
	for i, c := range w.cores {
		for blkNum := uint64(0); blkNum < 5; blkNum++ {
			if !c.HasBlock(blkNum) {
				t.Logf("peer %d missing block %d", i, blkNum)
				missed++
			}
		}
	}
	// 10% withholders consume fan-out without re-forwarding; the pe
	// margin absorbs it (the paper argues epidemic dissemination is
	// "obviously better than deterministic protocols in this setting").
	if missed > 0 {
		t.Fatalf("%d (peer, block) deliveries missing with 10%% withholding adversaries", missed)
	}
}
