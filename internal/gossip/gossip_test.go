package gossip_test

import (
	"testing"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// org is a simulated organization of peers running one gossip variant.
type org struct {
	engine  *sim.Engine
	net     *transport.SimNetwork
	traffic *netmodel.Traffic
	cores   []*gossip.Core
	// orderer is an extra endpoint playing the ordering service: it sends
	// DeliverBlock to the leader peer (peer 0) over the same network.
	orderer *transport.SimEndpoint
	// received[i][num] is the virtual time peer i first stored block num.
	received []map[uint64]time.Duration
	// committed[i] is the in-order commit sequence of peer i.
	committed [][]uint64
}

type protoFactory func(n int) gossip.Protocol

func originalFactory(cfg original.Config) protoFactory {
	return func(int) gossip.Protocol { return original.New(cfg) }
}

func enhancedFactory(cfg enhanced.Config) protoFactory {
	return func(int) gossip.Protocol { return enhanced.New(cfg) }
}

// buildOrg wires n peers over a fast deterministic network.
func buildOrg(t *testing.T, seed int64, n int, factory protoFactory, tune func(*gossip.Config)) *org {
	t.Helper()
	e := sim.NewEngine(seed)
	tr := netmodel.NewTraffic(time.Second)
	model := netmodel.Model{
		BandwidthBytesPerSec: 125e6,
		PropMin:              200 * time.Microsecond,
		PropMax:              600 * time.Microsecond,
		ProcMedian:           time.Millisecond,
		ProcSigma:            0.5,
		ProcMax:              20 * time.Millisecond,
	}
	net := transport.NewSimNetwork(e, model, tr)
	o := &org{engine: e, net: net, traffic: tr}
	peers := make([]wire.NodeID, n)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	for i := 0; i < n; i++ {
		ep := net.AddNode()
		cfg := gossip.DefaultConfig(ep.ID(), peers)
		if tune != nil {
			tune(&cfg)
		}
		core := gossip.New(cfg, ep, e, e.Rand("gossip"), factory(n))
		idx := i
		rec := make(map[uint64]time.Duration)
		o.received = append(o.received, rec)
		o.committed = append(o.committed, nil)
		core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
			rec[b.Num] = at
		})
		core.OnCommit(func(b *ledger.Block) {
			o.committed[idx] = append(o.committed[idx], b.Num)
		})
		o.cores = append(o.cores, core)
	}
	o.orderer = net.AddNode()
	for _, c := range o.cores {
		c.Start()
	}
	return o
}

// coresHandleDeliver hands a block to the leader peer the way the ordering
// service does: a DeliverBlock message over the network.
func (o *org) coresHandleDeliver(b *ledger.Block) {
	_ = o.orderer.Send(0, &wire.DeliverBlock{Block: b})
}

func testChain(n int) []*ledger.Block {
	blocks := make([]*ledger.Block, n)
	var prev *ledger.Block
	for i := range blocks {
		rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(i)}}}}
		tx := &ledger.Transaction{
			ID:        ledger.ProposalDigest("c", "cc", rw, []byte{byte(i)}),
			Client:    "c",
			Chaincode: "cc",
			RWSet:     rw,
			Payload:   make([]byte, 2048),
		}
		b := &ledger.Block{Num: uint64(i), Txs: []*ledger.Transaction{tx}}
		b.DataHash = ledger.ComputeDataHash(b.Txs)
		if prev != nil {
			b.PrevHash = prev.Hash()
		}
		blocks[i] = b
		prev = b
	}
	return blocks
}

func TestOriginalDisseminatesToAllPeersViaPull(t *testing.T) {
	const n = 40
	o := buildOrg(t, 1, n, originalFactory(original.DefaultConfig()), nil)
	blocks := testChain(3)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*1500*time.Millisecond, func() {
			o.coresHandleDeliver(b)
		})
	}
	// Push phase (~tens of ms) + up to two pull rounds (4 s each).
	o.engine.RunUntil(20 * time.Second)
	for i := 0; i < n; i++ {
		for _, b := range blocks {
			if _, ok := o.received[i][b.Num]; !ok {
				t.Fatalf("peer %d never received block %d", i, b.Num)
			}
		}
		if len(o.committed[i]) != len(blocks) {
			t.Fatalf("peer %d committed %d blocks, want %d", i, len(o.committed[i]), len(blocks))
		}
	}
}

func TestEnhancedDisseminatesToAllPeersWithinPushPhase(t *testing.T) {
	const n = 100
	cfg, err := enhanced.ConfigFor(n, 4, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TTL != 9 {
		t.Fatalf("TTL = %d, want 9", cfg.TTL)
	}
	o := buildOrg(t, 2, n, enhancedFactory(cfg), nil)
	blocks := testChain(5)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*1500*time.Millisecond, func() {
			o.coresHandleDeliver(b)
		})
	}
	// No pull: everything must arrive via the push phase, well before the
	// first recovery tick (10 s after the last block would be 17.5 s; run
	// only 2 s past the last injection to prove push did the work).
	o.engine.RunUntil(time.Duration(len(blocks)-1)*1500*time.Millisecond + 2*time.Second)
	for i := 0; i < n; i++ {
		for _, b := range blocks {
			if _, ok := o.received[i][b.Num]; !ok {
				t.Fatalf("peer %d never received block %d during push phase", i, b.Num)
			}
		}
	}
	// Latency check: every peer gets each block well under a second
	// (paper: < 0.5 s at fout=4/TTL=9).
	for i := 0; i < n; i++ {
		for _, b := range blocks {
			lat := o.received[i][b.Num] - o.received[0][b.Num]
			if lat > time.Second {
				t.Fatalf("peer %d block %d latency %v too high for enhanced push", i, b.Num, lat)
			}
		}
	}
}

func TestEnhancedBodyTransmissionsNearN(t *testing.T) {
	const n = 60
	cfg, err := enhanced.ConfigFor(n, 4, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := buildOrg(t, 3, n, enhancedFactory(cfg), func(g *gossip.Config) {
		g.AliveInterval = 0 // isolate push traffic
		g.StateInfoInterval = 0
		g.RecoveryInterval = 0
	})
	b := testChain(1)[0]
	o.coresHandleDeliver(b)
	o.engine.RunUntil(5 * time.Second)
	for i := 0; i < n; i++ {
		if _, ok := o.received[i][0]; !ok {
			t.Fatalf("peer %d missed the block", i)
		}
	}
	// "With a digest, we ensure that large blocks are only transmitted
	// n + o(n) times" (§IV). Direct hops (TTLdirect=2) add the o(n) term:
	// 1 (leader) + fout + fout^2 ≈ 21 extra, plus a handful of races.
	bodies := o.traffic.CountOf(wire.TypeData)
	if bodies < uint64(n-1) {
		t.Fatalf("only %d body transmissions for %d peers", bodies, n)
	}
	if bodies > uint64(n+40) {
		t.Fatalf("body transmissions %d exceed n + o(n) for n = %d", bodies, n)
	}
}

func TestOriginalInfectAndDieTransmitsFoutPerInfection(t *testing.T) {
	const n = 50
	cfg := original.DefaultConfig()
	cfg.TPull = 0 // isolate the push phase: no pull deliveries
	o := buildOrg(t, 4, n, originalFactory(cfg), func(g *gossip.Config) {
		g.AliveInterval = 0
		g.StateInfoInterval = 0
		g.RecoveryInterval = 0
	})
	b := testChain(1)[0]
	o.coresHandleDeliver(b)
	o.engine.RunUntil(3 * time.Second) // push only; pull is 4 s period
	infected := 0
	for i := 0; i < n; i++ {
		if _, ok := o.received[i][0]; ok {
			infected++
		}
	}
	bodies := int(o.traffic.CountOf(wire.TypeData))
	if want := infected * cfg.Fout; bodies != want {
		t.Fatalf("infect-and-die sent %d bodies for %d infected peers, want exactly %d",
			bodies, infected, want)
	}
	// With fout=3 the push phase reaches ~94%, not everyone.
	if infected == n {
		t.Logf("note: push phase reached all %d peers this run (possible, just unlikely)", n)
	}
	if infected < n*3/4 {
		t.Fatalf("push phase reached only %d of %d peers", infected, n)
	}
}

func TestRecoveryCatchesUpAfterNodeOutage(t *testing.T) {
	const n = 20
	cfg, err := enhanced.ConfigFor(n, 3, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := buildOrg(t, 5, n, enhancedFactory(cfg), func(g *gossip.Config) {
		g.RecoveryInterval = 2 * time.Second
		g.StateInfoInterval = time.Second
	})
	// Knock peer 7 out, disseminate 4 blocks, revive it.
	o.net.SetNodeDown(7, true)
	blocks := testChain(4)
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i)*500*time.Millisecond, func() { o.coresHandleDeliver(b) })
	}
	o.engine.RunUntil(3 * time.Second)
	if len(o.received[7]) != 0 {
		t.Fatal("down peer received blocks")
	}
	o.net.SetNodeDown(7, false)
	// State info spreads, recovery kicks in within a few periods.
	o.engine.RunUntil(20 * time.Second)
	for _, b := range blocks {
		if _, ok := o.received[7][b.Num]; !ok {
			t.Fatalf("recovered peer still missing block %d", b.Num)
		}
	}
	if got := len(o.committed[7]); got != len(blocks) {
		t.Fatalf("recovered peer committed %d blocks, want %d", got, len(blocks))
	}
}

func TestCommitOrderIsSequentialEverywhere(t *testing.T) {
	const n = 30
	cfg, err := enhanced.ConfigFor(n, 4, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := buildOrg(t, 6, n, enhancedFactory(cfg), nil)
	blocks := testChain(10)
	// Inject in bursts to create out-of-order arrivals.
	for i, b := range blocks {
		b := b
		o.engine.At(time.Duration(i%3)*time.Millisecond, func() { o.coresHandleDeliver(b) })
	}
	o.engine.RunUntil(10 * time.Second)
	for i := 0; i < n; i++ {
		if len(o.committed[i]) != len(blocks) {
			t.Fatalf("peer %d committed %d, want %d", i, len(o.committed[i]), len(blocks))
		}
		for j, num := range o.committed[i] {
			if num != uint64(j) {
				t.Fatalf("peer %d commit order %v", i, o.committed[i])
			}
		}
	}
}

func TestGossipDeterminism(t *testing.T) {
	run := func() (time.Duration, uint64) {
		cfg, _ := enhanced.ConfigFor(30, 4, 1e-6, 2)
		o := buildOrg(t, 99, 30, enhancedFactory(cfg), nil)
		b := testChain(1)[0]
		o.coresHandleDeliver(b)
		o.engine.RunUntil(5 * time.Second)
		var last time.Duration
		for i := 0; i < 30; i++ {
			if at := o.received[i][0]; at > last {
				last = at
			}
		}
		return last, o.traffic.TotalBytes()
	}
	l1, b1 := run()
	l2, b2 := run()
	if l1 != l2 || b1 != b2 {
		t.Fatalf("non-deterministic runs: (%v, %d) vs (%v, %d)", l1, b1, l2, b2)
	}
}

func TestStateInfoPropagatesHeights(t *testing.T) {
	const n = 10
	cfg, _ := enhanced.ConfigFor(n, 3, 1e-6, 2)
	o := buildOrg(t, 8, n, enhancedFactory(cfg), func(g *gossip.Config) {
		g.StateInfoInterval = time.Second
		g.StateInfoFanout = n - 1 // broadcast for the test
	})
	blocks := testChain(2)
	for _, b := range blocks {
		o.coresHandleDeliver(b)
	}
	o.engine.RunUntil(3 * time.Second)
	hs := o.cores[3].PeerHeights()
	found := false
	for _, h := range hs {
		if h == uint64(len(blocks)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("peer 3 never learned the advanced height: %v", hs)
	}
}
