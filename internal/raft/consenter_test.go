package raft

import (
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/order"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// TestOrderingServiceOverRaft integrates the Raft consenter with the block
// cutter: three ordering nodes, transactions submitted at any of them, and
// every node cutting the identical chain of blocks.
func TestOrderingServiceOverRaft(t *testing.T) {
	engine := sim.NewEngine(11)
	model := netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}
	net := transport.NewSimNetwork(engine, model, nil)

	const clusterSize = 3
	ids := make([]wire.NodeID, clusterSize)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	var services []*order.Service
	var cut [][]*ledger.Block
	var consenters []*Consenter
	cut = make([][]*ledger.Block, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep := net.AddNode()
		node := New(DefaultConfig(ep.ID(), ids), ep, engine, engine.Rand("raft"))
		cons := NewConsenter(node, engine)
		idx := i
		svc := order.NewService(
			order.Config{MaxTxPerBlock: 3, BatchTimeout: 500 * time.Millisecond},
			engine, cons, nil,
			func(b *ledger.Block) { cut[idx] = append(cut[idx], b) },
		)
		services = append(services, svc)
		consenters = append(consenters, cons)
		node.Start()
	}

	mkTx := func(i int) *ledger.Transaction {
		rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(i)}}}}
		return &ledger.Transaction{
			ID:     ledger.ProposalDigest("c", "cc", rw, []byte{byte(i)}),
			Client: "c", Chaincode: "cc", RWSet: rw, Payload: []byte{byte(i)},
		}
	}

	// Submit 8 transactions round-robin across the three nodes, starting
	// before any leader exists (the consenter retries).
	for i := 0; i < 8; i++ {
		i := i
		svc := services[i%clusterSize]
		engine.At(time.Duration(i)*50*time.Millisecond, func() {
			_ = svc.Broadcast(mkTx(i))
		})
	}
	engine.RunUntil(20 * time.Second)

	// All three ordering nodes must have cut identical chains covering
	// all 8 transactions (2 full blocks of 3, 1 timeout block of 2).
	for i := 1; i < clusterSize; i++ {
		if len(cut[i]) != len(cut[0]) {
			t.Fatalf("node %d cut %d blocks, node 0 cut %d", i, len(cut[i]), len(cut[0]))
		}
	}
	if len(cut[0]) == 0 {
		t.Fatal("no blocks cut")
	}
	total := 0
	var prev *ledger.Block
	for bi, b := range cut[0] {
		if err := b.VerifyLinkage(prev); err != nil {
			t.Fatalf("linkage at block %d: %v", bi, err)
		}
		prev = b
		total += len(b.Txs)
		for i := 1; i < clusterSize; i++ {
			if cut[i][bi].Hash() != b.Hash() {
				t.Fatalf("node %d block %d differs", i, bi)
			}
		}
	}
	if total != 8 {
		t.Fatalf("ordered %d txs, want 8", total)
	}
	// Consenter accessor sanity.
	if consenters[0].Node() == nil {
		t.Fatal("consenter lost its node")
	}
}

// TestRaftConsenterSurvivesLeaderCrash checks that ordering continues after
// the Raft leader fails: a new leader is elected and later submissions cut
// blocks on the surviving nodes.
func TestRaftConsenterSurvivesLeaderCrash(t *testing.T) {
	engine := sim.NewEngine(13)
	model := netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}
	net := transport.NewSimNetwork(engine, model, nil)

	const clusterSize = 3
	ids := make([]wire.NodeID, clusterSize)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	nodes := make([]*Node, clusterSize)
	services := make([]*order.Service, clusterSize)
	cut := make([][]*ledger.Block, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep := net.AddNode()
		nodes[i] = New(DefaultConfig(ep.ID(), ids), ep, engine, engine.Rand("raft"))
		idx := i
		services[i] = order.NewService(
			order.Config{MaxTxPerBlock: 1, BatchTimeout: time.Second},
			engine, NewConsenter(nodes[i], engine), nil,
			func(b *ledger.Block) { cut[idx] = append(cut[idx], b) },
		)
		nodes[i].Start()
	}
	engine.RunUntil(2 * time.Second)

	var leaderIdx int
	for i, n := range nodes {
		if st, _, _, _ := n.Status(); st == Leader {
			leaderIdx = i
		}
	}
	survivor := (leaderIdx + 1) % clusterSize

	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{1}}}}
	tx := &ledger.Transaction{ID: ledger.ProposalDigest("c", "cc", rw, nil), Client: "c", Chaincode: "cc", RWSet: rw}

	net.SetNodeDown(wire.NodeID(leaderIdx), true)
	engine.After(0, func() { _ = services[survivor].Broadcast(tx) })
	engine.RunUntil(engine.Now() + 10*time.Second)

	if len(cut[survivor]) != 1 || len(cut[survivor][0].Txs) != 1 {
		t.Fatalf("survivor cut %d blocks after failover", len(cut[survivor]))
	}
}
