package raft

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

type cluster struct {
	engine  *sim.Engine
	net     *transport.SimNetwork
	nodes   []*Node
	applied [][]string
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{engine: sim.NewEngine(seed)}
	model := netmodel.Model{PropMin: time.Millisecond, PropMax: 3 * time.Millisecond}
	c.net = transport.NewSimNetwork(c.engine, model, nil)
	ids := make([]wire.NodeID, n)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	c.applied = make([][]string, n)
	for i := 0; i < n; i++ {
		ep := c.net.AddNode()
		node := New(DefaultConfig(ep.ID(), ids), ep, c.engine, c.engine.Rand("raft"))
		idx := i
		node.OnApply(func(data []byte) {
			c.applied[idx] = append(c.applied[idx], string(data))
		})
		c.nodes = append(c.nodes, node)
	}
	for _, nd := range c.nodes {
		nd.Start()
	}
	return c
}

func (c *cluster) leader() *Node {
	for _, n := range c.nodes {
		if st, _, _, _ := n.Status(); st == Leader {
			return n
		}
	}
	return nil
}

func (c *cluster) leaders() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if st, _, _, _ := n.Status(); st == Leader {
			out = append(out, n)
		}
	}
	return out
}

func TestElectsExactlyOneLeader(t *testing.T) {
	c := newCluster(t, 5, 1)
	c.engine.RunUntil(2 * time.Second)
	leaders := c.leaders()
	if len(leaders) != 1 {
		t.Fatalf("got %d leaders, want 1", len(leaders))
	}
	// Every node knows the same leader.
	_, _, want, _ := leaders[0].Status()
	for i, n := range c.nodes {
		_, _, got, known := n.Status()
		if !known || got != want {
			t.Fatalf("node %d leader view = %v (known=%v), want %v", i, got, known, want)
		}
	}
}

func TestSingleNodeClusterLeadsAndCommits(t *testing.T) {
	c := newCluster(t, 1, 2)
	c.engine.RunUntil(time.Second)
	l := c.leader()
	if l == nil {
		t.Fatal("single node did not become leader")
	}
	for i := 0; i < 5; i++ {
		if err := l.Propose([]byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.engine.RunUntil(2 * time.Second)
	if got := c.applied[0]; len(got) != 5 {
		t.Fatalf("applied %d entries, want 5", len(got))
	}
}

func TestReplicatesInOrderToAllNodes(t *testing.T) {
	c := newCluster(t, 3, 3)
	c.engine.RunUntil(time.Second)
	l := c.leader()
	if l == nil {
		t.Fatal("no leader")
	}
	want := []string{"tx1", "tx2", "tx3", "tx4", "tx5"}
	for _, w := range want {
		w := w
		c.engine.After(0, func() { _ = l.Propose([]byte(w)) })
		c.engine.RunFor(20 * time.Millisecond)
	}
	c.engine.RunUntil(c.engine.Now() + 2*time.Second)
	for i, got := range c.applied {
		if len(got) != len(want) {
			t.Fatalf("node %d applied %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d order %v, want %v", i, got, want)
			}
		}
	}
}

func TestForwardingFromFollower(t *testing.T) {
	c := newCluster(t, 3, 4)
	c.engine.RunUntil(time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if st, _, _, _ := n.Status(); st == Follower {
			follower = n
			break
		}
	}
	if follower == nil {
		t.Fatal("no follower")
	}
	c.engine.After(0, func() {
		if err := follower.Propose([]byte("via-follower")); err != nil {
			t.Errorf("follower propose: %v", err)
		}
	})
	c.engine.RunUntil(c.engine.Now() + 2*time.Second)
	for i, got := range c.applied {
		if len(got) != 1 || got[0] != "via-follower" {
			t.Fatalf("node %d applied %v", i, got)
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newCluster(t, 5, 5)
	c.engine.RunUntil(2 * time.Second)
	old := c.leader()
	if old == nil {
		t.Fatal("no initial leader")
	}
	c.engine.After(0, func() { _ = old.Propose([]byte("before-crash")) })
	c.engine.RunUntil(c.engine.Now() + time.Second)

	// Crash the leader.
	c.net.SetNodeDown(old.cfg.ID, true)
	c.engine.RunUntil(c.engine.Now() + 3*time.Second)
	var newLeader *Node
	for _, n := range c.nodes {
		if n == old {
			continue
		}
		if st, _, _, _ := n.Status(); st == Leader {
			newLeader = n
		}
	}
	if newLeader == nil {
		t.Fatal("no new leader elected after crash")
	}
	c.engine.After(0, func() { _ = newLeader.Propose([]byte("after-crash")) })
	c.engine.RunUntil(c.engine.Now() + 2*time.Second)

	for i, n := range c.nodes {
		if n == old {
			continue
		}
		got := c.applied[i]
		if len(got) != 2 || got[0] != "before-crash" || got[1] != "after-crash" {
			t.Fatalf("node %d applied %v", i, got)
		}
	}
}

func TestCrashedFollowerCatchesUpOnRevival(t *testing.T) {
	c := newCluster(t, 3, 6)
	c.engine.RunUntil(time.Second)
	l := c.leader()
	if l == nil {
		t.Fatal("no leader")
	}
	// Identify a follower and crash it.
	var down *Node
	var downIdx int
	for i, n := range c.nodes {
		if n != l {
			down = n
			downIdx = i
			break
		}
	}
	c.net.SetNodeDown(down.cfg.ID, true)
	for i := 0; i < 5; i++ {
		i := i
		c.engine.After(0, func() { _ = l.Propose([]byte{byte('a' + i)}) })
		c.engine.RunFor(20 * time.Millisecond)
	}
	c.engine.RunUntil(c.engine.Now() + time.Second)
	if len(c.applied[downIdx]) != 0 {
		t.Fatal("down node applied entries")
	}
	// Revive: leader repair brings it up to date. The revived node may
	// first trigger an election (its timer fired while isolated), which
	// the protocol absorbs.
	c.net.SetNodeDown(down.cfg.ID, false)
	c.engine.RunUntil(c.engine.Now() + 5*time.Second)
	if got := c.applied[downIdx]; len(got) != 5 {
		t.Fatalf("revived node applied %v, want 5 entries", got)
	}
	for i, v := range c.applied[downIdx] {
		if v != string(byte('a'+i)) {
			t.Fatalf("revived node order wrong: %v", c.applied[downIdx])
		}
	}
}

func TestNoEntryAppliedTwice(t *testing.T) {
	c := newCluster(t, 3, 7)
	c.engine.RunUntil(time.Second)
	l := c.leader()
	if l == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 20; i++ {
		i := i
		c.engine.After(0, func() { _ = l.Propose([]byte{byte(i)}) })
		c.engine.RunFor(5 * time.Millisecond)
	}
	c.engine.RunUntil(c.engine.Now() + 3*time.Second)
	for idx, got := range c.applied {
		seen := map[string]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("node %d applied %q twice", idx, v)
			}
			seen[v] = true
		}
		if len(got) != 20 {
			t.Fatalf("node %d applied %d entries, want 20", idx, len(got))
		}
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() (wire.NodeID, uint64) {
		c := newCluster(t, 5, 42)
		c.engine.RunUntil(2 * time.Second)
		l := c.leader()
		if l == nil {
			t.Fatal("no leader")
		}
		_, term, _, _ := l.Status()
		return l.cfg.ID, term
	}
	id1, t1 := run()
	id2, t2 := run()
	if id1 != id2 || t1 != t2 {
		t.Fatalf("elections diverge: (%v, %d) vs (%v, %d)", id1, t1, id2, t2)
	}
}

func TestStateString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state name empty")
	}
}
