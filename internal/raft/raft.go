// Package raft implements the crash-fault-tolerant replicated log backing
// the ordering service: leader election, log replication and commit, per
// the Raft protocol (Ongaro & Ousterhout). It substitutes for the paper's
// Kafka/ZooKeeper CFT ordering cluster (see DESIGN.md) — Fabric itself made
// the same substitution in v1.4.1.
//
// The implementation covers the consensus core used by the ordering
// service: elections with randomized timeouts, AppendEntries consistency
// repair, majority commit, and exactly-once in-order application. Log
// compaction and membership changes are out of scope (the ordering cluster
// is static, as in the paper's deployment).
package raft

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// State is a Raft role.
type State uint8

// Raft roles.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String returns the role name.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes a Raft node.
type Config struct {
	// ID is this node; Peers lists the whole cluster including ID.
	ID    wire.NodeID
	Peers []wire.NodeID
	// ElectionTimeoutMin/Max bound the randomized election timeout.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle AppendEntries period. It
	// must be well below the election timeout.
	HeartbeatInterval time.Duration
	// MaxEntriesPerAppend bounds the entries shipped per AppendEntries.
	MaxEntriesPerAppend int
}

// DefaultConfig returns LAN-appropriate timing for the given cluster.
func DefaultConfig(id wire.NodeID, peers []wire.NodeID) Config {
	return Config{
		ID:                  id,
		Peers:               peers,
		ElectionTimeoutMin:  150 * time.Millisecond,
		ElectionTimeoutMax:  300 * time.Millisecond,
		HeartbeatInterval:   50 * time.Millisecond,
		MaxEntriesPerAppend: 64,
	}
}

// ErrNotLeader is returned by Propose on a non-leader that knows no leader
// to forward to.
var ErrNotLeader = errors.New("raft: not the leader")

// Node is one Raft participant.
type Node struct {
	cfg   Config
	ep    transport.Endpoint
	sched sim.Scheduler
	rng   *sim.Rand

	mu       sync.Mutex
	state    State
	term     uint64
	votedFor wire.NodeID
	voted    bool
	leader   wire.NodeID
	hasLead  bool
	// log is 0-indexed internally; Raft indices are 1-based (index 0 is
	// the empty prefix with term 0).
	log         []wire.RaftEntry
	commitIndex uint64
	lastApplied uint64
	votes       map[wire.NodeID]bool
	nextIndex   map[wire.NodeID]uint64
	matchIndex  map[wire.NodeID]uint64
	// inflight marks followers with an unanswered AppendEntries. Proposal
	// and response-driven sends skip those followers, so replication keeps
	// at most one append in flight per follower (each response triggers at
	// most one resend to its sender); without the bound a saturated
	// cluster's append/response traffic feeds on itself and the message
	// population grows without limit. The heartbeat path overrides the
	// bound, so a lost append or response wedges a follower for at most
	// one heartbeat interval.
	inflight map[wire.NodeID]bool

	electionTimer  sim.Timer
	heartbeatTimer sim.Timer
	stopped        bool

	applyFn func(data []byte)
	// onStateChange is a test/diagnostic hook.
	onStateChange func(State, uint64)
	// onAppend observes log growth: it runs after entries land in the
	// log (leader accept or follower replication), outside the node's
	// lock, with the last appended index and the node's current term.
	onAppend func(index, term uint64)
	// onLeaderChange observes this node's leader view; notifications are
	// delivered asynchronously (After(0)) so the hook may call back into
	// the node (e.g. to flush buffered proposals to a new leader).
	onLeaderChange func(leader wire.NodeID, known bool)
	notifiedLeader wire.NodeID
	notifiedKnown  bool
}

// New creates a node and installs its message handler on the endpoint. The
// node is passive until Start.
func New(cfg Config, ep transport.Endpoint, sched sim.Scheduler, rng *sim.Rand) *Node {
	n := &Node{
		cfg:        cfg,
		ep:         ep,
		sched:      sched,
		rng:        rng,
		state:      Follower,
		votes:      make(map[wire.NodeID]bool),
		nextIndex:  make(map[wire.NodeID]uint64),
		matchIndex: make(map[wire.NodeID]uint64),
		inflight:   make(map[wire.NodeID]bool),
	}
	ep.SetHandler(n.handle)
	return n
}

// OnApply installs the committed-entry callback: entries are delivered in
// log order, exactly once per node. Must be set before Start.
func (n *Node) OnApply(fn func(data []byte)) { n.applyFn = fn }

// OnStateChange installs a hook observing role transitions.
func (n *Node) OnStateChange(fn func(State, uint64)) { n.onStateChange = fn }

// OnAppend installs a hook observing log appends (leader accepts and
// follower replication). The hook must not call back into the node.
func (n *Node) OnAppend(fn func(index, term uint64)) { n.onAppend = fn }

// OnLeaderChange installs a hook observing this node's view of the current
// leader: (leader, true) when one is known, (0, false) in leaderless
// windows. Notifications are asynchronous, so the hook may Propose.
func (n *Node) OnLeaderChange(fn func(leader wire.NodeID, known bool)) { n.onLeaderChange = fn }

// Start arms the election timeout. Calling it on a stopped node restarts
// it: Raft roles are volatile, so a restarted node — even an ex-leader —
// rejoins as a follower, keeping its (modelled-durable) term, vote and log.
// The cluster's leader then repairs it by replaying the missed log suffix
// through ordinary AppendEntries.
func (n *Node) Start() {
	n.mu.Lock()
	n.stopped = false
	demoted := n.state != Follower
	if demoted {
		n.state = Follower
	}
	n.hasLead = false
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
		n.heartbeatTimer = nil
	}
	n.resetElectionTimerLocked()
	n.noteLeaderLocked()
	term := n.term
	n.mu.Unlock()
	if demoted && n.onStateChange != nil {
		n.onStateChange(Follower, term)
	}
}

// Stop halts all timers and silences the node until the next Start: a
// stopped node neither sends nor reacts to messages (the harness pairs it
// with silencing the endpoint). In-memory term, vote and log survive —
// modelling a crashed orderer whose WAL is durable. Wiping them instead
// would let a restarted node double-vote in a term and break election
// safety.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
	}
}

// Status reports the node's current role, term and leader view.
func (n *Node) Status() (state State, term uint64, leader wire.NodeID, known bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state, n.term, n.leader, n.hasLead
}

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// Propose appends data to the replicated log. On the leader it is accepted
// locally; on a follower it is forwarded to the known leader. It returns
// ErrNotLeader when no leader is known yet — callers retry.
func (n *Node) Propose(data []byte) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return errors.New("raft: node stopped")
	}
	if n.state == Leader {
		n.log = append(n.log, wire.RaftEntry{Term: n.term, Data: data})
		n.matchIndex[n.cfg.ID] = n.lastIndexLocked()
		appended, term := n.lastIndexLocked(), n.term
		// A single-node cluster commits immediately.
		n.advanceCommitLocked()
		apply := n.collectApplyLocked()
		n.mu.Unlock()
		if n.onAppend != nil {
			n.onAppend(appended, term)
		}
		n.runApplies(apply)
		n.broadcastAppends(false)
		return nil
	}
	leader, known := n.leader, n.hasLead
	n.mu.Unlock()
	if !known {
		return ErrNotLeader
	}
	n.send(leader, &wire.RaftForward{Data: data})
	return nil
}

// --- helpers (index math; callers hold mu) ---

func (n *Node) lastIndexLocked() uint64 { return uint64(len(n.log)) }

func (n *Node) termAtLocked(index uint64) uint64 {
	if index == 0 {
		return 0
	}
	if index > uint64(len(n.log)) {
		return 0
	}
	return n.log[index-1].Term
}

func (n *Node) majority() int { return len(n.cfg.Peers)/2 + 1 }

func (n *Node) send(to wire.NodeID, msg wire.Message) {
	if to == n.cfg.ID {
		return
	}
	_ = n.ep.Send(to, msg)
}

// --- role transitions (callers hold mu) ---

// noteLeaderLocked schedules an OnLeaderChange notification if the
// (leader, known) view moved since the last one. Asynchronous delivery
// keeps the hook free to call back into the node.
func (n *Node) noteLeaderLocked() {
	if n.onLeaderChange == nil {
		return
	}
	if n.hasLead == n.notifiedKnown && (!n.hasLead || n.leader == n.notifiedLeader) {
		return
	}
	n.notifiedKnown, n.notifiedLeader = n.hasLead, n.leader
	leader, known := n.leader, n.hasLead
	n.sched.After(0, func() { n.onLeaderChange(leader, known) })
}

func (n *Node) becomeFollowerLocked(term uint64) {
	prev := n.state
	n.state = Follower
	if term > n.term {
		n.term = term
		n.voted = false
		// The old leader pointer belongs to a stale term: forwarding
		// proposals to it would silently drop them mid-election.
		n.hasLead = false
		n.noteLeaderLocked()
	}
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
		n.heartbeatTimer = nil
	}
	n.resetElectionTimerLocked()
	if prev != Follower && n.onStateChange != nil {
		n.onStateChange(Follower, n.term)
	}
}

func (n *Node) resetElectionTimerLocked() {
	if n.stopped {
		return
	}
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	spread := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin
	if spread > 0 {
		d += time.Duration(n.rng.Int63n(int64(spread)))
	}
	n.electionTimer = n.sched.After(d, n.electionTimeout)
}

func (n *Node) electionTimeout() {
	n.mu.Lock()
	if n.stopped || n.state == Leader {
		n.mu.Unlock()
		return
	}
	// Become candidate.
	n.state = Candidate
	n.term++
	n.voted = true
	n.votedFor = n.cfg.ID
	n.hasLead = false
	n.noteLeaderLocked()
	n.votes = map[wire.NodeID]bool{n.cfg.ID: true}
	term := n.term
	lastIdx := n.lastIndexLocked()
	lastTerm := n.termAtLocked(lastIdx)
	n.resetElectionTimerLocked()
	if n.onStateChange != nil {
		n.onStateChange(Candidate, term)
	}
	peers := n.cfg.Peers
	n.mu.Unlock()

	req := &wire.RaftVoteRequest{
		Term:         term,
		Candidate:    n.cfg.ID,
		LastLogIndex: lastIdx,
		LastLogTerm:  lastTerm,
	}
	for _, p := range peers {
		n.send(p, req)
	}
	// Single-node cluster: immediate leadership.
	n.mu.Lock()
	if n.state == Candidate && len(n.votes) >= n.majority() {
		n.becomeLeaderLocked()
	}
	n.mu.Unlock()
}

func (n *Node) becomeLeaderLocked() {
	n.state = Leader
	n.leader = n.cfg.ID
	n.hasLead = true
	n.noteLeaderLocked()
	last := n.lastIndexLocked()
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
		delete(n.inflight, p)
	}
	n.matchIndex[n.cfg.ID] = last
	if n.electionTimer != nil {
		n.electionTimer.Stop()
		n.electionTimer = nil
	}
	if n.onStateChange != nil {
		n.onStateChange(Leader, n.term)
	}
	n.armHeartbeatLocked()
	// Send the initial empty heartbeats asynchronously.
	n.sched.After(0, func() { n.broadcastAppends(true) })
}

func (n *Node) armHeartbeatLocked() {
	if n.stopped {
		return
	}
	n.heartbeatTimer = n.sched.After(n.cfg.HeartbeatInterval, func() {
		n.mu.Lock()
		if n.stopped || n.state != Leader {
			n.mu.Unlock()
			return
		}
		n.armHeartbeatLocked()
		n.mu.Unlock()
		n.broadcastAppends(true)
	})
}

// broadcastAppends ships log suffixes (or heartbeats) to all followers.
// Followers with an append already in flight are skipped unless force is
// set (the heartbeat and leader-emergence paths force, so a lost message
// never wedges a follower past one heartbeat interval).
func (n *Node) broadcastAppends(force bool) {
	n.mu.Lock()
	if n.state != Leader || n.stopped {
		n.mu.Unlock()
		return
	}
	type out struct {
		to  wire.NodeID
		msg *wire.RaftAppend
	}
	var outs []out
	for _, p := range n.cfg.Peers {
		if p == n.cfg.ID {
			continue
		}
		if !force && n.inflight[p] {
			continue
		}
		n.inflight[p] = true
		outs = append(outs, out{p, n.buildAppendLocked(p)})
	}
	n.mu.Unlock()
	for _, o := range outs {
		n.send(o.to, o.msg)
	}
}

// sendAppend ships one log suffix (or heartbeat) to a single follower,
// marking its in-flight slot. The append-response path uses it so each
// response triggers at most one resend, to its own sender.
func (n *Node) sendAppend(p wire.NodeID) {
	n.mu.Lock()
	if n.state != Leader || n.stopped {
		n.mu.Unlock()
		return
	}
	n.inflight[p] = true
	msg := n.buildAppendLocked(p)
	n.mu.Unlock()
	n.send(p, msg)
}

func (n *Node) buildAppendLocked(p wire.NodeID) *wire.RaftAppend {
	next := n.nextIndex[p]
	if next == 0 {
		next = 1
	}
	prevIdx := next - 1
	entries := make([]wire.RaftEntry, 0)
	for idx := next; idx <= n.lastIndexLocked() && len(entries) < n.cfg.MaxEntriesPerAppend; idx++ {
		entries = append(entries, n.log[idx-1])
	}
	return &wire.RaftAppend{
		Term:         n.term,
		Leader:       n.cfg.ID,
		PrevLogIndex: prevIdx,
		PrevLogTerm:  n.termAtLocked(prevIdx),
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	}
}

// --- message handling ---

// Handle feeds one incoming message into the node. New installs it as the
// endpoint's handler; hosts that multiplex the endpoint (the harness's
// consenter endpoints also accept client Broadcast traffic) demux and call
// it directly.
func (n *Node) Handle(from wire.NodeID, msg wire.Message) { n.handle(from, msg) }

func (n *Node) handle(from wire.NodeID, msg wire.Message) {
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if stopped {
		return // a crashed node must not vote, append or respond
	}
	switch m := msg.(type) {
	case *wire.RaftVoteRequest:
		n.handleVoteRequest(from, m)
	case *wire.RaftVoteResponse:
		n.handleVoteResponse(from, m)
	case *wire.RaftAppend:
		n.handleAppend(from, m)
	case *wire.RaftAppendResponse:
		n.handleAppendResponse(from, m)
	case *wire.RaftForward:
		_ = n.Propose(m.Data)
	}
}

func (n *Node) handleVoteRequest(from wire.NodeID, m *wire.RaftVoteRequest) {
	n.mu.Lock()
	if m.Term > n.term {
		n.becomeFollowerLocked(m.Term)
	}
	grant := false
	if m.Term == n.term && (!n.voted || n.votedFor == m.Candidate) {
		// Candidate's log must be at least as up-to-date as ours.
		lastIdx := n.lastIndexLocked()
		lastTerm := n.termAtLocked(lastIdx)
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
		if upToDate {
			grant = true
			n.voted = true
			n.votedFor = m.Candidate
			n.resetElectionTimerLocked()
		}
	}
	term := n.term
	n.mu.Unlock()
	n.send(from, &wire.RaftVoteResponse{Term: term, Granted: grant})
}

func (n *Node) handleVoteResponse(from wire.NodeID, m *wire.RaftVoteResponse) {
	n.mu.Lock()
	if m.Term > n.term {
		n.becomeFollowerLocked(m.Term)
		n.mu.Unlock()
		return
	}
	if n.state != Candidate || m.Term < n.term || !m.Granted {
		n.mu.Unlock()
		return
	}
	n.votes[from] = true
	if len(n.votes) >= n.majority() {
		n.becomeLeaderLocked()
	}
	n.mu.Unlock()
}

func (n *Node) handleAppend(from wire.NodeID, m *wire.RaftAppend) {
	n.mu.Lock()
	if m.Term < n.term {
		term := n.term
		n.mu.Unlock()
		n.send(from, &wire.RaftAppendResponse{Term: term, Success: false, MatchIndex: 0})
		return
	}
	if m.Term > n.term || n.state != Follower {
		n.becomeFollowerLocked(m.Term)
	} else {
		n.resetElectionTimerLocked()
	}
	n.leader = m.Leader
	n.hasLead = true
	n.noteLeaderLocked()

	// Consistency check.
	if m.PrevLogIndex > n.lastIndexLocked() || n.termAtLocked(m.PrevLogIndex) != m.PrevLogTerm {
		// Hint the leader to back up to our log end (or below the
		// conflicting prefix).
		hint := n.lastIndexLocked()
		if m.PrevLogIndex <= hint {
			hint = m.PrevLogIndex - 1
		}
		term := n.term
		n.mu.Unlock()
		n.send(from, &wire.RaftAppendResponse{Term: term, Success: false, MatchIndex: hint})
		return
	}
	// Append entries, truncating on conflict.
	idx := m.PrevLogIndex
	grew := false
	for _, e := range m.Entries {
		idx++
		if idx <= n.lastIndexLocked() {
			if n.log[idx-1].Term == e.Term {
				continue // already have it
			}
			n.log = n.log[:idx-1] // conflict: truncate suffix
		}
		n.log = append(n.log, e)
		grew = true
	}
	match := m.PrevLogIndex + uint64(len(m.Entries))
	if m.LeaderCommit > n.commitIndex {
		c := m.LeaderCommit
		if last := n.lastIndexLocked(); c > last {
			c = last
		}
		n.commitIndex = c
	}
	term := n.term
	appended := n.lastIndexLocked()
	apply := n.collectApplyLocked()
	n.mu.Unlock()

	if grew && n.onAppend != nil {
		n.onAppend(appended, term)
	}
	n.runApplies(apply)
	n.send(from, &wire.RaftAppendResponse{Term: term, Success: true, MatchIndex: match})
}

func (n *Node) handleAppendResponse(from wire.NodeID, m *wire.RaftAppendResponse) {
	n.mu.Lock()
	delete(n.inflight, from)
	if m.Term > n.term {
		n.becomeFollowerLocked(m.Term)
		n.mu.Unlock()
		return
	}
	if n.state != Leader || m.Term < n.term {
		n.mu.Unlock()
		return
	}
	resend := false
	if m.Success {
		if m.MatchIndex > n.matchIndex[from] {
			n.matchIndex[from] = m.MatchIndex
		}
		n.nextIndex[from] = m.MatchIndex + 1
		n.advanceCommitLocked()
		resend = n.nextIndex[from] <= n.lastIndexLocked()
	} else {
		next := m.MatchIndex + 1
		if next < 1 {
			next = 1
		}
		if next < n.nextIndex[from] {
			n.nextIndex[from] = next
		} else if n.nextIndex[from] > 1 {
			n.nextIndex[from]--
		}
		resend = true
	}
	apply := n.collectApplyLocked()
	n.mu.Unlock()

	n.runApplies(apply)
	if resend {
		n.sendAppend(from)
	}
}

// advanceCommitLocked moves commitIndex to the highest majority-replicated
// index of the current term (Raft's commit rule).
func (n *Node) advanceCommitLocked() {
	for idx := n.lastIndexLocked(); idx > n.commitIndex; idx-- {
		if n.termAtLocked(idx) != n.term {
			break // only current-term entries commit by counting
		}
		count := 0
		for _, p := range n.cfg.Peers {
			if n.matchIndex[p] >= idx {
				count++
			}
		}
		if count >= n.majority() {
			n.commitIndex = idx
			break
		}
	}
}

// collectApplyLocked returns the newly committed entries to apply.
func (n *Node) collectApplyLocked() []wire.RaftEntry {
	if n.applyFn == nil || n.lastApplied >= n.commitIndex {
		return nil
	}
	out := make([]wire.RaftEntry, 0, n.commitIndex-n.lastApplied)
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		out = append(out, n.log[n.lastApplied-1])
	}
	return out
}

func (n *Node) runApplies(entries []wire.RaftEntry) {
	for _, e := range entries {
		n.applyFn(e.Data)
	}
}
