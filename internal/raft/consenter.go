package raft

import (
	"sync"
	"time"

	"fabricgossip/internal/sim"
)

// Consenter adapts a Raft node to the ordering service's Consenter
// interface with at-least-once submission semantics: every submitted
// payload is tracked until it is observed in the committed stream, and
// re-proposed if it has not committed within a sweep interval (covering
// lost forwards to a crashed leader and leaderless windows). This mirrors
// the Kafka producer semantics of the paper's deployment; exactly-once is
// not required because the downstream validation phase is idempotent
// (duplicate transactions fail MVCC, duplicate time-to-cut markers are
// ignored by the block cutter).
type Consenter struct {
	node  *Node
	sched sim.Scheduler

	mu       sync.Mutex
	commitFn func(data []byte)
	pending  map[string]time.Duration // payload -> submission time
	sweeping bool
	stopped  bool

	// sweepInterval is how often unacknowledged payloads are re-proposed.
	sweepInterval time.Duration
	// maxAge drops payloads that failed to commit for this long (clients
	// resubmit at their level).
	maxAge time.Duration
}

// NewConsenter wraps a node. OnCommit must be called (by the ordering
// service) before Submit.
func NewConsenter(node *Node, sched sim.Scheduler) *Consenter {
	c := &Consenter{
		node:          node,
		sched:         sched,
		pending:       make(map[string]time.Duration),
		sweepInterval: 250 * time.Millisecond,
		maxAge:        30 * time.Second,
	}
	return c
}

// Node returns the wrapped Raft node.
func (c *Consenter) Node() *Node { return c.node }

// Stop halts the retry sweep.
func (c *Consenter) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// OnCommit implements order.Consenter.
func (c *Consenter) OnCommit(fn func(data []byte)) {
	c.mu.Lock()
	c.commitFn = fn
	c.mu.Unlock()
	c.node.OnApply(func(data []byte) {
		c.mu.Lock()
		delete(c.pending, string(data))
		cb := c.commitFn
		c.mu.Unlock()
		if cb != nil {
			cb(data)
		}
	})
}

// Submit implements order.Consenter.
func (c *Consenter) Submit(data []byte) error {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil
	}
	c.pending[string(data)] = c.sched.Now()
	if !c.sweeping {
		c.sweeping = true
		c.armSweepLocked()
	}
	c.mu.Unlock()
	// Best-effort immediate proposal; the sweep covers failures.
	_ = c.node.Propose(data)
	return nil
}

func (c *Consenter) armSweepLocked() {
	c.sched.After(c.sweepInterval, c.sweep)
}

func (c *Consenter) sweep() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	now := c.sched.Now()
	var retry [][]byte
	for key, at := range c.pending {
		age := now - at
		if age > c.maxAge {
			delete(c.pending, key)
			continue
		}
		if age < c.sweepInterval {
			continue // freshly submitted: the first proposal is in flight
		}
		// Re-proposing resets the age so a slow-but-successful commit is
		// not re-proposed again on the very next sweep.
		c.pending[key] = now
		retry = append(retry, []byte(key))
	}
	if len(c.pending) > 0 {
		c.armSweepLocked()
	} else {
		c.sweeping = false
	}
	c.mu.Unlock()
	for _, data := range retry {
		_ = c.node.Propose(data)
	}
}
