package raft

import (
	"sync"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Consenter adapts a Raft node to the ordering service's Consenter
// interface with reliable submission and exactly-once delivery:
//
//   - Every submitted payload is buffered until it is observed in the
//     committed stream. Node.Propose on a non-leader forwards to the known
//     leader, but during an election there is no leader to forward to
//     (ErrNotLeader) and a forward racing a leadership change can land on a
//     node that must drop it — so the buffer, not the caller, owns
//     redelivery: pending payloads are re-proposed the moment a leader
//     becomes known (Node.OnLeaderChange) and again on a periodic sweep
//     (covering a leader that crashed after accepting but before
//     committing).
//   - Re-proposal can place a payload in the log twice. By default the
//     duplicates are delivered as-is — at-least-once, absorbed by MVCC
//     validation downstream. SetDedup opts into exactly-once delivery over
//     a bounded window of recently applied payloads, for callers whose
//     payloads are content-unique (distinct submissions always differ in
//     bytes). The window is driven purely by the (identical) apply stream,
//     so every consenter in the cluster suppresses the same duplicates and
//     cuts the same blocks.
//
// Retry scanning and re-proposal follow submission order, keeping the
// shim's behavior a pure function of the schedule — a requirement on the
// deterministic sim engine.
type Consenter struct {
	node  *Node
	sched sim.Scheduler

	mu       sync.Mutex
	commitFn func(data []byte)
	// pending maps payload -> last proposal time; order keeps the pending
	// keys in submission order (entries whose key has left the map are
	// skipped and compacted on sweep).
	pending  map[string]time.Duration
	order    []string
	sweeping bool
	stopped  bool

	// seen is the exactly-once window over applied payloads: a FIFO set of
	// the last dedupWindow entries. dedupWindow 0 (the default) disables
	// deduplication.
	seen        map[string]struct{}
	seenQ       []string
	dedupWindow int

	// sweepInterval is how often unacknowledged payloads are re-proposed.
	sweepInterval time.Duration
	// maxAge drops payloads that failed to commit for this long (clients
	// resubmit at their level). Zero or negative retries forever — the
	// harness's mode, where a lost entry would wedge the chain.
	maxAge time.Duration
}

// NewConsenter wraps a node. OnCommit must be called (by the ordering
// service) before Submit.
func NewConsenter(node *Node, sched sim.Scheduler) *Consenter {
	c := &Consenter{
		node:          node,
		sched:         sched,
		pending:       make(map[string]time.Duration),
		seen:          make(map[string]struct{}),
		sweepInterval: 250 * time.Millisecond,
		maxAge:        30 * time.Second,
	}
	node.OnLeaderChange(func(_ wire.NodeID, known bool) {
		if known {
			c.flush()
		}
	})
	return c
}

// Node returns the wrapped Raft node.
func (c *Consenter) Node() *Node { return c.node }

// SetRetry tunes the redelivery sweep: interval between re-proposals and
// the age past which an uncommitted payload is dropped (maxAge <= 0 never
// drops — required when the payloads are harness chain blocks that must
// eventually commit).
func (c *Consenter) SetRetry(interval, maxAge time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if interval > 0 {
		c.sweepInterval = interval
	}
	c.maxAge = maxAge
}

// SetDedup opts into exactly-once delivery: committed payloads seen within
// the last window applies are suppressed as duplicates. Only valid when
// distinct submissions are guaranteed distinct bytes (a nonce, a block
// number); identical re-submissions of the same content — e.g. a client
// re-endorsing an unchanged transaction after a conflict — would be
// swallowed. Zero disables (the default).
func (c *Consenter) SetDedup(window int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dedupWindow = window
}

// Stop halts the retry sweep.
func (c *Consenter) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// OnCommit implements order.Consenter. Committed entries are delivered in
// log order, exactly once across the dedup window.
func (c *Consenter) OnCommit(fn func(data []byte)) {
	c.mu.Lock()
	c.commitFn = fn
	c.mu.Unlock()
	c.node.OnApply(func(data []byte) {
		key := string(data)
		c.mu.Lock()
		delete(c.pending, key)
		if c.dedupWindow > 0 {
			if _, dup := c.seen[key]; dup {
				c.mu.Unlock()
				return // a re-proposed copy: already delivered downstream
			}
			c.seen[key] = struct{}{}
			c.seenQ = append(c.seenQ, key)
			if len(c.seenQ) > c.dedupWindow {
				delete(c.seen, c.seenQ[0])
				c.seenQ = c.seenQ[1:]
			}
		}
		cb := c.commitFn
		c.mu.Unlock()
		if cb != nil {
			cb(data)
		}
	})
}

// Submit implements order.Consenter.
func (c *Consenter) Submit(data []byte) error {
	key := string(data)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil
	}
	if _, exists := c.pending[key]; !exists {
		c.order = append(c.order, key)
	}
	c.pending[key] = c.sched.Now()
	if !c.sweeping {
		c.sweeping = true
		c.armSweepLocked()
	}
	c.mu.Unlock()
	// Best-effort immediate proposal; flush-on-leader and the sweep cover
	// elections and crashed leaders.
	_ = c.node.Propose(data)
	return nil
}

// flush re-proposes every pending payload in submission order — called the
// moment a leader becomes known, so envelopes buffered through an election
// reach the new leader without waiting out a sweep interval.
func (c *Consenter) flush() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	now := c.sched.Now()
	retry := c.collectPendingLocked(now, false)
	c.mu.Unlock()
	for _, data := range retry {
		_ = c.node.Propose(data)
	}
}

func (c *Consenter) armSweepLocked() {
	c.sched.After(c.sweepInterval, c.sweep)
}

func (c *Consenter) sweep() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	now := c.sched.Now()
	retry := c.collectPendingLocked(now, true)
	if len(c.pending) > 0 {
		c.armSweepLocked()
	} else {
		c.sweeping = false
	}
	c.mu.Unlock()
	for _, data := range retry {
		_ = c.node.Propose(data)
	}
}

// collectPendingLocked walks the submission-ordered pending queue,
// compacting entries that have committed, expiring those past maxAge
// (sweeps only), and returning the payloads due for re-proposal. Age
// gating applies on sweeps only: a flush re-proposes everything — its
// trigger (a new leader) is exactly the moment in-flight proposals may
// have died.
func (c *Consenter) collectPendingLocked(now time.Duration, ageGate bool) [][]byte {
	var retry [][]byte
	kept := c.order[:0]
	for _, key := range c.order {
		at, ok := c.pending[key]
		if !ok {
			continue // committed since: compact
		}
		age := now - at
		if ageGate && c.maxAge > 0 && age > c.maxAge {
			delete(c.pending, key)
			continue
		}
		if ageGate && age < c.sweepInterval {
			kept = append(kept, key)
			continue // freshly proposed: give the in-flight copy time
		}
		// Re-proposing resets the age so a slow-but-successful commit is
		// not re-proposed again on the very next sweep.
		c.pending[key] = now
		retry = append(retry, []byte(key))
		kept = append(kept, key)
	}
	c.order = kept
	return retry
}
