package raft

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Property: election safety — across randomized message-loss schedules,
// at most one node is ever leader of a given term, and every node's applied
// prefix stays consistent with every other's.
func TestPropertyElectionAndLogSafetyUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			engine := sim.NewEngine(seed + 500)
			model := netmodel.Model{PropMin: time.Millisecond, PropMax: 5 * time.Millisecond}
			net := transport.NewSimNetwork(engine, model, nil)
			net.SetDropRate(0.15)

			const n = 5
			ids := make([]wire.NodeID, n)
			for i := range ids {
				ids[i] = wire.NodeID(i)
			}
			leadersByTerm := make(map[uint64][]wire.NodeID)
			applied := make([][]string, n)
			nodes := make([]*Node, n)
			for i := 0; i < n; i++ {
				ep := net.AddNode()
				node := New(DefaultConfig(ids[i], ids), ep, engine, engine.Rand("raft"))
				id := ids[i]
				node.OnStateChange(func(s State, term uint64) {
					if s == Leader {
						leadersByTerm[term] = append(leadersByTerm[term], id)
					}
				})
				idx := i
				node.OnApply(func(data []byte) {
					applied[idx] = append(applied[idx], string(data))
				})
				nodes[i] = node
				node.Start()
			}
			// Drive proposals at whichever node currently leads while the
			// lossy network forces retries and possible re-elections.
			for i := 0; i < 10; i++ {
				payload := []byte{byte('a' + i)}
				engine.At(time.Duration(i)*300*time.Millisecond, func() {
					for _, nd := range nodes {
						if st, _, _, _ := nd.Status(); st == Leader {
							_ = nd.Propose(payload)
							return
						}
					}
				})
			}
			engine.RunUntil(20 * time.Second)

			// Election safety.
			for term, leaders := range leadersByTerm {
				if len(leaders) > 1 {
					t.Fatalf("term %d had %d leaders: %v", term, len(leaders), leaders)
				}
			}
			// Log matching: every pair of applied sequences agrees on the
			// common prefix.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					m := len(applied[i])
					if len(applied[j]) < m {
						m = len(applied[j])
					}
					for k := 0; k < m; k++ {
						if applied[i][k] != applied[j][k] {
							t.Fatalf("nodes %d and %d diverge at %d: %q vs %q",
								i, j, k, applied[i][k], applied[j][k])
						}
					}
				}
			}
		})
	}
}
