package raft

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Property: election safety — across randomized message-loss schedules,
// at most one node is ever leader of a given term, and every node's applied
// prefix stays consistent with every other's.
func TestPropertyElectionAndLogSafetyUnderLoss(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			engine := sim.NewEngine(seed + 500)
			model := netmodel.Model{PropMin: time.Millisecond, PropMax: 5 * time.Millisecond}
			net := transport.NewSimNetwork(engine, model, nil)
			net.SetDropRate(0.15)

			const n = 5
			ids := make([]wire.NodeID, n)
			for i := range ids {
				ids[i] = wire.NodeID(i)
			}
			leadersByTerm := make(map[uint64][]wire.NodeID)
			applied := make([][]string, n)
			nodes := make([]*Node, n)
			for i := 0; i < n; i++ {
				ep := net.AddNode()
				node := New(DefaultConfig(ids[i], ids), ep, engine, engine.Rand("raft"))
				id := ids[i]
				node.OnStateChange(func(s State, term uint64) {
					if s == Leader {
						leadersByTerm[term] = append(leadersByTerm[term], id)
					}
				})
				idx := i
				node.OnApply(func(data []byte) {
					applied[idx] = append(applied[idx], string(data))
				})
				nodes[i] = node
				node.Start()
			}
			// Drive proposals at whichever node currently leads while the
			// lossy network forces retries and possible re-elections.
			for i := 0; i < 10; i++ {
				payload := []byte{byte('a' + i)}
				engine.At(time.Duration(i)*300*time.Millisecond, func() {
					for _, nd := range nodes {
						if st, _, _, _ := nd.Status(); st == Leader {
							_ = nd.Propose(payload)
							return
						}
					}
				})
			}
			engine.RunUntil(20 * time.Second)

			// Election safety.
			for term, leaders := range leadersByTerm {
				if len(leaders) > 1 {
					t.Fatalf("term %d had %d leaders: %v", term, len(leaders), leaders)
				}
			}
			// Log matching: every pair of applied sequences agrees on the
			// common prefix.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					m := len(applied[i])
					if len(applied[j]) < m {
						m = len(applied[j])
					}
					for k := 0; k < m; k++ {
						if applied[i][k] != applied[j][k] {
							t.Fatalf("nodes %d and %d diverge at %d: %q vs %q",
								i, j, k, applied[i][k], applied[j][k])
						}
					}
				}
			}
		})
	}
}

// Property: safety under network partitions — a 2/3 split isolates a
// minority (possibly containing the old leader, which keeps accepting
// proposals it can never commit), the majority elects its own leader and
// commits, and after the heal every node converges on one applied sequence.
// No two leaders of the same term may ever be elected, and no two nodes may
// commit conflicting entries at the same index — driven by simnet
// Partition/Heal rather than hand-rolled message drops.
func TestPropertyPartitionHealSafety(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			engine := sim.NewEngine(seed + 900)
			model := netmodel.Model{PropMin: time.Millisecond, PropMax: 5 * time.Millisecond}
			net := transport.NewSimNetwork(engine, model, nil)

			const n = 5
			ids := make([]wire.NodeID, n)
			for i := range ids {
				ids[i] = wire.NodeID(i)
			}
			leadersByTerm := make(map[uint64][]wire.NodeID)
			applied := make([][]string, n)
			nodes := make([]*Node, n)
			for i := 0; i < n; i++ {
				ep := net.AddNode()
				node := New(DefaultConfig(ids[i], ids), ep, engine, engine.Rand("raft"))
				id := ids[i]
				node.OnStateChange(func(s State, term uint64) {
					if s == Leader {
						leadersByTerm[term] = append(leadersByTerm[term], id)
					}
				})
				idx := i
				node.OnApply(func(data []byte) {
					applied[idx] = append(applied[idx], string(data))
				})
				nodes[i] = node
				node.Start()
			}

			// The split rotates with the seed so some runs cut the current
			// leader into the minority and some leave it with the majority.
			lo := int(seed) % n
			minority := []wire.NodeID{ids[lo], ids[(lo+1)%n]}
			majority := make([]wire.NodeID, 0, n-2)
			for i := 0; i < n; i++ {
				if i != lo && i != (lo+1)%n {
					majority = append(majority, ids[i])
				}
			}
			engine.At(time.Second, func() { net.Partition(minority, majority) })
			engine.At(6*time.Second, func() { net.Heal() })

			// Proposals keep arriving at every node that believes it leads —
			// including a stale minority leader whose entries must not
			// commit conflicting indices.
			for i := 0; i < 16; i++ {
				payload := []byte{byte('a' + i)}
				engine.At(time.Duration(i)*500*time.Millisecond, func() {
					for _, nd := range nodes {
						if st, _, _, _ := nd.Status(); st == Leader {
							_ = nd.Propose(payload)
						}
					}
				})
			}
			engine.RunUntil(25 * time.Second)

			// Election safety across the split.
			for term, leaders := range leadersByTerm {
				if len(leaders) > 1 {
					t.Fatalf("term %d had %d leaders: %v", term, len(leaders), leaders)
				}
			}
			// No conflicting commits at any index, before or after heal.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					m := len(applied[i])
					if len(applied[j]) < m {
						m = len(applied[j])
					}
					for k := 0; k < m; k++ {
						if applied[i][k] != applied[j][k] {
							t.Fatalf("nodes %d and %d committed conflicting entries at %d: %q vs %q",
								i, j, k, applied[i][k], applied[j][k])
						}
					}
				}
			}
			// Liveness: the majority side must have committed during or
			// after the partition — an empty run would vacuously pass the
			// safety checks.
			committed := 0
			for i := range applied {
				if len(applied[i]) > committed {
					committed = len(applied[i])
				}
			}
			if committed == 0 {
				t.Fatal("no entries committed across the partition/heal run")
			}
		})
	}
}
