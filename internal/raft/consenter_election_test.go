package raft

import (
	"fmt"
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// TestConsenterSubmitAcrossForcedElection is the regression test for the
// non-leader Propose path: envelopes submitted while the cluster is
// mid-election (the old leader crashed, no new leader known — Node.Propose
// returns ErrNotLeader and a raw forward would be dropped) must neither be
// lost nor double-ordered. The Consenter buffers them and re-proposes on
// the new leader's emergence; the dedup window suppresses the duplicate
// log entries that at-least-once re-proposal can create.
func TestConsenterSubmitAcrossForcedElection(t *testing.T) {
	engine := sim.NewEngine(29)
	model := netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}
	net := transport.NewSimNetwork(engine, model, nil)

	const clusterSize = 3
	ids := make([]wire.NodeID, clusterSize)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	nodes := make([]*Node, clusterSize)
	shims := make([]*Consenter, clusterSize)
	delivered := make([][]string, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep := net.AddNode()
		nodes[i] = New(DefaultConfig(ep.ID(), ids), ep, engine, engine.Rand("raft"))
		shims[i] = NewConsenter(nodes[i], engine)
		shims[i].SetDedup(128) // payloads below are unique strings
		idx := i
		shims[i].OnCommit(func(data []byte) {
			delivered[idx] = append(delivered[idx], string(data))
		})
		nodes[i].Start()
	}
	engine.RunUntil(2 * time.Second)

	leaderIdx := -1
	for i, n := range nodes {
		if st, _, _, _ := n.Status(); st == Leader {
			leaderIdx = i
		}
	}
	if leaderIdx < 0 {
		t.Fatal("no leader elected before the fault")
	}
	survivor := (leaderIdx + 1) % clusterSize

	// Crash the leader, then fire a burst of submissions at a survivor
	// while the election it forces is still running: the first few land in
	// the leaderless window (ErrNotLeader territory), the rest straddle
	// the new leader's first heartbeats.
	const burst = 8
	crashAt := engine.Now()
	engine.At(crashAt, func() {
		nodes[leaderIdx].Stop()
		net.SetNodeDown(wire.NodeID(leaderIdx), true)
	})
	for i := 0; i < burst; i++ {
		payload := fmt.Sprintf("env-%02d", i)
		engine.At(crashAt+time.Duration(i)*30*time.Millisecond, func() {
			_ = shims[survivor].Submit([]byte(payload))
		})
	}
	engine.RunUntil(engine.Now() + 15*time.Second)

	// Every surviving consenter must deliver all envelopes exactly once,
	// in the same total order.
	for i := 0; i < clusterSize; i++ {
		if i == leaderIdx {
			continue
		}
		counts := make(map[string]int)
		for _, d := range delivered[i] {
			counts[d]++
		}
		for j := 0; j < burst; j++ {
			key := fmt.Sprintf("env-%02d", j)
			switch counts[key] {
			case 0:
				t.Errorf("node %d lost envelope %s across the election", i, key)
			case 1:
			default:
				t.Errorf("node %d double-ordered envelope %s (%d times)", i, key, counts[key])
			}
		}
		if len(delivered[i]) != len(delivered[survivor]) {
			t.Errorf("node %d delivered %d entries, survivor delivered %d",
				i, len(delivered[i]), len(delivered[survivor]))
		}
		for k := range delivered[i] {
			if delivered[i][k] != delivered[survivor][k] {
				t.Fatalf("nodes %d and %d diverge at %d: %q vs %q",
					i, survivor, k, delivered[i][k], delivered[survivor][k])
			}
		}
	}
}

// TestConsenterRestartRejoinsByLogReplay covers the consenter-mode restart
// semantics: a stopped node keeps its (modelled-durable) log, and Start
// rejoins it as a follower that the leader catches up via AppendEntries
// suffix replay — not a fresh state.
func TestConsenterRestartRejoinsByLogReplay(t *testing.T) {
	engine := sim.NewEngine(31)
	model := netmodel.Model{PropMin: time.Millisecond, PropMax: 2 * time.Millisecond}
	net := transport.NewSimNetwork(engine, model, nil)

	const clusterSize = 3
	ids := make([]wire.NodeID, clusterSize)
	for i := range ids {
		ids[i] = wire.NodeID(i)
	}
	nodes := make([]*Node, clusterSize)
	shims := make([]*Consenter, clusterSize)
	delivered := make([][]string, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep := net.AddNode()
		nodes[i] = New(DefaultConfig(ep.ID(), ids), ep, engine, engine.Rand("raft"))
		shims[i] = NewConsenter(nodes[i], engine)
		shims[i].SetDedup(128) // payloads below are unique strings
		idx := i
		shims[i].OnCommit(func(data []byte) {
			delivered[idx] = append(delivered[idx], string(data))
		})
		nodes[i].Start()
	}
	engine.RunUntil(2 * time.Second)

	var victim int // crash a follower so ordering continues while it is down
	for i, n := range nodes {
		if st, _, _, _ := n.Status(); st != Leader {
			victim = i
			break
		}
	}
	nodes[victim].Stop()
	net.SetNodeDown(wire.NodeID(victim), true)

	alive := (victim + 1) % clusterSize
	for i := 0; i < 6; i++ {
		payload := fmt.Sprintf("dur-%02d", i)
		engine.At(engine.Now()+time.Duration(i)*100*time.Millisecond, func() {
			_ = shims[alive].Submit([]byte(payload))
		})
	}
	engine.RunUntil(engine.Now() + 5*time.Second)
	if len(delivered[victim]) != 0 {
		t.Fatalf("crashed node delivered %d entries while down", len(delivered[victim]))
	}
	before := nodes[victim].CommitIndex()

	// Restart: the node must catch up from where its log left off.
	net.SetNodeDown(wire.NodeID(victim), false)
	nodes[victim].Start()
	engine.RunUntil(engine.Now() + 5*time.Second)

	if nodes[victim].CommitIndex() <= before {
		t.Fatalf("restarted node did not advance past its pre-crash commit index %d", before)
	}
	if len(delivered[victim]) != len(delivered[alive]) {
		t.Fatalf("restarted node replayed %d entries, cluster has %d",
			len(delivered[victim]), len(delivered[alive]))
	}
	for k := range delivered[victim] {
		if delivered[victim][k] != delivered[alive][k] {
			t.Fatalf("replayed log diverges at %d: %q vs %q",
				k, delivered[victim][k], delivered[alive][k])
		}
	}
}
