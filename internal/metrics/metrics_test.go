package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"fabricgossip/internal/wire"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestDistributionQuantiles(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(50), ms(10), ms(30), ms(20), ms(40)})
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.2, ms(10)},
		{0.5, ms(30)},
		{1.0, ms(50)},
		{0.0, ms(10)},  // clamps low
		{-0.5, ms(10)}, // clamps low
		{2.0, ms(50)},  // clamps high
	}
	for _, c := range cases {
		if got := d.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%g) = %v, want %v", c.p, got, c.want)
		}
	}
	if d.Min() != ms(10) || d.Max() != ms(50) || d.Mean() != ms(30) {
		t.Errorf("min/max/mean = %v/%v/%v", d.Min(), d.Max(), d.Mean())
	}
}

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution(nil)
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.N() != 0 {
		t.Fatal("empty distribution should return zeros")
	}
	if d.FractionBelow(time.Second) != 0 {
		t.Fatal("empty FractionBelow should be 0")
	}
}

func TestDistributionDoesNotAliasInput(t *testing.T) {
	in := []time.Duration{ms(3), ms(1), ms(2)}
	d := NewDistribution(in)
	in[0] = ms(999)
	if d.Max() != ms(3) {
		t.Fatal("distribution aliases caller slice")
	}
}

func TestFractionBelow(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(10), ms(20), ms(30), ms(40)})
	cases := []struct {
		x    time.Duration
		want float64
	}{
		{ms(5), 0}, {ms(10), 0.25}, {ms(25), 0.5}, {ms(40), 1}, {ms(100), 1},
	}
	for _, c := range cases {
		if got := d.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestLogit(t *testing.T) {
	if Logit(0.5) != 0 {
		t.Errorf("Logit(0.5) = %g", Logit(0.5))
	}
	if math.Abs(Logit(0.9)+Logit(0.1)) > 1e-12 {
		t.Error("Logit not antisymmetric")
	}
	if Logit(0.9999) <= Logit(0.99) {
		t.Error("Logit not increasing")
	}
}

func TestProbPlot(t *testing.T) {
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	d := NewDistribution(samples)
	rows := ProbPlot(d, PeerLevelTicks)
	if len(rows) != len(PeerLevelTicks) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Latency < rows[i-1].Latency {
			t.Fatal("probability plot not monotone")
		}
		if rows[i].LogitP <= rows[i-1].LogitP {
			t.Fatal("logit ticks not increasing")
		}
	}
	// Median of 1..1000 ms is 500 ms.
	var mid ProbPlotRow
	for _, r := range rows {
		if r.P == 0.5 {
			mid = r
		}
	}
	if mid.Latency != ms(500) {
		t.Fatalf("median row = %v, want 500ms", mid.Latency)
	}
}

func TestLatencyRecorderExtremes(t *testing.T) {
	r := NewLatencyRecorder()
	// Peer 0 fast (10ms), peer 1 medium (50ms), peer 2 slow (900ms), over 4 blocks.
	for b := uint64(0); b < 4; b++ {
		r.Record(b, 0, ms(10))
		r.Record(b, 1, ms(50))
		r.Record(b, 2, ms(900))
	}
	if r.Count() != 12 || r.Peers() != 3 || r.Blocks() != 4 {
		t.Fatalf("count/peers/blocks = %d/%d/%d", r.Count(), r.Peers(), r.Blocks())
	}
	pe, err := r.PeerExtremes()
	if err != nil {
		t.Fatal(err)
	}
	if pe.Fastest.Mean() != ms(10) || pe.Median.Mean() != ms(50) || pe.Slowest.Mean() != ms(900) {
		t.Fatalf("peer extremes = %v/%v/%v", pe.Fastest.Mean(), pe.Median.Mean(), pe.Slowest.Mean())
	}

	// Block extremes: make block 3 slow to finish.
	r2 := NewLatencyRecorder()
	for b := uint64(0); b < 3; b++ {
		r2.Record(b, 0, ms(10))
		r2.Record(b, 1, ms(20+int(b)))
	}
	r2.Record(3, 0, ms(10))
	r2.Record(3, 1, ms(5000))
	be, err := r2.BlockExtremes()
	if err != nil {
		t.Fatal(err)
	}
	if be.Slowest.Max() != ms(5000) {
		t.Fatalf("slowest block max = %v", be.Slowest.Max())
	}
	if be.Fastest.Max() != ms(20) {
		t.Fatalf("fastest block max = %v", be.Fastest.Max())
	}
}

func TestLatencyRecorderEmptyErrors(t *testing.T) {
	r := NewLatencyRecorder()
	if _, err := r.PeerExtremes(); err == nil {
		t.Error("PeerExtremes on empty recorder succeeded")
	}
	if _, err := r.BlockExtremes(); err == nil {
		t.Error("BlockExtremes on empty recorder succeeded")
	}
}

func TestAllPoolsEverything(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(0, 0, ms(1))
	r.Record(0, 1, ms(2))
	r.Record(1, 0, ms(3))
	d := r.All()
	if d.N() != 3 || d.Max() != ms(3) {
		t.Fatalf("All() n=%d max=%v", d.N(), d.Max())
	}
}

func TestSummarize(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	s := Summarize(NewDistribution(samples))
	if s.N != 100 || s.Min != ms(1) || s.Max != ms(100) || s.P50 != ms(50) || s.P95 != ms(95) || s.P99 != ms(99) {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

// Property: quantiles are monotone in p for any sample set.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		d := NewDistribution(samples)
		prev := time.Duration(-1)
		for p := 0.05; p <= 1.0; p += 0.05 {
			q := d.Quantile(p)
			if q < prev {
				return false
			}
			prev = q
		}
		return d.Quantile(1.0) == d.Max() && d.Min() <= d.Mean() && d.Mean() <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRecorder(t *testing.T) {
	r := NewRecoveryRecorder()
	if r.Count() != 0 || r.Distribution().N() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(ms(200))
	r.Record(ms(600))
	r.Record(ms(400))
	if r.Count() != 3 {
		t.Fatalf("count = %d", r.Count())
	}
	d := r.Distribution()
	if d.Min() != ms(200) || d.Max() != ms(600) || d.Quantile(0.5) != ms(400) {
		t.Fatalf("distribution min=%v p50=%v max=%v", d.Min(), d.Quantile(0.5), d.Max())
	}
}

func TestOverheadRatio(t *testing.T) {
	// 10 blocks of 1000 bytes to 99 receivers, transmitted at 1.5x ideal.
	ideal := uint64(1000 * 99 * 10)
	if got := OverheadRatio(ideal*3/2, 1000, 99, 10); got < 1.49 || got > 1.51 {
		t.Fatalf("overhead = %v, want 1.5", got)
	}
	if got := OverheadRatio(123, 0, 99, 10); got != 0 {
		t.Fatalf("zero-ideal overhead = %v, want 0", got)
	}
}

func TestGroupedLatency(t *testing.T) {
	g := NewGroupedLatency()
	if len(g.Groups()) != 0 || g.All().Count() != 0 {
		t.Fatal("fresh grouped recorder not empty")
	}
	g.Record(1, 0, 10, ms(100))
	g.Record(0, 0, 1, ms(300))
	g.Record(1, 1, 11, ms(200))
	if got := g.Groups(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("groups = %v, want [0 1]", got)
	}
	if g.Group(1).Count() != 2 || g.Group(0).Count() != 1 {
		t.Fatalf("group counts = %d/%d", g.Group(0).Count(), g.Group(1).Count())
	}
	all := g.All().All()
	if all.N() != 3 || all.Min() != ms(100) || all.Max() != ms(300) {
		t.Fatalf("aggregate n=%d min=%v max=%v", all.N(), all.Min(), all.Max())
	}
	// Group accessor must not invent observations.
	if g.Group(7).Count() != 0 {
		t.Fatal("empty group has observations")
	}
}

// SummarizeAll/SummarizeGroup must be observably identical to the
// allocation-heavy Summarize(All().All()) path they replaced at report
// time: same multiset, same order statistics, every quantile equal —
// across group counts, sample sizes (empty included) and a deliberately
// adversarial insertion order.
func TestSummarizeSamplesMatchesDistributionPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGroupedLatency()
	g.EnsureGroups(3)
	for i := 0; i < 5000; i++ {
		o := rng.Intn(3)
		if o == 2 && i%5 != 0 {
			continue // keep one group sparse
		}
		g.Record(o, uint64(rng.Intn(40)), wire.NodeID(rng.Intn(500)), time.Duration(rng.Int63n(1e9)))
	}
	want := Summarize(g.All().All())
	if got := g.SummarizeAll(); got != want {
		t.Errorf("SummarizeAll = %+v\nwant %+v", got, want)
	}
	for o := 0; o < 3; o++ {
		want := Summarize(g.Group(o).All())
		if got := g.SummarizeGroup(o); got != want {
			t.Errorf("SummarizeGroup(%d) = %+v\nwant %+v", o, got, want)
		}
	}
	if got := g.SummarizeGroup(99); got != (Summary{}) {
		t.Errorf("unknown group summary = %+v, want zero", got)
	}
	if got := SummarizeSamples(nil); got != (Summary{}) {
		t.Errorf("empty SummarizeSamples = %+v, want zero", got)
	}
	// Re-querying reuses the scratch buffer and must not perturb results.
	if a, b := g.SummarizeAll(), g.SummarizeAll(); a != b {
		t.Errorf("requery drifted: %+v vs %+v", a, b)
	}
}
