// Package metrics collects and summarizes block-dissemination latencies and
// renders them the way the paper's figures do: empirical CDFs plotted on a
// logistic-quantile (probability-plot) axis, where a logistic distribution
// appears as a straight line and heavy tails bend away from it.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"fabricgossip/internal/wire"
)

// Distribution is an immutable empirical distribution over durations.
type Distribution struct {
	sorted []time.Duration
}

// NewDistribution copies and sorts the given samples.
func NewDistribution(samples []time.Duration) *Distribution {
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Distribution{sorted: s}
}

// N returns the sample count.
func (d *Distribution) N() int { return len(d.sorted) }

// Quantile returns the p-th order statistic (0 < p <= 1). Out-of-range p
// clamps to the extremes; an empty distribution returns 0.
func (d *Distribution) Quantile(p float64) time.Duration {
	n := len(d.sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return d.sorted[idx]
}

// Mean returns the sample mean.
func (d *Distribution) Mean() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.sorted {
		sum += v
	}
	return sum / time.Duration(len(d.sorted))
}

// Max returns the largest sample.
func (d *Distribution) Max() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Min returns the smallest sample.
func (d *Distribution) Min() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// FractionBelow returns the empirical CDF at x.
func (d *Distribution) FractionBelow(x time.Duration) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	i := sort.Search(len(d.sorted), func(i int) bool { return d.sorted[i] > x })
	return float64(i) / float64(len(d.sorted))
}

// Logit returns ln(p / (1-p)), the logistic quantile transform the paper
// uses for its probability-plot y axes.
func Logit(p float64) float64 { return math.Log(p / (1 - p)) }

// PeerLevelTicks are the y-axis probability levels of the paper's
// peer-level latency figures (Figs. 4, 7, 12).
var PeerLevelTicks = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25,
	0.5, 0.75, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9995, 0.9999,
}

// BlockLevelTicks are the y-axis probability levels of the paper's
// block-level latency figures (Figs. 5, 8, 13).
var BlockLevelTicks = []float64{
	0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.995,
}

// ProbPlotRow is one row of a probability plot: at cumulative probability P
// (logistic y-coordinate LogitP), the distribution's latency is Latency.
type ProbPlotRow struct {
	P       float64
	LogitP  float64
	Latency time.Duration
}

// ProbPlot evaluates the distribution's quantiles at the given probability
// ticks. Ticks finer than 1/N are clamped by Quantile to the extremes,
// mirroring how an empirical CDF plot saturates.
func ProbPlot(d *Distribution, ticks []float64) []ProbPlotRow {
	rows := make([]ProbPlotRow, 0, len(ticks))
	for _, p := range ticks {
		rows = append(rows, ProbPlotRow{P: p, LogitP: Logit(p), Latency: d.Quantile(p)})
	}
	return rows
}

// LatencyRecorder accumulates (block, peer, latency) observations from a
// dissemination experiment and produces the paper's two views:
//
//   - per peer: each peer's latency distribution across all blocks
//     (Figs. 4/7/12 plot the fastest, median and slowest *peers*);
//   - per block: each block's latency distribution across all peers
//     (Figs. 5/8/13 plot the fastest, median and slowest *blocks*).
type LatencyRecorder struct {
	perPeer  map[wire.NodeID][]time.Duration
	perBlock map[uint64][]time.Duration
	count    int
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{
		perPeer:  make(map[wire.NodeID][]time.Duration),
		perBlock: make(map[uint64][]time.Duration),
	}
}

// Record adds one observation: peer received block after latency.
func (r *LatencyRecorder) Record(block uint64, peer wire.NodeID, latency time.Duration) {
	r.perPeer[peer] = append(r.perPeer[peer], latency)
	r.perBlock[block] = append(r.perBlock[block], latency)
	r.count++
}

// Count returns the number of recorded observations.
func (r *LatencyRecorder) Count() int { return r.count }

// Peers returns the number of distinct peers observed.
func (r *LatencyRecorder) Peers() int { return len(r.perPeer) }

// Blocks returns the number of distinct blocks observed.
func (r *LatencyRecorder) Blocks() int { return len(r.perBlock) }

// Extremes bundles the three distributions the paper plots per figure.
type Extremes struct {
	Fastest *Distribution
	Median  *Distribution
	Slowest *Distribution
}

// PeerExtremes ranks peers by mean latency and returns the fastest, median
// and slowest peers' distributions.
func (r *LatencyRecorder) PeerExtremes() (Extremes, error) {
	if len(r.perPeer) == 0 {
		return Extremes{}, fmt.Errorf("metrics: no peer observations")
	}
	type entry struct {
		d    *Distribution
		mean time.Duration
	}
	entries := make([]entry, 0, len(r.perPeer))
	for _, samples := range r.perPeer {
		d := NewDistribution(samples)
		entries = append(entries, entry{d: d, mean: d.Mean()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mean < entries[j].mean })
	return Extremes{
		Fastest: entries[0].d,
		Median:  entries[len(entries)/2].d,
		Slowest: entries[len(entries)-1].d,
	}, nil
}

// BlockExtremes ranks blocks by the time to reach their last peer
// (dissemination completion) and returns the fastest, median and slowest
// blocks' distributions.
func (r *LatencyRecorder) BlockExtremes() (Extremes, error) {
	if len(r.perBlock) == 0 {
		return Extremes{}, fmt.Errorf("metrics: no block observations")
	}
	type entry struct {
		d   *Distribution
		max time.Duration
	}
	entries := make([]entry, 0, len(r.perBlock))
	for _, samples := range r.perBlock {
		d := NewDistribution(samples)
		entries = append(entries, entry{d: d, max: d.Max()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].max < entries[j].max })
	return Extremes{
		Fastest: entries[0].d,
		Median:  entries[len(entries)/2].d,
		Slowest: entries[len(entries)-1].d,
	}, nil
}

// All returns the pooled distribution over every observation.
func (r *LatencyRecorder) All() *Distribution {
	all := make([]time.Duration, 0, r.count)
	for _, s := range r.perPeer {
		all = append(all, s...)
	}
	return NewDistribution(all)
}

// GroupedLatency partitions latency observations by an integer group key —
// the organization index in multi-org networks. Scenario reports use it to
// summarize each organization's epidemic independently (the paper's Fig. 1
// shape: per-org gossip domains) next to the network-wide distribution,
// which All assembles by merging the groups on demand. Keeping the
// aggregate virtual (instead of a live recorder every Record also feeds)
// lets each group take writes from its own shard of a sharded simulation
// with no shared state; call EnsureGroups up front so the group map itself
// is never mutated concurrently.
type GroupedLatency struct {
	groups map[int]*LatencyRecorder
	// scratch is the reusable sort buffer behind SummarizeAll and
	// SummarizeGroup: percentile queries gather samples into it and sort
	// in place, so re-querying allocates nothing once it has grown to the
	// largest query's size (BenchmarkGroupedLatencySummarizeAllocs gates
	// this). The All()/NewDistribution path copies every sample per query.
	scratch []time.Duration
}

// NewGroupedLatency returns an empty grouped recorder.
func NewGroupedLatency() *GroupedLatency {
	return &GroupedLatency{groups: make(map[int]*LatencyRecorder)}
}

// Record adds one observation to the group's recorder.
func (g *GroupedLatency) Record(group int, block uint64, peer wire.NodeID, latency time.Duration) {
	g.Group(group).Record(block, peer, latency)
}

// Group returns the recorder for one group, creating it on first use.
func (g *GroupedLatency) Group(group int) *LatencyRecorder {
	r, ok := g.groups[group]
	if !ok {
		r = NewLatencyRecorder()
		g.groups[group] = r
	}
	return r
}

// EnsureGroups pre-creates recorders for groups [0, n), so writers on
// different goroutines (one per group) never grow the map concurrently.
func (g *GroupedLatency) EnsureGroups(n int) {
	for i := 0; i < n; i++ {
		g.Group(i)
	}
}

// All returns an aggregate recorder pooling every group's observations,
// merged in ascending group order at call time.
func (g *GroupedLatency) All() *LatencyRecorder {
	out := NewLatencyRecorder()
	for _, k := range g.Groups() {
		r := g.groups[k]
		for peer, s := range r.perPeer {
			out.perPeer[peer] = append(out.perPeer[peer], s...)
		}
		for blk, s := range r.perBlock {
			out.perBlock[blk] = append(out.perBlock[blk], s...)
		}
		out.count += r.count
	}
	return out
}

// SummarizeAll computes the pooled Summary over every group's samples,
// reusing the recorder's scratch buffer. Quantiles of a multiset do not
// depend on gather order, so iterating the group map directly is safe, and
// the result is identical to Summarize(g.All().All()) without that path's
// two recorder copies and fresh sort slice per query.
func (g *GroupedLatency) SummarizeAll() Summary {
	buf := g.scratch[:0]
	for _, r := range g.groups {
		for _, s := range r.perPeer {
			buf = append(buf, s...)
		}
	}
	g.scratch = buf
	return SummarizeSamples(buf)
}

// SummarizeGroup computes one group's Summary with the same scratch reuse
// as SummarizeAll. Unknown groups summarize as empty.
func (g *GroupedLatency) SummarizeGroup(group int) Summary {
	buf := g.scratch[:0]
	if r, ok := g.groups[group]; ok {
		for _, s := range r.perPeer {
			buf = append(buf, s...)
		}
	}
	g.scratch = buf
	return SummarizeSamples(buf)
}

// Groups returns the group keys observed so far, in ascending order.
func (g *GroupedLatency) Groups() []int {
	out := make([]int, 0, len(g.groups))
	for k := range g.groups {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// RecoveryRecorder accumulates peer catch-up latencies from fault and churn
// scenarios: the time from a peer's restart (or staggered join) until its
// in-order ledger height reached the organization's injected height. It is
// the per-scenario recovery metric the scenario reports summarize.
type RecoveryRecorder struct {
	samples []time.Duration
}

// NewRecoveryRecorder returns an empty recorder.
func NewRecoveryRecorder() *RecoveryRecorder { return &RecoveryRecorder{} }

// Record adds one observation: a peer caught up after latency.
func (r *RecoveryRecorder) Record(latency time.Duration) {
	r.samples = append(r.samples, latency)
}

// Count returns the number of recorded recoveries.
func (r *RecoveryRecorder) Count() int { return len(r.samples) }

// Samples returns the raw observations, for merging recorders that took
// writes on separate goroutines. Callers must not mutate the slice.
func (r *RecoveryRecorder) Samples() []time.Duration { return r.samples }

// Distribution returns the recovery-latency distribution.
func (r *RecoveryRecorder) Distribution() *Distribution {
	return NewDistribution(r.samples)
}

// OverheadRatio relates total transmitted bytes to the ideal minimum of a
// dissemination workload: every one of blocks payloads of payloadBytes
// reaching each of receivers peers exactly once. A perfect protocol scores
// 1.0; redundant pushes, digests, heartbeats and recovery re-fetches raise
// it. Returns 0 when the ideal volume is zero.
func OverheadRatio(totalBytes uint64, payloadBytes, receivers, blocks int) float64 {
	ideal := float64(payloadBytes) * float64(receivers) * float64(blocks)
	if ideal <= 0 {
		return 0
	}
	return float64(totalBytes) / ideal
}

// Summary holds headline statistics of a distribution.
type Summary struct {
	N                   int
	Min, Mean, Max      time.Duration
	P50, P95, P99, P999 time.Duration
}

// Summarize computes a Summary.
func Summarize(d *Distribution) Summary {
	return Summary{
		N:    d.N(),
		Min:  d.Min(),
		Mean: d.Mean(),
		Max:  d.Max(),
		P50:  d.Quantile(0.50),
		P95:  d.Quantile(0.95),
		P99:  d.Quantile(0.99),
		P999: d.Quantile(0.999),
	}
}

// SummarizeSamples summarizes samples in place: the slice is sorted (not
// copied) and read directly, so callers owning a scratch slice get a
// Summary without allocating. Identical to Summarize(NewDistribution(s))
// — same multiset, same order statistics.
func SummarizeSamples(s []time.Duration) Summary {
	slices.Sort(s)
	n := len(s)
	if n == 0 {
		return Summary{}
	}
	q := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return s[idx]
	}
	var sum time.Duration
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:    n,
		Min:  s[0],
		Mean: sum / time.Duration(n),
		Max:  s[n-1],
		P50:  q(0.50),
		P95:  q(0.95),
		P99:  q(0.99),
		P999: q(0.999),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v mean=%v p95=%v p99=%v p99.9=%v max=%v",
		s.N, s.Min, s.P50, s.Mean, s.P95, s.P99, s.P999, s.Max)
}
