package scenario

import (
	"testing"
)

// runWithSwim instantiates a catalog entry, optionally strips the SWIM
// membership mechanisms (keeping the measurement sampler), and runs it.
func runWithSwim(t *testing.T, name string, swim bool, opt Options) *Report {
	t.Helper()
	def, err := Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	opt = opt.withDefaults()
	top, err := opt.topology()
	if err != nil {
		t.Fatal(err)
	}
	sc := def.Build(top)
	sc.Name = def.Name
	sc.SwimMembership = swim
	sc.MeasureMembership = true
	rep, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestViewConvergenceIsLoadBearing locks the tentpole claim end to end:
// org-view-convergence reaches a near-complete steady-state view only
// through the piggyback + shuffle machinery. The same script with the
// mechanisms disabled — plain fixed-fan-out heartbeats — stays a sparse
// sample, and its leader beliefs never settle.
func TestViewConvergenceIsLoadBearing(t *testing.T) {
	const peers = 150
	opt := Options{Peers: peers, Seed: 42}

	dense := runWithSwim(t, "org-view-convergence", true, opt)
	if dense.ViewSamples == 0 {
		t.Fatal("membership sampler never ran")
	}
	if dense.ViewCompleteness < 0.95 {
		t.Fatalf("SWIM view completeness = %.3f, want >= 0.95", dense.ViewCompleteness)
	}
	if dense.CaughtUp != dense.Survivors {
		t.Fatalf("%d of %d survivors caught up", dense.CaughtUp, dense.Survivors)
	}

	sparse := runWithSwim(t, "org-view-convergence", false, opt)
	if sparse.ViewCompleteness > 0.8 {
		t.Fatalf("baseline view completeness = %.3f: the sparse baseline lost its contrast "+
			"(fan-out heartbeats alone should not densify a %d-peer view)",
			sparse.ViewCompleteness, peers)
	}
	if dense.ViewCompleteness <= sparse.ViewCompleteness {
		t.Fatalf("piggyback+shuffle did not close the gap: %.3f (swim) vs %.3f (sparse)",
			dense.ViewCompleteness, sparse.ViewCompleteness)
	}
	// Leader convergence: the dense view settles and stays settled; the
	// sparse baseline's constant lapse/revive churn keeps perturbing some
	// peer's belief, so its convergence time degenerates toward the run's
	// end.
	if dense.LeaderConvergence >= sparse.LeaderConvergence {
		t.Fatalf("leader convergence %v (swim) not better than %v (sparse)",
			dense.LeaderConvergence, sparse.LeaderConvergence)
	}
}

// TestFlappingMembersSuspicionIsLoadBearing locks the suspicion mechanism:
// under org-flapping-members' packet loss, the SWIM run keeps false deaths
// (and the dead/alive transition churn they cause) far below the legacy
// baseline, while still detecting the genuinely crashed group.
func TestFlappingMembersSuspicionIsLoadBearing(t *testing.T) {
	const peers = 100
	opt := Options{Peers: peers, Seed: 42}

	swim := runWithSwim(t, "org-flapping-members", true, opt)
	if swim.CaughtUp != swim.Survivors {
		t.Fatalf("%d of %d survivors caught up", swim.CaughtUp, swim.Survivors)
	}
	legacy := runWithSwim(t, "org-flapping-members", false, opt)

	// Transition accounting differs structurally between the modes: the
	// SWIM run pays a one-time n^2 join wave as every view grows to the
	// whole organization, plus the scripted crash's genuine dead + rejoin
	// waves; compare the churn beyond that floor. The legacy baseline has
	// no join wave to subtract (its sparse views form and flap around the
	// same small sample).
	k := peers / 50 // the entry's victim count at this scale
	joinWave := peers * (peers - 1)
	crashWave := 2 * k * (peers - k)
	// The genuine crash must actually be declared: suspicion delays
	// death, it must not deny it. At least half the surviving views
	// declaring (and re-admitting) the victims proves the detection leg.
	if swim.Transitions < joinWave+crashWave/2 {
		t.Fatalf("suspicion denied the real crash: %d transitions, want >= %d (join wave %d + half the crash wave %d)",
			swim.Transitions, joinWave+crashWave/2, joinWave, crashWave)
	}
	swimChurn := swim.Transitions - joinWave - crashWave
	if swimChurn < 0 {
		swimChurn = 0
	}
	if legacy.Transitions <= joinWave {
		t.Fatalf("legacy baseline transitions = %d: loss did not induce flapping, "+
			"the scenario lost its contrast", legacy.Transitions)
	}
	if swimChurn*2 >= legacy.Transitions {
		t.Fatalf("suspicion did not suppress flapping: swim churn %d (of %d total) vs legacy %d",
			swimChurn, swim.Transitions, legacy.Transitions)
	}
	if swim.ViewCompleteness < 0.95 {
		t.Fatalf("view completeness under loss = %.3f, want >= 0.95", swim.ViewCompleteness)
	}
}

// TestMeasuredScenariosStayDeterministic runs both membership entries twice
// and demands identical fingerprints: the sampler, the piggyback queue, the
// probe state machine and the shuffle draws must all be deterministic in
// the seed.
func TestMeasuredScenariosStayDeterministic(t *testing.T) {
	for _, name := range []string{"org-view-convergence", "org-flapping-members"} {
		opt := Options{Peers: 60, Seed: 7}
		a, err := RunNamed(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunNamed(name, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("%s: repeated run diverged", name)
		}
		if a.ViewSamples == 0 {
			t.Fatalf("%s: no view samples in report", name)
		}
	}
}
