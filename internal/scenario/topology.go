package scenario

import (
	"fmt"
	"strings"
)

// Topology describes the organization layout a scenario runs on: Sizes[o]
// is organization o's peer count, and global peer indices are dense in org
// order (org 0 owns [0, Sizes[0]), org 1 the next Sizes[1] indices, ...).
// Organizations need not be the same size — asymmetric consortiums (one
// datacenter org, several small branches) are first-class. The single-org
// layout of the original catalog is Uniform(1, n).
type Topology struct {
	Sizes []int
}

// Uniform returns the homogeneous layout: orgs organizations of per peers.
func Uniform(orgs, per int) Topology {
	sizes := make([]int, orgs)
	for i := range sizes {
		sizes[i] = per
	}
	return Topology{Sizes: sizes}
}

// Orgs returns the organization count.
func (t Topology) Orgs() int { return len(t.Sizes) }

// Size returns organization org's peer count.
func (t Topology) Size(org int) int { return t.Sizes[org] }

// Total returns the network-wide peer count.
func (t Topology) Total() int {
	n := 0
	for _, s := range t.Sizes {
		n += s
	}
	return n
}

// OrgOf returns the organization index owning a global peer index.
func (t Topology) OrgOf(global int) int {
	for o, s := range t.Sizes {
		if global < s {
			return o
		}
		global -= s
	}
	return len(t.Sizes) - 1
}

// OrgLo returns the first global peer index of an organization.
func (t Topology) OrgLo(org int) int {
	lo := 0
	for o := 0; o < org; o++ {
		lo += t.Sizes[o]
	}
	return lo
}

// OrgHi returns one past the last global peer index of an organization.
func (t Topology) OrgHi(org int) int { return t.OrgLo(org) + t.Sizes[org] }

// OrgSpan returns the organization's global peer indices.
func (t Topology) OrgSpan(org int) []int { return span(t.OrgLo(org), t.OrgHi(org)) }

// Uniform reports whether every organization has the same size.
func (t Topology) IsUniform() bool {
	for _, s := range t.Sizes[1:] {
		if s != t.Sizes[0] {
			return false
		}
	}
	return true
}

// String renders the layout, e.g. "4 orgs x 250 peers" or
// "3 orgs (10+6+4 peers)".
func (t Topology) String() string {
	if t.Orgs() == 1 {
		return fmt.Sprintf("%d peers", t.Sizes[0])
	}
	if t.IsUniform() {
		return fmt.Sprintf("%d orgs x %d peers", t.Orgs(), t.Sizes[0])
	}
	parts := make([]string, len(t.Sizes))
	for i, s := range t.Sizes {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return fmt.Sprintf("%d orgs (%s peers)", t.Orgs(), strings.Join(parts, "+"))
}
