package scenario

import "fmt"

// Topology describes the organization layout a scenario runs on: Orgs
// organizations of PeersPerOrg peers each, with global dense peer indices
// (org o owns [o*PeersPerOrg, (o+1)*PeersPerOrg)). The single-org layout of
// the original catalog is Topology{Orgs: 1, PeersPerOrg: n}.
type Topology struct {
	Orgs        int
	PeersPerOrg int
}

// Total returns the network-wide peer count.
func (t Topology) Total() int { return t.Orgs * t.PeersPerOrg }

// OrgOf returns the organization index owning a global peer index.
func (t Topology) OrgOf(global int) int { return global / t.PeersPerOrg }

// OrgLo returns the first global peer index of an organization.
func (t Topology) OrgLo(org int) int { return org * t.PeersPerOrg }

// OrgHi returns one past the last global peer index of an organization.
func (t Topology) OrgHi(org int) int { return (org + 1) * t.PeersPerOrg }

// OrgSpan returns the organization's global peer indices.
func (t Topology) OrgSpan(org int) []int { return span(t.OrgLo(org), t.OrgHi(org)) }

// String renders the layout, e.g. "4 orgs x 250 peers".
func (t Topology) String() string {
	if t.Orgs == 1 {
		return fmt.Sprintf("%d peers", t.PeersPerOrg)
	}
	return fmt.Sprintf("%d orgs x %d peers", t.Orgs, t.PeersPerOrg)
}
