package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"fabricgossip/internal/metrics"
	"fabricgossip/internal/obs"
	"fabricgossip/internal/workload"
)

// OrgReport is one organization's slice of a scenario run: its own gossip
// domain's delivery, catch-up, recovery and latency figures.
type OrgReport struct {
	Org     int
	Variant string
	Peers   int

	// Delivered counts distinct blocks the ordering service streamed into
	// this organization.
	Delivered int

	// Survivors is how many of the organization's peers were live at the
	// end; CaughtUp how many of them had committed every injected block.
	Survivors         int
	CaughtUp          int
	PendingRecoveries int

	// Recovery summarizes the organization's rejoin-with-catchup
	// latencies; Latency its intra-org dissemination latencies (first
	// reception relative to the block entering the organization).
	Recovery metrics.Summary
	Latency  metrics.Summary

	// InBytes is the total bytes entering the organization's NICs;
	// Overhead relates it to the ideal minimum of every delivered block
	// reaching each member exactly once.
	InBytes  uint64
	Overhead float64
}

// Report is everything a scenario run measured. All fields derive
// deterministically from (scenario, Options); Fingerprint hashes them so
// two runs can be compared byte for byte.
type Report struct {
	Scenario string
	Variant  string
	Peers    int
	Orgs     int
	Seed     int64

	// BlocksInjected counts distinct blocks the ordering service delivered
	// into at least one organization.
	BlocksInjected int
	// BlockBytes is the encoded size of one workload block.
	BlockBytes int

	// Survivors is how many peers were live at the end of the run;
	// CaughtUp how many of them had committed every injected block in
	// order. The catalog's scenarios all end with Survivors == CaughtUp.
	Survivors int
	CaughtUp  int
	// OrderViolations counts commits that skipped or repeated a height —
	// always zero unless the in-order delivery invariant broke.
	OrderViolations int

	// Recoveries summarizes rejoin-with-catchup latency: restart (or
	// staggered join) to fully caught up. PendingRecoveries counts peers
	// that were still behind when the run ended.
	Recoveries        metrics.Summary
	PendingRecoveries int

	// Latency summarizes dissemination latency network-wide: each peer's
	// first reception relative to the block entering its organization.
	Latency metrics.Summary

	// Transitions counts membership live/dead observations across all
	// peers (failure detection and rejoin events).
	Transitions int

	// TotalBytes is all bytes leaving any NIC; Overhead relates it to the
	// ideal minimum of every block reaching every other peer exactly once.
	TotalBytes uint64
	Overhead   float64

	// SyncBytes and SyncMessages attribute the recovery plane's share of
	// the traffic: StateRequest plus StateResponse bytes and message
	// counts (the statesync engine's fetch/serve volume, including any
	// cross-org anchor transfers). They are deterministic per seed but
	// deliberately excluded from String — and therefore from Fingerprint —
	// so their introduction does not move the checked-in fingerprints of
	// pre-existing catalog entries. TotalBytes already covers them.
	SyncBytes    uint64
	SyncMessages uint64

	// ViewSamples counts membership-view samples taken (zero unless the
	// scenario sets MeasureMembership; the membership report line — and
	// its contribution to the fingerprint — exists only then, so
	// pre-existing fingerprints are unaffected). ViewCompleteness is the
	// steady-state (final-sample) mean over live peers of |live view ∩
	// actually live| / |actually live| within each peer's organization:
	// 1.0 means every live peer sees the whole live organization.
	// LeaderConvergence is when every live peer's believed leader last
	// settled on its organization's true leader (the run's end if they
	// never all agreed).
	ViewSamples       int
	ViewCompleteness  float64
	LeaderConvergence time.Duration

	// Consenters is the ordering cluster's size (zero for the legacy
	// single orderer; the ordering-cluster report line — and its
	// contribution to the fingerprint — exists only when it is set, so
	// pre-existing fingerprints are unaffected). Elections counts leader
	// emergences (the initial election included); Leaderless is the total
	// time the cluster had no leader (election_ms); DeliverGap is the
	// widest gap between consecutive first-time block deliveries any
	// organization observed (deliver_gap_ms); AnchorProbes counts
	// cross-org anchor probes fired by org leaders — the spurious-recovery
	// question: an election shorter than the orderer-stall threshold must
	// leave it at zero.
	Consenters   int
	Elections    int
	Leaderless   time.Duration
	DeliverGap   time.Duration
	AnchorProbes uint64

	// Workload is the transaction workload plane's outcome (nil unless
	// the scenario set a Workload config; the workload report lines — and
	// their contribution to the fingerprint — exist only then, so
	// pre-existing fingerprints are unaffected).
	Workload *workload.Stats

	// EngineEvents is the number of discrete events the engine executed
	// (summed across shards, in sharded mode).
	EngineEvents uint64

	// Sharded reports whether the run actually used the sharded parallel
	// engine (a Sharded request falls back sequential when the latency
	// model leaves no lookahead window). PeakPending is the event queues'
	// high-water mark — the largest any single engine's pending set grew.
	// Both are excluded from String — and therefore from Fingerprint —
	// like SyncBytes: Sharded is config echo and PeakPending a capacity
	// diagnostic, so neither moves pre-existing fingerprints.
	Sharded     bool
	PeakPending int

	// BarrierFull and BarrierElided count the sharded coordinator's window
	// edges that ran the full barrier ceremony versus those the adaptive
	// lookahead skipped (provably-no-op edges: no inbox traffic, no control
	// event due, no hook work requested). Wall-side diagnostics like
	// PeakPending — excluded from String and Fingerprint; the elision must
	// be observably free, and the equivalence property test asserts the
	// fingerprints match the fixed-lookahead run's byte for byte.
	BarrierFull   uint64
	BarrierElided uint64

	// HeapHighWater is the process heap's high-water mark over the run
	// (runtime.ReadMemStats samples at window barriers in sharded mode, at
	// injection/fault instants sequentially). It is wall-side state, not
	// simulation output, so like PeakPending it is excluded from String —
	// and therefore from Fingerprint. The 100k benchmark tier gates
	// bytes_per_peer = HeapHighWater / peers from it.
	HeapHighWater uint64

	// OrgReports breaks the run down per organization, in org order.
	OrgReports []OrgReport

	// Trace is the deterministic event log of the run.
	Trace []string

	// Obs is the run's unified metrics inventory: the transport's
	// wire-level instruments merged across emission contexts plus every
	// report counter re-registered under one namespace (see
	// runner.buildObs). Always populated. Like the other wall-side
	// diagnostics it is excluded from String — and therefore from
	// Fingerprint — so its growth never moves checked-in fingerprints.
	Obs *obs.Snapshot

	// Events is the merged structured event trace (Options.Trace only),
	// ordered by (time, emission context, emission order) — deterministic
	// per seed regardless of GOMAXPROCS. Excluded from String and
	// Fingerprint: the trace points are passive, and the determinism test
	// asserts a traced run's fingerprint matches the untraced run's.
	Events []obs.Event

	// Series is the per-window time-series sampling (Options.TimeSeries
	// only). Excluded from String and Fingerprint.
	Series *obs.Series

	// FlightDump is the path of the flight-recorder dump written during
	// this run, if any (Options.FlightRing armed and a violation or leak
	// fired). Excluded from String and Fingerprint.
	FlightDump string
}

// String renders the report (without the trace) as a stable multi-line
// block. Multi-organization runs append one line per organization.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s variant=%s peers=%d orgs=%d seed=%d\n",
		r.Scenario, r.Variant, r.Peers, r.Orgs, r.Seed)
	fmt.Fprintf(&b, "  blocks injected: %d (%d B each)\n", r.BlocksInjected, r.BlockBytes)
	fmt.Fprintf(&b, "  survivors: %d/%d caught up, %d order violations, %d pending recoveries\n",
		r.CaughtUp, r.Survivors, r.OrderViolations, r.PendingRecoveries)
	fmt.Fprintf(&b, "  recoveries: %s\n", r.Recoveries)
	fmt.Fprintf(&b, "  dissemination: %s\n", r.Latency)
	fmt.Fprintf(&b, "  membership transitions: %d\n", r.Transitions)
	if r.ViewSamples > 0 {
		fmt.Fprintf(&b, "  membership view: completeness %.3f, leader convergence %v (%d samples)\n",
			r.ViewCompleteness, r.LeaderConvergence, r.ViewSamples)
	}
	if r.Consenters > 0 {
		fmt.Fprintf(&b, "  ordering cluster: %d consenters, %d elections, leaderless %v, deliver gap %v, %d anchor probes\n",
			r.Consenters, r.Elections, r.Leaderless, r.DeliverGap, r.AnchorProbes)
	}
	if r.Workload != nil {
		w := r.Workload
		fmt.Fprintf(&b, "  workload: %d submitted, %d committed, %d conflicts (rate %.4f), %d retries\n",
			w.Submitted, w.Committed, w.Conflicts, w.ConflictRate(), w.Retries)
		fmt.Fprintf(&b, "  workload ordering: %d tx ordered, %d blocks cut (%d by size, %d by timeout)\n",
			w.OrderedTx, w.BlocksCut, w.CutBySize, w.CutByTimeout)
		fmt.Fprintf(&b, "  workload errors: %d proposal conflicts, %d endorse, %d submit, %d commit\n",
			w.ProposalConflicts, w.EndorseErrors, w.SubmitErrors, w.CommitErrors)
		fmt.Fprintf(&b, "  workload latency: %s\n", w.Latency)
		if r.Orgs > 1 {
			for _, ow := range w.Orgs {
				fmt.Fprintf(&b, "  workload org %d: %d submitted, %d committed, %d conflicts, %d retries, latency p99=%v\n",
					ow.Org, ow.Submitted, ow.Committed, ow.Conflicts, ow.Retries, ow.Latency.P99)
			}
		}
	}
	fmt.Fprintf(&b, "  traffic: %.2f MB, overhead %.2fx ideal\n", float64(r.TotalBytes)/1e6, r.Overhead)
	if r.Orgs > 1 {
		for _, or := range r.OrgReports {
			fmt.Fprintf(&b, "  org %d [%s]: delivered %d, %d/%d caught up, %d pending; "+
				"recovery p99=%v, latency p99=%v, %.2f MB in, overhead %.2fx\n",
				or.Org, or.Variant, or.Delivered, or.CaughtUp, or.Survivors,
				or.PendingRecoveries, or.Recovery.P99, or.Latency.P99,
				float64(or.InBytes)/1e6, or.Overhead)
		}
	}
	fmt.Fprintf(&b, "  engine events: %d", r.EngineEvents)
	return b.String()
}

// Fingerprint returns a hex digest over the report and its full trace: two
// runs with the same scenario, options and seed must produce identical
// fingerprints (the determinism property the test suite enforces).
func (r *Report) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintln(h, r.String())
	for _, line := range r.Trace {
		fmt.Fprintln(h, line)
	}
	return hex.EncodeToString(h.Sum(nil))
}
