package scenario

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fabricgossip/internal/harness"
)

// goldenPath holds the checked-in per-scenario report fingerprints. Each
// line is "<scenario>/<variant>/peers=<n>/seed=<s> <sha256>".
const goldenPath = "testdata/fingerprints.golden"

type goldenCase struct {
	name string
	opt  Options
}

// goldenCases enumerates the full catalog for both protocol variants at a
// fixed small scale (the same runs are deterministic at any scale; 20 peers
// keeps the suite fast). org-mixed-protocols pins a protocol per org, so a
// variant sweep would repeat the same epidemic under two labels — it runs
// once, like in CI.
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, d := range Catalog() {
		variants := []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced}
		if d.Name == "org-mixed-protocols" {
			variants = variants[1:]
		}
		for _, v := range variants {
			cases = append(cases, goldenCase{
				name: d.Name,
				opt:  Options{Peers: 20, Seed: 42, Variant: v},
			})
		}
	}
	return cases
}

func goldenKey(name string, opt Options) string {
	return fmt.Sprintf("%s/%s/peers=%d/seed=%d", name, opt.Variant, opt.Peers, opt.Seed)
}

// TestGoldenFingerprints locks the byte-exact output of every catalog
// scenario: any change to the hot path (event pooling, traffic accounting,
// peer sampling) that shifts even one random draw or reorders one event
// moves a fingerprint and fails here. Regenerate deliberately with
//
//	UPDATE_GOLDEN=1 go test ./internal/scenario -run TestGoldenFingerprints
//
// and review the diff like any other behavior change.
func TestGoldenFingerprints(t *testing.T) {
	got := make(map[string]string)
	var keys []string
	for _, c := range goldenCases() {
		key := goldenKey(c.name, c.opt)
		rep, err := RunNamed(c.name, c.opt)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		got[key] = rep.Fingerprint()
		keys = append(keys, key)
	}
	sort.Strings(keys)

	if os.Getenv("UPDATE_GOLDEN") != "" {
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s %s\n", k, got[k])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(keys), goldenPath)
		return
	}

	want, err := readGolden(t)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", goldenPath, err)
	}
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with UPDATE_GOLDEN=1)", k)
			continue
		}
		if got[k] != w {
			t.Errorf("%s: fingerprint drifted\n  golden: %s\n  got:    %s", k, w, got[k])
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: stale golden entry for a case the suite no longer runs", k)
		}
	}
}

func readGolden(t *testing.T) (map[string]string, error) {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed golden line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	return out, sc.Err()
}
