package scenario

import (
	"testing"
	"time"
)

// The acceptance bar for the ordering cluster: with one of three
// consenters crashed the remaining majority keeps ordering, the workload's
// books balance exactly (every submitted transaction either commits or
// conflicts — nothing is lost in the failover), and every surviving peer
// ends caught up.
func TestConsenterMinorityLossSustainsCommits(t *testing.T) {
	rep, err := RunNamed("consenter-minority-loss", Options{Peers: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consenters != 3 {
		t.Fatalf("consenters = %d, want 3", rep.Consenters)
	}
	w := rep.Workload
	if w == nil {
		t.Fatal("no workload stats")
	}
	if w.Committed == 0 {
		t.Fatal("no transactions committed with a minority of consenters down")
	}
	if w.Submitted != w.Committed+w.Conflicts {
		t.Fatalf("accounting drift: %d submitted != %d committed + %d conflicts",
			w.Submitted, w.Committed, w.Conflicts)
	}
	if rep.CaughtUp != rep.Survivors || rep.PendingRecoveries != 0 {
		t.Fatalf("%d/%d caught up, %d pending — minority loss must not stall delivery",
			rep.CaughtUp, rep.Survivors, rep.PendingRecoveries)
	}
	if rep.OrderViolations != 0 {
		t.Fatalf("%d order violations", rep.OrderViolations)
	}
}

// Losing two of three consenters halts ordering outright — the cluster
// must go leaderless for essentially the whole outage window — and the
// heal must elect a leader again and drain the entire backlog: every
// injected block reaches every surviving peer.
func TestConsenterMajorityLossHaltsThenHeals(t *testing.T) {
	rep, err := RunNamed("consenter-majority-loss-and-heal", Options{Peers: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Crash at ~2.6s, restarts at ~8s: the cluster cannot have a quorum in
	// between, so the leaderless total must cover most of that window.
	if rep.Leaderless < 4*time.Second {
		t.Fatalf("leaderless %v, want > 4s — the majority loss did not halt ordering", rep.Leaderless)
	}
	if rep.DeliverGap < 4*time.Second {
		t.Fatalf("deliver gap %v, want > 4s — deliveries continued through the halt", rep.DeliverGap)
	}
	if rep.BlocksInjected != 10 {
		t.Fatalf("blocks injected = %d, want the full 10 (backlog must drain after the heal)",
			rep.BlocksInjected)
	}
	if rep.CaughtUp != rep.Survivors || rep.PendingRecoveries != 0 {
		t.Fatalf("%d/%d caught up, %d pending — backlog did not fully resolve",
			rep.CaughtUp, rep.Survivors, rep.PendingRecoveries)
	}
	if rep.OrderViolations != 0 {
		t.Fatalf("%d order violations", rep.OrderViolations)
	}
}

// The anchor-probe experiment: does a Raft election masquerade as an
// orderer outage and trip cross-org anchor recovery? Run the
// election-under-txload entry across a handful of seeds twice — once as
// shipped (leader crashed at 4s) and once with the crash removed — and
// compare total anchor-probe counts. The election closes in well under
// the 5s orderer-stall threshold, so it must contribute nothing. Both
// arms DO probe a little — membership heartbeats go to a random fanout,
// so a peer occasionally loses sight of its org leader, briefly believes
// it leads, and (never having been a deliver-stream target) reads its
// stall clock as expired. That flap noise predates the ordering cluster
// and is seed-dependent but election-independent (the two arms' per-seed
// counts fully interleave), so the assertion pins the seed-summed
// difference: a genuine stall misfire would add a probe per org leader
// per 2s anchor tick for the ~22s each run continues past the election —
// tens of probes per seed, far outside the noise band.
func TestConsenterElectionDoesNotTripAnchorRecovery(t *testing.T) {
	def, err := Lookup("consenter-election-under-txload")
	if err != nil {
		t.Fatal(err)
	}
	top := Uniform(2, 10)
	sc := def.Build(top)
	sc.Name = def.Name

	var control Scenario
	control = sc
	control.Events = nil
	for _, ev := range sc.Events {
		if _, ok := ev.Action.(CrashConsenterLeader); ok {
			continue
		}
		control.Events = append(control.Events, ev)
	}

	var withProbes, ctrlProbes uint64
	for seed := int64(1); seed <= 5; seed++ {
		opt := Options{Peers: 20, Orgs: 2, Seed: seed}
		withCrash, err := Run(sc, opt)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := Run(control, opt)
		if err != nil {
			t.Fatal(err)
		}
		if withCrash.Elections != 2 {
			t.Fatalf("seed %d with crash: %d elections, want the failover election on top of the initial one",
				seed, withCrash.Elections)
		}
		if ctrl.Elections != 1 {
			t.Fatalf("seed %d control: %d elections, want exactly the initial one", seed, ctrl.Elections)
		}
		if withCrash.Leaderless >= 5*time.Second {
			t.Fatalf("seed %d with crash: leaderless %v reached the orderer-stall threshold — the premise is void",
				seed, withCrash.Leaderless)
		}
		if w := withCrash.Workload; w.Submitted != w.Committed+w.Conflicts {
			t.Fatalf("seed %d: accounting drift across the election: %d != %d + %d",
				seed, w.Submitted, w.Committed, w.Conflicts)
		}
		withProbes += withCrash.AnchorProbes
		ctrlProbes += ctrl.AnchorProbes
	}
	t.Logf("anchor probes over 5 seeds: with election %d, control %d", withProbes, ctrlProbes)
	if withProbes > ctrlProbes+30 {
		t.Fatalf("with election %d probes vs control %d over 5 seeds — the election tripped anchor recovery",
			withProbes, ctrlProbes)
	}
}
