package scenario

import (
	"testing"

	"fabricgossip/internal/harness"
)

// The determinism property: the same seed must produce byte-identical event
// traces and metrics across repeated runs, including runs with fault
// events. Every catalog scenario is exercised for both protocol variants.
func TestEveryScenarioIsDeterministic(t *testing.T) {
	for _, d := range Catalog() {
		for _, variant := range []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced} {
			d, variant := d, variant
			t.Run(d.Name+"/"+string(variant), func(t *testing.T) {
				t.Parallel()
				opt := Options{Peers: 20, Seed: 42, Variant: variant}
				a, err := RunNamed(d.Name, opt)
				if err != nil {
					t.Fatal(err)
				}
				b, err := RunNamed(d.Name, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(a.Trace) != len(b.Trace) {
					t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
				}
				for i := range a.Trace {
					if a.Trace[i] != b.Trace[i] {
						t.Fatalf("traces diverge at line %d:\n  %s\n  %s", i, a.Trace[i], b.Trace[i])
					}
				}
				if a.String() != b.String() {
					t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
				}
				if a.Fingerprint() != b.Fingerprint() {
					t.Fatal("fingerprints differ despite identical reports")
				}
			})
		}
	}
}

// Different seeds must actually change the run (the fingerprint is not a
// constant).
func TestDifferentSeedsProduceDifferentRuns(t *testing.T) {
	a, err := RunNamed("crash-restart", Options{Peers: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed("crash-restart", Options{Peers: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical fingerprints")
	}
}
