package scenario

import (
	"fmt"
	"sort"
	"time"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/workload"
)

// Def is a named catalog entry: a scenario template instantiated for a
// concrete topology, so the same fault script scales from tens to thousands
// of peers and from one organization to many.
type Def struct {
	Name        string
	Description string
	// MinOrgs is the smallest organization count the script needs; 0 or 1
	// means the entry runs on any topology. RunNamed bumps the requested
	// org count up to it automatically.
	MinOrgs int
	// Sizes, when set, shapes the requested total peer count into an
	// explicit per-org layout (asymmetric consortiums), overriding the
	// uniform Peers/Orgs split. RunNamed feeds the result through
	// Options.OrgSizes unless the caller already set their own.
	Sizes func(totalPeers int) []int
	Build func(top Topology) Scenario
}

// catalog holds the built-in scenarios, keyed by name.
var catalog = map[string]Def{}

// asymConsortiumSizes splits a total peer count into the asymmetric 3-org
// layout of org-asym-consortium: roughly half the peers in the datacenter
// organization, the rest split 3:2 across the two branches, every
// organization at least 2 peers. 20 peers become 10+6+4.
func asymConsortiumSizes(total int) []int {
	if total < 6 {
		total = 6
	}
	a := total / 2
	b := (total - a) * 3 / 5
	c := total - a - b
	if b < 2 {
		b = 2
	}
	if c < 2 {
		c = 2
	}
	a = total - b - c
	return []int{a, b, c}
}

func register(d Def) {
	catalog[d.Name] = d
}

// Catalog returns the built-in scenario definitions sorted by name.
func Catalog() []Def {
	out := make([]Def, 0, len(catalog))
	for _, d := range catalog {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of the built-in scenarios.
func Names() []string {
	defs := Catalog()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Def, error) {
	d, ok := catalog[name]
	if !ok {
		return Def{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return d, nil
}

func init() {
	register(Def{
		Name: "crash-restart",
		Description: "a tenth of the organization crashes mid-dissemination and " +
			"restarts cold two and a half seconds later, catching up through recovery",
		Build: func(top Topology) Scenario {
			n := top.Total()
			k := max(1, n/10)
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 1500 * time.Millisecond, Action: CrashPeers{Peers: span(1, 1+k)}},
					{At: 4 * time.Second, Action: RestartAll{}},
				},
			}
		},
	})
	register(Def{
		Name: "leader-failover",
		Description: "the leader peer crashes mid-run, the ordering service fails " +
			"over to the next live peer, and the old leader later rejoins and catches up",
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        1500 * time.Millisecond,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 2500 * time.Millisecond, Action: CrashLeader{}},
					{At: 10 * time.Second, Action: RestartPeers{Peers: []int{0}}},
				},
			}
		},
	})
	register(Def{
		Name: "partition-heal",
		Description: "the network splits in half during dissemination; the minority " +
			"side misses blocks until the partition heals and recovery closes the gaps",
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:        8,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          35 * time.Second,
				Events: []Event{
					{At: 1200 * time.Millisecond, Action: PartitionSplit{Split: top.Total() / 2}},
					{At: 6 * time.Second, Action: HealPartition{}},
				},
			}
		},
	})
	register(Def{
		Name: "churn",
		Description: "three consecutive crash/restart waves roll through the " +
			"organization while blocks keep flowing",
		Build: func(top Topology) Scenario {
			n := top.Total()
			k := max(1, n/20)
			waveA := span(1, 1+k)
			waveB := span(1+k, 1+2*k)
			waveC := span(1+2*k, 1+3*k)
			return Scenario{
				Blocks:        12,
				BlockInterval: 500 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				Events: []Event{
					{At: 2 * time.Second, Action: CrashPeers{Peers: waveA}},
					{At: 4500 * time.Millisecond, Action: RestartPeers{Peers: waveA}},
					{At: 4500 * time.Millisecond, Action: CrashPeers{Peers: waveB}},
					{At: 7 * time.Second, Action: RestartPeers{Peers: waveB}},
					{At: 7 * time.Second, Action: CrashPeers{Peers: waveC}},
					{At: 9500 * time.Millisecond, Action: RestartPeers{Peers: waveC}},
				},
			}
		},
	})
	register(Def{
		Name: "slow-links",
		Description: "a tenth of the peers turn into stragglers (+30ms on every " +
			"link) mid-run, then return to normal",
		Build: func(top Topology) Scenario {
			n := top.Total()
			slow := span(n-max(1, n/10), n)
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          20 * time.Second,
				Events: []Event{
					{At: time.Second, Action: SlowPeers{Peers: slow, Extra: 30 * time.Millisecond}},
					{At: 8 * time.Second, Action: SlowPeers{Peers: slow}},
				},
			}
		},
	})
	register(Def{
		Name: "staggered-join",
		Description: "half the organization (a second org joining the channel) " +
			"starts offline and joins in two staggered waves, each catching up from zero",
		Build: func(top Topology) Scenario {
			n := top.Total()
			lo := n / 2
			mid := lo + (n-lo)/2
			return Scenario{
				Blocks:        8,
				BlockInterval: 500 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				InitialDown:   span(lo, n),
				Events: []Event{
					{At: 3 * time.Second, Action: RestartPeers{Peers: span(lo, mid)}},
					{At: 6 * time.Second, Action: RestartPeers{Peers: span(mid, n)}},
				},
			}
		},
	})
	register(Def{
		Name: "flaky-network",
		Description: "15% uniform packet loss throughout dissemination; the " +
			"epidemic's redundancy and recovery must still deliver everything",
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 500 * time.Millisecond, Action: PacketLoss{Rate: 0.15}},
					{At: 12 * time.Second, Action: PacketLoss{}},
				},
			}
		},
	})

	// --- multi-organization entries (the paper's Fig. 1 deployment shape) ---

	register(Def{
		Name: "org-partition-heal",
		Description: "an entire organization is cut off from the ordering service " +
			"and every other org mid-dissemination; after the heal the orderer " +
			"re-streams the backlog and intra-org gossip closes the gaps",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			victim := top.Orgs() - 1
			return Scenario{
				Blocks:        8,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				Events: []Event{
					{At: 1200 * time.Millisecond, Action: IsolateOrgs{Orgs: []int{victim}}},
					{At: 6 * time.Second, Action: HealPartition{}},
				},
			}
		},
	})
	register(Def{
		Name: "org-leader-failover",
		Description: "one organization's leader crashes mid-run while the other " +
			"orgs disseminate undisturbed; the deliver stream fails over within the " +
			"org and the cold-restarted ex-leader replays it from its own height",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        1500 * time.Millisecond,
				Tail:          35 * time.Second,
				Events: []Event{
					{At: 2500 * time.Millisecond, Action: CrashOrgLeader{Org: 1}},
					{At: 10 * time.Second, Action: RestartOrg{Org: 1}},
				},
			}
		},
	})
	register(Def{
		Name: "org-cold-join",
		Description: "a whole organization starts offline and joins mid-run; its " +
			"peers catch up from block zero through the orderer's deliver stream " +
			"plus intra-org recovery (deep catch-up)",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			victim := top.Orgs() - 1
			return Scenario{
				Blocks:        12,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          45 * time.Second,
				InitialDown:   top.OrgSpan(victim),
				Events: []Event{
					{At: 4 * time.Second, Action: RestartOrg{Org: victim}},
				},
			}
		},
	})
	register(Def{
		Name: "org-outage-orderer-down",
		Description: "an entire organization crashes mid-dissemination, then the " +
			"ordering service itself dies; the org restarts cold with the orderer " +
			"still down and recovers every block through remote orgs' anchor peers " +
			"over WAN links (cross-org state transfer)",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			victim := top.Orgs() - 1
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          45 * time.Second,
				// The whole point of the entry: the only way back for the
				// victim organization is the anchor-peer path, with realistic
				// inter-site latency on every cross-org hop.
				AnchorRecovery: true,
				WANDelay:       20 * time.Millisecond,
				Events: []Event{
					{At: 1500 * time.Millisecond, Action: CrashOrg{Org: victim}},
					{At: 5 * time.Second, Action: CrashOrderer{}},
					{At: 8 * time.Second, Action: RestartOrg{Org: victim}},
				},
			}
		},
	})
	register(Def{
		Name: "org-asym-consortium",
		Description: "an asymmetric consortium — one datacenter organization and " +
			"two much smaller branches; the smallest branch cold-joins mid-run and " +
			"must catch up from zero while the big org's epidemic dominates traffic",
		MinOrgs: 3,
		Sizes:   asymConsortiumSizes,
		Build: func(top Topology) Scenario {
			victim := top.Orgs() - 1 // the smallest branch
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				InitialDown:   top.OrgSpan(victim),
				Events: []Event{
					{At: 4 * time.Second, Action: RestartOrg{Org: victim}},
				},
			}
		},
	})
	// --- dense-membership entries (SWIM piggyback / suspicion / shuffle) ---

	register(Def{
		Name: "org-view-convergence",
		Description: "a cold-started organization converges its membership views to " +
			"completeness under the SWIM extensions (piggybacked events + view " +
			"shuffling): with fixed heartbeat fan-out alone the thousand-peer view " +
			"stays a sparse sample and leader beliefs never settle",
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:            6,
				BlockInterval:     500 * time.Millisecond,
				Warmup:            time.Second,
				Tail:              40 * time.Second,
				SwimMembership:    true,
				MeasureMembership: true,
			}
		},
	})
	register(Def{
		Name: "org-flapping-members",
		Description: "heavy packet loss starves the direct heartbeat sample while a " +
			"small group genuinely crashes and rejoins: suspicion + refutation must " +
			"keep lossy-but-live peers out of the dead state (no flapping) while " +
			"still declaring the real crash",
		Build: func(top Topology) Scenario {
			n := top.Total()
			k := max(1, n/50)
			victims := span(n-k, n)
			return Scenario{
				Blocks:            8,
				BlockInterval:     400 * time.Millisecond,
				Warmup:            time.Second,
				Tail:              40 * time.Second,
				SwimMembership:    true,
				MeasureMembership: true,
				Events: []Event{
					{At: time.Second, Action: PacketLoss{Rate: 0.25}},
					// The crash window must outlast detection (a probe
					// round to raise the suspicion plus the 10 s suspect
					// timeout to confirm it), or the restart's refutation
					// would clear every suspicion before a single death
					// was declared and the "real crash" leg of the
					// scenario would never exercise.
					{At: 8 * time.Second, Action: CrashPeers{Peers: victims}},
					{At: 22 * time.Second, Action: PacketLoss{}},
					{At: 30 * time.Second, Action: RestartPeers{Peers: victims}},
				},
			}
		},
	})

	register(Def{
		Name: "org-mixed-protocols",
		Description: "organizations alternate between the original and enhanced " +
			"protocols on the same channel under transient packet loss — the " +
			"per-org report compares both epidemics side by side",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			variants := make([]harness.Variant, top.Orgs())
			for o := range variants {
				if o%2 == 0 {
					variants[o] = harness.VariantOriginal
				} else {
					variants[o] = harness.VariantEnhanced
				}
			}
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          35 * time.Second,
				OrgVariants:   variants,
				Events: []Event{
					{At: time.Second, Action: PacketLoss{Rate: 0.10}},
					{At: 8 * time.Second, Action: PacketLoss{}},
				},
			}
		},
	})

	// --- transaction workload entries (end-to-end execute-order-validate) ---

	register(Def{
		Name: "txload-steady",
		Description: "a steady Poisson transaction load drives the full " +
			"execute-order-validate pipeline fault-free: per-org clients endorse, " +
			"a real ordering service cuts blocks, every peer validates and " +
			"commits — the workload-plane baseline for throughput, conflict rate " +
			"and commit latency",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup: time.Second,
				Tail:   25 * time.Second,
				Workload: &workload.Config{
					ClientsPerOrg: 2,
					Rate:          5,
					Arrival:       workload.ArrivalPoisson,
					Keys:          64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 6 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "txload-hotkey-contention",
		Description: "a Zipf-skewed workload hammers a handful of hot keys: " +
			"colliding increments of the same key within a block window lose the " +
			"MVCC check and retry, so the conflict rate climbs far above the " +
			"uniform-keyspace baseline (the paper's §II-C invalidation path under " +
			"real contention)",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup: time.Second,
				Tail:   25 * time.Second,
				Workload: &workload.Config{
					ClientsPerOrg: 4,
					Rate:          10,
					Arrival:       workload.ArrivalFixed,
					Keys:          256,
					ZipfS:         1.5,
					RetryMax:      2,
					BatchTimeout:  500 * time.Millisecond,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 6 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "txload-org-outage-under-load",
		Description: "an entire organization crashes while transactions keep " +
			"flowing: its clients' proposals fail (no live endorsers) until the " +
			"org restarts cold, catches up through the deliver stream and resumes " +
			"endorsing — in-flight transactions of the victim org resolve only " +
			"once its peers recommit the backlog",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			victim := top.Orgs() - 1
			return Scenario{
				Warmup: time.Second,
				Tail:   30 * time.Second,
				Workload: &workload.Config{
					ClientsPerOrg: 2,
					Rate:          5,
					Arrival:       workload.ArrivalPoisson,
					Keys:          64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 2500 * time.Millisecond, Action: CrashOrg{Org: victim}},
					{At: 6 * time.Second, Action: RestartOrg{Org: victim}},
					{At: 9 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "txload-leader-failover-under-load",
		Description: "organization 0's leader — also one of its endorsing " +
			"peers — crashes mid-load: the deliver stream fails over, the second " +
			"endorser keeps proposals flowing, and the restarted ex-leader " +
			"catches up while commits continue",
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup: time.Second,
				Tail:   30 * time.Second,
				Workload: &workload.Config{
					ClientsPerOrg:   2,
					Rate:            5,
					Arrival:         workload.ArrivalPoisson,
					Keys:            64,
					EndorsersPerOrg: 2,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 3 * time.Second, Action: CrashLeader{}},
					{At: 6 * time.Second, Action: RestartPeers{Peers: []int{0}}},
					{At: 8 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "consenter-minority-loss",
		Description: "one of three ordering consenters crashes under a " +
			"steady transaction load: a minority loss keeps the Raft quorum, so " +
			"ordering continues (after an election if the victim led) and every " +
			"accepted transaction still resolves — submitted equals committed " +
			"plus conflicts with zero drift",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup:     time.Second,
				Tail:       30 * time.Second,
				Consenters: 3,
				Workload: &workload.Config{
					ClientsPerOrg: 2,
					Rate:          5,
					Arrival:       workload.ArrivalPoisson,
					Keys:          64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 3 * time.Second, Action: CrashConsenter{Consenter: 2}},
					{At: 8 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "consenter-majority-loss-and-heal",
		Description: "two of three ordering consenters crash mid-run: the " +
			"survivor cannot elect itself (no quorum), ordering halts and the " +
			"deliver gap grows until both victims restart and rejoin by log " +
			"replay — then the buffered backlog orders, streams, and every peer " +
			"catches up in full",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: time.Second,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				Consenters:    3,
				Events: []Event{
					{At: 2500 * time.Millisecond, Action: CrashConsenter{Consenter: 1}},
					{At: 2600 * time.Millisecond, Action: CrashConsenter{Consenter: 2}},
					{At: 8 * time.Second, Action: RestartConsenter{Consenter: 1}},
					{At: 8100 * time.Millisecond, Action: RestartConsenter{Consenter: 2}},
				},
			}
		},
	})
	register(Def{
		Name: "consenter-wan-separated",
		Description: "the three consenters are spread across the " +
			"organizations' WAN sites; a partition isolates one consenter, the " +
			"remaining two keep (or re-establish) a WAN-crossing quorum and " +
			"ordering continues at inter-site latency until the heal reunites " +
			"the cluster",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:          10,
				BlockInterval:   time.Second,
				Warmup:          time.Second,
				Tail:            35 * time.Second,
				Consenters:      3,
				ConsenterSpread: true,
				WANDelay:        20 * time.Millisecond,
				Events: []Event{
					{At: 3 * time.Second, Action: IsolateConsenters{Consenters: []int{2}}},
					{At: 8 * time.Second, Action: HealPartition{}},
				},
			}
		},
	})
	register(Def{
		Name: "consenter-election-under-txload",
		Description: "the ordering cluster's leader crashes under " +
			"transaction load with anchor recovery armed: the election closes " +
			"well inside the orderer-stall threshold, so it adds nothing to the " +
			"anchor-probe count (the nonzero floor is membership heartbeat " +
			"flap — a peer that transiently believes it leads was never a " +
			"deliver-stream target, so its stall clock reads expired; the " +
			"with/without-election comparison is pinned by test), and " +
			"in-flight transactions survive the leadership change with " +
			"accounting intact. The load runs to near the end of the run so " +
			"the election is the only ordering silence — a long post-workload " +
			"tail would itself trip the stall detector and muddy the probe " +
			"count",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup: time.Second,
				// 5s: enough post-workload room for the last block to reach
				// every peer (stragglers need a recovery cycle), but the
				// end-of-run ordering silence stays under the 5s
				// orderer-stall threshold, so the tail itself cannot fire
				// anchor probes.
				Tail:           5 * time.Second,
				Consenters:     3,
				AnchorRecovery: true,
				Workload: &workload.Config{
					ClientsPerOrg: 2,
					Rate:          5,
					Arrival:       workload.ArrivalPoisson,
					Keys:          64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 4 * time.Second, Action: CrashConsenterLeader{}},
					{At: 26 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})

	// --- sharded parallel engine entries (per-org shards, lock-step
	// windows). Each separates the organizations onto WAN sites: the 25 ms
	// inter-site latency floor becomes the conservative lookahead, so
	// shards run long windows between barriers instead of thrashing on the
	// LAN's 150 µs propagation floor. ---

	register(Def{
		Name: "sharded-crash-restart",
		Description: "the crash-restart fault script on the sharded parallel " +
			"engine: each WAN-separated organization runs on its own event loop, " +
			"synchronized in conservative lookahead windows, with a " +
			"deterministic, GOMAXPROCS-independent fingerprint — the 10k-peer " +
			"benchmark tier's crash workload",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			n := top.Total()
			k := max(1, n/10)
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          30 * time.Second,
				WANDelay:      25 * time.Millisecond,
				Sharded:       true,
				Events: []Event{
					{At: 1500 * time.Millisecond, Action: CrashPeers{Peers: span(1, 1+k)}},
					{At: 4 * time.Second, Action: RestartAll{}},
				},
			}
		},
	})
	register(Def{
		Name: "sharded-view-convergence",
		Description: "membership convergence under the SWIM extensions on the " +
			"sharded parallel engine: every organization's piggybacked events, " +
			"suspicion probes and view shuffles run shard-local, and the " +
			"convergence measurement samples at coordinator barriers — the " +
			"10k-peer benchmark tier's membership workload",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Blocks:            6,
				BlockInterval:     500 * time.Millisecond,
				Warmup:            time.Second,
				Tail:              40 * time.Second,
				WANDelay:          25 * time.Millisecond,
				Sharded:           true,
				SwimMembership:    true,
				MeasureMembership: true,
			}
		},
	})
	register(Def{
		Name: "sharded-txload-aggregate",
		Description: "a thousand modeled clients per organization as one " +
			"aggregated per-org arrival process on the sharded engine: the " +
			"open-loop Poisson superposition fires one timer per org at the " +
			"summed rate and attributes arrivals round-robin across a bounded " +
			"endpoint set — the client-pool scaling path of the 100k tier",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup:   time.Second,
				Tail:     25 * time.Second,
				WANDelay: 25 * time.Millisecond,
				Sharded:  true,
				Workload: &workload.Config{
					ClientsPerOrg:    1000,
					Rate:             0.05,
					Arrival:          workload.ArrivalPoisson,
					AggregateClients: true,
					Keys:             64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 6 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
	register(Def{
		Name: "sharded-txload-steady",
		Description: "the steady Poisson transaction workload on the sharded " +
			"parallel engine: clients and validation run on their organization's " +
			"shard, the ordering service on its own, and only endorsed " +
			"submissions and block deliveries cross shards — the full " +
			"execute-order-validate pipeline under parallel simulation",
		MinOrgs: 2,
		Build: func(top Topology) Scenario {
			return Scenario{
				Warmup:   time.Second,
				Tail:     25 * time.Second,
				WANDelay: 25 * time.Millisecond,
				Sharded:  true,
				Workload: &workload.Config{
					ClientsPerOrg: 2,
					Rate:          5,
					Arrival:       workload.ArrivalPoisson,
					Keys:          64,
				},
				Events: []Event{
					{At: time.Second, Action: StartWorkload{}},
					{At: 6 * time.Second, Action: StopWorkload{}},
				},
			}
		},
	})
}
