package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Def is a named catalog entry: a scenario template instantiated for a
// concrete organization size, so the same fault script scales from tens to
// thousands of peers.
type Def struct {
	Name        string
	Description string
	Build       func(n int) Scenario
}

// catalog holds the built-in scenarios, keyed by name.
var catalog = map[string]Def{}

func register(d Def) {
	catalog[d.Name] = d
}

// Catalog returns the built-in scenario definitions sorted by name.
func Catalog() []Def {
	out := make([]Def, 0, len(catalog))
	for _, d := range catalog {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of the built-in scenarios.
func Names() []string {
	defs := Catalog()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}

// Lookup returns the catalog entry with the given name.
func Lookup(name string) (Def, error) {
	d, ok := catalog[name]
	if !ok {
		return Def{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return d, nil
}

func init() {
	register(Def{
		Name: "crash-restart",
		Description: "a tenth of the organization crashes mid-dissemination and " +
			"restarts cold two and a half seconds later, catching up through recovery",
		Build: func(n int) Scenario {
			k := max(1, n/10)
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 1500 * time.Millisecond, Action: CrashPeers{Peers: span(1, 1+k)}},
					{At: 4 * time.Second, Action: RestartAll{}},
				},
			}
		},
	})
	register(Def{
		Name: "leader-failover",
		Description: "the leader peer crashes mid-run, the ordering service fails " +
			"over to the next live peer, and the old leader later rejoins and catches up",
		Build: func(n int) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        1500 * time.Millisecond,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 2500 * time.Millisecond, Action: CrashLeader{}},
					{At: 10 * time.Second, Action: RestartPeers{Peers: []int{0}}},
				},
			}
		},
	})
	register(Def{
		Name: "partition-heal",
		Description: "the network splits in half during dissemination; the minority " +
			"side misses blocks until the partition heals and recovery closes the gaps",
		Build: func(n int) Scenario {
			return Scenario{
				Blocks:        8,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          35 * time.Second,
				Events: []Event{
					{At: 1200 * time.Millisecond, Action: PartitionSplit{Split: n / 2}},
					{At: 6 * time.Second, Action: HealPartition{}},
				},
			}
		},
	})
	register(Def{
		Name: "churn",
		Description: "three consecutive crash/restart waves roll through the " +
			"organization while blocks keep flowing",
		Build: func(n int) Scenario {
			k := max(1, n/20)
			waveA := span(1, 1+k)
			waveB := span(1+k, 1+2*k)
			waveC := span(1+2*k, 1+3*k)
			return Scenario{
				Blocks:        12,
				BlockInterval: 500 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				Events: []Event{
					{At: 2 * time.Second, Action: CrashPeers{Peers: waveA}},
					{At: 4500 * time.Millisecond, Action: RestartPeers{Peers: waveA}},
					{At: 4500 * time.Millisecond, Action: CrashPeers{Peers: waveB}},
					{At: 7 * time.Second, Action: RestartPeers{Peers: waveB}},
					{At: 7 * time.Second, Action: CrashPeers{Peers: waveC}},
					{At: 9500 * time.Millisecond, Action: RestartPeers{Peers: waveC}},
				},
			}
		},
	})
	register(Def{
		Name: "slow-links",
		Description: "a tenth of the peers turn into stragglers (+30ms on every " +
			"link) mid-run, then return to normal",
		Build: func(n int) Scenario {
			slow := span(n-max(1, n/10), n)
			return Scenario{
				Blocks:        10,
				BlockInterval: 300 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          20 * time.Second,
				Events: []Event{
					{At: time.Second, Action: SlowPeers{Peers: slow, Extra: 30 * time.Millisecond}},
					{At: 8 * time.Second, Action: SlowPeers{Peers: slow}},
				},
			}
		},
	})
	register(Def{
		Name: "staggered-join",
		Description: "half the organization (a second org joining the channel) " +
			"starts offline and joins in two staggered waves, each catching up from zero",
		Build: func(n int) Scenario {
			lo := n / 2
			mid := lo + (n-lo)/2
			return Scenario{
				Blocks:        8,
				BlockInterval: 500 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          40 * time.Second,
				InitialDown:   span(lo, n),
				Events: []Event{
					{At: 3 * time.Second, Action: RestartPeers{Peers: span(lo, mid)}},
					{At: 6 * time.Second, Action: RestartPeers{Peers: span(mid, n)}},
				},
			}
		},
	})
	register(Def{
		Name: "flaky-network",
		Description: "15% uniform packet loss throughout dissemination; the " +
			"epidemic's redundancy and recovery must still deliver everything",
		Build: func(n int) Scenario {
			return Scenario{
				Blocks:        10,
				BlockInterval: 400 * time.Millisecond,
				Warmup:        time.Second,
				Tail:          30 * time.Second,
				Events: []Event{
					{At: 500 * time.Millisecond, Action: PacketLoss{Rate: 0.15}},
					{At: 12 * time.Second, Action: PacketLoss{}},
				},
			}
		},
	})
}
