package scenario

import (
	"strings"
	"testing"
	"time"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/workload"
)

// TestHotkeyZipfSkewIsLoadBearing proves the Zipf knob earns its place in
// txload-hotkey-contention: the same script with skew disabled (uniform
// key selection over the same keyspace) must show a materially lower MVCC
// conflict rate. If contention stopped flowing through the hot keys, the
// entry would silently degrade into a second steady-state run.
func TestHotkeyZipfSkewIsLoadBearing(t *testing.T) {
	def, err := Lookup("txload-hotkey-contention")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Peers: 20, Orgs: 2, Seed: 42, Variant: harness.VariantEnhanced}
	top, err := opt.topology()
	if err != nil {
		t.Fatal(err)
	}

	run := func(mutate func(*workload.Config)) workload.Stats {
		sc := def.Build(top)
		sc.Name = def.Name
		mutate(sc.Workload)
		rep, err := Run(sc, opt)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Workload == nil {
			t.Fatal("workload scenario produced no workload report")
		}
		return *rep.Workload
	}

	skewed := run(func(*workload.Config) {})
	uniform := run(func(cfg *workload.Config) { cfg.ZipfS = 0 })

	if skewed.Committed == 0 || uniform.Committed == 0 {
		t.Fatalf("degenerate runs: skewed %+v, uniform %+v", skewed, uniform)
	}
	sr, ur := skewed.ConflictRate(), uniform.ConflictRate()
	if sr < 3*ur {
		t.Fatalf("zipf skew not load-bearing: skewed conflict rate %.4f vs uniform %.4f", sr, ur)
	}
}

// TestWorkloadAccountingCloses pins the plane's conservation property on
// the fault-free entry: every submitted transaction resolves as exactly
// one commit or one conflict by the end of the run, blocks really come
// from the ordering service, and the fault counters stay zero.
func TestWorkloadAccountingCloses(t *testing.T) {
	rep, err := RunNamed("txload-steady", Options{Peers: 20, Seed: 42, Variant: harness.VariantEnhanced})
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Workload
	if w == nil {
		t.Fatal("no workload report")
	}
	if w.Submitted == 0 || w.Committed == 0 {
		t.Fatalf("no load flowed: %+v", w)
	}
	if w.Submitted != w.Committed+w.Conflicts {
		t.Fatalf("accounting leak: %d submitted, %d committed + %d conflicts",
			w.Submitted, w.Committed, w.Conflicts)
	}
	if uint64(w.Submitted) != w.OrderedTx {
		t.Fatalf("orderer saw %d txs, clients submitted %d", w.OrderedTx, w.Submitted)
	}
	if w.BlocksCut == 0 || w.BlocksCut != w.CutBySize+w.CutByTimeout {
		t.Fatalf("block cutting off: %+v", w)
	}
	if w.EndorseErrors != 0 || w.SubmitErrors != 0 || w.CommitErrors != 0 || w.ProposalConflicts != 0 {
		t.Fatalf("fault counters nonzero in fault-free run: %+v", w)
	}
	if w.Latency.N != w.Committed {
		t.Fatalf("latency samples %d, commits %d", w.Latency.N, w.Committed)
	}
	if len(w.Orgs) != rep.Orgs {
		t.Fatalf("per-org breakdown has %d orgs, topology %d", len(w.Orgs), rep.Orgs)
	}
	var sub, com int
	for _, ow := range w.Orgs {
		sub += ow.Submitted
		com += ow.Committed
	}
	if sub != w.Submitted || com != w.Committed {
		t.Fatalf("per-org breakdown does not sum to totals: %+v", w)
	}
	if !strings.Contains(rep.String(), "workload: ") {
		t.Fatal("report misses the workload section")
	}
}

// TestOrgOutageStarvesEndorsement pins the fault leg of
// txload-org-outage-under-load: while the victim organization is down its
// clients' proposals must fail (their only endorsers are crashed), and the
// in-flight backlog still resolves once the org recommits the chain — no
// pending transaction leaks.
func TestOrgOutageStarvesEndorsement(t *testing.T) {
	rep, err := RunNamed("txload-org-outage-under-load", Options{Peers: 20, Seed: 42, Variant: harness.VariantEnhanced})
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Workload
	if w == nil {
		t.Fatal("no workload report")
	}
	if w.EndorseErrors == 0 {
		t.Fatalf("victim org endorsed through its own outage: %+v", w)
	}
	if w.Submitted != w.Committed+w.Conflicts {
		t.Fatalf("outage leaked pending transactions: %d submitted, %d committed + %d conflicts",
			w.Submitted, w.Committed, w.Conflicts)
	}
	victim := w.Orgs[len(w.Orgs)-1]
	healthy := w.Orgs[0]
	if victim.EndorseErrors == 0 || healthy.EndorseErrors != 0 {
		t.Fatalf("endorse errors on the wrong org: victim %+v, healthy %+v", victim, healthy)
	}
	if victim.Committed == 0 {
		t.Fatal("victim org never resumed committing after restart")
	}
}

// TestWorkloadScriptValidation covers the scripting error paths: a premade
// chain and the workload plane cannot coexist (they would collide on block
// numbers), and the window actions demand a workload config.
func TestWorkloadScriptValidation(t *testing.T) {
	opt := Options{Peers: 6, Seed: 1}
	_, err := Run(Scenario{
		Name:     "bad-both",
		Blocks:   3,
		Warmup:   time.Second,
		Tail:     time.Second,
		Workload: &workload.Config{},
	}, opt)
	if err == nil || !strings.Contains(err.Error(), "Blocks") {
		t.Fatalf("Blocks+Workload accepted: %v", err)
	}
	_, err = Run(Scenario{
		Name:   "bad-start",
		Blocks: 3,
		Warmup: time.Second,
		Tail:   time.Second,
		Events: []Event{{At: time.Second, Action: StartWorkload{}}},
	}, opt)
	if err == nil {
		t.Fatal("StartWorkload without Workload accepted")
	}
	_, err = Run(Scenario{
		Name:     "bad-config",
		Warmup:   time.Second,
		Tail:     time.Second,
		Workload: &workload.Config{ZipfS: 0.5},
		Events:   []Event{{At: time.Second, Action: StartWorkload{}}},
	}, opt)
	if err == nil || !strings.Contains(err.Error(), "ZipfS") {
		t.Fatalf("invalid ZipfS accepted: %v", err)
	}
}
