package scenario

import (
	"bytes"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"fabricgossip/internal/obs"
	"fabricgossip/internal/sim"
)

// The observability plane's core contract: attaching it must not move the
// run. Trace points are passive (no random draws, no scheduled events) and
// the registries are read only at report time, so a run with tracing, the
// flight recorder, or both armed produces a fingerprint byte-identical to
// a bare run — sequentially and on the sharded engine.
func TestObsLeavesFingerprintUnchanged(t *testing.T) {
	cases := []struct {
		name     string
		scenario string
		opt      Options
	}{
		{"sequential", "crash-restart", Options{Peers: 40, Seed: 3}},
		{"sharded", "sharded-crash-restart", Options{Peers: 20, Seed: 42}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bare, err := RunNamed(tc.scenario, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			traced := tc.opt
			traced.Trace = true
			traced.FlightRing = 64
			traced.FlightDir = t.TempDir()
			rep, err := RunNamed(tc.scenario, traced)
			if err != nil {
				t.Fatal(err)
			}
			if bare.Fingerprint() != rep.Fingerprint() {
				t.Errorf("tracing moved the fingerprint:\n  bare:   %s\n  traced: %s",
					bare.Fingerprint(), rep.Fingerprint())
			}
			if len(rep.Events) == 0 {
				t.Error("traced run produced no structured events")
			}
			if len(bare.Events) != 0 {
				t.Errorf("bare run produced %d structured events", len(bare.Events))
			}
			if rep.FlightDump != "" {
				t.Errorf("healthy run wrote a flight dump: %s", rep.FlightDump)
			}
			if v, ok := rep.Obs.Get("wire_msgs_total", "dir", "out"); !ok || v == 0 {
				t.Error("traced run's snapshot has no wire sends")
			}
			// The snapshot exists even without the obs plane armed: report
			// counters are always re-registered (cmd/scenarios -stats).
			if v, ok := bare.Obs.Get("engine_events_total"); !ok || v != float64(bare.EngineEvents) {
				t.Errorf("bare snapshot engine_events_total = %v, want %d", v, bare.EngineEvents)
			}
		})
	}
}

// The merged structured trace is deterministic in (scenario, Options):
// byte-identical JSONL regardless of GOMAXPROCS, because per-context
// buffers merge by (time, context, emission order) — never by goroutine
// interleaving.
func TestTraceJSONLIndependentOfParallelism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var outs [][]byte
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		rep, err := RunNamed("sharded-crash-restart", Options{Peers: 20, Seed: 42, Trace: true})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !rep.Sharded {
			t.Fatalf("procs=%d: expected a sharded run", procs)
		}
		var buf bytes.Buffer
		if err := obs.WriteJSONL(&buf, rep.Events); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("procs=%d: empty trace", procs)
		}
		outs = append(outs, buf.Bytes())
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Errorf("structured trace depends on GOMAXPROCS: %d vs %d bytes (first divergence at byte %d)",
			len(outs[0]), len(outs[1]), firstDiff(outs[0], outs[1]))
	}
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// A time-series run stays deterministic per seed and actually samples: the
// same options reproduce the same fingerprint, and the series holds one
// row per period with the instrument set fixed at the first sample.
func TestTimeSeriesSamplingDeterministic(t *testing.T) {
	opt := Options{Peers: 40, Seed: 3, TimeSeries: 5 * time.Second}
	a, err := RunNamed("crash-restart", opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNamed("crash-restart", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("time-series runs with identical options diverged")
	}
	if a.Series == nil || len(a.Series.Rows) == 0 {
		t.Fatal("no time-series rows sampled")
	}
	if len(a.Series.Names) == 0 {
		t.Fatal("time-series fixed no instrument names")
	}
	for _, row := range a.Series.Rows {
		if len(row.Vals) != len(a.Series.Names) {
			t.Fatalf("row at %v has %d values for %d instruments", row.At, len(row.Vals), len(a.Series.Names))
		}
	}
}

// The flight recorder's crash path: a cross-shard delivery violating the
// lookahead window runs the violation hook on the offending shard's
// goroutine — dumping that shard's recent ring to disk — and then panics.
// The dump must carry only the offending shard's context and only the last
// FlightRing events of it.
func TestViolationHookDumpsFlightRecorder(t *testing.T) {
	se := sim.NewShardedEngine(1, 2, 10*time.Millisecond)
	tracer := obs.NewTracer(2, 16)
	for i := 0; i < 40; i++ {
		tracer.Shards[0].Emit(obs.Event{
			At: time.Duration(i) * time.Millisecond, Kind: obs.EvGossipSend,
			Node: 0, Peer: 1, Num: uint64(i),
		})
	}
	tracer.Shards[1].Emit(obs.Event{At: 0, Kind: obs.EvGossipRecv, Node: 1, Peer: 0, Num: 999})
	fr := obs.NewFlightRecorder(tracer, 8, t.TempDir())
	var hookSrc, hookDst int
	var dumpPath string
	se.SetViolationHook(func(src, dst int, msg string) {
		hookSrc, hookDst = src, dst
		if !strings.Contains(msg, "violates window horizon") {
			t.Errorf("violation message = %q", msg)
		}
		if p, err := fr.DumpShard(src, msg); err == nil {
			dumpPath = p
		} else {
			t.Errorf("DumpShard: %v", err)
		}
	})
	se.RunUntil(50 * time.Millisecond) // horizon is now pinned to 50ms

	defer func() {
		if recover() == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if hookSrc != 0 || hookDst != 1 {
			t.Errorf("hook saw shard %d -> %d, want 0 -> 1", hookSrc, hookDst)
		}
		if dumpPath == "" {
			t.Fatal("violation hook wrote no dump")
		}
		data, err := os.ReadFile(dumpPath)
		if err != nil {
			t.Fatal(err)
		}
		dump := string(data)
		if !strings.Contains(dump, "context 0") {
			t.Error("dump missing the offending shard's context header")
		}
		if strings.Contains(dump, "context 1") {
			t.Error("single-shard dump leaked another context (unsafe mid-window)")
		}
		// Ring capacity 16 holds events 24..39; the dump keeps the last 8.
		if !strings.Contains(dump, `"num":39`) || !strings.Contains(dump, `"num":32`) {
			t.Error("dump missing the most recent ring events")
		}
		if strings.Contains(dump, `"num":31`) {
			t.Error("dump carries more than the last 8 events")
		}
	}()
	se.SendCross(0, 1, time.Millisecond, nil, 0, 0, nil)
}
