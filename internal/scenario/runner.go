package scenario

import (
	"fmt"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/wire"
)

// Options parameterizes one scenario run.
type Options struct {
	// Peers is the organization size (default 100). The catalog scales its
	// fault scripts to any size up to thousands of peers.
	Peers int
	// Variant selects the protocol under test (default VariantEnhanced).
	Variant harness.Variant
	// Seed drives every random stream; the same seed reproduces the run
	// byte for byte.
	Seed int64
	// TxPerBlock/TxPayload shape the workload blocks (defaults 10 x 512 B:
	// small enough that thousand-peer runs stay fast, large enough that
	// bandwidth overhead is dominated by block bodies).
	TxPerBlock int
	TxPayload  int
}

func (o Options) withDefaults() Options {
	if o.Peers == 0 {
		o.Peers = 100
	}
	if o.Variant == "" {
		o.Variant = harness.VariantEnhanced
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TxPerBlock == 0 {
		o.TxPerBlock = 10
	}
	if o.TxPayload == 0 {
		o.TxPayload = 512
	}
	return o
}

// runner is the per-run mutable state behind the fault actions and
// measurement hooks.
type runner struct {
	sc  Scenario
	opt Options
	org *harness.Org
	rec *metrics.RecoveryRecorder

	trace    []string
	injected int // blocks delivered to the org so far

	// Per-peer measurement state, reset when a peer restarts.
	lastCommit []int64 // last in-order committed block, -1 if none
	restartAt  []time.Duration
	recovering []bool

	transitions     int
	orderViolations int
}

// RunNamed instantiates the named catalog scenario for opt.Peers peers and
// runs it.
func RunNamed(name string, opt Options) (*Report, error) {
	def, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	sc := def.Build(opt.Peers)
	sc.Name = def.Name
	sc.Description = def.Description
	return Run(sc, opt)
}

// Run executes the scenario and returns its report. The run is fully
// deterministic in (scenario, Options).
func Run(sc Scenario, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if sc.Blocks <= 0 {
		return nil, fmt.Errorf("scenario: %q injects no blocks", sc.Name)
	}
	for _, i := range sc.InitialDown {
		if i <= 0 || i >= opt.Peers {
			return nil, fmt.Errorf("scenario: initial-down peer %d out of range (leader 0 must start live)", i)
		}
	}
	for _, ev := range sc.Events {
		for _, i := range actionPeers(ev.Action) {
			if i < 0 || i >= opt.Peers {
				return nil, fmt.Errorf("scenario: event %q at %v names peer %d, outside [0, %d)",
					ev.Action, ev.At, i, opt.Peers)
			}
		}
		if split, ok := ev.Action.(PartitionSplit); ok && (split.Split <= 0 || split.Split >= opt.Peers) {
			return nil, fmt.Errorf("scenario: event %q at %v splits outside (0, %d)",
				ev.Action, ev.At, opt.Peers)
		}
	}

	// Base protocol parameters come from the paper's defaults at this
	// organization size; fault handling wants faster membership and
	// recovery turnarounds than the paper's fault-free 10 s defaults.
	params := harness.QuickScale(harness.DefaultParams(opt.Variant, opt.Seed), opt.Peers, sc.Blocks)
	params.TxPerBlock = opt.TxPerBlock
	params.TxPayload = opt.TxPayload
	params.Bucket = time.Second

	r := &runner{
		sc:         sc,
		opt:        opt,
		rec:        metrics.NewRecoveryRecorder(),
		lastCommit: make([]int64, opt.Peers),
		restartAt:  make([]time.Duration, opt.Peers),
		recovering: make([]bool, opt.Peers),
	}
	for i := range r.lastCommit {
		r.lastCommit[i] = -1
	}

	org, err := harness.NewOrg(params,
		harness.WithGossipTune(func(self wire.NodeID, cfg *gossip.Config) {
			cfg.StateInfoInterval = time.Second
			cfg.AliveInterval = 2 * time.Second
			cfg.AliveExpiration = 5 * time.Second
			cfg.RecoveryInterval = 2 * time.Second
			cfg.RecoveryBatch = 64
		}),
		harness.WithCoreHook(r.instrument),
	)
	if err != nil {
		return nil, err
	}
	r.org = org
	engine := org.Engine
	// The ordering service delivers over a reliable stream: scenario
	// packet loss must not permanently swallow a block before it enters
	// the organization.
	org.Net.SetLossExempt(wire.TypeDeliverBlock, true)

	org.StartAll()
	for _, i := range sc.InitialDown {
		org.Crash(i)
	}
	if len(sc.InitialDown) > 0 {
		r.tracef("start with peers %s down", rangeSpec(sc.InitialDown))
	}

	// Schedule the workload.
	blocks := harness.BuildChain(sc.Blocks, opt.TxPerBlock, opt.TxPayload, opt.Seed)
	for i, b := range blocks {
		b := b
		engine.At(sc.Warmup+time.Duration(i)*sc.BlockInterval, func() {
			leader := org.DeliverBlock(b)
			if leader < 0 {
				r.tracef("block %d dropped: no live peer to lead", b.Num)
				return
			}
			r.injected++
			r.tracef("deliver block %d -> peer %d", b.Num, leader)
		})
	}

	// Schedule the fault script.
	for _, ev := range sc.Events {
		ev := ev
		engine.At(ev.At, func() {
			r.tracef("%s", ev.Action)
			ev.Action.apply(r)
		})
	}

	engine.RunUntil(sc.End())
	org.StopAll()

	return r.report(blocks), nil
}

// actionPeers returns the peer indices an action addresses, for up-front
// range validation (a bad index must fail Run, not panic mid-simulation).
func actionPeers(a Action) []int {
	switch a := a.(type) {
	case CrashPeers:
		return a.Peers
	case RestartPeers:
		return a.Peers
	case SlowPeers:
		return a.Peers
	}
	return nil
}

// instrument installs the measurement hooks on a (possibly restarted) core.
// It runs during NewOrg, before r.org is assigned, so the callbacks resolve
// the engine lazily.
func (r *runner) instrument(i int, core *gossip.Core) {
	core.OnCommit(func(b *ledger.Block) {
		if int64(b.Num) != r.lastCommit[i]+1 {
			r.orderViolations++
		}
		r.lastCommit[i] = int64(b.Num)
		if r.recovering[i] && b.Num+1 >= uint64(r.injected) {
			lat := r.org.Engine.Now() - r.restartAt[i]
			r.rec.Record(lat)
			r.recovering[i] = false
			r.tracef("peer %d caught up to height %d, %v after restart", i, b.Num+1, lat)
		}
	})
	core.OnPeerStateChange(func(wire.NodeID, bool, time.Duration) {
		r.transitions++
	})
}

func (r *runner) crash(i int) {
	if r.org.Crashed(i) {
		return
	}
	r.org.Crash(i)
	r.recovering[i] = false
}

func (r *runner) restart(i int) {
	if !r.org.Crashed(i) {
		return
	}
	// The fresh core commits from zero again; reset the per-peer ordering
	// and recovery trackers before its hooks fire.
	r.lastCommit[i] = -1
	r.restartAt[i] = r.org.Engine.Now()
	r.recovering[i] = r.injected > 0
	r.org.Restart(i)
}

// partition cuts peers [0, split) plus the orderer from peers [split, n).
// Range validation happened in Run.
func (r *runner) partition(split int) {
	sideA := make([]wire.NodeID, 0, split+1)
	sideA = append(sideA, r.org.Peers[:split]...)
	sideA = append(sideA, r.org.Orderer.ID())
	sideB := append([]wire.NodeID(nil), r.org.Peers[split:]...)
	r.org.Net.Partition(sideA, sideB)
}

func (r *runner) tracef(format string, args ...any) {
	at := r.org.Engine.Now()
	r.trace = append(r.trace, fmt.Sprintf("[%10v] %s", at, fmt.Sprintf(format, args...)))
}

// report assembles the final Report after the engine has drained.
func (r *runner) report(blocks []*ledger.Block) *Report {
	rep := &Report{
		Scenario:       r.sc.Name,
		Variant:        string(r.opt.Variant),
		Peers:          r.opt.Peers,
		Seed:           r.opt.Seed,
		BlocksInjected: r.injected,
		Transitions:    r.transitions,
		EngineEvents:   r.org.Engine.Executed(),
		TotalBytes:     r.org.Traffic.TotalBytes(),
		Recoveries:     metrics.Summarize(r.rec.Distribution()),
		Trace:          r.trace,
	}
	for i := 0; i < r.opt.Peers; i++ {
		if r.org.Crashed(i) {
			continue
		}
		rep.Survivors++
		if r.lastCommit[i] == int64(r.injected)-1 {
			rep.CaughtUp++
		}
		if r.recovering[i] {
			rep.PendingRecoveries++
		}
	}
	rep.OrderViolations = r.orderViolations
	if len(blocks) > 0 {
		blockBytes := wire.BlockEncodedSize(blocks[0])
		rep.BlockBytes = blockBytes
		rep.Overhead = metrics.OverheadRatio(rep.TotalBytes, blockBytes, r.opt.Peers-1, r.injected)
	}
	return rep
}
