package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/obs"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/wire"
	"fabricgossip/internal/workload"
)

// Options parameterizes one scenario run.
type Options struct {
	// Peers is the total network size across all organizations (default
	// 100). It must divide evenly by Orgs. The catalog scales its fault
	// scripts to any size up to thousands of peers.
	Peers int
	// Orgs is the organization count (default 1). Multi-org catalog
	// entries (Def.MinOrgs > 1) bump it to their minimum automatically.
	Orgs int
	// OrgSizes, when set, overrides Peers/Orgs with an explicit per-org
	// layout (asymmetric consortiums). Each entry needs at least 2 peers.
	// Catalog entries with a Sizes shaper populate it from Peers.
	OrgSizes []int
	// Variant selects the protocol under test (default VariantEnhanced).
	// A scenario's OrgVariants override it per organization.
	Variant harness.Variant
	// Seed drives every random stream; the same seed reproduces the run
	// byte for byte.
	Seed int64
	// TxPerBlock/TxPayload shape the workload blocks (defaults 10 x 512 B:
	// small enough that thousand-peer runs stay fast, large enough that
	// bandwidth overhead is dominated by block bodies).
	TxPerBlock int
	TxPayload  int
	// Consenters, when > 0, overrides the scenario's ordering-service
	// shape: any catalog entry replays against a Raft consenter cluster
	// of this size instead of the single orderer (cmd/scenarios
	// -consenters). Zero inherits the scenario's own Consenters setting.
	Consenters int
	// Sharding overrides the scenario's Sharded flag per run
	// (cmd/scenarios -shards): ShardOn forces the sharded parallel
	// engine, ShardOff forces the sequential one, ShardAuto (the zero
	// value) inherits the scenario's own setting.
	Sharding ShardMode
	// FixedLookahead disables the sharded coordinator's adaptive barrier
	// elision, forcing the full ceremony at every window edge. Both modes
	// produce byte-identical fingerprints (the equivalence property test
	// pins it); the knob exists for that test and for bisecting.
	FixedLookahead bool
	// Tail, when > 0, overrides the scenario's own post-injection tail
	// (cmd/scenarios -tail). Shortening the tail changes the fingerprint
	// lineage (fewer virtual seconds of traffic) and can cut off recovery
	// before it closes every gap, so it is a tool for reduced-duration
	// determinism smokes at extreme scale, not for measurement runs.
	Tail time.Duration

	// Trace enables the structured event-trace layer (cmd/scenarios
	// -trace-jsonl): typed trace points from the transport and every
	// subsystem hook, buffered per emission context and merged into
	// Report.Events by (time, context, emission order). Trace points are
	// passive — no random draws, no scheduled events — so enabling them
	// leaves the run's fingerprint byte-identical; the merged stream
	// itself is deterministic per seed regardless of GOMAXPROCS. Off by
	// default: the per-message hot path then carries only a nil check.
	Trace bool
	// FlightRing arms the crash flight recorder: each emission context
	// keeps a bounded ring of this many recent trace events, dumped to a
	// file when a run dies on a lookahead-violation panic or fails its
	// pool-leak audit. With Trace also set the full buffers back the
	// recorder instead (the dump still carries only the last FlightRing
	// events per context). Zero disables the recorder.
	FlightRing int
	// FlightDir is where flight-recorder dumps land (default the OS temp
	// directory).
	FlightDir string
	// TimeSeries, when > 0, samples every registry instrument at this
	// period of simulated time into Report.Series. The sampler is an
	// engine event (barrier-hosted under a sharded network), so unlike
	// Trace it extends the run's event lineage — same-seed runs with the
	// same period stay deterministic, but fingerprints are comparable
	// only across runs with identical TimeSeries settings (like Tail).
	TimeSeries time.Duration
}

// ShardMode is the per-run sharding override.
type ShardMode int

const (
	// ShardAuto inherits the scenario's Sharded flag.
	ShardAuto ShardMode = iota
	// ShardOn forces the sharded parallel engine.
	ShardOn
	// ShardOff forces the sequential engine.
	ShardOff
)

func (o Options) withDefaults() Options {
	if o.Peers == 0 {
		o.Peers = 100
	}
	if o.Orgs == 0 {
		o.Orgs = 1
	}
	if o.Variant == "" {
		o.Variant = harness.VariantEnhanced
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TxPerBlock == 0 {
		o.TxPerBlock = 10
	}
	if o.TxPayload == 0 {
		o.TxPayload = 512
	}
	return o
}

func (o Options) topology() (Topology, error) {
	if len(o.OrgSizes) > 0 {
		sizes := make([]int, len(o.OrgSizes))
		for i, s := range o.OrgSizes {
			if s < 2 {
				return Topology{}, fmt.Errorf("scenario: org %d has %d peers, need at least 2", i, s)
			}
			sizes[i] = s
		}
		return Topology{Sizes: sizes}, nil
	}
	if o.Orgs < 1 {
		return Topology{}, fmt.Errorf("scenario: need at least 1 org, got %d", o.Orgs)
	}
	if o.Peers%o.Orgs != 0 {
		return Topology{}, fmt.Errorf("scenario: %d peers do not divide evenly into %d orgs", o.Peers, o.Orgs)
	}
	per := o.Peers / o.Orgs
	if per < 2 {
		return Topology{}, fmt.Errorf("scenario: %d peers per org, need at least 2", per)
	}
	return Uniform(o.Orgs, per), nil
}

// runner is the per-run mutable state behind the fault actions and
// measurement hooks.
type runner struct {
	sc    Scenario
	opt   Options
	top   Topology
	net   *harness.Network
	plane *workload.Plane // nil unless sc.Workload is set

	// sharded reports whether the network actually runs the sharded
	// engine (the request may fall back sequential on zero lookahead).
	sharded bool

	// orgRecs and lat take writes from commit/reception hooks, which run
	// on each organization's own shard of a sharded network — so both are
	// partitioned per org (the network-wide views merge at report time).
	orgRecs []*metrics.RecoveryRecorder
	lat     *metrics.GroupedLatency

	// traces holds per-engine-context trace buffers: index o for org o,
	// then one for the ordering engine, then one for the control engine
	// (fault actions, deliveries). Sequentially there is a single buffer
	// and the report keeps exact emission order — fingerprint-pinned; a
	// sharded run merges buffers by (time, buffer, position), which is
	// deterministic regardless of window interleaving.
	traces   [][]traceEntry
	injected int               // distinct blocks delivered to at least one org
	seen     map[uint64]bool   // blocks counted in injected
	orgSeen  []map[uint64]bool // per-org delivered blocks
	// orgStart[o][num] is the virtual time the block first entered org o
	// (its leader's reception); later receptions record deltas against it.
	orgStart []map[uint64]time.Duration

	// Per-peer measurement state, reset when a peer restarts. Written by
	// the peer's own shard (commit hooks) or at coordinator barriers
	// (fault actions), never both at once.
	lastCommit []int64 // last in-order committed block, -1 if none
	restartAt  []time.Duration
	recovering []bool

	// Per-org counters (shard-local writers), summed at report time.
	transitions     []int
	orderViolations []int

	// Membership-view sampling state (MeasureMembership only). liveBuf and
	// actualBuf are the sampler's reusable scratch; convergedAt is the
	// first sample time of the current everyone-agrees-on-the-leader
	// streak (-1 while disagreeing).
	viewSamples int
	lastCompl   float64
	convergedAt time.Duration
	liveBuf     []wire.NodeID
	actualBuf   []wire.NodeID

	// Heap high-water sampling (wall-side diagnostic, never fingerprinted):
	// sharded runs sample at coordinator barriers, sequential runs piggyback
	// on the injection/fault closures already scheduled — either way no new
	// simulation events exist, so EngineEvents (which IS fingerprinted) is
	// untouched. lastHeapAt throttles the ReadMemStats stop-the-world cost
	// to one sample per heapSampleInterval of simulated time.
	heapHigh    uint64
	heapSampled bool
	lastHeapAt  time.Duration

	// Observability plane (all nil/empty unless Options opts in).
	// obsRegs holds one shard-local registry per emission context —
	// same layout as traces — merged at report (and time-series sample)
	// time; tracer's contexts back both the structured event stream and
	// the flight recorder's rings.
	obsRegs    []*obs.Registry
	tracer     *obs.Tracer
	flight     *obs.FlightRecorder
	series     *obs.Series
	flightDump string
}

// traceEntry is one trace line before prefix formatting, tagged with its
// virtual time for the sharded merge.
type traceEntry struct {
	at   time.Duration
	line string
}

// RunNamed instantiates the named catalog scenario for opt's topology and
// runs it. Entries that need more organizations than opt.Orgs provides
// (Def.MinOrgs) get their minimum automatically.
func RunNamed(name string, opt Options) (*Report, error) {
	def, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if opt.Orgs < def.MinOrgs {
		opt.Orgs = def.MinOrgs
	}
	if def.Sizes != nil && len(opt.OrgSizes) == 0 {
		opt.OrgSizes = def.Sizes(opt.Peers)
	}
	// An explicit layout bypasses the Peers/Orgs split entirely, so it must
	// satisfy the entry's org minimum itself — org-targeted scripts would
	// otherwise run on degenerate topologies (e.g. the "remote org" being
	// the whole network) and report nonsense instead of failing.
	if len(opt.OrgSizes) > 0 && len(opt.OrgSizes) < def.MinOrgs {
		return nil, fmt.Errorf("%s: %d org sizes given, scenario needs at least %d organizations",
			name, len(opt.OrgSizes), def.MinOrgs)
	}
	top, err := opt.topology()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	sc := def.Build(top)
	sc.Name = def.Name
	sc.Description = def.Description
	return Run(sc, opt)
}

// Run executes the scenario and returns its report. The run is fully
// deterministic in (scenario, Options).
func Run(sc Scenario, opt Options) (*Report, error) {
	opt = opt.withDefaults()
	if opt.Tail > 0 {
		sc.Tail = opt.Tail
	}
	top, err := opt.topology()
	if err != nil {
		return nil, err
	}
	if sc.Workload != nil {
		// The workload plane cuts blocks through a real ordering service;
		// a premade chain would collide with it on block numbers.
		if sc.Blocks > 0 {
			return nil, fmt.Errorf("scenario: %q sets both Blocks and Workload", sc.Name)
		}
	} else if sc.Blocks <= 0 {
		return nil, fmt.Errorf("scenario: %q injects no blocks", sc.Name)
	}
	if sc.Workload == nil {
		for _, ev := range sc.Events {
			switch ev.Action.(type) {
			case StartWorkload, StopWorkload:
				return nil, fmt.Errorf("scenario: %q schedules %q without a Workload config",
					sc.Name, ev.Action)
			}
		}
	}
	if len(sc.InitialDown) >= top.Total() {
		return nil, fmt.Errorf("scenario: all %d peers initially down", top.Total())
	}
	for _, i := range sc.InitialDown {
		if i < 0 || i >= top.Total() {
			return nil, fmt.Errorf("scenario: initial-down peer %d out of range [0, %d)", i, top.Total())
		}
	}
	for _, ev := range sc.Events {
		for _, i := range actionPeers(ev.Action) {
			if i < 0 || i >= top.Total() {
				return nil, fmt.Errorf("scenario: event %q at %v names peer %d, outside [0, %d)",
					ev.Action, ev.At, i, top.Total())
			}
		}
		for _, o := range actionOrgs(ev.Action) {
			if o < 0 || o >= top.Orgs() {
				return nil, fmt.Errorf("scenario: event %q at %v names org %d, outside [0, %d)",
					ev.Action, ev.At, o, top.Orgs())
			}
		}
		if split, ok := ev.Action.(PartitionSplit); ok && (split.Split <= 0 || split.Split >= top.Total()) {
			return nil, fmt.Errorf("scenario: event %q at %v splits outside (0, %d)",
				ev.Action, ev.At, top.Total())
		}
	}
	consenters := sc.Consenters
	if opt.Consenters > 0 {
		consenters = opt.Consenters
	}
	for _, ev := range sc.Events {
		idxs, needs := actionConsenters(ev.Action)
		if needs && consenters == 0 {
			return nil, fmt.Errorf("scenario: event %q at %v needs a consenter cluster (Consenters > 0)",
				ev.Action, ev.At)
		}
		for _, c := range idxs {
			if c < 0 || c >= consenters {
				return nil, fmt.Errorf("scenario: event %q at %v names consenter %d, outside [0, %d)",
					ev.Action, ev.At, c, consenters)
			}
		}
	}

	sharded := sc.Sharded
	switch opt.Sharding {
	case ShardOn:
		sharded = true
	case ShardOff:
		sharded = false
	}

	r := &runner{
		sc:              sc,
		opt:             opt,
		top:             top,
		orgRecs:         make([]*metrics.RecoveryRecorder, top.Orgs()),
		lat:             metrics.NewGroupedLatency(),
		seen:            make(map[uint64]bool),
		orgSeen:         make([]map[uint64]bool, top.Orgs()),
		orgStart:        make([]map[uint64]time.Duration, top.Orgs()),
		lastCommit:      make([]int64, top.Total()),
		restartAt:       make([]time.Duration, top.Total()),
		recovering:      make([]bool, top.Total()),
		transitions:     make([]int, top.Orgs()),
		orderViolations: make([]int, top.Orgs()),
	}
	r.lat.EnsureGroups(top.Orgs())
	for o := 0; o < top.Orgs(); o++ {
		r.orgRecs[o] = metrics.NewRecoveryRecorder()
		r.orgSeen[o] = make(map[uint64]bool)
		r.orgStart[o] = make(map[uint64]time.Duration)
	}
	for i := range r.lastCommit {
		r.lastCommit[i] = -1
	}

	// One spec per organization; a scenario's OrgVariants pin protocols
	// per org, everything else inherits the run's variant.
	specs := make([]harness.OrgSpec, top.Orgs())
	for o := range specs {
		specs[o] = harness.OrgSpec{Peers: top.Size(o)}
		if o < len(sc.OrgVariants) && sc.OrgVariants[o] != "" {
			specs[o].Variant = sc.OrgVariants[o]
		}
	}
	net, err := harness.NewNetwork(harness.NetworkParams{
		Seed:    opt.Seed,
		Variant: opt.Variant,
		Orgs:    specs,
		Bucket:  time.Second,
		// Scenario reports only read per-node totals; the per-bucket
		// series would be the accountants' dominant allocation at 100k.
		TrafficTotals: true,
		// The recovery-plane extensions are scenario-scripted: anchors,
		// WAN separation and the consenter cluster only exist when the
		// scenario (or Options) asks for them, so every pre-existing
		// script runs byte-identically.
		AnchorRecovery:  sc.AnchorRecovery,
		WANDelay:        sc.WANDelay,
		Consenters:      consenters,
		ConsenterSpread: sc.ConsenterSpread,
		Sharded:         sharded,
		FixedLookahead:  opt.FixedLookahead,
	},
		// Fault handling wants faster membership and recovery turnarounds
		// than the paper's fault-free 10 s defaults.
		harness.WithNetworkGossipTune(func(self wire.NodeID, cfg *gossip.Config) {
			cfg.StateInfoInterval = time.Second
			cfg.AliveInterval = 2 * time.Second
			cfg.AliveExpiration = 5 * time.Second
			cfg.RecoveryInterval = 2 * time.Second
			cfg.RecoveryBatch = 64
			if sc.SwimMembership {
				// The SWIM defaults for dense views at n >= 1000: lapsed
				// peers survive as refutable suspects for five heartbeat
				// periods, rumors ride every message, and the shuffle
				// refreshes 128 view entries per heartbeat period.
				cfg.SuspectTimeout = 10 * time.Second
				cfg.PiggybackMax = 32
				cfg.PiggybackBudget = 4
				cfg.ShuffleInterval = 2 * time.Second
				cfg.ShuffleSample = 256
			}
		}),
		harness.WithNetworkCoreHook(r.instrument),
		harness.WithDeliverHook(r.onDeliver),
		harness.WithConsenterHook(func(c int, s raft.State, term uint64) {
			if s == raft.Leader {
				r.ordTracef("consenter %d elected leader (term %d)", c, term)
			}
			if r.tracer != nil {
				kind := obs.EvRaftState
				if s == raft.Leader {
					kind = obs.EvElection
				}
				r.emitOrd(obs.Event{
					At: r.net.OrdererEngine().Now(), Kind: kind,
					Node: int32(c), Peer: -1, Num: term, Aux: uint64(s),
				})
			}
		}),
	)
	if err != nil {
		return nil, err
	}
	r.net = net
	// The request may fall back sequential (no usable lookahead window);
	// trace buffering follows what the network actually runs.
	r.sharded = net.Sharded() != nil
	nbuf := 1
	if r.sharded {
		nbuf = top.Orgs() + 2
		// Barrier-hosted heap sampling: every shard is quiescent, so the
		// reading covers the whole network's live state.
		net.Sharded().OnBarrier(r.sampleHeap)
	}
	r.traces = make([][]traceEntry, nbuf)
	engine := net.Engine

	// Observability plane: registries and structured-trace buffers share
	// the text-trace contexts' layout. AttachObs installs only passive
	// instruments (no random draws, no events), so a Trace or FlightRing
	// run's fingerprint is byte-identical to a bare one; TimeSeries is the
	// exception — its sampler is an engine event, documented on Options.
	if opt.Trace || opt.FlightRing > 0 || opt.TimeSeries > 0 {
		r.obsRegs = make([]*obs.Registry, nbuf)
		for i := range r.obsRegs {
			r.obsRegs[i] = obs.NewRegistry()
		}
		if opt.Trace || opt.FlightRing > 0 {
			// Full buffers when the merged stream is wanted; bounded
			// rings when only the flight recorder needs recent history.
			ringCap := 0
			if !opt.Trace {
				ringCap = opt.FlightRing
			}
			r.tracer = obs.NewTracer(nbuf, ringCap)
		}
		var shards []*obs.ShardTrace
		if r.tracer != nil {
			shards = r.tracer.Shards
		}
		net.AttachObs(r.obsRegs, shards)
		if opt.FlightRing > 0 {
			r.flight = obs.NewFlightRecorder(r.tracer, opt.FlightRing, opt.FlightDir)
			if se := net.Sharded(); se != nil {
				se.SetViolationHook(func(src, dst int, msg string) {
					// Mid-window only the offending shard's ring is safe
					// to read; dump it before the panic unwinds so the
					// artifact survives the crash.
					if p, derr := r.flight.DumpShard(src, msg); derr == nil {
						r.flightDump = p
					}
				})
			}
		}
		if r.tracer != nil && r.sharded {
			ctl := r.tracer.Shards[nbuf-1]
			var barrierN uint64
			net.Sharded().OnBarrier(func() {
				barrierN++
				ctl.Emit(obs.Event{At: engine.Now(), Kind: obs.EvBarrier, Node: -1, Peer: -1, Num: barrierN})
			})
		}
	}

	// The workload plane must install before the cores start (its
	// per-peer validation pipelines hook OnCommit) and before any restart
	// event can fire (its rebuild hook must be registered).
	if sc.Workload != nil {
		plane, err := workload.Install(net, *sc.Workload)
		if err != nil {
			return nil, err
		}
		r.plane = plane
		if r.tracer != nil {
			// Block cutting happens on the ordering engine's goroutine
			// (the consenter shard, when sharded).
			ordTrace := r.tracer.Shards[net.OrdObsContext()]
			ordEng := net.OrdererEngine()
			plane.OnBlockCut(func(consenter int, num uint64, txs int) {
				ordTrace.Emit(obs.Event{
					At: ordEng.Now(), Kind: obs.EvBlockCut,
					Node: int32(consenter), Peer: -1, Num: num, Aux: uint64(txs),
				})
			})
		}
	}
	if opt.TimeSeries > 0 {
		// The sampler merges every context's registry into one row per
		// period. It runs on the control engine — at coordinator barriers
		// under a sharded network — where all shard-local registries are
		// quiescent and safe to read.
		r.series = obs.NewSeries(opt.TimeSeries)
		sampler := engine.Every(opt.TimeSeries, func() {
			r.series.Sample(engine.Now(), r.obsRegs)
		})
		defer sampler.Stop()
	}

	net.StartAll()
	if sc.MeasureMembership {
		// Sample twice a second once the initial heartbeat view has had
		// Warmup to form. The sampler only reads core state — no random
		// draws, no sends — so it cannot perturb the run it measures.
		r.convergedAt = -1
		sampler := engine.Every(viewSampleInterval, r.sampleViews)
		defer sampler.Stop()
	}
	for _, i := range sc.InitialDown {
		net.Crash(i)
	}
	if len(sc.InitialDown) > 0 {
		r.tracef("start with peers %s down", rangeSpec(sc.InitialDown))
	}

	// Schedule the dissemination workload: the ordering service streams
	// each cut block to every organization's leader (and retries
	// undelivered backlogs). With a workload plane the chain comes from
	// the plane's ordering service instead.
	var blocks []*ledger.Block
	if sc.Blocks > 0 {
		blocks = harness.BuildChain(sc.Blocks, opt.TxPerBlock, opt.TxPayload, opt.Seed)
		for i, b := range blocks {
			b := b
			engine.At(sc.Warmup+time.Duration(i)*sc.BlockInterval, func() {
				net.Append(b)
				r.sampleHeap()
			})
		}
	}

	// Schedule the fault script.
	for idx, ev := range sc.Events {
		idx, ev := idx, ev
		engine.At(ev.At, func() {
			r.tracef("%s", ev.Action)
			if r.tracer != nil {
				r.emitCtl(obs.Event{At: engine.Now(), Kind: obs.EvFault, Node: -1, Peer: -1, Num: uint64(idx)})
			}
			ev.Action.apply(r)
			r.sampleHeap()
		})
	}

	net.RunUntil(sc.End())
	net.StopAll()
	r.sampleHeapNow()

	// The report snapshots every fingerprinted counter (EngineEvents
	// included) before the leak audit's bounded drain executes the
	// deliveries still in flight at End — the drain must settle refcounts
	// without moving a single reported number.
	rep := r.report(blocks)
	if err := r.checkPoolLeaks(); err != nil {
		return nil, err
	}
	return rep, nil
}

// checkPoolLeaks asserts the pooled-envelope refcount invariant on every
// run: once in-flight deliveries settle, every Data/PushDigest drawn from a
// protocol's pool must have been released exactly refs times, so both
// outstanding counters read zero. Deliveries scheduled just before End are
// still in transit when the run stops (a release per delivery attempt is
// the invariant, and those attempts have not happened yet), so the audit
// first drains the engines a grace period past End — the cores are stopped,
// so the extra events release envelopes and do nothing else.
func (r *runner) checkPoolLeaks() error {
	r.net.RunUntil(r.sc.End() + 5*time.Second)
	type pooled interface{ PoolOutstanding() (data, digest int) }
	var data, digest int
	for _, c := range r.net.Cores {
		if p, ok := c.Proto().(pooled); ok {
			d, g := p.PoolOutstanding()
			data += d
			digest += g
		}
	}
	if data != 0 || digest != 0 {
		// The engines are quiescent after the drain, so the full
		// flight-recorder dump (every context) is safe here.
		detail := ""
		if r.flight != nil {
			reason := fmt.Sprintf("pool leak after drain: %d data, %d push-digest outstanding", data, digest)
			if p, derr := r.flight.Dump(reason); derr == nil {
				r.flightDump = p
				detail = fmt.Sprintf("; flight dump: %s", p)
			}
		}
		return fmt.Errorf("scenario: %q leaked pooled envelopes after drain: %d data, %d push-digest outstanding%s",
			r.sc.Name, data, digest, detail)
	}
	return nil
}

// actionPeers returns the global peer indices an action addresses, for
// up-front range validation (a bad index must fail Run, not panic
// mid-simulation).
func actionPeers(a Action) []int {
	switch a := a.(type) {
	case CrashPeers:
		return a.Peers
	case RestartPeers:
		return a.Peers
	case SlowPeers:
		return a.Peers
	}
	return nil
}

// actionConsenters returns the consenter indices an action addresses and
// whether the action requires a consenter cluster at all.
func actionConsenters(a Action) (idxs []int, needs bool) {
	switch a := a.(type) {
	case CrashConsenter:
		return []int{a.Consenter}, true
	case RestartConsenter:
		return []int{a.Consenter}, true
	case CrashConsenterLeader:
		return nil, true
	case IsolateConsenters:
		return a.Consenters, true
	}
	return nil, false
}

// actionOrgs returns the organization indices an action addresses.
func actionOrgs(a Action) []int {
	switch a := a.(type) {
	case CrashOrg:
		return []int{a.Org}
	case RestartOrg:
		return []int{a.Org}
	case CrashOrgLeader:
		return []int{a.Org}
	case IsolateOrgs:
		return a.Orgs
	}
	return nil
}

// onDeliver traces ordering-service deliveries and maintains the injected
// counters. Redeliveries (leader failover replaying the stream) are traced
// separately and never recounted.
func (r *runner) onDeliver(org, peer int, b *ledger.Block, redelivery bool) {
	if r.tracer != nil {
		// Deliveries run on the control engine (the pump's timer host).
		var re uint64
		if redelivery {
			re = 1
		}
		r.emitCtl(obs.Event{
			At: r.net.Engine.Now(), Kind: obs.EvDeliver,
			Node: int32(peer), Peer: int32(org), Num: b.Num, Aux: re,
		})
	}
	if !r.orgSeen[org][b.Num] {
		r.orgSeen[org][b.Num] = true
		if !r.seen[b.Num] {
			r.seen[b.Num] = true
			r.injected++
		}
		if r.top.Orgs() == 1 {
			r.tracef("deliver block %d -> peer %d", b.Num, peer)
		} else {
			r.tracef("deliver block %d -> org %d peer %d", b.Num, org, peer)
		}
		return
	}
	if redelivery {
		if r.top.Orgs() == 1 {
			r.tracef("redeliver block %d -> peer %d", b.Num, peer)
		} else {
			r.tracef("redeliver block %d -> org %d peer %d", b.Num, org, peer)
		}
	}
}

// instrument installs the measurement hooks on a (possibly restarted) core.
// It runs during NewNetwork, before r.net is assigned, so the callbacks
// resolve the engine lazily.
func (r *runner) instrument(i int, core *gossip.Core) {
	org := r.top.OrgOf(i)
	core.OnCommit(func(b *ledger.Block) {
		if int64(b.Num) != r.lastCommit[i]+1 {
			r.orderViolations[org]++
		}
		r.lastCommit[i] = int64(b.Num)
		if r.tracer != nil {
			r.emitOrg(org, obs.Event{
				At: r.net.EngineFor(i).Now(), Kind: obs.EvBlockCommit,
				Node: int32(i), Peer: -1, Num: b.Num, Aux: uint64(len(b.Txs)),
			})
		}
		if r.recovering[i] && b.Num+1 >= uint64(r.injected) {
			lat := r.net.EngineFor(i).Now() - r.restartAt[i]
			r.orgRecs[org].Record(lat)
			r.recovering[i] = false
			r.orgTracef(org, "peer %d caught up to height %d, %v after restart", i, b.Num+1, lat)
		}
	})
	core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
		start, ok := r.orgStart[org][b.Num]
		if !ok {
			r.orgStart[org][b.Num] = at
			return
		}
		// Catch-up receptions after a restart measure recovery, not the
		// epidemic; keep them out of the dissemination distribution.
		if !r.recovering[i] && at >= start {
			r.lat.Record(org, b.Num, wire.NodeID(i), at-start)
		}
	})
	core.OnPeerStateChange(func(p wire.NodeID, live bool, at time.Duration) {
		r.transitions[org]++
		if r.tracer != nil {
			var alive uint64
			if live {
				alive = 1
			}
			r.emitOrg(org, obs.Event{
				At: at, Kind: obs.EvMembership,
				Node: int32(i), Peer: int32(p), Num: alive,
			})
		}
	})
}

func (r *runner) crash(i int) {
	if r.net.Crashed(i) {
		return
	}
	r.net.Crash(i)
	r.recovering[i] = false
}

func (r *runner) restart(i int) {
	if !r.net.Crashed(i) {
		return
	}
	// The fresh core commits from zero again; reset the per-peer ordering
	// and recovery trackers before its hooks fire.
	r.lastCommit[i] = -1
	r.restartAt[i] = r.net.Engine.Now()
	r.recovering[i] = r.injected > 0
	r.net.Restart(i)
}

// partition cuts peers [0, split) plus the ordering service (the orderer,
// or every consenter) from peers [split, n). Range validation happened in
// Run. Workload clients are not listed, so they land in group 0 with the
// ordering service (transport semantics): submissions keep flowing, but
// endorsement against peers on the far side fails.
func (r *runner) partition(split int) {
	sideA := make([]wire.NodeID, 0, split+1)
	for i := 0; i < split; i++ {
		sideA = append(sideA, wire.NodeID(i))
	}
	sideA = append(sideA, r.net.OrderingNodeIDs()...)
	sideB := make([]wire.NodeID, 0, r.top.Total()-split)
	for i := split; i < r.top.Total(); i++ {
		sideB = append(sideB, wire.NodeID(i))
	}
	r.net.Net.Partition(sideA, sideB)
}

// isolateOrgs partitions each listed organization into its own group; the
// remaining organizations and the orderer form the main group. With a
// workload plane, an organization's clients are cut off with it (they sit
// on the organization's site), so an isolated organization's submissions
// fail as SubmitErrors instead of silently reaching the orderer.
func (r *runner) isolateOrgs(orgs []int) {
	cut := make(map[int]bool, len(orgs))
	for _, o := range orgs {
		cut[o] = true
	}
	main := make([]wire.NodeID, 0, r.top.Total()+1)
	groups := make([][]wire.NodeID, 1, len(orgs)+1)
	for o := 0; o < r.top.Orgs(); o++ {
		ids := make([]wire.NodeID, 0, r.top.Size(o))
		for _, i := range r.top.OrgSpan(o) {
			ids = append(ids, wire.NodeID(i))
		}
		if r.plane != nil {
			ids = append(ids, r.plane.ClientNodes(o)...)
		}
		if cut[o] {
			groups = append(groups, ids)
		} else {
			main = append(main, ids...)
		}
	}
	main = append(main, r.net.OrderingNodeIDs()...)
	groups[0] = main
	r.net.Net.Partition(groups...)
}

// isolateConsenters cuts the listed consenters (one group, together) from
// everything else: the remaining consenters, every peer, and every
// workload client stay in the main group.
func (r *runner) isolateConsenters(idxs []int) {
	cut := make(map[int]bool, len(idxs))
	isolated := make([]wire.NodeID, 0, len(idxs))
	for _, c := range idxs {
		if !cut[c] {
			cut[c] = true
			isolated = append(isolated, r.net.ConsenterID(c))
		}
	}
	main := make([]wire.NodeID, 0, r.top.Total())
	for i := 0; i < r.top.Total(); i++ {
		main = append(main, wire.NodeID(i))
	}
	for c := 0; c < r.net.Consenters(); c++ {
		if !cut[c] {
			main = append(main, r.net.ConsenterID(c))
		}
	}
	if r.plane != nil {
		for o := 0; o < r.top.Orgs(); o++ {
			main = append(main, r.plane.ClientNodes(o)...)
		}
	}
	r.net.Net.Partition(main, isolated)
}

// viewSampleInterval is the membership sampler's period.
const viewSampleInterval = 500 * time.Millisecond

// heapSampleInterval throttles heap high-water sampling: barriers fire every
// few simulated milliseconds at 100k scale, and a ReadMemStats per barrier
// would dominate wall time.
const heapSampleInterval = 500 * time.Millisecond

// sampleHeap records the heap high-water mark, at most once per
// heapSampleInterval of simulated time. It reads wall-side runtime state
// only — no random draws, no sends, no events — so it cannot perturb the
// simulation it measures.
func (r *runner) sampleHeap() {
	now := r.net.Engine.Now()
	if r.heapSampled && now-r.lastHeapAt < heapSampleInterval {
		return
	}
	r.heapSampled = true
	r.lastHeapAt = now
	r.sampleHeapNow()
}

// sampleHeapNow is sampleHeap without the throttle (the run-end sample).
func (r *runner) sampleHeapNow() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if m.HeapAlloc > r.heapHigh {
		r.heapHigh = m.HeapAlloc
	}
}

// sampleViews takes one membership measurement (MeasureMembership only):
// the mean view completeness over live peers — each peer's live view
// intersected with its organization's actually live members — and whether
// every live peer currently agrees on its organization's true leader. The
// streak-tracking behind convergedAt makes LeaderConvergence "the last
// time somebody still disagreed" rather than the first lucky agreement.
func (r *runner) sampleViews() {
	now := r.net.Engine.Now()
	if now < r.sc.Warmup {
		return // let the initial heartbeat view form first
	}
	var complSum float64
	var complN int
	agree := true
	for o := 0; o < r.top.Orgs(); o++ {
		// The ground truth: the organization's actually live (non-crashed)
		// members and its true leader, from the fault surface.
		r.actualBuf = r.actualBuf[:0]
		for _, i := range r.top.OrgSpan(o) {
			if !r.net.Crashed(i) {
				r.actualBuf = append(r.actualBuf, wire.NodeID(i))
			}
		}
		if len(r.actualBuf) == 0 {
			continue
		}
		trueLeader := wire.NodeID(r.net.OrgLeader(o))
		for _, i := range r.top.OrgSpan(o) {
			if r.net.Crashed(i) {
				continue
			}
			core := r.net.Cores[i]
			r.liveBuf = core.LivePeersInto(r.liveBuf)
			// Both slices are sorted ascending: count the intersection
			// with one merge pass. Entries outside the organization (none
			// today: views are per-org) fall out naturally.
			inter, a := 0, 0
			for _, p := range r.liveBuf {
				for a < len(r.actualBuf) && r.actualBuf[a] < p {
					a++
				}
				if a < len(r.actualBuf) && r.actualBuf[a] == p {
					inter++
					a++
				}
			}
			complSum += float64(inter) / float64(len(r.actualBuf))
			complN++
			if core.LeaderPeer() != trueLeader {
				agree = false
			}
		}
	}
	if complN == 0 {
		return
	}
	r.viewSamples++
	r.lastCompl = complSum / float64(complN)
	if !agree {
		r.convergedAt = -1
	} else if r.convergedAt < 0 {
		r.convergedAt = now
	}
}

// tracef records a trace line from the control context: fault actions,
// block deliveries, setup — everything that runs on the control engine (at
// coordinator barriers, when sharded).
func (r *runner) tracef(format string, args ...any) {
	r.traceTo(len(r.traces)-1, r.net.Engine.Now(), format, args...)
}

// orgTracef records a trace line from an organization's engine context —
// its own shard's goroutine, mid-window, when sharded.
func (r *runner) orgTracef(org int, format string, args ...any) {
	buf := len(r.traces) - 1
	if r.sharded {
		buf = org
	}
	r.traceTo(buf, r.net.OrgEngine(org).Now(), format, args...)
}

// ordTracef records a trace line from the ordering engine's context (the
// consenter cluster's shard, when sharded).
func (r *runner) ordTracef(format string, args ...any) {
	buf := len(r.traces) - 1
	if r.sharded {
		buf = len(r.traces) - 2
	}
	r.traceTo(buf, r.net.OrdererEngine().Now(), format, args...)
}

func (r *runner) traceTo(buf int, at time.Duration, format string, args ...any) {
	r.traces[buf] = append(r.traces[buf], traceEntry{at: at, line: fmt.Sprintf(format, args...)})
}

// emitOrg/emitOrd/emitCtl append one structured event to the owning
// emission context's buffer, following the same context layout as the
// text-trace buffers. Callers guard with r.tracer != nil so the
// tracing-off hot path pays only that check.
func (r *runner) emitOrg(org int, e obs.Event) {
	buf := 0
	if r.sharded {
		buf = org
	}
	r.tracer.Shards[buf].Emit(e)
}

func (r *runner) emitOrd(e obs.Event) {
	buf := 0
	if r.sharded {
		buf = len(r.tracer.Shards) - 2
	}
	r.tracer.Shards[buf].Emit(e)
}

func (r *runner) emitCtl(e obs.Event) {
	r.tracer.Shards[len(r.tracer.Shards)-1].Emit(e)
}

// mergedTrace assembles the final trace. Sequential runs keep the single
// buffer's exact emission order (fingerprint-pinned); sharded runs merge
// the per-context buffers by (time, buffer, position) — a total order that
// does not depend on how windows interleaved across goroutines.
func (r *runner) mergedTrace() []string {
	format := func(e traceEntry) string {
		return fmt.Sprintf("[%10v] %s", e.at, e.line)
	}
	if !r.sharded {
		out := make([]string, len(r.traces[0]))
		for i, e := range r.traces[0] {
			out[i] = format(e)
		}
		return out
	}
	type tagged struct {
		traceEntry
		buf, pos int
	}
	var all []tagged
	for b, buf := range r.traces {
		for p, e := range buf {
			all = append(all, tagged{e, b, p})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].buf != all[j].buf {
			return all[i].buf < all[j].buf
		}
		return all[i].pos < all[j].pos
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = format(e.traceEntry)
	}
	return out
}

// report assembles the final Report after the engine has drained.
func (r *runner) report(blocks []*ledger.Block) *Report {
	tv := r.net.TrafficView()
	var barrierFull, barrierElided uint64
	if se := r.net.Sharded(); se != nil {
		barrierFull, barrierElided = se.BarrierStats()
	}
	var transitions, violations int
	var recAll []time.Duration
	for o := 0; o < r.top.Orgs(); o++ {
		transitions += r.transitions[o]
		violations += r.orderViolations[o]
		recAll = append(recAll, r.orgRecs[o].Samples()...)
	}
	rep := &Report{
		Scenario:       r.sc.Name,
		Variant:        string(r.opt.Variant),
		Peers:          r.top.Total(),
		Orgs:           r.top.Orgs(),
		Seed:           r.opt.Seed,
		Sharded:        r.sharded,
		BlocksInjected: r.injected,
		Transitions:    transitions,
		EngineEvents:   r.net.ExecutedEvents(),
		PeakPending:    r.net.PeakPending(),
		HeapHighWater:  r.heapHigh,
		BarrierFull:    barrierFull,
		BarrierElided:  barrierElided,
		TotalBytes:     tv.TotalBytes(),
		SyncBytes: tv.BytesOf(wire.TypeStateRequest) +
			tv.BytesOf(wire.TypeStateResponse),
		SyncMessages: tv.CountOf(wire.TypeStateRequest) +
			tv.CountOf(wire.TypeStateResponse),
		Recoveries: metrics.SummarizeSamples(recAll),
		Latency:    r.lat.SummarizeAll(),
		Trace:      r.mergedTrace(),
	}
	if r.viewSamples > 0 {
		rep.ViewSamples = r.viewSamples
		rep.ViewCompleteness = r.lastCompl
		if r.convergedAt >= 0 {
			rep.LeaderConvergence = r.convergedAt
		} else {
			rep.LeaderConvergence = r.sc.End() // never converged
		}
	}
	var blockBytes int
	if len(blocks) > 0 {
		blockBytes = wire.BlockEncodedSize(blocks[0])
		rep.BlockBytes = blockBytes
	}
	for o := 0; o < r.top.Orgs(); o++ {
		or := OrgReport{
			Org:       o,
			Variant:   string(r.net.Orgs[o].Variant),
			Peers:     r.top.Size(o),
			Delivered: len(r.orgSeen[o]),
			Recovery:  metrics.Summarize(r.orgRecs[o].Distribution()),
			Latency:   r.lat.SummarizeGroup(o),
		}
		var inBytes uint64
		for _, i := range r.top.OrgSpan(o) {
			in, _ := tv.NodeTotals(wire.NodeID(i))
			inBytes += in
			if r.net.Crashed(i) {
				continue
			}
			or.Survivors++
			if r.lastCommit[i] == int64(r.injected)-1 {
				or.CaughtUp++
			}
			if r.recovering[i] {
				or.PendingRecoveries++
			}
		}
		or.InBytes = inBytes
		// Per-org overhead relates bytes entering the organization's NICs
		// to the ideal minimum of every delivered block reaching each
		// member exactly once (the leader's copy arrives from the orderer).
		or.Overhead = metrics.OverheadRatio(inBytes, blockBytes, r.top.Size(o), or.Delivered)
		rep.Survivors += or.Survivors
		rep.CaughtUp += or.CaughtUp
		rep.PendingRecoveries += or.PendingRecoveries
		rep.OrgReports = append(rep.OrgReports, or)
	}
	if k := r.net.Consenters(); k > 0 {
		rep.Consenters = k
		rep.Elections, rep.Leaderless = r.net.ElectionStats()
		rep.DeliverGap = r.net.MaxDeliverGap()
		for _, c := range r.net.Cores {
			rep.AnchorProbes += c.StateSyncStats().AnchorProbes
		}
	}
	if r.plane != nil {
		w := r.plane.Stats()
		rep.Workload = &w
	}
	rep.OrderViolations = violations
	if blockBytes > 0 {
		// Same definition of "ideal" as the per-org lines: every peer —
		// leaders included, their copy arrives from the orderer and is in
		// TotalBytes — receives each injected block exactly once.
		rep.Overhead = metrics.OverheadRatio(rep.TotalBytes, blockBytes, r.top.Total(), r.injected)
	}
	rep.Obs = r.buildObs(rep)
	if r.opt.Trace {
		rep.Events = r.tracer.Merged()
	}
	rep.Series = r.series
	rep.FlightDump = r.flightDump
	return rep
}

// buildObs assembles the report-time metrics snapshot: the shard-local
// registries merged (wire-level instruments), then every scattered report
// counter re-registered under one namespace so downstream consumers read
// a single inventory instead of scraping Report fields.
func (r *runner) buildObs(rep *Report) *obs.Snapshot {
	reg := obs.NewRegistry()
	for _, lr := range r.obsRegs {
		reg.Merge(lr)
	}
	reg.Counter("engine_events_total").Add(rep.EngineEvents)
	reg.Gauge("peak_pending_events").Set(int64(rep.PeakPending))
	reg.Gauge("heap_high_water_bytes").Set(int64(rep.HeapHighWater))
	reg.Counter("barriers_total", "kind", "full").Add(rep.BarrierFull)
	reg.Counter("barriers_total", "kind", "elided").Add(rep.BarrierElided)
	reg.Counter("traffic_bytes_total").Add(rep.TotalBytes)
	reg.Counter("state_sync_bytes_total").Add(rep.SyncBytes)
	reg.Counter("state_sync_msgs_total").Add(rep.SyncMessages)
	reg.Counter("blocks_injected_total").Add(uint64(rep.BlocksInjected))
	reg.Counter("membership_transitions_total").Add(uint64(rep.Transitions))
	reg.Counter("order_violations_total").Add(uint64(rep.OrderViolations))
	// Pool leak canaries: pooled envelopes still outstanding at End —
	// in-flight deliveries the post-report drain settles. The audit in
	// checkPoolLeaks asserts these reach zero after the drain.
	type pooled interface{ PoolOutstanding() (data, digest int) }
	var data, digest int
	for _, c := range r.net.Cores {
		if p, ok := c.Proto().(pooled); ok {
			d, g := p.PoolOutstanding()
			data += d
			digest += g
		}
	}
	reg.Gauge("pool_outstanding", "pool", "data").Set(int64(data))
	reg.Gauge("pool_outstanding", "pool", "push_digest").Set(int64(digest))
	if r.tracer != nil {
		reg.Counter("trace_events_total").Add(r.tracer.Total())
	}
	if rep.Consenters > 0 {
		reg.Counter("elections_total").Add(uint64(rep.Elections))
		reg.Gauge("leaderless_ns").Set(int64(rep.Leaderless))
	}
	if w := rep.Workload; w != nil {
		reg.Counter("workload_tx_total", "outcome", "submitted").Add(uint64(w.Submitted))
		reg.Counter("workload_tx_total", "outcome", "committed").Add(uint64(w.Committed))
		reg.Counter("workload_tx_total", "outcome", "conflict").Add(uint64(w.Conflicts))
		reg.Counter("workload_tx_total", "outcome", "retry").Add(uint64(w.Retries))
		reg.Counter("workload_blocks_cut_total", "cause", "size").Add(w.CutBySize)
		reg.Counter("workload_blocks_cut_total", "cause", "timeout").Add(w.CutByTimeout)
	}
	return reg.Snapshot()
}
