package scenario

import (
	"testing"
)

// The org-outage-orderer-down entry exists to exercise the anchor-peer
// cross-org recovery path, so the path must be load-bearing: with the
// orderer crashed for good, the downed organization recovers if and only
// if AnchorRecovery is on. Running the identical script with anchors
// disabled must leave every one of the victim org's peers behind.
func TestOrgOutageRecoversOnlyThroughAnchors(t *testing.T) {
	def, err := Lookup("org-outage-orderer-down")
	if err != nil {
		t.Fatal(err)
	}
	top := Uniform(2, 10)
	sc := def.Build(top)
	sc.Name = def.Name
	opt := Options{Peers: 20, Orgs: 2, Seed: 42}

	withAnchors, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if withAnchors.CaughtUp != withAnchors.Survivors || withAnchors.PendingRecoveries != 0 {
		t.Fatalf("with anchors: %d/%d caught up, %d pending — the new path failed",
			withAnchors.CaughtUp, withAnchors.Survivors, withAnchors.PendingRecoveries)
	}
	if withAnchors.OrderViolations != 0 {
		t.Fatalf("with anchors: %d order violations", withAnchors.OrderViolations)
	}
	// Anchor transfers are part of the recovery plane's accounted traffic.
	if withAnchors.SyncBytes == 0 || withAnchors.SyncMessages == 0 {
		t.Fatal("with anchors: no state-sync traffic attributed")
	}

	sc.AnchorRecovery = false
	without, err := Run(sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	victimSize := top.Size(top.Orgs() - 1)
	if got := without.Survivors - without.CaughtUp; got != victimSize {
		t.Fatalf("without anchors: %d peers behind at the end, want the whole victim org (%d)",
			got, victimSize)
	}
	if without.PendingRecoveries != victimSize {
		t.Fatalf("without anchors: %d pending recoveries, want %d",
			without.PendingRecoveries, victimSize)
	}
}

// An explicit OrgSizes layout bypasses the Peers/Orgs split, so it must
// still satisfy a catalog entry's MinOrgs — otherwise org-targeted scripts
// run on degenerate topologies (the "remote org" being the whole network)
// and report nonsense instead of failing.
func TestOrgSizesMustSatisfyMinOrgs(t *testing.T) {
	_, err := RunNamed("org-outage-orderer-down", Options{OrgSizes: []int{6}, Seed: 1})
	if err == nil {
		t.Fatal("single-org layout accepted by a MinOrgs=2 scenario")
	}
	if _, err := RunNamed("org-outage-orderer-down", Options{OrgSizes: []int{6, 4}, Seed: 1}); err != nil {
		t.Fatalf("two-org layout rejected: %v", err)
	}
}

// The asymmetric consortium entry must actually produce uneven org sizes
// and still converge.
func TestAsymConsortiumShapesUnevenOrgs(t *testing.T) {
	rep, err := RunNamed("org-asym-consortium", Options{Peers: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orgs != 3 {
		t.Fatalf("orgs = %d, want 3", rep.Orgs)
	}
	sizes := make([]int, 0, 3)
	uneven := false
	for _, or := range rep.OrgReports {
		sizes = append(sizes, or.Peers)
		if or.Peers != rep.OrgReports[0].Peers {
			uneven = true
		}
	}
	if !uneven {
		t.Fatalf("org sizes %v are uniform, want an asymmetric layout", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 20 {
		t.Fatalf("org sizes %v sum to %d, want the requested 20", sizes, total)
	}
	if rep.CaughtUp != rep.Survivors {
		t.Fatalf("%d/%d caught up", rep.CaughtUp, rep.Survivors)
	}
}
