package scenario

import (
	"runtime"
	"testing"
)

// The cross-shard determinism property: a sharded run's fingerprint is a
// pure function of (scenario, Options) — independent of how the shard
// goroutines are scheduled. Exercised across seeds and GOMAXPROCS ∈ {1, 4}:
// at 1 the windows execute effectively serially, at 4 they genuinely
// interleave, and the coordinator's barrier protocol must make both
// byte-identical.
func TestShardedFingerprintIndependentOfParallelism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, name := range []string{"sharded-crash-restart", "sharded-txload-steady"} {
		for _, seed := range []int64{1, 7, 42} {
			var prints []string
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				rep, err := RunNamed(name, Options{Peers: 20, Seed: seed})
				if err != nil {
					t.Fatalf("%s seed=%d procs=%d: %v", name, seed, procs, err)
				}
				if !rep.Sharded {
					t.Fatalf("%s seed=%d: expected a sharded run", name, seed)
				}
				prints = append(prints, rep.Fingerprint())
			}
			if prints[0] != prints[1] {
				t.Errorf("%s seed=%d: fingerprint depends on GOMAXPROCS:\n  1: %s\n  4: %s",
					name, seed, prints[0], prints[1])
			}
		}
	}
}

// The Sharding override: ShardOn runs any catalog entry sharded, ShardOff
// forces a Sharded entry back onto the sequential engine, and the two
// lineages genuinely differ (per-shard random streams are not the
// sequential engine's).
func TestShardingOverride(t *testing.T) {
	seq, err := RunNamed("sharded-crash-restart", Options{Peers: 20, Seed: 42, Sharding: ShardOff})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sharded {
		t.Fatal("ShardOff still ran sharded")
	}
	shd, err := RunNamed("crash-restart", Options{Peers: 20, Orgs: 2, Seed: 42, Sharding: ShardOn})
	if err != nil {
		t.Fatal(err)
	}
	if !shd.Sharded {
		t.Fatal("ShardOn did not run sharded")
	}
	if shd.CaughtUp != shd.Survivors {
		t.Errorf("sharded crash-restart left %d/%d caught up", shd.CaughtUp, shd.Survivors)
	}
	on, err := RunNamed("sharded-crash-restart", Options{Peers: 20, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if on.Fingerprint() == seq.Fingerprint() {
		t.Error("sharded and sequential lineages produced identical fingerprints")
	}
}

// A sharded run must reproduce the sequential run's *outcome* even though
// its fingerprint lineage differs: same blocks delivered, everyone caught
// up, no ordering violations.
func TestShardedRunMatchesSequentialOutcome(t *testing.T) {
	for _, name := range []string{"sharded-crash-restart", "sharded-view-convergence", "sharded-txload-steady"} {
		shd, err := RunNamed(name, Options{Peers: 20, Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seq, err := RunNamed(name, Options{Peers: 20, Seed: 42, Sharding: ShardOff})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if shd.BlocksInjected != seq.BlocksInjected {
			t.Errorf("%s: sharded injected %d blocks, sequential %d",
				name, shd.BlocksInjected, seq.BlocksInjected)
		}
		for label, rep := range map[string]*Report{"sharded": shd, "sequential": seq} {
			if rep.CaughtUp != rep.Survivors {
				t.Errorf("%s (%s): %d/%d caught up", name, label, rep.CaughtUp, rep.Survivors)
			}
			if rep.OrderViolations != 0 {
				t.Errorf("%s (%s): %d order violations", name, label, rep.OrderViolations)
			}
		}
		if w := shd.Workload; w != nil {
			if w.Submitted != w.Committed+w.Conflicts {
				t.Errorf("%s: workload accounting drifted: %d submitted != %d committed + %d conflicts",
					name, w.Submitted, w.Committed, w.Conflicts)
			}
		}
	}
}
