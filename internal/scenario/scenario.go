// Package scenario is a declarative, deterministic runner for large-scale
// fault and churn experiments against both gossip protocols. A Scenario is
// a timed script of fault actions — peer crashes and restarts (rejoining
// peers catch up through the recovery component), network partitions and
// heals, slow links, leader failover, packet loss, and staggered joins —
// executed on the discrete-event engine, so the same seed reproduces the
// same run byte for byte at any scale, including thousand-peer networks.
//
// Scenarios run on a multi-organization harness.Network (the paper's
// Figure 1 shape): a Topology of N organizations times M peers, each
// organization an isolated gossip domain with its own protocol choice and
// dynamic leader, fed by one ordering service. Actions address peers by
// global index or whole organizations (CrashOrg, RestartOrg,
// CrashOrgLeader, IsolateOrgs), and reports carry per-organization
// summaries next to the aggregate. The single-organization catalog entries
// are the Orgs=1 special case.
//
// The built-in catalog (see Catalog) covers the fault classes the paper's
// evaluation leaves out (§V runs a single fault-free organization); the
// runner reports per-scenario recovery latency, bandwidth overhead and the
// ordering invariants every surviving peer must keep.
package scenario

import (
	"fmt"
	"time"

	"fabricgossip/internal/harness"
	"fabricgossip/internal/wire"
	"fabricgossip/internal/workload"
)

// Scenario is a declarative fault experiment: a dissemination workload plus
// a script of timed fault events. Times are absolute virtual times from the
// start of the run.
type Scenario struct {
	Name        string
	Description string

	// Blocks blocks are injected at the current leader every
	// BlockInterval, starting at Warmup (which gives membership heartbeats
	// time to form the initial view).
	Blocks        int
	BlockInterval time.Duration
	Warmup        time.Duration
	// Tail is how long the run continues after the last injection —
	// the window in which recovery must close every gap.
	Tail time.Duration

	// InitialDown lists peers (global indices) that start crashed and join
	// later via a Restart event — staggered-join and whole-org cold-join
	// scenarios. The ordering service streams the backlog to whichever
	// leader eventually appears, so even an organization's lowest-id peer
	// may start down.
	InitialDown []int

	// OrgVariants optionally pins a protocol per organization (index =
	// org), overriding the run's variant — mixed original/enhanced
	// networks. Entries beyond the topology's org count are ignored;
	// missing entries inherit the run's variant.
	OrgVariants []harness.Variant

	// AnchorRecovery enables cross-organization state transfer through
	// anchor peers (harness.NetworkParams.AnchorRecovery): when the
	// ordering service goes silent, an organization's leader fetches
	// missing blocks from remote orgs' anchors. Off by default, so
	// pre-existing scripts are unaffected.
	AnchorRecovery bool
	// SwimMembership enables the SWIM-style membership extensions on
	// every peer (internal/membership): piggybacked event dissemination,
	// suspicion with refutation, and periodic view shuffling, at the
	// runner's default knobs. Off by default, so pre-existing scripts run
	// byte-identically.
	SwimMembership bool
	// MeasureMembership samples every live peer's membership view twice a
	// second (after Warmup) and reports view completeness and
	// leader-convergence time. It is independent of SwimMembership so the
	// same script can be measured with the mechanisms disabled — the
	// sparse-baseline comparison the load-bearing tests rely on. Off by
	// default (the sampling perturbs nothing, but its engine events would
	// move pre-existing fingerprints).
	MeasureMembership bool
	// WANDelay separates each organization (and the ordering service)
	// onto its own WAN site with this much extra one-way inter-site
	// latency. Zero keeps the single shared LAN.
	WANDelay time.Duration

	// Consenters runs the ordering service as a Raft cluster of this many
	// consenter nodes (harness.NetworkParams.Consenters): leader elections,
	// minority loss and WAN-separated consenters become scriptable via the
	// consenter actions below, and the report grows an ordering-cluster
	// section (election count, leaderless time, deliver gap, anchor
	// probes). Zero (the default) keeps the legacy single orderer, so
	// pre-existing scripts replay byte-identically. Options.Consenters
	// overrides it per run.
	Consenters int
	// ConsenterSpread, with WANDelay, scatters the consenters across the
	// organizations' WAN sites instead of one shared ordering site.
	ConsenterSpread bool

	// Sharded opts the run into the sharded parallel engine
	// (sim.ShardedEngine): one event loop per organization plus one for
	// the ordering service, synchronized in conservative lock-step
	// windows. A sharded run is deterministic — independent of
	// GOMAXPROCS — but is its own fingerprint lineage: per-shard random
	// streams differ from the single sequential engine's, so enabling it
	// moves a scenario's fingerprint exactly once. Off by default, so
	// pre-existing scripts replay byte-identically. Options.Sharding
	// overrides it per run. When the network's latency model leaves no
	// usable lookahead window, the run silently falls back to the
	// sequential engine.
	Sharded bool

	// Workload, when set, installs the transaction workload plane
	// (internal/workload): client populations drive endorsed transactions
	// through the full execute-order-validate pipeline, with blocks cut by
	// a real ordering service instead of the premade chain — so Blocks
	// must be 0. The submission window is scripted with StartWorkload and
	// StopWorkload events. Nil (the default) keeps the premade-chain
	// dissemination workload, byte-identical to before.
	Workload *workload.Config

	Events []Event
}

// End returns the virtual time the run finishes: the later of the last
// injection and the last event, plus Tail.
func (s Scenario) End() time.Duration {
	end := s.Warmup
	if s.Blocks > 0 {
		end += time.Duration(s.Blocks-1) * s.BlockInterval
	}
	for _, ev := range s.Events {
		if ev.At > end {
			end = ev.At
		}
	}
	return end + s.Tail
}

// Event schedules one fault action at an absolute virtual time.
type Event struct {
	At     time.Duration
	Action Action
}

// Action is one scripted fault operation. Implementations mutate the
// running organization through the runner.
type Action interface {
	apply(r *runner)
	// String describes the action for the run trace.
	String() string
}

// CrashPeers fails the listed peers: their cores stop and the network
// silences their endpoints.
type CrashPeers struct{ Peers []int }

func (a CrashPeers) apply(r *runner) {
	for _, i := range a.Peers {
		r.crash(i)
	}
}

func (a CrashPeers) String() string { return "crash peers " + rangeSpec(a.Peers) }

// CrashLeader fails organization 0's current leader (the lowest-id live
// peer, which is where the ordering service delivers); subsequent blocks go
// to the next live peer — the leader-failover path. For other organizations
// use CrashOrgLeader.
type CrashLeader struct{}

func (a CrashLeader) apply(r *runner) {
	if leader := r.net.OrgLeader(0); leader >= 0 {
		r.crash(leader)
	}
}

func (a CrashLeader) String() string { return "crash leader" }

// CrashOrg fails every live peer of one organization at once — a site-wide
// outage of a single member of the consortium.
type CrashOrg struct{ Org int }

func (a CrashOrg) apply(r *runner) {
	for _, i := range r.top.OrgSpan(a.Org) {
		r.crash(i)
	}
}

func (a CrashOrg) String() string { return fmt.Sprintf("crash org %d", a.Org) }

// RestartOrg revives every crashed peer of one organization with fresh
// cores and empty block stores: the whole-org cold-join path, caught up by
// the ordering service's deliver stream plus intra-org recovery.
type RestartOrg struct{ Org int }

func (a RestartOrg) apply(r *runner) {
	for _, i := range r.top.OrgSpan(a.Org) {
		if r.net.Crashed(i) {
			r.restart(i)
		}
	}
}

func (a RestartOrg) String() string { return fmt.Sprintf("restart org %d", a.Org) }

// CrashOrgLeader fails the named organization's current leader; the
// ordering service fails its deliver stream over to the organization's next
// live peer while other organizations disseminate undisturbed.
type CrashOrgLeader struct{ Org int }

func (a CrashOrgLeader) apply(r *runner) {
	if leader := r.net.OrgLeader(a.Org); leader >= 0 {
		r.crash(leader)
	}
}

func (a CrashOrgLeader) String() string { return fmt.Sprintf("crash leader of org %d", a.Org) }

// IsolateOrgs partitions the network so each listed organization can only
// talk within itself; everyone else (remaining organizations plus the
// ordering service) stays connected. Heal with HealPartition. The ordering
// service re-streams the missed backlog once the partition heals.
type IsolateOrgs struct{ Orgs []int }

func (a IsolateOrgs) apply(r *runner) { r.isolateOrgs(a.Orgs) }

func (a IsolateOrgs) String() string {
	return fmt.Sprintf("isolate orgs %v", a.Orgs)
}

// CrashOrderer fails the ordering service itself: every organization's
// deliver stream dies and no new blocks enter any organization until
// RestartOrderer. Combined with an org-wide crash, this is the outage the
// anchor-peer recovery path exists for — without AnchorRecovery the downed
// organization can never catch up.
type CrashOrderer struct{}

func (a CrashOrderer) apply(r *runner) { r.net.CrashOrderer() }

func (a CrashOrderer) String() string { return "crash orderer" }

// RestartOrderer revives a crashed ordering service; its durable chain
// resumes streaming to each organization's current leader.
type RestartOrderer struct{}

func (a RestartOrderer) apply(r *runner) { r.net.RestartOrderer() }

func (a RestartOrderer) String() string { return "restart orderer" }

// CrashConsenter fails one ordering-cluster consenter (requires
// Scenario/Options Consenters > 0): its Raft node stops and its endpoint
// goes silent. Crashing a minority leaves ordering live (after an election
// if the leader died); crashing a majority halts ordering entirely until
// enough consenters restart.
type CrashConsenter struct{ Consenter int }

func (a CrashConsenter) apply(r *runner) { r.net.CrashConsenter(a.Consenter) }

func (a CrashConsenter) String() string { return fmt.Sprintf("crash consenter %d", a.Consenter) }

// RestartConsenter revives a crashed consenter: it rejoins as a follower
// and catches up by Raft log replay from its durable log.
type RestartConsenter struct{ Consenter int }

func (a RestartConsenter) apply(r *runner) { r.net.RestartConsenter(a.Consenter) }

func (a RestartConsenter) String() string { return fmt.Sprintf("restart consenter %d", a.Consenter) }

// CrashConsenterLeader fails whichever consenter currently leads the
// ordering cluster — the forced-election fault. No-op while no consenter
// leads (already mid-election).
type CrashConsenterLeader struct{}

func (a CrashConsenterLeader) apply(r *runner) {
	if l := r.net.ConsenterLeader(); l >= 0 {
		r.tracef("consenter leader is %d", l)
		r.net.CrashConsenter(l)
	}
}

func (a CrashConsenterLeader) String() string { return "crash consenter leader" }

// IsolateConsenters partitions the listed consenters (together, as one
// group) from the rest of the network: peers, clients and the remaining
// consenters stay connected. Isolating a minority forces the majority side
// to re-elect if the leader was cut off; heal with HealPartition.
type IsolateConsenters struct{ Consenters []int }

func (a IsolateConsenters) apply(r *runner) { r.isolateConsenters(a.Consenters) }

func (a IsolateConsenters) String() string {
	return fmt.Sprintf("isolate consenters %v", a.Consenters)
}

// RestartPeers revives the listed peers with fresh cores and empty block
// stores: the rejoin-with-catchup path through state info + recovery.
type RestartPeers struct{ Peers []int }

func (a RestartPeers) apply(r *runner) {
	for _, i := range a.Peers {
		r.restart(i)
	}
}

func (a RestartPeers) String() string { return "restart peers " + rangeSpec(a.Peers) }

// RestartAll revives every crashed peer.
type RestartAll struct{}

func (a RestartAll) apply(r *runner) {
	for i := 0; i < r.net.TotalPeers(); i++ {
		if r.net.Crashed(i) {
			r.restart(i)
		}
	}
}

func (a RestartAll) String() string { return "restart all crashed peers" }

// PartitionSplit cuts the network in two: peers with index < Split on one
// side, the rest on the other. The ordering service stays with the first
// side (it keeps feeding whichever leader it can reach there).
type PartitionSplit struct{ Split int }

func (a PartitionSplit) apply(r *runner) { r.partition(a.Split) }

func (a PartitionSplit) String() string {
	return fmt.Sprintf("partition at peer %d", a.Split)
}

// HealPartition removes the active partition.
type HealPartition struct{}

func (a HealPartition) apply(r *runner) { r.net.Net.Heal() }

func (a HealPartition) String() string { return "heal partition" }

// SlowPeers adds Extra one-way latency to every message entering or leaving
// the listed peers (straggler hosts, WAN-attached org members). Extra <= 0
// clears the override.
type SlowPeers struct {
	Peers []int
	Extra time.Duration
}

func (a SlowPeers) apply(r *runner) {
	for _, i := range a.Peers {
		r.net.Net.SetNodeExtraDelay(wire.NodeID(i), a.Extra)
	}
}

func (a SlowPeers) String() string {
	if a.Extra <= 0 {
		return "clear slow peers " + rangeSpec(a.Peers)
	}
	return fmt.Sprintf("slow peers %s by %v", rangeSpec(a.Peers), a.Extra)
}

// PacketLoss sets the network-wide uniform message loss probability.
type PacketLoss struct{ Rate float64 }

func (a PacketLoss) apply(r *runner) { r.net.Net.SetDropRate(a.Rate) }

func (a PacketLoss) String() string {
	return fmt.Sprintf("packet loss %.0f%%", a.Rate*100)
}

// StartWorkload opens the workload plane's submission window: every client
// begins its arrival process. Requires Scenario.Workload.
type StartWorkload struct{}

func (a StartWorkload) apply(r *runner) { r.plane.Start() }

func (a StartWorkload) String() string { return "start workload" }

// StopWorkload closes the submission window: no new transactions are
// submitted, in-flight ones still resolve and count. Requires
// Scenario.Workload.
type StopWorkload struct{}

func (a StopWorkload) apply(r *runner) { r.plane.Stop() }

func (a StopWorkload) String() string { return "stop workload" }

// rangeSpec compactly formats a peer index list: contiguous ascending runs
// print as "a..b", anything else as an explicit count.
func rangeSpec(peers []int) string {
	switch len(peers) {
	case 0:
		return "(none)"
	case 1:
		return fmt.Sprintf("%d", peers[0])
	}
	contiguous := true
	for i := 1; i < len(peers); i++ {
		if peers[i] != peers[i-1]+1 {
			contiguous = false
			break
		}
	}
	if contiguous {
		return fmt.Sprintf("%d..%d", peers[0], peers[len(peers)-1])
	}
	return fmt.Sprintf("(%d peers)", len(peers))
}

// span returns [lo, hi) as an index list.
func span(lo, hi int) []int {
	if hi <= lo {
		return nil
	}
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
