package scenario

import (
	"runtime"
	"testing"
)

// TestAdaptiveLookaheadEquivalence pins the adaptive coordinator's safety
// and equivalence properties on the sharded crash-restart workload, across
// seeds and GOMAXPROCS settings:
//
//  1. Never a delivery inside an active window: the elided edges keep
//     every sub-window at the conservative lookahead, so SendCross's
//     delivery-inside-window panic invariant still guards every cross-shard
//     send — the runs completing at all proves no admission happened.
//  2. Byte-for-byte equivalence: an edge is only elided when it is provably
//     a no-op (no inbox traffic, no control event due, no hook work
//     requested), so the adaptive run's fingerprint must equal the
//     fixed-lookahead run's exactly.
//  3. The elision actually engages (BarrierElided > 0) — otherwise the
//     equivalence assertion would be vacuous.
func TestAdaptiveLookaheadEquivalence(t *testing.T) {
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, seed := range []int64{1, 7, 42} {
			opt := Options{Peers: 40, Seed: seed}
			adaptive, err := RunNamed("sharded-crash-restart", opt)
			if err != nil {
				t.Fatalf("procs=%d seed=%d adaptive: %v", procs, seed, err)
			}
			opt.FixedLookahead = true
			fixed, err := RunNamed("sharded-crash-restart", opt)
			if err != nil {
				t.Fatalf("procs=%d seed=%d fixed: %v", procs, seed, err)
			}
			if !adaptive.Sharded || !fixed.Sharded {
				t.Fatalf("procs=%d seed=%d: expected sharded runs, got adaptive=%v fixed=%v",
					procs, seed, adaptive.Sharded, fixed.Sharded)
			}
			if adaptive.BarrierElided == 0 {
				t.Errorf("procs=%d seed=%d: adaptive run elided no barriers — equivalence check is vacuous",
					procs, seed)
			}
			if fixed.BarrierElided != 0 {
				t.Errorf("procs=%d seed=%d: fixed-lookahead run elided %d barriers, want 0",
					procs, seed, fixed.BarrierElided)
			}
			if af, ff := adaptive.Fingerprint(), fixed.Fingerprint(); af != ff {
				t.Errorf("procs=%d seed=%d: adaptive fingerprint %s != fixed %s",
					procs, seed, af, ff)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
