package scenario

import (
	"strings"
	"testing"
	"time"

	"fabricgossip/internal/harness"
)

func TestCatalogHasAtLeastFiveScenarios(t *testing.T) {
	defs := Catalog()
	if len(defs) < 5 {
		t.Fatalf("catalog holds %d scenarios, want >= 5", len(defs))
	}
	for _, d := range defs {
		if d.Name == "" || d.Description == "" || d.Build == nil {
			t.Fatalf("incomplete catalog entry %+v", d)
		}
		orgs := max(1, d.MinOrgs)
		top := Uniform(orgs, 40/orgs)
		if d.Sizes != nil {
			top = Topology{Sizes: d.Sizes(40)}
		}
		sc := d.Build(top)
		if sc.Workload != nil {
			// Transaction-workload entries cut their own chain; the
			// submission window must be scripted.
			if sc.Blocks != 0 {
				t.Fatalf("%s: premade chain next to a workload plane", d.Name)
			}
			hasStart := false
			for _, ev := range sc.Events {
				if _, ok := ev.Action.(StartWorkload); ok {
					hasStart = true
				}
			}
			if !hasStart {
				t.Fatalf("%s: workload scenario never starts its workload", d.Name)
			}
		} else if sc.Blocks <= 0 || sc.BlockInterval <= 0 {
			t.Fatalf("%s: no workload", d.Name)
		}
		if sc.End() <= sc.Warmup {
			t.Fatalf("%s: End() = %v not after warmup", d.Name, sc.End())
		}
	}
}

func TestLookupUnknownScenario(t *testing.T) {
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("lookup of unknown scenario succeeded")
	}
}

func TestRangeSpec(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "(none)"},
		{[]int{4}, "4"},
		{[]int{2, 3, 4}, "2..4"},
		{[]int{1, 3, 9}, "(3 peers)"},
	}
	for _, c := range cases {
		if got := rangeSpec(c.in); got != c.want {
			t.Fatalf("rangeSpec(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCrashRestartRecoversEveryPeer(t *testing.T) {
	rep, err := RunNamed("crash-restart", Options{Peers: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlocksInjected != 10 {
		t.Fatalf("injected %d blocks, want 10", rep.BlocksInjected)
	}
	if rep.Survivors != 30 || rep.CaughtUp != 30 {
		t.Fatalf("caught up %d of %d survivors, want all 30\ntrace:\n%s",
			rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
	}
	if rep.OrderViolations != 0 {
		t.Fatalf("%d order violations", rep.OrderViolations)
	}
	if rep.PendingRecoveries != 0 {
		t.Fatalf("%d pending recoveries", rep.PendingRecoveries)
	}
	// 3 peers crashed after blocks had flowed: each must have recorded a
	// recovery latency.
	if rep.Recoveries.N != 3 {
		t.Fatalf("recorded %d recoveries, want 3\ntrace:\n%s",
			rep.Recoveries.N, strings.Join(rep.Trace, "\n"))
	}
	if rep.Recoveries.Max <= 0 {
		t.Fatal("recovery latency not positive")
	}
	if rep.Overhead < 1.0 {
		t.Fatalf("overhead %.2f below the ideal floor", rep.Overhead)
	}
}

func TestLeaderFailoverRedirectsOrderingService(t *testing.T) {
	rep, err := RunNamed("leader-failover", Options{Peers: 20, Seed: 3, Variant: harness.VariantOriginal})
	if err != nil {
		t.Fatal(err)
	}
	// After the leader crash, deliveries must switch to peer 1.
	var sawFailover bool
	for _, line := range rep.Trace {
		if strings.Contains(line, "-> peer 1") {
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatalf("ordering service never failed over\ntrace:\n%s", strings.Join(rep.Trace, "\n"))
	}
	if rep.Survivors != 20 || rep.CaughtUp != 20 {
		t.Fatalf("caught up %d of %d survivors\ntrace:\n%s",
			rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
	}
	// The rejoined ex-leader recorded its catch-up.
	if rep.Recoveries.N != 1 {
		t.Fatalf("recorded %d recoveries, want 1", rep.Recoveries.N)
	}
}

func TestStaggeredJoinWavesCatchUp(t *testing.T) {
	rep, err := RunNamed("staggered-join", Options{Peers: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 24 || rep.CaughtUp != 24 {
		t.Fatalf("caught up %d of %d survivors\ntrace:\n%s",
			rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
	}
	// All 12 initially-down peers joined after blocks flowed: every one
	// must have a recovery sample.
	if rep.Recoveries.N != 12 {
		t.Fatalf("recorded %d recoveries, want 12", rep.Recoveries.N)
	}
}

func TestMembershipTransitionsObserved(t *testing.T) {
	rep, err := RunNamed("crash-restart", Options{Peers: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Every survivor observes the crashed peers dying and rejoining, plus
	// the initial wave of first heartbeats; the exact count is seeded but
	// it must be well above the initial n*(n-1) live observations.
	if rep.Transitions <= 20*19 {
		t.Fatalf("transitions = %d, want > initial view formation (%d)", rep.Transitions, 20*19)
	}
}

func TestRunRejectsOutOfRangeActionPeers(t *testing.T) {
	sc := Scenario{
		Name:          "bad-index",
		Blocks:        2,
		BlockInterval: time.Second,
		Events: []Event{
			{At: time.Second, Action: CrashPeers{Peers: []int{10}}},
		},
	}
	if _, err := Run(sc, Options{Peers: 10}); err == nil {
		t.Fatal("scenario naming peer 10 of 10 accepted")
	}
}

func TestRunRejectsOutOfRangePartitionSplit(t *testing.T) {
	for _, split := range []int{0, 10, 11} {
		sc := Scenario{
			Name:          "bad-split",
			Blocks:        2,
			BlockInterval: time.Second,
			Events: []Event{
				{At: time.Second, Action: PartitionSplit{Split: split}},
			},
		}
		if _, err := Run(sc, Options{Peers: 10}); err == nil {
			t.Fatalf("split %d of 10 peers accepted", split)
		}
	}
}

func TestRunRejectsAllPeersInitiallyDown(t *testing.T) {
	sc := Scenario{
		Name:          "bad",
		Blocks:        1,
		BlockInterval: time.Second,
		InitialDown:   span(0, 10),
	}
	if _, err := Run(sc, Options{Peers: 10}); err == nil {
		t.Fatal("scenario with every peer initially down accepted")
	}
}

// Peer 0 starting down is legal now that the ordering service streams the
// backlog to whichever leader eventually appears: the org's lowest-id peer
// cold-joins and replays the chain from its own height.
func TestRunAllowsLeaderInInitialDown(t *testing.T) {
	sc := Scenario{
		Name:          "cold-leader",
		Blocks:        4,
		BlockInterval: 300 * time.Millisecond,
		Warmup:        time.Second,
		Tail:          30 * time.Second,
		InitialDown:   []int{0},
		Events: []Event{
			{At: 4 * time.Second, Action: RestartPeers{Peers: []int{0}}},
		},
	}
	rep, err := Run(sc, Options{Peers: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 10 || rep.CaughtUp != 10 {
		t.Fatalf("caught up %d of %d survivors\ntrace:\n%s",
			rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
	}
}

func TestRunRejectsIndivisibleOrgLayout(t *testing.T) {
	sc := Scenario{Name: "bad-split", Blocks: 1, BlockInterval: time.Second}
	if _, err := Run(sc, Options{Peers: 10, Orgs: 3}); err == nil {
		t.Fatal("10 peers across 3 orgs accepted")
	}
}

func TestRunRejectsOutOfRangeOrgActions(t *testing.T) {
	sc := Scenario{
		Name:          "bad-org",
		Blocks:        1,
		BlockInterval: time.Second,
		Events: []Event{
			{At: time.Second, Action: CrashOrg{Org: 2}},
		},
	}
	if _, err := Run(sc, Options{Peers: 10, Orgs: 2}); err == nil {
		t.Fatal("event naming org 2 of 2 accepted")
	}
}

// Scenario-level regression for the recovery-liveness fix: the most
// advanced peer (the leader, first to hold every block) crashes while a
// cold-joined peer is mid-catch-up. The laggard's advertised-height view
// still contains the dead leader at the maximum height; recovery must stop
// targeting it once the membership view expires it, and the laggard must
// converge within the tail.
func TestRecoveryConvergesWhenMostAdvancedPeerCrashes(t *testing.T) {
	sc := Scenario{
		Name:          "crash-most-advanced",
		Blocks:        6,
		BlockInterval: 300 * time.Millisecond,
		Warmup:        time.Second,
		Tail:          40 * time.Second,
		InitialDown:   []int{3},
		Events: []Event{
			// The laggard rejoins after injection finished, learns every
			// peer's height, and before its first recovery round fires the
			// leader — one of its max-height candidates — crashes.
			{At: 4 * time.Second, Action: RestartPeers{Peers: []int{3}}},
			{At: 4500 * time.Millisecond, Action: CrashLeader{}},
		},
	}
	for _, variant := range []harness.Variant{harness.VariantOriginal, harness.VariantEnhanced} {
		rep, err := Run(sc, Options{Peers: 4, Seed: 9, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Survivors != 3 || rep.CaughtUp != 3 {
			t.Fatalf("%s: caught up %d of %d survivors\ntrace:\n%s",
				variant, rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
		}
		if rep.PendingRecoveries != 0 {
			t.Fatalf("%s: laggard never converged\ntrace:\n%s",
				variant, strings.Join(rep.Trace, "\n"))
		}
		if rep.Recoveries.N != 1 {
			t.Fatalf("%s: recorded %d recoveries, want 1", variant, rep.Recoveries.N)
		}
	}
}

func TestMultiOrgCatalogEntriesConverge(t *testing.T) {
	for _, name := range []string{"org-partition-heal", "org-leader-failover", "org-cold-join", "org-mixed-protocols"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep, err := RunNamed(name, Options{Peers: 30, Orgs: 3, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Orgs != 3 || len(rep.OrgReports) != 3 {
				t.Fatalf("org breakdown missing: %+v", rep.OrgReports)
			}
			if rep.Survivors != 30 || rep.CaughtUp != 30 {
				t.Fatalf("caught up %d of %d survivors\ntrace:\n%s",
					rep.CaughtUp, rep.Survivors, strings.Join(rep.Trace, "\n"))
			}
			for _, or := range rep.OrgReports {
				if or.Delivered != rep.BlocksInjected {
					t.Fatalf("org %d delivered %d of %d blocks", or.Org, or.Delivered, rep.BlocksInjected)
				}
			}
		})
	}
}

// RunNamed must bump the organization count to a multi-org entry's minimum
// when the caller asks for fewer.
func TestRunNamedBumpsToMinOrgs(t *testing.T) {
	rep, err := RunNamed("org-cold-join", Options{Peers: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orgs != 2 {
		t.Fatalf("orgs = %d, want the entry's minimum of 2", rep.Orgs)
	}
	if rep.Survivors != 20 || rep.CaughtUp != 20 {
		t.Fatalf("caught up %d of %d survivors", rep.CaughtUp, rep.Survivors)
	}
}

func TestMixedProtocolOrgsReportTheirVariants(t *testing.T) {
	rep, err := RunNamed("org-mixed-protocols", Options{Peers: 20, Orgs: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrgReports[0].Variant != string(harness.VariantOriginal) ||
		rep.OrgReports[1].Variant != string(harness.VariantEnhanced) {
		t.Fatalf("org variants = %s/%s, want original/enhanced",
			rep.OrgReports[0].Variant, rep.OrgReports[1].Variant)
	}
}

func TestReportStringAndFingerprintStable(t *testing.T) {
	rep, err := RunNamed("slow-links", Options{Peers: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "scenario slow-links") {
		t.Fatalf("report header missing:\n%s", rep)
	}
	if rep.Fingerprint() != rep.Fingerprint() {
		t.Fatal("fingerprint not stable on the same report")
	}
}
