package client

import (
	"errors"
	"math/rand"
	"testing"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/endorse"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
)

func newEndorser(t *testing.T, name string, state *ledger.StateDB) *endorse.Endorser {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(len(name)) + 5))
	provider, err := msp.NewProvider(rng)
	if err != nil {
		t.Fatal(err)
	}
	id, signer, err := provider.Enroll(msp.RolePeer, "orgA", name, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := endorse.NewEndorser(id, signer, state)
	e.Install(chaincode.Counter{})
	return e
}

func TestInvokeSubmitsEndorsedTransaction(t *testing.T) {
	state := ledger.NewStateDB()
	var submitted []*ledger.Transaction
	c, err := New("client0", []*endorse.Endorser{newEndorser(t, "p0", state)},
		func(tx *ledger.Transaction) error { submitted = append(submitted, tx); return nil })
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Invoke("counter", []string{"incr", "k"}, []byte("pay"))
	if err != nil {
		t.Fatal(err)
	}
	if len(submitted) != 1 || submitted[0] != tx {
		t.Fatal("transaction not submitted")
	}
	if len(tx.Endorsements) != 1 || tx.Client != "client0" {
		t.Fatalf("tx = %+v", tx)
	}
	if s := c.Stats(); s.Submitted != 1 || s.ProposalConflicts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvokeDetectsProposalConflict(t *testing.T) {
	fresh := ledger.NewStateDB()
	stale := ledger.NewStateDB()
	fresh.ApplyBlockWrites(1, []uint32{0}, []ledger.RWSet{
		{Writes: []ledger.KVWrite{{Key: "k", Value: chaincode.EncodeUint64(3)}}},
	})
	c, err := New("client0",
		[]*endorse.Endorser{newEndorser(t, "p0", fresh), newEndorser(t, "p1", stale)},
		func(*ledger.Transaction) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Invoke("counter", []string{"incr", "k"}, nil)
	if !errors.Is(err, ErrProposalConflict) {
		t.Fatalf("err = %v, want ErrProposalConflict", err)
	}
	if s := c.Stats(); s.ProposalConflicts != 1 || s.Submitted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvokeEndorsementError(t *testing.T) {
	c, err := New("c", []*endorse.Endorser{newEndorser(t, "p0", ledger.NewStateDB())},
		func(*ledger.Transaction) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("missing-chaincode", nil, nil); err == nil {
		t.Fatal("unknown chaincode accepted")
	}
	if s := c.Stats(); s.EndorseErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvokeSubmitError(t *testing.T) {
	boom := errors.New("orderer unavailable")
	c, err := New("c", []*endorse.Endorser{newEndorser(t, "p0", ledger.NewStateDB())},
		func(*ledger.Transaction) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("counter", []string{"incr", "k"}, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failed submission must be counted, and not as a submission.
	if s := c.Stats(); s.SubmitErrors != 1 || s.Submitted != 0 {
		t.Fatalf("stats = %+v, want SubmitErrors=1 Submitted=0", s)
	}
}

func TestNewWithSourceTracksEndorserPopulation(t *testing.T) {
	state := ledger.NewStateDB()
	var current []*endorse.Endorser
	c, err := NewWithSource("c", func() []*endorse.Endorser { return current },
		func(*ledger.Transaction) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// No live endorsers: the invocation fails and counts an endorse error.
	if _, err := c.Invoke("counter", []string{"incr", "k"}, nil); err == nil {
		t.Fatal("invoke with no endorsers succeeded")
	}
	if s := c.Stats(); s.EndorseErrors != 1 {
		t.Fatalf("stats = %+v, want EndorseErrors=1", s)
	}
	// An endorser comes (back) up: the same client succeeds.
	current = []*endorse.Endorser{newEndorser(t, "p0", state)}
	if _, err := c.Invoke("counter", []string{"incr", "k"}, nil); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Submitted != 1 {
		t.Fatalf("stats = %+v, want Submitted=1", s)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("c", nil, func(*ledger.Transaction) error { return nil }); err == nil {
		t.Fatal("no endorsers accepted")
	}
	if _, err := New("c", []*endorse.Endorser{newEndorser(t, "p", ledger.NewStateDB())}, nil); err == nil {
		t.Fatal("nil submitter accepted")
	}
}
