// Package client implements the Fabric client driver (paper §II-B): it
// sends proposals to endorsing peers, combines their responses into an
// endorsed transaction, detects proposal-time conflicts (divergent read
// sets), and submits assembled transactions to the ordering service.
package client

import (
	"errors"
	"fmt"
	"sync"

	"fabricgossip/internal/endorse"
	"fabricgossip/internal/ledger"
)

// Submitter forwards an assembled transaction to the ordering service.
// order.Service.Broadcast satisfies it directly; deployments crossing a
// network wrap the transport send instead.
type Submitter func(tx *ledger.Transaction) error

// Stats counts client-side outcomes.
type Stats struct {
	Submitted         int
	ProposalConflicts int
	EndorseErrors     int
	// SubmitErrors counts transactions that endorsed cleanly but whose
	// Broadcast to the ordering service failed (orderer down or
	// unreachable). Needed to reconcile client-side accounting against the
	// orderer's transaction count under faults.
	SubmitErrors int
}

// EndorserSource yields the endorsers to use for one invocation; it lets a
// client track a changing population (peers crashing and restarting)
// instead of binding a fixed list at construction.
type EndorserSource func() []*endorse.Endorser

// Client drives transactions through the endorse-submit path.
type Client struct {
	name      string
	endorsers EndorserSource
	submit    Submitter

	mu    sync.Mutex
	stats Stats
}

// New creates a client that collects an endorsement from every listed
// endorser. The paper's Table II experiment uses a single endorsing peer to
// isolate validation-time conflicts.
func New(name string, endorsers []*endorse.Endorser, submit Submitter) (*Client, error) {
	if len(endorsers) == 0 {
		return nil, errors.New("client: need at least one endorser")
	}
	return NewWithSource(name, func() []*endorse.Endorser { return endorsers }, submit)
}

// NewWithSource creates a client that asks source for the current endorser
// set on every invocation. An empty set at invocation time is an endorse
// error (no live endorsing peers), not a constructor error.
func NewWithSource(name string, source EndorserSource, submit Submitter) (*Client, error) {
	if source == nil {
		return nil, errors.New("client: need an endorser source")
	}
	if submit == nil {
		return nil, errors.New("client: need a submitter")
	}
	return &Client{name: name, endorsers: source, submit: submit}, nil
}

// Name returns the client's identity string.
func (c *Client) Name() string { return c.name }

// Stats returns a copy of the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ErrProposalConflict is returned when endorsers produced divergent
// read/write sets (a proposal-time conflict, paper §II-C). The caller may
// retry with fresh endorsements.
var ErrProposalConflict = errors.New("client: proposal-time conflict")

// Invoke endorses and submits one transaction. The returned transaction has
// been accepted by the ordering service but not yet validated; validation
// outcomes surface at the peers.
func (c *Client) Invoke(ccName string, args []string, payload []byte) (*ledger.Transaction, error) {
	endorsers := c.endorsers()
	if len(endorsers) == 0 {
		c.bump(func(s *Stats) { s.EndorseErrors++ })
		return nil, errors.New("client: no endorsers available")
	}
	responses := make([]*endorse.Response, 0, len(endorsers))
	for _, e := range endorsers {
		resp, err := e.Endorse(c.name, ccName, args, payload)
		if err != nil {
			c.bump(func(s *Stats) { s.EndorseErrors++ })
			return nil, fmt.Errorf("client: endorsing on %s: %w", e.Identity().Name, err)
		}
		responses = append(responses, resp)
	}
	tx, err := endorse.AssembleTransaction(c.name, ccName, payload, responses)
	if err != nil {
		if errors.Is(err, endorse.ErrEndorsementsdiffer) {
			c.bump(func(s *Stats) { s.ProposalConflicts++ })
			return nil, fmt.Errorf("%w: %v", ErrProposalConflict, err)
		}
		return nil, err
	}
	if err := c.submit(tx); err != nil {
		c.bump(func(s *Stats) { s.SubmitErrors++ })
		return nil, fmt.Errorf("client: submitting: %w", err)
	}
	c.bump(func(s *Stats) { s.Submitted++ })
	return tx, nil
}

func (c *Client) bump(fn func(*Stats)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fn(&c.stats)
}
