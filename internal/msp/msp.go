// Package msp implements a minimal membership service provider: the trusted
// authority that certifies the identities of peers, orderers and clients in
// a permissioned deployment (paper §II-A).
//
// An identity is a (role, org, name, public key) tuple signed by the MSP
// root key. Nodes verify each other's certificates against the root public
// key before accepting protocol messages.
package msp

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"fabricgossip/internal/crypto"
)

// Role classifies what a certified identity is allowed to do.
type Role uint8

// Roles are numbered from 1 so the zero value is invalid.
const (
	RolePeer Role = iota + 1
	RoleOrderer
	RoleClient
)

// String returns the lowercase role name.
func (r Role) String() string {
	switch r {
	case RolePeer:
		return "peer"
	case RoleOrderer:
		return "orderer"
	case RoleClient:
		return "client"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Identity is a certified network participant.
type Identity struct {
	Role Role
	Org  string
	Name string
	Key  crypto.PublicKey
	Cert crypto.Signature // MSP root signature over the canonical encoding
}

func certBytes(role Role, org, name string, key crypto.PublicKey) []byte {
	b := make([]byte, 0, 1+len(org)+len(name)+len(key)+2)
	b = append(b, byte(role))
	b = append(b, byte(len(org)))
	b = append(b, org...)
	b = append(b, byte(len(name)))
	b = append(b, name...)
	b = append(b, key...)
	return b
}

// Errors returned by verification.
var (
	ErrUnknownIdentity = errors.New("msp: identity not certified by this provider")
	ErrWrongRole       = errors.New("msp: identity has wrong role")
)

// Provider is the trusted certification authority. It is safe for
// concurrent use.
type Provider struct {
	root *crypto.Signer

	mu     sync.RWMutex
	byName map[string]*Identity
}

// NewProvider creates a provider with a root key drawn from rng.
func NewProvider(rng *rand.Rand) (*Provider, error) {
	root, err := crypto.NewSigner(rng)
	if err != nil {
		return nil, fmt.Errorf("msp: generating root key: %w", err)
	}
	return &Provider{root: root, byName: make(map[string]*Identity)}, nil
}

// RootKey returns the root public key nodes use to verify certificates.
func (p *Provider) RootKey() crypto.PublicKey { return p.root.Public() }

// Enroll certifies a new participant and returns its identity together with
// a signer bound to that identity.
func (p *Provider) Enroll(role Role, org, name string, rng *rand.Rand) (*Identity, *crypto.Signer, error) {
	if role < RolePeer || role > RoleClient {
		return nil, nil, fmt.Errorf("msp: invalid role %d", role)
	}
	signer, err := crypto.NewSigner(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("msp: generating identity key: %w", err)
	}
	id := &Identity{
		Role: role,
		Org:  org,
		Name: name,
		Key:  signer.Public(),
	}
	id.Cert = p.root.Sign(certBytes(role, org, name, id.Key))

	p.mu.Lock()
	p.byName[qualified(org, name)] = id
	p.mu.Unlock()
	return id, signer, nil
}

// Lookup returns the certified identity for org/name, if any.
func (p *Provider) Lookup(org, name string) (*Identity, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	id, ok := p.byName[qualified(org, name)]
	return id, ok
}

func qualified(org, name string) string { return org + "/" + name }

// VerifyIdentity checks that id's certificate was issued by the holder of
// rootKey and optionally that it carries the expected role (pass 0 to skip
// the role check).
func VerifyIdentity(rootKey crypto.PublicKey, id *Identity, wantRole Role) error {
	if id == nil {
		return ErrUnknownIdentity
	}
	msg := certBytes(id.Role, id.Org, id.Name, id.Key)
	if err := crypto.Verify(rootKey, msg, id.Cert); err != nil {
		return fmt.Errorf("%w: %v", ErrUnknownIdentity, err)
	}
	if wantRole != 0 && id.Role != wantRole {
		return fmt.Errorf("%w: got %v, want %v", ErrWrongRole, id.Role, wantRole)
	}
	return nil
}
