package msp

import (
	"errors"
	"math/rand"
	"testing"

	"fabricgossip/internal/crypto"
)

func newProvider(t *testing.T) *Provider {
	t.Helper()
	p, err := NewProvider(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEnrollAndVerify(t *testing.T) {
	p := newProvider(t)
	rng := rand.New(rand.NewSource(2))
	id, signer, err := p.Enroll(RolePeer, "orgA", "peer0", rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyIdentity(p.RootKey(), id, RolePeer); err != nil {
		t.Fatalf("VerifyIdentity: %v", err)
	}
	// Identity key matches the returned signer.
	msg := []byte("payload")
	if err := crypto.Verify(id.Key, msg, signer.Sign(msg)); err != nil {
		t.Fatalf("identity signer mismatch: %v", err)
	}
}

func TestVerifyRejectsWrongRole(t *testing.T) {
	p := newProvider(t)
	rng := rand.New(rand.NewSource(2))
	id, _, _ := p.Enroll(RoleClient, "orgA", "c0", rng)
	err := VerifyIdentity(p.RootKey(), id, RolePeer)
	if !errors.Is(err, ErrWrongRole) {
		t.Fatalf("err = %v, want ErrWrongRole", err)
	}
	// Skipping the role check accepts the identity.
	if err := VerifyIdentity(p.RootKey(), id, 0); err != nil {
		t.Fatalf("role-agnostic verification failed: %v", err)
	}
}

func TestVerifyRejectsForgedCert(t *testing.T) {
	p := newProvider(t)
	otherP, err := NewProvider(rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	id, _, _ := p.Enroll(RolePeer, "orgA", "peer0", rng)
	if err := VerifyIdentity(otherP.RootKey(), id, RolePeer); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("err = %v, want ErrUnknownIdentity", err)
	}
}

func TestVerifyRejectsTamperedFields(t *testing.T) {
	p := newProvider(t)
	rng := rand.New(rand.NewSource(2))
	id, _, _ := p.Enroll(RolePeer, "orgA", "peer0", rng)
	tampered := *id
	tampered.Name = "peer1"
	if err := VerifyIdentity(p.RootKey(), &tampered, RolePeer); err == nil {
		t.Fatal("tampered name accepted")
	}
	tampered = *id
	tampered.Role = RoleOrderer
	if err := VerifyIdentity(p.RootKey(), &tampered, RoleOrderer); err == nil {
		t.Fatal("tampered role accepted")
	}
}

func TestVerifyNilIdentity(t *testing.T) {
	p := newProvider(t)
	if err := VerifyIdentity(p.RootKey(), nil, RolePeer); !errors.Is(err, ErrUnknownIdentity) {
		t.Fatalf("err = %v, want ErrUnknownIdentity", err)
	}
}

func TestLookup(t *testing.T) {
	p := newProvider(t)
	rng := rand.New(rand.NewSource(2))
	want, _, _ := p.Enroll(RoleOrderer, "ordererOrg", "o1", rng)
	got, ok := p.Lookup("ordererOrg", "o1")
	if !ok || got != want {
		t.Fatalf("Lookup = %v, %v; want the enrolled identity", got, ok)
	}
	if _, ok := p.Lookup("ordererOrg", "missing"); ok {
		t.Fatal("Lookup found a non-enrolled identity")
	}
}

func TestEnrollRejectsInvalidRole(t *testing.T) {
	p := newProvider(t)
	if _, _, err := p.Enroll(Role(0), "o", "n", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid role accepted")
	}
	if _, _, err := p.Enroll(Role(9), "o", "n", rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid role accepted")
	}
}

func TestRoleString(t *testing.T) {
	cases := map[Role]string{
		RolePeer:    "peer",
		RoleOrderer: "orderer",
		RoleClient:  "client",
		Role(7):     "role(7)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", r, got, want)
		}
	}
}
