// Package statesync is the recovery (anti-entropy) plane of the gossip
// layer, carved out of the core so both dissemination protocols share one
// engine: a Fetcher that owns request targeting, batch sizing and the
// in-flight/backoff state of catch-up, and a Provider that serves block
// ranges from frozen zero-copy batches (paper §III-A, "recovery").
//
// The pair talks to its peer through the narrow Host interface — ledger
// height and block access, message sending, the membership view's dead
// predicate and the peer's deterministic random stream — so the engine runs
// identically under gossip.Core on the simulated and TCP runtimes, and unit
// tests can drive it with a stub host.
//
// Beyond the intra-organization catch-up the paper describes, the Fetcher
// implements cross-organization state transfer through anchor peers: when
// the ordering service has been silent past a stall threshold, the
// organization's leader probes remote organizations' anchor peers for the
// blocks it is missing — Fabric's deliver-service fallback that lets an
// org-wide outage recover even with the orderer down. Anchor probing is off
// unless anchors are configured, so default deployments behave exactly as
// before.
package statesync

import (
	"sync"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Host is the narrow view of a peer the state-sync engine needs. gossip.Core
// implements it; all methods must be safe to call without external locking.
type Host interface {
	// Height returns the in-order ledger height (next needed block).
	Height() uint64
	// Block returns the stored body of block num, or nil.
	Block(num uint64) *ledger.Block
	// AddBlock stores a fetched block body, reporting whether it was new.
	AddBlock(b *ledger.Block) bool
	// Send transmits a message to another peer (loss-tolerant).
	Send(to wire.NodeID, msg wire.Message)
	// PeerDead reports whether the membership view has explicitly marked
	// the peer dead (observed live once, heartbeats since lapsed).
	PeerDead(p wire.NodeID) bool
	// IsLeader reports whether this peer currently believes it leads its
	// organization (anchor probing is a leader duty).
	IsLeader() bool
	// Rand returns the peer's deterministic random stream.
	Rand() *sim.Rand
	// Now returns the current virtual (or wall) time.
	Now() time.Duration
}

// Config parameterizes one peer's state-sync engine.
type Config struct {
	// Batch caps how many consecutive blocks one request fetches and one
	// response serves (gossip.Config.RecoveryBatch).
	Batch int

	// Anchors lists remote-organization anchor peers this peer's leader may
	// fetch from when the ordering service goes silent. Empty disables
	// cross-org transfer entirely.
	Anchors []wire.NodeID
	// OrdererStall is how long without an ordering-service delivery before
	// the leader considers the orderer unreachable and starts probing
	// anchors. Zero defaults to 5s when anchors are configured.
	OrdererStall time.Duration
}

// Stats is a point-in-time snapshot of one peer's state-sync counters, for
// metrics attribution and tests.
type Stats struct {
	// ResponsesIn / BlocksIn / BytesIn count StateResponse messages, the
	// blocks they carried and their encoded bytes, as received.
	ResponsesIn uint64
	BlocksIn    uint64
	BytesIn     uint64
	// AnchorProbes counts cross-org StateRequests sent to anchor peers.
	AnchorProbes uint64
	// Served / ServedCached count responses sent by the Provider and how
	// many of them were answered from a frozen cached batch.
	Served       uint64
	ServedCached uint64
}

// --- Fetcher ---

// Fetcher drives catch-up: it tracks every peer's advertised ledger height,
// detects when this peer is behind, targets the request (the most advanced
// live peer, ties broken by the deterministic random stream) and sizes the
// batch. When anchors are configured it also runs the cross-org fallback.
type Fetcher struct {
	host Host
	cfg  Config

	mu sync.Mutex
	// peers/heights are the advertised-heights view, stored densely:
	// peers is sorted ascending and heights is parallel to it — two words
	// per advertising peer instead of a map entry, and the candidate scan
	// walks ascending ids natively (no sort before the deterministic
	// random pick). Heights are only ever positive: Observe stores a
	// height strictly above the previous one, and the zero default never
	// inserts.
	peers   []wire.NodeID
	heights []uint64
	// maxAdvertised is an upper bound on every tracked height, raised on
	// Observe and tightened during scans: the caught-up steady state —
	// the overwhelming majority of ticks — exits on it without scanning.
	maxAdvertised uint64

	// Anchor in-flight/backoff state: lastDeliver is the most recent
	// ordering-service delivery (seeded with the construction time so a
	// fresh peer waits a full stall window before probing); cursor is the
	// round-robin anchor position, advanced whenever a probe yielded no
	// progress by the next tick (the backoff: an unresponsive or equally
	// stale anchor is rotated away from); probeHeight is the ledger height
	// when the previous probe went out.
	lastDeliver time.Duration
	cursor      int
	probeHeight uint64
	probed      bool

	responsesIn  uint64
	blocksIn     uint64
	bytesIn      uint64
	anchorProbes uint64
}

// NewFetcher builds a fetcher for the host. The orderer is considered
// healthy as of construction time.
func NewFetcher(host Host, cfg Config) *Fetcher {
	if cfg.OrdererStall == 0 {
		cfg.OrdererStall = 5 * time.Second
	}
	return &Fetcher{
		host:        host,
		cfg:         cfg,
		lastDeliver: host.Now(),
	}
}

// idxOf returns from's index in the sorted peers slice, or -1. Caller
// holds mu.
func (f *Fetcher) idxOf(from wire.NodeID) int {
	lo, hi := 0, len(f.peers)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.peers[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.peers) && f.peers[lo] == from {
		return lo
	}
	return -1
}

// Observe records a peer's advertised ledger height (from StateInfo).
// Heights only ever rise; stale advertisements are ignored.
func (f *Fetcher) Observe(from wire.NodeID, height uint64) {
	f.mu.Lock()
	if i := f.idxOf(from); i >= 0 {
		if height > f.heights[i] {
			f.heights[i] = height
			if height > f.maxAdvertised {
				f.maxAdvertised = height
			}
		}
	} else if height > 0 {
		lo, hi := 0, len(f.peers)
		for lo < hi {
			mid := (lo + hi) / 2
			if f.peers[mid] < from {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		f.peers = append(f.peers, 0)
		copy(f.peers[lo+1:], f.peers[lo:])
		f.peers[lo] = from
		f.heights = append(f.heights, 0)
		copy(f.heights[lo+1:], f.heights[lo:])
		f.heights[lo] = height
		if height > f.maxAdvertised {
			f.maxAdvertised = height
		}
	}
	f.mu.Unlock()
}

// Forget drops a peer's advertised height: recovery must not keep targeting
// a peer the membership view expired (its requests would vanish and
// catch-up would stall a full tick per round), and a stale maximum would
// also pin the view if the peer later rejoins with an empty ledger. The
// upper bound is not lowered here; the next scan tightens it.
func (f *Fetcher) Forget(p wire.NodeID) {
	f.mu.Lock()
	if i := f.idxOf(p); i >= 0 {
		copy(f.peers[i:], f.peers[i+1:])
		f.peers = f.peers[:len(f.peers)-1]
		copy(f.heights[i:], f.heights[i+1:])
		f.heights = f.heights[:len(f.heights)-1]
	}
	f.mu.Unlock()
}

// Heights returns a copy of the advertised-heights view.
func (f *Fetcher) Heights() map[wire.NodeID]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[wire.NodeID]uint64, len(f.peers))
	for i, p := range f.peers {
		out[p] = f.heights[i]
	}
	return out
}

// NoteDeliver records an ordering-service delivery: the orderer is alive,
// so anchor probing stands down.
func (f *Fetcher) NoteDeliver() {
	now := f.host.Now()
	f.mu.Lock()
	f.lastDeliver = now
	f.mu.Unlock()
}

// Tick runs one intra-organization recovery round: if this peer's ledger is
// behind the highest advertised height, it requests the consecutive missing
// blocks from one of the most advanced live peers.
//
// The caught-up steady state exits on the incrementally tracked
// maxAdvertised bound without scanning the heights map at all; the O(n)
// candidate scan runs only while actually behind. maxAdvertised is an
// over-approximation (Forget does not lower it until the next scan tightens
// it), which can cost a redundant scan but never changes which request is
// sent: the scan recomputes the true maximum and candidate set exactly.
func (f *Fetcher) Tick() {
	myH := f.host.Height()
	f.mu.Lock()
	if f.maxAdvertised <= myH {
		f.mu.Unlock()
		return
	}
	var bestH uint64
	var maxSeen uint64
	candidates := make([]wire.NodeID, 0, 4)
	for i, p := range f.peers {
		h := f.heights[i]
		if h > maxSeen {
			maxSeen = h
		}
		// Skip peers the membership view has marked dead: their heights may
		// linger (a StateInfo can arrive after the expiration sweep pruned
		// the entry) but a request to them can never be answered. Peers the
		// sparse heartbeat sample never observed stay eligible — at large n
		// most of the organization is in that state.
		if f.host.PeerDead(p) {
			continue
		}
		if h > bestH {
			bestH = h
			candidates = candidates[:0]
		}
		if h == bestH && h > 0 {
			candidates = append(candidates, p)
		}
	}
	f.maxAdvertised = maxSeen
	batch := uint64(f.cfg.Batch)
	if bestH <= myH || len(candidates) == 0 {
		f.mu.Unlock()
		return
	}
	// The scan walks peers in ascending id order, so candidates are already
	// in the canonical order the deterministic random pick requires. The
	// draw stays under mu: the host's rng is not thread-safe and on the TCP
	// runtime the periodic ticks fire on separate goroutines.
	best := candidates[f.host.Rand().Intn(len(candidates))]
	f.mu.Unlock()

	to := bestH
	if batch > 0 && to > myH+batch {
		to = myH + batch
	}
	f.host.Send(best, &wire.StateRequest{From: myH, To: to})
}

// AnchorTick runs one cross-organization probe round. Only the
// organization's current leader probes, and only once the ordering service
// has been silent past the stall threshold; a probe asks the current anchor
// for the next batch above this peer's own height (the anchor serves
// whatever consecutive run it holds). If the previous probe produced no
// ledger progress by this tick, the cursor rotates to the next anchor —
// the backoff that walks away from crashed or equally stale anchors.
func (f *Fetcher) AnchorTick() {
	if len(f.cfg.Anchors) == 0 || !f.host.IsLeader() {
		return
	}
	now := f.host.Now()
	myH := f.host.Height()
	f.mu.Lock()
	if now-f.lastDeliver < f.cfg.OrdererStall {
		f.mu.Unlock()
		return
	}
	if f.probed && myH <= f.probeHeight {
		f.cursor = (f.cursor + 1) % len(f.cfg.Anchors)
	}
	f.probed = true
	f.probeHeight = myH
	target := f.cfg.Anchors[f.cursor]
	f.anchorProbes++
	batch := uint64(f.cfg.Batch)
	if batch == 0 {
		batch = 32
	}
	f.mu.Unlock()

	f.host.Send(target, &wire.StateRequest{From: myH, To: myH + batch})
}

// HandleResponse stores a response's blocks and accounts the transfer.
func (f *Fetcher) HandleResponse(m *wire.StateResponse) {
	blocks := m.Blocks()
	f.mu.Lock()
	f.responsesIn++
	f.blocksIn += uint64(len(blocks))
	f.bytesIn += uint64(m.EncodedSize())
	f.mu.Unlock()
	for _, b := range blocks {
		f.host.AddBlock(b)
	}
}

// --- Provider ---

// Provider serves StateRequests from the host's block store. Responses are
// built once per distinct range, frozen (pre-encoded), and cached: at
// steady state — a wave of recovering peers asking for the same range — a
// request is answered by re-sending the cached message with zero
// allocations and zero re-encoding.
type Provider struct {
	host Host
	cfg  Config

	mu    sync.Mutex
	cache [providerCacheSize]cachedBatch

	served       uint64
	servedCached uint64
}

// providerCacheSize bounds the frozen-batch cache. Recovering peers cluster
// around a handful of distinct ranges at any moment, so a few slots give
// the steady-state hit rate without holding old encodings alive.
const providerCacheSize = 4

type cachedBatch struct {
	from, limit uint64
	resp        *wire.StateResponse
}

// NewProvider builds a provider over the host's block store.
func NewProvider(host Host, cfg Config) *Provider {
	return &Provider{host: host, cfg: cfg}
}

// Serve answers one StateRequest: the consecutive run of stored blocks in
// [req.From, req.To), capped at the configured batch, or nothing if the
// first block is missing (only consecutive runs are useful to the
// requester).
func (p *Provider) Serve(from wire.NodeID, req *wire.StateRequest) {
	limit := req.To
	if max := req.From + uint64(p.cfg.Batch); p.cfg.Batch > 0 && limit > max {
		limit = max
	}
	if resp := p.lookup(req.From, limit); resp != nil {
		p.host.Send(from, resp)
		return
	}
	var blocks []*ledger.Block
	for num := req.From; num < limit; num++ {
		b := p.host.Block(num)
		if b == nil {
			break
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return
	}
	resp := &wire.StateResponse{Batch: wire.NewBlockBatch(blocks).Freeze()}
	p.store(req.From, limit, resp)
	p.host.Send(from, resp)
}

// lookup returns a cached response that is still exactly what a fresh walk
// of the store would produce for [from, limit): either the cached batch is
// full (covers the whole range — later arrivals beyond it cannot change
// it), or it was cut short by a gap that is still open (one O(1) store
// probe verifies). Blocks are immutable and never removed, so no other
// invalidation exists.
func (p *Provider) lookup(from, limit uint64) *wire.StateResponse {
	p.mu.Lock()
	var resp *wire.StateResponse
	for i := range p.cache {
		e := &p.cache[i]
		if e.resp == nil || e.from != from || e.limit != limit {
			continue
		}
		n := uint64(len(e.resp.Blocks()))
		if from+n == limit || p.host.Block(from+n) == nil {
			resp = e.resp
			p.served++
			p.servedCached++
		}
		break
	}
	p.mu.Unlock()
	return resp
}

// store caches a freshly built response: it overwrites a stale entry for
// the same range (a gap that since filled), then prefers an empty slot,
// then evicts the lowest range — the one recovering peers have moved past.
func (p *Provider) store(from, limit uint64, resp *wire.StateResponse) {
	p.mu.Lock()
	slot := -1
	for i := range p.cache {
		e := &p.cache[i]
		if e.resp != nil && e.from == from && e.limit == limit {
			slot = i // exact range: replace the stale entry
			break
		}
	}
	if slot < 0 {
		for i := range p.cache {
			if p.cache[i].resp == nil {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		slot = 0
		for i := 1; i < len(p.cache); i++ {
			if p.cache[i].from < p.cache[slot].from {
				slot = i
			}
		}
	}
	p.cache[slot] = cachedBatch{from: from, limit: limit, resp: resp}
	p.served++
	p.mu.Unlock()
}

// --- stats ---

// CollectStats merges both halves' counters into one snapshot.
func CollectStats(f *Fetcher, p *Provider) Stats {
	var s Stats
	if f != nil {
		f.mu.Lock()
		s.ResponsesIn = f.responsesIn
		s.BlocksIn = f.blocksIn
		s.BytesIn = f.bytesIn
		s.AnchorProbes = f.anchorProbes
		f.mu.Unlock()
	}
	if p != nil {
		p.mu.Lock()
		s.Served = p.served
		s.ServedCached = p.servedCached
		p.mu.Unlock()
	}
	return s
}
