package statesync

import (
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// stubHost is a scriptable Host for unit-testing the engine in isolation.
type stubHost struct {
	height uint64
	blocks map[uint64]*ledger.Block
	dead   map[wire.NodeID]bool
	leader bool
	now    time.Duration
	rng    *sim.Rand

	sentTo  []wire.NodeID
	sentMsg []wire.Message
	added   []uint64
}

func newStubHost() *stubHost {
	return &stubHost{
		blocks: make(map[uint64]*ledger.Block),
		dead:   make(map[wire.NodeID]bool),
		leader: true,
		rng:    sim.NewRand(1),
	}
}

func (h *stubHost) Height() uint64                 { return h.height }
func (h *stubHost) Block(num uint64) *ledger.Block { return h.blocks[num] }
func (h *stubHost) AddBlock(b *ledger.Block) bool {
	if _, ok := h.blocks[b.Num]; ok {
		return false
	}
	h.blocks[b.Num] = b
	h.added = append(h.added, b.Num)
	return true
}
func (h *stubHost) Send(to wire.NodeID, msg wire.Message) {
	h.sentTo = append(h.sentTo, to)
	h.sentMsg = append(h.sentMsg, msg)
}
func (h *stubHost) PeerDead(p wire.NodeID) bool { return h.dead[p] }
func (h *stubHost) IsLeader() bool              { return h.leader }
func (h *stubHost) Rand() *sim.Rand             { return h.rng }
func (h *stubHost) Now() time.Duration          { return h.now }

func (h *stubHost) lastRequest(t *testing.T) (wire.NodeID, *wire.StateRequest) {
	t.Helper()
	for i := len(h.sentMsg) - 1; i >= 0; i-- {
		if r, ok := h.sentMsg[i].(*wire.StateRequest); ok {
			return h.sentTo[i], r
		}
	}
	t.Fatal("no StateRequest sent")
	return 0, nil
}

func storeBlocks(h *stubHost, nums ...uint64) {
	for _, n := range nums {
		h.blocks[n] = &ledger.Block{Num: n}
	}
}

func TestFetcherTargetsMostAdvancedLivePeer(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 10})
	f.Observe(3, 7)
	f.Observe(2, 4)
	f.Tick()
	to, req := h.lastRequest(t)
	if to != 3 {
		t.Fatalf("targeted %v, want the most advanced peer 3", to)
	}
	if req.From != 0 || req.To != 7 {
		t.Fatalf("requested [%d, %d), want [0, 7)", req.From, req.To)
	}
}

func TestFetcherBatchCapsRequest(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 4})
	f.Observe(1, 100)
	f.Tick()
	_, req := h.lastRequest(t)
	if req.From != 0 || req.To != 4 {
		t.Fatalf("requested [%d, %d), want the batch cap [0, 4)", req.From, req.To)
	}
}

// The caught-up steady state must exit on the incrementally tracked upper
// bound without sending or consuming randomness.
func TestFetcherCaughtUpIsSilent(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 10})
	f.Observe(2, 5)
	h.height = 5
	f.Tick()
	if len(h.sentMsg) != 0 {
		t.Fatalf("caught-up tick sent %d messages", len(h.sentMsg))
	}
}

// A dead peer's height may linger until Forget, but the candidate scan must
// skip it — and tighten the stale upper bound so the steady-state fast path
// recovers once the survivors' maximum is reached.
func TestFetcherSkipsDeadPeersAndTightensBound(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 10})
	f.Observe(1, 9)
	f.Observe(2, 3)
	h.dead[1] = true
	f.Tick()
	to, req := h.lastRequest(t)
	if to != 2 {
		t.Fatalf("targeted %v, want the live peer 2", to)
	}
	if req.To != 3 {
		t.Fatalf("requested up to %d, want the live maximum 3", req.To)
	}
	if f.maxAdvertised != 9 {
		t.Fatalf("bound = %d after scan, want the true maximum 9 (dead heights still count)", f.maxAdvertised)
	}
	f.Forget(1)
	h.height = 3
	f.Tick() // scan once more: bound tightens to the survivors' maximum
	f.Tick()
	if f.maxAdvertised != 3 {
		t.Fatalf("bound = %d after Forget+scan, want 3", f.maxAdvertised)
	}
}

func TestProviderServesConsecutiveRunRespectingBatch(t *testing.T) {
	h := newStubHost()
	p := NewProvider(h, Config{Batch: 3})
	storeBlocks(h, 0, 1, 2, 3, 4, 6) // gap at 5
	p.Serve(9, &wire.StateRequest{From: 0, To: 100})
	resp := h.sentMsg[0].(*wire.StateResponse)
	if got := len(resp.Blocks()); got != 3 {
		t.Fatalf("served %d blocks, want the batch cap 3", got)
	}
	if !resp.Batch.Frozen() {
		t.Fatal("served batch not frozen")
	}
	p.Serve(9, &wire.StateRequest{From: 4, To: 7})
	resp = h.sentMsg[1].(*wire.StateResponse)
	if got := len(resp.Blocks()); got != 1 || resp.Blocks()[0].Num != 4 {
		t.Fatalf("gap response = %d blocks", got)
	}
	// Nothing to serve: silence.
	p.Serve(9, &wire.StateRequest{From: 10, To: 12})
	if len(h.sentMsg) != 2 {
		t.Fatal("empty-range request answered")
	}
}

// Repeated requests for the same range must re-send the cached frozen
// response (the zero-copy steady state) — same message value, no rebuild.
func TestProviderCachesFrozenBatches(t *testing.T) {
	h := newStubHost()
	p := NewProvider(h, Config{Batch: 8})
	storeBlocks(h, 0, 1, 2, 3)
	p.Serve(7, &wire.StateRequest{From: 0, To: 4})
	p.Serve(8, &wire.StateRequest{From: 0, To: 4})
	if h.sentMsg[0] != h.sentMsg[1] {
		t.Fatal("second serve rebuilt the response instead of reusing the cached one")
	}
	s := CollectStats(nil, p)
	if s.Served != 2 || s.ServedCached != 1 {
		t.Fatalf("stats = %+v, want 2 served / 1 cached", s)
	}
}

// A cached short batch (cut by a gap) must be invalidated once the gap
// fills: the requester would otherwise never see the longer run.
func TestProviderCacheInvalidatedWhenGapFills(t *testing.T) {
	h := newStubHost()
	p := NewProvider(h, Config{Batch: 8})
	storeBlocks(h, 0, 1, 3)
	p.Serve(7, &wire.StateRequest{From: 0, To: 4})
	if got := len(h.sentMsg[0].(*wire.StateResponse).Blocks()); got != 2 {
		t.Fatalf("first serve = %d blocks, want 2 (gap at 2)", got)
	}
	storeBlocks(h, 2) // the gap fills
	p.Serve(8, &wire.StateRequest{From: 0, To: 4})
	if got := len(h.sentMsg[1].(*wire.StateResponse).Blocks()); got != 4 {
		t.Fatalf("post-fill serve = %d blocks, want 4", got)
	}
}

func TestHandleResponseStoresBlocksAndAccounts(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 8})
	resp := &wire.StateResponse{Batch: wire.NewBlockBatch([]*ledger.Block{{Num: 0}, {Num: 1}})}
	f.HandleResponse(resp)
	if len(h.added) != 2 {
		t.Fatalf("stored %d blocks, want 2", len(h.added))
	}
	s := CollectStats(f, nil)
	if s.ResponsesIn != 1 || s.BlocksIn != 2 || s.BytesIn == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// Anchor probing: only the leader probes, only once the orderer has been
// silent past the stall window, and an unproductive anchor is rotated away
// from while a productive one is kept.
func TestAnchorProbeGatingAndRotation(t *testing.T) {
	h := newStubHost()
	anchors := []wire.NodeID{100, 200}
	f := NewFetcher(h, Config{Batch: 8, Anchors: anchors, OrdererStall: 5 * time.Second})

	// Orderer healthy (construction counts as a delivery): no probe.
	h.now = 3 * time.Second
	f.AnchorTick()
	if len(h.sentMsg) != 0 {
		t.Fatal("probed while the orderer was healthy")
	}

	// Not the leader: no probe even when stalled.
	h.now = 6 * time.Second
	h.leader = false
	f.AnchorTick()
	if len(h.sentMsg) != 0 {
		t.Fatal("non-leader probed")
	}

	h.leader = true
	h.height = 2
	f.AnchorTick()
	to, req := h.lastRequest(t)
	if to != 100 {
		t.Fatalf("first probe went to %v, want anchor 100", to)
	}
	if req.From != 2 || req.To != 10 {
		t.Fatalf("probe asked [%d, %d), want [2, 10)", req.From, req.To)
	}

	// No progress by the next tick: rotate to the next anchor.
	h.now = 8 * time.Second
	f.AnchorTick()
	if to, _ := h.lastRequest(t); to != 200 {
		t.Fatalf("stalled probe went to %v, want rotation to anchor 200", to)
	}

	// Progress: stay with the productive anchor.
	h.height = 6
	h.now = 10 * time.Second
	f.AnchorTick()
	if to, _ := h.lastRequest(t); to != 200 {
		t.Fatalf("productive probe went to %v, want to stay on 200", to)
	}

	// A delivery stands probing down again.
	f.NoteDeliver()
	h.now = 12 * time.Second
	before := len(h.sentMsg)
	f.AnchorTick()
	if len(h.sentMsg) != before {
		t.Fatal("probed after the orderer resumed delivering")
	}
	if s := CollectStats(f, nil); s.AnchorProbes != 3 {
		t.Fatalf("AnchorProbes = %d, want 3", s.AnchorProbes)
	}
}

// No anchors configured — the default — must disable the path entirely.
func TestAnchorTickDisabledWithoutAnchors(t *testing.T) {
	h := newStubHost()
	f := NewFetcher(h, Config{Batch: 8})
	h.now = time.Hour
	f.AnchorTick()
	if len(h.sentMsg) != 0 {
		t.Fatal("anchor probe fired with no anchors configured")
	}
}
