package harness

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
)

// The lookahead rule: the conservative window width must lower-bound every
// cross-shard delivery latency. The LAN propagation floor always applies;
// WAN separation raises it by the inter-site delay — except under
// ConsenterSpread, where consenters share the organizations' sites and some
// cross-shard pairs stay on the LAN floor.
func TestLookaheadRule(t *testing.T) {
	floor := netmodel.LAN().PropMin
	if floor <= 0 {
		t.Fatalf("LAN model has no propagation floor (%v); the sharded engine's safety argument is void", floor)
	}
	cases := []struct {
		name string
		p    NetworkParams
		want time.Duration
	}{
		{"lan-only", NetworkParams{}, floor},
		{"wan", NetworkParams{WANDelay: 25 * time.Millisecond}, floor + 25*time.Millisecond},
		{"wan-clustered", NetworkParams{WANDelay: 25 * time.Millisecond, Consenters: 3},
			floor + 25*time.Millisecond},
		// Spread consenters sit on org sites: a consenter and its host
		// org's peers are one LAN apart but on different shards, so only
		// the floor is safe.
		{"wan-consenter-spread", NetworkParams{WANDelay: 25 * time.Millisecond, Consenters: 3, ConsenterSpread: true},
			floor},
	}
	for _, c := range cases {
		if got := c.p.lookahead(); got != c.want {
			t.Errorf("%s: lookahead = %v, want %v", c.name, got, c.want)
		}
	}
}

// A sharded network hosts each organization on its own engine, the ordering
// service on another, and the scenario-facing Engine field on the control
// engine — all distinct, all windows driven through the coordinator.
func TestShardedNetworkEngineLayout(t *testing.T) {
	n, err := NewNetwork(NetworkParams{
		Seed:     1,
		Orgs:     []OrgSpec{{Peers: 2}, {Peers: 2}},
		WANDelay: 25 * time.Millisecond,
		Sharded:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	se := n.Sharded()
	if se == nil {
		t.Fatal("sharded network fell back sequential despite positive lookahead")
	}
	if got, want := se.NumShards(), 3; got != want {
		t.Fatalf("NumShards = %d, want %d (one per org + ordering)", got, want)
	}
	if se.Lookahead() != 25*time.Millisecond+netmodel.LAN().PropMin {
		t.Errorf("lookahead = %v", se.Lookahead())
	}
	if n.Engine != se.Control() {
		t.Error("Network.Engine is not the control engine")
	}
	if n.OrgEngine(0) == n.OrgEngine(1) || n.OrgEngine(0) == n.OrdererEngine() {
		t.Error("org and ordering engines are not distinct shards")
	}
	if n.OrdererEngine() != se.Shard(2) {
		t.Error("ordering service is not on the last shard")
	}
}
