package harness

import (
	"fmt"

	"fabricgossip/internal/obs"
	"fabricgossip/internal/transport"
)

// ObsContexts returns the number of observability emission contexts the
// network needs: one per organization shard plus the ordering shard plus
// the control plane in sharded mode, or a single context sequentially —
// the same layout the scenario runner's text-trace buffers use.
func (n *Network) ObsContexts() int {
	if n.se != nil {
		return len(n.Orgs) + 2
	}
	return 1
}

// OrdObsContext returns the emission-context index owning the ordering
// service (consenter Raft nodes, order services, the deliver pump).
func (n *Network) OrdObsContext() int {
	if n.se != nil {
		return len(n.Orgs)
	}
	return 0
}

// OrgObsContext returns the emission-context index owning an org's peers.
func (n *Network) OrgObsContext(org int) int {
	if n.se != nil {
		return org
	}
	return 0
}

// AttachObs wires the observability plane into the network: per-context
// wire observers on the transport (sends in the sender's context,
// receives in the receiver's) and Raft log-append trace points on the
// consenter cluster. regs and traces are indexed by emission context
// (ObsContexts entries); either may be nil to skip that half, and nil
// entries skip individual contexts. Call after NewNetwork, before
// StartAll. The instruments and trace points are passive — they draw no
// randomness and schedule no events — so attaching them leaves the run's
// event lineage, and therefore its fingerprint, untouched.
func (n *Network) AttachObs(regs []*obs.Registry, traces []*obs.ShardTrace) {
	nctx := n.ObsContexts()
	if regs != nil && len(regs) != nctx {
		panic(fmt.Sprintf("harness: %d obs registries for %d contexts", len(regs), nctx))
	}
	if traces != nil && len(traces) != nctx {
		panic(fmt.Sprintf("harness: %d obs traces for %d contexts", len(traces), nctx))
	}
	pick := func(i int) (*obs.Registry, *obs.ShardTrace) {
		var r *obs.Registry
		var t *obs.ShardTrace
		if regs != nil {
			r = regs[i]
		}
		if traces != nil {
			t = traces[i]
		}
		return r, t
	}

	// Transport contexts are the shard engines: 1 sequentially, NumShards
	// (orgs + ordering) sharded. The control context never touches a NIC.
	nw := 1
	if n.se != nil {
		nw = n.se.NumShards()
	}
	wobs := make([]*transport.WireObs, nw)
	for i := range wobs {
		r, t := pick(i)
		wobs[i] = transport.NewWireObs(r, t)
	}
	n.Net.SetObs(wobs)

	// Consenter Raft log growth lands in the ordering context, whose
	// engine goroutine runs every consenter callback.
	if _, ordTrace := pick(n.OrdObsContext()); ordTrace != nil && n.cluster != nil {
		for i, node := range n.cluster.nodes {
			id := int32(n.cluster.eps[i].ID())
			node.OnAppend(func(index, term uint64) {
				ordTrace.Emit(obs.Event{
					At: n.ordEngine.Now(), Kind: obs.EvAppend,
					Node: id, Peer: -1, Num: index, Aux: term,
				})
			})
		}
	}
}
