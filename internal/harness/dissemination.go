package harness

import (
	"fmt"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// DisseminationResult is everything a dissemination experiment measured.
type DisseminationResult struct {
	Params    Params
	Latencies *metrics.LatencyRecorder
	Traffic   *netmodel.Traffic

	// LeaderID and RegularID are the two peers whose bandwidth the
	// paper's Figures 6/9/10/11/14 plot.
	LeaderID  wire.NodeID
	RegularID wire.NodeID
	// NumBuckets is the series length at Params.Bucket granularity.
	NumBuckets int

	// BlockBytes is the encoded size of one block of the workload.
	BlockBytes int
	// BodyTransmissions counts full-block sends during dissemination
	// (Data + PullData + recovery batches), excluding orderer deliveries.
	BodyTransmissions uint64
	// RecoveryServed counts blocks that had to be fetched by the recovery
	// component (the enhanced paper runs never need it).
	RecoveryServed uint64
	// WallBlocks is how many blocks were fully disseminated to all peers.
	WallBlocks int
}

// RunDissemination builds an organization of Params.NumPeers peers over the
// calibrated LAN model, injects Params.NumBlocks blocks at the leader peer
// on the block interval, and measures per-peer/per-block dissemination
// latency and per-peer bandwidth.
func RunDissemination(p Params) (*DisseminationResult, error) {
	rec := metrics.NewLatencyRecorder()
	// leaderSeen[num] is the dissemination start: the leader's reception
	// of the block from the ordering service.
	leaderSeen := make(map[uint64]time.Duration, p.NumBlocks)
	received := make([]int, p.NumBlocks) // peers holding each block

	org, err := NewOrg(p, WithCoreHook(func(i int, core *gossip.Core) {
		self := core.ID()
		core.OnFirstReception(func(b *ledger.Block, at time.Duration) {
			if self == 0 {
				// The leader is the dissemination origin: its reception
				// defines t=0 and is excluded from the latency CDFs.
				leaderSeen[b.Num] = at
			} else {
				start, ok := leaderSeen[b.Num]
				if !ok {
					// Block reached a peer before the leader (recovery
					// race); anchor at current time.
					start = at
					leaderSeen[b.Num] = start
				}
				rec.Record(b.Num, self, at-start)
			}
			if b.Num < uint64(len(received)) {
				received[b.Num]++
			}
		})
	}))
	if err != nil {
		return nil, err
	}
	engine, traffic := org.Engine, org.Traffic
	org.StartAll()

	// Background floor: the paper's ≈0.4 MB/s of non-dissemination system
	// traffic per peer, accounted once per simulated second.
	if p.BackgroundBytesPerSec > 0 {
		half := int(p.BackgroundBytesPerSec / 2)
		for _, id := range org.Peers {
			id := id
			engine.Every(time.Second, func() {
				traffic.Record(id, id, wire.TypeAlive, half, engine.Now())
			})
		}
	}

	blocks := BuildChain(p.NumBlocks, p.TxPerBlock, p.TxPayload, p.Seed)
	for i, b := range blocks {
		b := b
		engine.At(time.Duration(i)*p.BlockInterval, func() {
			org.DeliverBlock(b)
		})
	}

	end := time.Duration(p.NumBlocks-1)*p.BlockInterval + p.Tail
	engine.RunUntil(end)
	org.StopAll()

	complete := 0
	for _, got := range received {
		if got == p.NumPeers {
			complete++
		}
	}
	res := &DisseminationResult{
		Params:            p,
		Latencies:         rec,
		Traffic:           traffic,
		LeaderID:          0,
		RegularID:         wire.NodeID(1 + p.Seed%int64(p.NumPeers-1)),
		NumBuckets:        int(end/p.Bucket) + 1,
		BlockBytes:        wire.BlockEncodedSize(blocks[0]),
		BodyTransmissions: traffic.CountOf(wire.TypeData) + traffic.CountOf(wire.TypePullData),
		RecoveryServed:    traffic.CountOf(wire.TypeStateResponse),
		WallBlocks:        complete,
	}
	return res, nil
}

// BuildChain constructs a hash-linked chain of blocks with the workload's
// transaction shape. Payload bytes are deterministic from the seed.
func BuildChain(n, txPerBlock, payloadSize int, seed int64) []*ledger.Block {
	rng := sim.NewRand(sim.StreamSeed(seed, "chain"))
	blocks := make([]*ledger.Block, n)
	var prev *ledger.Block
	for i := 0; i < n; i++ {
		txs := make([]*ledger.Transaction, txPerBlock)
		for j := range txs {
			payload := make([]byte, payloadSize)
			for k := 0; k < len(payload); k += 64 {
				payload[k] = byte(rng.Intn(256))
			}
			key := fmt.Sprintf("asset-%d", rng.Intn(1000))
			rw := ledger.RWSet{
				Reads:  []ledger.KVRead{{Key: key, Version: ledger.Version{BlockNum: uint64(i)}}},
				Writes: []ledger.KVWrite{{Key: key, Value: payload[:16]}},
			}
			txs[j] = &ledger.Transaction{
				ID:        ledger.ProposalDigest(fmt.Sprintf("client-%d", j), "high-throughput", rw, payload),
				Client:    fmt.Sprintf("client-%d", j),
				Chaincode: "high-throughput",
				RWSet:     rw,
				Endorsements: []ledger.Endorsement{
					{Org: "orgA", Name: "endorser0", Sig: make([]byte, 64)},
				},
				Payload: payload,
			}
		}
		b := &ledger.Block{Num: uint64(i), Txs: txs, DataHash: ledger.ComputeDataHash(txs)}
		if prev != nil {
			b.PrevHash = prev.Hash()
		}
		b.Sig = make([]byte, 64)
		blocks[i] = b
		prev = b
	}
	return blocks
}
