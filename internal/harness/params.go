// Package harness builds simulated Fabric organizations and runs every
// experiment of the paper's evaluation (§V), producing the rows and series
// behind each figure and table. All experiments share one calibrated
// network model (netmodel.LAN) and differ only in protocol configuration —
// matching how the paper varies a single deployment.
package harness

import (
	"time"

	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
)

// Variant selects the dissemination protocol under test.
type Variant string

// The two protocols the paper compares.
const (
	VariantOriginal Variant = "original"
	VariantEnhanced Variant = "enhanced"
)

// Params configures one dissemination experiment (Figures 4-14).
type Params struct {
	Seed     int64
	NumPeers int
	// NumBlocks blocks are injected at the leader every BlockInterval.
	NumBlocks     int
	BlockInterval time.Duration
	// TxPerBlock transactions of TxPayload bytes each give the paper's
	// ≈160 KB blocks (50 tx ≈ 3.2 KB).
	TxPerBlock int
	TxPayload  int

	Variant Variant
	// Original holds the stock-protocol parameters (used when Variant is
	// VariantOriginal).
	Original original.Config
	// Enhanced holds the enhanced-protocol parameters (used when Variant
	// is VariantEnhanced).
	Enhanced enhanced.Config

	// Tail is how long the run continues after the last block is
	// injected; the paper's bandwidth plots include a post-run idle
	// window showing the background-traffic floor.
	Tail time.Duration
	// Bucket is the bandwidth aggregation interval (paper: 10 s).
	Bucket time.Duration
	// BackgroundBytesPerSec models the paper's measured ≈0.4 MB/s of
	// idle background traffic per peer (monitoring, membership, runtime
	// chatter of "all the tasks"); see DESIGN.md substitutions. The value
	// is the combined in+out rate accounted to each peer.
	BackgroundBytesPerSec float64
}

// DefaultParams returns the shared §V-A workload: 100 peers, 1,000 blocks
// of 50 transactions (~160 KB) every 1.5 s.
func DefaultParams(v Variant, seed int64) Params {
	p := Params{
		Seed:                  seed,
		NumPeers:              100,
		NumBlocks:             1000,
		BlockInterval:         1500 * time.Millisecond,
		TxPerBlock:            50,
		TxPayload:             3000,
		Variant:               v,
		Original:              original.DefaultConfig(),
		Tail:                  500 * time.Second,
		Bucket:                10 * time.Second,
		BackgroundBytesPerSec: 400_000,
	}
	cfg, err := enhanced.ConfigFor(p.NumPeers, 4, 1e-6, 2)
	if err != nil {
		panic(err) // n=100, fout=4 is statically known-good
	}
	p.Enhanced = cfg
	return p
}

// Fig7Params returns the enhanced configuration with fout=4, TTL=9 used by
// Figures 7, 8 and 9.
func Fig7Params(seed int64) Params { return DefaultParams(VariantEnhanced, seed) }

// Fig10Params reproduces the leader-fan-out ablation: the leader pushes to
// fleaderout = fout = 4 peers itself instead of delegating to one.
func Fig10Params(seed int64) Params {
	p := DefaultParams(VariantEnhanced, seed)
	p.Enhanced.FLeaderOut = p.Enhanced.Fout
	return p
}

// Fig11Params reproduces the digest ablation: bodies are pushed on every
// hop. The paper's Figure 11 covers a shorter x-axis; we inject fewer
// blocks to match (the per-bucket magnitude is what the figure shows).
func Fig11Params(seed int64) Params {
	p := DefaultParams(VariantEnhanced, seed)
	p.Enhanced.UseDigests = false
	p.NumBlocks = 100
	p.Tail = 20 * time.Second
	return p
}

// Fig12Params returns the conservative configuration with fout=2, TTL=19
// used by Figures 12, 13 and 14 (TTLdirect = 3, §V-C). Our analysis bound
// certifies pe <= 1e-6 already at TTL=18; we pin the paper's 19 for an
// exact configuration match.
func Fig12Params(seed int64) Params {
	p := DefaultParams(VariantEnhanced, seed)
	cfg, err := enhanced.ConfigFor(p.NumPeers, 2, 1e-6, 3)
	if err != nil {
		panic(err)
	}
	if cfg.TTL < 19 {
		cfg.TTL = 19
	}
	p.Enhanced = cfg
	return p
}

// QuickScale shrinks a parameter set for fast tests and the quickstart
// example: fewer peers and blocks, same protocol behaviour.
func QuickScale(p Params, peers, blocks int) Params {
	p.NumPeers = peers
	p.NumBlocks = blocks
	p.Tail = 30 * time.Second
	if p.Variant == VariantEnhanced {
		fout := p.Enhanced.Fout
		ttlDirect := p.Enhanced.TTLDirect
		useDigests := p.Enhanced.UseDigests
		fleader := p.Enhanced.FLeaderOut
		cfg, err := enhanced.ConfigFor(peers, fout, 1e-6, ttlDirect)
		if err == nil {
			cfg.UseDigests = useDigests
			cfg.FLeaderOut = fleader
			if fleader == fout { // preserve the fig10-style ablation
				cfg.FLeaderOut = cfg.Fout
			}
			p.Enhanced = cfg
		}
	}
	return p
}
