package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"fabricgossip/internal/analysis"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Report is the textual output of one experiment: the rows/series behind
// one of the paper's figures or tables.
type Report struct {
	ID    string
	Title string
	Lines []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// PeerLatencyReport renders a Figure 4/7/12-style table: the latency CDFs
// of the fastest, median and slowest peers on the logistic probability
// axis.
func PeerLatencyReport(id, title string, res *DisseminationResult) (Report, error) {
	r := Report{ID: id, Title: title}
	ext, err := res.Latencies.PeerExtremes()
	if err != nil {
		return r, err
	}
	r.addf("%-8s %-9s %12s %12s %12s", "p", "logit(p)", "fastest", "median", "slowest")
	fast := metrics.ProbPlot(ext.Fastest, metrics.PeerLevelTicks)
	med := metrics.ProbPlot(ext.Median, metrics.PeerLevelTicks)
	slow := metrics.ProbPlot(ext.Slowest, metrics.PeerLevelTicks)
	for i := range fast {
		r.addf("%-8g %-+9.3f %11.4fs %11.4fs %11.4fs",
			fast[i].P, fast[i].LogitP,
			fast[i].Latency.Seconds(), med[i].Latency.Seconds(), slow[i].Latency.Seconds())
	}
	r.addf("summary fastest peer: %v", metrics.Summarize(ext.Fastest))
	r.addf("summary median  peer: %v", metrics.Summarize(ext.Median))
	r.addf("summary slowest peer: %v", metrics.Summarize(ext.Slowest))
	return r, nil
}

// BlockLatencyReport renders a Figure 5/8/13-style table: the CDFs of the
// fastest, median and slowest disseminated blocks.
func BlockLatencyReport(id, title string, res *DisseminationResult) (Report, error) {
	r := Report{ID: id, Title: title}
	ext, err := res.Latencies.BlockExtremes()
	if err != nil {
		return r, err
	}
	r.addf("%-8s %-9s %12s %12s %12s", "p", "logit(p)", "fastest", "median", "slowest")
	fast := metrics.ProbPlot(ext.Fastest, metrics.BlockLevelTicks)
	med := metrics.ProbPlot(ext.Median, metrics.BlockLevelTicks)
	slow := metrics.ProbPlot(ext.Slowest, metrics.BlockLevelTicks)
	for i := range fast {
		r.addf("%-8g %-+9.3f %11.4fs %11.4fs %11.4fs",
			fast[i].P, fast[i].LogitP,
			fast[i].Latency.Seconds(), med[i].Latency.Seconds(), slow[i].Latency.Seconds())
	}
	r.addf("summary fastest block: %v", metrics.Summarize(ext.Fastest))
	r.addf("summary median  block: %v", metrics.Summarize(ext.Median))
	r.addf("summary slowest block: %v", metrics.Summarize(ext.Slowest))
	r.addf("blocks fully disseminated to all %d peers: %d / %d",
		res.Params.NumPeers, res.WallBlocks, res.Params.NumBlocks)
	return r, nil
}

// BandwidthReport renders a Figure 6/9/10/11/14-style series: MB/s per
// bucket for the leader peer and a regular peer, with the averages the
// paper draws as dotted lines, plus the per-message-type breakdown.
func BandwidthReport(id, title string, res *DisseminationResult) Report {
	r := Report{ID: id, Title: title}
	leader := res.Traffic.NodeSeries(res.LeaderID, res.NumBuckets)
	regular := res.Traffic.NodeSeries(res.RegularID, res.NumBuckets)
	bucketSec := int(res.Params.Bucket.Seconds())
	stride := 1
	if res.NumBuckets > 48 {
		stride = res.NumBuckets / 48
	}
	r.addf("%-10s %14s %14s", "t (s)", "leader (MB/s)", "regular (MB/s)")
	for i := 0; i < res.NumBuckets; i += stride {
		r.addf("%-10d %14.3f %14.3f", i*bucketSec, leader[i], regular[i])
	}
	r.addf("average leader  peer: %.3f MB/s", res.Traffic.NodeAverage(res.LeaderID, res.NumBuckets))
	r.addf("average regular peer: %.3f MB/s", res.Traffic.NodeAverage(res.RegularID, res.NumBuckets))
	r.addf("total network traffic: %.1f MB over %d buckets",
		float64(res.Traffic.TotalBytes())/1e6, res.NumBuckets)
	r.addf("block size: %.1f KB; full-body transmissions: %d (%.1f per block)",
		float64(res.BlockBytes)/1e3, res.BodyTransmissions,
		float64(res.BodyTransmissions)/float64(res.Params.NumBlocks))

	type row struct {
		mt    wire.MsgType
		count uint64
		bytes uint64
	}
	var rows []row
	for mt, cb := range res.Traffic.Breakdown() {
		rows = append(rows, row{mt, cb[0], cb[1]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].bytes > rows[j].bytes })
	r.addf("%-20s %12s %14s", "message type", "count", "bytes")
	for _, w := range rows {
		r.addf("%-20s %12d %14d", w.mt, w.count, w.bytes)
	}
	return r
}

// AnalyticsReport reproduces the analytic claims of §IV and the appendix:
// the infect-and-die reach, the pe-vs-TTL trade-off, and the TTL lookup
// table.
func AnalyticsReport(seed int64) Report {
	r := Report{ID: "analytics", Title: "§IV analytic claims and TTL lookup table"}
	st := analysis.SimulateInfectAndDie(100, 3, 10_000, sim.NewRand(seed))
	r.addf("infect-and-die push, n=100, fout=3 (paper: mean 94, σ 2.6, 282 sends):")
	r.addf("  Monte Carlo: mean = %.2f peers, σ = %.2f, full-block sends = %.1f, reach-all = %.4f",
		st.MeanReached, st.StdDevReached, st.MeanTransmits, st.ReachAllPercent)
	if ex, err := analysis.ExactInfectAndDie(100, 3); err == nil {
		r.addf("  exact chain: mean = %.2f peers, σ = %.2f, full-block sends = %.1f, reach-all = %.5f",
			ex.Mean, ex.StdDev, ex.MeanTransmits, ex.ReachAll)
	}

	r.addf("carrying capacity and TTL (n = 100, pe = 1e-6):")
	for _, fout := range []int{2, 3, 4, 5} {
		g, err := analysis.CarryingCapacity(100, fout)
		if err != nil {
			r.addf("  fout=%d: %v", fout, err)
			continue
		}
		ttl, err := analysis.TTLFor(100, fout, 1e-6)
		if err != nil {
			r.addf("  fout=%d: %v", fout, err)
			continue
		}
		r.addf("  fout=%d: γ = %6.2f, TTL = %2d, achieved pe = %.2e, E[digests] = %.0f",
			fout, g, ttl, analysis.ImperfectProb(100, fout, ttl), analysis.ExpectedDigests(100, fout, ttl))
	}
	ttl12, _ := analysis.TTLFor(100, 4, 1e-12)
	r.addf("pe = 1e-12 at fout=4 needs TTL = %d (paper: 12)", ttl12)
	r.addf("note: our ψ-recursion certifies pe<=1e-6 at fout=2 with TTL=18; the paper's")
	r.addf("      looser bound needs 19. Experiments pin the paper's TTL=19 (pe = %.2e).",
		analysis.ImperfectProb(100, 2, 19))
	r.addf("exact occupancy-chain analysis (the appendix's coupon-collector extension):")
	for _, fout := range []int{2, 3, 4} {
		ttl, err := analysis.ExactTTLFor(100, fout, 1e-6)
		if err != nil {
			r.addf("  fout=%d: %v", fout, err)
			continue
		}
		r.addf("  fout=%d: exact minimal TTL = %d (conservative bound: see above)", fout, ttl)
	}

	table, err := analysis.TTLTable([]int{25, 50, 100, 200, 500, 1000, 5000}, 4, 1e-6)
	if err != nil {
		r.addf("ttl table: %v", err)
		return r
	}
	r.addf("TTL lookup table (fout=4, pe<=1e-6): n -> TTL")
	for _, e := range table {
		r.addf("  n <= %5d: TTL = %2d (pe = %.2e)", e.N, e.TTL, e.Pe)
	}
	return r
}

// CompareBandwidth summarizes the headline bandwidth claim: the enhanced
// module cuts a regular peer's (and the whole network's) traffic by more
// than 40% (paper §V-C).
func CompareBandwidth(orig, enh *DisseminationResult) Report {
	r := Report{ID: "bandwidth-compare", Title: "original vs enhanced bandwidth (paper: >40% reduction)"}
	// Compare over the generation window only (both runs share it).
	gen := int(time.Duration(orig.Params.NumBlocks)*orig.Params.BlockInterval/orig.Params.Bucket) + 1
	oReg := orig.Traffic.NodeAverage(orig.RegularID, gen)
	eReg := enh.Traffic.NodeAverage(enh.RegularID, gen)
	oTot := float64(orig.Traffic.TotalBytes())
	eTot := float64(enh.Traffic.TotalBytes())
	r.addf("regular peer: original %.3f MB/s -> enhanced %.3f MB/s (%.1f%% reduction)",
		oReg, eReg, 100*(1-eReg/oReg))
	r.addf("total traffic: original %.1f MB -> enhanced %.1f MB (%.1f%% reduction)",
		oTot/1e6, eTot/1e6, 100*(1-eTot/oTot))
	r.addf("full-body transmissions per block: original %.1f -> enhanced %.1f",
		float64(orig.BodyTransmissions)/float64(orig.Params.NumBlocks),
		float64(enh.BodyTransmissions)/float64(enh.Params.NumBlocks))
	return r
}
