package harness

import (
	"fmt"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// clusterEntryBlock prefixes Raft log entries that carry a harness-injected
// (premade) block through the replicated ordering service. The ordering
// workload's own entry kinds (transaction and TTC marker, internal/order)
// use 1 and 2; 3 keeps the streams demuxable on one log.
const clusterEntryBlock = 3

// consenterCluster is the replicated ordering service: K Raft nodes on the
// sim engine, each fronted by a raft.Consenter shim that owns reliable
// submission (buffer through elections, re-propose to new leaders) and
// exactly-once apply delivery. The chain every organization sees is the
// committed log's block stream; only the current Raft leader serves deliver
// streams (deliverSource), so a leadership change silently redirects every
// org's session to the new leader with a rewind — the same machinery that
// handles org-side leader failover.
//
// Peers need no changes for stall detection: statesync keys its
// orderer-stall clock to DeliverBlock receipt, which in cluster mode is
// exactly the current leader's silence — an election longer than
// OrdererStall trips anchor probing, a shorter one does not.
type consenterCluster struct {
	eps   []*transport.SimEndpoint
	nodes []*raft.Node
	shims []*raft.Consenter
	down  []bool

	// height is, per consenter, the contiguous count of chain blocks it
	// has applied — the prefix a leader may serve. seen buffers block
	// numbers applied out of order (possible when entries for block k+1
	// commit before a re-proposed block k).
	height []int
	seen   []map[uint64]bool
	// stream receives non-block committed entries (the transaction
	// workload's envelopes and TTC markers) per consenter.
	stream []func(data []byte)

	// blockByNum registers each block at first apply (any consenter) so
	// the shared chain can extend in order even when applies arrive out
	// of block order.
	blockByNum map[uint64]*ledger.Block

	// leader is the consenter index currently believed to lead (-1
	// during elections and quorum loss). Election metrics: count of
	// leader emergences and total leaderless time (leaderLostAt marks
	// the open window's start while leader < 0).
	leader          int
	electionCount   int
	leaderlessTotal time.Duration
	leaderLostAt    time.Duration

	started bool
}

// WithConsenterHook installs f to observe consenter role changes (election
// winners, step-downs) for tracing. Only fires with Params.Consenters > 0.
func WithConsenterHook(f func(consenter int, s raft.State, term uint64)) NetworkOption {
	return func(n *Network) { n.onConsenter = f }
}

// buildCluster provisions the consenter endpoints and Raft nodes. Endpoint
// ids follow the peers (dense), mirroring the legacy orderer's position, so
// traffic accounting and partition groups stay index-stable.
func (n *Network) buildCluster(k int) {
	c := &consenterCluster{
		blockByNum: make(map[uint64]*ledger.Block),
		leader:     -1,
	}
	n.cluster = c
	ids := make([]wire.NodeID, k)
	c.eps = make([]*transport.SimEndpoint, k)
	for i := 0; i < k; i++ {
		c.eps[i] = n.Net.AddNode()
		ids[i] = c.eps[i].ID()
		if n.se != nil {
			n.Net.SetNodeShard(c.eps[i].ID(), len(n.Orgs))
		}
	}
	c.nodes = make([]*raft.Node, k)
	c.shims = make([]*raft.Consenter, k)
	c.down = make([]bool, k)
	c.height = make([]int, k)
	c.seen = make([]map[uint64]bool, k)
	c.stream = make([]func([]byte), k)
	for i := 0; i < k; i++ {
		i := i
		node := raft.New(raft.DefaultConfig(ids[i], ids), c.eps[i], n.ordEngine,
			n.ordEngine.Rand(fmt.Sprintf("raft/consenter%d", i)))
		shim := raft.NewConsenter(node, n.ordEngine)
		// Never age out: a dropped premade block would wedge the chain,
		// and workload accounting requires every accepted envelope to
		// eventually resolve.
		shim.SetRetry(0, 0)
		// Exactly-once delivery: clients broadcast each envelope to every
		// live consenter (SubmitTargets) and the shims re-propose through
		// elections, so the log carries duplicates by design. Harness
		// payloads are content-unique (blocks by number, workload
		// transactions by client nonce), which SetDedup requires.
		shim.SetDedup(4096)
		node.OnStateChange(func(s raft.State, term uint64) {
			n.onConsenterState(i, s, term)
		})
		shim.OnCommit(func(data []byte) {
			n.onClusterCommit(i, data)
		})
		// The consenter endpoint demuxes: client submissions peel off to
		// the ordering workload, everything else is Raft traffic.
		c.eps[i].SetHandler(func(from wire.NodeID, msg wire.Message) {
			if st, ok := msg.(*wire.SubmitTx); ok {
				if n.onSubmitTx != nil {
					n.onSubmitTx(i, st.Tx)
				}
				return
			}
			node.Handle(from, msg)
		})
		c.nodes[i] = node
		c.shims[i] = shim
		c.seen[i] = make(map[uint64]bool)
	}
}

// onConsenterState tracks cluster leadership from each node's role
// transitions: a new leader redirects every organization's deliver session
// (forcing the rewind path) and closes the leaderless window; the current
// leader stepping down opens one.
func (n *Network) onConsenterState(i int, s raft.State, term uint64) {
	c := n.cluster
	if n.onConsenter != nil {
		n.onConsenter(i, s, term)
	}
	switch {
	case s == raft.Leader:
		if c.leader == i {
			return
		}
		c.electionCount++
		if c.leader < 0 {
			c.leaderlessTotal += n.ordEngine.Now() - c.leaderLostAt
		}
		c.leader = i
		n.resetDeliverSessions()
		n.requestPump()
	case c.leader == i:
		// The serving leader lost its role (higher term observed, or a
		// restart demotion): deliver streams go silent until a successor.
		c.leader = -1
		c.leaderLostAt = n.ordEngine.Now()
		n.resetDeliverSessions()
	}
}

// resetDeliverSessions forces every organization's next pump through the
// rewind path — the deliver stream reattaches at the (possibly new)
// leader's height.
func (n *Network) resetDeliverSessions() {
	for org := range n.lastLead {
		n.lastLead[org] = -1
	}
}

// onClusterCommit consumes consenter i's committed log stream: premade
// block entries feed the shared chain, anything else is the transaction
// workload's total-order stream.
func (n *Network) onClusterCommit(i int, data []byte) {
	if len(data) > 0 && data[0] == clusterEntryBlock {
		if b, ok := decodeBlockEntry(data); ok {
			n.offerBlock(i, b)
		}
		return
	}
	if fn := n.cluster.stream[i]; fn != nil {
		fn(data)
	}
}

// offerBlock records that consenter i holds block b: the block registers
// for the shared chain (first applier wins; all consenters apply identical
// bytes) and i's contiguous height advances. A leader gaining height pumps
// immediately — block cut and block delivery stay one event apart, as with
// the legacy orderer's Append.
func (n *Network) offerBlock(i int, b *ledger.Block) {
	c := n.cluster
	if _, ok := c.blockByNum[b.Num]; !ok {
		c.blockByNum[b.Num] = b
	}
	for {
		nb, ok := c.blockByNum[uint64(len(n.chain))]
		if !ok {
			break
		}
		n.chain = append(n.chain, nb)
	}
	num := int(b.Num)
	if num >= c.height[i] {
		c.seen[i][b.Num] = true
		for c.seen[i][uint64(c.height[i])] {
			delete(c.seen[i], uint64(c.height[i]))
			c.height[i]++
		}
	}
	if i == c.leader {
		n.requestPump()
	}
}

// OfferBlock hands a block cut by consenter i's ordering service to the
// deliver plane — the cluster-mode analogue of Append for blocks that were
// themselves produced from the replicated log (the transaction workload's
// path). Every consenter cuts identical blocks from the identical apply
// stream, so the first to cut registers the chain entry and the leader's
// own cut gates what it may serve.
func (n *Network) OfferBlock(consenter int, b *ledger.Block) {
	n.offerBlock(consenter, b)
}

// Consenters returns the ordering cluster's size (0 in legacy mode).
func (n *Network) Consenters() int {
	if n.cluster == nil {
		return 0
	}
	return len(n.cluster.nodes)
}

// ConsenterID returns consenter i's transport id.
func (n *Network) ConsenterID(i int) wire.NodeID { return n.cluster.eps[i].ID() }

// ConsenterNode exposes consenter i's Raft node (tests and diagnostics).
func (n *Network) ConsenterNode(i int) *raft.Node { return n.cluster.nodes[i] }

// ConsenterLeader returns the index of the consenter currently believed to
// lead, or -1 during elections, quorum loss, or legacy mode.
func (n *Network) ConsenterLeader() int {
	if n.cluster == nil {
		return -1
	}
	return n.cluster.leader
}

// ConsenterDown reports whether consenter i is crashed.
func (n *Network) ConsenterDown(i int) bool { return n.cluster.down[i] }

// OrderingNodeIDs returns the ordering service's transport ids — the single
// orderer endpoint in legacy mode, every consenter in cluster mode — for
// callers building partition groups.
func (n *Network) OrderingNodeIDs() []wire.NodeID {
	if n.cluster == nil {
		return []wire.NodeID{n.Orderer.ID()}
	}
	ids := make([]wire.NodeID, len(n.cluster.eps))
	for i, ep := range n.cluster.eps {
		ids[i] = ep.ID()
	}
	return ids
}

// CrashConsenter fails one consenter: its Raft node stops voting and
// appending, and the network silences its endpoint. Its shim's pending
// buffer survives — it models the consenter's durable queue of accepted-
// but-unordered envelopes, replayed after restart — and so does its log
// (raft.Node models a durable WAL). If the crashed consenter was the
// leader, every deliver stream dies until the survivors elect. No-op if
// already crashed.
func (n *Network) CrashConsenter(i int) {
	c := n.cluster
	if c.down[i] {
		return
	}
	c.down[i] = true
	c.nodes[i].Stop()
	n.Net.SetNodeDown(c.eps[i].ID(), true)
	if c.leader == i {
		c.leader = -1
		c.leaderLostAt = n.ordEngine.Now()
		n.resetDeliverSessions()
	}
}

// RestartConsenter revives a crashed consenter: it rejoins as a follower
// and the cluster leader catches it up by Raft log replay (AppendEntries
// suffix repair from its durable log) — not from fresh state. No-op if not
// crashed.
func (n *Network) RestartConsenter(i int) {
	c := n.cluster
	if !c.down[i] {
		return
	}
	c.down[i] = false
	n.Net.SetNodeDown(c.eps[i].ID(), false)
	c.nodes[i].Start()
}

// SubmitTargets returns the ordering endpoints a client at from should
// currently submit to: the single orderer (if up and reachable) in legacy
// mode, or every live reachable consenter in cluster mode. Submitting to
// all consenters models client failover without modelling client retry
// timers: an envelope survives any fault that leaves one receiving
// consenter alive, and the shims' exactly-once apply window collapses the
// duplicate proposals. Empty means the ordering service is unreachable.
func (n *Network) SubmitTargets(from wire.NodeID) []wire.NodeID {
	if n.cluster == nil {
		if n.ordererDown || !n.Net.Reachable(from, n.Orderer.ID()) {
			return nil
		}
		return []wire.NodeID{n.Orderer.ID()}
	}
	var out []wire.NodeID
	for i, ep := range n.cluster.eps {
		if !n.cluster.down[i] && n.Net.Reachable(from, ep.ID()) {
			out = append(out, ep.ID())
		}
	}
	return out
}

// SetSubmitHandler installs the ordering workload's transaction intake:
// fn runs for each SubmitTx arriving at consenter i's endpoint.
func (n *Network) SetSubmitHandler(fn func(consenter int, tx *ledger.Transaction)) {
	n.onSubmitTx = fn
}

// SetConsenterStream installs consenter i's consumer for non-block
// committed entries — the ordering service instance hosted on i reads its
// total order from here.
func (n *Network) SetConsenterStream(i int, fn func(data []byte)) {
	n.cluster.stream[i] = fn
}

// SubmitEntry submits an opaque ordering entry through consenter i's
// reliable shim (order.Consenter's Submit, routed via Raft).
func (n *Network) SubmitEntry(i int, data []byte) error {
	return n.cluster.shims[i].Submit(data)
}

// ElectionStats reports the ordering cluster's election count and total
// leaderless time (a still-open leaderless window counts up to now).
// Zeroes in legacy mode.
func (n *Network) ElectionStats() (count int, leaderless time.Duration) {
	if n.cluster == nil {
		return 0, 0
	}
	c := n.cluster
	leaderless = c.leaderlessTotal
	if c.leader < 0 {
		leaderless += n.ordEngine.Now() - c.leaderLostAt
	}
	return c.electionCount, leaderless
}

// MaxDeliverGap returns the widest gap between consecutive first-time
// block deliveries observed by any organization — how long the ordering
// service went dark from the peers' perspective.
func (n *Network) MaxDeliverGap() time.Duration {
	var max time.Duration
	for _, g := range n.maxDeliverGap {
		if g > max {
			max = g
		}
	}
	return max
}

// encodeBlockEntry wraps a premade block as a Raft log entry.
func encodeBlockEntry(b *ledger.Block) []byte {
	payload := wire.Marshal(&wire.DeliverBlock{Block: b})
	data := make([]byte, 1+len(payload))
	data[0] = clusterEntryBlock
	copy(data[1:], payload)
	return data
}

// decodeBlockEntry unwraps encodeBlockEntry's framing.
func decodeBlockEntry(data []byte) (*ledger.Block, bool) {
	msg, err := wire.Unmarshal(data[1:])
	if err != nil {
		return nil, false
	}
	db, ok := msg.(*wire.DeliverBlock)
	if !ok || db.Block == nil {
		return nil, false
	}
	return db.Block, true
}
