package harness

import (
	"testing"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/wire"
)

// fastNetTune speeds up the shared-core timers the way the scenario runner
// does, so catch-up paths resolve within short test horizons.
func fastNetTune(_ wire.NodeID, cfg *gossip.Config) {
	cfg.StateInfoInterval = time.Second
	cfg.AliveInterval = 2 * time.Second
	cfg.AliveExpiration = 5 * time.Second
	cfg.RecoveryInterval = 2 * time.Second
	cfg.RecoveryBatch = 64
}

func buildNetwork(t *testing.T, p NetworkParams, opts ...NetworkOption) *Network {
	t.Helper()
	opts = append([]NetworkOption{WithNetworkGossipTune(fastNetTune)}, opts...)
	n, err := NewNetwork(p, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func appendChain(n *Network, blocks int, interval time.Duration) {
	for i, b := range BuildChain(blocks, 2, 64, n.Params.Seed) {
		b := b
		n.Engine.At(time.Duration(i)*interval, func() { n.Append(b) })
	}
}

func assertAllCommitted(t *testing.T, n *Network, want uint64) {
	t.Helper()
	for g, c := range n.Cores {
		if n.Crashed(g) {
			continue
		}
		if h := c.Height(); h != want {
			t.Fatalf("org %d peer %d at height %d, want %d", n.OrgOf(g), g, h, want)
		}
	}
}

func TestNetworkDisseminatesWithinEveryOrg(t *testing.T) {
	n := buildNetwork(t, NetworkParams{
		Seed: 5,
		Orgs: []OrgSpec{{Peers: 5}, {Peers: 5}, {Peers: 5}},
	})
	if n.TotalPeers() != 15 {
		t.Fatalf("total peers = %d", n.TotalPeers())
	}
	if n.OrgOf(0) != 0 || n.OrgOf(7) != 1 || n.OrgOf(14) != 2 {
		t.Fatal("global index to org mapping broken")
	}
	n.StartAll()
	appendChain(n, 5, 300*time.Millisecond)
	n.Engine.RunUntil(20 * time.Second)
	n.StopAll()
	assertAllCommitted(t, n, 5)
}

func TestNetworkMixedProtocolOrgs(t *testing.T) {
	n := buildNetwork(t, NetworkParams{
		Seed: 9,
		Orgs: []OrgSpec{
			{Peers: 6, Variant: VariantOriginal},
			{Peers: 6, Variant: VariantEnhanced},
		},
	})
	if n.Orgs[0].Variant != VariantOriginal || n.Orgs[1].Variant != VariantEnhanced {
		t.Fatal("per-org variants not resolved")
	}
	n.StartAll()
	appendChain(n, 4, 400*time.Millisecond)
	n.Engine.RunUntil(25 * time.Second)
	n.StopAll()
	assertAllCommitted(t, n, 4)
}

// A crashed leader fails the deliver stream over to the next peer of the
// same organization; when the old leader restarts cold it reopens the
// stream at its own (zero) height and the orderer replays the chain.
func TestNetworkLeaderFailoverAndRewind(t *testing.T) {
	var redeliveries int
	n := buildNetwork(t, NetworkParams{
		Seed: 11,
		Orgs: []OrgSpec{{Peers: 4}, {Peers: 4}},
	}, WithDeliverHook(func(_, _ int, _ *ledger.Block, redelivery bool) {
		if redelivery {
			redeliveries++
		}
	}))
	n.StartAll()
	appendChain(n, 6, 300*time.Millisecond)
	// Crash org 1's leader mid-stream; it restarts cold later.
	n.Engine.At(700*time.Millisecond, func() { n.Crash(4) })
	n.Engine.At(6*time.Second, func() { n.Restart(4) })
	n.Engine.RunUntil(30 * time.Second)
	n.StopAll()
	assertAllCommitted(t, n, 6)
	if lead := n.OrgLeader(1); lead != 4 {
		t.Fatalf("org 1 leader = %d after restart, want 4", lead)
	}
	if redeliveries == 0 {
		t.Fatal("restarted leader never had the stream replayed from its height")
	}
}

// A whole organization that starts crashed and joins later must catch up
// from block zero through the orderer's deliver stream plus intra-org
// recovery.
func TestNetworkWholeOrgColdJoin(t *testing.T) {
	n := buildNetwork(t, NetworkParams{
		Seed: 13,
		Orgs: []OrgSpec{{Peers: 5}, {Peers: 5}},
	})
	n.StartAll()
	for g := 5; g < 10; g++ {
		n.Crash(g)
	}
	appendChain(n, 6, 300*time.Millisecond)
	n.Engine.At(4*time.Second, func() {
		for g := 5; g < 10; g++ {
			n.Restart(g)
		}
	})
	n.Engine.RunUntil(40 * time.Second)
	n.StopAll()
	assertAllCommitted(t, n, 6)
}

// A whole organization that crashes and cold-restarts between two pump
// ticks comes back with the same lowest-id leader; the orderer must still
// notice the session is new and rewind the stream to the leader's empty
// ledger instead of resuming at the old position (which would lose the
// already-streamed prefix forever, since no intra-org peer has it either).
func TestNetworkOrgFlapBetweenPumpTicksRewindsStream(t *testing.T) {
	n := buildNetwork(t, NetworkParams{
		Seed: 17,
		Orgs: []OrgSpec{{Peers: 4}, {Peers: 4}},
	})
	n.StartAll()
	appendChain(n, 4, 300*time.Millisecond)
	n.Engine.At(2500*time.Millisecond, func() {
		for g := 4; g < 8; g++ {
			n.Crash(g)
		}
	})
	// Restart 400 ms later: inside the same 1 s redelivery interval, so no
	// pump tick observed the outage.
	n.Engine.At(2900*time.Millisecond, func() {
		for g := 4; g < 8; g++ {
			n.Restart(g)
		}
	})
	n.Engine.RunUntil(30 * time.Second)
	n.StopAll()
	assertAllCommitted(t, n, 4)
}

func TestNetworkRejectsBadSpecs(t *testing.T) {
	if _, err := NewNetwork(NetworkParams{Seed: 1}); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := NewNetwork(NetworkParams{Seed: 1, Orgs: []OrgSpec{{Peers: 1}}}); err == nil {
		t.Fatal("single-peer org accepted")
	}
	if _, err := NewNetwork(NetworkParams{Seed: 1, Orgs: []OrgSpec{{Peers: 3, Variant: "bogus"}}}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}
