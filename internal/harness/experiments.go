package harness

import (
	"fmt"
	"sort"
)

// ExperimentIDs lists every regenerable experiment, in paper order.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentSpecs))
	for id := range experimentSpecs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

type experimentSpec struct {
	title  string
	params func(seed int64) Params
	kind   string // "peer", "block", "bandwidth", "analytics", "table2"
}

var experimentSpecs = map[string]experimentSpec{
	"fig4": {
		title:  "Latency at the peer level, original gossip (fout=3, pull 4s)",
		params: func(s int64) Params { return DefaultParams(VariantOriginal, s) },
		kind:   "peer",
	},
	"fig5": {
		title:  "Latency at the block level, original gossip",
		params: func(s int64) Params { return DefaultParams(VariantOriginal, s) },
		kind:   "block",
	},
	"fig6": {
		title:  "Bandwidth, leader vs regular peer, original gossip",
		params: func(s int64) Params { return DefaultParams(VariantOriginal, s) },
		kind:   "bandwidth",
	},
	"fig7": {
		title:  "Latency at the peer level, enhanced gossip (fout=4, TTL=9)",
		params: Fig7Params,
		kind:   "peer",
	},
	"fig8": {
		title:  "Latency at the block level, enhanced gossip (fout=4, TTL=9)",
		params: Fig7Params,
		kind:   "block",
	},
	"fig9": {
		title:  "Bandwidth, leader vs regular peer, enhanced gossip (fout=4, TTL=9)",
		params: Fig7Params,
		kind:   "bandwidth",
	},
	"fig10": {
		title:  "Bandwidth ablation: leader uses fleaderout = fout = 4",
		params: Fig10Params,
		kind:   "bandwidth",
	},
	"fig11": {
		title:  "Bandwidth ablation: digests disabled (bodies on every hop)",
		params: Fig11Params,
		kind:   "bandwidth",
	},
	"fig12": {
		title:  "Latency at the peer level, enhanced gossip (fout=2, TTL=19)",
		params: Fig12Params,
		kind:   "peer",
	},
	"fig13": {
		title:  "Latency at the block level, enhanced gossip (fout=2, TTL=19)",
		params: Fig12Params,
		kind:   "block",
	},
	"fig14": {
		title:  "Bandwidth, leader vs regular peer, enhanced gossip (fout=2, TTL=19)",
		params: Fig12Params,
		kind:   "bandwidth",
	},
	"analytics": {
		title: "§IV analytic claims",
		kind:  "analytics",
	},
	"table2": {
		title: "Invalidated transactions under different block periods",
		kind:  "table2",
	},
}

// RunExperiment regenerates one experiment. quick shrinks the workload for
// tests and smoke runs (fewer peers/blocks; same protocol behaviour and
// qualitative shape).
func RunExperiment(id string, seed int64, quick bool) (Report, error) {
	spec, ok := experimentSpecs[id]
	if !ok {
		return Report{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	switch spec.kind {
	case "analytics":
		return AnalyticsReport(seed), nil
	case "table2":
		return Table2Report(seed, quick)
	}
	p := spec.params(seed)
	if quick {
		blocks := 30
		if id == "fig11" {
			blocks = 10
		}
		p = QuickScale(p, 40, blocks)
	}
	res, err := RunDissemination(p)
	if err != nil {
		return Report{}, err
	}
	switch spec.kind {
	case "peer":
		return PeerLatencyReport(id, spec.title, res)
	case "block":
		return BlockLatencyReport(id, spec.title, res)
	case "bandwidth":
		return BandwidthReport(id, spec.title, res), nil
	}
	return Report{}, fmt.Errorf("harness: bad experiment kind %q", spec.kind)
}
