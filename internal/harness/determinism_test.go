package harness

import (
	"fmt"
	"testing"
	"time"

	"fabricgossip/internal/metrics"
	"fabricgossip/internal/wire"
)

// resultDigest serializes everything a DisseminationResult measured into a
// canonical string: every latency quantile per view, traffic totals and
// per-type counts, and the headline counters. Two runs of the same seed
// must produce identical digests.
func resultDigest(res *DisseminationResult) string {
	all := res.Latencies.All()
	s := fmt.Sprintf("count=%d peers=%d blocks=%d body=%d recov=%d wall=%d bytes=%d\n",
		res.Latencies.Count(), res.Latencies.Peers(), res.Latencies.Blocks(),
		res.BodyTransmissions, res.RecoveryServed, res.WallBlocks, res.Traffic.TotalBytes())
	for p := 0.05; p <= 1.0; p += 0.05 {
		s += fmt.Sprintf("q%.2f=%v\n", p, all.Quantile(p))
	}
	for mt := wire.TypeData; mt <= wire.TypeDeliverBlock; mt++ {
		s += fmt.Sprintf("%v=%d/%d\n", mt, res.Traffic.CountOf(mt), res.Traffic.BytesOf(mt))
	}
	s += metrics.Summarize(all).String()
	return s
}

func smallParams(v Variant, seed int64) Params {
	p := QuickScale(DefaultParams(v, seed), 20, 6)
	p.BlockInterval = 300 * time.Millisecond
	p.Tail = 10 * time.Second
	p.BackgroundBytesPerSec = 0
	return p
}

// The determinism property at the harness level: repeated RunDissemination
// calls with one seed yield byte-identical metrics for both protocols.
func TestDisseminationResultDeterministicPerSeed(t *testing.T) {
	for _, v := range []Variant{VariantOriginal, VariantEnhanced} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			t.Parallel()
			a, err := RunDissemination(smallParams(v, 17))
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunDissemination(smallParams(v, 17))
			if err != nil {
				t.Fatal(err)
			}
			da, db := resultDigest(a), resultDigest(b)
			if da != db {
				t.Fatalf("same-seed digests differ:\n%s\n---\n%s", da, db)
			}
			c, err := RunDissemination(smallParams(v, 18))
			if err != nil {
				t.Fatal(err)
			}
			if resultDigest(c) == da {
				t.Fatal("different seeds produced identical digests")
			}
		})
	}
}
