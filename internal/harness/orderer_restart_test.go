package harness

import (
	"testing"
	"time"
)

// TestRestartOrdererChainDurability pins the legacy single-orderer restart
// contract that RestartOrderer documents: the cut chain is durable state.
// Blocks appended while the orderer is down land in the durable chain (a
// real orderer's Raft log accepts nothing while down, but the harness
// models the chain as the scripted input, not the orderer's memory), and a
// restart resumes the deliver streams over the FULL chain — nothing cut
// before or during the outage is lost, and every organization converges on
// the complete ledger.
func TestRestartOrdererChainDurability(t *testing.T) {
	n := buildNetwork(t, NetworkParams{
		Seed: 11,
		Orgs: []OrgSpec{{Peers: 4}, {Peers: 4}},
	})
	n.StartAll()
	// Blocks 1-2 flow normally; the orderer crashes at 1s; blocks 3-4 are
	// cut into the durable chain during the outage; the restart at 4s must
	// deliver the whole backlog.
	appendChain(n, 6, 300*time.Millisecond) // appends at 0,300ms,...,1.5s
	n.Engine.At(time.Second, func() { n.CrashOrderer() })
	n.Engine.At(4*time.Second, func() { n.RestartOrderer() })
	n.Engine.RunUntil(25 * time.Second)
	n.StopAll()

	if got := n.ChainLength(); got != 6 {
		t.Fatalf("chain length %d after restart, want 6 — the chain must survive the crash", got)
	}
	assertAllCommitted(t, n, 6)
}
