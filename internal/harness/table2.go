package harness

import (
	"fmt"
	"math/rand"
	"time"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/client"
	"fabricgossip/internal/endorse"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/order"
	"fabricgossip/internal/peer"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// ConflictParams configures one Table II run: the counter-increment
// workload over the full execute-order-validate pipeline (paper §V-D).
type ConflictParams struct {
	Seed     int64
	NumPeers int
	Variant  Variant
	Original original.Config
	Enhanced enhanced.Config

	// Keys integers are each incremented Rounds times, one permutation of
	// all keys per round, at TxRate transactions per second (paper: 100
	// keys x 100 rounds at 5 tx/s = 10,000 transactions).
	Keys   int
	Rounds int
	TxRate float64

	// BlockPeriod is the orderer batch timeout Table II varies
	// (0.75/1/1.5/2 s). MaxTxPerBlock stays at the §V-A cap.
	BlockPeriod   time.Duration
	MaxTxPerBlock int
	// ValidationPerTx is the modelled per-transaction validation cost
	// (paper: ≈50 ms).
	ValidationPerTx time.Duration
	// RaftOrderers, when > 0, replaces the solo consenter with a Raft
	// cluster of that many ordering nodes (the paper used a 4-node Kafka
	// CFT cluster; Fabric v1.4.1 replaced it with Raft). The lead service
	// delivers blocks to the organization's leader peer.
	RaftOrderers int
}

// DefaultConflictParams returns the paper's Table II workload for one
// variant and block period.
func DefaultConflictParams(v Variant, period time.Duration, seed int64) ConflictParams {
	p := ConflictParams{
		Seed:            seed,
		NumPeers:        100,
		Variant:         v,
		Original:        original.DefaultConfig(),
		Keys:            100,
		Rounds:          100,
		TxRate:          5,
		BlockPeriod:     period,
		MaxTxPerBlock:   50,
		ValidationPerTx: 50 * time.Millisecond,
	}
	cfg, err := enhanced.ConfigFor(p.NumPeers, 4, 1e-6, 2)
	if err != nil {
		panic(err) // statically known-good parameters
	}
	p.Enhanced = cfg
	return p
}

// ConflictResult reports one run's outcome.
type ConflictResult struct {
	Params ConflictParams
	// TotalTx is the number of submitted increments.
	TotalTx int
	// Conflicts is TotalTx minus the sum over all counters in the final
	// ledger — the paper's accounting of validation-time conflicts.
	Conflicts int
	// PeerReportedConflicts cross-checks Conflicts from the endorser
	// peer's commit results.
	PeerReportedConflicts int
	// Blocks is how many blocks the ordering service cut.
	Blocks uint64
	// MeanTxPerBlock is TotalTx / Blocks.
	MeanTxPerBlock float64
}

// RunConflictExperiment runs one full EOV pipeline experiment and counts
// validation-time conflicts.
func RunConflictExperiment(p ConflictParams) (*ConflictResult, error) {
	if p.NumPeers < 2 {
		return nil, fmt.Errorf("harness: need at least 2 peers")
	}
	engine := sim.NewEngine(p.Seed)
	net := transport.NewSimNetwork(engine, netmodel.LAN(), netmodel.NewSimTraffic(10*time.Second))

	// Identities: an MSP certifies the orderer and the endorsing peer.
	idRng := rand.New(rand.NewSource(p.Seed + 1))
	provider, err := msp.NewProvider(idRng)
	if err != nil {
		return nil, err
	}
	ordererID, ordererSigner, err := provider.Enroll(msp.RoleOrderer, "ordererOrg", "orderer0", idRng)
	if err != nil {
		return nil, err
	}
	endorserID, endorserSigner, err := provider.Enroll(msp.RolePeer, "orgA", "peer1", idRng)
	if err != nil {
		return nil, err
	}
	policy := endorse.NewPolicy(1, endorserID)
	// One shared checker: its verification cache is what lets 100 peers
	// validate the same 10,000 transactions without 1M Ed25519 verifies.
	checker := policy.Checker()

	peerIDs := make([]wire.NodeID, p.NumPeers)
	for i := range peerIDs {
		peerIDs[i] = wire.NodeID(i)
	}

	peers := make([]*peer.Peer, p.NumPeers)
	for i := 0; i < p.NumPeers; i++ {
		ep := net.AddNode()
		gcfg := gossip.DefaultConfig(ep.ID(), peerIDs)
		var proto gossip.Protocol
		switch p.Variant {
		case VariantOriginal:
			proto = original.New(p.Original)
		case VariantEnhanced:
			proto = enhanced.New(p.Enhanced)
		default:
			return nil, fmt.Errorf("harness: unknown variant %q", p.Variant)
		}
		core := gossip.New(gcfg, ep, engine, engine.Rand("gossip"), proto)
		peers[i] = peer.New(core, checker, engine, peer.Config{
			ValidationPerTx: p.ValidationPerTx,
			OrdererKey:      ordererID.Key,
		})
	}

	// Ordering service: one delivery endpoint on the same network; cut
	// blocks go to the leader peer (peer 0). The consenter is solo by
	// default, or a Raft cluster when RaftOrderers > 0.
	ordererEp := net.AddNode()
	oCfg := order.Config{MaxTxPerBlock: p.MaxTxPerBlock, BatchTimeout: p.BlockPeriod}
	deliver := func(b *ledger.Block) { _ = ordererEp.Send(0, &wire.DeliverBlock{Block: b}) }
	var service *order.Service
	if p.RaftOrderers > 0 {
		raftIDs := make([]wire.NodeID, p.RaftOrderers)
		raftEps := make([]*transport.SimEndpoint, p.RaftOrderers)
		for i := range raftIDs {
			raftEps[i] = net.AddNode()
			raftIDs[i] = raftEps[i].ID()
		}
		for i := 0; i < p.RaftOrderers; i++ {
			node := raft.New(raft.DefaultConfig(raftIDs[i], raftIDs), raftEps[i], engine, engine.Rand("raft"))
			d := func(*ledger.Block) {} // only the lead service delivers
			if i == 0 {
				d = deliver
			}
			svc := order.NewService(oCfg, engine, raft.NewConsenter(node, engine), ordererSigner, d)
			if i == 0 {
				service = svc
			}
			node.Start()
		}
	} else {
		service = order.NewService(oCfg, engine, order.NewSolo(engine, 5*time.Millisecond), ordererSigner, deliver)
	}
	ordererEp.SetHandler(func(_ wire.NodeID, msg wire.Message) {
		if st, ok := msg.(*wire.SubmitTx); ok {
			_ = service.Broadcast(st.Tx)
		}
	})

	for _, pr := range peers {
		pr.Gossip().Start()
	}

	// The single endorsing peer (paper: "we focus on validation-time
	// conflicts and therefore use a single endorsing peer"). Peer 1 is a
	// regular, non-leader peer.
	const endorserIdx = 1
	endorser := endorse.NewEndorser(endorserID, endorserSigner, peers[endorserIdx].State())
	endorser.Install(chaincode.Counter{})

	// The client submits proposals through the endorser and broadcasts
	// the assembled transaction to the ordering node over the network.
	clientEp := net.AddNode()
	cl, err := client.New("client0", []*endorse.Endorser{endorser}, func(tx *ledger.Transaction) error {
		return clientEp.Send(ordererEp.ID(), &wire.SubmitTx{Tx: tx})
	})
	if err != nil {
		return nil, err
	}

	// Workload: Rounds permutations of Keys increments at TxRate tx/s.
	wrng := engine.Rand("workload")
	keys := make([]string, p.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("ctr-%03d", i)
	}
	interval := time.Duration(float64(time.Second) / p.TxRate)
	total := 0
	for r := 0; r < p.Rounds; r++ {
		perm := wrng.Perm(p.Keys)
		for i, ki := range perm {
			key := keys[ki]
			at := time.Duration(r*p.Keys+i) * interval
			engine.At(at, func() {
				// Conflicted transactions are not resent (§V-D); the
				// endorsement itself cannot fail for this chaincode.
				_, _ = cl.Invoke("counter", []string{"incr", key}, nil)
			})
			total++
		}
	}

	// Run until the last transaction's block has certainly drained
	// through ordering, dissemination and validation everywhere.
	end := time.Duration(total)*interval + p.BlockPeriod + 60*time.Second
	engine.RunUntil(end)
	for _, pr := range peers {
		pr.Gossip().Stop()
	}

	// Paper accounting: conflicts = total - sum of the final counters.
	var sum uint64
	state := peers[endorserIdx].State()
	for _, key := range keys {
		vv, _ := state.Get(key)
		v, err := chaincode.DecodeUint64(vv.Value)
		if err != nil {
			return nil, fmt.Errorf("harness: counter %s corrupt: %w", key, err)
		}
		sum += v
	}
	res := &ConflictResult{
		Params:                p,
		TotalTx:               total,
		Conflicts:             total - int(sum),
		PeerReportedConflicts: peers[endorserIdx].Conflicts(),
		Blocks:                service.Height(),
	}
	if res.Blocks > 0 {
		res.MeanTxPerBlock = float64(res.TotalTx) / float64(res.Blocks)
	}
	return res, nil
}

// Table2Report reproduces Table II: validation-time conflicts for block
// periods 2/1.5/1/0.75 s under both gossip variants, averaged over five
// seeds (as in the paper). quick shrinks the workload for smoke tests.
func Table2Report(seed int64, quick bool) (Report, error) {
	r := Report{ID: "table2", Title: "Invalidated transactions under different block periods (avg of 5 runs)"}
	periods := []time.Duration{2 * time.Second, 1500 * time.Millisecond, time.Second, 750 * time.Millisecond}
	seeds := []int64{seed, seed + 1, seed + 2, seed + 3, seed + 4}
	shrink := func(p ConflictParams) ConflictParams { return p }
	if quick {
		periods = periods[:2]
		seeds = seeds[:1]
		shrink = func(p ConflictParams) ConflictParams {
			p.NumPeers = 30
			p.Keys = 30
			p.Rounds = 10
			cfg, err := enhanced.ConfigFor(p.NumPeers, 4, 1e-6, 2)
			if err == nil {
				p.Enhanced = cfg
			}
			return p
		}
	}
	r.addf("%-8s %-9s %-11s %10s %10s %10s", "period", "tx/block", "validation", "original", "enhanced", "difference")
	for _, period := range periods {
		var acc table2Acc
		for _, s := range seeds {
			op, err := RunConflictExperiment(shrink(DefaultConflictParams(VariantOriginal, period, s)))
			if err != nil {
				return r, err
			}
			ep, err := RunConflictExperiment(shrink(DefaultConflictParams(VariantEnhanced, period, s)))
			if err != nil {
				return r, err
			}
			acc.add(op, ep)
		}
		row := acc.row()
		r.addf("%-8v %-9.1f %-11.2f %10.1f %10.1f %9.1f%%",
			period, row.TxPerBlock, row.ValidationSec, row.Original, row.Enhanced, row.DiffPct)
	}
	return r, nil
}

// validationSeconds is the Table II "validation" column: the modelled time
// to validate one mean-sized block, in float64 seconds. The multiplication
// stays in float space throughout — converting the mean transactions per
// block to a time.Duration first would truncate it to integer nanoseconds
// and then multiply two Durations, which is dimensionally meaningless.
func validationSeconds(meanTxPerBlock float64, perTx time.Duration) float64 {
	return meanTxPerBlock * perTx.Seconds()
}

// table2Acc accumulates one Table II row across seeds. Every column is the
// mean over all seeds' runs: conflicts per variant, and the original
// variant's transactions per block and validation time (the paper reports
// the original deployment's batching profile).
type table2Acc struct {
	n                   int
	oSum, eSum          float64
	txPerBlock, valTime float64
}

func (a *table2Acc) add(op, ep *ConflictResult) {
	a.n++
	a.oSum += float64(op.Conflicts)
	a.eSum += float64(ep.Conflicts)
	a.txPerBlock += op.MeanTxPerBlock
	a.valTime += validationSeconds(op.MeanTxPerBlock, op.Params.ValidationPerTx)
}

// Table2Row is one averaged row of the Table II report.
type Table2Row struct {
	TxPerBlock    float64
	ValidationSec float64
	Original      float64
	Enhanced      float64
	DiffPct       float64
}

func (a *table2Acc) row() Table2Row {
	if a.n == 0 {
		return Table2Row{}
	}
	n := float64(a.n)
	row := Table2Row{
		TxPerBlock:    a.txPerBlock / n,
		ValidationSec: a.valTime / n,
		Original:      a.oSum / n,
		Enhanced:      a.eSum / n,
	}
	if row.Original > 0 {
		row.DiffPct = 100 * (row.Enhanced - row.Original) / row.Original
	}
	return row
}
