package harness

import (
	"fmt"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/raft"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// OrgSpec describes one organization of a multi-org Network.
type OrgSpec struct {
	// Peers is the organization's size (at least 2).
	Peers int
	// Variant optionally overrides the network-wide protocol for this
	// organization; empty inherits NetworkParams.Variant. Mixed networks
	// (some orgs original, some enhanced) are a first-class configuration.
	Variant Variant
}

// NetworkParams configures a multi-organization network: the paper's
// Figure 1 deployment shape, one channel spanning several organizations.
type NetworkParams struct {
	Seed int64
	// Variant is the default protocol for organizations without an
	// override. Empty defaults to VariantEnhanced.
	Variant Variant
	Orgs    []OrgSpec
	// Bucket is the traffic-accounting bucket width (default 10 s).
	Bucket time.Duration
	// TrafficTotals switches every traffic accountant to per-node running
	// totals (netmodel.Traffic.TotalsOnly): NodeTotals and the aggregate
	// counters stay exact, per-bucket series are never allocated. The
	// scenario runner sets it — its reports only read totals — so the
	// unread series don't dominate the accountant's footprint at the
	// 100k-peer tier. Figure runs keep the series.
	TrafficTotals bool
	// RedeliverInterval is how often the ordering service retries streaming
	// undelivered blocks to each organization's current leader (default
	// 1 s). Real orderers serve a reliable deliver stream per leader; the
	// retry models the stream resuming after partitions and failovers.
	RedeliverInterval time.Duration
	// RedeliverBatch caps how many backlogged blocks one retry streams to
	// an organization (default 32), pacing deep catch-ups.
	RedeliverBatch int
	// Fout and TTLDirect shape each enhanced organization's configuration,
	// computed per organization size via enhanced.ConfigFor. Zero defaults
	// to the paper's fout=4, TTLdirect=2.
	Fout      int
	TTLDirect uint32

	// AnchorRecovery enables cross-organization state transfer: each
	// organization designates its AnchorsPerOrg lowest-indexed peers as
	// anchor peers (Fabric's channel-config anchors), and every peer is
	// configured with the *other* organizations' anchors so its leader can
	// fetch missing blocks from them when the ordering service goes
	// silent. Off by default: single-org networks and orderer-only
	// recovery behave exactly as before.
	AnchorRecovery bool
	// AnchorsPerOrg is how many anchor peers each organization publishes
	// (default 1; capped at the organization's size).
	AnchorsPerOrg int
	// AnchorInterval is each leader's anchor probe period while the
	// orderer is silent (default 2s).
	AnchorInterval time.Duration
	// OrdererStall is how long without an orderer delivery before a
	// leader starts probing anchors (default 5s).
	OrdererStall time.Duration

	// WANDelay, when positive, separates every organization — and the
	// ordering service — onto its own WAN site: messages between nodes of
	// different organizations (or between the orderer and any peer) pay
	// this much extra one-way latency on top of the LAN model, via the
	// transport's O(1)-per-send site assignment. Intra-org traffic stays
	// on the LAN.
	WANDelay time.Duration

	// Consenters runs the ordering service as a Raft cluster of this many
	// consenter nodes instead of the single crashable orderer endpoint.
	// Zero (the default) keeps the legacy single-orderer model untouched —
	// config-gated exactly like the statesync and membership extractions.
	// With Consenters > 0 the Orderer endpoint is not created: the chain
	// is replicated through the Raft log (each consenter appends it by
	// applying the same committed entries) and only the current Raft
	// leader serves deliver streams to org leader peers, rewinding each
	// stream on leadership change via the existing deliver-rewind
	// machinery. Orderer-stall anchor recovery needs no changes: peers
	// key stall detection to DeliverBlock receipt, which in cluster mode
	// is exactly leader silence.
	Consenters int
	// ConsenterSpread, with WANDelay, scatters consenters round-robin
	// across the organizations' WAN sites instead of co-locating them all
	// on the ordering site — the WAN-separated consenter deployment.
	ConsenterSpread bool

	// Sharded partitions the simulation into one engine per organization
	// plus one for the ordering service, run in conservative lock-step
	// windows (sim.ShardedEngine). Organizations are already isolated
	// gossip domains, so the only cross-shard traffic is ordering
	// delivery, client submission, and anchor/statesync recovery — all of
	// which carry at least the derived lookahead of simulated latency.
	// Deterministic for a given seed regardless of GOMAXPROCS, but a
	// *different* deterministic lineage than the sequential engine: the
	// two cannot interleave same-instant events identically, so sharded
	// fingerprints are compared sharded-to-sharded.
	Sharded bool
	// FixedLookahead disables the sharded coordinator's adaptive barrier
	// elision, forcing the full ceremony at every window edge. Adaptive
	// and fixed runs are byte-identical — elision only skips edges whose
	// ceremony would have executed nothing — so the knob exists for the
	// equivalence property test and for debugging.
	FixedLookahead bool
}

func (p NetworkParams) withDefaults() NetworkParams {
	if p.Variant == "" {
		p.Variant = VariantEnhanced
	}
	if p.Bucket == 0 {
		p.Bucket = 10 * time.Second
	}
	if p.RedeliverInterval == 0 {
		p.RedeliverInterval = time.Second
	}
	if p.RedeliverBatch == 0 {
		p.RedeliverBatch = 32
	}
	if p.Fout == 0 {
		p.Fout = 4
	}
	if p.TTLDirect == 0 {
		p.TTLDirect = 2
	}
	if p.AnchorsPerOrg == 0 {
		p.AnchorsPerOrg = 1
	}
	if p.AnchorInterval == 0 {
		p.AnchorInterval = 2 * time.Second
	}
	if p.OrdererStall == 0 {
		p.OrdererStall = 5 * time.Second
	}
	return p
}

// lookahead derives the sharded engine's conservative window width: a lower
// bound on the simulated latency of every cross-shard message. The LAN
// model's minimum propagation delay floors every send (Model.Delay starts
// there and only adds), and when WANDelay separates the organizations onto
// sites, every cross-shard pair additionally crosses a site boundary —
// *except* under ConsenterSpread, which co-locates each consenter with one
// organization's site, keeping some cross-shard pairs on the LAN floor.
// Per-link and per-node extra delays only ever add latency, so they never
// lower the bound.
func (p NetworkParams) lookahead() time.Duration {
	la := netmodel.LAN().PropMin
	if p.WANDelay > 0 && !(p.Consenters > 0 && p.ConsenterSpread) {
		la += p.WANDelay
	}
	return la
}

// OrgDomain is one organization inside a Network: a contiguous range of
// global peer indices forming an isolated gossip domain (Fabric does not
// gossip data blocks across organizations, paper §III-A).
type OrgDomain struct {
	Index   int
	Variant Variant
	// Lo and Hi bound the organization's global peer indices: [Lo, Hi).
	Lo, Hi int
	// Peers lists the organization's node ids (global and dense).
	Peers []wire.NodeID

	enhanced enhanced.Config
	original original.Config
}

// Size returns the organization's peer count.
func (d *OrgDomain) Size() int { return d.Hi - d.Lo }

// Network is a simulated multi-organization blockchain network: N orgs of
// M peers each over one shared LAN model and discrete-event engine, plus an
// ordering service that tracks every organization's dynamic leader and
// streams each cut block to one leader peer per organization. Gossip
// dissemination stays within each organization; the ordering service is the
// only cross-organization path, exactly the paper's deployment shape.
//
// It generalizes Org: global peer indices are dense across organizations
// (org 0 owns [0, M0), org 1 owns [M0, M0+M1), ...), the orderer endpoint
// is the last node, and the fault surface (Crash, Restart, partitions via
// Net) operates on global indices.
type Network struct {
	Params NetworkParams
	// Engine is the engine scenario/control code schedules on. Sequential
	// mode: the one engine running everything. Sharded mode: the
	// coordinator's control engine — its events fire at window barriers
	// with every shard quiescent, so existing At/Every call sites (fault
	// actions, block injections, the redelivery pump, samplers) need no
	// changes to become barrier-hosted.
	Engine  *sim.Engine
	Net     *transport.SimNetwork
	Traffic *netmodel.Traffic
	Orgs    []*OrgDomain
	// Cores is indexed by global peer index.
	Cores []*gossip.Core
	// Orderer is the legacy single ordering endpoint; nil when the
	// ordering service runs as a consenter cluster (Params.Consenters > 0).
	Orderer *transport.SimEndpoint

	tune        func(self wire.NodeID, cfg *gossip.Config)
	onCore      []func(global int, c *gossip.Core)
	onDeliver   func(org, peer int, b *ledger.Block, redelivery bool)
	onSubmitTx  func(consenter int, tx *ledger.Transaction)
	onConsenter func(consenter int, s raft.State, term uint64)

	eps         []*transport.SimEndpoint
	crashed     []bool
	orgOf       []int // global peer index -> org index
	ordererDown bool

	// Ordering-service state: the cut chain plus, per organization, the
	// next chain position to stream, the last leader streamed to, and the
	// delivery high-water mark (for redelivery detection).
	chain     []*ledger.Block
	nextIdx   []int
	lastLead  []int
	highWater []int
	pump      sim.Timer

	// cluster is the replicated ordering service (nil in legacy mode).
	cluster *consenterCluster

	// Sharded-mode state (nil/zero in sequential mode). ordEngine is the
	// engine the ordering service (legacy orderer timers, raft nodes,
	// order services) runs on: the ordering shard's engine, or Engine
	// sequentially. pumpWanted coalesces mid-window pump requests (a
	// consenter committing a block cannot touch other shards' peers until
	// the next barrier).
	se            *sim.ShardedEngine
	ordEngine     *sim.Engine
	shardTraffics []*netmodel.Traffic
	trafficMerged bool
	pumpWanted    bool

	// Per-org deliver-gap tracking: time of the last first-time delivery
	// and the widest observed gap between consecutive ones — the ordering
	// outage as an org experiences it (elections, crashes, partitions).
	lastDeliverAt []time.Duration
	maxDeliverGap []time.Duration
}

// NetworkOption tweaks network construction.
type NetworkOption func(*Network)

// WithNetworkGossipTune adjusts each peer's shared gossip configuration
// before its core is built, at construction and again on Restart.
func WithNetworkGossipTune(f func(self wire.NodeID, cfg *gossip.Config)) NetworkOption {
	return func(n *Network) { n.tune = f }
}

// WithNetworkCoreHook installs f to run for every core before it starts —
// at construction and for each core recreated by Restart — so measurement
// hooks survive peer churn. The first argument is the global peer index.
// Hooks run in registration order.
func WithNetworkCoreHook(f func(global int, c *gossip.Core)) NetworkOption {
	return func(n *Network) { n.onCore = append(n.onCore, f) }
}

// AddCoreHook registers a core hook after construction: it runs for every
// core recreated by Restart from now on (existing cores are not revisited —
// the caller can walk Cores itself). Subsystems layered on top of a built
// Network (e.g. the workload plane's per-peer validation pipelines) use it
// to survive peer churn.
func (n *Network) AddCoreHook(f func(global int, c *gossip.Core)) {
	n.onCore = append(n.onCore, f)
}

// WithDeliverHook installs f to observe every block the ordering service
// streams into an organization: org and peer identify the targeted leader,
// redelivery reports whether the block had already been streamed to this
// organization before (leader failover or catch-up replays).
func WithDeliverHook(f func(org, peer int, b *ledger.Block, redelivery bool)) NetworkOption {
	return func(n *Network) { n.onDeliver = f }
}

// NewNetwork builds (but does not start) a multi-organization network over
// the calibrated LAN model.
func NewNetwork(p NetworkParams, opts ...NetworkOption) (*Network, error) {
	p = p.withDefaults()
	if len(p.Orgs) == 0 {
		return nil, fmt.Errorf("harness: network needs at least one organization")
	}
	n := &Network{Params: p}
	if p.Sharded {
		if la := p.lookahead(); la > 0 {
			// One shard per organization plus one for the ordering service.
			n.se = sim.NewShardedEngine(p.Seed, len(p.Orgs)+1, la)
			n.se.SetAdaptive(!p.FixedLookahead)
		}
		// Safe fallback: a non-positive lookahead admits no parallel
		// window, so the network silently runs sequentially.
	}
	if n.se != nil {
		n.Engine = n.se.Control()
		n.ordEngine = n.se.Shard(len(p.Orgs))
	} else {
		n.Engine = sim.NewEngine(p.Seed)
		n.ordEngine = n.Engine
	}
	for _, opt := range opts {
		opt(n)
	}
	n.Traffic = netmodel.NewSimTraffic(p.Bucket)
	if p.TrafficTotals {
		n.Traffic.TotalsOnly()
	}
	n.Net = transport.NewSimNetwork(n.Engine, netmodel.LAN(), n.Traffic)
	if n.se != nil {
		// Each organization shard's accountant covers only its org's id
		// range (peers get dense ids in org creation order), so dense
		// tables scale with the org, not the network. The ordering shard
		// keeps the full window: orderer ids land after every peer.
		n.shardTraffics = make([]*netmodel.Traffic, n.se.NumShards())
		base := 0
		for i := range p.Orgs {
			n.shardTraffics[i] = netmodel.NewSimTrafficWindow(p.Bucket, wire.NodeID(base), p.Orgs[i].Peers)
			base += p.Orgs[i].Peers
		}
		n.shardTraffics[len(p.Orgs)] = netmodel.NewSimTraffic(p.Bucket)
		if p.TrafficTotals {
			for _, tv := range n.shardTraffics {
				tv.TotalsOnly()
			}
		}
		n.Net.EnableSharding(n.se, n.shardTraffics)
		n.se.OnBarrier(n.drainPump)
	}
	// The ordering service delivers over a reliable stream: uniform loss
	// must not swallow a block before it enters an organization.
	n.Net.SetLossExempt(wire.TypeDeliverBlock, true)

	lo := 0
	for i, spec := range p.Orgs {
		if spec.Peers < 2 {
			return nil, fmt.Errorf("harness: org %d needs at least 2 peers, got %d", i, spec.Peers)
		}
		variant := spec.Variant
		if variant == "" {
			variant = p.Variant
		}
		if variant != VariantOriginal && variant != VariantEnhanced {
			return nil, fmt.Errorf("harness: org %d: unknown variant %q", i, variant)
		}
		d := &OrgDomain{
			Index:    i,
			Variant:  variant,
			Lo:       lo,
			Hi:       lo + spec.Peers,
			original: original.DefaultConfig(),
		}
		if variant == VariantEnhanced {
			cfg, err := enhanced.ConfigFor(spec.Peers, p.Fout, 1e-6, p.TTLDirect)
			if err != nil {
				// Tiny organizations can fall below the analytic table's
				// domain for the requested fan-out; fall back to the
				// size-derived default.
				cfg, err = enhanced.DefaultConfig(spec.Peers)
				if err != nil {
					return nil, fmt.Errorf("harness: org %d: %w", i, err)
				}
			}
			d.enhanced = cfg
		}
		d.Peers = make([]wire.NodeID, spec.Peers)
		for j := range d.Peers {
			d.Peers[j] = wire.NodeID(lo + j)
		}
		n.Orgs = append(n.Orgs, d)
		lo += spec.Peers
	}
	total := lo
	n.Cores = make([]*gossip.Core, total)
	n.eps = make([]*transport.SimEndpoint, total)
	n.crashed = make([]bool, total)
	n.orgOf = make([]int, total)
	for _, d := range n.Orgs {
		for g := d.Lo; g < d.Hi; g++ {
			n.orgOf[g] = d.Index
			n.eps[g] = n.Net.AddNode()
			if n.se != nil {
				n.Net.SetNodeShard(n.eps[g].ID(), d.Index)
			}
			n.Cores[g] = n.buildCore(g)
		}
	}
	if p.Consenters > 0 {
		n.buildCluster(p.Consenters)
	} else {
		n.Orderer = n.Net.AddNode()
		if n.se != nil {
			n.Net.SetNodeShard(n.Orderer.ID(), len(n.Orgs))
		}
	}
	if p.WANDelay > 0 {
		n.applyWAN(p.WANDelay)
	}
	n.nextIdx = make([]int, len(n.Orgs))
	n.highWater = make([]int, len(n.Orgs))
	n.lastLead = make([]int, len(n.Orgs))
	n.lastDeliverAt = make([]time.Duration, len(n.Orgs))
	n.maxDeliverGap = make([]time.Duration, len(n.Orgs))
	for i := range n.lastLead {
		n.lastLead[i] = -1
		n.lastDeliverAt[i] = -1
	}
	return n, nil
}

// buildCore constructs a fresh core (and protocol instance) for the peer at
// the given global index and runs the core hook. The peer's member list is
// its organization only — each organization is an isolated gossip domain.
func (n *Network) buildCore(global int) *gossip.Core {
	d := n.Orgs[n.orgOf[global]]
	ep := n.eps[global]
	cfg := gossip.DefaultConfig(ep.ID(), d.Peers)
	if n.Params.AnchorRecovery {
		cfg.AnchorPeers = n.remoteAnchors(d.Index)
		cfg.AnchorInterval = n.Params.AnchorInterval
		cfg.OrdererStall = n.Params.OrdererStall
	}
	if n.tune != nil {
		n.tune(ep.ID(), &cfg)
	}
	var proto gossip.Protocol
	switch d.Variant {
	case VariantOriginal:
		proto = original.New(d.original)
	default:
		proto = enhanced.New(d.enhanced)
	}
	// Each org's cores run on the org's engine: the shard engine in sharded
	// mode (with the shard's own "gossip" stream), the one engine otherwise.
	eng := n.OrgEngine(d.Index)
	core := gossip.New(cfg, ep, eng, eng.Rand("gossip"), proto)
	for _, hook := range n.onCore {
		hook(global, core)
	}
	return core
}

// OrgAnchors returns an organization's published anchor peers: its
// AnchorsPerOrg lowest-indexed members (Fabric designates anchors in the
// channel configuration; the lowest indices are this harness's stable
// choice).
func (n *Network) OrgAnchors(org int) []wire.NodeID {
	d := n.Orgs[org]
	k := n.Params.AnchorsPerOrg
	if k > len(d.Peers) {
		k = len(d.Peers)
	}
	return d.Peers[:k]
}

// remoteAnchors collects every other organization's anchor peers, in org
// order — the cross-org fetch targets for a member of org.
func (n *Network) remoteAnchors(org int) []wire.NodeID {
	var out []wire.NodeID
	for o := range n.Orgs {
		if o == org {
			continue
		}
		out = append(out, n.OrgAnchors(o)...)
	}
	return out
}

// applyWAN assigns every organization — and the ordering service — its own
// WAN site on the transport, so any message crossing a site boundary pays
// the delay. Site assignment is O(N); the per-message cost is one array
// compare, so intra-org LAN traffic keeps its fast path even at
// thousand-peer scale (a per-link override mesh would be O(N^2) map
// entries probed on every send).
func (n *Network) applyWAN(d time.Duration) {
	for g := range n.Cores {
		n.Net.SetNodeSite(wire.NodeID(g), n.orgOf[g])
	}
	if n.Orderer != nil {
		n.Net.SetNodeSite(n.Orderer.ID(), len(n.Orgs))
	}
	if n.cluster != nil {
		for i, ep := range n.cluster.eps {
			site := len(n.Orgs)
			if n.Params.ConsenterSpread {
				site = i % len(n.Orgs)
			}
			n.Net.SetNodeSite(ep.ID(), site)
		}
	}
	n.Net.SetSiteDelay(d)
}

// SetInterOrgDelay adds (or, with d <= 0, removes) extra one-way latency on
// every directed link between two organizations — a single WAN segment,
// finer-grained than NetworkParams.WANDelay.
func (n *Network) SetInterOrgDelay(orgA, orgB int, d time.Duration) {
	da, db := n.Orgs[orgA], n.Orgs[orgB]
	for a := da.Lo; a < da.Hi; a++ {
		for b := db.Lo; b < db.Hi; b++ {
			n.Net.SetLinkExtraDelay(wire.NodeID(a), wire.NodeID(b), d)
			n.Net.SetLinkExtraDelay(wire.NodeID(b), wire.NodeID(a), d)
		}
	}
}

// TotalPeers returns the peer count across all organizations.
func (n *Network) TotalPeers() int { return len(n.Cores) }

// OrgOf returns the organization index owning the given global peer index.
func (n *Network) OrgOf(global int) int { return n.orgOf[global] }

// Sharded returns the conservative coordinator, or nil when the network
// runs on the single sequential engine.
func (n *Network) Sharded() *sim.ShardedEngine { return n.se }

// OrgEngine returns the engine the organization's peers run on: its shard
// engine, or the one sequential engine.
func (n *Network) OrgEngine(org int) *sim.Engine {
	if n.se != nil {
		return n.se.Shard(org)
	}
	return n.Engine
}

// EngineFor returns the engine the peer at the given global index runs on.
func (n *Network) EngineFor(global int) *sim.Engine {
	return n.OrgEngine(n.orgOf[global])
}

// OrdererEngine returns the engine the ordering service runs on: the
// ordering shard's engine, or the one sequential engine.
func (n *Network) OrdererEngine() *sim.Engine { return n.ordEngine }

// RunUntil drives the simulation to time t, through the coordinator's
// lock-step windows in sharded mode.
func (n *Network) RunUntil(t time.Duration) {
	if n.se != nil {
		n.se.RunUntil(t)
		return
	}
	n.Engine.RunUntil(t)
}

// ExecutedEvents returns the total simulation events run across all engines.
func (n *Network) ExecutedEvents() uint64 {
	if n.se != nil {
		return n.se.Executed()
	}
	return n.Engine.Executed()
}

// PeakPending returns the event queues' high-water mark (the largest single
// engine's, in sharded mode).
func (n *Network) PeakPending() int {
	if n.se != nil {
		return n.se.PeakPending()
	}
	return n.Engine.PeakPending()
}

// TrafficView returns the network-wide traffic accounting: the live
// accountant sequentially, or the per-shard accountants merged on first use
// in sharded mode (a post-run reporting accessor there — traffic recorded
// after the first call is not folded in).
func (n *Network) TrafficView() *netmodel.Traffic {
	if n.se != nil && !n.trafficMerged {
		n.trafficMerged = true
		for _, t := range n.shardTraffics {
			n.Traffic.Merge(t)
		}
	}
	return n.Traffic
}

// AddClientNode attaches a workload client endpoint homed in the given
// organization: it joins the org's WAN site (when sites are active) and the
// org's shard (when sharded), so client traffic to the ordering service is
// cross-site and cross-shard exactly like the org's peers'.
func (n *Network) AddClientNode(org int) *transport.SimEndpoint {
	ep := n.Net.AddNode()
	if n.Params.WANDelay > 0 {
		n.Net.SetNodeSite(ep.ID(), org)
	}
	if n.se != nil {
		n.Net.SetNodeShard(ep.ID(), org)
	}
	return ep
}

// requestPump triggers ordering redelivery. Sequentially it pumps inline —
// the legacy behavior, fingerprint-pinned. In sharded mode a pump touches
// every organization's leader state, so mid-window requests (a consenter
// applying a committed block, an election resolving) coalesce into one pump
// at the next barrier, where all shards are quiescent.
func (n *Network) requestPump() {
	if n.se == nil {
		n.pumpAll()
		return
	}
	n.pumpWanted = true
	// The flush hook must not be elided by an adaptive coordinator.
	n.se.RequestBarrier()
}

// drainPump is the coordinator barrier hook behind requestPump.
func (n *Network) drainPump() {
	if n.pumpWanted {
		n.pumpWanted = false
		n.pumpAll()
	}
}

// StartAll starts every peer's core, the consenter cluster (if any), and
// arms the ordering service's redelivery timer.
func (n *Network) StartAll() {
	for _, c := range n.Cores {
		c.Start()
	}
	if n.cluster != nil && !n.cluster.started {
		n.cluster.started = true
		for _, node := range n.cluster.nodes {
			node.Start()
		}
	}
	if n.pump == nil {
		n.pump = n.Engine.Every(n.Params.RedeliverInterval, n.pumpAll)
	}
}

// StopAll stops every non-crashed peer's core and the ordering service.
func (n *Network) StopAll() {
	for g, c := range n.Cores {
		if !n.crashed[g] {
			c.Stop()
		}
	}
	if n.cluster != nil {
		for i, node := range n.cluster.nodes {
			if !n.cluster.down[i] {
				node.Stop()
			}
			n.cluster.shims[i].Stop()
		}
	}
	if n.pump != nil {
		n.pump.Stop()
		n.pump = nil
	}
}

// Crash fails the peer at the given global index: its core stops and the
// network silences its endpoint. No-op if already crashed.
func (n *Network) Crash(global int) {
	if n.crashed[global] {
		return
	}
	n.crashed[global] = true
	n.Cores[global].Stop()
	n.Net.SetNodeDown(wire.NodeID(global), true)
	// Any deliver session to this peer is gone with it.
	if org := n.orgOf[global]; n.lastLead[org] == global {
		n.lastLead[org] = -1
	}
}

// Restart revives a crashed peer with a fresh core and empty block store —
// the rejoin-with-catchup path. No-op (returning the current core) if the
// peer is not crashed.
func (n *Network) Restart(global int) *gossip.Core {
	if !n.crashed[global] {
		return n.Cores[global]
	}
	n.crashed[global] = false
	n.Net.SetNodeDown(wire.NodeID(global), false)
	core := n.buildCore(global)
	n.Cores[global] = core
	core.Start()
	return core
}

// Crashed reports whether the peer at the given global index is crashed.
func (n *Network) Crashed(global int) bool { return n.crashed[global] }

// CrashOrderer fails the whole ordering service: in legacy mode the single
// orderer endpoint goes silent; in cluster mode every consenter crashes (a
// total ordering outage — use CrashConsenter for partial faults). Every
// organization's deliver stream dies with it, and no blocks reach any
// leader until RestartOrderer. With AnchorRecovery enabled, organizations
// that fall behind can still catch up through remote anchor peers — the
// paper-external scenario this harness models after Fabric's deliver
// fallback. No-op if already crashed.
func (n *Network) CrashOrderer() {
	if n.cluster != nil {
		for i := range n.cluster.nodes {
			n.CrashConsenter(i)
		}
		return
	}
	if n.ordererDown {
		return
	}
	n.ordererDown = true
	n.Net.SetNodeDown(n.Orderer.ID(), true)
	for org := range n.lastLead {
		n.lastLead[org] = -1 // every deliver session dies with the orderer
	}
}

// RestartOrderer revives a crashed ordering service. Chain state survives
// the restart in both modes, but through different mechanisms: the legacy
// orderer's chain slice models a durable ledger, so the next pump resumes
// each organization's stream exactly where the chain left off (rewinding
// to the current leader's height) — TestRestartOrdererChainDurability pins
// this down. In cluster mode every consenter restarts and rejoins by Raft
// log replay — term, vote, and log are modelled durable; only role is
// volatile (see raft.Node.Stop) — rather than from fresh state. No-op if
// not crashed.
func (n *Network) RestartOrderer() {
	if n.cluster != nil {
		for i := range n.cluster.nodes {
			n.RestartConsenter(i)
		}
		return
	}
	if !n.ordererDown {
		return
	}
	n.ordererDown = false
	n.Net.SetNodeDown(n.Orderer.ID(), false)
	n.pumpAll()
}

// OrdererCrashed reports whether the ordering service is entirely down: the
// legacy orderer crashed, or (cluster mode) no consenter is live.
func (n *Network) OrdererCrashed() bool {
	if n.cluster != nil {
		for i := range n.cluster.down {
			if !n.cluster.down[i] {
				return false
			}
		}
		return true
	}
	return n.ordererDown
}

// LiveCount returns the number of non-crashed peers across the network.
func (n *Network) LiveCount() int {
	live := 0
	for _, down := range n.crashed {
		if !down {
			live++
		}
	}
	return live
}

// OrgLeader returns the global index of the organization's current leader:
// the lowest-id non-crashed peer (the convergence point of Fabric's dynamic
// leader election). Returns -1 if the whole organization is crashed.
func (n *Network) OrgLeader(org int) int {
	d := n.Orgs[org]
	for g := d.Lo; g < d.Hi; g++ {
		if !n.crashed[g] {
			return g
		}
	}
	return -1
}

// Append hands a freshly cut block to the ordering service. In legacy mode
// it lands on the chain and streams to each organization's leader
// immediately. In cluster mode the block is an ordering input, not an
// ordering output: it is submitted through every consenter's Raft shim and
// joins the chain only when the replicated log commits it (the shims retry
// through elections forever, so an injected block may be delayed by a
// leaderless window but never lost while a quorum eventually exists).
// Blocks must be appended in increasing, gap-free order.
func (n *Network) Append(b *ledger.Block) {
	if n.cluster != nil {
		data := encodeBlockEntry(b)
		for _, shim := range n.cluster.shims {
			_ = shim.Submit(data)
		}
		return
	}
	n.chain = append(n.chain, b)
	n.requestPump()
}

// ChainLength returns how many blocks the ordering service has cut.
func (n *Network) ChainLength() int { return len(n.chain) }

func (n *Network) pumpAll() {
	for org := range n.Orgs {
		n.pumpOrg(org)
	}
}

// deliverSource returns the endpoint currently serving deliver streams and
// how much chain prefix it may serve: the single orderer over the whole
// chain in legacy mode, or — cluster mode — the current Raft leader over
// the prefix it has itself applied (a freshly elected leader mid-replay
// must not stream blocks it has not reached). A nil endpoint means the
// ordering service is silent: orderer crashed, or no consenter currently
// leads (election in progress, quorum lost).
func (n *Network) deliverSource() (*transport.SimEndpoint, int) {
	if n.cluster == nil {
		if n.ordererDown {
			return nil, 0
		}
		return n.Orderer, len(n.chain)
	}
	l := n.cluster.leader
	if l < 0 || n.cluster.down[l] {
		return nil, 0
	}
	limit := n.cluster.height[l]
	if limit > len(n.chain) {
		limit = len(n.chain)
	}
	return n.cluster.eps[l], limit
}

// pumpOrg advances one organization's deliver stream: it streams the
// undelivered chain suffix to the lowest-id live peer the serving endpoint
// can currently reach (a partition can leave the elected leader on the far
// side, in which case the orderer serves the leader of its own side). When
// the stream target changes — failover to another peer, a restarted leader
// reopening its session, or (cluster mode) a consenter leadership change
// resetting every session — the stream rewinds to the new leader's own
// ledger height, exactly how Fabric leaders pull blocks from the ordering
// service starting at their current height.
func (n *Network) pumpOrg(org int) {
	src, limit := n.deliverSource()
	if src == nil {
		n.lastLead[org] = -1
		return
	}
	d := n.Orgs[org]
	target := -1
	for g := d.Lo; g < d.Hi; g++ {
		if !n.crashed[g] && n.Net.Reachable(src.ID(), wire.NodeID(g)) {
			target = g
			break
		}
	}
	if target < 0 {
		n.lastLead[org] = -1
		return
	}
	if n.lastLead[org] != target {
		n.lastLead[org] = target
		h := n.Cores[target].Height()
		pos := n.nextIdx[org]
		for pos > 0 && n.chain[pos-1].Num >= h {
			pos--
		}
		n.nextIdx[org] = pos
	}
	for sent := 0; n.nextIdx[org] < limit && sent < n.Params.RedeliverBatch; sent++ {
		b := n.chain[n.nextIdx[org]]
		redelivery := n.nextIdx[org] < n.highWater[org]
		_ = src.Send(wire.NodeID(target), &wire.DeliverBlock{Block: b})
		n.nextIdx[org]++
		if n.nextIdx[org] > n.highWater[org] {
			n.highWater[org] = n.nextIdx[org]
			now := n.Engine.Now()
			if last := n.lastDeliverAt[org]; last >= 0 {
				if gap := now - last; gap > n.maxDeliverGap[org] {
					n.maxDeliverGap[org] = gap
				}
			}
			n.lastDeliverAt[org] = now
		}
		if n.onDeliver != nil {
			n.onDeliver(org, target, b, redelivery)
		}
	}
}
