package harness

import (
	"strings"
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/wire"
)

func quickParams(v Variant, seed int64) Params {
	return QuickScale(DefaultParams(v, seed), 40, 30)
}

func TestBuildChainLinkageAndSize(t *testing.T) {
	blocks := BuildChain(5, 50, 3000, 1)
	var prev *ledger.Block
	for _, b := range blocks {
		if err := b.VerifyLinkage(prev); err != nil {
			t.Fatalf("linkage: %v", err)
		}
		prev = b
	}
	// The paper's workload: 50 tx of ~3.2 KB -> ~160 KB blocks.
	size := wire.BlockEncodedSize(blocks[0])
	if size < 150_000 || size > 180_000 {
		t.Fatalf("block size = %d, want ≈160 KB", size)
	}
	// Deterministic from the seed.
	again := BuildChain(5, 50, 3000, 1)
	if again[4].Hash() != blocks[4].Hash() {
		t.Fatal("chain not deterministic")
	}
	if BuildChain(5, 50, 3000, 2)[4].Hash() == blocks[4].Hash() {
		t.Fatal("different seeds produced identical chains")
	}
}

func TestRunDisseminationReachesAllPeers(t *testing.T) {
	for _, v := range []Variant{VariantOriginal, VariantEnhanced} {
		v := v
		t.Run(string(v), func(t *testing.T) {
			res, err := RunDissemination(quickParams(v, 3))
			if err != nil {
				t.Fatal(err)
			}
			if res.WallBlocks != res.Params.NumBlocks {
				t.Fatalf("%d of %d blocks fully disseminated", res.WallBlocks, res.Params.NumBlocks)
			}
			// n-1 non-leader peers x blocks observations.
			want := (res.Params.NumPeers - 1) * res.Params.NumBlocks
			if res.Latencies.Count() != want {
				t.Fatalf("recorded %d latencies, want %d", res.Latencies.Count(), want)
			}
		})
	}
}

func TestEnhancedTailBeatsOriginal(t *testing.T) {
	orig, err := RunDissemination(quickParams(VariantOriginal, 5))
	if err != nil {
		t.Fatal(err)
	}
	enh, err := RunDissemination(quickParams(VariantEnhanced, 5))
	if err != nil {
		t.Fatal(err)
	}
	oTail := orig.Latencies.All().Quantile(0.999)
	eTail := enh.Latencies.All().Quantile(0.999)
	// Paper: >10x faster to reach all peers. At reduced scale we demand
	// at least 5x on the p99.9 tail.
	if oTail < 5*eTail {
		t.Fatalf("tail speedup only %.1fx (orig %v, enh %v)", float64(oTail)/float64(eTail), oTail, eTail)
	}
	// Enhanced reaches everything within the push phase: worst case well
	// under the original's pull period.
	if max := enh.Latencies.All().Max(); max > time.Second {
		t.Fatalf("enhanced worst case %v, want < 1s", max)
	}
}

func TestEnhancedBandwidthLowerThanOriginal(t *testing.T) {
	orig, err := RunDissemination(quickParams(VariantOriginal, 7))
	if err != nil {
		t.Fatal(err)
	}
	enh, err := RunDissemination(quickParams(VariantEnhanced, 7))
	if err != nil {
		t.Fatal(err)
	}
	gen := int(time.Duration(orig.Params.NumBlocks)*orig.Params.BlockInterval/orig.Params.Bucket) + 1
	o := orig.Traffic.NodeAverage(orig.RegularID, gen)
	e := enh.Traffic.NodeAverage(enh.RegularID, gen)
	if e >= o {
		t.Fatalf("enhanced regular-peer bandwidth %.3f MB/s not below original %.3f MB/s", e, o)
	}
	// Body transmissions: infect-and-die sends ~reach*fout per block;
	// enhanced sends ~n + o(n).
	oBodies := float64(orig.BodyTransmissions) / float64(orig.Params.NumBlocks)
	eBodies := float64(enh.BodyTransmissions) / float64(enh.Params.NumBlocks)
	if eBodies >= oBodies {
		t.Fatalf("enhanced bodies/block %.1f not below original %.1f", eBodies, oBodies)
	}
}

func TestFig10LeaderCarriesFoutTimesTraffic(t *testing.T) {
	p := QuickScale(Fig10Params(9), 40, 30)
	res, err := RunDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	gen := int(time.Duration(p.NumBlocks)*p.BlockInterval/p.Bucket) + 1
	leader := res.Traffic.NodeAverage(res.LeaderID, gen)
	regular := res.Traffic.NodeAverage(res.RegularID, gen)
	// Paper Figure 10: with fleaderout = fout the leader's bandwidth is
	// much higher than a regular peer's.
	if leader < regular*1.25 {
		t.Fatalf("leader %.3f MB/s vs regular %.3f MB/s: ablation effect missing", leader, regular)
	}

	// The claim is relative: delegation (fleaderout = 1) must shrink the
	// leader's share of traffic compared to the fig10 ablation.
	pDef := quickParams(VariantEnhanced, 9)
	resDef, err := RunDissemination(pDef)
	if err != nil {
		t.Fatal(err)
	}
	leaderDef := resDef.Traffic.NodeAverage(resDef.LeaderID, gen)
	regularDef := resDef.Traffic.NodeAverage(resDef.RegularID, gen)
	ratioAblation := leader / regular
	ratioDefault := leaderDef / regularDef
	if ratioDefault >= ratioAblation {
		t.Fatalf("delegation did not reduce the leader's traffic share: default %.2f vs ablation %.2f",
			ratioDefault, ratioAblation)
	}
}

func TestFig11DisablingDigestsBlowsUpTraffic(t *testing.T) {
	with := quickParams(VariantEnhanced, 11)
	without := QuickScale(Fig11Params(11), 40, 30)
	rWith, err := RunDissemination(with)
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := RunDissemination(without)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 11: pushing bodies on every hop multiplies traffic
	// (8 MB/s vs ~0.6 MB/s at full scale).
	bWith := float64(rWith.BodyTransmissions) / float64(with.NumBlocks)
	bWithout := float64(rWithout.BodyTransmissions) / float64(without.NumBlocks)
	if bWithout < 3*bWith {
		t.Fatalf("no-digest bodies/block %.1f vs digest %.1f: blow-up missing", bWithout, bWith)
	}
}

func TestRunDisseminationDeterminism(t *testing.T) {
	p := quickParams(VariantEnhanced, 13)
	a, err := RunDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Traffic.TotalBytes() != b.Traffic.TotalBytes() {
		t.Fatal("traffic differs across identical runs")
	}
	if a.Latencies.All().Max() != b.Latencies.All().Max() {
		t.Fatal("latencies differ across identical runs")
	}
}

func TestConflictExperimentEnhancedWins(t *testing.T) {
	mk := func(v Variant) ConflictParams {
		p := DefaultConflictParams(v, time.Second, 22)
		p.NumPeers = 30
		p.Keys = 30
		p.Rounds = 10
		return p
	}
	orig, err := RunConflictExperiment(mk(VariantOriginal))
	if err != nil {
		t.Fatal(err)
	}
	enh, err := RunConflictExperiment(mk(VariantEnhanced))
	if err != nil {
		t.Fatal(err)
	}
	// Accounting cross-check: ledger counters vs peer commit results.
	if orig.Conflicts != orig.PeerReportedConflicts || enh.Conflicts != enh.PeerReportedConflicts {
		t.Fatalf("accounting mismatch: %+v / %+v", orig, enh)
	}
	if enh.Conflicts >= orig.Conflicts {
		t.Fatalf("enhanced conflicts %d not below original %d", enh.Conflicts, orig.Conflicts)
	}
	if orig.TotalTx != 300 || enh.TotalTx != 300 {
		t.Fatalf("workload size wrong: %d / %d", orig.TotalTx, enh.TotalTx)
	}
}

func TestReportsRender(t *testing.T) {
	res, err := RunDissemination(quickParams(VariantEnhanced, 19))
	if err != nil {
		t.Fatal(err)
	}
	peerRep, err := PeerLatencyReport("fig7", "t", res)
	if err != nil {
		t.Fatal(err)
	}
	blockRep, err := BlockLatencyReport("fig8", "t", res)
	if err != nil {
		t.Fatal(err)
	}
	bwRep := BandwidthReport("fig9", "t", res)
	for _, rep := range []Report{peerRep, blockRep, bwRep} {
		s := rep.String()
		if !strings.Contains(s, rep.ID) || len(rep.Lines) < 5 {
			t.Fatalf("report %s renders badly:\n%s", rep.ID, s)
		}
	}
	an := AnalyticsReport(1)
	if !strings.Contains(an.String(), "TTL") {
		t.Fatal("analytics report missing TTL content")
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := RunExperiment("fig99", 1, true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"analytics", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestRunExperimentQuickAllDisseminationKinds(t *testing.T) {
	for _, id := range []string{"fig4", "fig8", "fig9", "analytics"} {
		rep, err := RunExperiment(id, 1, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id {
			t.Fatalf("report id %s, want %s", rep.ID, id)
		}
	}
}

func TestConflictExperimentOverRaftOrdering(t *testing.T) {
	p := DefaultConflictParams(VariantEnhanced, time.Second, 23)
	p.NumPeers = 20
	p.Keys = 20
	p.Rounds = 5
	p.RaftOrderers = 3
	res, err := RunConflictExperiment(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTx != 100 {
		t.Fatalf("workload = %d txs", res.TotalTx)
	}
	// All transactions reached the ledger through the Raft-ordered
	// stream: valid + conflicted accounts for every submission (the
	// occasional at-least-once duplicate would only add conflicts).
	if res.Conflicts != res.PeerReportedConflicts {
		t.Fatalf("accounting mismatch: %+v", res)
	}
	if res.Blocks == 0 {
		t.Fatal("no blocks cut through Raft")
	}
	if res.Conflicts < 0 || res.Conflicts > res.TotalTx/2 {
		t.Fatalf("implausible conflicts: %d", res.Conflicts)
	}
}

// TestConflictAccountingCrossCheckDeterministic is the focused end-to-end
// pipeline check: at small scale, the experiment's ledger-side conflict
// count must equal what the endorsing peer's commit results report
// (Conflicts == PeerReportedConflicts), conflicts must actually occur (the
// tight keyspace guarantees MVCC collisions), and the whole experiment
// must replay identically for the same seed.
func TestConflictAccountingCrossCheckDeterministic(t *testing.T) {
	mk := func() ConflictParams {
		p := DefaultConflictParams(VariantEnhanced, time.Second, 7)
		p.NumPeers = 12
		p.Keys = 8
		p.Rounds = 6
		return p
	}
	a, err := RunConflictExperiment(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Conflicts != a.PeerReportedConflicts {
		t.Fatalf("ledger counted %d conflicts, peer commit results %d",
			a.Conflicts, a.PeerReportedConflicts)
	}
	if a.Conflicts == 0 {
		t.Fatal("tight keyspace produced no conflicts; the cross-check is vacuous")
	}
	b, err := RunConflictExperiment(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Conflicts != b.Conflicts || a.TotalTx != b.TotalTx ||
		a.MeanTxPerBlock != b.MeanTxPerBlock || a.Blocks != b.Blocks {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
