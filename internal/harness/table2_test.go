package harness

import (
	"math"
	"testing"
	"time"
)

// TestValidationSeconds pins the Table II "validation" column arithmetic:
// 12.5 tx/block at 50 ms each is 0.625 s. The old code converted the float
// mean to a time.Duration first (truncating 12.5 tx to 12 ns) and then
// multiplied two Durations, yielding nonsense.
func TestValidationSeconds(t *testing.T) {
	got := validationSeconds(12.5, 50*time.Millisecond)
	if math.Abs(got-0.625) > 1e-12 {
		t.Fatalf("validationSeconds(12.5, 50ms) = %v, want 0.625", got)
	}
	if got := validationSeconds(0, 50*time.Millisecond); got != 0 {
		t.Fatalf("validationSeconds(0, 50ms) = %v, want 0", got)
	}
}

// TestTable2AccAverages pins that every Table II column is averaged across
// seeds rather than keeping only the last seed's value.
func TestTable2AccAverages(t *testing.T) {
	params := ConflictParams{ValidationPerTx: 50 * time.Millisecond}
	var acc table2Acc
	acc.add(
		&ConflictResult{Params: params, Conflicts: 100, MeanTxPerBlock: 10},
		&ConflictResult{Params: params, Conflicts: 40},
	)
	acc.add(
		&ConflictResult{Params: params, Conflicts: 200, MeanTxPerBlock: 15},
		&ConflictResult{Params: params, Conflicts: 80},
	)
	row := acc.row()
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("TxPerBlock", row.TxPerBlock, 12.5)
	approx("ValidationSec", row.ValidationSec, (10*0.05+15*0.05)/2)
	approx("Original", row.Original, 150)
	approx("Enhanced", row.Enhanced, 60)
	approx("DiffPct", row.DiffPct, 100*(60.0-150.0)/150.0)

	if empty := (&table2Acc{}).row(); empty != (Table2Row{}) {
		t.Errorf("empty accumulator row = %+v, want zero", empty)
	}
}
