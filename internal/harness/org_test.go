package harness

import (
	"testing"
	"time"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/wire"
)

func orgFixture(t *testing.T, n int) *Org {
	t.Helper()
	p := QuickScale(DefaultParams(VariantEnhanced, 13), n, 4)
	org, err := NewOrg(p, WithGossipTune(func(self wire.NodeID, cfg *gossip.Config) {
		cfg.AliveInterval = time.Second
		cfg.AliveExpiration = 3 * time.Second
		cfg.AliveFanout = n - 1 // broadcast: fast-converging views for the test
		cfg.StateInfoInterval = time.Second
		cfg.RecoveryInterval = 2 * time.Second
	}))
	if err != nil {
		t.Fatal(err)
	}
	org.StartAll()
	return org
}

func livesees(c *gossip.Core, id wire.NodeID) bool {
	for _, p := range c.LivePeers() {
		if p == id {
			return true
		}
	}
	return false
}

// A peer that restarts after a long uptime must be detected as live again
// within a few heartbeat intervals: its fresh core's Alive sequences start
// above the previous incarnation's, so survivors do not discard them as
// replays.
func TestRestartedPeerRejoinsMembershipPromptly(t *testing.T) {
	org := orgFixture(t, 6)
	e := org.Engine
	// Long uptime: the old incarnation racks up ~60 heartbeat sequences.
	e.RunUntil(60 * time.Second)
	if !livesees(org.Cores[3], 5) {
		t.Fatal("peer 5 not live before the crash")
	}
	org.Crash(5)
	e.RunUntil(70 * time.Second)
	if livesees(org.Cores[3], 5) {
		t.Fatal("crashed peer still in the live view")
	}
	org.Restart(5)
	// Within a few alive intervals — not another 60 s — the rejoin shows.
	e.RunUntil(75 * time.Second)
	if !livesees(org.Cores[3], 5) {
		t.Fatal("restarted peer not re-detected within a few heartbeats")
	}
}

// The ordering service delivers to a peer it can reach: with the elected
// leader on the far side of a partition, delivery goes to the orderer-side
// leader instead of silently vanishing into the cut.
func TestDeliverBlockRespectsPartition(t *testing.T) {
	org := orgFixture(t, 6)
	// Crash peers 0-2; the elected leader is now peer 3.
	for i := 0; i < 3; i++ {
		org.Crash(i)
	}
	if org.Leader() != 3 {
		t.Fatalf("leader = %d, want 3", org.Leader())
	}
	// Partition the orderer with {0, 1, 4, 5}; peers 2-3 are cut off.
	org.Net.Partition(
		[]wire.NodeID{0, 1, 4, 5, org.Orderer.ID()},
		[]wire.NodeID{2, 3},
	)
	b := BuildChain(1, 2, 64, 1)[0]
	if got := org.DeliverBlock(b); got != 4 {
		t.Fatalf("delivered to peer %d, want 4 (lowest live peer the orderer reaches)", got)
	}
	org.Engine.RunFor(time.Second)
	if org.Cores[4].Height() != 1 {
		t.Fatal("reachable peer never received the block")
	}
	// Cut off entirely: the block is reported dropped.
	org.Net.Partition([]wire.NodeID{org.Orderer.ID()}, []wire.NodeID{0, 1, 2, 3, 4, 5})
	if got := org.DeliverBlock(b); got != -1 {
		t.Fatalf("delivery into a total cut targeted peer %d, want -1", got)
	}
}

func TestCrashRestartLifecycle(t *testing.T) {
	org := orgFixture(t, 4)
	if org.LiveCount() != 4 || org.Crashed(2) {
		t.Fatal("fresh org in wrong state")
	}
	org.Crash(2)
	org.Crash(2) // idempotent
	if org.LiveCount() != 3 || !org.Crashed(2) {
		t.Fatal("crash not reflected")
	}
	old := org.Cores[2]
	fresh := org.Restart(2)
	if fresh == old {
		t.Fatal("restart did not build a fresh core")
	}
	if org.Restart(2) != fresh {
		t.Fatal("restart of a live peer must be a no-op")
	}
	if org.LiveCount() != 4 {
		t.Fatal("restart not reflected in live count")
	}
}
