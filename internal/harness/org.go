package harness

import (
	"fmt"

	"fabricgossip/internal/gossip"
	"fabricgossip/internal/gossip/enhanced"
	"fabricgossip/internal/gossip/original"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Org is a simulated organization: one gossip core per peer over a
// simulated network, plus an ordering-service endpoint that delivers cut
// blocks to the organization's leader peer. It is the shared substrate of
// the dissemination experiments (RunDissemination) and the fault-scenario
// runner (internal/scenario), which crashes, restarts and partitions its
// peers mid-run.
type Org struct {
	Params  Params
	Engine  *sim.Engine
	Net     *transport.SimNetwork
	Traffic *netmodel.Traffic
	Peers   []wire.NodeID
	Cores   []*gossip.Core
	Orderer *transport.SimEndpoint

	tune    func(self wire.NodeID, cfg *gossip.Config)
	onCore  func(i int, c *gossip.Core)
	eps     []*transport.SimEndpoint
	crashed []bool
}

// OrgOption tweaks organization construction.
type OrgOption func(*Org)

// WithGossipTune adjusts each peer's shared gossip configuration (timer
// intervals, fanouts) before the core is built. It also applies to the
// fresh core a Restart creates.
func WithGossipTune(f func(self wire.NodeID, cfg *gossip.Config)) OrgOption {
	return func(o *Org) { o.tune = f }
}

// WithCoreHook installs f to run for every core before it starts — at
// construction and again for each core recreated by Restart — so
// measurement hooks (OnFirstReception, OnCommit, OnPeerStateChange) survive
// peer churn.
func WithCoreHook(f func(i int, c *gossip.Core)) OrgOption {
	return func(o *Org) { o.onCore = f }
}

// NewOrg builds (but does not start) an organization of p.NumPeers peers
// over the calibrated LAN model. Peer ids are 0..NumPeers-1; the orderer
// endpoint is the last node so ids match the historical layout of
// RunDissemination.
func NewOrg(p Params, opts ...OrgOption) (*Org, error) {
	if p.NumPeers < 2 {
		return nil, fmt.Errorf("harness: need at least 2 peers, got %d", p.NumPeers)
	}
	if p.Variant != VariantOriginal && p.Variant != VariantEnhanced {
		return nil, fmt.Errorf("harness: unknown variant %q", p.Variant)
	}
	o := &Org{
		Params:  p,
		Engine:  sim.NewEngine(p.Seed),
		crashed: make([]bool, p.NumPeers),
	}
	for _, opt := range opts {
		opt(o)
	}
	o.Traffic = netmodel.NewSimTraffic(p.Bucket)
	o.Net = transport.NewSimNetwork(o.Engine, netmodel.LAN(), o.Traffic)
	o.Peers = make([]wire.NodeID, p.NumPeers)
	for i := range o.Peers {
		o.Peers[i] = wire.NodeID(i)
	}
	o.Cores = make([]*gossip.Core, p.NumPeers)
	o.eps = make([]*transport.SimEndpoint, p.NumPeers)
	for i := 0; i < p.NumPeers; i++ {
		o.eps[i] = o.Net.AddNode()
		o.Cores[i] = o.buildCore(i)
	}
	o.Orderer = o.Net.AddNode()
	return o, nil
}

// buildCore constructs a fresh core (and protocol instance) for peer i on
// its existing endpoint and runs the core hook.
func (o *Org) buildCore(i int) *gossip.Core {
	ep := o.eps[i]
	cfg := gossip.DefaultConfig(ep.ID(), o.Peers)
	if o.tune != nil {
		o.tune(ep.ID(), &cfg)
	}
	core := gossip.New(cfg, ep, o.Engine, o.Engine.Rand("gossip"), o.newProtocol())
	if o.onCore != nil {
		o.onCore(i, core)
	}
	return core
}

func (o *Org) newProtocol() gossip.Protocol {
	switch o.Params.Variant {
	case VariantOriginal:
		return original.New(o.Params.Original)
	default:
		return enhanced.New(o.Params.Enhanced)
	}
}

// StartAll starts every peer's core.
func (o *Org) StartAll() {
	for _, c := range o.Cores {
		c.Start()
	}
}

// StopAll stops every non-crashed peer's core.
func (o *Org) StopAll() {
	for i, c := range o.Cores {
		if !o.crashed[i] {
			c.Stop()
		}
	}
}

// Crash fails peer i: its core stops (all timers cancelled, messages
// ignored) and the network silences its endpoint. No-op if already crashed.
func (o *Org) Crash(i int) {
	if o.crashed[i] {
		return
	}
	o.crashed[i] = true
	o.Cores[i].Stop()
	o.Net.SetNodeDown(wire.NodeID(i), true)
}

// Restart revives a crashed peer with a fresh core and empty block store —
// the rejoin-with-catchup path: the peer must learn the current height from
// state info and close the gap through the recovery component. The new core
// is started and returned. No-op (returning the current core) if the peer
// is not crashed.
func (o *Org) Restart(i int) *gossip.Core {
	if !o.crashed[i] {
		return o.Cores[i]
	}
	o.crashed[i] = false
	o.Net.SetNodeDown(wire.NodeID(i), false)
	core := o.buildCore(i)
	o.Cores[i] = core
	core.Start()
	return core
}

// Crashed reports whether peer i is currently crashed.
func (o *Org) Crashed(i int) bool { return o.crashed[i] }

// LiveCount returns the number of non-crashed peers.
func (o *Org) LiveCount() int {
	n := 0
	for _, down := range o.crashed {
		if !down {
			n++
		}
	}
	return n
}

// Leader returns the index of the lowest-id non-crashed peer (the
// convergence point of Fabric's dynamic leader election, matching
// membership.View.Leader). Returns -1 if every peer is crashed.
func (o *Org) Leader() int {
	for i, down := range o.crashed {
		if !down {
			return i
		}
	}
	return -1
}

// DeliverBlock sends b from the ordering service to the lowest-id live
// peer the orderer can currently reach — a partition can leave the elected
// leader on the far side, in which case the orderer feeds the leader of
// its own side, exactly as a real ordering service keeps serving whichever
// peers still hold a connection. Reports the index it targeted, or -1 if
// no live peer is reachable (the block is dropped).
func (o *Org) DeliverBlock(b *ledger.Block) int {
	for i, down := range o.crashed {
		if !down && o.Net.Reachable(o.Orderer.ID(), wire.NodeID(i)) {
			_ = o.Orderer.Send(wire.NodeID(i), &wire.DeliverBlock{Block: b})
			return i
		}
	}
	return -1
}
