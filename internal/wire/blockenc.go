package wire

import (
	"sync"

	"fabricgossip/internal/ledger"
)

// encodeBlock writes the full canonical encoding of a block.
func encodeBlock(s sink, b *ledger.Block) {
	s.uvarint(b.Num)
	putDigest(s, b.PrevHash)
	putDigest(s, b.DataHash)
	putBytes(s, b.Sig)
	s.uvarint(uint64(len(b.Txs)))
	for _, tx := range b.Txs {
		encodeTx(s, tx)
	}
}

func encodeTx(s sink, tx *ledger.Transaction) {
	putDigest(s, tx.ID)
	putString(s, tx.Client)
	putString(s, tx.Chaincode)
	s.uvarint(uint64(len(tx.RWSet.Reads)))
	for _, r := range tx.RWSet.Reads {
		putString(s, r.Key)
		s.uvarint(r.Version.BlockNum)
		s.uvarint(uint64(r.Version.TxNum))
	}
	s.uvarint(uint64(len(tx.RWSet.Writes)))
	for _, w := range tx.RWSet.Writes {
		putString(s, w.Key)
		putBytes(s, w.Value)
	}
	s.uvarint(uint64(len(tx.Endorsements)))
	for _, e := range tx.Endorsements {
		putString(s, e.Org)
		putString(s, e.Name)
		putBytes(s, e.Sig)
	}
	putBytes(s, tx.Payload)
}

func decodeBlock(d *decoder) *ledger.Block {
	b := &ledger.Block{}
	b.Num = d.uvarint("block num")
	b.PrevHash = d.digest("prev hash")
	b.DataHash = d.digest("data hash")
	b.Sig = d.bytesField("block sig")
	n := d.uvarint("tx count")
	if d.err != nil {
		return b
	}
	if n > uint64(len(d.buf)) {
		d.fail("tx count")
		return b
	}
	b.Txs = make([]*ledger.Transaction, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		b.Txs = append(b.Txs, decodeTx(d))
	}
	return b
}

func decodeTx(d *decoder) *ledger.Transaction {
	tx := &ledger.Transaction{}
	tx.ID = d.digest("tx id")
	tx.Client = d.str("client")
	tx.Chaincode = d.str("chaincode")
	nr := d.uvarint("read count")
	if d.err != nil {
		return tx
	}
	if nr > uint64(len(d.buf)) {
		d.fail("read count")
		return tx
	}
	for i := uint64(0); i < nr && d.err == nil; i++ {
		r := ledger.KVRead{Key: d.str("read key")}
		r.Version.BlockNum = d.uvarint("read block")
		r.Version.TxNum = uint32(d.uvarint("read tx"))
		tx.RWSet.Reads = append(tx.RWSet.Reads, r)
	}
	nw := d.uvarint("write count")
	if d.err != nil {
		return tx
	}
	if nw > uint64(len(d.buf)) {
		d.fail("write count")
		return tx
	}
	for i := uint64(0); i < nw && d.err == nil; i++ {
		w := ledger.KVWrite{Key: d.str("write key")}
		w.Value = d.bytesField("write value")
		tx.RWSet.Writes = append(tx.RWSet.Writes, w)
	}
	ne := d.uvarint("endorsement count")
	if d.err != nil {
		return tx
	}
	if ne > uint64(len(d.buf)) {
		d.fail("endorsement count")
		return tx
	}
	for i := uint64(0); i < ne && d.err == nil; i++ {
		e := ledger.Endorsement{Org: d.str("endorser org"), Name: d.str("endorser name")}
		e.Sig = d.bytesField("endorsement sig")
		tx.Endorsements = append(tx.Endorsements, e)
	}
	tx.Payload = d.bytesField("payload")
	return tx
}

// blockSizes caches the encoded size of blocks. Blocks are immutable once
// emitted by the ordering service, and the same block is transmitted
// hundreds of times per experiment, so the cache removes the dominant
// sizing cost from the simulation's hot path.
var blockSizes sync.Map // *ledger.Block -> int

// BlockEncodedSize returns the exact encoded length of b, cached.
func BlockEncodedSize(b *ledger.Block) int {
	if v, ok := blockSizes.Load(b); ok {
		return v.(int)
	}
	c := &countSink{}
	encodeBlock(c, b)
	blockSizes.Store(b, c.n)
	return c.n
}

// blockEncs caches each block's full canonical encoding, blockSizes-style:
// one buffer per block process-wide, shared by every frozen batch that
// covers the block. Concurrent first encodes from different shards race
// benignly — both produce identical bytes and either Store wins.
var blockEncs sync.Map // *ledger.Block -> []byte

// blockEncoding returns b's canonical encoding, cached. Callers must treat
// the returned slice as immutable.
func blockEncoding(b *ledger.Block) []byte {
	if v, ok := blockEncs.Load(b); ok {
		return v.([]byte)
	}
	s := &bufSink{buf: make([]byte, 0, BlockEncodedSize(b))}
	encodeBlock(s, b)
	blockEncs.Store(b, s.buf)
	return s.buf
}
