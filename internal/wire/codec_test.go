package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fabricgossip/internal/crypto"
	"fabricgossip/internal/ledger"
)

func testBlock(num uint64, txs int) *ledger.Block {
	rng := rand.New(rand.NewSource(int64(num) + 1))
	b := &ledger.Block{Num: num}
	for i := 0; i < txs; i++ {
		payload := make([]byte, rng.Intn(200))
		for j := range payload {
			payload[j] = byte(rng.Intn(256))
		}
		rw := ledger.RWSet{
			Reads: []ledger.KVRead{
				{Key: "key-a", Version: ledger.Version{BlockNum: num, TxNum: uint32(i)}},
				{Key: "key-b"},
			},
			Writes: []ledger.KVWrite{
				{Key: "key-a", Value: []byte{1, 2, 3}},
			},
		}
		tx := &ledger.Transaction{
			ID:        ledger.ProposalDigest("client", "cc", rw, payload),
			Client:    "client",
			Chaincode: "cc",
			RWSet:     rw,
			Endorsements: []ledger.Endorsement{
				{Org: "orgA", Name: "peer0", Sig: crypto.Signature{9, 9, 9}},
			},
			Payload: payload,
		}
		b.Txs = append(b.Txs, tx)
	}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	b.PrevHash = crypto.Hash([]byte("prev"))
	b.Sig = crypto.Signature{4, 5, 6}
	return b
}

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	blk := testBlock(7, 3)
	return []Message{
		&Data{Block: blk, Counter: 5},
		&PushDigest{Offers: []BlockOffer{{Num: 1, Counter: 2}, {Num: 900, Counter: 0}}},
		&PushRequest{Nums: []uint64{1, 2, 3}},
		&PullHello{Nonce: 42},
		&PullDigest{Nonce: 42, Nums: []uint64{10, 11, 12}},
		&PullRequest{Nonce: 42, Nums: []uint64{11}},
		&PullData{Nonce: 42, Block: blk},
		&StateInfo{Height: 123456},
		&StateRequest{From: 10, To: 20},
		&StateResponse{Batch: NewBlockBatch([]*ledger.Block{testBlock(1, 2), testBlock(2, 1)})},
		&Alive{Seq: 9, Meta: []byte("peer0@orgA")},
		&RaftVoteRequest{Term: 3, Candidate: 2, LastLogIndex: 99, LastLogTerm: 2},
		&RaftVoteResponse{Term: 3, Granted: true},
		&RaftAppend{
			Term: 4, Leader: 1, PrevLogIndex: 10, PrevLogTerm: 3,
			Entries:      []RaftEntry{{Term: 4, Data: []byte("tx1")}, {Term: 4, Data: nil}},
			LeaderCommit: 9,
		},
		&RaftAppendResponse{Term: 4, Success: false, MatchIndex: 7},
		&RaftForward{Data: []byte("payload")},
		&SubmitTx{Tx: blk.Txs[0]},
		&DeliverBlock{Block: blk},
		&MemberEvents{Events: []MemberEvent{
			{Peer: 3, Seq: 17, Kind: EventAlive},
			{Peer: 900, Seq: 1 << 40, Kind: EventSuspect},
			{Peer: 0, Seq: 0, Kind: EventDead},
		}},
		&ShuffleRequest{Entries: []MemberEvent{{Peer: 1, Seq: 5, Kind: EventAlive}}},
		&ShuffleResponse{Entries: []MemberEvent{{Peer: 2, Seq: 6, Kind: EventSuspect}}},
	}
}

func TestAllMessageTypesCovered(t *testing.T) {
	seen := map[MsgType]bool{}
	for _, m := range allMessages() {
		seen[m.Type()] = true
	}
	for ty := MsgType(1); ty < maxMsgType; ty++ {
		if !seen[ty] {
			t.Errorf("message type %v has no test instance", ty)
		}
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range allMessages() {
		m := m
		t.Run(m.Type().String(), func(t *testing.T) {
			data := Marshal(m)
			got, err := Unmarshal(data)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, m)
			}
		})
	}
}

func TestRoundTripByteEquality(t *testing.T) {
	for _, m := range allMessages() {
		data := Marshal(m)
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		data2 := Marshal(got)
		if string(data) != string(data2) {
			t.Fatalf("%v: re-marshal differs (%d vs %d bytes)", m.Type(), len(data), len(data2))
		}
	}
}

func TestEncodedSizeMatchesMarshalledLength(t *testing.T) {
	for _, m := range allMessages() {
		if got, want := m.EncodedSize(), len(Marshal(m)); got != want {
			t.Errorf("%v: EncodedSize = %d, len(Marshal) = %d", m.Type(), got, want)
		}
	}
}

func TestBlockEncodedSizeIsCachedAndExact(t *testing.T) {
	b := testBlock(99, 5)
	s1 := BlockEncodedSize(b)
	s2 := BlockEncodedSize(b)
	if s1 != s2 {
		t.Fatalf("cache returned different sizes: %d vs %d", s1, s2)
	}
	m := &Data{Block: b}
	if len(Marshal(m)) != m.EncodedSize() {
		t.Fatal("block size cache disagrees with marshal")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Unmarshal([]byte{255}); err == nil {
		t.Error("unknown type accepted")
	}
	// Truncations of every valid encoding must fail, never panic.
	for _, m := range allMessages() {
		data := Marshal(m)
		for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
			if cut >= len(data) {
				continue
			}
			if _, err := Unmarshal(data[:cut]); err == nil {
				t.Errorf("%v truncated to %d bytes accepted", m.Type(), cut)
			}
		}
	}
	// Trailing garbage must fail.
	data := append(Marshal(&PullHello{Nonce: 1}), 0xEE)
	if _, err := Unmarshal(data); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUvarintLen(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 127: 1, 128: 2, 16383: 2, 16384: 3, 1 << 62: 9}
	for v, want := range cases {
		if got := uvarintLen(v); got != want {
			t.Errorf("uvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
}

// Property: any Alive message round-trips and sizes exactly, for arbitrary
// metadata bytes.
func TestPropertyAliveRoundTrip(t *testing.T) {
	f := func(seq uint64, meta []byte) bool {
		m := &Alive{Seq: seq, Meta: meta}
		data := Marshal(m)
		if len(data) != m.EncodedSize() {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		ga := got.(*Alive)
		return ga.Seq == seq && string(ga.Meta) == string(meta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: push digests with arbitrary offer lists round-trip exactly.
func TestPropertyPushDigestRoundTrip(t *testing.T) {
	f := func(nums []uint64, counters []uint32) bool {
		n := len(nums)
		if len(counters) < n {
			n = len(counters)
		}
		m := &PushDigest{}
		for i := 0; i < n; i++ {
			m.Offers = append(m.Offers, BlockOffer{Num: nums[i], Counter: counters[i]})
		}
		data := Marshal(m)
		if len(data) != m.EncodedSize() {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		gd := got.(*PushDigest)
		if len(gd.Offers) != len(m.Offers) {
			return false
		}
		for i := range m.Offers {
			if gd.Offers[i] != m.Offers[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mutations of encoded bytes either decode to some message
// or fail cleanly — never panic.
func TestPropertyFuzzNoPanic(t *testing.T) {
	msgs := allMessages()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		m := msgs[rng.Intn(len(msgs))]
		data := Marshal(m)
		mutated := make([]byte, len(data))
		copy(mutated, data)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		_, _ = Unmarshal(mutated) // must not panic
	}
}

func TestBlockRoundTripPreservesHashesAndLinkage(t *testing.T) {
	prev := testBlock(0, 2)
	b := testBlock(1, 4)
	b.PrevHash = prev.Hash()
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	got, err := Unmarshal(Marshal(&Data{Block: b, Counter: 1}))
	if err != nil {
		t.Fatal(err)
	}
	rb := got.(*Data).Block
	if rb.Hash() != b.Hash() {
		t.Fatal("block hash changed across encoding")
	}
	if err := rb.VerifyLinkage(prev); err != nil {
		t.Fatalf("decoded block fails linkage: %v", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypeData.String() != "Data" || TypeRaftAppend.String() != "RaftAppend" {
		t.Error("known type names wrong")
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Error("unknown type name wrong")
	}
}

func TestNodeIDString(t *testing.T) {
	if NodeID(7).String() != "n7" {
		t.Errorf("NodeID(7) = %q", NodeID(7).String())
	}
}
