package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal fuzzes the wire codec's decode path: any input must either
// fail with an error or produce a message whose re-encoding is canonical —
// never panic. The corpus seeds from every message type (including a
// paper-shaped 50-tx block, the marshal benchmarks' workload) plus
// adversarial prefixes.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Marshal(m))
	}
	// The benchmark corpus: one full-size Data block message, truncated at
	// interesting points.
	big := Marshal(&Data{Block: testBlock(7, 50), Counter: 3})
	f.Add(big)
	f.Add(big[:len(big)/2])
	f.Add(big[:1])
	f.Add([]byte{})
	f.Add([]byte{0})                             // reserved type 0
	f.Add([]byte{byte(maxMsgType)})              // just past the last type
	f.Add([]byte{byte(TypeStateResponse), 0xff}) // absurd block count
	f.Add(bytes.Repeat([]byte{0x80}, 32))        // unterminated varint

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			if m != nil && err == nil {
				t.Fatal("unreachable")
			}
			return // corrupt input rejected, as required
		}
		// Accepted input: the decoded message must re-encode to a stable
		// canonical form whose length EncodedSize predicts exactly.
		out := Marshal(m)
		if got := m.EncodedSize(); got != len(out) {
			t.Fatalf("EncodedSize = %d, Marshal produced %d bytes", got, len(out))
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decoding canonical bytes failed: %v", err)
		}
		out2 := Marshal(m2)
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical form unstable:\n%x\n%x", out, out2)
		}
	})
}
