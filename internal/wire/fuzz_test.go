package wire

import (
	"bytes"
	"testing"

	"fabricgossip/internal/ledger"
)

// FuzzUnmarshal fuzzes the wire codec's decode path: any input must either
// fail with an error or produce a message whose re-encoding is canonical —
// never panic. The corpus seeds from every message type (including a
// paper-shaped 50-tx block, the marshal benchmarks' workload) plus
// adversarial prefixes.
func FuzzUnmarshal(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(Marshal(m))
	}
	// The benchmark corpus: one full-size Data block message, truncated at
	// interesting points.
	big := Marshal(&Data{Block: testBlock(7, 50), Counter: 3})
	f.Add(big)
	f.Add(big[:len(big)/2])
	f.Add(big[:1])
	f.Add([]byte{})
	f.Add([]byte{0})                             // reserved type 0
	f.Add([]byte{byte(maxMsgType)})              // just past the last type
	f.Add([]byte{byte(TypeStateResponse), 0xff}) // absurd block count
	f.Add(bytes.Repeat([]byte{0x80}, 32))        // unterminated varint

	// The StateResponse batch framing, frozen and corrupted: a frozen batch
	// must marshal to exactly the bytes a fresh encode produces, and every
	// truncation or count/payload mismatch must be rejected, not panic.
	frozen := Marshal(&StateResponse{Batch: NewBlockBatch(
		[]*ledger.Block{testBlock(3, 2), testBlock(4, 1)}).Freeze()})
	f.Add(frozen)
	f.Add(frozen[:len(frozen)-3])                    // truncated mid-batch
	f.Add(frozen[:2])                                // count only, no bodies
	f.Add([]byte{byte(TypeStateResponse)})           // missing count entirely
	f.Add([]byte{byte(TypeStateResponse), 7, 0})     // count promises absent blocks
	f.Add(append(append([]byte{}, frozen...), 0xAA)) // trailing garbage after batch

	// Membership payload framing: truncated event lists and count/payload
	// mismatches must be rejected cleanly.
	events := Marshal(&MemberEvents{Events: []MemberEvent{
		{Peer: 3, Seq: 1 << 33, Kind: EventAlive},
		{Peer: 7, Seq: 2, Kind: EventDead},
	}})
	f.Add(events)
	f.Add(events[:len(events)-1])                  // truncated mid-entry
	f.Add([]byte{byte(TypeMemberEvents), 5})       // count promises absent entries
	f.Add([]byte{byte(TypeShuffleRequest), 0xff})  // absurd entry count
	f.Add([]byte{byte(TypeShuffleResponse), 1, 0}) // entry cut after peer id

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			if m != nil && err == nil {
				t.Fatal("unreachable")
			}
			return // corrupt input rejected, as required
		}
		// Accepted input: the decoded message must re-encode to a stable
		// canonical form whose length EncodedSize predicts exactly.
		out := Marshal(m)
		if got := m.EncodedSize(); got != len(out) {
			t.Fatalf("EncodedSize = %d, Marshal produced %d bytes", got, len(out))
		}
		m2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decoding canonical bytes failed: %v", err)
		}
		out2 := Marshal(m2)
		if !bytes.Equal(out, out2) {
			t.Fatalf("canonical form unstable:\n%x\n%x", out, out2)
		}
	})
}
