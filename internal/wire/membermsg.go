package wire

// Membership dissemination payloads (SWIM-style piggybacking and view
// shuffling, internal/membership). All three carry flat lists of
// MemberEvent entries; the encodings are frozen — see the byte-identity
// tests — and EncodedSize is hand-computed because membership payloads ride
// on the allocation-free simulated send path (the generic counting sink
// escapes to the heap through the sink interface).

// MemberEventKind discriminates membership event entries. Values start at 1;
// 0 is reserved as invalid. Unknown kinds round-trip through the codec
// untouched (the membership layer ignores them), so old nodes stay
// forward-compatible with new event kinds.
type MemberEventKind uint8

// Membership event kinds.
const (
	// EventAlive asserts the peer was alive at heartbeat sequence Seq
	// (joins, periodic refreshes, and refutations of suspicion).
	EventAlive MemberEventKind = iota + 1
	// EventSuspect reports that the peer's heartbeats lapsed at the sender:
	// the peer is suspected dead at sequence Seq unless refuted by a
	// fresher EventAlive.
	EventSuspect
	// EventDead declares the peer dead: its suspicion timeout expired
	// without refutation. Only an EventAlive with a strictly higher
	// sequence (a restarted incarnation) reverses it.
	EventDead
)

// MemberEvent is one membership rumor or view entry: peer Peer was in state
// Kind as of its heartbeat sequence Seq. The sequence doubles as the
// incarnation number SWIM uses to order conflicting claims: alive at seq s
// refutes suspicion at any s' <= s, and a dead declaration at s yields only
// to alive at a strictly higher sequence.
type MemberEvent struct {
	Peer NodeID
	Seq  uint64
	Kind MemberEventKind
}

// memberEventsSize returns the encoded length of a count-prefixed event
// list, without the message type byte.
func memberEventsSize(evs []MemberEvent) int {
	n := uvarintLen(uint64(len(evs)))
	for _, e := range evs {
		n += uvarintLen(uint64(e.Peer)) + uvarintLen(e.Seq) + 1
	}
	return n
}

func putMemberEvents(s sink, evs []MemberEvent) {
	s.uvarint(uint64(len(evs)))
	for _, e := range evs {
		s.uvarint(uint64(e.Peer))
		s.uvarint(e.Seq)
		s.byte(byte(e.Kind))
	}
}

func decodeMemberEventList(d *decoder, what string) []MemberEvent {
	n := d.uvarint(what + " count")
	if d.err != nil {
		return nil
	}
	// Sanity bound before pre-allocating: each entry is at least 3 bytes
	// (peer varint + seq varint + kind byte), so an honest count never
	// exceeds a third of the remaining buffer.
	if remaining := len(d.buf) - d.off; n > uint64(remaining)/3 {
		d.fail(what + " count")
		return nil
	}
	out := make([]MemberEvent, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		e := MemberEvent{Peer: NodeID(d.uvarint(what + " peer"))}
		e.Seq = d.uvarint(what + " seq")
		e.Kind = MemberEventKind(d.byte())
		out = append(out, e)
	}
	return out
}

// MemberEvents is the piggyback payload: a bounded digest of recent
// membership rumors riding on the destination of an ordinary gossip message,
// so membership knowledge spreads epidemically on existing traffic instead
// of only via direct heartbeats. Each rumor is retransmitted a budgeted
// number of times (internal/membership) — the payload itself is stateless.
type MemberEvents struct {
	Events []MemberEvent
}

// Type implements Message.
func (*MemberEvents) Type() MsgType { return TypeMemberEvents }

// EncodedSize implements Message. Hand-computed: piggyback payloads are
// sized on every simulated send.
func (m *MemberEvents) EncodedSize() int { return 1 + memberEventsSize(m.Events) }

func (m *MemberEvents) encode(s sink) { putMemberEvents(s, m.Events) }

func decodeMemberEvents(d *decoder) *MemberEvents {
	return &MemberEvents{Events: decodeMemberEventList(d, "member event")}
}

// ShuffleRequest opens a view-shuffle exchange: a random sample of the
// sender's membership view (each entry the peer's state and freshest known
// heartbeat sequence). The receiver merges the sample and answers with a
// ShuffleResponse carrying its own, so isolated corners of a large
// organization converge pairwise even when direct heartbeats are a sparse
// sample.
type ShuffleRequest struct {
	Entries []MemberEvent
}

// Type implements Message.
func (*ShuffleRequest) Type() MsgType { return TypeShuffleRequest }

// EncodedSize implements Message. Hand-computed like MemberEvents.
func (m *ShuffleRequest) EncodedSize() int { return 1 + memberEventsSize(m.Entries) }

func (m *ShuffleRequest) encode(s sink) { putMemberEvents(s, m.Entries) }

func decodeShuffleRequest(d *decoder) *ShuffleRequest {
	return &ShuffleRequest{Entries: decodeMemberEventList(d, "shuffle entry")}
}

// ShuffleResponse answers a ShuffleRequest with the responder's own view
// sample.
type ShuffleResponse struct {
	Entries []MemberEvent
}

// Type implements Message.
func (*ShuffleResponse) Type() MsgType { return TypeShuffleResponse }

// EncodedSize implements Message. Hand-computed like MemberEvents.
func (m *ShuffleResponse) EncodedSize() int { return 1 + memberEventsSize(m.Entries) }

func (m *ShuffleResponse) encode(s sink) { putMemberEvents(s, m.Entries) }

func decodeShuffleResponse(d *decoder) *ShuffleResponse {
	return &ShuffleResponse{Entries: decodeMemberEventList(d, "shuffle entry")}
}
