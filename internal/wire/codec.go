// Package wire defines every protocol message exchanged by gossip, ordering
// and consensus nodes, together with a compact self-describing binary codec.
//
// Two properties matter for the reproduction:
//
//   - EncodedSize must equal len(Marshal(m)) exactly, because the simulated
//     transport accounts bandwidth and store-and-forward transmission time
//     from EncodedSize without serializing (serializing every one of the
//     ~300k block transmissions of an experiment would dominate run time).
//   - Marshal/Unmarshal must round-trip exactly, because the TCP transport
//     ships real bytes.
//
// Both properties are enforced by property-based tests.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"fabricgossip/internal/crypto"
)

// NodeID identifies a node (peer or orderer) within a deployment. IDs are
// dense indexes assigned at network construction.
type NodeID uint32

// String formats the id.
func (id NodeID) String() string { return fmt.Sprintf("n%d", uint32(id)) }

// MsgType discriminates message encodings.
type MsgType uint8

// Message type tags. Values start at 1; 0 is reserved as invalid.
const (
	TypeData MsgType = iota + 1
	TypePushDigest
	TypePushRequest
	TypePullHello
	TypePullDigest
	TypePullRequest
	TypePullData
	TypeStateInfo
	TypeStateRequest
	TypeStateResponse
	TypeAlive
	TypeRaftVoteRequest
	TypeRaftVoteResponse
	TypeRaftAppend
	TypeRaftAppendResponse
	TypeRaftForward
	TypeSubmitTx
	TypeDeliverBlock
	TypeMemberEvents
	TypeShuffleRequest
	TypeShuffleResponse

	maxMsgType // sentinel, keep last
)

// NumMsgTypes is one past the highest valid MsgType: arrays of size
// NumMsgTypes indexed directly by MsgType cover every tag (index 0, the
// reserved invalid tag, stays unused). Dense per-type accounting (see
// netmodel.Traffic) relies on it instead of maps.
const NumMsgTypes = int(maxMsgType)

// String returns the message type name.
func (t MsgType) String() string {
	names := [...]string{
		TypeData:               "Data",
		TypePushDigest:         "PushDigest",
		TypePushRequest:        "PushRequest",
		TypePullHello:          "PullHello",
		TypePullDigest:         "PullDigest",
		TypePullRequest:        "PullRequest",
		TypePullData:           "PullData",
		TypeStateInfo:          "StateInfo",
		TypeStateRequest:       "StateRequest",
		TypeStateResponse:      "StateResponse",
		TypeAlive:              "Alive",
		TypeRaftVoteRequest:    "RaftVoteRequest",
		TypeRaftVoteResponse:   "RaftVoteResponse",
		TypeRaftAppend:         "RaftAppend",
		TypeRaftAppendResponse: "RaftAppendResponse",
		TypeRaftForward:        "RaftForward",
		TypeSubmitTx:           "SubmitTx",
		TypeDeliverBlock:       "DeliverBlock",
		TypeMemberEvents:       "MemberEvents",
		TypeShuffleRequest:     "ShuffleRequest",
		TypeShuffleResponse:    "ShuffleResponse",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is the interface all wire messages implement.
type Message interface {
	// Type returns the message's type tag.
	Type() MsgType
	// EncodedSize returns the exact length of Marshal(m) in bytes.
	EncodedSize() int
	// encode writes the message body (everything after the type byte).
	encode(s sink)
}

// Marshal encodes m as a type byte followed by the body.
func Marshal(m Message) []byte {
	b := &bufSink{buf: make([]byte, 0, m.EncodedSize())}
	b.byte(byte(m.Type()))
	m.encode(b)
	return b.buf
}

// Decode errors.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrUnknownType = errors.New("wire: unknown message type")
)

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(data []byte) (Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	t := MsgType(data[0])
	d := &decoder{buf: data, off: 1}
	var m Message
	switch t {
	case TypeData:
		m = decodeData(d)
	case TypePushDigest:
		m = decodePushDigest(d)
	case TypePushRequest:
		m = decodePushRequest(d)
	case TypePullHello:
		m = decodePullHello(d)
	case TypePullDigest:
		m = decodePullDigest(d)
	case TypePullRequest:
		m = decodePullRequest(d)
	case TypePullData:
		m = decodePullData(d)
	case TypeStateInfo:
		m = decodeStateInfo(d)
	case TypeStateRequest:
		m = decodeStateRequest(d)
	case TypeStateResponse:
		m = decodeStateResponse(d)
	case TypeAlive:
		m = decodeAlive(d)
	case TypeRaftVoteRequest:
		m = decodeRaftVoteRequest(d)
	case TypeRaftVoteResponse:
		m = decodeRaftVoteResponse(d)
	case TypeRaftAppend:
		m = decodeRaftAppend(d)
	case TypeRaftAppendResponse:
		m = decodeRaftAppendResponse(d)
	case TypeRaftForward:
		m = decodeRaftForward(d)
	case TypeSubmitTx:
		m = decodeSubmitTx(d)
	case TypeDeliverBlock:
		m = decodeDeliverBlock(d)
	case TypeMemberEvents:
		m = decodeMemberEvents(d)
	case TypeShuffleRequest:
		m = decodeShuffleRequest(d)
	case TypeShuffleResponse:
		m = decodeShuffleResponse(d)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(data)-d.off, t)
	}
	return m, nil
}

// sink abstracts "write bytes" vs "count bytes" so EncodedSize shares the
// field-walking logic with Marshal.
type sink interface {
	byte(b byte)
	bytes(b []byte)
	uvarint(v uint64)
}

type bufSink struct{ buf []byte }

func (s *bufSink) byte(b byte)      { s.buf = append(s.buf, b) }
func (s *bufSink) bytes(b []byte)   { s.buf = append(s.buf, b...) }
func (s *bufSink) uvarint(v uint64) { s.buf = binary.AppendUvarint(s.buf, v) }

type countSink struct{ n int }

func (s *countSink) byte(byte)      { s.n++ }
func (s *countSink) bytes(b []byte) { s.n += len(b) }
func (s *countSink) uvarint(v uint64) {
	s.n += uvarintLen(v)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// encodedSize runs m.encode against a counting sink, plus the type byte.
func encodedSize(m Message) int {
	c := &countSink{n: 1}
	m.encode(c)
	return c.n
}

// Shared field helpers.

func putString(s sink, v string) {
	s.uvarint(uint64(len(v)))
	s.bytes([]byte(v))
}

func putBytes(s sink, v []byte) {
	s.uvarint(uint64(len(v)))
	s.bytes(v)
}

func putDigest(s sink, d crypto.Digest) { s.bytes(d[:]) }

func putUint64s(s sink, vs []uint64) {
	s.uvarint(uint64(len(vs)))
	for _, v := range vs {
		s.uvarint(v)
	}
}

func putBool(s sink, v bool) {
	if v {
		s.byte(1)
	} else {
		s.byte(0)
	}
}

// decoder reads fields, latching the first error.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d", ErrTruncated, what, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) str(what string) string {
	n := d.uvarint(what + " length")
	return string(d.take(int(n), what))
}

func (d *decoder) bytesField(what string) []byte {
	n := d.uvarint(what + " length")
	b := d.take(int(n), what)
	if len(b) == 0 {
		return nil // canonical form: empty and nil encode identically
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *decoder) digest(what string) crypto.Digest {
	var dg crypto.Digest
	b := d.take(len(dg), what)
	if b != nil {
		copy(dg[:], b)
	}
	return dg
}

func (d *decoder) uint64s(what string) []uint64 {
	n := d.uvarint(what + " count")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) { // cheap sanity bound: each element is >= 1 byte
		d.fail(what)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.uvarint(what)
	}
	return out
}

func (d *decoder) bool(what string) bool { return d.byte() != 0 }
