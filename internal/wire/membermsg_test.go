package wire

import (
	"encoding/hex"
	"testing"
	"testing/quick"
)

// TestMemberPayloadEncodingsFrozen locks the membership payload encodings
// byte for byte: the simulated transport accounts bandwidth from these
// exact sizes and the TCP runtime ships these exact bytes, so any codec
// change that moves a single byte must show up here as a deliberate,
// reviewed freeze break — not as silent drift.
func TestMemberPayloadEncodingsFrozen(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		hex  string
	}{
		{
			name: "MemberEvents empty",
			msg:  &MemberEvents{},
			// type 19, count 0
			hex: "1300",
		},
		{
			name: "MemberEvents",
			msg: &MemberEvents{Events: []MemberEvent{
				{Peer: 3, Seq: 17, Kind: EventAlive},
				{Peer: 300, Seq: 128, Kind: EventSuspect},
				{Peer: 0, Seq: 0, Kind: EventDead},
			}},
			// type 19, count 3, then (peer, seq, kind) per event with
			// uvarint peer/seq: 03 11 01 | ac02 8001 02 | 00 00 03
			hex: "1303031101ac02800102000003",
		},
		{
			name: "ShuffleRequest",
			msg:  &ShuffleRequest{Entries: []MemberEvent{{Peer: 1, Seq: 5, Kind: EventAlive}}},
			// type 20, count 1, peer 1, seq 5, kind 1
			hex: "1401010501",
		},
		{
			name: "ShuffleResponse",
			msg:  &ShuffleResponse{Entries: []MemberEvent{{Peer: 2, Seq: 6, Kind: EventSuspect}}},
			// type 21, count 1, peer 2, seq 6, kind 2
			hex: "1501020602",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Marshal(c.msg)
			if hex.EncodeToString(got) != c.hex {
				t.Fatalf("encoding drifted:\n got  %s\n want %s", hex.EncodeToString(got), c.hex)
			}
			if c.msg.EncodedSize() != len(got) {
				t.Fatalf("EncodedSize = %d, Marshal produced %d bytes", c.msg.EncodedSize(), len(got))
			}
		})
	}
}

// Property: membership payloads with arbitrary event lists round-trip
// exactly and EncodedSize matches the marshalled length (the hand-computed
// size must agree with the real encoder for any peer/seq/kind combination).
func TestPropertyMemberEventsRoundTrip(t *testing.T) {
	f := func(peers []uint32, seqs []uint64, kinds []uint8) bool {
		n := len(peers)
		if len(seqs) < n {
			n = len(seqs)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		m := &MemberEvents{}
		for i := 0; i < n; i++ {
			m.Events = append(m.Events, MemberEvent{
				Peer: NodeID(peers[i]), Seq: seqs[i], Kind: MemberEventKind(kinds[i]),
			})
		}
		data := Marshal(m)
		if len(data) != m.EncodedSize() {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		ge := got.(*MemberEvents)
		if len(ge.Events) != len(m.Events) {
			return false
		}
		for i := range m.Events {
			if ge.Events[i] != m.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffle payloads share the event-list framing; request and
// response with identical entries must differ only in the type byte.
func TestPropertyShufflePayloadFraming(t *testing.T) {
	f := func(peers []uint32, seq uint64) bool {
		entries := make([]MemberEvent, 0, len(peers))
		for _, p := range peers {
			entries = append(entries, MemberEvent{Peer: NodeID(p), Seq: seq, Kind: EventAlive})
		}
		req := Marshal(&ShuffleRequest{Entries: entries})
		resp := Marshal(&ShuffleResponse{Entries: entries})
		if len(req) != len(resp) {
			return false
		}
		if req[0] != byte(TypeShuffleRequest) || resp[0] != byte(TypeShuffleResponse) {
			return false
		}
		return string(req[1:]) == string(resp[1:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
