package wire

import (
	"fabricgossip/internal/ledger"
)

// --- Block dissemination (push phase) ---

// Data carries a full block during the push phase. Counter implements the
// paper's infect-upon-contagion hop counter: it is 0 for the copy leaving
// the ordering service and increments at every forwarding hop. The original
// Fabric protocol ignores the counter.
type Data struct {
	Block   *ledger.Block
	Counter uint32

	// pool/refs tie the envelope to a DataPool free list on the simulated
	// hot path. Unexported and never encoded; literal-built messages leave
	// pool nil and Release is a no-op.
	pool *DataPool
	refs int32
}

// Release implements Releasable: the envelope returns to its pool when the
// last outstanding delivery terminates.
func (m *Data) Release() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs == 0 {
		m.pool.put(m)
	} else if m.refs < 0 {
		panic("wire: Data released more times than its reference count")
	}
}

// Type implements Message.
func (*Data) Type() MsgType { return TypeData }

// EncodedSize implements Message.
func (m *Data) EncodedSize() int {
	// type byte + counter varint + cached block size
	return 1 + uvarintLen(uint64(m.Counter)) + BlockEncodedSize(m.Block)
}

func (m *Data) encode(s sink) {
	s.uvarint(uint64(m.Counter))
	encodeBlock(s, m.Block)
}

func decodeData(d *decoder) *Data {
	m := &Data{}
	m.Counter = uint32(d.uvarint("counter"))
	m.Block = decodeBlock(d)
	return m
}

// BlockOffer is one entry of a push digest: "I can give you block Num; it
// is Counter hops into its epidemic".
type BlockOffer struct {
	Num     uint64
	Counter uint32
}

// PushDigest offers blocks by number instead of pushing their bodies
// (enhanced protocol, "digests for the push phase"). Receivers answer with
// a PushRequest for the bodies they lack.
type PushDigest struct {
	Offers []BlockOffer

	// pool/refs: see Data. Unexported, never encoded.
	pool *PushDigestPool
	refs int32
}

// Release implements Releasable (see Data.Release).
func (m *PushDigest) Release() {
	if m.pool == nil {
		return
	}
	m.refs--
	if m.refs == 0 {
		m.pool.put(m)
	} else if m.refs < 0 {
		panic("wire: PushDigest released more times than its reference count")
	}
}

// Type implements Message.
func (*PushDigest) Type() MsgType { return TypePushDigest }

// EncodedSize implements Message.
func (m *PushDigest) EncodedSize() int { return encodedSize(m) }

func (m *PushDigest) encode(s sink) {
	s.uvarint(uint64(len(m.Offers)))
	for _, o := range m.Offers {
		s.uvarint(o.Num)
		s.uvarint(uint64(o.Counter))
	}
}

func decodePushDigest(d *decoder) *PushDigest {
	m := &PushDigest{}
	n := d.uvarint("offer count")
	if d.err != nil {
		return m
	}
	if n > uint64(len(d.buf)) {
		d.fail("offer count")
		return m
	}
	m.Offers = make([]BlockOffer, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		o := BlockOffer{Num: d.uvarint("offer num")}
		o.Counter = uint32(d.uvarint("offer counter"))
		m.Offers = append(m.Offers, o)
	}
	return m
}

// PushRequest asks the sender of a PushDigest for the listed block bodies.
type PushRequest struct {
	Nums []uint64
}

// Type implements Message.
func (*PushRequest) Type() MsgType { return TypePushRequest }

// EncodedSize implements Message.
func (m *PushRequest) EncodedSize() int { return encodedSize(m) }

func (m *PushRequest) encode(s sink) { putUint64s(s, m.Nums) }

func decodePushRequest(d *decoder) *PushRequest {
	return &PushRequest{Nums: d.uint64s("request nums")}
}

// --- Pull component (original Fabric gossip) ---

// PullHello opens a pull round with a random peer (Fabric's pull mediator
// Hello). Nonce correlates the round's four messages.
type PullHello struct {
	Nonce uint64
}

// Type implements Message.
func (*PullHello) Type() MsgType { return TypePullHello }

// EncodedSize implements Message.
func (m *PullHello) EncodedSize() int { return encodedSize(m) }

func (m *PullHello) encode(s sink) { s.uvarint(m.Nonce) }

func decodePullHello(d *decoder) *PullHello {
	return &PullHello{Nonce: d.uvarint("nonce")}
}

// PullDigest answers a PullHello with the numbers of recently held blocks.
type PullDigest struct {
	Nonce uint64
	Nums  []uint64
}

// Type implements Message.
func (*PullDigest) Type() MsgType { return TypePullDigest }

// EncodedSize implements Message.
func (m *PullDigest) EncodedSize() int { return encodedSize(m) }

func (m *PullDigest) encode(s sink) {
	s.uvarint(m.Nonce)
	putUint64s(s, m.Nums)
}

func decodePullDigest(d *decoder) *PullDigest {
	m := &PullDigest{Nonce: d.uvarint("nonce")}
	m.Nums = d.uint64s("digest nums")
	return m
}

// PullRequest asks for the block bodies the puller is missing.
type PullRequest struct {
	Nonce uint64
	Nums  []uint64
}

// Type implements Message.
func (*PullRequest) Type() MsgType { return TypePullRequest }

// EncodedSize implements Message.
func (m *PullRequest) EncodedSize() int { return encodedSize(m) }

func (m *PullRequest) encode(s sink) {
	s.uvarint(m.Nonce)
	putUint64s(s, m.Nums)
}

func decodePullRequest(d *decoder) *PullRequest {
	m := &PullRequest{Nonce: d.uvarint("nonce")}
	m.Nums = d.uint64s("request nums")
	return m
}

// PullData returns one block body in response to a PullRequest. Blocks
// received through pull do not re-enter the push phase (paper §III-A), which
// is why pull data is a distinct type from Data.
type PullData struct {
	Nonce uint64
	Block *ledger.Block
}

// Type implements Message.
func (*PullData) Type() MsgType { return TypePullData }

// EncodedSize implements Message.
func (m *PullData) EncodedSize() int {
	return 1 + uvarintLen(m.Nonce) + BlockEncodedSize(m.Block)
}

func (m *PullData) encode(s sink) {
	s.uvarint(m.Nonce)
	encodeBlock(s, m.Block)
}

func decodePullData(d *decoder) *PullData {
	m := &PullData{Nonce: d.uvarint("nonce")}
	m.Block = decodeBlock(d)
	return m
}

// --- State metadata and recovery (anti-entropy) ---

// StateInfo advertises the sender's ledger height. Peers gossip it
// periodically; the recovery component uses it to detect that it is behind
// (paper §III-A, "recovery").
type StateInfo struct {
	Height uint64
}

// Type implements Message.
func (*StateInfo) Type() MsgType { return TypeStateInfo }

// EncodedSize implements Message. Hand-computed: the generic counting sink
// escapes to the heap through the sink interface, and state metadata sits
// on the allocation-free recovery hot path.
func (m *StateInfo) EncodedSize() int { return 1 + uvarintLen(m.Height) }

func (m *StateInfo) encode(s sink) { s.uvarint(m.Height) }

func decodeStateInfo(d *decoder) *StateInfo {
	return &StateInfo{Height: d.uvarint("height")}
}

// StateRequest asks a peer with a higher ledger for the consecutive blocks
// [From, To).
type StateRequest struct {
	From uint64
	To   uint64
}

// Type implements Message.
func (*StateRequest) Type() MsgType { return TypeStateRequest }

// EncodedSize implements Message. Hand-computed for the same reason as
// StateInfo: requests are sized on every recovery round trip.
func (m *StateRequest) EncodedSize() int {
	return 1 + uvarintLen(m.From) + uvarintLen(m.To)
}

func (m *StateRequest) encode(s sink) {
	s.uvarint(m.From)
	s.uvarint(m.To)
}

func decodeStateRequest(d *decoder) *StateRequest {
	m := &StateRequest{From: d.uvarint("from")}
	m.To = d.uvarint("to")
	return m
}

// BlockBatch is the payload of a StateResponse: an immutable run of
// consecutive blocks together with (optionally) its cached encoding — the
// length-prefixed batch framing, a uvarint block count followed by the
// concatenated canonical block bodies. Blocks are immutable once cut, so a
// serving peer freezes the batch once and every later transmission of the
// same range reuses the cached bytes: the simulated transport sizes the
// message from the cached length and the TCP transport appends the bytes
// with one copy, with no per-request re-walk of the block trees.
type BlockBatch struct {
	Blocks []*ledger.Block

	// encs holds each block's cached canonical encoding, nil until Freeze.
	// The byte slices come from the process-wide per-block cache and are
	// shared by every batch (and every serving peer) that covers the same
	// block — a batch owns only this slice of pointers, never a flat copy
	// of the bodies. At the 100k tier, per-provider flat copies were the
	// largest single term of the peak heap.
	encs [][]byte
}

// NewBlockBatch wraps blocks in an unfrozen batch.
func NewBlockBatch(blocks []*ledger.Block) *BlockBatch {
	return &BlockBatch{Blocks: blocks}
}

// Freeze caches the batch's encoding so subsequent transmissions reuse it.
// It is idempotent and returns the batch for chaining. The batch must not
// be mutated after freezing.
func (bb *BlockBatch) Freeze() *BlockBatch {
	if bb.encs == nil {
		bb.encs = make([][]byte, len(bb.Blocks))
		for i, b := range bb.Blocks {
			bb.encs[i] = blockEncoding(b)
		}
	}
	return bb
}

// Frozen reports whether the batch's encoding is cached.
func (bb *BlockBatch) Frozen() bool { return bb.encs != nil }

// encodedLen returns the batch framing's length in bytes without encoding:
// from the cache when frozen, otherwise from the per-block size cache.
func (bb *BlockBatch) encodedLen() int {
	n := uvarintLen(uint64(len(bb.Blocks)))
	if bb.encs != nil {
		for _, e := range bb.encs {
			n += len(e)
		}
		return n
	}
	for _, b := range bb.Blocks {
		n += BlockEncodedSize(b)
	}
	return n
}

// encodeTo writes the batch framing: the frozen bytes verbatim, or a fresh
// walk of the block trees when unfrozen. Both produce identical bytes.
func (bb *BlockBatch) encodeTo(s sink) {
	s.uvarint(uint64(len(bb.Blocks)))
	if bb.encs != nil {
		for _, e := range bb.encs {
			s.bytes(e)
		}
		return
	}
	for _, b := range bb.Blocks {
		encodeBlock(s, b)
	}
}

// StateResponse returns a batch of consecutive blocks for recovery. The
// batch representation lets serving peers answer repeated requests for the
// same range from a frozen encoding (see BlockBatch).
type StateResponse struct {
	Batch *BlockBatch
}

// Blocks returns the batch's blocks (nil-safe).
func (m *StateResponse) Blocks() []*ledger.Block {
	if m.Batch == nil {
		return nil
	}
	return m.Batch.Blocks
}

// Type implements Message.
func (*StateResponse) Type() MsgType { return TypeStateResponse }

// EncodedSize implements Message.
func (m *StateResponse) EncodedSize() int {
	if m.Batch == nil {
		return 1 + uvarintLen(0)
	}
	return 1 + m.Batch.encodedLen()
}

func (m *StateResponse) encode(s sink) {
	if m.Batch == nil {
		s.uvarint(0)
		return
	}
	m.Batch.encodeTo(s)
}

func decodeStateResponse(d *decoder) *StateResponse {
	m := &StateResponse{Batch: &BlockBatch{}}
	n := d.uvarint("block count")
	if d.err != nil {
		return m
	}
	if n > uint64(len(d.buf)) {
		d.fail("block count")
		return m
	}
	m.Batch.Blocks = make([]*ledger.Block, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Batch.Blocks = append(m.Batch.Blocks, decodeBlock(d))
	}
	return m
}

// Alive is the periodic membership heartbeat. Together with StateInfo it
// forms the idle background traffic visible in the paper's bandwidth plots.
type Alive struct {
	Seq uint64
	// Meta pads the heartbeat to a realistic size (identity, endpoint,
	// signature material in Fabric's AliveMessage).
	Meta []byte
}

// Type implements Message.
func (*Alive) Type() MsgType { return TypeAlive }

// EncodedSize implements Message.
func (m *Alive) EncodedSize() int { return encodedSize(m) }

func (m *Alive) encode(s sink) {
	s.uvarint(m.Seq)
	putBytes(s, m.Meta)
}

func decodeAlive(d *decoder) *Alive {
	m := &Alive{Seq: d.uvarint("seq")}
	m.Meta = d.bytesField("meta")
	return m
}

// --- Client to ordering service ---

// SubmitTx carries an endorsed transaction proposal from a client (via a
// peer) to the ordering service.
type SubmitTx struct {
	Tx *ledger.Transaction
}

// Type implements Message.
func (*SubmitTx) Type() MsgType { return TypeSubmitTx }

// EncodedSize implements Message.
func (m *SubmitTx) EncodedSize() int { return encodedSize(m) }

func (m *SubmitTx) encode(s sink) { encodeTx(s, m.Tx) }

func decodeSubmitTx(d *decoder) *SubmitTx {
	return &SubmitTx{Tx: decodeTx(d)}
}

// DeliverBlock carries a freshly ordered block from the ordering service to
// an organization's leader peer.
type DeliverBlock struct {
	Block *ledger.Block
}

// Type implements Message.
func (*DeliverBlock) Type() MsgType { return TypeDeliverBlock }

// EncodedSize implements Message.
func (m *DeliverBlock) EncodedSize() int { return 1 + BlockEncodedSize(m.Block) }

func (m *DeliverBlock) encode(s sink) { encodeBlock(s, m.Block) }

func decodeDeliverBlock(d *decoder) *DeliverBlock {
	return &DeliverBlock{Block: decodeBlock(d)}
}
