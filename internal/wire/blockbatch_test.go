package wire

import (
	"bytes"
	"testing"

	"fabricgossip/internal/ledger"
)

// A frozen batch must be a pure transmission-cost optimization: identical
// bytes, identical EncodedSize, before and after Freeze.
func TestBlockBatchFreezeIsByteIdentical(t *testing.T) {
	blocks := []*ledger.Block{testBlock(1, 3), testBlock(2, 2), testBlock(3, 1)}
	cold := &StateResponse{Batch: NewBlockBatch(blocks)}
	coldBytes := Marshal(cold)
	if got := cold.EncodedSize(); got != len(coldBytes) {
		t.Fatalf("unfrozen EncodedSize = %d, Marshal produced %d bytes", got, len(coldBytes))
	}

	hot := &StateResponse{Batch: NewBlockBatch(blocks).Freeze()}
	hotBytes := Marshal(hot)
	if !bytes.Equal(coldBytes, hotBytes) {
		t.Fatal("frozen batch marshals differently from unfrozen")
	}
	if got := hot.EncodedSize(); got != len(hotBytes) {
		t.Fatalf("frozen EncodedSize = %d, Marshal produced %d bytes", got, len(hotBytes))
	}

	// Freeze is idempotent and Marshal does not thaw.
	hot.Batch.Freeze()
	if !bytes.Equal(Marshal(hot), coldBytes) {
		t.Fatal("double freeze changed the encoding")
	}
	if !hot.Batch.Frozen() || cold.Batch.Frozen() {
		t.Fatal("Frozen flags wrong")
	}
}

func TestStateResponseRoundTrip(t *testing.T) {
	blocks := []*ledger.Block{testBlock(5, 2), testBlock(6, 4)}
	out := Marshal(&StateResponse{Batch: NewBlockBatch(blocks).Freeze()})
	m, err := Unmarshal(out)
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := m.(*StateResponse)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	got := resp.Blocks()
	if len(got) != len(blocks) {
		t.Fatalf("decoded %d blocks, want %d", len(got), len(blocks))
	}
	for i, b := range got {
		if b.Num != blocks[i].Num || len(b.Txs) != len(blocks[i].Txs) {
			t.Fatalf("block %d decoded as num=%d txs=%d", i, b.Num, len(b.Txs))
		}
	}
	// The decoded batch re-encodes canonically whether or not re-frozen.
	if !bytes.Equal(Marshal(resp), out) {
		t.Fatal("decoded response re-encodes differently")
	}
	resp.Batch.Freeze()
	if !bytes.Equal(Marshal(resp), out) {
		t.Fatal("re-frozen decoded response re-encodes differently")
	}
}

// Corrupt batch framings must be rejected with an error, never accepted or
// panicking: count promising more blocks than present, truncation inside a
// block body, and trailing bytes after a complete batch.
func TestStateResponseCorruptInputs(t *testing.T) {
	good := Marshal(&StateResponse{Batch: NewBlockBatch(
		[]*ledger.Block{testBlock(1, 2), testBlock(2, 1)}).Freeze()})
	cases := map[string][]byte{
		"missing count":    {byte(TypeStateResponse)},
		"absurd count":     {byte(TypeStateResponse), 0xff},
		"count no bodies":  good[:2],
		"truncated body":   good[:len(good)-3],
		"trailing garbage": append(append([]byte{}, good...), 0x01),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		}
	}
}

// A nil batch and an empty batch both encode as the canonical empty
// response and decode back to zero blocks.
func TestStateResponseEmptyForms(t *testing.T) {
	for name, m := range map[string]*StateResponse{
		"nil batch":   {},
		"empty batch": {Batch: NewBlockBatch(nil)},
		"frozen nil":  {Batch: NewBlockBatch(nil).Freeze()},
	} {
		out := Marshal(m)
		if m.EncodedSize() != len(out) {
			t.Fatalf("%s: EncodedSize %d != %d", name, m.EncodedSize(), len(out))
		}
		dec, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := dec.(*StateResponse).Blocks(); len(got) != 0 {
			t.Fatalf("%s: decoded %d blocks", name, len(got))
		}
	}
}
