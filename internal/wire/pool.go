package wire

import "fabricgossip/internal/ledger"

// Releasable is implemented by pool-managed messages. The simulated
// transport releases a message once per delivery attempt — whether the
// attempt was dropped at send time, skipped at a downed receiver, or handed
// to the handler — so a sender that pre-sets the reference count to its
// fan-out gets the envelope back exactly when the last copy terminates.
//
// Messages built with plain literals have no pool and Release is a no-op,
// so the transport can release unconditionally.
type Releasable interface{ Release() }

// DataPool is a free list of Data envelopes for the enhanced push path,
// which otherwise allocates one envelope per spread round. It is
// single-goroutine (per-protocol-instance on the simulated runtime): the
// envelope never crosses an organization boundary, so every Get and Release
// happens on the owning shard's goroutine.
type DataPool struct {
	free []*Data
	// outstanding counts envelopes checked out and not yet fully released
	// — the refcount-leak canary: it must read zero once a run drains.
	outstanding int
}

// Get returns an envelope for the block with refs outstanding deliveries.
// refs must equal the number of transport sends the caller will issue, and
// must be set before the first send: a drop releases immediately, mid-loop.
func (p *DataPool) Get(b *ledger.Block, counter uint32, refs int) *Data {
	var m *Data
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		m = &Data{pool: p}
	}
	m.Block = b
	m.Counter = counter
	m.refs = int32(refs)
	p.outstanding++
	return m
}

func (p *DataPool) put(m *Data) {
	m.Block = nil // the block is retained by ledgers, not by the envelope
	p.free = append(p.free, m)
	p.outstanding--
}

// FreeLen reports the free-list size (test hook).
func (p *DataPool) FreeLen() int { return len(p.free) }

// Outstanding reports how many envelopes are checked out with unreleased
// references. A drained run must report zero; anything else is a refcount
// leak (a send issued without a matching release, or refs set too high).
func (p *DataPool) Outstanding() int { return p.outstanding }

// PushDigestPool is DataPool's counterpart for digest envelopes; recycled
// envelopes keep their Offers backing array.
type PushDigestPool struct {
	free []*PushDigest
	// outstanding mirrors DataPool.outstanding for digest envelopes.
	outstanding int
}

// Get returns an envelope with an empty Offers slice (capacity retained)
// and refs outstanding deliveries.
func (p *PushDigestPool) Get(refs int) *PushDigest {
	var m *PushDigest
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		m.Offers = m.Offers[:0]
	} else {
		m = &PushDigest{pool: p}
	}
	m.refs = int32(refs)
	p.outstanding++
	return m
}

func (p *PushDigestPool) put(m *PushDigest) {
	p.free = append(p.free, m)
	p.outstanding--
}

// FreeLen reports the free-list size (test hook).
func (p *PushDigestPool) FreeLen() int { return len(p.free) }

// Outstanding reports how many digest envelopes are checked out with
// unreleased references; zero once a run drains.
func (p *PushDigestPool) Outstanding() int { return p.outstanding }
