package wire

// Raft consensus messages (ordering-service substrate). The ordering
// service replicates opaque payloads — encoded transactions — through a
// crash-fault-tolerant Raft log (see internal/raft).

// RaftEntry is one replicated log entry.
type RaftEntry struct {
	Term uint64
	Data []byte
}

// RaftVoteRequest is Raft's RequestVote RPC.
type RaftVoteRequest struct {
	Term         uint64
	Candidate    NodeID
	LastLogIndex uint64
	LastLogTerm  uint64
}

// Type implements Message.
func (*RaftVoteRequest) Type() MsgType { return TypeRaftVoteRequest }

// EncodedSize implements Message.
func (m *RaftVoteRequest) EncodedSize() int { return encodedSize(m) }

func (m *RaftVoteRequest) encode(s sink) {
	s.uvarint(m.Term)
	s.uvarint(uint64(m.Candidate))
	s.uvarint(m.LastLogIndex)
	s.uvarint(m.LastLogTerm)
}

func decodeRaftVoteRequest(d *decoder) *RaftVoteRequest {
	m := &RaftVoteRequest{Term: d.uvarint("term")}
	m.Candidate = NodeID(d.uvarint("candidate"))
	m.LastLogIndex = d.uvarint("last log index")
	m.LastLogTerm = d.uvarint("last log term")
	return m
}

// RaftVoteResponse answers a RaftVoteRequest.
type RaftVoteResponse struct {
	Term    uint64
	Granted bool
}

// Type implements Message.
func (*RaftVoteResponse) Type() MsgType { return TypeRaftVoteResponse }

// EncodedSize implements Message.
func (m *RaftVoteResponse) EncodedSize() int { return encodedSize(m) }

func (m *RaftVoteResponse) encode(s sink) {
	s.uvarint(m.Term)
	putBool(s, m.Granted)
}

func decodeRaftVoteResponse(d *decoder) *RaftVoteResponse {
	m := &RaftVoteResponse{Term: d.uvarint("term")}
	m.Granted = d.bool("granted")
	return m
}

// RaftAppend is Raft's AppendEntries RPC (also the heartbeat when Entries
// is empty).
type RaftAppend struct {
	Term         uint64
	Leader       NodeID
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []RaftEntry
	LeaderCommit uint64
}

// Type implements Message.
func (*RaftAppend) Type() MsgType { return TypeRaftAppend }

// EncodedSize implements Message.
func (m *RaftAppend) EncodedSize() int { return encodedSize(m) }

func (m *RaftAppend) encode(s sink) {
	s.uvarint(m.Term)
	s.uvarint(uint64(m.Leader))
	s.uvarint(m.PrevLogIndex)
	s.uvarint(m.PrevLogTerm)
	s.uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		s.uvarint(e.Term)
		putBytes(s, e.Data)
	}
	s.uvarint(m.LeaderCommit)
}

func decodeRaftAppend(d *decoder) *RaftAppend {
	m := &RaftAppend{Term: d.uvarint("term")}
	m.Leader = NodeID(d.uvarint("leader"))
	m.PrevLogIndex = d.uvarint("prev log index")
	m.PrevLogTerm = d.uvarint("prev log term")
	n := d.uvarint("entry count")
	if d.err != nil {
		return m
	}
	if n > uint64(len(d.buf)) {
		d.fail("entry count")
		return m
	}
	m.Entries = make([]RaftEntry, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		e := RaftEntry{Term: d.uvarint("entry term")}
		e.Data = d.bytesField("entry data")
		m.Entries = append(m.Entries, e)
	}
	m.LeaderCommit = d.uvarint("leader commit")
	return m
}

// RaftForward carries a client payload from a non-leader ordering node to
// the current Raft leader for proposal.
type RaftForward struct {
	Data []byte
}

// Type implements Message.
func (*RaftForward) Type() MsgType { return TypeRaftForward }

// EncodedSize implements Message.
func (m *RaftForward) EncodedSize() int { return encodedSize(m) }

func (m *RaftForward) encode(s sink) { putBytes(s, m.Data) }

func decodeRaftForward(d *decoder) *RaftForward {
	return &RaftForward{Data: d.bytesField("forward data")}
}

// RaftAppendResponse answers a RaftAppend.
type RaftAppendResponse struct {
	Term    uint64
	Success bool
	// MatchIndex is the follower's highest replicated index on success;
	// on failure it hints where the leader should back up to.
	MatchIndex uint64
}

// Type implements Message.
func (*RaftAppendResponse) Type() MsgType { return TypeRaftAppendResponse }

// EncodedSize implements Message.
func (m *RaftAppendResponse) EncodedSize() int { return encodedSize(m) }

func (m *RaftAppendResponse) encode(s sink) {
	s.uvarint(m.Term)
	putBool(s, m.Success)
	s.uvarint(m.MatchIndex)
}

func decodeRaftAppendResponse(d *decoder) *RaftAppendResponse {
	m := &RaftAppendResponse{Term: d.uvarint("term")}
	m.Success = d.bool("success")
	m.MatchIndex = d.uvarint("match index")
	return m
}
