// Package workload is the deterministic transaction workload plane: it
// drives simulated client transactions through the full
// execute-order-validate pipeline (endorse → order → gossip → validate →
// commit) of a harness.Network, on the same discrete-event engine as the
// dissemination it loads. Arrival models cover open-loop fixed-rate and
// Poisson processes and a closed loop with think time; key selection is
// uniform or Zipf-skewed over a configurable keyspace; clients populate
// each organization and endorse against their own organization's endorsing
// peers; validation-time conflicts can be retried a bounded number of
// times. Everything draws from named engine streams, so installing the
// plane perturbs no pre-existing random stream and the same seed reproduces
// the same run byte for byte.
package workload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/client"
	"fabricgossip/internal/crypto"
	"fabricgossip/internal/endorse"
	"fabricgossip/internal/gossip"
	"fabricgossip/internal/harness"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/metrics"
	"fabricgossip/internal/msp"
	"fabricgossip/internal/order"
	"fabricgossip/internal/peer"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/transport"
	"fabricgossip/internal/wire"
)

// Arrival selects the workload's arrival model.
type Arrival string

const (
	// ArrivalFixed is an open loop at a fixed per-client rate.
	ArrivalFixed Arrival = "fixed"
	// ArrivalPoisson is an open loop with exponential inter-arrival times
	// at the configured mean rate per client.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalClosed is a closed loop: each client keeps one transaction in
	// flight and thinks for Think between completions.
	ArrivalClosed Arrival = "closed"
)

// Config parameterizes the workload plane.
type Config struct {
	// ClientsPerOrg is the client population of each organization
	// (default 2).
	ClientsPerOrg int
	// Rate is the per-client transaction rate in tx/s for the open-loop
	// models (default 5).
	Rate float64
	// Arrival selects the arrival model (default ArrivalFixed).
	Arrival Arrival
	// Think is the closed-loop think time between a completion and the
	// next submission (default 200 ms).
	Think time.Duration
	// AggregateClients models each organization's ClientsPerOrg clients
	// as one aggregated arrival process at ClientsPerOrg×Rate instead of
	// one timer per client: a fixed open loop becomes fixed at the summed
	// rate, and superposed Poisson processes are exactly a Poisson process
	// at the summed rate, so the offered load is the same while the timer
	// and endpoint count stay bounded — the knob that scales the open-loop
	// models to ~10⁶ modeled clients. Arrivals are attributed round-robin
	// across a small per-org endpoint set (at most aggregateEndpoints real
	// transport endpoints). Open-loop only: a closed loop is per-client
	// state by definition and cannot be aggregated.
	AggregateClients bool

	// Keys is the keyspace size clients pick from (default 64).
	Keys int
	// ZipfS, when > 1, skews key selection with a Zipf(s) distribution
	// over the keyspace — the hot-key contention knob. Zero or anything
	// <= 1 selects keys uniformly.
	ZipfS float64

	// RetryMax is how many times a transaction invalidated by an MVCC
	// conflict is re-endorsed and resubmitted (default 0: conflicted
	// transactions are not resent, as in the paper's §V-D accounting).
	RetryMax int

	// EndorsersPerOrg is how many of each organization's lowest-indexed
	// peers endorse its clients' proposals (default 1). PolicyRequired is
	// the N of the N-of-M validation policy over all endorsers (default 1).
	EndorsersPerOrg int
	PolicyRequired  int

	// ValidationPerTx is the modelled per-transaction validation cost on
	// every peer (default 2 ms — scaled down from the paper's 50 ms so
	// thousand-peer runs stay fast; Table II keeps the calibrated value).
	ValidationPerTx time.Duration
	// MaxTxPerBlock and BatchTimeout parameterize block cutting (defaults
	// 50 and 1 s). OrdererDelay is the solo consenter's commit latency
	// (default 5 ms).
	MaxTxPerBlock int
	BatchTimeout  time.Duration
	OrdererDelay  time.Duration
}

func (c Config) withDefaults() Config {
	if c.ClientsPerOrg == 0 {
		c.ClientsPerOrg = 2
	}
	if c.Rate == 0 {
		c.Rate = 5
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalFixed
	}
	if c.Think == 0 {
		c.Think = 200 * time.Millisecond
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.EndorsersPerOrg == 0 {
		c.EndorsersPerOrg = 1
	}
	if c.PolicyRequired == 0 {
		c.PolicyRequired = 1
	}
	if c.ValidationPerTx == 0 {
		c.ValidationPerTx = 2 * time.Millisecond
	}
	if c.MaxTxPerBlock == 0 {
		c.MaxTxPerBlock = 50
	}
	if c.BatchTimeout == 0 {
		c.BatchTimeout = time.Second
	}
	if c.OrdererDelay == 0 {
		c.OrdererDelay = 5 * time.Millisecond
	}
	return c
}

func (c Config) validate() error {
	switch c.Arrival {
	case ArrivalFixed, ArrivalPoisson, ArrivalClosed:
	default:
		return fmt.Errorf("workload: unknown arrival model %q", c.Arrival)
	}
	if c.Rate <= 0 {
		return errors.New("workload: rate must be positive")
	}
	if c.ZipfS != 0 && c.ZipfS <= 1 {
		return errors.New("workload: ZipfS must be > 1 (or 0 for uniform)")
	}
	if c.AggregateClients && c.Arrival == ArrivalClosed {
		return errors.New("workload: closed-loop arrivals cannot be aggregated")
	}
	return nil
}

// aggregateEndpoints bounds how many real transport endpoints an aggregated
// organization pool keeps: enough to exercise multi-endpoint attribution
// and per-client sequence numbering, few enough that a million modeled
// clients cost eight endpoints per org.
const aggregateEndpoints = 8

// pendingTx tracks one submitted transaction until its issuing
// organization resolves it (first commit of its block by any org member).
type pendingTx struct {
	client   *planeClient
	submitAt time.Duration
	retries  int
	key      string
}

// Plane is an installed workload plane over one harness.Network. Install
// wires it; Start and Stop bound the submission window; Stats snapshots
// the outcome counters.
type Plane struct {
	cfg Config
	net *harness.Network
	// service is the legacy solo ordering service; services holds one
	// replicated instance per consenter when the network runs a cluster
	// (each fed by its consenter's identical Raft apply stream, so all
	// cut identical blocks). Exactly one of the two is populated. Both run
	// on the network's ordering engine — the ordering shard's under a
	// sharded network.
	service  *order.Service
	services []*order.Service
	// checkers holds one policy checker per organization. The verdict
	// cache is pure memoization over immutable transaction bytes, so
	// splitting it per org changes no behavior — it exists so each shard's
	// peers validate against shard-local state only.
	checkers []ledger.PolicyChecker

	// peers is the validation pipeline per global peer index, rebuilt on
	// restart via the network's core hook. endorsers maps an endorsing
	// peer's global index to its (equally rebuilt) endorser; endorserIdx
	// lists each organization's endorsing peers.
	peers       []*peer.Peer
	endorsers   map[int]*endorse.Endorser
	endorserIDs map[int]*msp.Identity
	signers     map[int]*crypto.Signer
	endorserIdx [][]int

	clients []*planeClient
	// pools holds one aggregated arrival process per organization when
	// Config.AggregateClients is set; empty otherwise. Pools drive the
	// same planeClients, so everything downstream of invoke (pending
	// tracking, retries, stats) is shared with the per-client mode.
	pools []*orgPool

	running bool
	// pending maps a submitted transaction's ID to its tracking record,
	// partitioned by issuing organization: clients insert and resolvers
	// delete on the same org, so under a sharded network each map is
	// touched by exactly one shard. Looked up only by key — never
	// iterated — so it cannot perturb determinism.
	pending []map[crypto.Digest]*pendingTx
	// blockTxs records each cut block's transaction IDs so a peer's
	// CommitResult (block number + per-index codes) can be mapped back to
	// transactions. One map per organization: blocks are cut on the
	// ordering engine but resolved on each org's, so sequentially the cut
	// writes every org's map directly, while a sharded run queues the
	// record (txSync, ordering-shard-local) and a coordinator barrier
	// fans it out while every shard is quiescent. Gossip needs at least
	// one full window to carry the block to any peer, so the fan-out
	// always lands before the first resolver reads it.
	blockTxs []map[uint64][]crypto.Digest
	txSync   []blockRecord
	// cutSeen dedupes cluster-mode cuts (every consenter replica cuts the
	// identical block; the first registers it). Ordering-engine-local.
	cutSeen map[uint64]bool
	// orgNext is the next block number each organization has yet to
	// resolve: the first member to commit it processes the outcomes,
	// later members skip.
	orgNext []uint64

	stats []orgCounters
}

// blockRecord is one cut block's transaction ids awaiting barrier fan-out.
type blockRecord struct {
	num uint64
	ids []crypto.Digest
}

// orgCounters accumulates one organization's resolution outcomes.
type orgCounters struct {
	committed int
	conflicts int
	retries   int
	latencies []time.Duration
}

// planeClient is one simulated client: an identity, its own endpoint, its
// own random stream and key sampler, driving the shared client.Client
// state machine.
type planeClient struct {
	p   *Plane
	org int
	ep  wire.NodeID
	cl  *client.Client
	// eng is the engine the client runs on — its organization's shard
	// engine under a sharded network, so arrivals and endorsement stay
	// shard-local and only the submit hop crosses to the ordering shard.
	eng      *sim.Engine
	rng      *sim.Rand
	zipf     *rand.Zipf
	inFlight bool // closed loop only
	// seq numbers the client's proposals; its encoding rides in the
	// transaction payload as Fabric's nonce would. Without it, two
	// in-flight increments of the same key by the same client against the
	// same state version would collide on the content-derived transaction
	// ID and the later one would shadow the earlier in the pending map.
	seq uint64
}

// Install wires a workload plane into a built (but not necessarily
// started) network: per-peer validation pipelines over the existing gossip
// cores, per-org endorsing peers, an ordering service behind the network's
// orderer endpoint, and per-org client populations on their own transport
// endpoints. Must be called before the network starts and before any
// restart event fires.
func Install(n *harness.Network, cfg Config) (*Plane, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := &Plane{
		cfg:         cfg,
		net:         n,
		peers:       make([]*peer.Peer, n.TotalPeers()),
		endorsers:   make(map[int]*endorse.Endorser),
		endorserIDs: make(map[int]*msp.Identity),
		signers:     make(map[int]*crypto.Signer),
		endorserIdx: make([][]int, len(n.Orgs)),
		checkers:    make([]ledger.PolicyChecker, len(n.Orgs)),
		pending:     make([]map[crypto.Digest]*pendingTx, len(n.Orgs)),
		blockTxs:    make([]map[uint64][]crypto.Digest, len(n.Orgs)),
		cutSeen:     make(map[uint64]bool),
		orgNext:     make([]uint64, len(n.Orgs)),
		stats:       make([]orgCounters, len(n.Orgs)),
	}
	for o := range n.Orgs {
		p.pending[o] = make(map[crypto.Digest]*pendingTx)
		p.blockTxs[o] = make(map[uint64][]crypto.Digest)
	}
	if se := n.Sharded(); se != nil {
		se.OnBarrier(p.syncBlockTxs)
	}

	// Identities: one MSP enrolls the orderer and every endorsing peer.
	// The id stream is private to the plane, so installing it leaves every
	// pre-existing engine stream untouched.
	idRng := rand.New(rand.NewSource(sim.StreamSeed(n.Params.Seed, "workload/msp")))
	provider, err := msp.NewProvider(idRng)
	if err != nil {
		return nil, err
	}
	ordererID, ordererSigner, err := provider.Enroll(msp.RoleOrderer, "ordererOrg", "orderer0", idRng)
	if err != nil {
		return nil, err
	}
	var policyIDs []*msp.Identity
	for o, d := range n.Orgs {
		k := cfg.EndorsersPerOrg
		if k > d.Size() {
			k = d.Size()
		}
		for j := 0; j < k; j++ {
			g := d.Lo + j
			id, signer, err := provider.Enroll(msp.RolePeer,
				fmt.Sprintf("org%d", o), fmt.Sprintf("peer%d", g), idRng)
			if err != nil {
				return nil, err
			}
			p.endorserIDs[g] = id
			p.signers[g] = signer
			p.endorserIdx[o] = append(p.endorserIdx[o], g)
			policyIDs = append(policyIDs, id)
		}
	}
	policy := endorse.NewPolicy(cfg.PolicyRequired, policyIDs...)
	// One checker per organization: the verdict cache (keyed by
	// transaction ID, bounded) is what lets an org's N peers validate the
	// same transactions without N times the Ed25519 cost.
	for o := range n.Orgs {
		p.checkers[o] = policy.Checker()
	}

	// Validation pipelines over the existing cores, and again for every
	// core a Restart rebuilds. Orderer-signature verification runs on
	// endorsing peers only (one verify per block per org instead of per
	// peer — the cost knob that keeps thousand-peer runs tractable).
	for g := range n.Cores {
		p.buildPeer(g, n.Cores[g], ordererID.Key)
	}
	n.AddCoreHook(func(global int, core *gossip.Core) {
		p.buildPeer(global, core, ordererID.Key)
	})

	// The ordering service lives behind the network's ordering
	// endpoint(s): Broadcast arrives as SubmitTx messages, cut blocks
	// enter the network's existing deliver/redeliver stream. Legacy mode
	// is one solo service behind the orderer endpoint; cluster mode hosts
	// one service per consenter, each cutting blocks from its consenter's
	// Raft apply stream — identical streams, identical signer, identical
	// blocks — with the network delivering only the leader's cuts.
	oCfg := order.Config{MaxTxPerBlock: cfg.MaxTxPerBlock, BatchTimeout: cfg.BatchTimeout}
	ordEng := n.OrdererEngine()
	if k := n.Consenters(); k > 0 {
		p.services = make([]*order.Service, k)
		for i := 0; i < k; i++ {
			i := i
			p.services[i] = order.NewService(oCfg, ordEng,
				&clusterConsenter{net: n, idx: i}, ordererSigner,
				func(b *ledger.Block) { p.onClusterCut(i, b) })
		}
		n.SetSubmitHandler(func(consenter int, tx *ledger.Transaction) {
			_ = p.services[consenter].Broadcast(tx)
		})
	} else {
		p.service = order.NewService(oCfg, ordEng,
			order.NewSolo(ordEng, cfg.OrdererDelay), ordererSigner, p.onCut)
		n.Orderer.SetHandler(func(_ wire.NodeID, msg wire.Message) {
			if st, ok := msg.(*wire.SubmitTx); ok {
				_ = p.service.Broadcast(st.Tx)
			}
		})
	}

	// Client populations: each client gets its own endpoint (appended
	// after the orderer — dense ids keep traffic accounting amortized), a
	// WAN site co-located with its organization when the network is
	// WAN-separated, and its own named random stream. An aggregated pool
	// keeps a bounded endpoint set per org and one arrival stream
	// ("workload/orgN/pool") driving them round-robin.
	for o := range n.Orgs {
		nClients := cfg.ClientsPerOrg
		var pool *orgPool
		if cfg.AggregateClients {
			if nClients > aggregateEndpoints {
				nClients = aggregateEndpoints
			}
			eng := n.OrgEngine(o)
			pool = &orgPool{
				p:    p,
				org:  o,
				eng:  eng,
				rng:  eng.Rand(fmt.Sprintf("workload/org%d/pool", o)),
				rate: float64(cfg.ClientsPerOrg) * cfg.Rate,
			}
			if cfg.ZipfS > 1 {
				pool.zipf = rand.NewZipf(pool.rng.Rand, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			}
			p.pools = append(p.pools, pool)
		}
		for j := 0; j < nClients; j++ {
			ep := n.AddClientNode(o)
			eng := n.OrgEngine(o)
			c := &planeClient{
				p:   p,
				org: o,
				ep:  ep.ID(),
				eng: eng,
				rng: eng.Rand(fmt.Sprintf("workload/org%d/client%d", o, j)),
			}
			if cfg.ZipfS > 1 {
				c.zipf = rand.NewZipf(c.rng.Rand, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			}
			name := fmt.Sprintf("org%d-client%d", o, j)
			cl, err := client.NewWithSource(name, p.endorserSource(o), p.submitter(ep))
			if err != nil {
				return nil, err
			}
			c.cl = cl
			p.clients = append(p.clients, c)
			if pool != nil {
				pool.clients = append(pool.clients, c)
			}
		}
	}
	return p, nil
}

// buildPeer (re)builds the validation pipeline for one global peer index
// over the given core, and — for endorsing peers — a fresh endorser bound
// to the new pipeline's state database.
func (p *Plane) buildPeer(global int, core *gossip.Core, ordererKey crypto.PublicKey) {
	cfg := peer.Config{ValidationPerTx: p.cfg.ValidationPerTx}
	if _, isEndorser := p.endorserIDs[global]; isEndorser {
		cfg.OrdererKey = ordererKey
	}
	pr := peer.New(core, p.checkers[p.net.OrgOf(global)], p.net.EngineFor(global), cfg)
	pr.OnCommitResult(p.resolver(global))
	p.peers[global] = pr
	if id, ok := p.endorserIDs[global]; ok {
		e := endorse.NewEndorser(id, p.signers[global], pr.State())
		e.Install(chaincode.Counter{})
		p.endorsers[global] = e
	}
}

// endorserSource yields an organization's currently live endorsing peers.
func (p *Plane) endorserSource(org int) client.EndorserSource {
	return func() []*endorse.Endorser {
		var out []*endorse.Endorser
		for _, g := range p.endorserIdx[org] {
			if !p.net.Crashed(g) {
				out = append(out, p.endorsers[g])
			}
		}
		return out
	}
}

// submitter sends an assembled transaction from the client's endpoint to
// the ordering service. The simulated transport drops messages to crashed
// or partitioned-away nodes silently (bytes leave the NIC either way), so
// reachability is checked explicitly — a Broadcast no ordering node can
// receive is a submit error the client must count. Against a consenter
// cluster the envelope goes to every live reachable consenter (modelled
// client failover; the consenter shims deduplicate on apply), so a counted
// submission survives any election or crash that leaves one recipient
// alive — the submitted == committed + conflicts invariant holds across
// leadership changes.
func (p *Plane) submitter(ep *transport.SimEndpoint) client.Submitter {
	return func(tx *ledger.Transaction) error {
		targets := p.net.SubmitTargets(ep.ID())
		if len(targets) == 0 {
			return errors.New("workload: ordering service unreachable")
		}
		if len(targets) == 1 {
			return ep.Send(targets[0], &wire.SubmitTx{Tx: tx})
		}
		for _, t := range targets {
			_ = ep.Send(t, &wire.SubmitTx{Tx: tx})
		}
		return nil
	}
}

// OnBlockCut installs fn to observe every block the plane's ordering
// service cuts, on the ordering engine's goroutine: consenter is the
// cutting replica's index, or -1 for the legacy solo service. In cluster
// mode every live replica cuts the identical block, so fn fires once per
// replica per block. Install before Start; fn must not call back into
// the plane.
func (p *Plane) OnBlockCut(fn func(consenter int, num uint64, txs int)) {
	if p.service != nil {
		p.service.OnBlockCut(func(num uint64, txs int) { fn(-1, num, txs) })
	}
	for i, svc := range p.services {
		i := i
		svc.OnBlockCut(func(num uint64, txs int) { fn(i, num, txs) })
	}
}

// onCut receives each block the ordering service cuts: record its
// transaction ids for resolution, then hand it to the network's deliver
// stream.
func (p *Plane) onCut(b *ledger.Block) {
	p.recordBlock(b)
	p.net.Append(b)
}

// onClusterCut receives a block cut by one consenter's service replica.
// Every replica cuts the identical block from the identical apply stream,
// so the tracking record is first-cut-wins; the network's deliver plane
// gates on the current leader's own cut height.
func (p *Plane) onClusterCut(consenter int, b *ledger.Block) {
	if !p.cutSeen[b.Num] {
		p.cutSeen[b.Num] = true
		p.recordBlock(b)
	}
	p.net.OfferBlock(consenter, b)
}

// recordBlock registers a cut block's transaction ids for every
// organization's resolvers. Sequentially the maps are filled in place; a
// sharded run queues the record on the ordering shard and syncBlockTxs fans
// it out at the next coordinator barrier.
func (p *Plane) recordBlock(b *ledger.Block) {
	ids := make([]crypto.Digest, len(b.Txs))
	for i, tx := range b.Txs {
		ids[i] = tx.ID
	}
	if se := p.net.Sharded(); se != nil {
		p.txSync = append(p.txSync, blockRecord{num: b.Num, ids: ids})
		// The fan-out hook must not be elided by an adaptive coordinator.
		se.RequestBarrier()
		return
	}
	for o := range p.blockTxs {
		p.blockTxs[o][b.Num] = ids
	}
}

// syncBlockTxs is the coordinator barrier hook that publishes
// ordering-shard block records to every organization's blockTxs map while
// all shards are quiescent.
func (p *Plane) syncBlockTxs() {
	for _, r := range p.txSync {
		for o := range p.blockTxs {
			p.blockTxs[o][r.num] = r.ids
		}
	}
	p.txSync = p.txSync[:0]
}

// clusterConsenter adapts one harness consenter slot to order.Consenter:
// submissions go through the consenter's reliable Raft shim, the committed
// stream is the consenter's non-block apply feed.
type clusterConsenter struct {
	net *harness.Network
	idx int
}

func (c *clusterConsenter) Submit(data []byte) error {
	return c.net.SubmitEntry(c.idx, data)
}

func (c *clusterConsenter) OnCommit(fn func(data []byte)) {
	c.net.SetConsenterStream(c.idx, fn)
}

// resolver returns the commit-result hook for one peer: the first member
// of an organization to commit a block resolves its transactions for that
// organization's issuing clients.
func (p *Plane) resolver(global int) func(ledger.CommitResult) {
	org := p.net.OrgOf(global)
	return func(res ledger.CommitResult) {
		if res.BlockNum != p.orgNext[org] {
			return // already resolved by a faster member (or a stale peer)
		}
		p.orgNext[org]++
		ids := p.blockTxs[org][res.BlockNum]
		for i, code := range res.Codes {
			if i >= len(ids) {
				break
			}
			p.resolve(org, ids[i], code)
		}
	}
}

// resolve settles one transaction outcome observed by the given
// organization. Only the issuing organization's observation counts — each
// org resolves every block, but a transaction is tracked by exactly one
// pending record held by its issuing client.
func (p *Plane) resolve(org int, id crypto.Digest, code ledger.ValidationCode) {
	pt, ok := p.pending[org][id]
	if !ok || pt.client.org != org {
		return
	}
	delete(p.pending[org], id)
	st := &p.stats[org]
	switch code {
	case ledger.CodeValid:
		st.committed++
		st.latencies = append(st.latencies, pt.client.eng.Now()-pt.submitAt)
	default: // MVCC conflict or endorsement failure
		st.conflicts++
		if code == ledger.CodeMVCCConflict && pt.retries < p.cfg.RetryMax && p.running {
			st.retries++
			pt.client.invoke(pt.key, pt.retries+1)
			return
		}
	}
	if p.cfg.Arrival == ArrivalClosed {
		pt.client.completed()
	}
}

// Start opens the submission window: every client begins its arrival
// process. Safe to call from an engine callback; under a sharded network
// it must run from the control engine (scenario actions do), whose events
// fire at coordinator barriers while every shard is quiescent.
func (p *Plane) Start() {
	if p.running {
		return
	}
	p.running = true
	if len(p.pools) > 0 {
		for _, op := range p.pools {
			op.start()
		}
		return
	}
	for _, c := range p.clients {
		c.start()
	}
}

// Stop closes the submission window: open-loop arrivals cease and closed
// loops do not re-arm. In-flight transactions still resolve and count.
func (p *Plane) Stop() { p.running = false }

// ClientNodes returns the node ids of an organization's client endpoints,
// so partition-style faults can keep clients on their organization's side.
func (p *Plane) ClientNodes(org int) []wire.NodeID {
	var out []wire.NodeID
	for _, c := range p.clients {
		if c.org == org {
			out = append(out, c.ep)
		}
	}
	return out
}

// orgPool is one organization's aggregated arrival process: a single timer
// on the org's engine firing at the aggregate rate (ClientsPerOrg×Rate)
// and attributing each arrival to the org's bounded endpoint set
// round-robin. It draws inter-arrival times and keys from its own named
// stream, so the modeled client count changes no other stream.
type orgPool struct {
	p    *Plane
	org  int
	eng  *sim.Engine
	rng  *sim.Rand
	zipf *rand.Zipf
	rate float64 // aggregate arrivals per second
	// clients is the org's endpoint set; next indexes the round-robin.
	clients []*planeClient
	next    int
}

// start arms the pool's next arrival at the aggregate rate.
func (op *orgPool) start() {
	if op.p.cfg.Arrival == ArrivalPoisson {
		op.eng.After(time.Duration(op.rng.Exp(float64(time.Second)/op.rate)), op.fire)
	} else {
		op.eng.After(time.Duration(float64(time.Second)/op.rate), op.fire)
	}
}

// fire is one aggregated arrival: schedule the next, then hand the
// submission to the next endpoint in the rotation.
func (op *orgPool) fire() {
	if !op.p.running {
		return
	}
	op.start() // next arrival first: the draw order is fixed per pool
	c := op.clients[op.next]
	op.next = (op.next + 1) % len(op.clients)
	c.invoke(op.key(), 0)
}

// key draws the next key from the pool's stream: Zipf-skewed when
// configured, uniform otherwise.
func (op *orgPool) key() string {
	var i uint64
	if op.zipf != nil {
		i = op.zipf.Uint64()
	} else {
		i = uint64(op.rng.Intn(op.p.cfg.Keys))
	}
	return fmt.Sprintf("key-%04d", i)
}

// start arms the client's first arrival.
func (c *planeClient) start() {
	switch c.p.cfg.Arrival {
	case ArrivalClosed:
		c.fire()
	case ArrivalPoisson:
		c.eng.After(time.Duration(c.rng.Exp(float64(time.Second)/c.p.cfg.Rate)), c.fire)
	default:
		c.eng.After(time.Duration(float64(time.Second)/c.p.cfg.Rate), c.fire)
	}
}

// fire is one arrival: submit a transaction and, for open loops, schedule
// the next arrival. All stop checks happen at fire time so a Stop between
// schedule and fire consumes no random draw.
func (c *planeClient) fire() {
	if !c.p.running {
		return
	}
	if c.p.cfg.Arrival != ArrivalClosed {
		c.start() // next arrival first: the draw order is fixed per client
	} else if c.inFlight {
		return
	}
	c.invoke(c.key(), 0)
}

// key draws the next key: Zipf-skewed over the keyspace when configured,
// uniform otherwise.
func (c *planeClient) key() string {
	var i uint64
	if c.zipf != nil {
		i = c.zipf.Uint64()
	} else {
		i = uint64(c.rng.Intn(c.p.cfg.Keys))
	}
	return fmt.Sprintf("key-%04d", i)
}

// invoke endorses and submits one counter increment. retries is how many
// conflict retries this attempt chain has already consumed.
func (c *planeClient) invoke(key string, retries int) {
	if c.p.cfg.Arrival == ArrivalClosed {
		c.inFlight = true
	}
	c.seq++
	var nonce [8]byte
	binary.BigEndian.PutUint64(nonce[:], c.seq)
	tx, err := c.cl.Invoke("counter", []string{"incr", key}, nonce[:])
	if err != nil {
		// Counted by the client's own stats (endorse/conflict/submit).
		c.completed()
		return
	}
	c.p.pending[c.org][tx.ID] = &pendingTx{
		client:   c,
		submitAt: c.eng.Now(),
		retries:  retries,
		key:      key,
	}
}

// completed re-arms a closed-loop client after a terminal outcome.
func (c *planeClient) completed() {
	if c.p.cfg.Arrival != ArrivalClosed {
		return
	}
	c.inFlight = false
	if !c.p.running {
		return
	}
	c.eng.After(c.p.cfg.Think, func() {
		if !c.p.running || c.inFlight {
			return
		}
		c.invoke(c.key(), 0)
	})
}

// OrgStats is one organization's workload outcome.
type OrgStats struct {
	Org       int
	Submitted int
	Committed int
	Conflicts int
	Retries   int

	ProposalConflicts int
	EndorseErrors     int
	SubmitErrors      int
	CommitErrors      uint64

	// Latency summarizes submit-to-commit latency: submission to the
	// first commit of the transaction's block within the issuing
	// organization.
	Latency metrics.Summary
}

// Stats is the plane-wide workload outcome.
type Stats struct {
	Orgs []OrgStats

	Submitted int
	Committed int
	Conflicts int
	Retries   int

	ProposalConflicts int
	EndorseErrors     int
	SubmitErrors      int
	CommitErrors      uint64

	// OrderedTx is the ordering service's transaction count; BlocksCut,
	// CutBySize and CutByTimeout describe its block cutting.
	OrderedTx    uint64
	BlocksCut    uint64
	CutBySize    uint64
	CutByTimeout uint64

	Latency metrics.Summary
}

// ConflictRate is the fraction of resolved transactions invalidated by
// validation (MVCC conflicts and endorsement failures).
func (s Stats) ConflictRate() float64 {
	total := s.Committed + s.Conflicts
	if total == 0 {
		return 0
	}
	return float64(s.Conflicts) / float64(total)
}

// Stats snapshots the plane's counters. Call after the engine drained.
func (p *Plane) Stats() Stats {
	var out Stats
	var all []time.Duration
	for o := range p.stats {
		st := &p.stats[o]
		os := OrgStats{
			Org:       o,
			Committed: st.committed,
			Conflicts: st.conflicts,
			Retries:   st.retries,
			Latency:   metrics.Summarize(metrics.NewDistribution(st.latencies)),
		}
		for _, c := range p.clients {
			if c.org != o {
				continue
			}
			cs := c.cl.Stats()
			os.Submitted += cs.Submitted
			os.ProposalConflicts += cs.ProposalConflicts
			os.EndorseErrors += cs.EndorseErrors
			os.SubmitErrors += cs.SubmitErrors
		}
		for _, g := range p.net.Orgs[o].Peers {
			os.CommitErrors += p.peers[g].Stats().CommitErrors
		}
		all = append(all, st.latencies...)
		out.Submitted += os.Submitted
		out.Committed += os.Committed
		out.Conflicts += os.Conflicts
		out.Retries += os.Retries
		out.ProposalConflicts += os.ProposalConflicts
		out.EndorseErrors += os.EndorseErrors
		out.SubmitErrors += os.SubmitErrors
		out.CommitErrors += os.CommitErrors
		out.Orgs = append(out.Orgs, os)
	}
	out.Latency = metrics.Summarize(metrics.NewDistribution(all))
	svc := p.service
	if svc == nil {
		// Cluster mode: report the most advanced replica (replicas only
		// differ by how far through the shared apply stream they are —
		// crashed consenters lag until log replay catches them up).
		for _, s := range p.services {
			if svc == nil || s.Height() > svc.Height() {
				svc = s
			}
		}
	}
	out.OrderedTx, out.CutBySize, out.CutByTimeout = svc.Stats()
	out.BlocksCut = svc.Height()
	return out
}
