// Package membership is the gossip layer's membership plane, carved out of
// the core so both dissemination protocols share one engine (paper §III-A:
// "peers use gossip to build and maintain a local view of other peers in
// the network"). A View tracks which peers of the organization are believed
// alive from the periodic Alive heartbeats, determines the organization's
// dynamic-election leader (the lowest-id live peer), and — when the
// SWIM-style extensions are enabled — keeps that view dense even at
// thousand-peer scale, where fixed heartbeat fan-out alone yields only a
// sparse sample:
//
//   - Piggybacked dissemination: membership events (joins, suspicions,
//     deaths, refutations) are queued as budgeted rumors and ride on the
//     destinations of ordinary gossip traffic as bounded wire.MemberEvents
//     digests, so membership knowledge spreads epidemically with constant
//     per-message overhead instead of only via direct heartbeats.
//   - Suspicion: a peer whose heartbeats lapse enters a suspect state that
//     any fresher alive evidence (a heartbeat, a piggybacked refutation, a
//     shuffle entry) clears before the peer is declared dead — killing the
//     false-dead flapping that per-pair heartbeat freshness produces under
//     WAN delay and loss. The heartbeat sequence doubles as SWIM's
//     incarnation number; a peer that learns it is being suspected bumps it
//     and floods a refutation.
//   - View shuffling: a periodic pairwise exchange of view samples
//     (wire.ShuffleRequest/ShuffleResponse) that systematically refreshes
//     every entry, so isolated corners of a large organization converge.
//
// The View talks to its peer through the narrow Host interface — message
// sending and the deterministic random stream — so it runs identically
// under gossip.Core on the simulated and TCP runtimes, and unit tests can
// drive it with a stub host. With the extensions disabled (the default
// configuration) the View reproduces the legacy heartbeat-expiration
// behavior: no extra messages, no extra random draws, identical transition
// timing. The one deliberate legacy-mode change is the Dead predicate,
// which now agrees with Alive at every instant instead of lagging until
// the next sweep (see Dead); the catalog's golden fingerprints confirm no
// observable drift from it.
package membership

import (
	"sync"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Host is the narrow view of a peer the membership engine needs.
// gossip.Core implements it; all methods must be safe to call without
// external locking.
type Host interface {
	// Send transmits a membership payload to a peer (loss-tolerant).
	// Implementations must hand the message straight to the transport —
	// not through a piggybacking send path — or every shuffle and digest
	// would recursively piggyback onto itself.
	Send(to wire.NodeID, msg wire.Message)
	// Rand returns the peer's deterministic random stream (shuffle target
	// draws). Never called unless shuffling is enabled, so legacy
	// configurations consume the stream exactly as before.
	Rand() *sim.Rand
}

// Config parameterizes one peer's membership view. The zero values of the
// SWIM knobs reproduce the legacy heartbeat-expiration behavior exactly.
type Config struct {
	// Self is this peer's node id; it is always considered alive.
	Self wire.NodeID
	// Expiration is how long a peer stays live after its last heartbeat
	// (legacy mode), or how long before it becomes a suspect (suspicion
	// mode).
	Expiration time.Duration

	// SuspectTimeout, when positive, inserts the SWIM suspect state
	// before death: a suspected peer stays (refutably) alive for this
	// long and is declared dead only if no fresher alive evidence
	// arrives. Suspicion originates from failed shuffle probes when
	// shuffling is enabled (heartbeat lapse then means nothing — the
	// fan-out is a sparse sample), and from heartbeat lapse otherwise.
	// Zero keeps the legacy lapse-is-death behavior with every predicate
	// time-based — unless piggybacking or shuffling is enabled, which
	// defaults the timeout to 3x Expiration (those mechanisms put peers
	// in the suspect state, so the timeout must exist).
	SuspectTimeout time.Duration
	// PiggybackMax bounds how many queued membership rumors one outgoing
	// digest carries. Zero disables piggybacked dissemination entirely.
	PiggybackMax int
	// PiggybackBudget is how many times one rumor is retransmitted before
	// it is dropped from the queue. Zero defaults to 4 when piggybacking
	// is enabled — small, because every view that finds a rumor newsworthy
	// relays it with a fresh budget, so the spread is epidemic and a large
	// per-view budget only slows the queue's drain after a churn burst.
	PiggybackBudget int
	// ShuffleInterval is the period of the view-shuffle exchange (the
	// timer is armed by the core). Zero disables shuffling.
	ShuffleInterval time.Duration
	// ShuffleSample is how many view entries one shuffle message carries
	// (default 64).
	ShuffleSample int
	// QueueCap bounds the rumor queue; the oldest rumor is dropped on
	// overflow (default 1024).
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.PiggybackMax > 0 && c.PiggybackBudget == 0 {
		c.PiggybackBudget = 4
	}
	if c.ShuffleSample == 0 {
		c.ShuffleSample = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 1024
	}
	// Enabling any SWIM mechanism pulls in the whole SWIM state machine:
	// shuffle probes and piggybacked events put peers in the suspect and
	// dead states, so the suspect timeout must exist — a zero timeout
	// would declare a suspect dead at the next sweep (one lost shuffle
	// reply killing a healthy peer) while the time-based predicates still
	// counted it alive.
	if (c.PiggybackMax > 0 || c.ShuffleInterval > 0) && c.SuspectTimeout == 0 {
		c.SuspectTimeout = 3 * c.Expiration
		if c.SuspectTimeout == 0 {
			c.SuspectTimeout = 30 * time.Second
		}
	}
	return c
}

// Swim reports whether any of the SWIM extensions is enabled.
func (c Config) Swim() bool {
	return c.SuspectTimeout > 0 || c.PiggybackMax > 0 || c.ShuffleInterval > 0
}

// peer states. A peer absent from the status map has never been observed.
type status uint8

const (
	statusLive status = iota + 1
	// statusSuspect marks a lapsed peer awaiting refutation (suspicion
	// mode only). Suspects still count as alive — SWIM treats suspected
	// members as members until the timeout confirms them dead.
	statusSuspect
	statusDead
)

// Stats is a point-in-time snapshot of one view's counters, for report
// sections and tests.
type Stats struct {
	// Known / Live / Suspects / Dead partition the tracked peers (self
	// excluded; Known is their sum).
	Known    int
	Live     int
	Suspects int
	Dead     int
	// Queued is the current rumor-queue length; EventsQueued / EventsSent
	// / EventsApplied count rumors entering the queue, event entries sent
	// in digests, and received entries that changed local state.
	Queued        int
	EventsQueued  uint64
	EventsSent    uint64
	EventsApplied uint64
	// Refutations counts self-accusations answered with an incarnation
	// bump; DeadDeclared counts local suspicion timeouts.
	Refutations  uint64
	DeadDeclared uint64
}

// View tracks which peers of the organization are believed alive. All
// exported methods are safe for concurrent use (required by the TCP
// runtime; the simulated runtime is single-threaded anyway).
type View struct {
	cfg  Config
	host Host

	mu sync.Mutex
	// tracked holds every peer ever observed, in ascending id order: the
	// deterministic iteration order for sweeps and samples, and the
	// allocation-free scan behind Leader (the lowest live id is almost
	// always found in the first probe). Per-peer state is dense: lastSeen,
	// lastSeq, status and suspectAt are parallel slices indexed by the
	// peer's position in tracked — a few words per peer instead of four
	// map entries, which is the difference between megabytes and hundreds
	// of megabytes of tracking state across a 10k-peer organization, and
	// no map iteration anywhere near the deterministic streams.
	tracked  []wire.NodeID
	lastSeen []time.Duration
	lastSeq  []uint64
	status   []status
	// suspectAt[i] is when suspect tracked[i] entered suspicion (zero when
	// tracked[i] is not currently a suspect).
	suspectAt []time.Duration
	// selfSeq mirrors the core's heartbeat sequence (SWIM incarnation):
	// shuffle samples advertise it, and accusations at or above it flag a
	// refutation.
	selfSeq uint64
	// selfAccused latches that a suspect/dead claim about self arrived;
	// the core consumes it and answers with an incarnation bump.
	selfAccused bool

	// queue holds the budgeted piggyback rumors, oldest first.
	queue []rumor
	// shufCursor rotates sample selection through tracked so consecutive
	// shuffles cover the whole view instead of resampling a prefix.
	shufCursor int
	// probeTarget/probePending track the outstanding shuffle probe: the
	// shuffle exchange doubles as SWIM's ping, so a request that draws no
	// response (and no other direct evidence) by the next shuffle round
	// makes the target a suspect. This keeps failure-detection load O(1)
	// per node per round — per-pair heartbeat freshness cannot work when
	// the fan-out is a sparse sample of a thousand-peer organization.
	probeTarget  wire.NodeID
	probePending bool

	onTransition func(peer wire.NodeID, alive bool)

	eventsQueued  uint64
	eventsSent    uint64
	eventsApplied uint64
	refutations   uint64
	deadDeclared  uint64
}

// rumor is one queued membership event with its remaining retransmit
// budget.
type rumor struct {
	ev     wire.MemberEvent
	budget int
}

// New creates a view for cfg.Self. host may be nil when the SWIM
// extensions are disabled (legacy mode never sends).
func New(cfg Config, host Host) *View {
	return &View{cfg: cfg.withDefaults(), host: host}
}

// OnTransition installs the hook fired for live/dead transitions caused by
// applying piggybacked or shuffled events (Observe and Sweep report their
// transitions through return values instead, preserving the legacy call
// pattern). The hook runs outside the view's lock and must not call back
// into the view. Must be set before Start.
func (v *View) OnTransition(fn func(peer wire.NodeID, alive bool)) { v.onTransition = fn }

// Config returns the view's configuration (after defaulting).
func (v *View) Config() Config { return v.cfg }

// NoteSelfSeq records the core's current heartbeat sequence so shuffle
// samples and refutations advertise fresh incarnations.
func (v *View) NoteSelfSeq(seq uint64) {
	v.mu.Lock()
	if seq > v.selfSeq {
		v.selfSeq = seq
	}
	v.mu.Unlock()
}

// track inserts peer into the sorted tracked slice and opens a zeroed slot
// at the same position in every parallel state slice, returning the index.
// Caller holds mu and guarantees the peer is not yet tracked.
func (v *View) track(peer wire.NodeID) int {
	lo, hi := 0, len(v.tracked)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.tracked[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	v.tracked = append(v.tracked, 0)
	copy(v.tracked[lo+1:], v.tracked[lo:])
	v.tracked[lo] = peer
	v.lastSeen = append(v.lastSeen, 0)
	copy(v.lastSeen[lo+1:], v.lastSeen[lo:])
	v.lastSeen[lo] = 0
	v.lastSeq = append(v.lastSeq, 0)
	copy(v.lastSeq[lo+1:], v.lastSeq[lo:])
	v.lastSeq[lo] = 0
	v.status = append(v.status, 0)
	copy(v.status[lo+1:], v.status[lo:])
	v.status[lo] = 0
	v.suspectAt = append(v.suspectAt, 0)
	copy(v.suspectAt[lo+1:], v.suspectAt[lo:])
	v.suspectAt[lo] = 0
	return lo
}

// idxOf returns peer's index into tracked (and the parallel state slices),
// or -1 if the peer was never observed. Caller holds mu.
func (v *View) idxOf(peer wire.NodeID) int {
	lo, hi := 0, len(v.tracked)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.tracked[mid] < peer {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.tracked) && v.tracked[lo] == peer {
		return lo
	}
	return -1
}

// Observe records a direct heartbeat from peer with the given sequence
// number at the given time, reporting whether it made the peer newly live
// (a dead-to-live transition). Stale (replayed or reordered) heartbeats
// with sequence numbers at or below the freshest seen are ignored, so a
// dead peer cannot be resurrected by an old message floating in the
// network. In suspicion mode a heartbeat from a suspect clears the
// suspicion (a refutation, not a transition: suspects never left the live
// view) and re-gossips the peer's freshness.
func (v *View) Observe(peer wire.NodeID, seq uint64, at time.Duration) bool {
	if peer == v.cfg.Self {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	i := v.idxOf(peer)
	if i >= 0 && seq <= v.lastSeq[i] {
		return false
	}
	tracked := i >= 0
	var st status
	if tracked {
		st = v.status[i]
	} else {
		i = v.track(peer)
	}
	v.lastSeq[i] = seq
	v.lastSeen[i] = at
	v.status[i] = statusLive
	becameLive := !tracked || st == statusDead
	if v.cfg.Swim() {
		if v.probePending && peer == v.probeTarget {
			v.probePending = false // direct evidence: the probe target lives
		}
		if st == statusSuspect {
			v.suspectAt[i] = 0
			// Direct evidence refuting a suspicion is worth re-gossiping:
			// other peers may still hold the suspect claim.
			v.queueRumor(wire.MemberEvent{Peer: peer, Seq: seq, Kind: wire.EventAlive})
		} else if becameLive {
			// A join or rejoin is news the rest of the organization only
			// samples sparsely; spread it.
			v.queueRumor(wire.MemberEvent{Peer: peer, Seq: seq, Kind: wire.EventAlive})
		}
	}
	return becameLive
}

// Sweep advances the state machine at time now and returns the peers
// declared dead since the previous sweep, in ascending id order. Call it
// periodically; Observe reports the opposite transition.
//
// Legacy mode: peers whose heartbeats lapsed past Expiration die
// immediately (the old Expire behavior). Suspicion mode with shuffling
// enabled: silence alone never kills — a live peer stays live until a
// failed probe (ShuffleTick) or a gossiped suspicion puts it in the
// suspect state. Suspicion without shuffling (no prober to originate
// suspicions) falls back to lapse-based suspicion: a lapsed live peer
// becomes a refutable suspect here. Either way, a suspect whose
// SuspectTimeout elapses without refutation is declared dead, its death
// gossiped to the rest of the organization.
func (v *View) Sweep(now time.Duration) []wire.NodeID {
	v.mu.Lock()
	defer v.mu.Unlock()
	var dead []wire.NodeID
	suspicion := v.cfg.SuspectTimeout > 0
	probing := v.cfg.ShuffleInterval > 0
	for i, p := range v.tracked {
		switch v.status[i] {
		case statusLive:
			if suspicion && probing {
				// Per-pair heartbeat freshness is a sparse sample of a
				// large organization: lapse means nothing here. Probes
				// carry the failure-detection duty instead.
				continue
			}
			if now-v.lastSeen[i] <= v.cfg.Expiration {
				continue
			}
			if suspicion {
				// No prober to originate suspicion (shuffling disabled),
				// so lapse must: without this, a crashed peer would stay
				// live forever in this configuration.
				v.status[i] = statusSuspect
				v.suspectAt[i] = now
				v.queueRumor(wire.MemberEvent{Peer: p, Seq: v.lastSeq[i], Kind: wire.EventSuspect})
				continue
			}
			v.status[i] = statusDead
			dead = append(dead, p)
		case statusSuspect:
			if now-v.suspectAt[i] <= v.cfg.SuspectTimeout {
				continue
			}
			v.suspectAt[i] = 0
			v.status[i] = statusDead
			v.deadDeclared++
			dead = append(dead, p)
			v.queueRumor(wire.MemberEvent{Peer: p, Seq: v.lastSeq[i], Kind: wire.EventDead})
		}
	}
	return dead
}

// aliveIdxLocked is the one liveness predicate every query shares,
// answering for tracked[i]. Legacy mode is time-based: alive means a
// heartbeat within Expiration — the moment a peer lapses it stops being
// alive and becomes dead, with no window where the two disagree. Suspicion
// mode is state-based: live and suspect count as alive, only a declared
// death removes a peer from the view (per-pair heartbeat freshness is
// meaningless when the fan-out is a sparse sample of a large
// organization). Callers answer false for untracked peers (idxOf < 0).
func (v *View) aliveIdxLocked(i int, now time.Duration) bool {
	if v.cfg.SuspectTimeout > 0 {
		st := v.status[i]
		return st == statusLive || st == statusSuspect
	}
	return now-v.lastSeen[i] <= v.cfg.Expiration
}

// Alive reports whether peer is believed alive at time now. Self is always
// alive.
func (v *View) Alive(peer wire.NodeID, now time.Duration) bool {
	if peer == v.cfg.Self {
		return true
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	i := v.idxOf(peer)
	return i >= 0 && v.aliveIdxLocked(i, now)
}

// Dead reports whether the view considers peer dead at time now: it was
// observed once and is no longer alive. Peers never observed are not dead —
// with a sparse heartbeat sample most live peers have simply never been
// heard from. Dead is the exact complement of Alive over tracked peers
// (both answer from the same predicate; the legacy split where a lapsed
// peer was neither alive nor dead until the next sweep is gone).
func (v *View) Dead(peer wire.NodeID, now time.Duration) bool {
	if peer == v.cfg.Self {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	i := v.idxOf(peer)
	return i >= 0 && !v.aliveIdxLocked(i, now)
}

// Live returns the sorted ids of all peers believed alive at now,
// including self. Hot paths use LiveInto with a reusable buffer instead.
func (v *View) Live(now time.Duration) []wire.NodeID {
	return v.LiveInto(nil, now)
}

// LiveInto is Live appending into buf's backing array (grown as needed):
// the caller owns buf exclusively and the returned slice aliases it.
func (v *View) LiveInto(buf []wire.NodeID, now time.Duration) []wire.NodeID {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := buf[:0]
	selfDone := false
	for i, p := range v.tracked {
		if !selfDone && v.cfg.Self < p {
			out = append(out, v.cfg.Self)
			selfDone = true
		}
		if v.aliveIdxLocked(i, now) {
			out = append(out, p)
		}
	}
	if !selfDone {
		out = append(out, v.cfg.Self)
	}
	return out
}

// Leader returns the dynamic-election leader: the lowest-id live peer
// (self counts). This is the convergence point of Fabric's leader election
// once heartbeats have propagated. The scan walks the sorted tracked slice
// and stops at self, so the steady state answers from the first probe with
// zero allocations (the live-minimum is effectively tracked by the sorted
// order).
func (v *View) Leader(now time.Duration) wire.NodeID {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, p := range v.tracked {
		if p >= v.cfg.Self {
			break
		}
		if v.aliveIdxLocked(i, now) {
			return p
		}
	}
	return v.cfg.Self
}

// IsLeader reports whether self currently believes it is the leader.
func (v *View) IsLeader(now time.Duration) bool {
	return v.Leader(now) == v.cfg.Self
}

// Stats snapshots the view's counters.
func (v *View) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := Stats{
		Known:         len(v.tracked),
		Queued:        len(v.queue),
		EventsQueued:  v.eventsQueued,
		EventsSent:    v.eventsSent,
		EventsApplied: v.eventsApplied,
		Refutations:   v.refutations,
		DeadDeclared:  v.deadDeclared,
	}
	for i := range v.tracked {
		switch v.status[i] {
		case statusLive:
			s.Live++
		case statusSuspect:
			s.Suspects++
		case statusDead:
			s.Dead++
		}
	}
	return s
}
