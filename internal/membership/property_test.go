package membership

import (
	"testing"
	"testing/quick"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Property: piggyback retransmission terminates. With no new knowledge
// arriving, a view that keeps sending digests must drain its rumor queue
// completely, and the total number of event entries ever sent is bounded
// by rumors x budget — no event gossips forever.
func TestPropertyPiggybackBudgetsTerminate(t *testing.T) {
	f := func(peers []uint16, budget8 uint8, max8 uint8) bool {
		budget := int(budget8%16) + 1
		max := int(max8%8) + 1
		host := &stubHost{rng: sim.NewRand(1)}
		v := New(Config{
			Self: 0, Expiration: time.Minute,
			SuspectTimeout:  time.Minute,
			PiggybackMax:    max,
			PiggybackBudget: budget,
		}, host)
		// Seed the queue through the public paths: every observation of a
		// new peer queues a join rumor.
		for i, p := range peers {
			v.Observe(wire.NodeID(p)+1, uint64(i)+1, time.Duration(i))
		}
		queued := v.QueuedRumors()
		if queued > len(peers) {
			return false // dedup must never inflate the queue
		}
		// Drain: each send may carry up to max entries and charges each
		// rumor's budget. After ceil(queued/max) * budget sends the queue
		// must be empty, and stay empty forever after.
		bound := (queued/max + 2) * budget
		sent := 0
		for i := 0; i < bound; i++ {
			before := len(host.msgs)
			v.PiggybackOnto(wire.NodeID(1))
			if len(host.msgs) > before {
				sent += len(host.msgs[len(host.msgs)-1].(*wire.MemberEvents).Events)
			}
		}
		if v.QueuedRumors() != 0 {
			return false // budgets did not terminate
		}
		if sent > queued*budget {
			return false // some rumor exceeded its budget
		}
		// Idempotence: with the queue drained, sends carry nothing.
		before := len(host.msgs)
		v.PiggybackOnto(wire.NodeID(1))
		return len(host.msgs) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying arbitrary event batches never panics, never lets the
// queue exceed its cap, and drains to empty under repeated piggybacking
// once the event stream stops (termination under churn, not just under a
// static seed).
func TestPropertyApplyThenDrainTerminates(t *testing.T) {
	f := func(peers []uint16, seqs []uint16, kinds []uint8) bool {
		n := len(peers)
		if len(seqs) < n {
			n = len(seqs)
		}
		if len(kinds) < n {
			n = len(kinds)
		}
		host := &stubHost{rng: sim.NewRand(1)}
		v := New(Config{
			Self: 0, Expiration: time.Minute,
			SuspectTimeout:  time.Minute,
			PiggybackMax:    4,
			PiggybackBudget: 3,
			QueueCap:        32,
		}, host)
		events := make([]wire.MemberEvent, 0, n)
		for i := 0; i < n; i++ {
			events = append(events, wire.MemberEvent{
				Peer: wire.NodeID(peers[i] % 64),
				Seq:  uint64(seqs[i] % 8),
				Kind: wire.MemberEventKind(kinds[i] % 5), // includes invalid kinds
			})
		}
		v.apply(events, time.Second, true)
		if v.QueuedRumors() > 32 {
			return false // cap violated
		}
		for i := 0; i < 32*3+1; i++ {
			v.PiggybackOnto(wire.NodeID(1))
		}
		return v.QueuedRumors() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: rumor deduplication keeps at most one queue entry per
// (peer, kind), whatever the event order.
func TestPropertyQueueDedupesByPeerAndKind(t *testing.T) {
	f := func(seqs []uint16) bool {
		host := &stubHost{rng: sim.NewRand(1)}
		v := New(Config{
			Self: 0, Expiration: time.Minute, SuspectTimeout: time.Minute,
			PiggybackMax: 8, PiggybackBudget: 4,
		}, host)
		for i, s := range seqs {
			// All events target peer 7 with alternating kinds.
			kind := wire.EventAlive
			if i%2 == 1 {
				kind = wire.EventSuspect
			}
			v.apply([]wire.MemberEvent{{Peer: 7, Seq: uint64(s), Kind: kind}}, time.Second, true)
		}
		return v.QueuedRumors() <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
