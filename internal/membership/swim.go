package membership

import (
	"time"

	"fabricgossip/internal/wire"
)

// This file holds the SWIM-style extensions: the budgeted rumor queue
// behind piggybacked dissemination, the event-application state machine
// (with incarnation-ordered conflict resolution and self-refutation), and
// the periodic view shuffle. None of it runs — and none of it sends or
// draws randomness — unless the corresponding Config knobs are set.

// queueRumor enqueues ev for piggybacked retransmission. A rumor for the
// same peer and kind already queued is superseded in place when ev is
// fresher (budget reset: new information restarts its epidemic); an equal
// or fresher queued rumor absorbs ev. The queue is bounded by QueueCap;
// the front — where the most-retransmitted rumors age (see PiggybackOnto)
// — is dropped on overflow, so pressure sheds the rumors that already had
// their airtime, never the fresh ones. Caller holds mu.
func (v *View) queueRumor(ev wire.MemberEvent) {
	if v.cfg.PiggybackMax <= 0 {
		return
	}
	for i := range v.queue {
		q := &v.queue[i]
		if q.ev.Peer != ev.Peer || q.ev.Kind != ev.Kind {
			continue
		}
		if ev.Seq > q.ev.Seq {
			// Fresher information makes this rumor news again: a full
			// budget, and a move to the tail — the next-to-ship end —
			// rather than an in-place refresh at whatever aged position
			// the old copy occupied (where, under saturation, it would
			// never be selected and would be first in line for eviction).
			fresh := rumor{ev: ev, budget: v.cfg.PiggybackBudget}
			copy(v.queue[i:], v.queue[i+1:])
			v.queue[len(v.queue)-1] = fresh
		}
		return
	}
	if len(v.queue) >= v.cfg.QueueCap {
		copy(v.queue, v.queue[1:])
		v.queue = v.queue[:len(v.queue)-1]
	}
	v.queue = append(v.queue, rumor{ev: ev, budget: v.cfg.PiggybackBudget})
	v.eventsQueued++
}

// PiggybackOnto sends a bounded digest of queued rumors to the destination
// of an ordinary outgoing gossip message (gossip.Core calls it from its
// send path). With an empty queue — the steady state of a stable
// organization — it is a lock plus a length check: no message, no
// allocation.
//
// Selection is newest-first (SWIM's least-retransmitted-first): each digest
// takes the queue's tail, where fresh rumors land, charges one transmission
// from each budget, drops exhausted rumors, and parks the survivors at the
// front. A refutation queued during a churn burst therefore ships on the
// very next message instead of waiting behind a backlog of aged rumors —
// under saturation it is the stale end of the queue that decays.
func (v *View) PiggybackOnto(to wire.NodeID) {
	if v.cfg.PiggybackMax <= 0 {
		return
	}
	v.mu.Lock()
	if len(v.queue) == 0 {
		v.mu.Unlock()
		return
	}
	k := v.cfg.PiggybackMax
	if k > len(v.queue) {
		k = len(v.queue)
	}
	// The events slice is retained by the in-flight message (the simulated
	// transport shares message values by reference), so it cannot be a
	// reusable buffer; rumors are churn-proportional, so this allocation
	// never appears at steady state.
	events := make([]wire.MemberEvent, k)
	start := len(v.queue) - k
	live := start // survivors compacted to [start:live)
	for i := start; i < len(v.queue); i++ {
		events[i-start] = v.queue[i].ev
		v.queue[i].budget--
		if v.queue[i].budget > 0 {
			v.queue[live] = v.queue[i]
			live++
		}
	}
	// Park the surviving picked rumors at the front: the untouched prefix
	// shifts back, so the next send's tail holds different (or newer)
	// rumors.
	if survivors := live - start; survivors > 0 && start > 0 {
		tmp := make([]rumor, survivors)
		copy(tmp, v.queue[start:live])
		copy(v.queue[survivors:], v.queue[:start])
		copy(v.queue, tmp)
		v.queue = v.queue[:start+survivors]
	} else {
		v.queue = v.queue[:live]
	}
	v.eventsSent += uint64(k)
	v.mu.Unlock()
	v.host.Send(to, &wire.MemberEvents{Events: events})
}

// QueuedRumors returns the current rumor-queue length.
func (v *View) QueuedRumors() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.queue)
}

// IsPayload reports whether the message type belongs to the membership
// plane (the types View.Handle claims).
func IsPayload(t wire.MsgType) bool {
	switch t {
	case wire.TypeMemberEvents, wire.TypeShuffleRequest, wire.TypeShuffleResponse:
		return true
	}
	return false
}

// Handle processes a membership payload, reporting whether the message type
// belonged to this subsystem. Transitions caused by applied events fire the
// OnTransition hook (outside the lock), and accusations against self latch
// for TakeAccusation.
//
// A view with every SWIM knob off claims the payload types but drops their
// content: a legacy peer in a mixed organization must not let a received
// suspicion push a peer into a state machine whose timeouts it never
// configured (a zero SuspectTimeout would turn it into an instant death
// contradicting the time-based predicates).
func (v *View) Handle(from wire.NodeID, msg wire.Message, now time.Duration) bool {
	if !v.cfg.Swim() {
		return IsPayload(msg.Type())
	}
	switch m := msg.(type) {
	case *wire.MemberEvents:
		v.mu.Lock()
		if v.probePending && from == v.probeTarget {
			// A piggybacked digest is as direct as a shuffle ack: the
			// target is talking, so the outstanding probe must not turn
			// a dropped response into a false suspicion.
			v.probePending = false
		}
		v.mu.Unlock()
		v.apply(m.Events, now, true)
	case *wire.ShuffleRequest:
		v.mu.Lock()
		if v.probePending && from == v.probeTarget {
			v.probePending = false // the target is probing us: direct evidence
		}
		v.mu.Unlock()
		v.apply(m.Entries, now, false)
		if v.host != nil {
			v.host.Send(from, &wire.ShuffleResponse{Entries: v.sample()})
		}
	case *wire.ShuffleResponse:
		v.mu.Lock()
		if v.probePending && from == v.probeTarget {
			v.probePending = false // the probe's ack: the target lives
		}
		v.mu.Unlock()
		v.apply(m.Entries, now, false)
	default:
		return false
	}
	return true
}

// TakeAccusation consumes the latched self-accusation flag. The core
// answers a true return with an incarnation bump plus an immediate
// refutation heartbeat (SWIM's alive-with-higher-incarnation).
func (v *View) TakeAccusation() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	accused := v.selfAccused
	v.selfAccused = false
	if accused {
		v.refutations++
	}
	return accused
}

// QueueSelfAlive queues a refutation rumor advertising self at the given
// (freshly bumped) sequence.
func (v *View) QueueSelfAlive(seq uint64) {
	v.mu.Lock()
	if seq > v.selfSeq {
		v.selfSeq = seq
	}
	v.queueRumor(wire.MemberEvent{Peer: v.cfg.Self, Seq: seq, Kind: wire.EventAlive})
	v.mu.Unlock()
}

// apply merges a batch of remote membership events into the view, in order.
// Conflicts resolve by SWIM's incarnation rule on the heartbeat sequence:
// alive at seq s beats suspect/dead at s' < s; suspect at s >= s' overrides
// alive at s'; dead at s >= s' overrides both and only a strictly fresher
// alive (a restarted incarnation) reverses it. News — any entry that
// changed local state — re-enters the rumor queue, which is what makes the
// spread epidemic; known or stale entries are absorbed silently, which is
// what makes it terminate.
//
// relay marks events that arrived as piggybacked rumors: those also
// re-enter the queue on a pure sequence refresh (no state change), so a
// refutation keeps spreading through nodes that never doubted the peer —
// without it the rumor dies exactly where the view is healthy, and the
// few views that did declare the peer dead may never see the fresher
// sequence that would revive them. Shuffle samples stay quiet on refresh:
// they carry every entry every few rounds, so relaying them would flood
// the queue with non-news.
func (v *View) apply(events []wire.MemberEvent, now time.Duration, relay bool) {
	var fired []transition
	v.mu.Lock()
	for _, e := range events {
		if e.Peer == v.cfg.Self {
			// Only explicit suspicions and death declarations are
			// accusations; unknown forward-compatibility kinds must stay
			// ignored (wire.MemberEventKind's contract), not trigger
			// incarnation bumps and refutation floods.
			accusing := e.Kind == wire.EventSuspect || e.Kind == wire.EventDead
			if accusing && e.Seq >= v.selfSeq {
				v.selfAccused = true
			}
			continue
		}
		if t, changed := v.applyOne(e, now, relay); changed {
			v.eventsApplied++
			if t.fire {
				fired = append(fired, t)
			}
		}
	}
	fn := v.onTransition
	v.mu.Unlock()
	if fn != nil {
		for _, t := range fired {
			fn(t.peer, t.alive)
		}
	}
}

// transition is one live/dead flip produced by applyOne, fired after the
// lock is released.
type transition struct {
	peer  wire.NodeID
	alive bool
	fire  bool
}

// applyOne merges one event. Caller holds mu. Returns the transition to
// fire (if any) and whether local state changed.
func (v *View) applyOne(e wire.MemberEvent, now time.Duration, relay bool) (transition, bool) {
	p := e.Peer
	i := v.idxOf(p)
	tracked := i >= 0
	var st status
	var seq uint64
	if tracked {
		st = v.status[i]
		seq = v.lastSeq[i]
	}
	switch e.Kind {
	case wire.EventAlive:
		if !tracked {
			i = v.track(p)
			v.lastSeq[i] = e.Seq
			v.lastSeen[i] = now
			v.status[i] = statusLive
			v.queueRumor(e)
			return transition{peer: p, alive: true, fire: true}, true
		}
		if e.Seq <= seq {
			return transition{}, false
		}
		v.lastSeq[i] = e.Seq
		v.lastSeen[i] = now
		switch st {
		case statusLive:
			// A pure freshness refresh: relay it only if it arrived as a
			// rumor (rumors exist because somebody's state changed — a
			// refutation must reach the views that believed the claim,
			// through the many views that never did).
			if relay {
				v.queueRumor(e)
			}
			return transition{}, true
		case statusSuspect:
			v.suspectAt[i] = 0
			v.status[i] = statusLive
			v.queueRumor(e) // a refutation others may still need
			return transition{}, true
		default: // statusDead: a restarted incarnation rejoined
			v.status[i] = statusLive
			v.queueRumor(e)
			return transition{peer: p, alive: true, fire: true}, true
		}
	case wire.EventSuspect:
		if !tracked {
			// Learning of a peer through its suspicion still grows the
			// view: the peer is a member, just one somebody could not
			// reach. It enters as a suspect (counted alive) and can be
			// refuted like any other.
			i = v.track(p)
			v.lastSeq[i] = e.Seq
			v.lastSeen[i] = now
			v.status[i] = statusSuspect
			v.suspectAt[i] = now
			v.queueRumor(e)
			return transition{peer: p, alive: true, fire: true}, true
		}
		if e.Seq < seq {
			// We hold fresher alive evidence: refute on the peer's behalf.
			if st == statusLive {
				v.queueRumor(wire.MemberEvent{Peer: p, Seq: seq, Kind: wire.EventAlive})
			}
			return transition{}, false
		}
		switch st {
		case statusLive:
			v.lastSeq[i] = e.Seq
			v.status[i] = statusSuspect
			v.suspectAt[i] = now
			v.queueRumor(e)
			return transition{}, true
		case statusSuspect:
			if e.Seq > seq {
				v.lastSeq[i] = e.Seq
				return transition{}, true
			}
			return transition{}, false
		default: // statusDead is final at this incarnation
			return transition{}, false
		}
	case wire.EventDead:
		if !tracked {
			// Record the death so a stale alive rumor cannot later insert
			// the peer as live, but fire no transition: the peer was never
			// in this view.
			i = v.track(p)
			v.lastSeq[i] = e.Seq
			v.lastSeen[i] = now
			v.status[i] = statusDead
			v.queueRumor(e)
			return transition{}, true
		}
		if e.Seq < seq {
			if st == statusLive {
				v.queueRumor(wire.MemberEvent{Peer: p, Seq: seq, Kind: wire.EventAlive})
			}
			return transition{}, false
		}
		if st == statusDead {
			return transition{}, false
		}
		v.lastSeq[i] = e.Seq
		v.suspectAt[i] = 0
		v.status[i] = statusDead
		v.queueRumor(e)
		return transition{peer: p, alive: false, fire: true}, true
	}
	return transition{}, false // unknown kind: forward-compatibility, ignore
}

// sample builds one shuffle payload: self at its current incarnation,
// followed by up to ShuffleSample-1 view entries selected by rotating a
// cursor through the tracked slice — consecutive shuffles systematically
// cover the whole view. Dead entries are included (spreading declared
// deaths is as important as spreading liveness).
func (v *View) sample() []wire.MemberEvent {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sampleLocked()
}

func (v *View) sampleLocked() []wire.MemberEvent {
	k := v.cfg.ShuffleSample - 1
	if k > len(v.tracked) {
		k = len(v.tracked)
	}
	out := make([]wire.MemberEvent, 0, k+1)
	out = append(out, wire.MemberEvent{Peer: v.cfg.Self, Seq: v.selfSeq, Kind: wire.EventAlive})
	if len(v.tracked) == 0 {
		return out
	}
	for i := 0; i < k; i++ {
		idx := v.shufCursor % len(v.tracked)
		p := v.tracked[idx]
		v.shufCursor = (v.shufCursor + 1) % len(v.tracked)
		ev := wire.MemberEvent{Peer: p, Seq: v.lastSeq[idx]}
		switch v.status[idx] {
		case statusSuspect:
			ev.Kind = wire.EventSuspect
		case statusDead:
			ev.Kind = wire.EventDead
		default:
			ev.Kind = wire.EventAlive
		}
		out = append(out, ev)
	}
	return out
}

// ShuffleTick runs one view-shuffle round: it picks one uniformly random
// peer currently believed alive and sends it a sample of the local view;
// the peer merges it and answers with its own. An empty view — the cold
// start before any heartbeat arrived — skips the round without touching
// the random stream, so the draw sequence depends only on how many rounds
// found a target.
//
// The exchange doubles as SWIM's failure-detector probe: the previous
// round's target drew a request, and if neither its response nor any other
// direct evidence arrived by now, the target becomes a suspect and its
// suspicion is gossiped — the peer can still refute by bumping its
// incarnation before SuspectTimeout declares it dead. One probe per node
// per round spreads the detection duty evenly: every peer is probed about
// once a round by the aggregate, no matter how large the organization.
func (v *View) ShuffleTick(now time.Duration) {
	if v.cfg.ShuffleInterval <= 0 || v.host == nil {
		return
	}
	v.mu.Lock()
	if v.probePending {
		v.probePending = false
		p := v.probeTarget
		if pi := v.idxOf(p); pi >= 0 && v.status[pi] == statusLive {
			v.status[pi] = statusSuspect
			v.suspectAt[pi] = now
			v.queueRumor(wire.MemberEvent{Peer: p, Seq: v.lastSeq[pi], Kind: wire.EventSuspect})
		}
	}
	alive := 0
	for i := range v.tracked {
		if v.aliveIdxLocked(i, now) {
			alive++
		}
	}
	if alive == 0 {
		v.mu.Unlock()
		return
	}
	idx := v.host.Rand().Intn(alive)
	var target wire.NodeID
	for i, p := range v.tracked {
		if !v.aliveIdxLocked(i, now) {
			continue
		}
		if idx == 0 {
			target = p
			break
		}
		idx--
	}
	v.probeTarget = target
	v.probePending = true
	req := &wire.ShuffleRequest{Entries: v.sampleLocked()}
	v.mu.Unlock()
	v.host.Send(target, req)
}
