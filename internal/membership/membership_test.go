package membership

import (
	"testing"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

func sec(n int) time.Duration { return time.Duration(n) * time.Second }

// legacyView builds a view with every SWIM knob off: the configuration the
// pre-extraction gossip.Membership behavior must survive bit for bit.
func legacyView(self wire.NodeID, expiration time.Duration) *View {
	return New(Config{Self: self, Expiration: expiration}, nil)
}

func TestObserveAndExpire(t *testing.T) {
	v := legacyView(0, sec(3))
	if v.Alive(1, sec(0)) {
		t.Fatal("unseen peer reported alive")
	}
	v.Observe(1, 1, sec(0))
	if !v.Alive(1, sec(3)) {
		t.Fatal("peer dead within the window")
	}
	if v.Alive(1, sec(4)) {
		t.Fatal("peer alive past expiration")
	}
	// A fresh heartbeat revives it.
	v.Observe(1, 2, sec(10))
	if !v.Alive(1, sec(12)) {
		t.Fatal("revived peer not alive")
	}
}

func TestIgnoresStaleHeartbeats(t *testing.T) {
	v := legacyView(0, sec(3))
	v.Observe(1, 5, sec(0))
	// A replayed older heartbeat arriving later must not extend liveness.
	v.Observe(1, 4, sec(2))
	v.Observe(1, 5, sec(2))
	if v.Alive(1, sec(4)) {
		t.Fatal("stale heartbeat extended liveness")
	}
}

func TestSelfAlwaysAlive(t *testing.T) {
	v := legacyView(7, sec(1))
	if !v.Alive(7, sec(100)) {
		t.Fatal("self not alive")
	}
	v.Observe(7, 1, sec(0)) // self-heartbeats are ignored
	live := v.Live(sec(100))
	if len(live) != 1 || live[0] != 7 {
		t.Fatalf("live = %v", live)
	}
}

func TestLeaderIsLowestLiveID(t *testing.T) {
	v := legacyView(5, sec(3))
	v.Observe(2, 1, sec(0))
	v.Observe(8, 1, sec(0))
	if got := v.Leader(sec(1)); got != 2 {
		t.Fatalf("leader = %v, want 2", got)
	}
	// Peer 2 expires: self (5) becomes the lowest live id.
	if got := v.Leader(sec(10)); got != 5 {
		t.Fatalf("leader after expiry = %v, want self (5)", got)
	}
	if !v.IsLeader(sec(10)) {
		t.Fatal("IsLeader disagrees with Leader")
	}
}

func TestLeaderMatchesLiveHead(t *testing.T) {
	// The allocation-free Leader scan must agree with Live's head for any
	// interleaving of observations and lapses.
	v := legacyView(5, sec(3))
	for _, p := range []wire.NodeID{9, 2, 7, 3, 11} {
		v.Observe(p, 1, sec(0))
	}
	v.Observe(2, 2, sec(5)) // only peer 2 refreshed; the rest lapse at 3s
	for _, now := range []time.Duration{sec(1), sec(4), sec(6), sec(9), sec(20)} {
		live := v.Live(now)
		if got := v.Leader(now); got != live[0] {
			t.Fatalf("at %v: Leader = %v, Live = %v", now, got, live)
		}
	}
}

func TestObserveReportsTransition(t *testing.T) {
	v := legacyView(0, sec(3))
	if !v.Observe(1, 1, sec(0)) {
		t.Fatal("first heartbeat not reported as a live transition")
	}
	if v.Observe(1, 2, sec(1)) {
		t.Fatal("refresh heartbeat reported as a transition")
	}
	if v.Observe(1, 2, sec(2)) {
		t.Fatal("stale heartbeat reported as a transition")
	}
	// The sweep flips it dead; the next heartbeat is a transition again.
	dead := v.Sweep(sec(10))
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Sweep = %v, want [1]", dead)
	}
	if got := v.Sweep(sec(11)); len(got) != 0 {
		t.Fatalf("second Sweep = %v, want none (already dead)", got)
	}
	if !v.Observe(1, 3, sec(12)) {
		t.Fatal("rejoin heartbeat not reported as a transition")
	}
}

func TestSweepReturnsSortedIDs(t *testing.T) {
	v := legacyView(0, sec(1))
	for _, id := range []wire.NodeID{9, 3, 7, 1} {
		v.Observe(id, 1, sec(0))
	}
	dead := v.Sweep(sec(5))
	want := []wire.NodeID{1, 3, 7, 9}
	if len(dead) != len(want) {
		t.Fatalf("Sweep = %v", dead)
	}
	for i := range want {
		if dead[i] != want[i] {
			t.Fatalf("Sweep order = %v, want %v", dead, want)
		}
	}
}

// TestAliveDeadAgreeInLapseWindow is the regression test for the predicate
// split the extraction fixed: the old implementation answered Alive from
// heartbeat timestamps but Dead from the last sweep's state, so in the
// window between a peer's lapse and the next sweep the peer was neither
// alive nor dead — the recovery plane kept targeting a peer the leader
// election had already written off. Both predicates now answer from the
// same definition at every instant, sweep or no sweep.
func TestAliveDeadAgreeInLapseWindow(t *testing.T) {
	v := legacyView(0, sec(3))
	v.Observe(1, 1, sec(0))

	// Inside the expiration window: alive, not dead.
	if !v.Alive(1, sec(2)) || v.Dead(1, sec(2)) {
		t.Fatal("tracked fresh peer must be alive and not dead")
	}

	// Lapsed, no sweep yet: the old code said !Alive && !Dead here.
	if v.Alive(1, sec(5)) {
		t.Fatal("lapsed peer reported alive")
	}
	if !v.Dead(1, sec(5)) {
		t.Fatal("lapsed peer not reported dead before the sweep (the legacy window bug)")
	}

	// The sweep must not change either answer, only emit the transition.
	dead := v.Sweep(sec(5))
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("Sweep = %v, want [1]", dead)
	}
	if v.Alive(1, sec(5)) || !v.Dead(1, sec(5)) {
		t.Fatal("sweep changed the predicate answers")
	}

	// Never-observed peers are neither alive nor dead at any time.
	if v.Alive(9, sec(5)) || v.Dead(9, sec(5)) {
		t.Fatal("never-observed peer must be neither alive nor dead")
	}
}

// --- suspicion lifecycle ---

func swimView(self wire.NodeID) *View {
	return swimViewHost(self, &stubHost{rng: sim.NewRand(1)})
}

func swimViewHost(self wire.NodeID, host Host) *View {
	return New(Config{
		Self:            self,
		Expiration:      sec(3),
		SuspectTimeout:  sec(4),
		PiggybackMax:    8,
		ShuffleInterval: sec(2),
	}, host)
}

// suspect puts peer into the suspect state through the public path: a
// gossiped suspicion at the peer's current incarnation.
func (v *View) suspectForTest(peer wire.NodeID, now time.Duration) {
	v.mu.Lock()
	var seq uint64
	if i := v.idxOf(peer); i >= 0 {
		seq = v.lastSeq[i]
	}
	v.mu.Unlock()
	v.apply([]wire.MemberEvent{{Peer: peer, Seq: seq, Kind: wire.EventSuspect}}, now, true)
}

func TestSilenceAloneDoesNotKillUnderSuspicion(t *testing.T) {
	// The scaling fix behind the suspect state: at n >= 1000 the heartbeat
	// fan-out is a sparse sample, so "I have not heard from X" carries no
	// information — a live peer must stay live through arbitrarily long
	// local silence until somebody's failed probe actually suspects it.
	v := swimView(0)
	v.Observe(1, 1, sec(0))
	for _, now := range []time.Duration{sec(10), sec(100), sec(1000)} {
		if got := v.Sweep(now); len(got) != 0 {
			t.Fatalf("silence killed a live peer at %v: %v", now, got)
		}
		if !v.Alive(1, now) {
			t.Fatalf("silent peer not alive at %v", now)
		}
	}
}

func TestSuspicionDelaysDeath(t *testing.T) {
	v := swimView(0)
	v.Observe(1, 1, sec(0))
	v.suspectForTest(1, sec(4))

	// Suspect: still alive, not dead.
	if !v.Alive(1, sec(4)) || v.Dead(1, sec(4)) {
		t.Fatal("suspect no longer counted alive")
	}
	if s := v.Stats(); s.Suspects != 1 {
		t.Fatalf("Suspects = %d, want 1", s.Suspects)
	}
	if got := v.Sweep(sec(7)); len(got) != 0 {
		t.Fatalf("suspect declared dead before the timeout: %v", got)
	}

	// Suspicion timeout without refutation -> dead.
	dead := v.Sweep(sec(9))
	if len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("suspect not declared dead after timeout: %v", dead)
	}
	if v.Alive(1, sec(9)) || !v.Dead(1, sec(9)) {
		t.Fatal("declared-dead suspect still alive")
	}
}

func TestRefutationClearsSuspicion(t *testing.T) {
	v := swimView(0)
	v.Observe(1, 1, sec(0))
	v.suspectForTest(1, sec(4))

	// A fresher heartbeat refutes the suspicion before the timeout.
	if v.Observe(1, 2, sec(6)) {
		t.Fatal("refutation misreported as a dead-to-live transition")
	}
	if got := v.Sweep(sec(8)); len(got) != 0 {
		t.Fatalf("refuted suspect still declared dead: %v", got)
	}
	if s := v.Stats(); s.Suspects != 0 || s.Live != 1 {
		t.Fatalf("after refutation: %+v", s)
	}

	// An equal-or-older sequence is not a refutation (SWIM's incarnation
	// rule): the suspicion must ride to its timeout.
	v.suspectForTest(1, sec(12))
	v.Observe(1, 2, sec(13))
	if dead := v.Sweep(sec(17)); len(dead) != 1 {
		t.Fatalf("stale heartbeat refuted a fresher suspicion: %v", dead)
	}
}

func TestSuspicionWithoutShufflingFallsBackToLapse(t *testing.T) {
	// With no prober to originate suspicions, heartbeat lapse must: a
	// crashed peer would otherwise stay live forever (and the recovery
	// plane would target it forever) in the suspicion-without-shuffle
	// configuration.
	v := New(Config{
		Self:           0,
		Expiration:     sec(3),
		SuspectTimeout: sec(4),
		PiggybackMax:   8,
	}, nil)
	v.Observe(1, 1, sec(0))
	if got := v.Sweep(sec(4)); len(got) != 0 {
		t.Fatalf("lapse killed immediately despite suspicion: %v", got)
	}
	if s := v.Stats(); s.Suspects != 1 {
		t.Fatalf("lapsed peer not suspected without shuffling: %+v", s)
	}
	if !v.Alive(1, sec(4)) {
		t.Fatal("suspect not counted alive")
	}
	// Refutable before the timeout, dead after it.
	v.Observe(1, 2, sec(5))
	if s := v.Stats(); s.Suspects != 0 || s.Live != 1 {
		t.Fatalf("refutation did not clear the lapse-suspicion: %+v", s)
	}
	v.Sweep(sec(10)) // lapses again -> suspect
	if dead := v.Sweep(sec(15)); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("unrefuted lapse-suspect not declared dead: %v", dead)
	}
}

func TestFailedProbeSuspects(t *testing.T) {
	host := &stubHost{rng: sim.NewRand(1)}
	v := swimViewHost(0, host)
	v.Observe(1, 1, sec(0))

	// Round 1: the shuffle probes peer 1 (the only candidate).
	v.ShuffleTick(sec(2))
	if len(host.msgs) != 1 || host.to[0] != 1 {
		t.Fatalf("probe did not target peer 1: to=%v msgs=%d", host.to, len(host.msgs))
	}
	// No response by round 2: peer 1 becomes a suspect, and the suspicion
	// is queued for piggybacked dissemination.
	v.ShuffleTick(sec(4))
	if s := v.Stats(); s.Suspects != 1 {
		t.Fatalf("failed probe did not suspect: %+v", s)
	}
	found := false
	for _, q := range v.queue {
		if q.ev.Peer == 1 && q.ev.Kind == wire.EventSuspect {
			found = true
		}
	}
	if !found {
		t.Fatal("failed probe queued no suspect rumor")
	}
	// The suspicion times out into a death.
	if dead := v.Sweep(sec(9)); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("suspect from failed probe not declared dead: %v", dead)
	}
}

func TestProbeAckPreventsSuspicion(t *testing.T) {
	host := &stubHost{rng: sim.NewRand(1)}
	v := swimViewHost(0, host)
	v.Observe(1, 1, sec(0))

	v.ShuffleTick(sec(2))
	// The target's response arrives before the next round (which issues a
	// fresh probe of its own).
	if !v.Handle(1, &wire.ShuffleResponse{}, sec(3)) {
		t.Fatal("response not handled")
	}
	v.ShuffleTick(sec(4))
	if s := v.Stats(); s.Suspects != 0 {
		t.Fatalf("acked probe still suspected: %+v", s)
	}

	// A request from the target is equally direct evidence for the probe
	// the second round just issued.
	v.Handle(1, &wire.ShuffleRequest{}, sec(5))
	v.ShuffleTick(sec(6))
	if s := v.Stats(); s.Suspects != 0 {
		t.Fatalf("target's own probe did not count as evidence: %+v", s)
	}

	// So is a piggybacked digest: the target is talking even if its
	// shuffle response was lost.
	v.Handle(1, &wire.MemberEvents{}, sec(7))
	v.ShuffleTick(sec(8))
	if s := v.Stats(); s.Suspects != 0 {
		t.Fatalf("target's digest did not count as evidence: %+v", s)
	}
}

func TestSwimKnobsDefaultSuspectTimeout(t *testing.T) {
	// Shuffle probes and piggybacked events put peers in the suspect
	// state, so enabling either must default SuspectTimeout: a zero
	// timeout would turn one lost shuffle reply into an instant death
	// while the time-based predicates still counted the peer alive.
	for _, cfg := range []Config{
		{Self: 0, Expiration: sec(5), ShuffleInterval: sec(2)},
		{Self: 0, Expiration: sec(5), PiggybackMax: 8},
		{Self: 0, ShuffleInterval: sec(2)}, // no expiration either: floor applies
	} {
		v := New(cfg, &stubHost{rng: sim.NewRand(1)})
		if v.Config().SuspectTimeout <= 0 {
			t.Fatalf("SuspectTimeout not defaulted for %+v", cfg)
		}
	}
	// Legacy stays legacy.
	if legacyView(0, sec(5)).Config().SuspectTimeout != 0 {
		t.Fatal("legacy configuration gained a suspect timeout")
	}
}

func TestUnknownEventKindAboutSelfIsNotAnAccusation(t *testing.T) {
	v := swimView(3)
	v.NoteSelfSeq(5)
	// Unknown forward-compatibility kinds are documented as ignored; they
	// must not trigger incarnation bumps and refutation floods.
	v.apply([]wire.MemberEvent{{Peer: 3, Seq: 9, Kind: wire.MemberEventKind(9)}}, sec(1), true)
	if v.TakeAccusation() {
		t.Fatal("unknown event kind latched a self-accusation")
	}
}

func TestSuspectEventAgainstSelfLatchesAccusation(t *testing.T) {
	v := swimView(3)
	v.NoteSelfSeq(5)
	v.apply([]wire.MemberEvent{{Peer: 3, Seq: 5, Kind: wire.EventSuspect}}, sec(1), true)
	if !v.TakeAccusation() {
		t.Fatal("suspicion at the current incarnation not latched")
	}
	if v.TakeAccusation() {
		t.Fatal("accusation not consumed")
	}
	// A stale accusation (below the current incarnation) is ignored.
	v.NoteSelfSeq(9)
	v.apply([]wire.MemberEvent{{Peer: 3, Seq: 7, Kind: wire.EventDead}}, sec(2), true)
	if v.TakeAccusation() {
		t.Fatal("stale accusation latched")
	}
}

func TestApplyEventLifecycle(t *testing.T) {
	var transitions []string
	v := swimView(0)
	v.OnTransition(func(p wire.NodeID, alive bool) {
		if alive {
			transitions = append(transitions, "live:"+p.String())
		} else {
			transitions = append(transitions, "dead:"+p.String())
		}
	})

	// Alive event about an unknown peer grows the view.
	v.apply([]wire.MemberEvent{{Peer: 4, Seq: 10, Kind: wire.EventAlive}}, sec(1), true)
	if !v.Alive(4, sec(1)) {
		t.Fatal("alive event did not admit the peer")
	}
	// Dead event at the same incarnation kills it.
	v.apply([]wire.MemberEvent{{Peer: 4, Seq: 10, Kind: wire.EventDead}}, sec(2), true)
	if !v.Dead(4, sec(2)) {
		t.Fatal("dead event ignored")
	}
	// Alive at the same incarnation must NOT resurrect (dead is final per
	// incarnation); a strictly fresher incarnation must.
	v.apply([]wire.MemberEvent{{Peer: 4, Seq: 10, Kind: wire.EventAlive}}, sec(3), true)
	if v.Alive(4, sec(3)) {
		t.Fatal("same-incarnation alive resurrected a declared death")
	}
	v.apply([]wire.MemberEvent{{Peer: 4, Seq: 11, Kind: wire.EventAlive}}, sec(4), true)
	if !v.Alive(4, sec(4)) {
		t.Fatal("fresher incarnation did not rejoin")
	}
	want := []string{"live:n4", "dead:n4", "live:n4"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// --- shuffle ---

// stubHost records sends for the shuffle/piggyback paths.
type stubHost struct {
	rng  *sim.Rand
	to   []wire.NodeID
	msgs []wire.Message
}

func (h *stubHost) Send(to wire.NodeID, msg wire.Message) {
	h.to = append(h.to, to)
	h.msgs = append(h.msgs, msg)
}

func (h *stubHost) Rand() *sim.Rand { return h.rng }

func TestShuffleExchangeMergesViews(t *testing.T) {
	hostA := &stubHost{rng: sim.NewRand(1)}
	a := New(Config{Self: 0, Expiration: sec(3), SuspectTimeout: sec(5),
		PiggybackMax: 8, ShuffleInterval: sec(1), ShuffleSample: 8}, hostA)
	hostB := &stubHost{rng: sim.NewRand(2)}
	b := New(Config{Self: 1, Expiration: sec(3), SuspectTimeout: sec(5),
		PiggybackMax: 8, ShuffleInterval: sec(1), ShuffleSample: 8}, hostB)

	// A knows peers 2,3; B knows peers 4,5. They know each other.
	a.Observe(1, 1, sec(0))
	a.Observe(2, 1, sec(0))
	a.Observe(3, 1, sec(0))
	b.Observe(0, 1, sec(0))
	b.Observe(4, 1, sec(0))
	b.Observe(5, 1, sec(0))

	a.ShuffleTick(sec(1))
	if len(hostA.msgs) != 1 {
		t.Fatalf("shuffle sent %d messages, want 1", len(hostA.msgs))
	}
	req := hostA.msgs[0].(*wire.ShuffleRequest)
	target := hostA.to[0]
	if target == 0 {
		t.Fatal("shuffled to self")
	}

	// Deliver to B (whatever the target, B processes it), B replies.
	if !b.Handle(0, req, sec(1)) {
		t.Fatal("shuffle request not handled")
	}
	resp, ok := hostB.msgs[len(hostB.msgs)-1].(*wire.ShuffleResponse)
	if !ok {
		t.Fatalf("reply = %T, want ShuffleResponse", hostB.msgs[len(hostB.msgs)-1])
	}
	if !a.Handle(1, resp, sec(1)) {
		t.Fatal("shuffle response not handled")
	}

	// B learned A's peers from the request; A learned B's from the reply.
	for _, p := range []wire.NodeID{2, 3} {
		if !b.Alive(p, sec(1)) {
			t.Fatalf("B did not learn peer %v from the shuffle", p)
		}
	}
	for _, p := range []wire.NodeID{4, 5} {
		if !a.Alive(p, sec(1)) {
			t.Fatalf("A did not learn peer %v from the shuffle", p)
		}
	}
}

func TestLegacyViewClaimsButDropsPayloads(t *testing.T) {
	// A legacy peer in a mixed organization: received membership payloads
	// belong to this subsystem (they must not fall through to a gossip
	// protocol), but their content is dropped — a suspicion applied into
	// a state machine with no configured timeouts would declare an
	// instant death contradicting the time-based predicates.
	host := &stubHost{rng: sim.NewRand(1)}
	v := New(Config{Self: 0, Expiration: sec(3)}, host)
	v.Observe(1, 1, sec(0))
	suspect := &wire.MemberEvents{Events: []wire.MemberEvent{
		{Peer: 1, Seq: 1, Kind: wire.EventSuspect},
	}}
	if !v.Handle(2, suspect, sec(1)) {
		t.Fatal("membership payload not claimed by a legacy view")
	}
	if s := v.Stats(); s.Suspects != 0 || s.Live != 1 {
		t.Fatalf("legacy view applied a dropped payload: %+v", s)
	}
	if dead := v.Sweep(sec(2)); len(dead) != 0 {
		t.Fatalf("dropped suspicion killed a fresh peer: %v", dead)
	}
	if v.Handle(2, &wire.ShuffleRequest{}, sec(1)); len(host.msgs) != 0 {
		t.Fatal("legacy view answered a shuffle")
	}
	if v.Handle(2, &wire.StateInfo{}, sec(1)) {
		t.Fatal("legacy view claimed a non-membership payload")
	}
	if !IsPayload(wire.TypeMemberEvents) || IsPayload(wire.TypeStateInfo) {
		t.Fatal("IsPayload misclassifies")
	}
}

func TestShuffleSkipsEmptyView(t *testing.T) {
	host := &stubHost{rng: sim.NewRand(1)}
	v := New(Config{Self: 0, Expiration: sec(3), ShuffleInterval: sec(1)}, host)
	v.ShuffleTick(sec(1))
	if len(host.msgs) != 0 {
		t.Fatal("empty view shuffled")
	}
}

func TestLiveIntoMatchesLive(t *testing.T) {
	v := legacyView(5, sec(3))
	for _, p := range []wire.NodeID{9, 2, 7} {
		v.Observe(p, 1, sec(0))
	}
	var buf []wire.NodeID
	for _, now := range []time.Duration{sec(0), sec(2), sec(5)} {
		want := v.Live(now)
		buf = v.LiveInto(buf, now)
		if len(buf) != len(want) {
			t.Fatalf("at %v: LiveInto = %v, Live = %v", now, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("at %v: LiveInto = %v, Live = %v", now, buf, want)
			}
		}
	}
}
