package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/wire"
)

// maxFrame bounds accepted frame sizes (a full block batch fits well
// within it; anything larger is a protocol violation).
const maxFrame = 256 << 20

// AddressBook resolves node ids to dialable addresses.
type AddressBook interface {
	Resolve(id wire.NodeID) (string, bool)
}

// StaticAddressBook is a fixed id -> address map.
type StaticAddressBook map[wire.NodeID]string

// Resolve implements AddressBook.
func (b StaticAddressBook) Resolve(id wire.NodeID) (string, bool) {
	addr, ok := b[id]
	return addr, ok
}

// TCPEndpoint implements Endpoint over real TCP connections with
// length-prefixed frames. Frame layout:
//
//	[4-byte big-endian length][4-byte big-endian sender id][wire message]
//
// Connections to a destination are created on first use and cached.
type TCPEndpoint struct {
	id      wire.NodeID
	book    AddressBook
	ln      net.Listener
	traffic *netmodel.Traffic
	start   time.Time
	// wobs, when set, must be backed by a concurrent registry: sends and
	// receives run on arbitrary connection goroutines.
	wobs *WireObs

	mu      sync.Mutex
	handler Handler
	conns   map[wire.NodeID]*sendConn
	// all tracks every live connection — dialed and accepted — so Close
	// can unblock their reader goroutines.
	all    map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

type sendConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// ListenTCP starts an endpoint listening on addr (e.g. "127.0.0.1:0").
// traffic may be nil.
func ListenTCP(id wire.NodeID, addr string, book AddressBook, traffic *netmodel.Traffic) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		id:      id,
		book:    book,
		ln:      ln,
		traffic: traffic,
		start:   time.Now(),
		conns:   make(map[wire.NodeID]*sendConn),
		all:     make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// SetObs attaches a wire observer. It must be backed by a concurrent
// registry (obs.NewConcurrentRegistry); call before any traffic flows.
func (ep *TCPEndpoint) SetObs(w *WireObs) { ep.wobs = w }

// Addr returns the listening address (useful with ":0").
func (ep *TCPEndpoint) Addr() string { return ep.ln.Addr().String() }

// ID implements Endpoint.
func (ep *TCPEndpoint) ID() wire.NodeID { return ep.id }

// SetHandler implements Endpoint.
func (ep *TCPEndpoint) SetHandler(h Handler) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.handler = h
}

func (ep *TCPEndpoint) currentHandler() Handler {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.handler
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("transport: endpoint closed")

// Send implements Endpoint.
func (ep *TCPEndpoint) Send(to wire.NodeID, msg wire.Message) error {
	sc, err := ep.connTo(to)
	if err != nil {
		return err
	}
	body := wire.Marshal(msg)
	frame := make([]byte, 8+len(body))
	binary.BigEndian.PutUint32(frame[0:4], uint32(4+len(body)))
	binary.BigEndian.PutUint32(frame[4:8], uint32(ep.id))
	copy(frame[8:], body)

	sc.mu.Lock()
	_, werr := sc.conn.Write(frame)
	sc.mu.Unlock()
	if werr != nil {
		// Connection went bad: forget it so the next send redials.
		ep.mu.Lock()
		if ep.conns[to] == sc {
			delete(ep.conns, to)
		}
		ep.mu.Unlock()
		_ = sc.conn.Close()
		return fmt.Errorf("transport: send to %v: %w", to, werr)
	}
	if ep.traffic != nil {
		ep.traffic.Record(ep.id, to, msg.Type(), len(frame), time.Since(ep.start))
	}
	if ep.wobs != nil {
		ep.wobs.Sent(time.Since(ep.start), ep.id, to, msg.Type(), len(frame))
	}
	return nil
}

func (ep *TCPEndpoint) connTo(to wire.NodeID) (*sendConn, error) {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil, ErrClosed
	}
	if sc, ok := ep.conns[to]; ok {
		ep.mu.Unlock()
		return sc, nil
	}
	ep.mu.Unlock()

	addr, ok := ep.book.Resolve(to)
	if !ok {
		return nil, fmt.Errorf("transport: no address for %v", to)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v (%s): %w", to, addr, err)
	}

	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		_ = conn.Close()
		return nil, ErrClosed
	}
	if sc, ok := ep.conns[to]; ok { // lost the race; keep the existing one
		_ = conn.Close()
		return sc, nil
	}
	sc := &sendConn{conn: conn}
	ep.conns[to] = sc
	ep.all[conn] = struct{}{}
	// Outbound connections also carry inbound frames (full duplex).
	ep.wg.Add(1)
	go ep.readLoop(conn)
	return sc, nil
}

func (ep *TCPEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.all[conn] = struct{}{}
		ep.wg.Add(1)
		ep.mu.Unlock()
		go ep.readLoop(conn)
	}
}

func (ep *TCPEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer func() {
		_ = conn.Close()
		ep.mu.Lock()
		delete(ep.all, conn)
		ep.mu.Unlock()
	}()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < 4 || n > maxFrame {
			return // protocol violation; drop the connection
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		from := wire.NodeID(binary.BigEndian.Uint32(payload[:4]))
		msg, err := wire.Unmarshal(payload[4:])
		if err != nil {
			return // corrupt frame; drop the connection
		}
		if h := ep.currentHandler(); h != nil {
			if ep.wobs != nil {
				ep.wobs.Received(time.Since(ep.start), from, ep.id, msg.Type(), 4+len(payload))
			}
			h(from, msg)
		}
	}
}

// Close shuts the endpoint down and waits for its goroutines to exit.
func (ep *TCPEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.conns = make(map[wire.NodeID]*sendConn)
	all := make([]net.Conn, 0, len(ep.all))
	for c := range ep.all {
		all = append(all, c)
	}
	ep.mu.Unlock()

	err := ep.ln.Close()
	for _, c := range all {
		_ = c.Close() // unblocks the reader goroutines
	}
	ep.wg.Wait()
	return err
}
