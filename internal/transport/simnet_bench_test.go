package transport

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// fastModel keeps delivery delays tiny so benchmarks and allocation probes
// drain the queue with short RunFor windows.
func fastModel() netmodel.Model {
	return netmodel.Model{PropMin: time.Microsecond, PropMax: 2 * time.Microsecond}
}

// A node that crashes while a message is in flight must swallow it: the
// pooled delivery path checks fault state at fire time, like the per-message
// closure it replaced.
func TestSimNetworkCrashWhileInFlightSwallowsDelivery(t *testing.T) {
	engine := sim.NewEngine(1)
	net := NewSimNetwork(engine, fastModel(), nil)
	src := net.AddNode()
	dst := net.AddNode()
	delivered := 0
	dst.SetHandler(func(wire.NodeID, wire.Message) { delivered++ })

	if err := src.Send(dst.ID(), &wire.StateInfo{Height: 1}); err != nil {
		t.Fatal(err)
	}
	net.SetNodeDown(dst.ID(), true) // crash after send, before delivery
	engine.RunFor(time.Second)
	if delivered != 0 {
		t.Fatalf("crashed node handled %d messages, want 0", delivered)
	}

	net.SetNodeDown(dst.ID(), false)
	if err := src.Send(dst.ID(), &wire.StateInfo{Height: 2}); err != nil {
		t.Fatal(err)
	}
	engine.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("revived node handled %d messages, want 1", delivered)
	}
}

// The steady-state send-and-deliver cycle must not allocate: pooled engine
// events, no capturing closure, dense traffic accounting.
func TestSimNetworkSendSteadyStateAllocationFree(t *testing.T) {
	engine := sim.NewEngine(1)
	tr := netmodel.NewSimTraffic(time.Hour) // one bucket for the whole probe
	net := NewSimNetwork(engine, fastModel(), tr)
	src := net.AddNode()
	dst := net.AddNode()
	dst.SetHandler(func(wire.NodeID, wire.Message) {})
	msg := &wire.StateInfo{Height: 7}
	cycle := func() {
		_ = src.Send(dst.ID(), msg)
		engine.RunFor(10 * time.Microsecond)
	}
	for i := 0; i < 200; i++ {
		cycle() // warm the event pool, queue capacity and traffic slots
	}
	if allocs := testing.AllocsPerRun(2000, cycle); allocs != 0 {
		t.Fatalf("steady-state send+deliver allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSimNetworkSend measures the full per-message transport path at
// steady state: traffic accounting, reachability and loss checks, delay
// draw, pooled scheduling and dispatch. Must report 0 allocs/op.
func BenchmarkSimNetworkSend(b *testing.B) {
	engine := sim.NewEngine(1)
	tr := netmodel.NewSimTraffic(10 * time.Second)
	net := NewSimNetwork(engine, netmodel.LAN(), tr)
	const n = 100
	eps := make([]*SimEndpoint, n)
	for i := range eps {
		eps[i] = net.AddNode()
		eps[i].SetHandler(func(wire.NodeID, wire.Message) {})
	}
	msg := &wire.StateInfo{Height: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eps[i%n].Send(eps[(i+1)%n].ID(), msg)
		if i%64 == 63 {
			engine.RunFor(time.Millisecond)
		}
	}
}
