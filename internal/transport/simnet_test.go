package transport

import (
	"testing"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

func fixedModel(d time.Duration) netmodel.Model {
	return netmodel.Model{PropMin: d, PropMax: d}
}

func TestSimNetworkDeliversWithModelDelay(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(5*time.Millisecond), nil)
	a, b := n.AddNode(), n.AddNode()
	if a.ID() != 0 || b.ID() != 1 || n.Size() != 2 {
		t.Fatalf("ids = %v, %v; size = %d", a.ID(), b.ID(), n.Size())
	}

	var gotFrom wire.NodeID
	var gotAt time.Duration
	var gotMsg wire.Message
	b.SetHandler(func(from wire.NodeID, msg wire.Message) {
		gotFrom, gotAt, gotMsg = from, e.Now(), msg
	})
	sent := &wire.StateInfo{Height: 7}
	if err := a.Send(b.ID(), sent); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if gotMsg != sent {
		t.Fatal("message not delivered (or copied)")
	}
	if gotFrom != a.ID() {
		t.Fatalf("from = %v, want %v", gotFrom, a.ID())
	}
	if gotAt != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", gotAt)
	}
}

func TestSimNetworkUnknownDestination(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a := n.AddNode()
	if err := a.Send(99, &wire.StateInfo{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestSimNetworkNoHandlerNoCrash(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	_ = b
	if err := a.Send(1, &wire.StateInfo{}); err != nil {
		t.Fatal(err)
	}
	e.Run() // handler nil: message silently discarded
}

func TestSimNetworkLinkFault(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	count := 0
	b.SetHandler(func(wire.NodeID, wire.Message) { count++ })

	n.SetLinkDown(a.ID(), b.ID(), true)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if count != 0 {
		t.Fatal("message crossed a down link")
	}
	n.SetLinkDown(a.ID(), b.ID(), false)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if count != 1 {
		t.Fatal("message lost after link restore")
	}
}

func TestSimNetworkNodeDown(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b, c := n.AddNode(), n.AddNode(), n.AddNode()
	var bGot, cGot int
	b.SetHandler(func(wire.NodeID, wire.Message) { bGot++ })
	c.SetHandler(func(wire.NodeID, wire.Message) { cGot++ })

	n.SetNodeDown(b.ID(), true)
	_ = a.Send(b.ID(), &wire.StateInfo{}) // inbound to down node: dropped
	_ = b.Send(c.ID(), &wire.StateInfo{}) // outbound from down node: dropped
	_ = a.Send(c.ID(), &wire.StateInfo{}) // unrelated: delivered
	e.Run()
	if bGot != 0 || cGot != 1 {
		t.Fatalf("bGot=%d cGot=%d, want 0 and 1", bGot, cGot)
	}
	n.SetNodeDown(b.ID(), false)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if bGot != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestSimNetworkDropRate(t *testing.T) {
	e := sim.NewEngine(42)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	got := 0
	b.SetHandler(func(wire.NodeID, wire.Message) { got++ })
	n.SetDropRate(0.5)
	const sent = 2000
	for i := 0; i < sent; i++ {
		_ = a.Send(b.ID(), &wire.StateInfo{})
	}
	e.Run()
	if got < sent/3 || got > 2*sent/3 {
		t.Fatalf("got %d of %d at drop rate 0.5", got, sent)
	}
}

func TestSimNetworkTrafficAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	tr := netmodel.NewTraffic(time.Second)
	n := NewSimNetwork(e, fixedModel(0), tr)
	a, b := n.AddNode(), n.AddNode()
	b.SetHandler(func(wire.NodeID, wire.Message) {})
	msg := &wire.StateInfo{Height: 1}
	_ = a.Send(b.ID(), msg)
	e.Run()
	if tr.CountOf(wire.TypeStateInfo) != 1 {
		t.Fatal("message not accounted")
	}
	if got := tr.TotalBytes(); got != uint64(msg.EncodedSize()) {
		t.Fatalf("accounted %d bytes, want %d", got, msg.EncodedSize())
	}
	// Dropped messages still consume sender bandwidth.
	n.SetLinkDown(a.ID(), b.ID(), true)
	_ = a.Send(b.ID(), msg)
	e.Run()
	if tr.CountOf(wire.TypeStateInfo) != 2 {
		t.Fatal("dropped message not accounted at sender")
	}
}

func TestSimNetworkDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine(7)
		n := NewSimNetwork(e, netmodel.LAN(), nil)
		a, b := n.AddNode(), n.AddNode()
		var at []time.Duration
		b.SetHandler(func(wire.NodeID, wire.Message) { at = append(at, e.Now()) })
		for i := 0; i < 50; i++ {
			_ = a.Send(b.ID(), &wire.StateInfo{Height: uint64(i)})
		}
		e.Run()
		return at
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}
