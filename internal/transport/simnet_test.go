package transport

import (
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

func fixedModel(d time.Duration) netmodel.Model {
	return netmodel.Model{PropMin: d, PropMax: d}
}

func TestSimNetworkDeliversWithModelDelay(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(5*time.Millisecond), nil)
	a, b := n.AddNode(), n.AddNode()
	if a.ID() != 0 || b.ID() != 1 || n.Size() != 2 {
		t.Fatalf("ids = %v, %v; size = %d", a.ID(), b.ID(), n.Size())
	}

	var gotFrom wire.NodeID
	var gotAt time.Duration
	var gotMsg wire.Message
	b.SetHandler(func(from wire.NodeID, msg wire.Message) {
		gotFrom, gotAt, gotMsg = from, e.Now(), msg
	})
	sent := &wire.StateInfo{Height: 7}
	if err := a.Send(b.ID(), sent); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if gotMsg != sent {
		t.Fatal("message not delivered (or copied)")
	}
	if gotFrom != a.ID() {
		t.Fatalf("from = %v, want %v", gotFrom, a.ID())
	}
	if gotAt != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", gotAt)
	}
}

func TestSimNetworkUnknownDestination(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a := n.AddNode()
	if err := a.Send(99, &wire.StateInfo{}); err == nil {
		t.Fatal("send to unknown node succeeded")
	}
}

func TestSimNetworkNoHandlerNoCrash(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	_ = b
	if err := a.Send(1, &wire.StateInfo{}); err != nil {
		t.Fatal(err)
	}
	e.Run() // handler nil: message silently discarded
}

func TestSimNetworkLinkFault(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	count := 0
	b.SetHandler(func(wire.NodeID, wire.Message) { count++ })

	n.SetLinkDown(a.ID(), b.ID(), true)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if count != 0 {
		t.Fatal("message crossed a down link")
	}
	n.SetLinkDown(a.ID(), b.ID(), false)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if count != 1 {
		t.Fatal("message lost after link restore")
	}
}

func TestSimNetworkNodeDown(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b, c := n.AddNode(), n.AddNode(), n.AddNode()
	var bGot, cGot int
	b.SetHandler(func(wire.NodeID, wire.Message) { bGot++ })
	c.SetHandler(func(wire.NodeID, wire.Message) { cGot++ })

	n.SetNodeDown(b.ID(), true)
	_ = a.Send(b.ID(), &wire.StateInfo{}) // inbound to down node: dropped
	_ = b.Send(c.ID(), &wire.StateInfo{}) // outbound from down node: dropped
	_ = a.Send(c.ID(), &wire.StateInfo{}) // unrelated: delivered
	e.Run()
	if bGot != 0 || cGot != 1 {
		t.Fatalf("bGot=%d cGot=%d, want 0 and 1", bGot, cGot)
	}
	n.SetNodeDown(b.ID(), false)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if bGot != 1 {
		t.Fatal("revived node did not receive")
	}
}

func TestSimNetworkDropRate(t *testing.T) {
	e := sim.NewEngine(42)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	got := 0
	b.SetHandler(func(wire.NodeID, wire.Message) { got++ })
	n.SetDropRate(0.5)
	const sent = 2000
	for i := 0; i < sent; i++ {
		_ = a.Send(b.ID(), &wire.StateInfo{})
	}
	e.Run()
	if got < sent/3 || got > 2*sent/3 {
		t.Fatalf("got %d of %d at drop rate 0.5", got, sent)
	}
}

func TestSimNetworkLossExemptTypeAlwaysDelivered(t *testing.T) {
	e := sim.NewEngine(42)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b := n.AddNode(), n.AddNode()
	var infos, delivers int
	b.SetHandler(func(_ wire.NodeID, msg wire.Message) {
		switch msg.(type) {
		case *wire.StateInfo:
			infos++
		case *wire.DeliverBlock:
			delivers++
		}
	})
	n.SetDropRate(0.5)
	n.SetLossExempt(wire.TypeDeliverBlock, true)
	for i := 0; i < 200; i++ {
		_ = a.Send(b.ID(), &wire.StateInfo{})
		_ = a.Send(b.ID(), &wire.DeliverBlock{Block: &ledger.Block{Num: uint64(i)}})
	}
	e.Run()
	if delivers != 200 {
		t.Fatalf("exempt type delivered %d of 200", delivers)
	}
	if infos == 200 || infos == 0 {
		t.Fatalf("non-exempt type delivered %d of 200 at drop rate 0.5", infos)
	}
	// Exemption does not bypass a crashed destination.
	n.SetNodeDown(b.ID(), true)
	_ = a.Send(b.ID(), &wire.DeliverBlock{Block: &ledger.Block{Num: 0}})
	e.Run()
	if delivers != 200 {
		t.Fatal("exempt message reached a crashed node")
	}
}

func TestSimNetworkTrafficAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	tr := netmodel.NewTraffic(time.Second)
	n := NewSimNetwork(e, fixedModel(0), tr)
	a, b := n.AddNode(), n.AddNode()
	b.SetHandler(func(wire.NodeID, wire.Message) {})
	msg := &wire.StateInfo{Height: 1}
	_ = a.Send(b.ID(), msg)
	e.Run()
	if tr.CountOf(wire.TypeStateInfo) != 1 {
		t.Fatal("message not accounted")
	}
	if got := tr.TotalBytes(); got != uint64(msg.EncodedSize()) {
		t.Fatalf("accounted %d bytes, want %d", got, msg.EncodedSize())
	}
	// Dropped messages still consume sender bandwidth.
	n.SetLinkDown(a.ID(), b.ID(), true)
	_ = a.Send(b.ID(), msg)
	e.Run()
	if tr.CountOf(wire.TypeStateInfo) != 2 {
		t.Fatal("dropped message not accounted at sender")
	}
}

func TestSimNetworkPartitionAndHeal(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	eps := make([]*SimEndpoint, 4)
	got := make([]int, 4)
	for i := range eps {
		eps[i] = n.AddNode()
		i := i
		eps[i].SetHandler(func(wire.NodeID, wire.Message) { got[i]++ })
	}
	// Split {0,1} | {2,3}: traffic within a side flows, across is dropped.
	n.Partition([]wire.NodeID{0, 1}, []wire.NodeID{2, 3})
	_ = eps[0].Send(1, &wire.StateInfo{})
	_ = eps[0].Send(2, &wire.StateInfo{})
	_ = eps[3].Send(2, &wire.StateInfo{})
	_ = eps[3].Send(1, &wire.StateInfo{})
	e.Run()
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("intra-partition traffic lost: got = %v", got)
	}
	if got[0] != 0 || got[3] != 0 {
		t.Fatalf("unexpected deliveries: got = %v", got)
	}
	n.Heal()
	_ = eps[0].Send(2, &wire.StateInfo{})
	e.Run()
	if got[2] != 2 {
		t.Fatal("healed partition still dropping")
	}
}

func TestSimNetworkPartitionUnlistedNodesJoinGroupZero(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(0), nil)
	a, b, c := n.AddNode(), n.AddNode(), n.AddNode()
	var aGot, cGot int
	a.SetHandler(func(wire.NodeID, wire.Message) { aGot++ })
	c.SetHandler(func(wire.NodeID, wire.Message) { cGot++ })
	// Only node 1 is exiled; node 2 is unlisted and stays with group 0.
	n.Partition([]wire.NodeID{0}, []wire.NodeID{1})
	_ = c.Send(a.ID(), &wire.StateInfo{}) // unlisted -> group 0: delivered
	_ = b.Send(c.ID(), &wire.StateInfo{}) // group 1 -> group 0: dropped
	e.Run()
	if aGot != 1 || cGot != 0 {
		t.Fatalf("aGot=%d cGot=%d, want 1 and 0", aGot, cGot)
	}
}

func TestSimNetworkLinkAndNodeExtraDelay(t *testing.T) {
	e := sim.NewEngine(1)
	n := NewSimNetwork(e, fixedModel(time.Millisecond), nil)
	a, b := n.AddNode(), n.AddNode()
	var at []time.Duration
	b.SetHandler(func(wire.NodeID, wire.Message) { at = append(at, e.Now()) })

	n.SetLinkExtraDelay(a.ID(), b.ID(), 10*time.Millisecond)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if len(at) != 1 || at[0] != 11*time.Millisecond {
		t.Fatalf("link-delayed delivery at %v, want 11ms", at)
	}
	// Node delay stacks on both endpoints and on the link override.
	n.SetNodeExtraDelay(b.ID(), 5*time.Millisecond)
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if at[1]-at[0] != 16*time.Millisecond {
		t.Fatalf("node+link delay delivered after %v, want 16ms", at[1]-at[0])
	}
	// Clearing both restores the base model.
	n.SetLinkExtraDelay(a.ID(), b.ID(), 0)
	n.SetNodeExtraDelay(b.ID(), 0)
	start := e.Now()
	_ = a.Send(b.ID(), &wire.StateInfo{})
	e.Run()
	if at[2]-start != time.Millisecond {
		t.Fatalf("cleared overrides delivered after %v, want 1ms", at[2]-start)
	}
}

func TestSimNetworkDeterminism(t *testing.T) {
	run := func() []time.Duration {
		e := sim.NewEngine(7)
		n := NewSimNetwork(e, netmodel.LAN(), nil)
		a, b := n.AddNode(), n.AddNode()
		var at []time.Duration
		b.SetHandler(func(wire.NodeID, wire.Message) { at = append(at, e.Now()) })
		for i := 0; i < 50; i++ {
			_ = a.Send(b.ID(), &wire.StateInfo{Height: uint64(i)})
		}
		e.Run()
		return at
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("delivery %d differs: %v vs %v", i, x[i], y[i])
		}
	}
}
