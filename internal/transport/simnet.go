package transport

import (
	"fmt"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// SimNetwork is the discrete-event implementation of the transport. It is
// driven by a sim.Engine and must only be used from engine callbacks (the
// engine is single-threaded).
type SimNetwork struct {
	engine  *sim.Engine
	model   netmodel.Model
	traffic *netmodel.Traffic
	rng     *sim.Rand

	nodes    []*SimEndpoint
	downLink map[[2]wire.NodeID]bool
	dropRate float64
	// DownNode silences a node entirely (crash-style fault).
	downNode map[wire.NodeID]bool
	// partition maps each node to a partition group; messages crossing
	// group boundaries are dropped. nil means no partition is active.
	partition map[wire.NodeID]int
	// linkExtra/nodeExtra add latency on top of the network model
	// (slow-link and straggler-node faults, single WAN segments).
	linkExtra map[[2]wire.NodeID]time.Duration
	nodeExtra map[wire.NodeID]time.Duration
	// sites/siteDelay model WAN separation without per-link state: every
	// node belongs to a site (dense-id indexed; default site 0), and a
	// message crossing a site boundary pays siteDelay extra one-way
	// latency. An O(1) array compare per send instead of the O(n^2) link
	// override map a full WAN mesh would need.
	sites     []int
	siteDelay time.Duration
	// lossExempt message types skip the uniform drop rate: they model
	// reliable streams (e.g. the ordering service's delivery gRPC) whose
	// retransmissions mask transient loss. Partitions and crashed nodes
	// still cut them.
	lossExempt map[wire.MsgType]bool

	// deliverFn is the deliver method bound once at construction so that
	// per-message scheduling through sim.Engine.AfterMsg captures nothing.
	deliverFn sim.DeliveryHandler
}

// NewSimNetwork creates a simulated network. traffic may be nil to skip
// accounting.
func NewSimNetwork(engine *sim.Engine, model netmodel.Model, traffic *netmodel.Traffic) *SimNetwork {
	n := &SimNetwork{
		engine:    engine,
		model:     model,
		traffic:   traffic,
		rng:       engine.Rand("transport"),
		downLink:  make(map[[2]wire.NodeID]bool),
		downNode:  make(map[wire.NodeID]bool),
		linkExtra: make(map[[2]wire.NodeID]time.Duration),
		nodeExtra: make(map[wire.NodeID]time.Duration),
	}
	n.deliverFn = n.deliver
	return n
}

// AddNode attaches a new endpoint and returns it. IDs are assigned densely
// from 0 in creation order.
func (n *SimNetwork) AddNode() *SimEndpoint {
	ep := &SimEndpoint{net: n, id: wire.NodeID(len(n.nodes))}
	n.nodes = append(n.nodes, ep)
	return ep
}

// Size returns the number of attached endpoints.
func (n *SimNetwork) Size() int { return len(n.nodes) }

// Engine returns the driving engine.
func (n *SimNetwork) Engine() *sim.Engine { return n.engine }

// SetLinkDown cuts (or restores) the directed link from -> to.
func (n *SimNetwork) SetLinkDown(from, to wire.NodeID, down bool) {
	if down {
		n.downLink[[2]wire.NodeID{from, to}] = true
	} else {
		delete(n.downLink, [2]wire.NodeID{from, to})
	}
}

// SetNodeDown crashes (or revives) a node: all its inbound and outbound
// messages are dropped.
func (n *SimNetwork) SetNodeDown(id wire.NodeID, down bool) {
	if down {
		n.downNode[id] = true
	} else {
		delete(n.downNode, id)
	}
}

// SetDropRate installs a uniform message loss probability in [0, 1).
func (n *SimNetwork) SetDropRate(p float64) { n.dropRate = p }

// SetLossExempt marks (or unmarks) a message type as exempt from the
// uniform drop rate, modelling a reliable transport underneath it. Node
// crashes, link cuts and partitions still drop exempt messages.
func (n *SimNetwork) SetLossExempt(mt wire.MsgType, exempt bool) {
	if n.lossExempt == nil {
		n.lossExempt = make(map[wire.MsgType]bool)
	}
	n.lossExempt[mt] = exempt
}

// Partition splits the network: each listed group can only talk within
// itself. Nodes absent from every group join group 0. A nil or single-group
// argument heals any active partition.
func (n *SimNetwork) Partition(groups ...[]wire.NodeID) {
	if len(groups) <= 1 {
		n.partition = nil
		return
	}
	n.partition = make(map[wire.NodeID]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.partition[id] = g
		}
	}
}

// Heal removes any active partition. Link/node down states and latency
// overrides are independent and stay in place.
func (n *SimNetwork) Heal() { n.partition = nil }

// SetLinkExtraDelay adds d of one-way latency to the directed link
// from -> to, on top of the network model. d <= 0 removes the override.
func (n *SimNetwork) SetLinkExtraDelay(from, to wire.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.linkExtra, [2]wire.NodeID{from, to})
	} else {
		n.linkExtra[[2]wire.NodeID{from, to}] = d
	}
}

// SetNodeExtraDelay adds d of one-way latency to every message entering or
// leaving the node (a straggler host or a WAN-attached peer). d <= 0
// removes the override.
func (n *SimNetwork) SetNodeExtraDelay(id wire.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.nodeExtra, id)
	} else {
		n.nodeExtra[id] = d
	}
}

// SetNodeSite assigns the node to a WAN site. Nodes default to site 0;
// messages between different sites pay the SetSiteDelay latency.
func (n *SimNetwork) SetNodeSite(id wire.NodeID, site int) {
	for len(n.sites) <= int(id) {
		n.sites = append(n.sites, 0)
	}
	n.sites[id] = site
}

// SetSiteDelay sets the extra one-way latency every message crossing a
// site boundary pays. d <= 0 disables site-based delays.
func (n *SimNetwork) SetSiteDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.siteDelay = d
}

// siteOf returns the node's WAN site (default 0).
func (n *SimNetwork) siteOf(id wire.NodeID) int {
	if int(id) < len(n.sites) {
		return n.sites[id]
	}
	return 0
}

// Reachable reports whether a message from -> to would currently be
// delivered, ignoring probabilistic loss: the destination exists, neither
// endpoint is down, the link is up and no partition separates them.
func (n *SimNetwork) Reachable(from, to wire.NodeID) bool {
	if int(to) >= len(n.nodes) {
		return false
	}
	if n.downNode[from] || n.downNode[to] || n.downLink[[2]wire.NodeID{from, to}] {
		return false
	}
	if n.partition != nil && n.partition[from] != n.partition[to] {
		return false
	}
	return true
}

// send accounts, filters and schedules one message. The steady-state path
// is allocation-free: delivery goes through the engine's pooled AfterMsg
// events via the pre-bound deliverFn, and the common no-overrides case
// skips the linkExtra/nodeExtra lookups entirely.
func (n *SimNetwork) send(from, to wire.NodeID, msg wire.Message) error {
	if int(to) >= len(n.nodes) {
		return fmt.Errorf("transport: unknown destination %v", to)
	}
	size := msg.EncodedSize()
	// Bytes leave the sender's NIC whether or not they arrive.
	if n.traffic != nil {
		n.traffic.Record(from, to, msg.Type(), size, n.engine.Now())
	}
	if !n.Reachable(from, to) {
		return nil // silently lost: crashed endpoint, cut link or partition
	}
	if n.dropRate > 0 && !n.lossExempt[msg.Type()] && n.rng.Float64() < n.dropRate {
		return nil
	}
	delay := n.model.Delay(n.rng, size)
	if len(n.linkExtra) > 0 {
		delay += n.linkExtra[[2]wire.NodeID{from, to}]
	}
	if len(n.nodeExtra) > 0 {
		delay += n.nodeExtra[from] + n.nodeExtra[to]
	}
	if n.siteDelay > 0 && n.siteOf(from) != n.siteOf(to) {
		delay += n.siteDelay
	}
	n.engine.AfterMsg(delay, n.deliverFn, uint64(from), uint64(to), msg)
	return nil
}

// deliver is the AfterMsg handler behind every in-flight message. Fault
// state is checked at fire time, exactly as the per-message closure used
// to: a node crashed while the message was in flight still swallows it.
func (n *SimNetwork) deliver(from, to uint64, msg any) {
	dst := n.nodes[to]
	if h := dst.handler; h != nil && !n.downNode[dst.id] {
		h(wire.NodeID(from), msg.(wire.Message))
	}
}

// SimEndpoint implements Endpoint on a SimNetwork.
type SimEndpoint struct {
	net     *SimNetwork
	id      wire.NodeID
	handler Handler
}

// ID implements Endpoint.
func (ep *SimEndpoint) ID() wire.NodeID { return ep.id }

// SetHandler implements Endpoint.
func (ep *SimEndpoint) SetHandler(h Handler) { ep.handler = h }

// Send implements Endpoint.
func (ep *SimEndpoint) Send(to wire.NodeID, msg wire.Message) error {
	return ep.net.send(ep.id, to, msg)
}
