package transport

import (
	"fmt"
	"time"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// SimNetwork is the discrete-event implementation of the transport. It is
// driven by a sim.Engine and must only be used from engine callbacks (the
// engine is single-threaded).
type SimNetwork struct {
	engine  *sim.Engine
	model   netmodel.Model
	traffic *netmodel.Traffic
	rng     *sim.Rand

	nodes    []*SimEndpoint
	downLink map[[2]wire.NodeID]bool
	dropRate float64
	// DownNode silences a node entirely (crash-style fault).
	downNode map[wire.NodeID]bool
	// partition maps each node to a partition group; messages crossing
	// group boundaries are dropped. nil means no partition is active.
	partition map[wire.NodeID]int
	// linkExtra/nodeExtra add latency on top of the network model
	// (slow-link and straggler-node faults, single WAN segments).
	linkExtra map[[2]wire.NodeID]time.Duration
	nodeExtra map[wire.NodeID]time.Duration
	// sites/siteDelay model WAN separation without per-link state: every
	// node belongs to a site (dense-id indexed; default site 0), and a
	// message crossing a site boundary pays siteDelay extra one-way
	// latency. An O(1) array compare per send instead of the O(n^2) link
	// override map a full WAN mesh would need.
	sites     []int
	siteDelay time.Duration
	// lossExempt message types skip the uniform drop rate: they model
	// reliable streams (e.g. the ordering service's delivery gRPC) whose
	// retransmissions mask transient loss. Partitions and crashed nodes
	// still cut them.
	lossExempt map[wire.MsgType]bool

	// deliverFn is the deliver method bound once at construction so that
	// per-message scheduling through sim.Engine.AfterMsg captures nothing.
	deliverFn sim.DeliveryHandler

	// Sharded mode (EnableSharding): each send runs on the *sender's* shard
	// engine — its clock, its "transport" random stream, its traffic
	// accountant — and same-shard deliveries schedule directly while
	// cross-shard ones go through the coordinator's inboxes. The fault maps
	// above are then written only at window barriers (every shard
	// quiescent) and read concurrently during windows, which is safe
	// without locks.
	se           *sim.ShardedEngine
	shardOf      []int // dense by NodeID; -1 = unassigned
	shardEng     []*sim.Engine
	shardRng     []*sim.Rand
	shardTraffic []*netmodel.Traffic

	// wobs, when set, observes every message at the NIC: index 0
	// sequentially, the sender's/receiver's shard index in sharded mode.
	// Like the traffic accountants, each entry is written only by its own
	// shard's goroutine.
	wobs []*WireObs
}

// NewSimNetwork creates a simulated network. traffic may be nil to skip
// accounting.
func NewSimNetwork(engine *sim.Engine, model netmodel.Model, traffic *netmodel.Traffic) *SimNetwork {
	n := &SimNetwork{
		engine:    engine,
		model:     model,
		traffic:   traffic,
		rng:       engine.Rand("transport"),
		downLink:  make(map[[2]wire.NodeID]bool),
		downNode:  make(map[wire.NodeID]bool),
		linkExtra: make(map[[2]wire.NodeID]time.Duration),
		nodeExtra: make(map[wire.NodeID]time.Duration),
	}
	n.deliverFn = n.deliver
	return n
}

// AddNode attaches a new endpoint and returns it. IDs are assigned densely
// from 0 in creation order.
func (n *SimNetwork) AddNode() *SimEndpoint {
	ep := &SimEndpoint{net: n, id: wire.NodeID(len(n.nodes))}
	n.nodes = append(n.nodes, ep)
	return ep
}

// Size returns the number of attached endpoints.
func (n *SimNetwork) Size() int { return len(n.nodes) }

// EnableSharding switches the network into sharded mode: sends draw delays
// from the sender's shard engine and record into the shard's traffic
// accountant (one per shard, merged for reporting), and deliveries crossing
// a shard boundary are routed through the coordinator's conservative
// inboxes. Every node must subsequently be assigned a shard with
// SetNodeShard. traffics must have one accountant per shard (or be nil to
// skip accounting).
func (n *SimNetwork) EnableSharding(se *sim.ShardedEngine, traffics []*netmodel.Traffic) {
	if traffics != nil && len(traffics) != se.NumShards() {
		panic(fmt.Sprintf("transport: %d traffic accountants for %d shards", len(traffics), se.NumShards()))
	}
	n.se = se
	n.shardTraffic = traffics
	n.shardEng = make([]*sim.Engine, se.NumShards())
	n.shardRng = make([]*sim.Rand, se.NumShards())
	for i := range n.shardEng {
		n.shardEng[i] = se.Shard(i)
		n.shardRng[i] = se.Shard(i).Rand("transport")
	}
}

// SetObs attaches per-context wire observers: one entry sequentially,
// one per shard in sharded mode (call after EnableSharding). nil detaches.
func (n *SimNetwork) SetObs(wobs []*WireObs) {
	if wobs != nil {
		want := 1
		if n.se != nil {
			want = n.se.NumShards()
		}
		if len(wobs) != want {
			panic(fmt.Sprintf("transport: %d wire observers for %d contexts", len(wobs), want))
		}
	}
	n.wobs = wobs
}

// SetNodeShard assigns the node to a shard (sharded mode only). Sends from
// or to an unassigned node panic: silently guessing a shard would let a
// message bypass the conservative synchronization.
func (n *SimNetwork) SetNodeShard(id wire.NodeID, shard int) {
	for len(n.shardOf) <= int(id) {
		n.shardOf = append(n.shardOf, -1)
	}
	n.shardOf[id] = shard
}

// shardOfNode returns the node's shard, panicking on unassigned nodes.
func (n *SimNetwork) shardOfNode(id wire.NodeID) int {
	if int(id) < len(n.shardOf) {
		if s := n.shardOf[id]; s >= 0 {
			return s
		}
	}
	panic(fmt.Sprintf("transport: node %v has no shard assignment", id))
}

// Engine returns the driving engine.
func (n *SimNetwork) Engine() *sim.Engine { return n.engine }

// SetLinkDown cuts (or restores) the directed link from -> to.
func (n *SimNetwork) SetLinkDown(from, to wire.NodeID, down bool) {
	if down {
		n.downLink[[2]wire.NodeID{from, to}] = true
	} else {
		delete(n.downLink, [2]wire.NodeID{from, to})
	}
}

// SetNodeDown crashes (or revives) a node: all its inbound and outbound
// messages are dropped.
func (n *SimNetwork) SetNodeDown(id wire.NodeID, down bool) {
	if down {
		n.downNode[id] = true
	} else {
		delete(n.downNode, id)
	}
}

// SetDropRate installs a uniform message loss probability in [0, 1).
func (n *SimNetwork) SetDropRate(p float64) { n.dropRate = p }

// SetLossExempt marks (or unmarks) a message type as exempt from the
// uniform drop rate, modelling a reliable transport underneath it. Node
// crashes, link cuts and partitions still drop exempt messages.
func (n *SimNetwork) SetLossExempt(mt wire.MsgType, exempt bool) {
	if n.lossExempt == nil {
		n.lossExempt = make(map[wire.MsgType]bool)
	}
	n.lossExempt[mt] = exempt
}

// Partition splits the network: each listed group can only talk within
// itself. Nodes absent from every group join group 0. A nil or single-group
// argument heals any active partition.
func (n *SimNetwork) Partition(groups ...[]wire.NodeID) {
	if len(groups) <= 1 {
		n.partition = nil
		return
	}
	n.partition = make(map[wire.NodeID]int)
	for g, ids := range groups {
		for _, id := range ids {
			n.partition[id] = g
		}
	}
}

// Heal removes any active partition. Link/node down states and latency
// overrides are independent and stay in place.
func (n *SimNetwork) Heal() { n.partition = nil }

// SetLinkExtraDelay adds d of one-way latency to the directed link
// from -> to, on top of the network model. d <= 0 removes the override.
func (n *SimNetwork) SetLinkExtraDelay(from, to wire.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.linkExtra, [2]wire.NodeID{from, to})
	} else {
		n.linkExtra[[2]wire.NodeID{from, to}] = d
	}
}

// SetNodeExtraDelay adds d of one-way latency to every message entering or
// leaving the node (a straggler host or a WAN-attached peer). d <= 0
// removes the override.
func (n *SimNetwork) SetNodeExtraDelay(id wire.NodeID, d time.Duration) {
	if d <= 0 {
		delete(n.nodeExtra, id)
	} else {
		n.nodeExtra[id] = d
	}
}

// SetNodeSite assigns the node to a WAN site. Nodes default to site 0;
// messages between different sites pay the SetSiteDelay latency.
func (n *SimNetwork) SetNodeSite(id wire.NodeID, site int) {
	for len(n.sites) <= int(id) {
		n.sites = append(n.sites, 0)
	}
	n.sites[id] = site
}

// SetSiteDelay sets the extra one-way latency every message crossing a
// site boundary pays. d <= 0 disables site-based delays.
func (n *SimNetwork) SetSiteDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n.siteDelay = d
}

// siteOf returns the node's WAN site (default 0).
func (n *SimNetwork) siteOf(id wire.NodeID) int {
	if int(id) < len(n.sites) {
		return n.sites[id]
	}
	return 0
}

// Reachable reports whether a message from -> to would currently be
// delivered, ignoring probabilistic loss: the destination exists, neither
// endpoint is down, the link is up and no partition separates them.
func (n *SimNetwork) Reachable(from, to wire.NodeID) bool {
	if int(to) >= len(n.nodes) {
		return false
	}
	if n.downNode[from] || n.downNode[to] || n.downLink[[2]wire.NodeID{from, to}] {
		return false
	}
	if n.partition != nil && n.partition[from] != n.partition[to] {
		return false
	}
	return true
}

// send accounts, filters and schedules one message. The steady-state path
// is allocation-free: delivery goes through the engine's pooled AfterMsg
// events via the pre-bound deliverFn, and the common no-overrides case
// skips the linkExtra/nodeExtra lookups entirely.
func (n *SimNetwork) send(from, to wire.NodeID, msg wire.Message) error {
	if n.se != nil {
		return n.sendSharded(from, to, msg)
	}
	if int(to) >= len(n.nodes) {
		releaseMsg(msg)
		return fmt.Errorf("transport: unknown destination %v", to)
	}
	size := msg.EncodedSize()
	// Bytes leave the sender's NIC whether or not they arrive.
	if n.traffic != nil {
		n.traffic.Record(from, to, msg.Type(), size, n.engine.Now())
	}
	if n.wobs != nil {
		n.wobs[0].Sent(n.engine.Now(), from, to, msg.Type(), size)
	}
	if !n.Reachable(from, to) {
		releaseMsg(msg)
		return nil // silently lost: crashed endpoint, cut link or partition
	}
	if n.dropRate > 0 && !n.lossExempt[msg.Type()] && n.rng.Float64() < n.dropRate {
		releaseMsg(msg)
		return nil
	}
	delay := n.model.Delay(n.rng, size)
	if len(n.linkExtra) > 0 {
		delay += n.linkExtra[[2]wire.NodeID{from, to}]
	}
	if len(n.nodeExtra) > 0 {
		delay += n.nodeExtra[from] + n.nodeExtra[to]
	}
	if n.siteDelay > 0 && n.siteOf(from) != n.siteOf(to) {
		delay += n.siteDelay
	}
	n.engine.AfterMsg(delay, n.deliverFn, uint64(from), uint64(to), msg)
	return nil
}

// sendSharded is send on the sharded runtime: the sender's shard engine
// provides the clock and randomness, and cross-shard deliveries detour
// through the coordinator so they become visible only at window barriers.
// The per-shard network model is identical, so a cross-shard hop costs the
// same simulated latency it would sequentially.
func (n *SimNetwork) sendSharded(from, to wire.NodeID, msg wire.Message) error {
	src := n.shardOfNode(from)
	eng, rng := n.shardEng[src], n.shardRng[src]
	if int(to) >= len(n.nodes) {
		releaseMsg(msg)
		return fmt.Errorf("transport: unknown destination %v", to)
	}
	size := msg.EncodedSize()
	if n.shardTraffic != nil {
		n.shardTraffic[src].Record(from, to, msg.Type(), size, eng.Now())
	}
	if n.wobs != nil {
		n.wobs[src].Sent(eng.Now(), from, to, msg.Type(), size)
	}
	if !n.Reachable(from, to) {
		releaseMsg(msg)
		return nil
	}
	if n.dropRate > 0 && !n.lossExempt[msg.Type()] && rng.Float64() < n.dropRate {
		releaseMsg(msg)
		return nil
	}
	delay := n.model.Delay(rng, size)
	if len(n.linkExtra) > 0 {
		delay += n.linkExtra[[2]wire.NodeID{from, to}]
	}
	if len(n.nodeExtra) > 0 {
		delay += n.nodeExtra[from] + n.nodeExtra[to]
	}
	if n.siteDelay > 0 && n.siteOf(from) != n.siteOf(to) {
		delay += n.siteDelay
	}
	if dst := n.shardOfNode(to); dst != src {
		n.se.SendCross(src, dst, eng.Now()+delay, n.deliverFn, uint64(from), uint64(to), msg)
	} else {
		eng.AfterMsg(delay, n.deliverFn, uint64(from), uint64(to), msg)
	}
	return nil
}

// deliver is the AfterMsg handler behind every in-flight message. Fault
// state is checked at fire time, exactly as the per-message closure used
// to: a node crashed while the message was in flight still swallows it.
// Delivery is a terminal point for pooled envelopes, handled or not.
func (n *SimNetwork) deliver(from, to uint64, msg any) {
	dst := n.nodes[to]
	m := msg.(wire.Message)
	if h := dst.handler; h != nil && !n.downNode[dst.id] {
		if n.wobs != nil {
			// The receive lands in the receiver's context, on whose
			// engine goroutine this handler is already running.
			ctx := 0
			at := n.engine.Now()
			if n.se != nil {
				ctx = n.shardOfNode(dst.id)
				at = n.shardEng[ctx].Now()
			}
			n.wobs[ctx].Received(at, wire.NodeID(from), dst.id, m.Type(), m.EncodedSize())
		}
		h(wire.NodeID(from), m)
	}
	releaseMsg(m)
}

// releaseMsg returns a pooled envelope to its free list at a terminal point
// of one delivery attempt: dropped at send, swallowed at a downed receiver,
// or fully handled. Non-pooled messages are untouched.
func releaseMsg(msg wire.Message) {
	if r, ok := msg.(wire.Releasable); ok {
		r.Release()
	}
}

// SimEndpoint implements Endpoint on a SimNetwork.
type SimEndpoint struct {
	net     *SimNetwork
	id      wire.NodeID
	handler Handler
}

// ID implements Endpoint.
func (ep *SimEndpoint) ID() wire.NodeID { return ep.id }

// SetHandler implements Endpoint.
func (ep *SimEndpoint) SetHandler(h Handler) { ep.handler = h }

// Send implements Endpoint.
func (ep *SimEndpoint) Send(to wire.NodeID, msg wire.Message) error {
	return ep.net.send(ep.id, to, msg)
}
