package transport

import (
	"fmt"

	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// SimNetwork is the discrete-event implementation of the transport. It is
// driven by a sim.Engine and must only be used from engine callbacks (the
// engine is single-threaded).
type SimNetwork struct {
	engine  *sim.Engine
	model   netmodel.Model
	traffic *netmodel.Traffic
	rng     *sim.Rand

	nodes    []*SimEndpoint
	downLink map[[2]wire.NodeID]bool
	dropRate float64
	// DownNode silences a node entirely (crash-style fault).
	downNode map[wire.NodeID]bool
}

// NewSimNetwork creates a simulated network. traffic may be nil to skip
// accounting.
func NewSimNetwork(engine *sim.Engine, model netmodel.Model, traffic *netmodel.Traffic) *SimNetwork {
	return &SimNetwork{
		engine:   engine,
		model:    model,
		traffic:  traffic,
		rng:      engine.Rand("transport"),
		downLink: make(map[[2]wire.NodeID]bool),
		downNode: make(map[wire.NodeID]bool),
	}
}

// AddNode attaches a new endpoint and returns it. IDs are assigned densely
// from 0 in creation order.
func (n *SimNetwork) AddNode() *SimEndpoint {
	ep := &SimEndpoint{net: n, id: wire.NodeID(len(n.nodes))}
	n.nodes = append(n.nodes, ep)
	return ep
}

// Size returns the number of attached endpoints.
func (n *SimNetwork) Size() int { return len(n.nodes) }

// Engine returns the driving engine.
func (n *SimNetwork) Engine() *sim.Engine { return n.engine }

// SetLinkDown cuts (or restores) the directed link from -> to.
func (n *SimNetwork) SetLinkDown(from, to wire.NodeID, down bool) {
	if down {
		n.downLink[[2]wire.NodeID{from, to}] = true
	} else {
		delete(n.downLink, [2]wire.NodeID{from, to})
	}
}

// SetNodeDown crashes (or revives) a node: all its inbound and outbound
// messages are dropped.
func (n *SimNetwork) SetNodeDown(id wire.NodeID, down bool) {
	if down {
		n.downNode[id] = true
	} else {
		delete(n.downNode, id)
	}
}

// SetDropRate installs a uniform message loss probability in [0, 1).
func (n *SimNetwork) SetDropRate(p float64) { n.dropRate = p }

func (n *SimNetwork) send(from, to wire.NodeID, msg wire.Message) error {
	if int(to) >= len(n.nodes) {
		return fmt.Errorf("transport: unknown destination %v", to)
	}
	size := msg.EncodedSize()
	// Bytes leave the sender's NIC whether or not they arrive.
	if n.traffic != nil {
		n.traffic.Record(from, to, msg.Type(), size, n.engine.Now())
	}
	if n.downNode[from] || n.downNode[to] || n.downLink[[2]wire.NodeID{from, to}] {
		return nil // silently lost
	}
	if n.dropRate > 0 && n.rng.Float64() < n.dropRate {
		return nil
	}
	dst := n.nodes[to]
	delay := n.model.Delay(n.rng, size)
	n.engine.After(delay, func() {
		if h := dst.handler; h != nil && !n.downNode[dst.id] {
			h(from, msg)
		}
	})
	return nil
}

// SimEndpoint implements Endpoint on a SimNetwork.
type SimEndpoint struct {
	net     *SimNetwork
	id      wire.NodeID
	handler Handler
}

// ID implements Endpoint.
func (ep *SimEndpoint) ID() wire.NodeID { return ep.id }

// SetHandler implements Endpoint.
func (ep *SimEndpoint) SetHandler(h Handler) { ep.handler = h }

// Send implements Endpoint.
func (ep *SimEndpoint) Send(to wire.NodeID, msg wire.Message) error {
	return ep.net.send(ep.id, to, msg)
}
