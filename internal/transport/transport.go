// Package transport connects protocol nodes to each other. Protocol code is
// written against the Endpoint interface only; the package provides two
// implementations with identical semantics:
//
//   - SimNetwork delivers messages through the discrete-event engine with
//     delays drawn from a netmodel.Model, recording every transmission in a
//     netmodel.Traffic. All experiments run on it.
//   - TCPNetwork ships real bytes over localhost/LAN TCP connections for
//     live deployments (cmd/gossipnet).
//
// Both are asynchronous and unreliable-by-contract: Send never blocks on
// the receiver and delivery is not acknowledged, matching the gossip
// layer's assumptions.
package transport

import (
	"fabricgossip/internal/wire"
)

// Handler receives messages delivered to an endpoint. The simulated network
// invokes handlers sequentially on the engine goroutine; the TCP network
// invokes them from per-connection reader goroutines, so handlers must be
// safe for concurrent use when running live.
type Handler func(from wire.NodeID, msg wire.Message)

// Endpoint is a node's attachment to a network.
type Endpoint interface {
	// ID returns this endpoint's node id.
	ID() wire.NodeID
	// Send transmits msg to the given node. It returns an error only for
	// local problems (unknown destination, closed endpoint); in-flight
	// loss is silent, as on a real network.
	Send(to wire.NodeID, msg wire.Message) error
	// SetHandler installs the message handler. It must be called before
	// any message can be delivered.
	SetHandler(h Handler)
}
