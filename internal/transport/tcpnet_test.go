package transport

import (
	"sync"
	"testing"
	"time"

	"fabricgossip/internal/ledger"
	"fabricgossip/internal/netmodel"
	"fabricgossip/internal/wire"
)

// startPair brings up two TCP endpoints that know each other's addresses.
func startPair(t *testing.T, traffic *netmodel.Traffic) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	book := StaticAddressBook{}
	a, err := ListenTCP(0, "127.0.0.1:0", book, traffic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(1, "127.0.0.1:0", book, traffic)
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	book[0] = a.Addr()
	book[1] = b.Addr()
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := startPair(t, nil)

	var mu sync.Mutex
	var got []wire.Message
	var from []wire.NodeID
	b.SetHandler(func(f wire.NodeID, m wire.Message) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, m)
		from = append(from, f)
	})

	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), &wire.StateInfo{Height: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 10
	}, "10 messages")

	mu.Lock()
	defer mu.Unlock()
	for i, m := range got {
		si, ok := m.(*wire.StateInfo)
		if !ok || si.Height != uint64(i) {
			t.Fatalf("message %d = %#v", i, m)
		}
		if from[i] != a.ID() {
			t.Fatalf("from = %v, want %v", from[i], a.ID())
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := startPair(t, nil)
	var mu sync.Mutex
	gotA, gotB := 0, 0
	a.SetHandler(func(wire.NodeID, wire.Message) { mu.Lock(); gotA++; mu.Unlock() })
	b.SetHandler(func(wire.NodeID, wire.Message) { mu.Lock(); gotB++; mu.Unlock() })
	if err := a.Send(1, &wire.PullHello{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, &wire.PullHello{Nonce: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return gotA == 1 && gotB == 1 }, "both directions")
}

func TestTCPCarriesBlocks(t *testing.T) {
	a, b := startPair(t, nil)
	var mu sync.Mutex
	var blk *wire.Data
	b.SetHandler(func(_ wire.NodeID, m wire.Message) {
		mu.Lock()
		defer mu.Unlock()
		if d, ok := m.(*wire.Data); ok {
			blk = d
		}
	})
	sent := &wire.Data{Block: testBlockTCP(3), Counter: 4}
	if err := a.Send(1, sent); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return blk != nil }, "block")
	mu.Lock()
	defer mu.Unlock()
	if blk.Counter != 4 || blk.Block.Num != 3 || blk.Block.Hash() != sent.Block.Hash() {
		t.Fatalf("got %+v", blk)
	}
}

func TestTCPSendUnknownDestination(t *testing.T) {
	a, _ := startPair(t, nil)
	if err := a.Send(42, &wire.PullHello{}); err == nil {
		t.Fatal("send to unknown id succeeded")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	a, b := startPair(t, nil)
	_ = a.Close()
	if err := a.Send(b.ID(), &wire.PullHello{}); err == nil {
		t.Fatal("send after close succeeded")
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestTCPTrafficAccounting(t *testing.T) {
	tr := netmodel.NewTraffic(time.Second)
	a, b := startPair(t, tr)
	var mu sync.Mutex
	got := 0
	b.SetHandler(func(wire.NodeID, wire.Message) { mu.Lock(); got++; mu.Unlock() })
	if err := a.Send(1, &wire.StateInfo{Height: 5}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return got == 1 }, "delivery")
	if tr.CountOf(wire.TypeStateInfo) != 1 {
		t.Fatal("traffic not recorded")
	}
}

func testBlockTCP(num uint64) *ledger.Block {
	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{1}}}}
	tx := &ledger.Transaction{
		ID:        ledger.ProposalDigest("c", "cc", rw, nil),
		Client:    "c",
		Chaincode: "cc",
		RWSet:     rw,
		Payload:   make([]byte, 128),
	}
	return &ledger.Block{Num: num, Txs: []*ledger.Transaction{tx}, DataHash: ledger.ComputeDataHash([]*ledger.Transaction{tx})}
}
