package transport

import (
	"time"

	"fabricgossip/internal/obs"
	"fabricgossip/internal/wire"
)

// WireObs is one emission context's wire-level observability bundle: the
// registry instruments and trace buffer every message crossing that
// context's NIC feeds. The sim network holds one per shard (one total,
// sequentially) so the per-message path stays single-writer and
// allocation-free; the TCP runtime holds one backed by a concurrent
// registry. Either half may be absent: a nil registry records no metrics,
// a nil trace emits no events.
type WireObs struct {
	msgsOut  *obs.Counter
	bytesOut *obs.Counter
	msgsIn   *obs.Counter
	bytesIn  *obs.Counter
	sizes    *obs.Histogram
	trace    *obs.ShardTrace
}

// NewWireObs registers the wire instruments on reg (if non-nil) and binds
// the trace buffer (if non-nil).
func NewWireObs(reg *obs.Registry, trace *obs.ShardTrace) *WireObs {
	w := &WireObs{trace: trace}
	if reg != nil {
		w.msgsOut = reg.Counter("wire_msgs_total", "dir", "out")
		w.bytesOut = reg.Counter("wire_bytes_total", "dir", "out")
		w.msgsIn = reg.Counter("wire_msgs_total", "dir", "in")
		w.bytesIn = reg.Counter("wire_bytes_total", "dir", "in")
		w.sizes = reg.Histogram("wire_msg_bytes", obs.SizeBuckets)
	}
	return w
}

// Sent records one message leaving a NIC. Like traffic accounting it runs
// before reachability filtering: bytes leave the sender whether or not
// they arrive.
func (w *WireObs) Sent(at time.Duration, from, to wire.NodeID, t wire.MsgType, size int) {
	if w.msgsOut != nil {
		w.msgsOut.Inc()
		w.bytesOut.Add(uint64(size))
		w.sizes.Observe(float64(size))
	}
	if w.trace != nil {
		w.trace.Emit(obs.Event{At: at, Kind: obs.WireSendKind(t), Node: int32(from), Peer: int32(to), Num: uint64(t), Aux: uint64(size)})
	}
}

// Received records one message handed to a live endpoint's handler.
// Dropped, partitioned and crashed-receiver messages never reach it.
func (w *WireObs) Received(at time.Duration, from, to wire.NodeID, t wire.MsgType, size int) {
	if w.msgsIn != nil {
		w.msgsIn.Inc()
		w.bytesIn.Add(uint64(size))
	}
	if w.trace != nil {
		w.trace.Emit(obs.Event{At: at, Kind: obs.WireRecvKind(t), Node: int32(to), Peer: int32(from), Num: uint64(t), Aux: uint64(size)})
	}
}
