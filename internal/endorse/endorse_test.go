package endorse

import (
	"errors"
	"math/rand"
	"testing"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
)

type fixture struct {
	provider  *msp.Provider
	endorsers []*Endorser
	states    []*ledger.StateDB
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	provider, err := msp.NewProvider(rng)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{provider: provider}
	for i := 0; i < n; i++ {
		id, signer, err := provider.Enroll(msp.RolePeer, "orgA", "peer"+string(rune('0'+i)), rng)
		if err != nil {
			t.Fatal(err)
		}
		state := ledger.NewStateDB()
		e := NewEndorser(id, signer, state)
		e.Install(chaincode.Counter{})
		f.endorsers = append(f.endorsers, e)
		f.states = append(f.states, state)
	}
	return f
}

func TestEndorseProducesVerifiableSignature(t *testing.T) {
	f := newFixture(t, 1)
	resp, err := f.endorsers[0].Endorse("client0", "counter", []string{"incr", "k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := AssembleTransaction("client0", "counter", nil, []*Response{resp})
	if err != nil {
		t.Fatal(err)
	}
	policy := NewPolicy(1, f.endorsers[0].Identity())
	if err := policy.Checker()(tx); err != nil {
		t.Fatalf("policy check: %v", err)
	}
}

func TestEndorseUnknownChaincode(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := f.endorsers[0].Endorse("c", "nope", nil, nil); !errors.Is(err, ErrUnknownChaincode) {
		t.Fatalf("err = %v", err)
	}
}

func TestAssembleDetectsProposalTimeConflict(t *testing.T) {
	f := newFixture(t, 2)
	// Endorser 1 is one block behind: it has not seen the write to "k".
	f.states[0].ApplyBlockWrites(1, []uint32{0}, []ledger.RWSet{
		{Writes: []ledger.KVWrite{{Key: "k", Value: chaincode.EncodeUint64(5)}}},
	})
	r0, err := f.endorsers[0].Endorse("c", "counter", []string{"incr", "k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := f.endorsers[1].Endorse("c", "counter", []string{"incr", "k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Different ledger heights -> different read versions -> the client
	// detects the proposal-time conflict (paper §II-C).
	if _, err := AssembleTransaction("c", "counter", nil, []*Response{r0, r1}); !errors.Is(err, ErrEndorsementsdiffer) {
		t.Fatalf("err = %v, want ErrEndorsementsdiffer", err)
	}
}

func TestAssembleAgreeingEndorsers(t *testing.T) {
	f := newFixture(t, 3)
	var responses []*Response
	for _, e := range f.endorsers {
		r, err := e.Endorse("c", "counter", []string{"incr", "k"}, []byte("pay"))
		if err != nil {
			t.Fatal(err)
		}
		responses = append(responses, r)
	}
	tx, err := AssembleTransaction("c", "counter", []byte("pay"), responses)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Endorsements) != 3 {
		t.Fatalf("endorsements = %d", len(tx.Endorsements))
	}
	// 2-of-3 policy passes; 3-of-3 passes; a policy requiring an absent
	// endorser's signature fails.
	ids := []*msp.Identity{
		f.endorsers[0].Identity(), f.endorsers[1].Identity(), f.endorsers[2].Identity(),
	}
	if err := NewPolicy(2, ids...).Checker()(tx); err != nil {
		t.Fatalf("2-of-3: %v", err)
	}
	if err := NewPolicy(3, ids...).Checker()(tx); err != nil {
		t.Fatalf("3-of-3: %v", err)
	}
	if err := NewPolicy(1, ids[0]).Checker()(tx); err != nil {
		t.Fatalf("1-of-1 subset: %v", err)
	}
}

func TestAssembleEmpty(t *testing.T) {
	if _, err := AssembleTransaction("c", "cc", nil, nil); err == nil {
		t.Fatal("empty endorsement list accepted")
	}
}

func TestPolicyRejectsForgedEndorsement(t *testing.T) {
	f := newFixture(t, 2)
	r0, _ := f.endorsers[0].Endorse("c", "counter", []string{"incr", "k"}, nil)
	tx, err := AssembleTransaction("c", "counter", nil, []*Response{r0})
	if err != nil {
		t.Fatal(err)
	}
	// Claim endorser 1 signed it (it did not).
	tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
		Org: "orgA", Name: f.endorsers[1].Identity().Name, Sig: r0.Sig,
	})
	policy := NewPolicy(2, f.endorsers[0].Identity(), f.endorsers[1].Identity())
	if err := policy.Checker()(tx); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("forged endorsement: err = %v", err)
	}
}

func TestPolicyRejectsDuplicateEndorsements(t *testing.T) {
	f := newFixture(t, 1)
	r0, _ := f.endorsers[0].Endorse("c", "counter", []string{"incr", "k"}, nil)
	tx, _ := AssembleTransaction("c", "counter", nil, []*Response{r0, r0})
	policy := NewPolicy(2, f.endorsers[0].Identity())
	if err := policy.Checker()(tx); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("duplicate endorsements satisfied 2-of-1: %v", err)
	}
}

func TestPolicyRejectsTamperedContent(t *testing.T) {
	f := newFixture(t, 1)
	r0, _ := f.endorsers[0].Endorse("c", "counter", []string{"incr", "k"}, nil)
	tx, _ := AssembleTransaction("c", "counter", nil, []*Response{r0})
	tx.RWSet.Writes[0].Value = chaincode.EncodeUint64(999) // tamper after endorsement
	policy := NewPolicy(1, f.endorsers[0].Identity())
	if err := policy.Checker()(tx); err == nil {
		t.Fatal("tampered write set passed policy")
	}
}

func TestEndToEndValidationWithPolicy(t *testing.T) {
	f := newFixture(t, 1)
	policy := NewPolicy(1, f.endorsers[0].Identity())
	led := ledger.NewLedger(policy.Checker())

	r, err := f.endorsers[0].Endorse("c", "counter", []string{"incr", "k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := AssembleTransaction("c", "counter", nil, []*Response{r})
	if err != nil {
		t.Fatal(err)
	}
	b := &ledger.Block{Num: 0, Txs: []*ledger.Transaction{tx}}
	b.DataHash = ledger.ComputeDataHash(b.Txs)
	res, err := led.Commit(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 1 {
		t.Fatalf("commit result %+v", res)
	}
	vv, _ := led.State().Get("k")
	v, _ := chaincode.DecodeUint64(vv.Value)
	if v != 1 {
		t.Fatalf("counter = %d, want 1", v)
	}
}

// endorsedTx builds one valid single-endorser transaction for key.
func endorsedTx(t *testing.T, f *fixture, key string) *ledger.Transaction {
	t.Helper()
	r, err := f.endorsers[0].Endorse("c", "counter", []string{"incr", key}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := AssembleTransaction("c", "counter", nil, []*Response{r})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

// cloneTx copies a transaction the way the wire codec does on decode: same
// content, fresh backing storage.
func cloneTx(tx *ledger.Transaction) *ledger.Transaction {
	cp := *tx
	cp.Endorsements = make([]ledger.Endorsement, len(tx.Endorsements))
	for i, e := range tx.Endorsements {
		cp.Endorsements[i] = e
		cp.Endorsements[i].Sig = append([]byte(nil), e.Sig...)
	}
	return &cp
}

// TestCheckerSharesVerdictAcrossCopies locks the fix for the pointer-keyed
// verdict cache: a transaction re-decoded from wire bytes is a different
// pointer with the same ID, and must hit the cached verdict instead of
// re-running the Ed25519 verification. The corrupted endorsement on the
// copy makes a cache miss observable — and documents the trade-off that
// the verdict binds the transaction content, not the endorsement bytes.
func TestCheckerSharesVerdictAcrossCopies(t *testing.T) {
	f := newFixture(t, 1)
	policy := NewPolicy(1, f.endorsers[0].Identity())
	tx := endorsedTx(t, f, "k")

	copyTx := cloneTx(tx)
	copyTx.Endorsements[0].Sig[0] ^= 0xff
	// Sanity: a cold checker rejects the corrupted copy.
	if err := policy.Checker()(copyTx); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("cold checker on corrupted copy: %v", err)
	}

	checker := policy.Checker()
	if err := checker(tx); err != nil {
		t.Fatal(err)
	}
	// Same ID, different pointer: must be a cache hit.
	if err := checker(copyTx); err != nil {
		t.Fatalf("re-decoded copy missed the verdict cache: %v", err)
	}
}

// TestCheckerEvictsOldestVerdict pins the FIFO bound: once capacity newer
// transactions have been checked, the oldest verdict is gone and the next
// lookup re-verifies.
func TestCheckerEvictsOldestVerdict(t *testing.T) {
	f := newFixture(t, 1)
	policy := NewPolicy(1, f.endorsers[0].Identity())
	checker := policy.CheckerN(2)

	txA := endorsedTx(t, f, "a")
	corruptA := cloneTx(txA)
	corruptA.Endorsements[0].Sig[0] ^= 0xff

	if err := checker(txA); err != nil {
		t.Fatal(err)
	}
	if err := checker(corruptA); err != nil {
		t.Fatalf("verdict for A not cached: %v", err)
	}
	// Two newer transactions push A out of the 2-entry cache.
	if err := checker(endorsedTx(t, f, "b")); err != nil {
		t.Fatal(err)
	}
	if err := checker(endorsedTx(t, f, "c")); err != nil {
		t.Fatal(err)
	}
	if err := checker(corruptA); !errors.Is(err, ErrPolicyUnsatisfied) {
		t.Fatalf("evicted verdict still served: %v", err)
	}
}

// TestCheckerHitPathAllocates proves the cache hit path performs no
// allocations: the digest-array map key avoids the interface boxing a
// sync.Map lookup would pay.
func TestCheckerHitPathAllocates(t *testing.T) {
	f := newFixture(t, 1)
	policy := NewPolicy(1, f.endorsers[0].Identity())
	checker := policy.Checker()
	tx := endorsedTx(t, f, "k")
	if err := checker(tx); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if err := checker(tx); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("verdict-cache hit allocates %v allocs/op, want 0", n)
	}
}

func BenchmarkCheckerHit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	provider, err := msp.NewProvider(rng)
	if err != nil {
		b.Fatal(err)
	}
	id, signer, err := provider.Enroll(msp.RolePeer, "orgA", "peer0", rng)
	if err != nil {
		b.Fatal(err)
	}
	e := NewEndorser(id, signer, ledger.NewStateDB())
	e.Install(chaincode.Counter{})
	r, err := e.Endorse("c", "counter", []string{"incr", "k"}, nil)
	if err != nil {
		b.Fatal(err)
	}
	tx, err := AssembleTransaction("c", "counter", nil, []*Response{r})
	if err != nil {
		b.Fatal(err)
	}
	checker := NewPolicy(1, id).Checker()
	if err := checker(tx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := checker(tx); err != nil {
			b.Fatal(err)
		}
	}
}
