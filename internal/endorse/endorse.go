// Package endorse implements the execute phase of the EOV pipeline (paper
// §II-B): endorsing peers simulate chaincodes against their current state,
// sign the resulting read/write sets, and clients combine enough
// endorsements into a transaction proposal. It also provides the N-of-M
// endorsement policy used at validation time.
package endorse

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/crypto"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
)

// Endorsement errors.
var (
	ErrUnknownChaincode   = errors.New("endorse: unknown chaincode")
	ErrEndorsementsdiffer = errors.New("endorse: endorsers produced different read/write sets")
	ErrPolicyUnsatisfied  = errors.New("endorse: endorsement policy not satisfied")
)

// Response is one endorser's reply to a proposal: the simulated read/write
// set plus the endorser's signature over the proposal digest.
type Response struct {
	Endorser *msp.Identity
	RWSet    ledger.RWSet
	Digest   crypto.Digest
	Sig      crypto.Signature
}

// Endorser simulates and signs proposals against a peer's state database.
type Endorser struct {
	identity *msp.Identity
	signer   *crypto.Signer
	state    *ledger.StateDB
	codes    map[string]chaincode.Chaincode
}

// NewEndorser creates an endorser bound to a peer identity and its state.
func NewEndorser(id *msp.Identity, signer *crypto.Signer, state *ledger.StateDB) *Endorser {
	return &Endorser{
		identity: id,
		signer:   signer,
		state:    state,
		codes:    make(map[string]chaincode.Chaincode),
	}
}

// Install registers a chaincode for execution.
func (e *Endorser) Install(cc chaincode.Chaincode) { e.codes[cc.Name()] = cc }

// Identity returns the endorser's certified identity.
func (e *Endorser) Identity() *msp.Identity { return e.identity }

// Endorse simulates the chaincode for a client proposal and returns the
// signed response. payload is opaque application data bound into the
// transaction digest.
func (e *Endorser) Endorse(client, ccName string, args []string, payload []byte) (*Response, error) {
	cc, ok := e.codes[ccName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownChaincode, ccName)
	}
	rw, err := chaincode.Simulate(cc, e.state, args)
	if err != nil {
		return nil, err
	}
	digest := ledger.ProposalDigest(client, ccName, rw, payload)
	return &Response{
		Endorser: e.identity,
		RWSet:    rw,
		Digest:   digest,
		Sig:      e.signer.Sign(digest[:]),
	}, nil
}

// AssembleTransaction combines endorsement responses into a transaction
// proposal, verifying that all endorsers simulated identical read/write
// sets. Divergent sets are the client-visible symptom of a proposal-time
// conflict (paper §II-C) — the client must collect fresh endorsements.
func AssembleTransaction(client, ccName string, payload []byte, responses []*Response) (*ledger.Transaction, error) {
	if len(responses) == 0 {
		return nil, fmt.Errorf("endorse: no endorsements")
	}
	first := responses[0]
	for _, r := range responses[1:] {
		if r.Digest != first.Digest || !rwSetsEqual(r.RWSet, first.RWSet) {
			return nil, ErrEndorsementsdiffer
		}
	}
	tx := &ledger.Transaction{
		ID:        first.Digest,
		Client:    client,
		Chaincode: ccName,
		RWSet:     first.RWSet,
		Payload:   payload,
	}
	for _, r := range responses {
		tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
			Org:  r.Endorser.Org,
			Name: r.Endorser.Name,
			Sig:  r.Sig,
		})
	}
	return tx, nil
}

func rwSetsEqual(a, b ledger.RWSet) bool {
	if len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) {
		return false
	}
	for i := range a.Reads {
		if a.Reads[i] != b.Reads[i] {
			return false
		}
	}
	for i := range a.Writes {
		if a.Writes[i].Key != b.Writes[i].Key || !bytes.Equal(a.Writes[i].Value, b.Writes[i].Value) {
			return false
		}
	}
	return true
}

// Policy is an N-of-M endorsement policy: a transaction validates if at
// least Required of the listed endorsers signed its digest.
type Policy struct {
	Required int
	// Members maps "org/name" to the endorser's public key.
	Members map[string]crypto.PublicKey
}

// NewPolicy builds a policy over the given identities.
func NewPolicy(required int, ids ...*msp.Identity) Policy {
	p := Policy{Required: required, Members: make(map[string]crypto.PublicKey, len(ids))}
	for _, id := range ids {
		p.Members[id.Org+"/"+id.Name] = id.Key
	}
	return p
}

// Checker returns the validation-phase policy checker for the ledger: it
// recomputes the transaction digest and verifies the endorsement
// signatures. Verdicts are memoized by transaction identity: in a
// simulated organization every peer validates the same immutable
// transaction object, and re-running hundreds of identical Ed25519
// verifications per transaction would dominate experiment run time without
// changing any outcome.
func (p Policy) Checker() ledger.PolicyChecker {
	var cache sync.Map // *ledger.Transaction -> error (nil stored as ok)
	check := p.checkOnce
	return func(tx *ledger.Transaction) error {
		if v, ok := cache.Load(tx); ok {
			if v == nil {
				return nil
			}
			return v.(error)
		}
		err := check(tx)
		if err == nil {
			cache.Store(tx, nil)
		} else {
			cache.Store(tx, err)
		}
		return err
	}
}

func (p Policy) checkOnce(tx *ledger.Transaction) error {
	digest := ledger.ProposalDigest(tx.Client, tx.Chaincode, tx.RWSet, tx.Payload)
	if digest != tx.ID {
		return fmt.Errorf("%w: transaction id does not match content", ErrPolicyUnsatisfied)
	}
	valid := 0
	seen := make(map[string]bool, len(tx.Endorsements))
	for _, e := range tx.Endorsements {
		key := e.Org + "/" + e.Name
		if seen[key] {
			continue // duplicate endorsements count once
		}
		pub, ok := p.Members[key]
		if !ok {
			continue // endorser not in policy
		}
		if crypto.Verify(pub, digest[:], e.Sig) != nil {
			continue
		}
		seen[key] = true
		valid++
	}
	if valid < p.Required {
		return fmt.Errorf("%w: %d of %d required signatures", ErrPolicyUnsatisfied, valid, p.Required)
	}
	return nil
}
