// Package endorse implements the execute phase of the EOV pipeline (paper
// §II-B): endorsing peers simulate chaincodes against their current state,
// sign the resulting read/write sets, and clients combine enough
// endorsements into a transaction proposal. It also provides the N-of-M
// endorsement policy used at validation time.
package endorse

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"fabricgossip/internal/chaincode"
	"fabricgossip/internal/crypto"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/msp"
)

// Endorsement errors.
var (
	ErrUnknownChaincode   = errors.New("endorse: unknown chaincode")
	ErrEndorsementsdiffer = errors.New("endorse: endorsers produced different read/write sets")
	ErrPolicyUnsatisfied  = errors.New("endorse: endorsement policy not satisfied")
)

// Response is one endorser's reply to a proposal: the simulated read/write
// set plus the endorser's signature over the proposal digest.
type Response struct {
	Endorser *msp.Identity
	RWSet    ledger.RWSet
	Digest   crypto.Digest
	Sig      crypto.Signature
}

// Endorser simulates and signs proposals against a peer's state database.
type Endorser struct {
	identity *msp.Identity
	signer   *crypto.Signer
	state    *ledger.StateDB
	codes    map[string]chaincode.Chaincode
}

// NewEndorser creates an endorser bound to a peer identity and its state.
func NewEndorser(id *msp.Identity, signer *crypto.Signer, state *ledger.StateDB) *Endorser {
	return &Endorser{
		identity: id,
		signer:   signer,
		state:    state,
		codes:    make(map[string]chaincode.Chaincode),
	}
}

// Install registers a chaincode for execution.
func (e *Endorser) Install(cc chaincode.Chaincode) { e.codes[cc.Name()] = cc }

// Identity returns the endorser's certified identity.
func (e *Endorser) Identity() *msp.Identity { return e.identity }

// Endorse simulates the chaincode for a client proposal and returns the
// signed response. payload is opaque application data bound into the
// transaction digest.
func (e *Endorser) Endorse(client, ccName string, args []string, payload []byte) (*Response, error) {
	cc, ok := e.codes[ccName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownChaincode, ccName)
	}
	rw, err := chaincode.Simulate(cc, e.state, args)
	if err != nil {
		return nil, err
	}
	digest := ledger.ProposalDigest(client, ccName, rw, payload)
	return &Response{
		Endorser: e.identity,
		RWSet:    rw,
		Digest:   digest,
		Sig:      e.signer.Sign(digest[:]),
	}, nil
}

// AssembleTransaction combines endorsement responses into a transaction
// proposal, verifying that all endorsers simulated identical read/write
// sets. Divergent sets are the client-visible symptom of a proposal-time
// conflict (paper §II-C) — the client must collect fresh endorsements.
func AssembleTransaction(client, ccName string, payload []byte, responses []*Response) (*ledger.Transaction, error) {
	if len(responses) == 0 {
		return nil, fmt.Errorf("endorse: no endorsements")
	}
	first := responses[0]
	for _, r := range responses[1:] {
		if r.Digest != first.Digest || !rwSetsEqual(r.RWSet, first.RWSet) {
			return nil, ErrEndorsementsdiffer
		}
	}
	tx := &ledger.Transaction{
		ID:        first.Digest,
		Client:    client,
		Chaincode: ccName,
		RWSet:     first.RWSet,
		Payload:   payload,
	}
	for _, r := range responses {
		tx.Endorsements = append(tx.Endorsements, ledger.Endorsement{
			Org:  r.Endorser.Org,
			Name: r.Endorser.Name,
			Sig:  r.Sig,
		})
	}
	return tx, nil
}

func rwSetsEqual(a, b ledger.RWSet) bool {
	if len(a.Reads) != len(b.Reads) || len(a.Writes) != len(b.Writes) {
		return false
	}
	for i := range a.Reads {
		if a.Reads[i] != b.Reads[i] {
			return false
		}
	}
	for i := range a.Writes {
		if a.Writes[i].Key != b.Writes[i].Key || !bytes.Equal(a.Writes[i].Value, b.Writes[i].Value) {
			return false
		}
	}
	return true
}

// Policy is an N-of-M endorsement policy: a transaction validates if at
// least Required of the listed endorsers signed its digest.
type Policy struct {
	Required int
	// Members maps "org/name" to the endorser's public key.
	Members map[string]crypto.PublicKey
}

// NewPolicy builds a policy over the given identities.
func NewPolicy(required int, ids ...*msp.Identity) Policy {
	p := Policy{Required: required, Members: make(map[string]crypto.PublicKey, len(ids))}
	for _, id := range ids {
		p.Members[id.Org+"/"+id.Name] = id.Key
	}
	return p
}

// DefaultVerdictCacheCap bounds the policy checker's verdict cache. Large
// enough to hold every in-flight transaction of the biggest experiment's
// working set (blocks currently being validated across all peers), small
// enough that a million-transaction workload cannot grow the process
// without bound.
const DefaultVerdictCacheCap = 1 << 13

// Checker returns the validation-phase policy checker for the ledger: it
// recomputes the transaction digest and verifies the endorsement
// signatures. Verdicts are memoized by transaction ID — the content digest
// — so every copy of a transaction hits the cache, including copies
// re-decoded from wire bytes (a pointer-keyed cache would re-run the full
// Ed25519 verification per peer for those). The cache is bounded with FIFO
// eviction at DefaultVerdictCacheCap entries.
//
// Trade-off: the ID binds the proposal content (checkOnce recomputes the
// digest) but not the endorsement signatures, so two copies of a
// transaction that differ only in their endorsements share a verdict. In
// this simulator all copies of a transaction carry the endorsements the
// client assembled, so the shortcut cannot change an outcome.
func (p Policy) Checker() ledger.PolicyChecker {
	return p.CheckerN(DefaultVerdictCacheCap)
}

// CheckerN is Checker with an explicit cache capacity (minimum 1).
func (p Policy) CheckerN(capacity int) ledger.PolicyChecker {
	cache := newVerdictCache(capacity)
	check := p.checkOnce
	return func(tx *ledger.Transaction) error {
		if err, ok := cache.load(tx.ID); ok {
			return err
		}
		err := check(tx)
		cache.store(tx.ID, err)
		return err
	}
}

// verdictCache is a bounded FIFO map from transaction ID to policy verdict.
// The hit path is a mutex and one map lookup keyed by the fixed-size digest
// array: no allocation (a sync.Map would box the array key on every Load).
type verdictCache struct {
	mu       sync.Mutex
	verdicts map[crypto.Digest]error
	ring     []crypto.Digest // insertion order, evicted oldest-first
	next     int             // ring slot the next insertion overwrites
}

func newVerdictCache(capacity int) *verdictCache {
	if capacity < 1 {
		capacity = 1
	}
	return &verdictCache{
		verdicts: make(map[crypto.Digest]error, capacity),
		ring:     make([]crypto.Digest, capacity),
	}
}

func (c *verdictCache) load(id crypto.Digest) (error, bool) {
	c.mu.Lock()
	err, ok := c.verdicts[id]
	c.mu.Unlock()
	return err, ok
}

func (c *verdictCache) store(id crypto.Digest, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.verdicts[id]; ok {
		c.verdicts[id] = err // concurrent checkers raced; keep one ring slot
		return
	}
	if len(c.verdicts) == len(c.ring) {
		delete(c.verdicts, c.ring[c.next])
	}
	c.ring[c.next] = id
	c.next = (c.next + 1) % len(c.ring)
	c.verdicts[id] = err
}

func (p Policy) checkOnce(tx *ledger.Transaction) error {
	digest := ledger.ProposalDigest(tx.Client, tx.Chaincode, tx.RWSet, tx.Payload)
	if digest != tx.ID {
		return fmt.Errorf("%w: transaction id does not match content", ErrPolicyUnsatisfied)
	}
	valid := 0
	seen := make(map[string]bool, len(tx.Endorsements))
	for _, e := range tx.Endorsements {
		key := e.Org + "/" + e.Name
		if seen[key] {
			continue // duplicate endorsements count once
		}
		pub, ok := p.Members[key]
		if !ok {
			continue // endorser not in policy
		}
		if crypto.Verify(pub, digest[:], e.Sig) != nil {
			continue
		}
		seen[key] = true
		valid++
	}
	if valid < p.Required {
		return fmt.Errorf("%w: %d of %d required signatures", ErrPolicyUnsatisfied, valid, p.Required)
	}
	return nil
}
