// Package order implements the Fabric ordering service (paper §II-B): it
// accepts endorsed transaction proposals, establishes a total order over
// them through a pluggable crash-fault-tolerant consenter, cuts blocks when
// a size cap is reached or a batch timeout expires, signs them, and
// delivers them to the organizations' leader peers.
//
// Block cutting follows the Kafka-based design the paper's deployment used:
// transactions and time-to-cut (TTC) markers share the ordered stream, so
// every orderer consuming the stream cuts identical blocks. The consenter
// is pluggable: Solo commits locally (Fabric's solo orderer), and
// raft.Consenter replicates the stream across an orderer cluster.
package order

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"fabricgossip/internal/crypto"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

// Consenter provides a totally ordered, crash-fault-tolerant stream of
// opaque entries.
type Consenter interface {
	// Submit appends data to the total order. The call is asynchronous;
	// committed entries arrive at the callback installed with OnCommit.
	Submit(data []byte) error
	// OnCommit installs the committed-entry callback. Entries arrive in
	// total order, exactly once. Must be called before Submit.
	OnCommit(fn func(data []byte))
}

// Entry kinds in the ordered stream.
const (
	entryTx  byte = 1
	entryTTC byte = 2
)

// encodeTxEntry wraps a transaction for the ordered stream.
func encodeTxEntry(tx *ledger.Transaction) []byte {
	body := wire.Marshal(&wire.SubmitTx{Tx: tx})
	out := make([]byte, 1+len(body))
	out[0] = entryTx
	copy(out[1:], body)
	return out
}

// encodeTTCEntry encodes a time-to-cut marker for block blockNum.
func encodeTTCEntry(blockNum uint64) []byte {
	out := make([]byte, 1, 10)
	out[0] = entryTTC
	return binary.AppendUvarint(out, blockNum)
}

// ErrBadEntry is returned for malformed stream entries.
var ErrBadEntry = errors.New("order: malformed stream entry")

func decodeEntry(data []byte) (*ledger.Transaction, uint64, byte, error) {
	if len(data) < 2 {
		return nil, 0, 0, ErrBadEntry
	}
	switch data[0] {
	case entryTx:
		msg, err := wire.Unmarshal(data[1:])
		if err != nil {
			return nil, 0, 0, fmt.Errorf("%w: %v", ErrBadEntry, err)
		}
		st, ok := msg.(*wire.SubmitTx)
		if !ok {
			return nil, 0, 0, fmt.Errorf("%w: unexpected %v", ErrBadEntry, msg.Type())
		}
		return st.Tx, 0, entryTx, nil
	case entryTTC:
		num, n := binary.Uvarint(data[1:])
		if n <= 0 {
			return nil, 0, 0, ErrBadEntry
		}
		return nil, num, entryTTC, nil
	default:
		return nil, 0, 0, fmt.Errorf("%w: kind %d", ErrBadEntry, data[0])
	}
}

// Config parameterizes block cutting.
type Config struct {
	// MaxTxPerBlock cuts a block as soon as it holds this many
	// transactions (paper §V-A: 50).
	MaxTxPerBlock int
	// BatchTimeout cuts a non-empty batch this long after its first
	// transaction was ordered (paper §V-A: 2 s; Table II varies it).
	BatchTimeout time.Duration
}

// DefaultConfig returns the paper's §V-A orderer configuration.
func DefaultConfig() Config {
	return Config{MaxTxPerBlock: 50, BatchTimeout: 2 * time.Second}
}

// Service is one ordering-service node.
type Service struct {
	cfg       Config
	sched     sim.Scheduler
	consenter Consenter
	signer    *crypto.Signer

	mu                      sync.Mutex
	pending                 []*ledger.Transaction
	nextNum                 uint64
	prevHash                crypto.Digest
	ttcTimer                sim.Timer
	ttcSent                 bool
	deliver                 func(*ledger.Block)
	txCount                 uint64
	cutBySize, cutByTimeout uint64
	// onCut observes every cut block (number, transaction count) just
	// before it is handed to deliver, outside the service's lock.
	onCut func(num uint64, txs int)
}

// NewService creates an ordering node. deliver receives every cut block in
// order (the harness forwards them to leader peers over the network).
func NewService(cfg Config, sched sim.Scheduler, consenter Consenter, signer *crypto.Signer, deliver func(*ledger.Block)) *Service {
	s := &Service{
		cfg:       cfg,
		sched:     sched,
		consenter: consenter,
		signer:    signer,
		deliver:   deliver,
	}
	consenter.OnCommit(s.onCommitted)
	return s
}

// Broadcast accepts a transaction proposal from a client, as Fabric's
// Broadcast RPC does, and hands it to the consenter. Orderers perform no
// validation on proposals (paper §II-B).
func (s *Service) Broadcast(tx *ledger.Transaction) error {
	return s.consenter.Submit(encodeTxEntry(tx))
}

// OnBlockCut installs a hook observing every block this node cuts. The
// hook must not call back into the service.
func (s *Service) OnBlockCut(fn func(num uint64, txs int)) { s.onCut = fn }

// Stats reports how many transactions were ordered and how blocks were cut.
func (s *Service) Stats() (txs, bySize, byTimeout uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.txCount, s.cutBySize, s.cutByTimeout
}

// Height returns the number of blocks cut so far.
func (s *Service) Height() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextNum
}

// onCommitted consumes the totally ordered stream.
func (s *Service) onCommitted(data []byte) {
	tx, ttcNum, kind, err := decodeEntry(data)
	if err != nil {
		return // tolerate garbage in the stream; CFT, not BFT
	}
	var cut *ledger.Block
	s.mu.Lock()
	switch kind {
	case entryTx:
		s.txCount++
		s.pending = append(s.pending, tx)
		if len(s.pending) == 1 && s.cfg.BatchTimeout > 0 && !s.ttcSent {
			num := s.nextNum
			s.ttcSent = true
			s.ttcTimer = s.sched.After(s.cfg.BatchTimeout, func() { s.sendTTC(num) })
		}
		if len(s.pending) >= s.cfg.MaxTxPerBlock {
			cut = s.cutLocked()
			s.cutBySize++
		}
	case entryTTC:
		// Only the TTC for the block currently being assembled cuts;
		// stale markers (the block was already cut by size) are ignored.
		if ttcNum == s.nextNum && len(s.pending) > 0 {
			cut = s.cutLocked()
			s.cutByTimeout++
		}
	}
	s.mu.Unlock()
	if cut != nil {
		if s.onCut != nil {
			s.onCut(cut.Num, len(cut.Txs))
		}
		s.deliver(cut)
	}
}

// sendTTC publishes the time-to-cut marker through the total order so all
// consuming orderers cut identically.
func (s *Service) sendTTC(blockNum uint64) {
	s.mu.Lock()
	stillPending := s.nextNum == blockNum && len(s.pending) > 0
	s.mu.Unlock()
	if stillPending {
		_ = s.consenter.Submit(encodeTTCEntry(blockNum))
	}
}

// cutLocked assembles, signs and chains the next block. Callers hold mu.
func (s *Service) cutLocked() *ledger.Block {
	txs := s.pending
	s.pending = nil
	s.ttcSent = false
	if s.ttcTimer != nil {
		s.ttcTimer.Stop()
		s.ttcTimer = nil
	}
	b := &ledger.Block{
		Num:      s.nextNum,
		PrevHash: s.prevHash,
		Txs:      txs,
		DataHash: ledger.ComputeDataHash(txs),
	}
	if s.signer != nil {
		b.Sig = s.signer.Sign(b.HeaderBytes())
	}
	s.nextNum++
	s.prevHash = b.Hash()
	return b
}

// Solo is Fabric's single-node consenter: entries commit locally in
// submission order. It is crash-fault-tolerant only in the degenerate
// sense, but it is a real Fabric ordering mode and the fixture for
// single-orderer deployments. Delay models the intra-cluster ordering
// round-trip (Kafka produce/consume in the paper's deployment).
type Solo struct {
	sched sim.Scheduler
	delay time.Duration

	mu     sync.Mutex
	commit func(data []byte)
}

// NewSolo creates a solo consenter with the given commit latency.
func NewSolo(sched sim.Scheduler, delay time.Duration) *Solo {
	return &Solo{sched: sched, delay: delay}
}

// OnCommit implements Consenter.
func (s *Solo) OnCommit(fn func(data []byte)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commit = fn
}

// Submit implements Consenter.
func (s *Solo) Submit(data []byte) error {
	s.mu.Lock()
	fn := s.commit
	s.mu.Unlock()
	if fn == nil {
		return errors.New("order: solo consenter has no commit callback")
	}
	s.sched.After(s.delay, func() { fn(data) })
	return nil
}
