package order

import (
	"math/rand"
	"testing"
	"time"

	"fabricgossip/internal/crypto"
	"fabricgossip/internal/ledger"
	"fabricgossip/internal/sim"
)

func mkTx(i int) *ledger.Transaction {
	rw := ledger.RWSet{Writes: []ledger.KVWrite{{Key: "k", Value: []byte{byte(i)}}}}
	return &ledger.Transaction{
		ID:        ledger.ProposalDigest("c", "cc", rw, []byte{byte(i)}),
		Client:    "c",
		Chaincode: "cc",
		RWSet:     rw,
		Payload:   []byte{byte(i)},
	}
}

type fixture struct {
	engine  *sim.Engine
	service *Service
	signer  *crypto.Signer
	blocks  []*ledger.Block
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	f := &fixture{engine: sim.NewEngine(1)}
	signer, err := crypto.NewSigner(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	f.signer = signer
	consenter := NewSolo(f.engine, 2*time.Millisecond)
	f.service = NewService(cfg, f.engine, consenter, signer, func(b *ledger.Block) {
		f.blocks = append(f.blocks, b)
	})
	return f
}

func TestCutBySize(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 3, BatchTimeout: time.Minute})
	for i := 0; i < 7; i++ {
		if err := f.service.Broadcast(mkTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.engine.RunUntil(time.Second)
	if len(f.blocks) != 2 {
		t.Fatalf("cut %d blocks, want 2 full blocks (7th tx pending)", len(f.blocks))
	}
	for i, b := range f.blocks {
		if len(b.Txs) != 3 {
			t.Fatalf("block %d has %d txs", i, len(b.Txs))
		}
	}
	_, bySize, byTimeout := f.service.Stats()
	if bySize != 2 || byTimeout != 0 {
		t.Fatalf("bySize=%d byTimeout=%d", bySize, byTimeout)
	}
}

func TestCutByTimeout(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 50, BatchTimeout: 2 * time.Second})
	_ = f.service.Broadcast(mkTx(0))
	f.engine.RunUntil(time.Second)
	if len(f.blocks) != 0 {
		t.Fatal("block cut before timeout")
	}
	f.engine.RunUntil(3 * time.Second)
	if len(f.blocks) != 1 || len(f.blocks[0].Txs) != 1 {
		t.Fatalf("blocks = %d", len(f.blocks))
	}
	_, bySize, byTimeout := f.service.Stats()
	if bySize != 0 || byTimeout != 1 {
		t.Fatalf("bySize=%d byTimeout=%d", bySize, byTimeout)
	}
}

func TestTimeoutRestartsPerBatch(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 50, BatchTimeout: time.Second})
	// One tx at t=0, one at t=5s: two separate timeout cuts.
	_ = f.service.Broadcast(mkTx(0))
	f.engine.RunUntil(3 * time.Second)
	f.engine.After(0, func() { _ = f.service.Broadcast(mkTx(1)) })
	f.engine.RunUntil(10 * time.Second)
	if len(f.blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(f.blocks))
	}
	for i, b := range f.blocks {
		if b.Num != uint64(i) || len(b.Txs) != 1 {
			t.Fatalf("block %d: num=%d txs=%d", i, b.Num, len(b.Txs))
		}
	}
}

func TestStaleTTCIgnoredAfterSizeCut(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 2, BatchTimeout: time.Second})
	// Batch fills before the timeout: the pending TTC must not cut an
	// empty or premature block when it fires.
	_ = f.service.Broadcast(mkTx(0))
	_ = f.service.Broadcast(mkTx(1)) // cuts by size
	f.engine.RunUntil(5 * time.Second)
	if len(f.blocks) != 1 {
		t.Fatalf("blocks = %d, want 1", len(f.blocks))
	}
	// A new tx after the stale TTC still cuts correctly by timeout.
	f.engine.After(0, func() { _ = f.service.Broadcast(mkTx(2)) })
	f.engine.RunUntil(10 * time.Second)
	if len(f.blocks) != 2 || len(f.blocks[1].Txs) != 1 {
		t.Fatalf("second cut wrong: %d blocks", len(f.blocks))
	}
}

func TestBlocksAreChainedAndSigned(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 2, BatchTimeout: time.Minute})
	for i := 0; i < 6; i++ {
		_ = f.service.Broadcast(mkTx(i))
	}
	f.engine.RunUntil(time.Second)
	if len(f.blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.blocks))
	}
	var prev *ledger.Block
	for _, b := range f.blocks {
		if err := b.VerifyLinkage(prev); err != nil {
			t.Fatalf("linkage: %v", err)
		}
		if err := crypto.Verify(f.signer.Public(), b.HeaderBytes(), b.Sig); err != nil {
			t.Fatalf("block %d signature: %v", b.Num, err)
		}
		prev = b
	}
	if f.service.Height() != 3 {
		t.Fatalf("height = %d", f.service.Height())
	}
}

func TestOrderPreservesSubmissionOrderUnderSolo(t *testing.T) {
	f := newFixture(t, Config{MaxTxPerBlock: 4, BatchTimeout: time.Minute})
	var want []crypto.Digest
	for i := 0; i < 12; i++ {
		tx := mkTx(i)
		want = append(want, tx.ID)
		_ = f.service.Broadcast(tx)
	}
	f.engine.RunUntil(time.Second)
	var got []crypto.Digest
	for _, b := range f.blocks {
		for _, tx := range b.Txs {
			got = append(got, tx.ID)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ordered %d txs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}
}

func TestDecodeEntryErrors(t *testing.T) {
	if _, _, _, err := decodeEntry(nil); err == nil {
		t.Error("nil entry accepted")
	}
	if _, _, _, err := decodeEntry([]byte{99, 1}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, _, err := decodeEntry([]byte{entryTx, 0xFF}); err == nil {
		t.Error("garbage tx entry accepted")
	}
}

func TestSoloWithoutCallbackErrors(t *testing.T) {
	s := NewSolo(sim.NewEngine(1), 0)
	if err := s.Submit([]byte{1}); err == nil {
		t.Fatal("submit without OnCommit succeeded")
	}
}

// directConsenter commits every submitted entry synchronously, letting a
// test interleave transaction entries with arbitrary — including stale and
// duplicated — TTC markers in the totally ordered stream.
type directConsenter struct{ fn func([]byte) }

func (c *directConsenter) Submit(data []byte) error { c.fn(data); return nil }
func (c *directConsenter) OnCommit(fn func([]byte)) { c.fn = fn }

// TestStaleTTCMarkersNeverCutTwice is the property test for the
// onCommitted entryTTC path: whatever mix of stale, current, future and
// duplicated TTC markers appears in the ordered stream, every block is cut
// at most once — block numbers come out strictly sequential, no block is
// empty, and every transaction lands in exactly one block in submission
// order.
func TestStaleTTCMarkersNeverCutTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		cons := &directConsenter{}
		var blocks []*ledger.Block
		maxTx := 1 + rng.Intn(5)
		// BatchTimeout 0 disables the service's own TTC timer: every
		// marker in this run is one the test injected.
		svc := NewService(Config{MaxTxPerBlock: maxTx}, sim.NewEngine(1), cons, nil,
			func(b *ledger.Block) { blocks = append(blocks, b) })
		submitted := 0
		for step := 0; step < 60; step++ {
			if rng.Intn(2) == 0 {
				if err := svc.Broadcast(mkTx(submitted)); err != nil {
					t.Fatal(err)
				}
				submitted++
				continue
			}
			// Adversarial marker: anywhere from long-stale to one past
			// the block currently being assembled, sometimes repeated.
			num := uint64(rng.Intn(int(svc.Height()) + 2))
			_ = cons.Submit(encodeTTCEntry(num))
			if rng.Intn(3) == 0 {
				_ = cons.Submit(encodeTTCEntry(num))
			}
		}
		// Flush whatever is pending so the conservation check can demand
		// every transaction reached exactly one block.
		_ = cons.Submit(encodeTTCEntry(svc.Height()))

		next := byte(0)
		for i, b := range blocks {
			if b.Num != uint64(i) {
				t.Fatalf("iter %d: block %d has number %d (cut twice or skipped)", iter, i, b.Num)
			}
			if len(b.Txs) == 0 {
				t.Fatalf("iter %d: block %d is empty", iter, i)
			}
			for _, tx := range b.Txs {
				if tx.Payload[0] != next {
					t.Fatalf("iter %d: tx order broken: got %d, want %d", iter, tx.Payload[0], next)
				}
				next++
			}
		}
		if int(next) != submitted {
			t.Fatalf("iter %d: %d submitted, %d landed in blocks", iter, submitted, next)
		}
		if svc.Height() != uint64(len(blocks)) {
			t.Fatalf("iter %d: height %d, %d blocks delivered", iter, svc.Height(), len(blocks))
		}
	}
}
