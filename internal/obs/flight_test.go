package obs

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestFlightDumpOnInjectedViolation simulates the lookahead-violation
// wiring: rings fill during a "run", an invariant breach fires the shard
// dump, and the artifact holds exactly the offending shard's last N
// events.
func TestFlightDumpOnInjectedViolation(t *testing.T) {
	tr := NewTracer(3, 8)
	rec := NewFlightRecorder(tr, 8, t.TempDir())
	for i := 0; i < 100; i++ {
		tr.Shards[1].Emit(Event{At: time.Duration(i), Kind: EvGossipSend, Node: 1, Peer: 2, Num: uint64(i)})
		tr.Shards[0].Emit(Event{At: time.Duration(i), Kind: EvGossipRecv, Node: 3, Peer: 4, Num: uint64(i)})
	}

	// The hook the runner installs via sim.ShardedEngine.SetViolationHook:
	// dump the offending shard, then let the panic propagate.
	violated := func(src int, msg string) {
		if _, err := rec.DumpShard(src, msg); err != nil {
			t.Fatalf("dump: %v", err)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the injected violation to panic")
			}
		}()
		violated(1, "cross-shard delivery violates window horizon")
		panic("sim: cross-shard delivery violates window horizon")
	}()

	path := rec.Path()
	if path == "" {
		t.Fatal("no dump path recorded")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "violates window horizon") {
		t.Fatalf("dump missing reason:\n%s", out)
	}
	if !strings.Contains(out, "-- context 1: last 8 of 100 events") {
		t.Fatalf("dump missing offending-shard header:\n%s", out)
	}
	if strings.Contains(out, "-- context 0") {
		t.Fatalf("shard dump leaked other contexts:\n%s", out)
	}
	// The last 8 events of shard 1 are nums 92..99, in order.
	for n := 92; n <= 99; n++ {
		if !strings.Contains(out, `"num":`+strconv.Itoa(n)) {
			t.Fatalf("dump missing event %d:\n%s", n, out)
		}
	}
	if strings.Contains(out, `"num":91,`) {
		t.Fatalf("dump holds evicted event 91:\n%s", out)
	}
}

// TestFlightDumpAllShards pins the quiescent full dump (post-run audits).
func TestFlightDumpAllShards(t *testing.T) {
	tr := NewTracer(2, 4)
	rec := NewFlightRecorder(tr, 4, t.TempDir())
	tr.Shards[0].Emit(Event{Kind: EvBlockCut, Num: 1})
	tr.Shards[1].Emit(Event{Kind: EvBlockCommit, Num: 1})
	path, err := rec.Dump("pool leak")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"pool leak", "-- context 0", "-- context 1", "block_cut", "block_commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
