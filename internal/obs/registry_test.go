package obs

import (
	"bytes"
	"strings"
	"testing"
)

// fill populates a registry with a deterministic pseudo-random workload
// derived from seed, exercising counters, gauges and histogram buckets.
func fill(r *Registry, seed uint64) {
	c := r.Counter("msgs_total", "class", "data")
	g := r.Gauge("peak_pending")
	h := r.Histogram("msg_bytes", SizeBuckets)
	x := seed
	for i := 0; i < 500; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		c.Add(x % 7)
		g.SetMax(int64(x % 100000))
		h.Observe(float64(x % 2000000))
	}
}

func snapshotEqual(t *testing.T, a, b *Registry) {
	t.Helper()
	var ba, bb bytes.Buffer
	if err := a.Snapshot().WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot().WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatalf("snapshots differ:\n%s\n--\n%s", ba.String(), bb.String())
	}
}

// TestMergeCommutative pins A+B == B+A for the full instrument mix — the
// property that makes shard merge order a free choice.
func TestMergeCommutative(t *testing.T) {
	a1, b1 := NewRegistry(), NewRegistry()
	fill(a1, 1)
	fill(b1, 2)
	ab := NewRegistry()
	ab.Merge(a1)
	ab.Merge(b1)
	ba := NewRegistry()
	ba.Merge(b1)
	ba.Merge(a1)
	snapshotEqual(t, ab, ba)
}

// TestMergeAssociative pins (A+B)+C == A+(B+C): barrier-time partial
// merges and one big report-time merge agree.
func TestMergeAssociative(t *testing.T) {
	mk := func(seed uint64) *Registry {
		r := NewRegistry()
		fill(r, seed)
		return r
	}
	left := NewRegistry()
	left.Merge(mk(1))
	left.Merge(mk(2))
	left.Merge(mk(3))

	inner := NewRegistry()
	inner.Merge(mk(2))
	inner.Merge(mk(3))
	right := NewRegistry()
	right.Merge(mk(1))
	right.Merge(inner)

	snapshotEqual(t, left, right)
}

// TestHistogramBuckets pins the inclusive-upper-edge bucketing and the
// implicit overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", []float64{10, 20})
	for _, v := range []float64{5, 10, 11, 20, 21, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2} // (<=10)=5,10  (<=20)=11,20  +Inf=21,1000
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, h.counts[i], w, h.counts)
		}
	}
	if h.Count() != 6 || h.Sum() != 5+10+11+20+21+1000 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
}

// TestHotPathAllocs pins the zero-alloc contract of the single-threaded
// instruments: bumping a counter, raising a gauge and observing into a
// histogram must not touch the heap.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", SizeBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.SetMax(42)
		h.Observe(512)
	}); n != 0 {
		t.Fatalf("instrument ops allocated %.1f per run, want 0", n)
	}
}

// TestConcurrentRegistry exercises the locked variant from several
// goroutines (run with -race) and checks the totals.
func TestConcurrentRegistry(t *testing.T) {
	r := NewConcurrentRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{50})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 100))
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

// TestPrometheusFormat sanity-checks the text exposition: type headers,
// label rendering, cumulative histogram buckets with +Inf.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", "class", "data").Add(7)
	r.Gauge("pending").Set(3)
	h := r.Histogram("bytes", []float64{10})
	h.Observe(5)
	h.Observe(50)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msgs_total counter",
		`msgs_total{class="data"} 7`,
		"pending 3",
		`bytes_bucket{le="10"} 1`,
		`bytes_bucket{le="+Inf"} 2`,
		"bytes_sum 55",
		"bytes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegisterIdempotent pins that re-registering the same id returns the
// same instrument regardless of label pair order.
func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "a", "1", "b", "2")
	b := r.Counter("x", "b", "2", "a", "1")
	if a != b {
		t.Fatal("same id returned distinct counters")
	}
	a.Add(5)
	if v, ok := r.Snapshot().Get("x", "a", "1", "b", "2"); !ok || v != 5 {
		t.Fatalf("snapshot get = %v %v", v, ok)
	}
}
