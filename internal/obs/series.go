package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Series is an opt-in per-window metric timeline: at each sample instant
// the live (shard-local) registries are merged and every instrument's
// value is appended as one row, so scenario reports can show how a metric
// moved, not just where it ended. Sampling happens on the control plane at
// quiescent instants (barrier-hosted in sharded runs), so the values are
// deterministic per seed.
type Series struct {
	Period time.Duration `json:"period_ns"`
	// Names lists the instrument ids (name + rendered labels), fixed at
	// the first sample; Rows carry one value per name.
	Names []string    `json:"names"`
	Rows  []SeriesRow `json:"rows"`
}

// SeriesRow is one sample instant: counter/gauge values (histogram means)
// in Names order.
type SeriesRow struct {
	At   time.Duration `json:"at_ns"`
	Vals []float64     `json:"vals"`
}

// NewSeries returns an empty timeline with the given sampling period.
func NewSeries(period time.Duration) *Series { return &Series{Period: period} }

// Sample merges the live registries and appends one row. The first call
// fixes the instrument set; instruments registered later are ignored
// (registries pre-register everything up front, so in practice the set is
// stable).
func (s *Series) Sample(at time.Duration, regs []*Registry) {
	merged := NewRegistry()
	for _, r := range regs {
		if r != nil {
			merged.Merge(r)
		}
	}
	snap := merged.Snapshot()
	if s.Names == nil {
		s.Names = make([]string, len(snap.Metrics))
		for i, m := range snap.Metrics {
			s.Names[i] = m.Name + m.Labels
		}
	}
	row := SeriesRow{At: at, Vals: make([]float64, len(s.Names))}
	// Snapshot order is sorted by id and the instrument set is stable, so
	// positions normally line up; fall back to a scan if they ever drift.
	for i, name := range s.Names {
		if i < len(snap.Metrics) && snap.Metrics[i].Name+snap.Metrics[i].Labels == name {
			row.Vals[i] = snap.Metrics[i].Value
			continue
		}
		for _, m := range snap.Metrics {
			if m.Name+m.Labels == name {
				row.Vals[i] = m.Value
				break
			}
		}
	}
	s.Rows = append(s.Rows, row)
}

// WriteJSON emits the timeline as indented JSON.
func (s *Series) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
