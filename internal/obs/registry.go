// Package obs is the unified observability plane: a metrics registry
// (counters, gauges, fixed-bucket histograms) shared by the simulated and
// real runtimes, a deterministic structured event-trace layer, and a crash
// flight recorder.
//
// The registry follows the same single-writer discipline as
// netmodel.Traffic: a Registry built with NewRegistry is lock-free and
// must only be touched from one goroutine (one per simulation shard — the
// shard's own event loop), while NewConcurrentRegistry takes atomic/locked
// writes from any goroutine (the TCP runtime). Shard-local registries are
// folded together with Merge at barriers or report time, exactly like
// GroupedLatency.All(): determinism comes from merging in a fixed order at
// a quiescent instant, not from synchronizing the hot path.
//
// Instruments are registered once, up front, by name plus label pairs; the
// hot path holds the returned pointer and never performs a map lookup, so
// a counter bump or histogram observation allocates nothing.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates the registry's instrument types.
type MetricKind uint8

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v          uint64
	concurrent bool
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c.concurrent {
		atomic.AddUint64(&c.v, n)
		return
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c.concurrent {
		return atomic.LoadUint64(&c.v)
	}
	return c.v
}

// Gauge is a settable int64 level (queue depths, outstanding envelopes,
// high-water marks).
type Gauge struct {
	v          int64
	concurrent bool
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g.concurrent {
		atomic.StoreInt64(&g.v, v)
		return
	}
	g.v = v
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g.concurrent {
		atomic.AddInt64(&g.v, delta)
		return
	}
	g.v += delta
}

// SetMax raises the gauge to v if v is larger (high-water tracking).
func (g *Gauge) SetMax(v int64) {
	if g.concurrent {
		for {
			cur := atomic.LoadInt64(&g.v)
			if v <= cur || atomic.CompareAndSwapInt64(&g.v, cur, v) {
				return
			}
		}
	}
	if v > g.v {
		g.v = v
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g.concurrent {
		return atomic.LoadInt64(&g.v)
	}
	return g.v
}

// Histogram accumulates observations into fixed buckets declared at
// registration. Bounds are inclusive upper edges; one implicit +Inf bucket
// catches the overflow. Observation is allocation-free: a linear scan over
// a handful of bounds beats binary search at these sizes and touches no
// heap.
type Histogram struct {
	bounds     []float64
	counts     []uint64 // len(bounds)+1; last is +Inf
	sum        float64
	count      uint64
	concurrent bool
	mu         sync.Mutex // taken only when concurrent
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.concurrent {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h.concurrent {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() float64 {
	if h.concurrent {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return h.sum
}

// SizeBuckets is the default bucket layout for message-size histograms
// (bytes), spanning heartbeat-sized rumors to full block batches.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// instrument is one registered metric: its identity plus exactly one of
// the value holders.
type instrument struct {
	name   string
	labels string // rendered {k="v",...} or ""
	id     string // name + labels — the registry key and sort key
	kind   MetricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. The zero value is not usable; build
// with NewRegistry (single-threaded, for shard-local use) or
// NewConcurrentRegistry (locked/atomic, for the real runtime).
type Registry struct {
	concurrent bool
	mu         sync.Mutex // guards the maps; instruments guard themselves
	byID       map[string]*instrument
	order      []*instrument
}

// NewRegistry returns a single-threaded registry: registration and every
// instrument operation must stay on one goroutine (the owning shard's).
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

// NewConcurrentRegistry returns a registry safe for concurrent use:
// counters and gauges go through atomics, histograms through a mutex.
func NewConcurrentRegistry() *Registry {
	return &Registry{concurrent: true, byID: make(map[string]*instrument)}
}

// renderLabels builds the canonical sorted `{k="v",...}` form. Empty input
// renders empty. Pairs must alternate key, value.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the existing instrument for id, checking kind agreement,
// or nil.
func (r *Registry) lookup(id string, kind MetricKind) *instrument {
	if ins, ok := r.byID[id]; ok {
		if ins.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %v, requested as %v", id, ins.kind, kind))
		}
		return ins
	}
	return nil
}

func (r *Registry) register(ins *instrument) {
	r.byID[ins.id] = ins
	r.order = append(r.order, ins)
}

// Counter registers (or returns the existing) counter under name with the
// given alternating key/value label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := renderLabels(labels)
	id := name + l
	if ins := r.lookup(id, KindCounter); ins != nil {
		return ins.counter
	}
	c := &Counter{concurrent: r.concurrent}
	r.register(&instrument{name: name, labels: l, id: id, kind: KindCounter, counter: c})
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := renderLabels(labels)
	id := name + l
	if ins := r.lookup(id, KindGauge); ins != nil {
		return ins.gauge
	}
	g := &Gauge{concurrent: r.concurrent}
	r.register(&instrument{name: name, labels: l, id: id, kind: KindGauge, gauge: g})
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// inclusive upper bucket bounds (ascending; +Inf is implicit). Re-registering
// with different bounds panics — the merge contract needs one layout per id.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := renderLabels(labels)
	id := name + l
	if ins := r.lookup(id, KindHistogram); ins != nil {
		if len(ins.hist.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: %s re-registered with %d bounds, had %d", id, len(bounds), len(ins.hist.bounds)))
		}
		for i := range bounds {
			if ins.hist.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: %s re-registered with different bounds", id))
			}
		}
		return ins.hist
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: %s bounds not ascending: %v", id, bounds))
		}
	}
	h := &Histogram{
		bounds:     append([]float64(nil), bounds...),
		counts:     make([]uint64, len(bounds)+1),
		concurrent: r.concurrent,
	}
	r.register(&instrument{name: name, labels: l, id: id, kind: KindHistogram, hist: h})
	return h
}

// Merge folds other's instruments into r: counters and histogram buckets
// add, gauges take the maximum (the shard-local gauges are high-water style
// levels, and max is the only merge that is associative, commutative and
// idempotent for them). Missing instruments are registered on first sight.
// Call only at quiescent instants (a barrier, or after the run) — Merge
// reads other's values without synchronization.
func (r *Registry) Merge(other *Registry) {
	other.mu.Lock()
	ins := append([]*instrument(nil), other.order...)
	other.mu.Unlock()
	for _, o := range ins {
		switch o.kind {
		case KindCounter:
			r.Counter(o.name, labelPairs(o.labels)...).Add(o.counter.Value())
		case KindGauge:
			r.Gauge(o.name, labelPairs(o.labels)...).SetMax(o.gauge.Value())
		case KindHistogram:
			h := r.Histogram(o.name, o.hist.bounds, labelPairs(o.labels)...)
			if o.hist.concurrent {
				o.hist.mu.Lock()
			}
			if h.concurrent {
				h.mu.Lock()
			}
			for i, c := range o.hist.counts {
				h.counts[i] += c
			}
			h.sum += o.hist.sum
			h.count += o.hist.count
			if h.concurrent {
				h.mu.Unlock()
			}
			if o.hist.concurrent {
				o.hist.mu.Unlock()
			}
		}
	}
}

// labelPairs parses a rendered `{k="v",...}` back to alternating pairs —
// only Merge needs the reverse mapping, so a small parser beats carrying
// the pair slice on every instrument.
func labelPairs(rendered string) []string {
	if rendered == "" {
		return nil
	}
	body := strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
	var pairs []string
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			panic(fmt.Sprintf("obs: malformed label set %q", rendered))
		}
		unq, err := unquote(v)
		if err != nil {
			panic(fmt.Sprintf("obs: malformed label value %q: %v", v, err))
		}
		pairs = append(pairs, k, unq)
	}
	return pairs
}

func unquote(s string) (string, error) {
	var out string
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		return "", err
	}
	return out, nil
}

// Metric is one instrument's snapshot.
type Metric struct {
	Name   string    `json:"name"`
	Labels string    `json:"labels,omitempty"`
	Kind   string    `json:"kind"`
	Value  float64   `json:"value"`
	Count  uint64    `json:"count,omitempty"`
	Sum    float64   `json:"sum,omitempty"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ordered by id — the
// deterministic export surface behind the JSON and Prometheus emitters.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot copies every instrument's current value, sorted by id.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	ins := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool { return ins[i].id < ins[j].id })
	s := &Snapshot{Metrics: make([]Metric, 0, len(ins))}
	for _, in := range ins {
		m := Metric{Name: in.name, Labels: in.labels, Kind: in.kind.String()}
		switch in.kind {
		case KindCounter:
			m.Value = float64(in.counter.Value())
		case KindGauge:
			m.Value = float64(in.gauge.Value())
		case KindHistogram:
			h := in.hist
			if h.concurrent {
				h.mu.Lock()
			}
			m.Count = h.count
			m.Sum = h.sum
			m.Bounds = append([]float64(nil), h.bounds...)
			m.Counts = append([]uint64(nil), h.counts...)
			if h.concurrent {
				h.mu.Unlock()
			}
			if h.count > 0 {
				m.Value = h.sum / float64(h.count)
			}
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s
}

// Get returns the snapshot value for name+labels (counter/gauge value,
// histogram mean) and whether it exists.
func (s *Snapshot) Get(name string, labels ...string) (float64, bool) {
	id := name + renderLabels(labels)
	for _, m := range s.Metrics {
		if m.Name+m.Labels == id {
			return m.Value, true
		}
	}
	return 0, false
}

// WriteJSON emits the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (hand-rolled: the real runtime must not grow a dependency for
// what is twenty lines of formatting).
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Kind {
		case "histogram":
			cum := uint64(0)
			for i, b := range m.Bounds {
				cum += m.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLabel(m.Labels, "le", formatBound(b)), cum); err != nil {
					return err
				}
			}
			cum += m.Counts[len(m.Counts)-1]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLabel(m.Labels, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
				m.Name, m.Labels, m.Sum, m.Name, m.Labels, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %g\n", m.Name, m.Labels, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and emits it in the Prometheus
// text format — the /metrics handler body for the real runtime.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// withLabel splices one extra label into an already-rendered label set.
func withLabel(rendered, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// formatBound renders a bucket edge the way Prometheus expects.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}
