package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"fabricgossip/internal/wire"
)

// EventKind is the type tag of one structured trace point.
type EventKind uint8

const (
	EvNone EventKind = iota
	// Wire-level points, emitted by the transport choke point. The send
	// lands in the sender's shard buffer, the receive in the receiver's,
	// so emission never crosses a goroutine boundary.
	EvGossipSend // block/push dissemination traffic leaving a NIC
	EvGossipRecv
	EvDigestSend // digest-exchange traffic (push digests, pull rounds)
	EvDigestRecv
	EvSyncSend // state-sync round traffic (StateRequest/StateResponse)
	EvSyncRecv
	EvMemberSend // membership traffic (heartbeats, rumors, shuffles)
	EvMemberRecv
	EvRaftSend // consenter cluster traffic (votes, appends, forwards)
	EvRaftRecv
	EvOrderSend // ordering-service traffic (submissions, deliver streams)
	EvOrderRecv

	// Subsystem-level points, emitted by hooks on the owning context.
	EvMembership  // a peer's membership view flipped a member live/dead
	EvElection    // a consenter won a Raft election (Num = term)
	EvRaftState   // any consenter role transition (Num = term, Aux = state)
	EvAppend      // a Raft log append (Num = index, Aux = term)
	EvBlockCut    // the ordering service cut a block (Num = block)
	EvBlockCommit // a peer committed a block in order (Num = block)
	EvDeliver     // the ordering stream handed a block to an org leader
	EvBarrier     // the sharded coordinator ran a full window barrier
	EvFault       // a scenario fault action was applied
)

var eventKindNames = [...]string{
	EvNone:        "none",
	EvGossipSend:  "gossip_send",
	EvGossipRecv:  "gossip_recv",
	EvDigestSend:  "digest_send",
	EvDigestRecv:  "digest_recv",
	EvSyncSend:    "sync_send",
	EvSyncRecv:    "sync_recv",
	EvMemberSend:  "member_send",
	EvMemberRecv:  "member_recv",
	EvRaftSend:    "raft_send",
	EvRaftRecv:    "raft_recv",
	EvOrderSend:   "order_send",
	EvOrderRecv:   "order_recv",
	EvMembership:  "membership",
	EvElection:    "election",
	EvRaftState:   "raft_state",
	EvAppend:      "append",
	EvBlockCut:    "block_cut",
	EvBlockCommit: "block_commit",
	EvDeliver:     "deliver",
	EvBarrier:     "barrier",
	EvFault:       "fault",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", k)
}

// wireSendClass maps a wire message type to its send-side trace kind; the
// receive side is always the next enum value. Indexed by MsgType, so the
// transport's per-message classification is one array load.
var wireSendClass = [...]EventKind{
	wire.TypeData:               EvGossipSend,
	wire.TypePushDigest:         EvDigestSend,
	wire.TypePushRequest:        EvDigestSend,
	wire.TypePullHello:          EvDigestSend,
	wire.TypePullDigest:         EvDigestSend,
	wire.TypePullRequest:        EvDigestSend,
	wire.TypePullData:           EvGossipSend,
	wire.TypeStateInfo:          EvMemberSend,
	wire.TypeStateRequest:       EvSyncSend,
	wire.TypeStateResponse:      EvSyncSend,
	wire.TypeAlive:              EvMemberSend,
	wire.TypeRaftVoteRequest:    EvRaftSend,
	wire.TypeRaftVoteResponse:   EvRaftSend,
	wire.TypeRaftAppend:         EvRaftSend,
	wire.TypeRaftAppendResponse: EvRaftSend,
	wire.TypeRaftForward:        EvRaftSend,
	wire.TypeSubmitTx:           EvOrderSend,
	wire.TypeDeliverBlock:       EvOrderSend,
	wire.TypeMemberEvents:       EvMemberSend,
	wire.TypeShuffleRequest:     EvMemberSend,
	wire.TypeShuffleResponse:    EvMemberSend,
}

// WireSendKind classifies an outgoing wire message.
func WireSendKind(t wire.MsgType) EventKind {
	if int(t) < len(wireSendClass) && wireSendClass[t] != EvNone {
		return wireSendClass[t]
	}
	return EvGossipSend
}

// WireRecvKind classifies a delivered wire message (the recv twin of
// WireSendKind — the enum interleaves send/recv pairs).
func WireRecvKind(t wire.MsgType) EventKind {
	return WireSendKind(t) + 1
}

// Event is one fixed-size trace point. Node and Peer are dense node ids
// (-1 when absent); Num and Aux carry kind-specific payload (block number,
// Raft term, message type, byte size). The struct is flat and pointer-free
// so emitting into a preallocated buffer allocates nothing.
type Event struct {
	At   time.Duration
	Kind EventKind
	Node int32
	Peer int32
	Num  uint64
	Aux  uint64
}

// ShardTrace is one emission context's event buffer: a single-writer,
// append-only log (ringCap == 0), or a bounded ring keeping the most
// recent ringCap events (the flight-recorder mode). Each simulation shard
// owns exactly one, written only from its own goroutine.
type ShardTrace struct {
	events []Event
	cap    int // 0 = unbounded
	next   int // ring write position
	total  uint64
}

// NewShardTrace returns a buffer; ringCap == 0 keeps every event, ringCap
// > 0 keeps only the last ringCap.
func NewShardTrace(ringCap int) *ShardTrace {
	t := &ShardTrace{cap: ringCap}
	if ringCap > 0 {
		t.events = make([]Event, 0, ringCap)
	}
	return t
}

// Emit appends one event. Ring mode overwrites the oldest.
func (t *ShardTrace) Emit(e Event) {
	t.total++
	if t.cap == 0 {
		t.events = append(t.events, e)
		return
	}
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % t.cap
}

// Len returns the number of buffered events.
func (t *ShardTrace) Len() int { return len(t.events) }

// Total returns the lifetime emission count (>= Len in ring mode).
func (t *ShardTrace) Total() uint64 { return t.total }

// Last copies up to n of the most recent events, oldest first.
func (t *ShardTrace) Last(n int) []Event {
	all := t.chronological()
	if n < len(all) {
		all = all[len(all)-n:]
	}
	return all
}

// chronological returns the buffered events oldest-first (unrolling the
// ring when it has wrapped). The full-mode slice is returned as-is; ring
// mode copies.
func (t *ShardTrace) chronological() []Event {
	if t.cap == 0 || len(t.events) < t.cap {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Tracer bundles one ShardTrace per emission context: in a sharded run,
// one per organization shard, one for the ordering shard, and one for the
// control plane; sequentially a single context carries everything in exact
// emission order.
type Tracer struct {
	Shards []*ShardTrace
}

// NewTracer builds n contexts with the given ring capacity (0 = full).
func NewTracer(n, ringCap int) *Tracer {
	t := &Tracer{Shards: make([]*ShardTrace, n)}
	for i := range t.Shards {
		t.Shards[i] = NewShardTrace(ringCap)
	}
	return t
}

// Total returns the lifetime emissions across every context.
func (t *Tracer) Total() uint64 {
	var n uint64
	for _, s := range t.Shards {
		n += s.Total()
	}
	return n
}

// Merged assembles the run's total event order: (At, context index,
// emission order) — the same total order PR 8's text-trace merge uses, a
// pure function of (seed, scenario) regardless of how shard goroutines
// interleaved. Call only after the run (or at a barrier).
func (t *Tracer) Merged() []Event {
	if len(t.Shards) == 1 {
		return append([]Event(nil), t.Shards[0].chronological()...)
	}
	type tagged struct {
		e        Event
		buf, pos int
	}
	var all []tagged
	for b, s := range t.Shards {
		for p, e := range s.chronological() {
			all = append(all, tagged{e, b, p})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].e.At != all[j].e.At {
			return all[i].e.At < all[j].e.At
		}
		if all[i].buf != all[j].buf {
			return all[i].buf < all[j].buf
		}
		return all[i].pos < all[j].pos
	})
	out := make([]Event, len(all))
	for i, e := range all {
		out[i] = e.e
	}
	return out
}

// WriteJSONL emits events one JSON object per line with a fixed field
// order and integer-nanosecond timestamps, so identical event sequences
// produce byte-identical files — the property the GOMAXPROCS determinism
// test pins.
func WriteJSONL(w io.Writer, events []Event) error {
	for i := range events {
		e := &events[i]
		if _, err := fmt.Fprintf(w, "{\"at_ns\":%d,\"kind\":%q,\"node\":%d,\"peer\":%d,\"num\":%d,\"aux\":%d}\n",
			e.At.Nanoseconds(), e.Kind.String(), e.Node, e.Peer, e.Num, e.Aux); err != nil {
			return err
		}
	}
	return nil
}
