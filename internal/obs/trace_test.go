package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ev(at int, kind EventKind, num uint64) Event {
	return Event{At: time.Duration(at), Kind: kind, Node: 1, Peer: 2, Num: num}
}

// TestRingSemantics pins the bounded buffer: once full it keeps exactly
// the most recent cap events, oldest first.
func TestRingSemantics(t *testing.T) {
	s := NewShardTrace(4)
	for i := 0; i < 10; i++ {
		s.Emit(ev(i, EvGossipSend, uint64(i)))
	}
	if s.Len() != 4 || s.Total() != 10 {
		t.Fatalf("len=%d total=%d", s.Len(), s.Total())
	}
	last := s.Last(4)
	for i, e := range last {
		if e.Num != uint64(6+i) {
			t.Fatalf("ring kept %v, want 6..9", last)
		}
	}
	if got := s.Last(2); len(got) != 2 || got[0].Num != 8 {
		t.Fatalf("Last(2) = %v", got)
	}
}

// TestMergedOrder pins the (At, context, emission order) total order.
func TestMergedOrder(t *testing.T) {
	tr := NewTracer(3, 0)
	tr.Shards[2].Emit(ev(5, EvFault, 0))
	tr.Shards[0].Emit(ev(5, EvGossipSend, 1))
	tr.Shards[0].Emit(ev(5, EvGossipSend, 2))
	tr.Shards[1].Emit(ev(3, EvGossipRecv, 3))
	merged := tr.Merged()
	wantNum := []uint64{3, 1, 2, 0} // t=3 first; then t=5 by context 0,0,2
	if len(merged) != len(wantNum) {
		t.Fatalf("merged %d events", len(merged))
	}
	for i, e := range merged {
		if e.Num != wantNum[i] {
			t.Fatalf("merged order %v, want nums %v", merged, wantNum)
		}
	}
}

// TestJSONLStable pins byte-identity: the same events serialize to the
// same bytes, with integer timestamps and a fixed field order.
func TestJSONLStable(t *testing.T) {
	events := []Event{
		{At: 1500 * time.Microsecond, Kind: EvBlockCommit, Node: 7, Peer: -1, Num: 3, Aux: 0},
		{At: 2 * time.Millisecond, Kind: EvSyncSend, Node: 1, Peer: 2, Num: 9, Aux: 128},
	}
	var a, b bytes.Buffer
	if err := WriteJSONL(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b, events); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("serialization not stable")
	}
	want := `{"at_ns":1500000,"kind":"block_commit","node":7,"peer":-1,"num":3,"aux":0}` + "\n"
	if !strings.HasPrefix(a.String(), want) {
		t.Fatalf("unexpected line:\n%s", a.String())
	}
}

// TestEmitNoAllocsRing pins that ring-mode emission is allocation-free
// once the ring is warm — the flight recorder must be attachable to the
// per-message hot path without breaking its 0 allocs/op contract.
func TestEmitNoAllocsRing(t *testing.T) {
	s := NewShardTrace(64)
	e := ev(1, EvGossipSend, 1)
	for i := 0; i < 128; i++ {
		s.Emit(e)
	}
	if n := testing.AllocsPerRun(1000, func() { s.Emit(e) }); n != 0 {
		t.Fatalf("ring emit allocated %.1f per run, want 0", n)
	}
}

// TestWireKindTable spot-checks the message-type classification and the
// send/recv pairing.
func TestWireKindTable(t *testing.T) {
	if WireSendKind(10) == EvNone {
		t.Fatal("unmapped type fell to EvNone")
	}
	for k := EvGossipSend; k <= EvOrderSend; k += 2 {
		if k.String() == "" {
			t.Fatalf("kind %d unnamed", k)
		}
	}
}
