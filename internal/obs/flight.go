package obs

import (
	"fmt"
	"os"
	"sync"
)

// FlightRecorder turns a Tracer's buffers into a crash artifact: when an
// invariant breaks — a cross-shard lookahead violation, a pooled-envelope
// leak, a workload accounting breach — the recorder writes the most recent
// events to a file, so 100k-peer failures arrive with the context that
// produced them instead of a one-line panic.
//
// The tracer's buffers are usually rings (Options.FlightRing), bounding
// memory; a full trace works too, the dump simply takes its tail.
type FlightRecorder struct {
	tracer *Tracer
	n      int    // events per context in a dump
	dir    string // dump directory ("" = os.TempDir())

	mu   sync.Mutex
	path string // most recent dump
}

// NewFlightRecorder wraps the tracer. Each dump carries up to lastN events
// per context; dir empty means the OS temp directory.
func NewFlightRecorder(t *Tracer, lastN int, dir string) *FlightRecorder {
	if lastN <= 0 {
		lastN = 256
	}
	return &FlightRecorder{tracer: t, n: lastN, dir: dir}
}

// Path returns the most recent dump's file path ("" if none yet).
func (f *FlightRecorder) Path() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.path
}

// Dump writes every context's recent events. Call only at quiescent
// instants (post-run audits, barrier hooks): it reads all buffers.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	return f.dump(reason, -1)
}

// DumpShard writes a single context's recent events — the safe variant
// when the failing goroutine owns only its own shard's buffer, as in a
// lookahead-violation panic mid-window (the other shards are still
// running; touching their buffers would race).
func (f *FlightRecorder) DumpShard(shard int, reason string) (string, error) {
	return f.dump(reason, shard)
}

func (f *FlightRecorder) dump(reason string, only int) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out, err := os.CreateTemp(f.dir, "fabricgossip-flight-*.log")
	if err != nil {
		return "", err
	}
	defer out.Close()
	if _, err := fmt.Fprintf(out, "flight recorder dump: %s\n", reason); err != nil {
		return "", err
	}
	for i, s := range f.tracer.Shards {
		if only >= 0 && i != only {
			continue
		}
		last := s.Last(f.n)
		if _, err := fmt.Fprintf(out, "-- context %d: last %d of %d events\n", i, len(last), s.Total()); err != nil {
			return "", err
		}
		if err := WriteJSONL(out, last); err != nil {
			return "", err
		}
	}
	f.path = out.Name()
	return f.path, nil
}
