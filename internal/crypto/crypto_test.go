package crypto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignAndVerify(t *testing.T) {
	s, err := NewSigner(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello gossip")
	sig := s.Sign(msg)
	if err := Verify(s.Public(), msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	s, _ := NewSigner(rand.New(rand.NewSource(1)))
	sig := s.Sign([]byte("original"))
	if err := Verify(s.Public(), []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message verified")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1, _ := NewSigner(rand.New(rand.NewSource(1)))
	s2, _ := NewSigner(rand.New(rand.NewSource(2)))
	msg := []byte("msg")
	if err := Verify(s2.Public(), msg, s1.Sign(msg)); err == nil {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyRejectsBadKeyLength(t *testing.T) {
	if err := Verify(PublicKey([]byte{1, 2, 3}), []byte("m"), Signature{}); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a, _ := NewSigner(rand.New(rand.NewSource(7)))
	b, _ := NewSigner(rand.New(rand.NewSource(7)))
	if string(a.Public()) != string(b.Public()) {
		t.Fatal("same seed produced different keys")
	}
	c, _ := NewSigner(rand.New(rand.NewSource(8)))
	if string(a.Public()) == string(c.Public()) {
		t.Fatal("different seeds produced identical keys")
	}
}

func TestHashProperties(t *testing.T) {
	h1 := Hash([]byte("a"), []byte("b"))
	h3 := Hash([]byte("x"))
	if h1 == h3 {
		t.Fatal("distinct inputs hashed equal")
	}
	if h1.IsZero() {
		t.Fatal("hash of data should not be zero")
	}
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest should report IsZero")
	}
	if len(h1.String()) != 16 {
		t.Fatalf("String() length %d, want 16 hex chars", len(h1.String()))
	}
}

func TestHashUint64DomainSeparation(t *testing.T) {
	if HashUint64(1, []byte("x")) == HashUint64(2, []byte("x")) {
		t.Fatal("different numbers produced same digest")
	}
	if HashUint64(1, []byte("x")) != HashUint64(1, []byte("x")) {
		t.Fatal("hash not deterministic")
	}
}

// Property: signatures over arbitrary byte strings always verify under the
// signing key.
func TestPropertySignVerifyRoundTrip(t *testing.T) {
	s, _ := NewSigner(rand.New(rand.NewSource(3)))
	f := func(msg []byte) bool {
		return Verify(s.Public(), msg, s.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
