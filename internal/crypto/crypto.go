// Package crypto provides the signing and hashing primitives used across
// the blockchain substrate: Ed25519 identities and SHA-256 digests.
//
// The paper's deployment uses Fabric's X.509/ECDSA MSP; Ed25519 plays the
// same structural role (certified identities, signed endorsements and
// blocks, verifiable hash chain) with stdlib-only dependencies.
package crypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
)

// Digest is a SHA-256 hash value.
type Digest [sha256.Size]byte

// String returns the first 8 bytes of the digest in hex, enough for logs.
func (d Digest) String() string { return hex.EncodeToString(d[:8]) }

// IsZero reports whether the digest is all zeroes (used for the genesis
// block's previous-hash field).
func (d Digest) IsZero() bool { return d == Digest{} }

// Hash returns the SHA-256 digest of the concatenation of the given chunks.
func Hash(chunks ...[]byte) Digest {
	h := sha256.New()
	for _, c := range chunks {
		_, _ = h.Write(c)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// HashUint64 returns the digest of the 8-byte big-endian encoding of v
// prepended to data. It gives cheap domain separation for numbered items.
func HashUint64(v uint64, data []byte) Digest {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return Hash(buf[:], data)
}

// Signature is an Ed25519 signature.
type Signature []byte

// PublicKey identifies a signer.
type PublicKey = ed25519.PublicKey

// Signer holds a private key and signs messages.
type Signer struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewSigner generates a key pair deterministically from the given RNG,
// which keeps simulated networks reproducible. Pass a crypto-quality reader
// in production settings.
func NewSigner(rng *rand.Rand) (*Signer, error) {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return &Signer{priv: priv, pub: priv.Public().(ed25519.PublicKey)}, nil
}

// Public returns the signer's public key.
func (s *Signer) Public() PublicKey { return s.pub }

// Sign signs msg.
func (s *Signer) Sign(msg []byte) Signature {
	return Signature(ed25519.Sign(s.priv, msg))
}

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("crypto: signature verification failed")

// Verify checks sig over msg under pub.
func Verify(pub PublicKey, msg []byte, sig Signature) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("crypto: bad public key length %d: %w", len(pub), ErrBadSignature)
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}
