package analysis

import (
	"math"
	"testing"

	"fabricgossip/internal/sim"
)

func TestExactPeMatchesPaperTTLs(t *testing.T) {
	// The exact occupancy chain is strictly sharper than the closed-form
	// union bound: it certifies pe <= 1e-6 one round earlier at fout=4
	// (8 vs the paper's conservative 9) and several rounds earlier at
	// fout=2 (14 vs the paper's 19). The paper's published TTLs therefore
	// hold with margin under the exact analysis.
	cases := []struct{ fout, wantTTL, paperTTL int }{
		{4, 8, 9},
		{3, 10, 11},
		{2, 14, 19},
	}
	for _, c := range cases {
		got, err := ExactTTLFor(100, c.fout, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.wantTTL {
			t.Errorf("ExactTTLFor(100, %d, 1e-6) = %d, want %d", c.fout, got, c.wantTTL)
		}
		boundTTL, err := TTLFor(100, c.fout, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if got > boundTTL {
			t.Errorf("exact TTL %d exceeds the conservative bound's %d", got, boundTTL)
		}
		pePaper, err := ExactPe(100, c.fout, c.paperTTL)
		if err != nil {
			t.Fatal(err)
		}
		if pePaper > 1e-6 {
			t.Errorf("exact pe at the paper's (fout=%d, TTL=%d) = %g, want <= 1e-6",
				c.fout, c.paperTTL, pePaper)
		}
	}
}

func TestExactPeIsAProbabilityAndDecreases(t *testing.T) {
	prev := 1.1
	for ttl := 1; ttl <= 20; ttl++ {
		pe, err := ExactPe(100, 3, ttl)
		if err != nil {
			t.Fatal(err)
		}
		if pe < 0 || pe > 1 {
			t.Fatalf("pe(ttl=%d) = %g outside [0,1]", ttl, pe)
		}
		if pe > prev+1e-12 {
			t.Fatalf("pe increased at ttl=%d: %g > %g", ttl, pe, prev)
		}
		prev = pe
	}
}

func TestExactPeAgreesWithMonteCarlo(t *testing.T) {
	// Simulate the DP's own model directly: every informed peer sends
	// fout digests to uniform random peers each round.
	const n, fout, ttl, trials = 20, 2, 4, 20000
	rng := sim.NewRand(9)
	failures := 0
	for trial := 0; trial < trials; trial++ {
		informed := make([]bool, n)
		informed[0] = true
		count := 1
		for r := 0; r < ttl && count < n; r++ {
			senders := count
			newly := make([]int, 0, 8)
			for s := 0; s < senders*fout; s++ {
				target := rng.Intn(n)
				if !informed[target] {
					informed[target] = true
					newly = append(newly, target)
				}
			}
			count += len(newly)
		}
		if count < n {
			failures++
		}
	}
	mc := float64(failures) / trials
	exact, err := ExactPe(n, fout, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.03 {
		t.Fatalf("Monte Carlo %g vs exact %g diverge", mc, exact)
	}
}

func TestExactPeInvalidParams(t *testing.T) {
	if _, err := ExactPe(1, 2, 3); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ExactPe(10, 0, 3); err == nil {
		t.Error("fout=0 accepted")
	}
	if _, err := ExactPe(10, 2, 0); err == nil {
		t.Error("ttl=0 accepted")
	}
	if _, err := ExactTTLFor(10, 2, 0); err == nil {
		t.Error("pe=0 accepted")
	}
}

func TestHitDistributionProperties(t *testing.T) {
	c, err := newChain(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Distribution over distinct hits sums to 1 and never exceeds min(d, u).
	for _, tc := range []struct{ d, u int }{{1, 49}, {6, 44}, {60, 30}, {147, 1}} {
		out := c.hitDistribution(tc.d, tc.u)
		sum := 0.0
		for k, v := range out {
			if v < -1e-15 {
				t.Fatalf("negative mass at k=%d: %g", k, v)
			}
			if k > tc.d && v > 1e-12 {
				t.Fatalf("mass %g at k=%d with only %d throws", v, k, tc.d)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("d=%d u=%d: mass sums to %g", tc.d, tc.u, sum)
		}
	}
	// Hand-checked case: one throw over n=50 bins with u=10 uninformed
	// hits exactly one uninformed peer with probability 10/50.
	out := c.hitDistribution(1, 10)
	if math.Abs(out[1]-0.2) > 1e-12 || math.Abs(out[0]-0.8) > 1e-12 {
		t.Fatalf("single-throw law = %v, want [0.8 0.2 ...]", out[:2])
	}
}

// §IV sentence: "with a network of n = 100 peers and fout = 3, we can
// easily calculate that infect-and-die push disseminates each block to an
// average of 94 peers with a standard deviation of 2.6, while transmitting
// each block in full 282 times." The exact chain reproduces all three
// numbers.
func TestExactInfectAndDieMatchesPaperSentence(t *testing.T) {
	r, err := ExactInfectAndDie(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Mean-94) > 0.5 {
		t.Errorf("mean = %.2f, want ≈ 94", r.Mean)
	}
	if math.Abs(r.StdDev-2.6) > 0.15 {
		t.Errorf("σ = %.2f, want ≈ 2.6", r.StdDev)
	}
	if math.Abs(r.MeanTransmits-282) > 1.5 {
		t.Errorf("transmissions = %.1f, want ≈ 282", r.MeanTransmits)
	}
	// Reaching all peers without pull is rare — the motivation for the
	// enhanced protocol.
	if r.ReachAll > 0.01 {
		t.Errorf("reach-all probability %.4f implausibly high", r.ReachAll)
	}
	// It agrees with the Monte Carlo estimate of the same process.
	mc := SimulateInfectAndDie(100, 3, 4000, sim.NewRand(77))
	if math.Abs(mc.MeanReached-r.Mean) > 0.6 {
		t.Errorf("exact mean %.2f vs Monte Carlo %.2f diverge", r.Mean, mc.MeanReached)
	}
}

func TestExactInfectAndDieInvalid(t *testing.T) {
	if _, err := ExactInfectAndDie(1, 3); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestExactInfectAndDiePMFIsDistribution(t *testing.T) {
	r, err := ExactInfectAndDie(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, p := range r.ReachPMF {
		if p < -1e-15 {
			t.Fatalf("negative mass at %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %g", sum)
	}
	if r.ReachPMF[0] != 0 {
		t.Fatal("mass at zero reach")
	}
	// The source always counts itself.
	if r.Mean < 1 {
		t.Fatalf("mean %g below 1", r.Mean)
	}
}
