package analysis

import (
	"fmt"
	"math"
)

// ExactPe computes the probability of imperfect dissemination by dynamic
// programming over the epidemic's population Markov chain — the "more
// precise analysis with extensions of the coupon collector's problem" the
// appendix alludes to.
//
// Model (the appendix's conservative sending model): the chain state is the
// number of informed peers. In each of ttl rounds every informed peer sends
// fout digests to peers chosen uniformly at random with replacement,
// including possibly itself and other informed peers. Given i informed
// peers, the d = i*fout throws hit the u = n-i uninformed peers as a
// balls-into-bins process: the number of throws landing in the uninformed
// set is Binomial(d, u/n), and conditioned on j such throws the number of
// *distinct* uninformed peers covered follows the classical occupancy
// distribution. pe is the probability the chain has not absorbed at n
// after ttl rounds.
//
// Unlike ImperfectProb's closed-form union bound, the result is a true
// probability and accounts for the negative correlation between peers'
// receptions.
func ExactPe(n, fout, ttl int) (float64, error) {
	dist, err := newChain(n, fout)
	if err != nil {
		return 0, err
	}
	if ttl < 1 {
		return 0, fmt.Errorf("analysis: invalid ttl %d", ttl)
	}
	for round := 0; round < ttl; round++ {
		dist.step()
	}
	return dist.pe(), nil
}

// ExactTTLFor returns the smallest TTL whose exact imperfect-dissemination
// probability is at most peTarget. The chain evolves once; each round is
// checked in turn.
func ExactTTLFor(n, fout int, peTarget float64) (int, error) {
	if peTarget <= 0 || peTarget >= 1 {
		return 0, fmt.Errorf("analysis: invalid pe target %g", peTarget)
	}
	dist, err := newChain(n, fout)
	if err != nil {
		return 0, err
	}
	const maxTTL = 10_000
	for ttl := 1; ttl <= maxTTL; ttl++ {
		dist.step()
		if dist.pe() <= peTarget {
			return ttl, nil
		}
	}
	return 0, fmt.Errorf("analysis: no TTL <= %d reaches pe <= %g", maxTTL, peTarget)
}

// chain is the evolving population distribution.
type chain struct {
	n, fout int
	// dist[i] = P(exactly i peers informed), indices 1..n.
	dist []float64
	next []float64
	// occ is scratch space for the occupancy recurrence.
	occ, occPrev []float64
}

func newChain(n, fout int) (*chain, error) {
	if n < 2 || fout < 1 {
		return nil, fmt.Errorf("analysis: invalid parameters n=%d fout=%d", n, fout)
	}
	c := &chain{
		n:       n,
		fout:    fout,
		dist:    make([]float64, n+1),
		next:    make([]float64, n+1),
		occ:     make([]float64, n+1),
		occPrev: make([]float64, n+1),
	}
	c.dist[1] = 1
	return c, nil
}

func (c *chain) pe() float64 { return 1 - c.dist[c.n] }

// step advances the chain one round.
func (c *chain) step() {
	n := c.n
	for i := range c.next {
		c.next[i] = 0
	}
	for i := 1; i <= n; i++ {
		p := c.dist[i]
		if p == 0 {
			continue
		}
		if i == n {
			c.next[n] += p // absorbed
			continue
		}
		u := n - i
		d := i * c.fout
		// newDist[k] = P(k distinct uninformed peers informed this round).
		newDist := c.hitDistribution(d, u)
		for k, q := range newDist {
			if q != 0 {
				c.next[i+k] += p * q
			}
		}
	}
	c.dist, c.next = c.next, c.dist
}

// hitDistribution returns P(exactly k distinct bins of the u-bin uninformed
// set are hit) for d uniform throws over all n bins. It composes the
// Binomial(d, u/n) split with the occupancy recurrence
//
//	occ(j, k) = occ(j-1, k) * k/u + occ(j-1, k-1) * (u-k+1)/u
//
// incrementally: after processing throw j, occ holds the occupancy law for
// j throws, and the binomial weight of "exactly j throws hit the set" is
// accumulated into the result.
func (c *chain) hitDistribution(d, u int) []float64 {
	n := float64(c.n)
	pu := float64(u) / n
	out := make([]float64, u+1)

	// Binomial(d, pu) PMF term for j = 0.
	logPu, logQu := math.Log(pu), math.Log1p(-pu)
	lgD, _ := math.Lgamma(float64(d + 1))
	binom := func(j int) float64 {
		lgJ, _ := math.Lgamma(float64(j + 1))
		lgDJ, _ := math.Lgamma(float64(d - j + 1))
		return math.Exp(lgD - lgJ - lgDJ + float64(j)*logPu + float64(d-j)*logQu)
	}

	occ := c.occ[:u+1]
	prev := c.occPrev[:u+1]
	for k := range occ {
		occ[k] = 0
	}
	occ[0] = 1 // zero throws cover zero bins
	out[0] += binom(0) * 1
	uf := float64(u)
	for j := 1; j <= d; j++ {
		copy(prev, occ)
		maxK := j
		if maxK > u {
			maxK = u
		}
		occ[0] = 0
		for k := 1; k <= maxK; k++ {
			occ[k] = prev[k]*float64(k)/uf + prev[k-1]*(uf-float64(k-1))/uf
		}
		for k := maxK + 1; k <= u; k++ {
			occ[k] = 0
		}
		bj := binom(j)
		if bj == 0 {
			continue
		}
		for k := 0; k <= maxK; k++ {
			if occ[k] != 0 {
				out[k] += bj * occ[k]
			}
		}
	}
	return out
}
