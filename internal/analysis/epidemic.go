package analysis

import (
	"fmt"
	"math"
)

// CarryingCapacity returns γ, the limit population of the push epidemic for
// a network of n peers with fan-out fout (appendix):
//
//	γ = n * (fout + W(-fout * e^{-fout})) / fout
//
// It equals n times the non-trivial fixpoint of s = 1 - e^{-fout*s}.
func CarryingCapacity(n int, fout int) (float64, error) {
	if n < 2 || fout < 1 {
		return 0, fmt.Errorf("analysis: invalid parameters n=%d fout=%d", n, fout)
	}
	f := float64(fout)
	w, err := LambertW0(-f * math.Exp(-f))
	if err != nil {
		return 0, err
	}
	return float64(n) * (f + w) / f, nil
}

// Psi returns the first rounds+1 values of the ψ recursion from the
// appendix: ψ(0) = 1, ψ(r+1) = n * (1 - (1-1/n)^(fout*ψ(r))). ψ(r) upper
// bounds E[X_r], the expected number of peers that receive at least one
// push digest by round r.
func Psi(n, fout, rounds int) []float64 {
	out := make([]float64, rounds+1)
	out[0] = 1
	nn := float64(n)
	base := 1 - 1/nn
	for r := 0; r < rounds; r++ {
		out[r+1] = nn * (1 - math.Pow(base, float64(fout)*out[r]))
	}
	return out
}

// LogisticLowerBound returns X(t), the logistic-growth lower bound on ψ(t)
// (appendix): X(t) = γ * fout^t / (γ + fout^t - 1).
func LogisticLowerBound(gamma float64, fout int, t int) float64 {
	ft := math.Pow(float64(fout), float64(t))
	return gamma * ft / (gamma + ft - 1)
}

// ExpectedDigests returns m, the expected number of push digests (or direct
// pushes) transmitted during ttl rounds: m = fout * Σ_{i=0}^{ttl-1} ψ(i).
func ExpectedDigests(n, fout, ttl int) float64 {
	psi := Psi(n, fout, ttl)
	var sum float64
	for i := 0; i < ttl; i++ {
		sum += psi[i]
	}
	return float64(fout) * sum
}

// ImperfectProb returns pe, the (conservative) probability that at least
// one peer remains uninformed after ttl rounds of infect-upon-contagion
// push: pe <= n * (1 - 1/n)^m with m = ExpectedDigests. The bound is
// clamped to 1 (for very small TTL the raw union bound exceeds 1 and is
// vacuous).
func ImperfectProb(n, fout, ttl int) float64 {
	m := ExpectedDigests(n, fout, ttl)
	pe := float64(n) * math.Exp(m*math.Log1p(-1/float64(n)))
	if pe > 1 {
		return 1
	}
	return pe
}

// TTLFor returns the smallest TTL whose probability of imperfect
// dissemination is at most peTarget, for a network of n peers and fan-out
// fout. The scan is bounded; fan-outs >= 2 reach any practical target within
// it.
func TTLFor(n, fout int, peTarget float64) (int, error) {
	if n < 2 || fout < 1 || peTarget <= 0 || peTarget >= 1 {
		return 0, fmt.Errorf("analysis: invalid parameters n=%d fout=%d pe=%g", n, fout, peTarget)
	}
	const maxTTL = 10_000
	for ttl := 1; ttl <= maxTTL; ttl++ {
		if ImperfectProb(n, fout, ttl) <= peTarget {
			return ttl, nil
		}
	}
	return 0, fmt.Errorf("analysis: no TTL <= %d reaches pe <= %g for n=%d fout=%d", maxTTL, peTarget, n, fout)
}

// RoundsEstimate returns the closed-form estimate of the number of rounds
// needed to transmit m digests (appendix):
//
//	r >= log_fout(γ*fout^{m/(γ*fout)} - γ + 1) + 1
func RoundsEstimate(gamma float64, fout int, m float64) float64 {
	f := float64(fout)
	inner := gamma*math.Pow(f, m/(gamma*f)) - gamma + 1
	return math.Log(inner)/math.Log(f) + 1
}

// TTLTableEntry is one row of the lookup table peers consult to pick TTL
// (paper §IV: "TTL varies slowly with n; we can store a small number of TTL
// values for (n, pe) pairs in a lookup table").
type TTLTableEntry struct {
	N   int
	TTL int
	Pe  float64 // achieved pe at that TTL (<= target)
}

// TTLTable computes lookup-table rows for the given network sizes at a
// fixed fan-out and pe target.
func TTLTable(sizes []int, fout int, peTarget float64) ([]TTLTableEntry, error) {
	out := make([]TTLTableEntry, 0, len(sizes))
	for _, n := range sizes {
		ttl, err := TTLFor(n, fout, peTarget)
		if err != nil {
			return nil, err
		}
		out = append(out, TTLTableEntry{N: n, TTL: ttl, Pe: ImperfectProb(n, fout, ttl)})
	}
	return out, nil
}

// LookupTTL returns the table TTL for a network of n peers using the lowest
// upper bound present in the table, as the paper prescribes. The table must
// be sorted by N ascending.
func LookupTTL(table []TTLTableEntry, n int) (int, error) {
	for _, e := range table {
		if n <= e.N {
			return e.TTL, nil
		}
	}
	return 0, fmt.Errorf("analysis: network size %d exceeds table", n)
}
