package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"fabricgossip/internal/sim"
)

func TestLambertW0KnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{math.E, 1},                  // W(e) = 1
		{2 * math.E * math.E, 2},     // W(2e^2) = 2
		{-1 / math.E, -1},            // branch point
		{1, 0.5671432904097838},      // Ω constant
		{-0.25, -0.3574029561813889}, // negative domain
	}
	for _, c := range cases {
		got, err := LambertW0(c.x)
		if err != nil {
			t.Fatalf("LambertW0(%g): %v", c.x, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LambertW0(%g) = %.12f, want %.12f", c.x, got, c.want)
		}
	}
}

func TestLambertW0Domain(t *testing.T) {
	if _, err := LambertW0(-1); err == nil {
		t.Fatal("x < -1/e accepted")
	}
}

// Property: w*e^w = x for any x in the domain.
func TestPropertyLambertWInverse(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 100) // [0, 100)
		w, err := LambertW0(x)
		if err != nil {
			return false
		}
		return math.Abs(w*math.Exp(w)-x) < 1e-8*(1+x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCarryingCapacityMatchesFixpoint(t *testing.T) {
	// γ/n must satisfy s = 1 - e^{-fout*s}.
	for _, fout := range []int{2, 3, 4, 5} {
		g, err := CarryingCapacity(100, fout)
		if err != nil {
			t.Fatal(err)
		}
		s := g / 100
		if math.Abs(s-(1-math.Exp(-float64(fout)*s))) > 1e-9 {
			t.Errorf("fout=%d: s=%g is not a fixpoint", fout, s)
		}
	}
	// Paper's implicit values: ~94% for fout=3, ~98% for fout=4.
	g3, _ := CarryingCapacity(100, 3)
	if g3 < 93.5 || g3 > 94.5 {
		t.Errorf("γ(100, 3) = %g, want ≈ 94", g3)
	}
	g4, _ := CarryingCapacity(100, 4)
	if g4 < 97.5 || g4 > 98.5 {
		t.Errorf("γ(100, 4) = %g, want ≈ 98", g4)
	}
}

func TestCarryingCapacityInvalidParams(t *testing.T) {
	if _, err := CarryingCapacity(1, 3); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := CarryingCapacity(100, 0); err == nil {
		t.Error("fout=0 accepted")
	}
}

func TestPsiRecursion(t *testing.T) {
	psi := Psi(100, 4, 10)
	if psi[0] != 1 {
		t.Fatalf("ψ(0) = %g, want 1", psi[0])
	}
	// Monotonically increasing, bounded by n.
	for i := 1; i < len(psi); i++ {
		if psi[i] <= psi[i-1] {
			t.Fatalf("ψ not increasing at %d: %v", i, psi)
		}
		if psi[i] > 100 {
			t.Fatalf("ψ(%d) = %g exceeds n", i, psi[i])
		}
	}
	// Converges towards the carrying capacity.
	g, _ := CarryingCapacity(100, 4)
	if math.Abs(psi[10]-g) > 1.0 {
		t.Fatalf("ψ(10) = %g, want ≈ γ = %g", psi[10], g)
	}
}

func TestLogisticLowerBoundsPsi(t *testing.T) {
	// Appendix: ψ(r) >= X(r) for fout >= 2.
	for _, fout := range []int{2, 3, 4} {
		g, _ := CarryingCapacity(100, fout)
		psi := Psi(100, fout, 25)
		for r := 0; r <= 25; r++ {
			x := LogisticLowerBound(g, fout, r)
			if psi[r] < x-1e-9 {
				t.Fatalf("fout=%d r=%d: ψ=%g < X=%g", fout, r, psi[r], x)
			}
		}
	}
}

// The headline parameter claims of §IV: pe(100, fout=4, TTL=9) ≈ 10^-6,
// pe(100, fout=2, TTL=19) ≈ 10^-6, and pe(100, fout=4, TTL=12) ≈ 10^-12.
func TestPaperTTLConfigurations(t *testing.T) {
	ttl4, err := TTLFor(100, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ttl4 != 9 {
		t.Errorf("TTLFor(100, 4, 1e-6) = %d, want 9", ttl4)
	}
	// The paper reports TTL = 19 for fout = 2; our ψ-recursion bound is
	// slightly tighter and certifies pe <= 1e-6 already at 18 (the paper
	// notes its own analysis is conservative). Running with the paper's
	// 19 only lowers pe further; the experiment configs use 19.
	ttl2, err := TTLFor(100, 2, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if ttl2 != 18 {
		t.Errorf("TTLFor(100, 2, 1e-6) = %d, want 18 (paper: 19, looser bound)", ttl2)
	}
	if pe19 := ImperfectProb(100, 2, 19); pe19 > 1e-6 {
		t.Errorf("pe at the paper's TTL=19 = %g, must also satisfy the target", pe19)
	}
	ttl12, err := TTLFor(100, 4, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if ttl12 != 12 {
		t.Errorf("TTLFor(100, 4, 1e-12) = %d, want 12", ttl12)
	}
	// fout = floor(ln 100) = 4, as the paper sets it.
	if got := int(math.Log(100)); got != 4 {
		t.Errorf("floor(ln 100) = %d", got)
	}
}

func TestImperfectProbDecreasesWithTTL(t *testing.T) {
	prev := math.Inf(1)
	for ttl := 1; ttl <= 15; ttl++ {
		pe := ImperfectProb(100, 4, ttl)
		if pe > prev {
			t.Fatalf("pe not non-increasing at TTL=%d: %g > %g", ttl, pe, prev)
		}
		if pe > 1 {
			t.Fatalf("pe = %g exceeds 1 (must be clamped)", pe)
		}
		prev = pe
	}
	if ImperfectProb(100, 4, 15) >= ImperfectProb(100, 4, 5) {
		t.Fatal("pe not strictly decreasing over the useful range")
	}
}

func TestTTLForInvalidParams(t *testing.T) {
	for _, c := range []struct {
		n, fout int
		pe      float64
	}{{1, 4, 1e-6}, {100, 0, 1e-6}, {100, 4, 0}, {100, 4, 1.5}} {
		if _, err := TTLFor(c.n, c.fout, c.pe); err == nil {
			t.Errorf("TTLFor(%d, %d, %g) accepted", c.n, c.fout, c.pe)
		}
	}
}

func TestRoundsEstimateConsistentWithTTL(t *testing.T) {
	// The closed-form round estimate for the digests needed at pe=1e-6
	// should land near the scanned TTL.
	g, _ := CarryingCapacity(100, 4)
	m := ExpectedDigests(100, 4, 9)
	r := RoundsEstimate(g, 4, m)
	if r < 6 || r > 12 {
		t.Fatalf("RoundsEstimate = %g, want within a few rounds of 9", r)
	}
}

func TestTTLTableAndLookup(t *testing.T) {
	table, err := TTLTable([]int{50, 100, 200, 500, 1000}, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// TTL varies slowly with n (paper §IV).
	for i := 1; i < len(table); i++ {
		if table[i].TTL < table[i-1].TTL {
			t.Fatalf("TTL not monotone in n: %+v", table)
		}
		if table[i].TTL > table[i-1].TTL+3 {
			t.Fatalf("TTL grows too fast with n: %+v", table)
		}
	}
	for _, e := range table {
		if e.Pe > 1e-6 {
			t.Fatalf("table entry %+v misses pe target", e)
		}
	}
	// Lookup uses the lowest upper bound.
	ttl, err := LookupTTL(table, 150)
	if err != nil {
		t.Fatal(err)
	}
	if want := table[2].TTL; ttl != want { // n=200 row
		t.Fatalf("LookupTTL(150) = %d, want %d", ttl, want)
	}
	if _, err := LookupTTL(table, 5000); err == nil {
		t.Fatal("lookup beyond table accepted")
	}
}

func TestFixpointReach(t *testing.T) {
	if s := FixpointReach(3); math.Abs(s-0.9405) > 0.001 {
		t.Errorf("FixpointReach(3) = %g, want ≈ 0.9405", s)
	}
	if s := FixpointReach(4); math.Abs(s-0.9802) > 0.001 {
		t.Errorf("FixpointReach(4) = %g, want ≈ 0.98", s)
	}
}

// §IV claim: infect-and-die with n=100, fout=3 reaches on average 94 peers
// with standard deviation 2.6, transmitting each block 282 times.
func TestInfectAndDieMatchesPaper(t *testing.T) {
	rng := sim.NewRand(123)
	st := SimulateInfectAndDie(100, 3, 4000, rng)
	if st.MeanReached < 93 || st.MeanReached > 95 {
		t.Errorf("mean reached = %.2f, want ≈ 94", st.MeanReached)
	}
	if st.StdDevReached < 1.8 || st.StdDevReached > 3.4 {
		t.Errorf("std dev = %.2f, want ≈ 2.6", st.StdDevReached)
	}
	if st.MeanTransmits < 276 || st.MeanTransmits > 288 {
		t.Errorf("transmissions = %.1f, want ≈ 282", st.MeanTransmits)
	}
	// Reaching all 100 peers must be rare — that is the paper's whole
	// point about needing pull as a safety net.
	if st.ReachAllPercent > 0.2 {
		t.Errorf("reach-all fraction = %.3f, expected rare", st.ReachAllPercent)
	}
}
