package analysis

import (
	"math"

	"fabricgossip/internal/sim"
)

// InfectAndDieStats characterizes Fabric's stock push phase for a network
// of n peers and fan-out fout.
type InfectAndDieStats struct {
	MeanReached     float64 // peers informed at the end of the push phase
	StdDevReached   float64
	MeanTransmits   float64 // full-block transmissions per block
	ReachAllPercent float64 // fraction of trials where every peer was informed
}

// FixpointReach returns the large-n fraction of peers reached by
// infect-and-die push: the non-trivial solution of s = 1 - e^{-fout*s}.
// With n=100 and fout=3 this is ≈ 0.9405, the paper's "average of 94
// peers".
func FixpointReach(fout int) float64 {
	f := float64(fout)
	w, err := LambertW0(-f * math.Exp(-f))
	if err != nil {
		return 1
	}
	return (f + w) / f
}

// SimulateInfectAndDie Monte-Carlo estimates the reach of infect-and-die
// push: the source pushes to fout random peers; every peer infected for the
// first time pushes once to fout random peers (excluding itself) and then
// "dies". Blocks received again are not re-pushed.
func SimulateInfectAndDie(n, fout, trials int, rng *sim.Rand) InfectAndDieStats {
	var sum, sumSq, transmits float64
	reachedAll := 0
	infected := make([]bool, n)
	frontier := make([]int, 0, n)
	for trial := 0; trial < trials; trial++ {
		for i := range infected {
			infected[i] = false
		}
		frontier = frontier[:0]
		infected[0] = true
		frontier = append(frontier, 0)
		count := 1
		sends := 0
		for len(frontier) > 0 {
			p := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			targets := rng.SampleWithout(n, fout, map[int]bool{p: true})
			sends += fout
			for _, q := range targets {
				if !infected[q] {
					infected[q] = true
					count++
					frontier = append(frontier, q)
				}
			}
		}
		sum += float64(count)
		sumSq += float64(count) * float64(count)
		transmits += float64(sends)
		if count == n {
			reachedAll++
		}
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return InfectAndDieStats{
		MeanReached:     mean,
		StdDevReached:   math.Sqrt(variance),
		MeanTransmits:   transmits / float64(trials),
		ReachAllPercent: float64(reachedAll) / float64(trials),
	}
}
