// Package analysis implements the paper's appendix mathematics: the
// carrying capacity of the infect-upon-contagion epidemic via the Lambert-W
// function, the ψ recursion bounding the expected number of informed peers
// per round, the resulting probability of imperfect dissemination pe, and
// the TTL lookup tables peers use to parameterize the enhanced push phase.
//
// It also provides the analytic/Monte-Carlo characterization of Fabric's
// stock infect-and-die push (§IV: "an average of 94 peers with a standard
// deviation of 2.6, while transmitting each block in full 282 times").
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// ErrLambertWDomain is returned for arguments below -1/e where the real
// Lambert-W function is undefined.
var ErrLambertWDomain = errors.New("analysis: LambertW0 undefined for x < -1/e")

// LambertW0 computes the principal branch of the Lambert-W function, the
// solution w >= -1 of w*exp(w) = x, for x >= -1/e. It uses Halley's
// iteration and converges to near machine precision.
func LambertW0(x float64) (float64, error) {
	const minArg = -1.0 / math.E
	if x < minArg-1e-12 {
		return 0, fmt.Errorf("%w (x = %g)", ErrLambertWDomain, x)
	}
	if x < minArg {
		x = minArg
	}
	if x == 0 {
		return 0, nil
	}
	// Initial guess.
	var w float64
	switch {
	case x < -0.25:
		// Series around the branch point x = -1/e.
		p := math.Sqrt(2 * (math.E*x + 1))
		w = -1 + p - p*p/3 + 11.0/72.0*p*p*p
	case x < 1:
		w = x // w ~ x for small |x|
	default:
		w = math.Log(x) - math.Log(math.Log(x)+1)
	}
	for i := 0; i < 64; i++ {
		ew := math.Exp(w)
		f := w*ew - x
		denom := ew*(w+1) - (w+2)*f/(2*w+2)
		step := f / denom
		w -= step
		if math.Abs(step) < 1e-14*(1+math.Abs(w)) {
			break
		}
	}
	return w, nil
}
