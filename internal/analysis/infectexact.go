package analysis

import (
	"fmt"
	"math"
)

// InfectAndDieExact is the exact reach law of Fabric's stock push phase.
type InfectAndDieExact struct {
	// ReachPMF[i] = P(the push phase informs exactly i peers), i in [1, n].
	ReachPMF []float64
	Mean     float64
	StdDev   float64
	// ReachAll = P(every peer is informed) — the probability the pull
	// component has nothing to do.
	ReachAll float64
	// MeanTransmits is the expected number of full-block transmissions:
	// fout per informed peer.
	MeanTransmits float64
}

// ExactInfectAndDie computes the distribution of the number of peers
// reached by infect-and-die push (paper §IV: "we can easily calculate that
// infect-and-die push disseminates each block to an average of 94 peers
// with a standard deviation of 2.6") by dynamic programming over the
// two-dimensional Markov chain (informed, newly infected): only peers
// infected in the previous step push, once, to fout targets.
//
// Targets are modelled as uniform over all n peers with replacement (the
// appendix's conservative sending model); the resulting law matches the
// without-replacement Monte Carlo to within a tenth of a peer at the
// paper's parameters.
func ExactInfectAndDie(n, fout int) (InfectAndDieExact, error) {
	c, err := newChain(n, fout)
	if err != nil {
		return InfectAndDieExact{}, err
	}
	// dist[i][k] = P(i informed, k of them fresh senders).
	dist := make([][]float64, n+1)
	next := make([][]float64, n+1)
	for i := range dist {
		dist[i] = make([]float64, n+1)
		next[i] = make([]float64, n+1)
	}
	dist[1][1] = 1
	absorbed := make([]float64, n+1) // by informed count, when k reaches 0

	// At most n rounds: each non-absorbing round informs >= 1 new peer.
	for round := 0; round < n; round++ {
		moved := false
		for i := 1; i <= n; i++ {
			for k := 1; k <= i; k++ {
				p := dist[i][k]
				if p == 0 {
					continue
				}
				moved = true
				if i == n {
					// Everyone informed: senders push into a fully
					// informed network; absorb immediately.
					absorbed[n] += p
					continue
				}
				hd := c.hitDistribution(k*fout, n-i)
				for kNew, q := range hd {
					if q == 0 {
						continue
					}
					if kNew == 0 {
						absorbed[i] += p * q
					} else {
						next[i+kNew][kNew] += p * q
					}
				}
			}
		}
		dist, next = next, dist
		for i := range next {
			for k := range next[i] {
				next[i][k] = 0
			}
		}
		if !moved {
			break
		}
	}

	out := InfectAndDieExact{ReachPMF: absorbed}
	var sum, mean, m2 float64
	for i, p := range absorbed {
		sum += p
		mean += float64(i) * p
		m2 += float64(i) * float64(i) * p
	}
	if math.Abs(sum-1) > 1e-6 {
		return out, fmt.Errorf("analysis: reach law sums to %g", sum)
	}
	out.Mean = mean
	variance := m2 - mean*mean
	if variance < 0 {
		variance = 0
	}
	out.StdDev = math.Sqrt(variance)
	out.ReachAll = absorbed[n]
	out.MeanTransmits = mean * float64(fout)
	return out, nil
}
