package ledger

import (
	"testing"
	"testing/quick"

	"fabricgossip/internal/crypto"
)

func mkTx(client, key string, readVer Version, value byte) *Transaction {
	rw := RWSet{
		Reads:  []KVRead{{Key: key, Version: readVer}},
		Writes: []KVWrite{{Key: key, Value: []byte{value}}},
	}
	return &Transaction{
		ID:        ProposalDigest(client, "cc", rw, nil),
		Client:    client,
		Chaincode: "cc",
		RWSet:     rw,
	}
}

func mkBlock(num uint64, prev *Block, txs ...*Transaction) *Block {
	b := &Block{Num: num, Txs: txs, DataHash: ComputeDataHash(txs)}
	if prev != nil {
		b.PrevHash = prev.Hash()
	}
	return b
}

func TestProposalDigestDistinguishesContent(t *testing.T) {
	base := ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k"}}}, nil)
	cases := map[string]crypto.Digest{
		"different client":    ProposalDigest("c2", "cc", RWSet{Reads: []KVRead{{Key: "k"}}}, nil),
		"different chaincode": ProposalDigest("c", "cc2", RWSet{Reads: []KVRead{{Key: "k"}}}, nil),
		"different key":       ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k2"}}}, nil),
		"different version":   ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k", Version: Version{1, 0}}}}, nil),
		"different payload":   ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k"}}}, []byte{1}),
		"extra write":         ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k"}}, Writes: []KVWrite{{Key: "k", Value: []byte{1}}}}, nil),
	}
	for name, d := range cases {
		if d == base {
			t.Errorf("%s produced identical digest", name)
		}
	}
	if ProposalDigest("c", "cc", RWSet{Reads: []KVRead{{Key: "k"}}}, nil) != base {
		t.Error("digest not deterministic")
	}
}

func TestBlockHashBindsHeaderFields(t *testing.T) {
	tx := mkTx("c", "k", Version{}, 1)
	b := mkBlock(0, nil, tx)
	h := b.Hash()
	b2 := *b
	b2.Num = 1
	if b2.Hash() == h {
		t.Error("hash ignores block number")
	}
	b3 := *b
	b3.DataHash = crypto.Hash([]byte("x"))
	if b3.Hash() == h {
		t.Error("hash ignores data hash")
	}
}

func TestVerifyLinkage(t *testing.T) {
	g := mkBlock(0, nil, mkTx("c", "a", Version{}, 1))
	if err := g.VerifyLinkage(nil); err != nil {
		t.Fatalf("genesis linkage: %v", err)
	}
	b1 := mkBlock(1, g, mkTx("c", "b", Version{}, 2))
	if err := b1.VerifyLinkage(g); err != nil {
		t.Fatalf("b1 linkage: %v", err)
	}

	t.Run("wrong number", func(t *testing.T) {
		bad := mkBlock(2, g)
		if err := bad.VerifyLinkage(g); err == nil {
			t.Error("skipped block number accepted")
		}
	})
	t.Run("wrong prev hash", func(t *testing.T) {
		bad := mkBlock(1, g)
		bad.PrevHash = crypto.Hash([]byte("junk"))
		if err := bad.VerifyLinkage(g); err == nil {
			t.Error("bad previous hash accepted")
		}
	})
	t.Run("non-genesis first block", func(t *testing.T) {
		bad := mkBlock(5, nil)
		if err := bad.VerifyLinkage(nil); err == nil {
			t.Error("block 5 accepted as chain start")
		}
	})
	t.Run("genesis with prev hash", func(t *testing.T) {
		bad := mkBlock(0, nil)
		bad.PrevHash = crypto.Hash([]byte("junk"))
		if err := bad.VerifyLinkage(nil); err == nil {
			t.Error("genesis with non-zero prev hash accepted")
		}
	})
	t.Run("tampered data", func(t *testing.T) {
		bad := mkBlock(1, g, mkTx("c", "b", Version{}, 2))
		bad.Txs = append(bad.Txs, mkTx("c", "x", Version{}, 3)) // DataHash now stale
		if err := bad.VerifyLinkage(g); err == nil {
			t.Error("tampered transaction list accepted")
		}
	})
}

func TestVersionLessAndString(t *testing.T) {
	a := Version{BlockNum: 1, TxNum: 2}
	b := Version{BlockNum: 1, TxNum: 3}
	c := Version{BlockNum: 2, TxNum: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) || a.Less(a) {
		t.Error("Less ordering wrong")
	}
	if a.String() != "1.2" {
		t.Errorf("String() = %q, want 1.2", a.String())
	}
}

// Property: ProposalDigest is injective-in-practice over payload bytes —
// any payload change changes the digest.
func TestPropertyDigestChangesWithPayload(t *testing.T) {
	f := func(p1, p2 []byte) bool {
		d1 := ProposalDigest("c", "cc", RWSet{}, p1)
		d2 := ProposalDigest("c", "cc", RWSet{}, p2)
		if string(p1) == string(p2) {
			return d1 == d2
		}
		return d1 != d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
