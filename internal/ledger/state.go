package ledger

import (
	"sync"
)

// VersionedValue is a state-database entry: the latest committed value of a
// key together with the version that wrote it.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// StateDB is the versioned key/value store materializing the result of all
// valid transactions (paper §II-B). It is safe for concurrent use.
type StateDB struct {
	mu   sync.RWMutex
	data map[string]VersionedValue
}

// NewStateDB returns an empty state database.
func NewStateDB() *StateDB {
	return &StateDB{data: make(map[string]VersionedValue)}
}

// Get returns the committed value and version for key. Missing keys return
// ok=false; their implicit version is the zero Version, which is how read
// sets of never-written keys validate.
func (s *StateDB) Get(key string) (VersionedValue, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vv, ok := s.data[key]
	return vv, ok
}

// VersionOf returns the committed version of key (zero Version if unset).
func (s *StateDB) VersionOf(key string) Version {
	vv, _ := s.Get(key)
	return vv.Version
}

// apply installs a write set at the given block/tx position. Callers hold
// the lock via ApplyBlockWrites.
func (s *StateDB) apply(writes []KVWrite, v Version) {
	for _, w := range writes {
		val := make([]byte, len(w.Value))
		copy(val, w.Value)
		s.data[w.Key] = VersionedValue{Value: val, Version: v}
	}
}

// ApplyBlockWrites commits the write sets of the valid transactions of
// block num. txNums[i] gives the in-block position of writeSets[i].
func (s *StateDB) ApplyBlockWrites(num uint64, txNums []uint32, writeSets []RWSet) {
	if len(txNums) != len(writeSets) {
		panic("ledger: ApplyBlockWrites length mismatch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rw := range writeSets {
		s.apply(rw.Writes, Version{BlockNum: num, TxNum: txNums[i]})
	}
}

// Len returns the number of keys with committed values.
func (s *StateDB) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Snapshot returns a copy of the full state, for tests and inspection.
func (s *StateDB) Snapshot() map[string]VersionedValue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]VersionedValue, len(s.data))
	for k, vv := range s.data {
		val := make([]byte, len(vv.Value))
		copy(val, vv.Value)
		out[k] = VersionedValue{Value: val, Version: vv.Version}
	}
	return out
}
