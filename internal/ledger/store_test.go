package ledger

import (
	"testing"
)

func chainOf(t *testing.T, n int) (*BlockStore, []*Block) {
	t.Helper()
	s := NewBlockStore()
	blocks := make([]*Block, n)
	var prev *Block
	for i := 0; i < n; i++ {
		b := mkBlock(uint64(i), prev, mkTx("c", "k", Version{}, byte(i)))
		if err := s.Append(b); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		blocks[i] = b
		prev = b
	}
	return s, blocks
}

func TestBlockStoreAppendGet(t *testing.T) {
	s, blocks := chainOf(t, 5)
	if s.Height() != 5 {
		t.Fatalf("height = %d, want 5", s.Height())
	}
	for i, want := range blocks {
		got, err := s.Get(uint64(i))
		if err != nil || got != want {
			t.Fatalf("Get(%d) = %v, %v", i, got, err)
		}
	}
	if _, err := s.Get(5); err == nil {
		t.Fatal("Get past height succeeded")
	}
	if s.Last() != blocks[4] {
		t.Fatal("Last() wrong")
	}
}

func TestBlockStoreRejectsBrokenChain(t *testing.T) {
	s, blocks := chainOf(t, 2)
	bad := mkBlock(2, blocks[0]) // links to block 0, not block 1
	if err := s.Append(bad); err == nil {
		t.Fatal("broken linkage accepted")
	}
	if err := s.Append(mkBlock(7, blocks[1])); err == nil {
		t.Fatal("gap in numbering accepted")
	}
	if s.Height() != 2 {
		t.Fatalf("failed appends changed height to %d", s.Height())
	}
}

func TestBlockStoreRange(t *testing.T) {
	s, blocks := chainOf(t, 10)
	cases := []struct {
		from, to uint64
		want     int
		first    uint64
	}{
		{0, 10, 10, 0},
		{3, 7, 4, 3},
		{8, 100, 2, 8}, // clamped to height
		{10, 12, 0, 0}, // beyond chain
		{5, 5, 0, 0},   // empty interval
		{6, 2, 0, 0},   // inverted interval
	}
	for _, c := range cases {
		got := s.Range(c.from, c.to)
		if len(got) != c.want {
			t.Fatalf("Range(%d,%d) len = %d, want %d", c.from, c.to, len(got), c.want)
		}
		if c.want > 0 && got[0] != blocks[c.first] {
			t.Fatalf("Range(%d,%d)[0] = block %d, want %d", c.from, c.to, got[0].Num, c.first)
		}
	}
}

func TestBlockStoreEmptyLast(t *testing.T) {
	if NewBlockStore().Last() != nil {
		t.Fatal("Last on empty store should be nil")
	}
}
