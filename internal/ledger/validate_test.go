package ledger

import (
	"errors"
	"testing"
)

func TestValidateBlockAllValid(t *testing.T) {
	s := NewStateDB()
	b := mkBlock(0, nil,
		mkTx("c1", "a", Version{}, 1),
		mkTx("c2", "b", Version{}, 2),
	)
	codes := ValidateBlock(s, b, nil)
	for i, c := range codes {
		if c != CodeValid {
			t.Fatalf("tx %d code = %v, want VALID", i, c)
		}
	}
}

func TestValidateBlockMVCCStaleRead(t *testing.T) {
	s := NewStateDB()
	// Key "a" was last written at version 2.0.
	s.ApplyBlockWrites(2, []uint32{0}, []RWSet{{Writes: []KVWrite{{Key: "a", Value: []byte("x")}}}})
	b := mkBlock(0, nil,
		mkTx("c1", "a", Version{BlockNum: 1, TxNum: 0}, 1), // stale: read 1.0
		mkTx("c2", "a", Version{BlockNum: 2, TxNum: 0}, 2), // current
	)
	codes := ValidateBlock(s, b, nil)
	if codes[0] != CodeMVCCConflict {
		t.Fatalf("stale read code = %v, want MVCC_CONFLICT", codes[0])
	}
	if codes[1] != CodeValid {
		t.Fatalf("current read code = %v, want VALID", codes[1])
	}
}

func TestValidateBlockIntraBlockConflictEarliestWriterWins(t *testing.T) {
	s := NewStateDB()
	// Two transactions in the same block increment the same key from the
	// same base version: the first wins, the second conflicts (§II-C).
	b := mkBlock(0, nil,
		mkTx("c1", "k", Version{}, 1),
		mkTx("c2", "k", Version{}, 2),
		mkTx("c3", "k", Version{}, 3),
	)
	codes := ValidateBlock(s, b, nil)
	want := []ValidationCode{CodeValid, CodeMVCCConflict, CodeMVCCConflict}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
}

func TestValidateBlockInvalidTxDoesNotShadowLaterReads(t *testing.T) {
	s := NewStateDB()
	s.ApplyBlockWrites(1, []uint32{0}, []RWSet{{Writes: []KVWrite{{Key: "k", Value: []byte("x")}}}})
	b := mkBlock(0, nil,
		mkTx("c1", "k", Version{}, 1),     // stale -> invalid, its write must not count
		mkTx("c2", "k", Version{1, 0}, 2), // reads committed version -> valid
	)
	codes := ValidateBlock(s, b, nil)
	if codes[0] != CodeMVCCConflict || codes[1] != CodeValid {
		t.Fatalf("codes = %v, want [MVCC_CONFLICT VALID]", codes)
	}
}

func TestValidateBlockEndorsementPolicy(t *testing.T) {
	s := NewStateDB()
	polErr := errors.New("not enough endorsements")
	policy := func(tx *Transaction) error {
		if tx.Client == "badclient" {
			return polErr
		}
		return nil
	}
	b := mkBlock(0, nil,
		mkTx("goodclient", "a", Version{}, 1),
		mkTx("badclient", "b", Version{}, 2),
	)
	codes := ValidateBlock(s, b, policy)
	if codes[0] != CodeValid || codes[1] != CodeEndorsementFailure {
		t.Fatalf("codes = %v, want [VALID ENDORSEMENT_FAILURE]", codes)
	}
}

func TestValidationCodeString(t *testing.T) {
	cases := map[ValidationCode]string{
		CodeValid:              "VALID",
		CodeMVCCConflict:       "MVCC_CONFLICT",
		CodeEndorsementFailure: "ENDORSEMENT_FAILURE",
		ValidationCode(0):      "INVALID_CODE",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
