package ledger

import (
	"testing"
)

func TestLedgerCommitFlow(t *testing.T) {
	l := NewLedger(nil)
	g := mkBlock(0, nil, mkTx("c", "k", Version{}, 1))
	res, err := l.Commit(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 1 || res.Invalid != 0 {
		t.Fatalf("genesis result = %+v", res)
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
	vv, ok := l.State().Get("k")
	if !ok || vv.Version != (Version{0, 0}) {
		t.Fatalf("state after commit = %+v, ok=%v", vv, ok)
	}

	// Second block: a valid update reading 0.0 and a stale duplicate.
	b1 := mkBlock(1, g,
		mkTx("c1", "k", Version{0, 0}, 2),
		mkTx("c2", "k", Version{0, 0}, 3),
	)
	res, err = l.Commit(b1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid != 1 || res.Invalid != 1 {
		t.Fatalf("b1 result = %+v, want 1 valid 1 invalid", res)
	}
	vv, _ = l.State().Get("k")
	if vv.Version != (Version{1, 0}) || vv.Value[0] != 2 {
		t.Fatalf("state = %+v, want value 2 at version 1.0", vv)
	}
}

func TestLedgerRejectsOutOfOrderCommit(t *testing.T) {
	l := NewLedger(nil)
	g := mkBlock(0, nil)
	b2 := mkBlock(2, nil)
	if _, err := l.Commit(b2); err == nil {
		t.Fatal("future block accepted")
	}
	if _, err := l.Commit(g); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(g); err == nil {
		t.Fatal("duplicate block accepted")
	}
}

func TestLedgerInvalidTxLeavesNoState(t *testing.T) {
	l := NewLedger(nil)
	g := mkBlock(0, nil, mkTx("c", "k", Version{9, 9}, 1)) // stale read
	res, err := l.Commit(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalid != 1 {
		t.Fatalf("result = %+v, want 1 invalid", res)
	}
	if _, ok := l.State().Get("k"); ok {
		t.Fatal("invalid transaction wrote state")
	}
	// The block is still appended: invalid txs remain in the chain but
	// have no effect (paper §II-B).
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
}
