package ledger

import (
	"bytes"
	"testing"
)

func TestStateDBGetMissingKey(t *testing.T) {
	s := NewStateDB()
	vv, ok := s.Get("nope")
	if ok {
		t.Fatal("missing key reported present")
	}
	if vv.Version != (Version{}) {
		t.Fatal("missing key should have zero version")
	}
	if s.VersionOf("nope") != (Version{}) {
		t.Fatal("VersionOf missing key should be zero")
	}
}

func TestStateDBApplyAndGet(t *testing.T) {
	s := NewStateDB()
	s.ApplyBlockWrites(3,
		[]uint32{0, 2},
		[]RWSet{
			{Writes: []KVWrite{{Key: "a", Value: []byte("va")}}},
			{Writes: []KVWrite{{Key: "b", Value: []byte("vb")}}},
		})
	a, ok := s.Get("a")
	if !ok || !bytes.Equal(a.Value, []byte("va")) || a.Version != (Version{3, 0}) {
		t.Fatalf("a = %+v, ok=%v", a, ok)
	}
	b, _ := s.Get("b")
	if b.Version != (Version{3, 2}) {
		t.Fatalf("b version = %v, want 3.2", b.Version)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestStateDBLaterWriteOverwrites(t *testing.T) {
	s := NewStateDB()
	s.ApplyBlockWrites(1, []uint32{0}, []RWSet{{Writes: []KVWrite{{Key: "k", Value: []byte("v1")}}}})
	s.ApplyBlockWrites(2, []uint32{5}, []RWSet{{Writes: []KVWrite{{Key: "k", Value: []byte("v2")}}}})
	vv, _ := s.Get("k")
	if string(vv.Value) != "v2" || vv.Version != (Version{2, 5}) {
		t.Fatalf("got %+v, want v2 at 2.5", vv)
	}
}

func TestStateDBCopiesValues(t *testing.T) {
	s := NewStateDB()
	val := []byte("orig")
	s.ApplyBlockWrites(1, []uint32{0}, []RWSet{{Writes: []KVWrite{{Key: "k", Value: val}}}})
	val[0] = 'X' // caller mutation must not leak in
	vv, _ := s.Get("k")
	if string(vv.Value) != "orig" {
		t.Fatal("state db aliases caller's slice")
	}
	snap := s.Snapshot()
	snap["k"].Value[0] = 'Y' // snapshot mutation must not leak back
	vv, _ = s.Get("k")
	if string(vv.Value) != "orig" {
		t.Fatal("snapshot aliases state db")
	}
}

func TestStateDBApplyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStateDB().ApplyBlockWrites(1, []uint32{0, 1}, []RWSet{{}})
}
