package ledger

// ValidationCode classifies the outcome of validating one transaction
// within a block.
type ValidationCode uint8

// Validation outcomes. Values start at 1 so the zero value is invalid.
const (
	// CodeValid marks a transaction whose endorsements satisfy the policy
	// and whose read set matches the committed state.
	CodeValid ValidationCode = iota + 1
	// CodeMVCCConflict marks a validation-time conflict (paper §II-C):
	// the transaction read a version that is no longer current.
	CodeMVCCConflict
	// CodeEndorsementFailure marks a transaction whose endorsements do not
	// satisfy the endorsement policy.
	CodeEndorsementFailure
)

// String returns a short name for the code.
func (c ValidationCode) String() string {
	switch c {
	case CodeValid:
		return "VALID"
	case CodeMVCCConflict:
		return "MVCC_CONFLICT"
	case CodeEndorsementFailure:
		return "ENDORSEMENT_FAILURE"
	default:
		return "INVALID_CODE"
	}
}

// PolicyChecker validates a transaction's endorsements. Implementations
// live in the endorse package; the ledger only needs the verdict.
type PolicyChecker func(tx *Transaction) error

// ValidateBlock runs Fabric's validation phase for one block against the
// current state database: endorsement-policy check, then MVCC read-set
// check. As in Fabric, a transaction also conflicts with earlier valid
// transactions of the same block that wrote any key it read.
//
// It returns one code per transaction. It does not mutate the state
// database; callers apply the write sets of valid transactions afterwards
// (see Ledger.Commit).
func ValidateBlock(state *StateDB, b *Block, policy PolicyChecker) []ValidationCode {
	codes := make([]ValidationCode, len(b.Txs))
	// Keys written by earlier VALID transactions in this block.
	wroteInBlock := make(map[string]bool)
	for i, tx := range b.Txs {
		if policy != nil {
			if err := policy(tx); err != nil {
				codes[i] = CodeEndorsementFailure
				continue
			}
		}
		conflict := false
		for _, r := range tx.RWSet.Reads {
			if wroteInBlock[r.Key] || state.VersionOf(r.Key) != r.Version {
				conflict = true
				break
			}
		}
		if conflict {
			codes[i] = CodeMVCCConflict
			continue
		}
		codes[i] = CodeValid
		for _, w := range tx.RWSet.Writes {
			wroteInBlock[w.Key] = true
		}
	}
	return codes
}
