package ledger

import (
	"fmt"
	"sync"
)

// BlockStore is the append-only, hash-verified chain of blocks a peer
// maintains. It is safe for concurrent use.
type BlockStore struct {
	mu     sync.RWMutex
	blocks []*Block
}

// NewBlockStore returns an empty store.
func NewBlockStore() *BlockStore { return &BlockStore{} }

// Height returns the number of stored blocks; the next expected block
// number equals the height.
func (s *BlockStore) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.blocks))
}

// Append verifies linkage and adds b to the chain.
func (s *BlockStore) Append(b *Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var prev *Block
	if n := len(s.blocks); n > 0 {
		prev = s.blocks[n-1]
	}
	if err := b.VerifyLinkage(prev); err != nil {
		return err
	}
	s.blocks = append(s.blocks, b)
	return nil
}

// Get returns block num.
func (s *BlockStore) Get(num uint64) (*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if num >= uint64(len(s.blocks)) {
		return nil, fmt.Errorf("ledger: block %d not stored (height %d)", num, len(s.blocks))
	}
	return s.blocks[num], nil
}

// Range returns blocks [from, to) that are present, clamped to the chain;
// it is the batch primitive used by the recovery component.
func (s *BlockStore) Range(from, to uint64) []*Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := uint64(len(s.blocks))
	if from >= h || from >= to {
		return nil
	}
	if to > h {
		to = h
	}
	out := make([]*Block, to-from)
	copy(out, s.blocks[from:to])
	return out
}

// Last returns the most recent block, or nil for an empty chain.
func (s *BlockStore) Last() *Block {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.blocks) == 0 {
		return nil
	}
	return s.blocks[len(s.blocks)-1]
}
