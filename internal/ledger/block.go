// Package ledger implements the replicated ledger substrate of the
// execute-order-validate pipeline (paper §II): hash-chained blocks of
// endorsed transactions, a versioned key/value state database with MVCC
// read-set checks, and an append-only block store.
package ledger

import (
	"encoding/binary"
	"fmt"

	"fabricgossip/internal/crypto"
)

// Version identifies the (block, transaction) position that last wrote a
// key. Read sets carry versions; validation compares them against the
// committed state (paper §II-B).
type Version struct {
	BlockNum uint64
	TxNum    uint32
}

// Less reports whether v precedes o in the total order.
func (v Version) Less(o Version) bool {
	if v.BlockNum != o.BlockNum {
		return v.BlockNum < o.BlockNum
	}
	return v.TxNum < o.TxNum
}

// String formats the version as "block.tx".
func (v Version) String() string { return fmt.Sprintf("%d.%d", v.BlockNum, v.TxNum) }

// KVRead records that a simulated chaincode read Key at Version.
type KVRead struct {
	Key     string
	Version Version
}

// KVWrite records a value produced by a simulated chaincode.
type KVWrite struct {
	Key   string
	Value []byte
}

// RWSet is the read/write set produced by simulating a chaincode.
type RWSet struct {
	Reads  []KVRead
	Writes []KVWrite
}

// Endorsement is an endorser's signature over a transaction's identity.
type Endorsement struct {
	Org  string
	Name string
	Sig  crypto.Signature
}

// Transaction is an endorsed transaction proposal as it appears in a block.
type Transaction struct {
	ID           crypto.Digest
	Client       string
	Chaincode    string
	RWSet        RWSet
	Endorsements []Endorsement
	// Payload is opaque application data. The experiments use it to pad
	// transactions to the paper's ≈3.2 KB so that block sizes — and hence
	// bandwidth — match the evaluated workload.
	Payload []byte
}

// ProposalDigest computes the canonical digest of the transaction's
// client-visible content. It is used both as the transaction ID and as the
// message endorsers sign.
func ProposalDigest(client, chaincode string, rw RWSet, payload []byte) crypto.Digest {
	buf := make([]byte, 0, 256)
	buf = appendString(buf, client)
	buf = appendString(buf, chaincode)
	buf = appendUvarint(buf, uint64(len(rw.Reads)))
	for _, r := range rw.Reads {
		buf = appendString(buf, r.Key)
		buf = appendUvarint(buf, r.Version.BlockNum)
		buf = appendUvarint(buf, uint64(r.Version.TxNum))
	}
	buf = appendUvarint(buf, uint64(len(rw.Writes)))
	for _, w := range rw.Writes {
		buf = appendString(buf, w.Key)
		buf = appendBytes(buf, w.Value)
	}
	return crypto.Hash(buf, payload)
}

// Block is one link of the chain.
type Block struct {
	Num      uint64
	PrevHash crypto.Digest
	DataHash crypto.Digest
	Txs      []*Transaction
	// Sig is the ordering service's signature over HeaderBytes.
	Sig crypto.Signature
}

// HeaderBytes returns the canonical encoding of the block header, the
// message that is hashed for chaining and signed by the orderer.
func (b *Block) HeaderBytes() []byte {
	buf := make([]byte, 0, 8+2*len(b.PrevHash))
	buf = appendUvarint(buf, b.Num)
	buf = append(buf, b.PrevHash[:]...)
	buf = append(buf, b.DataHash[:]...)
	return buf
}

// Hash returns the block's chain hash: SHA-256 over the header.
func (b *Block) Hash() crypto.Digest { return crypto.Hash(b.HeaderBytes()) }

// ComputeDataHash hashes the ordered list of transaction IDs, binding block
// content to the header.
func ComputeDataHash(txs []*Transaction) crypto.Digest {
	buf := make([]byte, 0, len(txs)*32)
	for _, tx := range txs {
		buf = append(buf, tx.ID[:]...)
	}
	return crypto.Hash(buf)
}

// VerifyLinkage checks that b correctly extends prev (nil prev means b must
// be the genesis block).
func (b *Block) VerifyLinkage(prev *Block) error {
	if prev == nil {
		if b.Num != 0 {
			return fmt.Errorf("ledger: block %d cannot start a chain", b.Num)
		}
		if !b.PrevHash.IsZero() {
			return fmt.Errorf("ledger: genesis block has non-zero previous hash")
		}
	} else {
		if b.Num != prev.Num+1 {
			return fmt.Errorf("ledger: block %d does not follow block %d", b.Num, prev.Num)
		}
		if b.PrevHash != prev.Hash() {
			return fmt.Errorf("ledger: block %d previous hash mismatch", b.Num)
		}
	}
	if got := ComputeDataHash(b.Txs); got != b.DataHash {
		return fmt.Errorf("ledger: block %d data hash mismatch", b.Num)
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = appendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}
