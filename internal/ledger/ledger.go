package ledger

import (
	"fmt"
	"sync"
)

// CommitResult reports what happened when a block was committed.
type CommitResult struct {
	BlockNum uint64
	Codes    []ValidationCode
	// Valid and Invalid count the transactions by outcome.
	Valid   int
	Invalid int
}

// Ledger combines the block store and the state database into the peer's
// local copy of the chain: blocks are validated, appended, and the write
// sets of valid transactions applied atomically. It is safe for concurrent
// use.
type Ledger struct {
	mu     sync.Mutex
	store  *BlockStore
	state  *StateDB
	policy PolicyChecker
}

// NewLedger returns an empty ledger validating endorsements with policy
// (nil policy skips endorsement checks).
func NewLedger(policy PolicyChecker) *Ledger {
	return &Ledger{
		store:  NewBlockStore(),
		state:  NewStateDB(),
		policy: policy,
	}
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() uint64 { return l.store.Height() }

// State returns the ledger's state database. Reads are safe at any time;
// writes are owned by Commit.
func (l *Ledger) State() *StateDB { return l.state }

// Store returns the underlying block store.
func (l *Ledger) Store() *BlockStore { return l.store }

// Commit validates b, appends it to the chain and applies the write sets of
// its valid transactions. Blocks must arrive in order; out-of-order commits
// return an error (gossip buffers and reorders ahead of this call).
func (l *Ledger) Commit(b *Block) (CommitResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := l.store.Height(); b.Num != want {
		return CommitResult{}, fmt.Errorf("ledger: commit out of order: got block %d, want %d", b.Num, want)
	}
	codes := ValidateBlock(l.state, b, l.policy)
	if err := l.store.Append(b); err != nil {
		return CommitResult{}, err
	}
	res := CommitResult{BlockNum: b.Num, Codes: codes}
	var txNums []uint32
	var writeSets []RWSet
	for i, c := range codes {
		if c == CodeValid {
			res.Valid++
			txNums = append(txNums, uint32(i))
			writeSets = append(writeSets, b.Txs[i].RWSet)
		} else {
			res.Invalid++
		}
	}
	l.state.ApplyBlockWrites(b.Num, txNums, writeSets)
	return res, nil
}
