package netmodel

import (
	"testing"
	"time"

	"fabricgossip/internal/sim"
	"fabricgossip/internal/wire"
)

func TestDelayComponents(t *testing.T) {
	rng := sim.NewRand(1)
	m := Model{
		BandwidthBytesPerSec: 125e6,
		PropMin:              100 * time.Microsecond,
		PropMax:              200 * time.Microsecond,
	}
	// Without processing jitter, delay = prop + size/bw.
	for i := 0; i < 1000; i++ {
		d := m.Delay(rng, 125_000) // 1 ms of serialization at 1 Gbps
		lo := 100*time.Microsecond + time.Millisecond
		hi := 200*time.Microsecond + time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("delay %v outside [%v, %v]", d, lo, hi)
		}
	}
}

func TestDelayGrowsWithSize(t *testing.T) {
	rng := sim.NewRand(2)
	m := Model{BandwidthBytesPerSec: 125e6, PropMin: time.Millisecond, PropMax: time.Millisecond}
	small := m.Delay(rng, 100)
	large := m.Delay(rng, 10_000_000)
	if large <= small {
		t.Fatalf("large message (%v) not slower than small (%v)", large, small)
	}
}

func TestDelayProcessingClamp(t *testing.T) {
	rng := sim.NewRand(3)
	m := Model{
		ProcMedian: time.Millisecond,
		ProcSigma:  3.0, // extreme tail
		ProcMax:    5 * time.Millisecond,
	}
	for i := 0; i < 5000; i++ {
		if d := m.Delay(rng, 0); d > 5*time.Millisecond {
			t.Fatalf("delay %v exceeds clamp", d)
		}
	}
}

func TestLANModelSane(t *testing.T) {
	m := LAN()
	rng := sim.NewRand(4)
	var sum time.Duration
	const trials = 10_000
	for i := 0; i < trials; i++ {
		sum += m.Delay(rng, 160_000) // one 160 KB block
	}
	mean := sum / trials
	// A block hop on the calibrated LAN should take single-digit
	// milliseconds on average — fast push phase, as in the paper.
	if mean < time.Millisecond || mean > 20*time.Millisecond {
		t.Fatalf("mean block-hop delay %v outside sane range", mean)
	}
}

func TestTransmitTime(t *testing.T) {
	m := Model{BandwidthBytesPerSec: 125e6}
	if got := m.TransmitTime(125e6); got != time.Second {
		t.Fatalf("TransmitTime(1s worth) = %v", got)
	}
	if got := (Model{}).TransmitTime(1000); got != 0 {
		t.Fatalf("zero-bandwidth TransmitTime = %v, want 0", got)
	}
}

func TestTrafficBucketsAndSeries(t *testing.T) {
	tr := NewTraffic(10 * time.Second)
	// 1 MB from node 0 to node 1 in bucket 0, 2 MB in bucket 2.
	tr.Record(0, 1, wire.TypeData, 1_000_000, 5*time.Second)
	tr.Record(0, 1, wire.TypeData, 2_000_000, 25*time.Second)

	s0 := tr.NodeSeries(0, 3)
	s1 := tr.NodeSeries(1, 3)
	want := []float64{0.1, 0, 0.2} // MB/s over 10 s buckets
	for i := range want {
		if s0[i] != want[i] || s1[i] != want[i] {
			t.Fatalf("series = %v / %v, want %v", s0, s1, want)
		}
	}
	if avg := tr.NodeAverage(0, 3); avg < 0.099 || avg > 0.101 {
		t.Fatalf("average = %v, want 0.1", avg)
	}
	if tr.TotalBytes() != 3_000_000 {
		t.Fatalf("total = %d", tr.TotalBytes())
	}
}

func TestTrafficPerTypeAccounting(t *testing.T) {
	tr := NewTraffic(time.Second)
	tr.Record(0, 1, wire.TypeData, 100, 0)
	tr.Record(1, 2, wire.TypeData, 100, 0)
	tr.Record(2, 0, wire.TypePushDigest, 10, 0)
	if tr.CountOf(wire.TypeData) != 2 {
		t.Fatalf("CountOf(Data) = %d, want 2", tr.CountOf(wire.TypeData))
	}
	if tr.BytesOf(wire.TypeData) != 200 {
		t.Fatalf("BytesOf(Data) = %d, want 200", tr.BytesOf(wire.TypeData))
	}
	bd := tr.Breakdown()
	if bd[wire.TypePushDigest] != [2]uint64{1, 10} {
		t.Fatalf("Breakdown = %v", bd)
	}
}

func TestTrafficZeroBucketDefaults(t *testing.T) {
	tr := NewTraffic(0)
	if tr.Bucket() != 10*time.Second {
		t.Fatalf("default bucket = %v", tr.Bucket())
	}
}

func TestNodeSeriesUnknownNodeIsZero(t *testing.T) {
	tr := NewTraffic(time.Second)
	s := tr.NodeSeries(42, 3)
	for _, v := range s {
		if v != 0 {
			t.Fatalf("unknown node series = %v", s)
		}
	}
}

func TestTrafficWindowedMergeMatchesFullAccounting(t *testing.T) {
	// Two windowed shard accountants (ids 0-1 and 2-3) plus cross-window
	// traffic, merged into one full-window view, must agree with a single
	// accountant that saw every Record directly.
	full := NewSimTraffic(time.Second)
	s0 := NewSimTrafficWindow(time.Second, 0, 2)
	s1 := NewSimTrafficWindow(time.Second, 2, 2)
	rec := func(tr *Traffic, from, to wire.NodeID, size int) {
		tr.Record(from, to, wire.TypeData, size, 500*time.Millisecond)
	}
	rec(full, 0, 1, 100)
	rec(s0, 0, 1, 100)
	rec(full, 2, 3, 40)
	rec(s1, 2, 3, 40)
	// Cross-shard: shard 0's accountant sees id 3 through its sparse path.
	rec(full, 1, 3, 7)
	rec(s0, 1, 3, 7)

	merged := NewSimTraffic(time.Second)
	merged.Merge(s0)
	merged.Merge(s1)
	for id := wire.NodeID(0); id < 4; id++ {
		wantIn, wantOut := full.NodeTotals(id)
		gotIn, gotOut := merged.NodeTotals(id)
		if gotIn != wantIn || gotOut != wantOut {
			t.Fatalf("node %d totals = %d/%d, want %d/%d", id, gotIn, gotOut, wantIn, wantOut)
		}
	}
	if merged.TotalBytes() != full.TotalBytes() {
		t.Fatalf("total = %d, want %d", merged.TotalBytes(), full.TotalBytes())
	}
}

func TestTrafficTotalsOnlyMatchesSeriesTotals(t *testing.T) {
	// A totals-only accountant must report the same NodeTotals and
	// aggregates as a series accountant fed the same records; its series
	// read as zero (never allocated).
	series := NewSimTraffic(time.Second)
	totals := NewSimTrafficWindow(time.Second, 0, 2).TotalsOnly()
	for _, r := range []struct {
		from, to wire.NodeID
		size     int
	}{{0, 1, 100}, {1, 0, 30}, {0, 5, 9}, {5, 1, 4}} {
		series.Record(r.from, r.to, wire.TypeData, r.size, 3*time.Second)
		totals.Record(r.from, r.to, wire.TypeData, r.size, 3*time.Second)
	}
	for _, id := range []wire.NodeID{0, 1, 5} {
		wantIn, wantOut := series.NodeTotals(id)
		gotIn, gotOut := totals.NodeTotals(id)
		if gotIn != wantIn || gotOut != wantOut {
			t.Fatalf("node %d totals = %d/%d, want %d/%d", id, gotIn, gotOut, wantIn, wantOut)
		}
	}
	if totals.TotalBytes() != series.TotalBytes() ||
		totals.CountOf(wire.TypeData) != series.CountOf(wire.TypeData) {
		t.Fatalf("aggregates diverge: %d/%d vs %d/%d", totals.TotalBytes(),
			totals.CountOf(wire.TypeData), series.TotalBytes(), series.CountOf(wire.TypeData))
	}
	for _, v := range totals.NodeSeries(0, 4) {
		if v != 0 {
			t.Fatalf("totals-only series must read zero, got %v", totals.NodeSeries(0, 4))
		}
	}

	// Merging totals-only shards into a totals-only view preserves totals.
	merged := NewSimTraffic(time.Second).TotalsOnly()
	merged.Merge(totals)
	in, out := merged.NodeTotals(1)
	wantIn, wantOut := series.NodeTotals(1)
	if in != wantIn || out != wantOut {
		t.Fatalf("merged totals = %d/%d, want %d/%d", in, out, wantIn, wantOut)
	}
}
