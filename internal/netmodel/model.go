// Package netmodel models the cluster network of the paper's testbed: a
// 1 Gbps LAN connecting Docker containers, with store-and-forward
// transmission time, propagation delay, and a heavy-ish processing jitter
// reflecting containerized hosts under load. It also provides the per-peer
// bandwidth accounting behind the paper's network-utilization figures.
package netmodel

import (
	"time"

	"fabricgossip/internal/sim"
)

// Model computes per-message one-way delivery delays.
//
// Delay = U(PropMin, PropMax)                    propagation + switching
//   - size / BandwidthBytesPerSec                store-and-forward serialization
//   - LogNormal(ProcMedian, ProcSigma) <= ProcMax  endpoint processing jitter
//
// The lognormal term models the scheduling/processing variability of peers
// running in containers on shared hosts (the paper's 100 containers on 15
// servers); its tail is what stretches the last percentiles of per-hop
// latency without affecting the median much.
type Model struct {
	BandwidthBytesPerSec float64
	PropMin              time.Duration
	PropMax              time.Duration
	ProcMedian           time.Duration
	ProcSigma            float64
	ProcMax              time.Duration
}

// LAN returns the calibrated model used by every experiment in this
// reproduction (see DESIGN.md, "Calibration, not curve-fitting").
func LAN() Model {
	return Model{
		BandwidthBytesPerSec: 125e6, // 1 Gbps
		PropMin:              150 * time.Microsecond,
		PropMax:              500 * time.Microsecond,
		ProcMedian:           8 * time.Millisecond,
		ProcSigma:            0.9,
		ProcMax:              150 * time.Millisecond,
	}
}

// Delay draws a delivery delay for a message of the given encoded size.
func (m Model) Delay(rng *sim.Rand, size int) time.Duration {
	d := m.PropMin
	if spread := m.PropMax - m.PropMin; spread > 0 {
		d += time.Duration(rng.Int63n(int64(spread)))
	}
	if m.BandwidthBytesPerSec > 0 {
		d += time.Duration(float64(size) / m.BandwidthBytesPerSec * float64(time.Second))
	}
	if m.ProcMedian > 0 {
		proc := time.Duration(rng.LogNormal(0, m.ProcSigma) * float64(m.ProcMedian))
		if m.ProcMax > 0 && proc > m.ProcMax {
			proc = m.ProcMax
		}
		d += proc
	}
	return d
}

// TransmitTime returns only the serialization component for size bytes,
// used by tests and capacity estimates.
func (m Model) TransmitTime(size int) time.Duration {
	if m.BandwidthBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(size) / m.BandwidthBytesPerSec * float64(time.Second))
}
