package netmodel

import (
	"testing"
	"time"

	"fabricgossip/internal/wire"
)

// The locked (TCP) and unlocked (sim) accountants must agree on every
// figure for the same recorded sequence: they differ only in mutex use.
func TestTrafficLockedAndSimVariantsAgree(t *testing.T) {
	locked := NewTraffic(time.Second)
	simt := NewSimTraffic(time.Second)
	types := []wire.MsgType{wire.TypeData, wire.TypeAlive, wire.TypeStateInfo}
	for i := 0; i < 500; i++ {
		from := wire.NodeID(i % 7)
		to := wire.NodeID((i + 3) % 7)
		mt := types[i%len(types)]
		size := 100 + i%900
		at := time.Duration(i) * 37 * time.Millisecond
		locked.Record(from, to, mt, size, at)
		simt.Record(from, to, mt, size, at)
	}
	if locked.TotalBytes() != simt.TotalBytes() {
		t.Fatalf("TotalBytes: locked %d, sim %d", locked.TotalBytes(), simt.TotalBytes())
	}
	for _, mt := range types {
		if locked.CountOf(mt) != simt.CountOf(mt) || locked.BytesOf(mt) != simt.BytesOf(mt) {
			t.Fatalf("%v: locked (%d, %d), sim (%d, %d)", mt,
				locked.CountOf(mt), locked.BytesOf(mt), simt.CountOf(mt), simt.BytesOf(mt))
		}
	}
	for id := wire.NodeID(0); id < 7; id++ {
		li, lo := locked.NodeTotals(id)
		si, so := simt.NodeTotals(id)
		if li != si || lo != so {
			t.Fatalf("node %v totals: locked (%d, %d), sim (%d, %d)", id, li, lo, si, so)
		}
		ls := locked.NodeSeries(id, 20)
		ss := simt.NodeSeries(id, 20)
		for i := range ls {
			if ls[i] != ss[i] {
				t.Fatalf("node %v bucket %d: locked %v, sim %v", id, i, ls[i], ss[i])
			}
		}
	}
	lb, sb := locked.Breakdown(), simt.Breakdown()
	if len(lb) != len(sb) {
		t.Fatalf("breakdown sizes differ: %d vs %d", len(lb), len(sb))
	}
	for mt, v := range lb {
		if sb[mt] != v {
			t.Fatalf("breakdown %v: locked %v, sim %v", mt, v, sb[mt])
		}
	}
}

// The TCP runtime lets callers pick arbitrary NodeIDs, so a sparse huge id
// must route through the overflow map instead of growing the dense tables
// to the id's value.
func TestTrafficSparseHugeNodeIDs(t *testing.T) {
	tr := NewTraffic(time.Second)
	huge := wire.NodeID(4_000_000_000)
	tr.Record(huge, 3, wire.TypeData, 500, 0)
	tr.Record(3, huge, wire.TypeAlive, 200, 1500*time.Millisecond)

	if in, out := tr.NodeTotals(huge); in != 200 || out != 500 {
		t.Fatalf("huge node totals = (%d, %d), want (200, 500)", in, out)
	}
	if in, out := tr.NodeTotals(3); in != 500 || out != 200 {
		t.Fatalf("dense node totals = (%d, %d), want (500, 200)", in, out)
	}
	s := tr.NodeSeries(huge, 2)
	if s[0] != 500e-6 || s[1] != 200e-6 {
		t.Fatalf("huge node series = %v, want [0.0005 0.0002]", s)
	}
	if got := tr.TotalBytes(); got != 700 {
		t.Fatalf("TotalBytes = %d, want 700", got)
	}
}

// Per-type accounting silently ignores out-of-range tags instead of
// indexing past the flat counter arrays.
func TestTrafficOutOfRangeTypeIgnored(t *testing.T) {
	tr := NewSimTraffic(time.Second)
	bad := wire.MsgType(wire.NumMsgTypes)
	tr.Record(0, 1, bad, 100, 0)
	if got := tr.CountOf(bad); got != 0 {
		t.Fatalf("CountOf(out-of-range) = %d, want 0", got)
	}
	if got := tr.BytesOf(bad); got != 0 {
		t.Fatalf("BytesOf(out-of-range) = %d, want 0", got)
	}
	// The byte totals still count the transmission itself.
	if got := tr.TotalBytes(); got != 100 {
		t.Fatalf("TotalBytes = %d, want 100", got)
	}
}

// Record must be allocation-free at steady state (node slots and buckets
// already grown): it is called once per simulated message.
func TestTrafficRecordSteadyStateAllocationFree(t *testing.T) {
	tr := NewSimTraffic(10 * time.Second)
	tr.Record(0, 1, wire.TypeData, 1000, 0) // grow the two node slots
	if allocs := testing.AllocsPerRun(2000, func() {
		tr.Record(0, 1, wire.TypeData, 1000, time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("steady-state Record allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkTrafficRecord measures the dense per-message accounting on the
// single-threaded sim path. Must report 0 allocs/op.
func BenchmarkTrafficRecord(b *testing.B) {
	tr := NewSimTraffic(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(wire.NodeID(i%100), wire.NodeID((i+1)%100), wire.TypeData, 5000,
			time.Duration(i)*time.Millisecond)
	}
}

// BenchmarkTrafficRecordLocked is the concurrent (TCP runtime) variant, for
// the mutex-cost trajectory.
func BenchmarkTrafficRecordLocked(b *testing.B) {
	tr := NewTraffic(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(wire.NodeID(i%100), wire.NodeID((i+1)%100), wire.TypeData, 5000,
			time.Duration(i)*time.Millisecond)
	}
}
