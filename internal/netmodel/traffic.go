package netmodel

import (
	"sync"
	"time"

	"fabricgossip/internal/wire"
)

// Traffic accounts every transmitted message: per-node byte series in fixed
// time buckets (the paper aggregates at 10 s), plus per-message-type counts
// used to verify analytic claims such as "each block is transmitted in full
// 282 times under infect-and-die".
//
// Record sits on the per-message hot path of every simulation, so the
// accounting is dense and allocation-free at steady state: node series are
// index-addressed slices exploiting the transport's dense-id contract
// (SimNetwork.AddNode assigns NodeIDs from 0 in creation order), and
// per-type counters are flat arrays indexed by MsgType. Buckets and node
// slots grow amortized as the run progresses.
//
// NewTraffic returns a locked accountant that is safe for concurrent use so
// the TCP transport can share it across connection goroutines; NewSimTraffic
// skips the mutex entirely for the single-threaded simulated runtime, where
// every Record comes from the one engine goroutine.
type Traffic struct {
	mu sync.Mutex
	// concurrent selects the locked paths; false only on the simulated
	// runtime, whose engine is single-threaded by construction.
	concurrent bool
	bucket     time.Duration
	// base/window bound the index-addressed node tables to ids in
	// [base, base+window): in/out are indexed by id-base. A sharded
	// harness gives each organization shard's accountant its own id
	// range, so per-shard tables scale with the organization instead of
	// every shard paying headers for the whole network.
	base   wire.NodeID
	window int
	in     [][]uint64 // indexed by NodeID-base: per-bucket bytes received
	out    [][]uint64 // indexed by NodeID-base: per-bucket bytes sent
	// inBig/outBig catch ids outside the dense window: the TCP runtime
	// lets callers choose arbitrary NodeIDs (ListenTCP), and a sharded
	// accountant sees occasional cross-shard ids. A sparse id must not
	// grow the dense tables to its value. Allocated lazily; a
	// full-window simulated runtime never touches them.
	inBig  map[wire.NodeID][]uint64
	outBig map[wire.NodeID][]uint64
	// totalsOnly drops the per-bucket series and keeps one running total
	// per node per direction (inTot/outTot dense, the maps for sparse
	// ids). Scenario runs only ever read NodeTotals, and at the 100k-peer
	// tier the unread bucket series would be the accountant's dominant
	// allocation (~0.5 KB per node per direction); NodeSeries/NodeAverage
	// read as zero in this mode.
	totalsOnly bool
	inTot      []uint64
	outTot     []uint64
	inBigTot   map[wire.NodeID]uint64
	outBigTot  map[wire.NodeID]uint64
	count      [wire.NumMsgTypes]uint64
	bytes      [wire.NumMsgTypes]uint64
	total      uint64
}

// denseLimit bounds the index-addressed node tables. Simulated networks
// assign ids densely from 0 and stay below it even at the 100k-peer tier;
// ids beyond fall back to the map path.
const denseLimit = 1 << 20

// NewTraffic returns a concurrency-safe accountant aggregating at the given
// bucket width.
func NewTraffic(bucket time.Duration) *Traffic {
	t := NewSimTraffic(bucket)
	t.concurrent = true
	return t
}

// NewSimTraffic returns an accountant for the single-threaded simulated
// runtime: identical accounting, no locking. It must only be used from the
// engine goroutine.
func NewSimTraffic(bucket time.Duration) *Traffic {
	return NewSimTrafficWindow(bucket, 0, denseLimit)
}

// NewSimTrafficWindow returns a single-threaded accountant whose dense
// tables cover ids [base, base+window); ids outside take the sparse map
// path. The sharded harness hands each organization shard its org's id
// range — cross-shard sends touch a handful of remote ids (the orderer, a
// few anchors and leaders), which the map absorbs without the dense tables
// paying a header per network node per shard.
func NewSimTrafficWindow(bucket time.Duration, base wire.NodeID, window int) *Traffic {
	if bucket <= 0 {
		bucket = 10 * time.Second
	}
	if window < 0 {
		window = 0
	} else if window > denseLimit {
		window = denseLimit
	}
	return &Traffic{bucket: bucket, base: base, window: window}
}

// TotalsOnly switches the accountant to per-node running totals: NodeTotals
// (and the per-type/network-wide aggregates) stay exact, the per-bucket
// series is never allocated, and NodeSeries/NodeAverage read as zero. For
// accountants whose consumers never look at time series — the scenario
// runner reads only NodeTotals — this removes the dominant per-node
// allocation at the 100k-peer tier. Must be called before the first Record;
// returns t for chaining.
func (t *Traffic) TotalsOnly() *Traffic {
	t.totalsOnly = true
	return t
}

// denseIdx returns id's index into the dense tables, or false when the id
// lies outside the window.
func (t *Traffic) denseIdx(id wire.NodeID) (int, bool) {
	if id < t.base {
		return 0, false
	}
	i := int(id - t.base)
	return i, i < t.window
}

// bumpIn adds v to id's receive bucket idx, dense or sparse as the window
// dictates. Callers hold the lock (or run single-threaded).
func (t *Traffic) bumpIn(id wire.NodeID, idx int, v uint64) {
	i, dense := t.denseIdx(id)
	if t.totalsOnly {
		if dense {
			t.inTot = bumpTot(t.inTot, i, v)
		} else {
			if t.inBigTot == nil {
				t.inBigTot = make(map[wire.NodeID]uint64)
			}
			t.inBigTot[id] += v
		}
		return
	}
	if dense {
		t.in = bumpNode(t.in, i, idx, v)
	} else {
		t.inBig = bumpBig(t.inBig, id, idx, v)
	}
}

// bumpOut is bumpIn for the send direction.
func (t *Traffic) bumpOut(id wire.NodeID, idx int, v uint64) {
	i, dense := t.denseIdx(id)
	if t.totalsOnly {
		if dense {
			t.outTot = bumpTot(t.outTot, i, v)
		} else {
			if t.outBigTot == nil {
				t.outBigTot = make(map[wire.NodeID]uint64)
			}
			t.outBigTot[id] += v
		}
		return
	}
	if dense {
		t.out = bumpNode(t.out, i, idx, v)
	} else {
		t.outBig = bumpBig(t.outBig, id, idx, v)
	}
}

func (t *Traffic) lock() {
	if t.concurrent {
		t.mu.Lock()
	}
}

func (t *Traffic) unlock() {
	if t.concurrent {
		t.mu.Unlock()
	}
}

// Bucket returns the aggregation width.
func (t *Traffic) Bucket() time.Duration { return t.bucket }

// Merge folds other's accounting into t. The sharded runtime keeps one
// accountant per shard (so Record stays lock-free inside windows) and merges
// them into a single view for reporting. other must be quiescent.
func (t *Traffic) Merge(other *Traffic) {
	t.lock()
	defer t.unlock()
	for node, b := range other.in {
		for idx, v := range b {
			if v != 0 {
				t.bumpIn(other.base+wire.NodeID(node), idx, v)
			}
		}
	}
	for node, b := range other.out {
		for idx, v := range b {
			if v != 0 {
				t.bumpOut(other.base+wire.NodeID(node), idx, v)
			}
		}
	}
	for id, b := range other.inBig {
		for idx, v := range b {
			if v != 0 {
				t.bumpIn(id, idx, v)
			}
		}
	}
	for id, b := range other.outBig {
		for idx, v := range b {
			if v != 0 {
				t.bumpOut(id, idx, v)
			}
		}
	}
	// Totals-only storage folds into bucket 0 — a totals-only merge target
	// (the only mode pairing the harness uses) ignores the index anyway.
	for node, v := range other.inTot {
		if v != 0 {
			t.bumpIn(other.base+wire.NodeID(node), 0, v)
		}
	}
	for node, v := range other.outTot {
		if v != 0 {
			t.bumpOut(other.base+wire.NodeID(node), 0, v)
		}
	}
	for id, v := range other.inBigTot {
		if v != 0 {
			t.bumpIn(id, 0, v)
		}
	}
	for id, v := range other.outBigTot {
		if v != 0 {
			t.bumpOut(id, 0, v)
		}
	}
	for mt := range other.count {
		t.count[mt] += other.count[mt]
		t.bytes[mt] += other.bytes[mt]
	}
	t.total += other.total
}

// Record accounts one message of the given type and size sent from -> to
// at virtual/wall time at.
func (t *Traffic) Record(from, to wire.NodeID, mt wire.MsgType, size int, at time.Duration) {
	idx := int(at / t.bucket)
	t.lock()
	t.bumpOut(from, idx, uint64(size))
	t.bumpIn(to, idx, uint64(size))
	if int(mt) < wire.NumMsgTypes {
		t.count[mt]++
		t.bytes[mt] += uint64(size)
	}
	t.total += uint64(size)
	t.unlock()
}

// bumpNode adds v to node's bucket idx, growing the node table and the
// node's bucket series as needed (amortized; the steady state hits the
// in-place add only).
func bumpNode(s [][]uint64, node, idx int, v uint64) [][]uint64 {
	for len(s) <= node {
		s = append(s, nil)
	}
	b := s[node]
	for len(b) <= idx {
		b = append(b, 0)
	}
	b[idx] += v
	s[node] = b
	return s
}

// bumpTot adds v to node's running total, growing the table as needed.
func bumpTot(s []uint64, node int, v uint64) []uint64 {
	for len(s) <= node {
		s = append(s, 0)
	}
	s[node] += v
	return s
}

// bumpBig is bumpNode for the sparse-id overflow map.
func bumpBig(m map[wire.NodeID][]uint64, id wire.NodeID, idx int, v uint64) map[wire.NodeID][]uint64 {
	if m == nil {
		m = make(map[wire.NodeID][]uint64)
	}
	b := m[id]
	for len(b) <= idx {
		b = append(b, 0)
	}
	b[idx] += v
	m[id] = b
	return m
}

// series returns the node's recorded buckets, consulting the dense table or
// the sparse overflow map as the window dictates. Callers hold the lock (or
// run single-threaded).
func (t *Traffic) series(tab [][]uint64, big map[wire.NodeID][]uint64, id wire.NodeID) []uint64 {
	if i, ok := t.denseIdx(id); ok {
		if i < len(tab) {
			return tab[i]
		}
		return nil
	}
	return big[id]
}

// NodeSeries returns the node's traffic in MB/s per bucket (in + out), over
// nBuckets buckets (zero-padded).
func (t *Traffic) NodeSeries(id wire.NodeID, nBuckets int) []float64 {
	t.lock()
	defer t.unlock()
	out := make([]float64, nBuckets)
	secs := t.bucket.Seconds()
	inS, outS := t.series(t.in, t.inBig, id), t.series(t.out, t.outBig, id)
	for i := 0; i < nBuckets; i++ {
		var b uint64
		if i < len(inS) {
			b += inS[i]
		}
		if i < len(outS) {
			b += outS[i]
		}
		out[i] = float64(b) / 1e6 / secs
	}
	return out
}

// NodeAverage returns the node's average traffic in MB/s over the first
// nBuckets buckets.
func (t *Traffic) NodeAverage(id wire.NodeID, nBuckets int) float64 {
	s := t.NodeSeries(id, nBuckets)
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// NodeTotals returns the total bytes the node received and sent across the
// whole run, for per-organization bandwidth accounting in multi-org
// networks.
func (t *Traffic) NodeTotals(id wire.NodeID) (in, out uint64) {
	t.lock()
	defer t.unlock()
	if t.totalsOnly {
		if i, ok := t.denseIdx(id); ok {
			if i < len(t.inTot) {
				in = t.inTot[i]
			}
			if i < len(t.outTot) {
				out = t.outTot[i]
			}
			return in, out
		}
		return t.inBigTot[id], t.outBigTot[id]
	}
	for _, v := range t.series(t.in, t.inBig, id) {
		in += v
	}
	for _, v := range t.series(t.out, t.outBig, id) {
		out += v
	}
	return in, out
}

// TotalBytes returns the total bytes transmitted across the network.
func (t *Traffic) TotalBytes() uint64 {
	t.lock()
	defer t.unlock()
	return t.total
}

// CountOf returns how many messages of the given type were transmitted.
func (t *Traffic) CountOf(mt wire.MsgType) uint64 {
	if int(mt) >= wire.NumMsgTypes {
		return 0
	}
	t.lock()
	defer t.unlock()
	return t.count[mt]
}

// BytesOf returns the bytes transmitted as messages of the given type.
func (t *Traffic) BytesOf(mt wire.MsgType) uint64 {
	if int(mt) >= wire.NumMsgTypes {
		return 0
	}
	t.lock()
	defer t.unlock()
	return t.bytes[mt]
}

// Breakdown returns per-type (count, bytes) pairs for reporting.
func (t *Traffic) Breakdown() map[wire.MsgType][2]uint64 {
	t.lock()
	defer t.unlock()
	out := make(map[wire.MsgType][2]uint64)
	for mt, c := range t.count {
		if c > 0 {
			out[wire.MsgType(mt)] = [2]uint64{c, t.bytes[mt]}
		}
	}
	return out
}
